// Annotated mutex wrappers: the only place raw std::mutex /
// std::shared_mutex may appear (enforced repo-wide by the lexlint
// `guards` rule).
//
// common::Mutex and common::SharedMutex are thin capability-annotated
// wrappers over the standard primitives — zero overhead, same
// semantics — that exist so Clang Thread Safety Analysis can see lock
// acquisition and release (std::mutex itself carries no annotations).
// Every lock owner in the engine declares one of these, marks the
// state it protects GUARDED_BY(it), and marks its internal funnels
// REQUIRES(it) / REQUIRES_SHARED(it); the `thread-safety` build arm
// then rejects any unlocked access at compile time. See
// src/common/thread_annotations.h for the macro vocabulary and
// ARCHITECTURE.md §6a for the lock → guarded state → functions table.
//
// RAII holders:
//   MutexLock          exclusive  std::lock_guard equivalent
//   SharedMutexLock    shared     std::shared_lock equivalent
//   WriterMutexLock    exclusive  std::unique_lock-over-SharedMutex
//
// All three release in the destructor via RELEASE_GENERIC, the
// spelling the analysis expects from scoped holders regardless of the
// mode they acquired in.

#ifndef LEXEQUAL_COMMON_MUTEX_H_
#define LEXEQUAL_COMMON_MUTEX_H_

#include <mutex>
#include <shared_mutex>

#include "common/thread_annotations.h"

namespace lexequal::common {

/// Exclusive-only lock. Wraps std::mutex with capability annotations.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// Reader/writer lock. Wraps std::shared_mutex with capability
/// annotations; exclusive for writers, shared for readers.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  void LockShared() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() RELEASE_SHARED() { mu_.unlock_shared(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }
  bool TryLockShared() TRY_ACQUIRE_SHARED(true) {
    return mu_.try_lock_shared();
  }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive hold of a Mutex (std::lock_guard equivalent).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE_GENERIC() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// RAII shared hold of a SharedMutex (std::shared_lock equivalent).
class SCOPED_CAPABILITY SharedMutexLock {
 public:
  explicit SharedMutexLock(SharedMutex* mu) ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_->LockShared();
  }
  ~SharedMutexLock() RELEASE_GENERIC() { mu_->UnlockShared(); }

  SharedMutexLock(const SharedMutexLock&) = delete;
  SharedMutexLock& operator=(const SharedMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// RAII exclusive hold of a SharedMutex (writer side).
class SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex* mu) ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~WriterMutexLock() RELEASE_GENERIC() { mu_->Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

}  // namespace lexequal::common

#endif  // LEXEQUAL_COMMON_MUTEX_H_
