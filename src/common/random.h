// Deterministic pseudo-random number generator used by dataset
// generation and tests. Every consumer passes an explicit seed so
// benchmarks and the tagged lexicon are reproducible run to run.

#ifndef LEXEQUAL_COMMON_RANDOM_H_
#define LEXEQUAL_COMMON_RANDOM_H_

#include <cstdint>

namespace lexequal {

/// xorshift128+ generator: small, fast, adequate statistical quality
/// for workload generation (not for cryptography).
class Random {
 public:
  /// Seeds the generator; equal seeds yield equal sequences.
  explicit Random(uint64_t seed) {
    // SplitMix64 seeding avoids poor low-entropy starting states.
    state0_ = SplitMix64(&seed);
    state1_ = SplitMix64(&seed);
    if (state0_ == 0 && state1_ == 0) state1_ = 1;
  }

  /// Uniform value over the whole uint64 range.
  uint64_t Next() {
    uint64_t s1 = state0_;
    const uint64_t s0 = state1_;
    state0_ = s0;
    s1 ^= s1 << 23;
    state1_ = s1 ^ s0 ^ (s1 >> 18) ^ (s0 >> 5);
    return state1_ + s0;
  }

  /// Uniform value in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  static uint64_t SplitMix64(uint64_t* x) {
    uint64_t z = (*x += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  uint64_t state0_;
  uint64_t state1_;
};

}  // namespace lexequal

#endif  // LEXEQUAL_COMMON_RANDOM_H_
