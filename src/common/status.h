// Status: error-handling primitive used across the LexEQUAL codebase.
//
// Functions that can fail return a Status (or a Result<T>, see result.h)
// instead of throwing: no exceptions cross public API boundaries.

#ifndef LEXEQUAL_COMMON_STATUS_H_
#define LEXEQUAL_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace lexequal {

/// Machine-readable classification of a failure.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // caller passed something malformed
  kNotFound,          // a named entity (table, index, language) is missing
  kAlreadyExists,     // creation collided with an existing entity
  kOutOfRange,        // position / id beyond a valid range
  kCorruption,        // on-disk or in-memory structure failed validation
  kIOError,           // underlying file operation failed
  kNotSupported,      // feature intentionally unimplemented
  kResourceExhausted, // buffer pool full, page full, etc.
  kNoResource,        // LexEQUAL NORESOURCE: no G2P converter for a language
  kInternal,          // invariant violation: indicates a bug
};

/// Human-readable name of a StatusCode (e.g. "InvalidArgument").
std::string_view StatusCodeToString(StatusCode code);

/// Value type carrying success or a (code, message) pair.
///
/// The successful Status carries no allocation. Statuses are cheap to
/// move and compare; use the factory functions (Status::InvalidArgument
/// etc.) to construct failures.
///
/// The class is [[nodiscard]]: silently dropping a Status is how a
/// failed insert or unpin turns into a wrong match set instead of an
/// error, so every discard must be explicit — handle it, propagate it
/// (LEXEQUAL_RETURN_IF_ERROR), or justify it via IgnoreNonFatal().
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status NoResource(std::string msg) {
    return Status(StatusCode::kNoResource, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsNotSupported() const { return code_ == StatusCode::kNotSupported; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsNoResource() const { return code_ == StatusCode::kNoResource; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

/// Explicitly discards a Status from a best-effort operation whose
/// failure has no error channel or must not mask the primary control
/// flow (destructors, already-failing error paths, final flushes).
///
/// This is the only sanctioned way to drop a Status: bare `(void)`
/// casts are rejected by the `status` rule of tools/lexlint, because
/// an unexplained discard is indistinguishable from a forgotten
/// check. `why` documents the justification at the callsite.
inline void IgnoreNonFatal(const Status& status,
                           [[maybe_unused]] const char* why) {
  (void)status;
}

/// Propagates a non-OK Status to the caller.
#define LEXEQUAL_RETURN_IF_ERROR(expr)                  \
  do {                                                  \
    ::lexequal::Status _st = (expr);                    \
    if (!_st.ok()) return _st;                          \
  } while (false)

}  // namespace lexequal

#endif  // LEXEQUAL_COMMON_STATUS_H_
