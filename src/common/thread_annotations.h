// Portable Clang Thread Safety Analysis macros.
//
// These wrap the `thread_safety` attribute family so locking
// contracts — which mutex guards which member, which functions
// require which lock, which must be called with it released — are
// written next to the code and machine-checked at compile time under
// clang (`-Wthread-safety`, promoted to an error by the
// LEXEQUAL_THREAD_SAFETY build arm; see scripts/run_static_analysis.sh
// and the `thread-safety` CMake preset). Under gcc and other
// compilers every macro expands to nothing, so annotated code builds
// everywhere; the annotations are still enforced structurally by the
// lexlint `guards` rule, which runs under any toolchain.
//
// The vocabulary (same shape as Abseil's thread_annotations.h):
//
//   CAPABILITY("mutex")      on a class: instances are lockable
//   SCOPED_CAPABILITY        on a class: RAII lock holder
//   GUARDED_BY(mu)           on a member: reads need mu held (shared
//                            is enough), writes need it exclusive
//   PT_GUARDED_BY(mu)        like GUARDED_BY but for the pointee
//   REQUIRES(mu)             callers must hold mu exclusively
//   REQUIRES_SHARED(mu)      callers must hold mu at least shared
//   ACQUIRE / ACQUIRE_SHARED the function takes the lock
//   RELEASE / RELEASE_SHARED the function drops the lock
//   RELEASE_GENERIC          drops a lock held in either mode (the
//                            right spelling for scoped destructors
//                            that may hold shared or exclusive)
//   TRY_ACQUIRE(b, mu)       conditional acquisition, result b
//   EXCLUDES(mu)             callers must NOT hold mu (encodes e.g.
//                            the record-after-release contract)
//   ASSERT_CAPABILITY(mu)    runtime assertion that mu is held
//   RETURN_CAPABILITY(mu)    the function returns a reference to mu
//   NO_THREAD_SAFETY_ANALYSIS opt one function out (audited escapes
//                            only; pair with a lexlint:allow reason)
//
// Per-line audited escapes are allowed; blanket suppressions are not
// (ISSUE 9 acceptance criteria). The analysis itself never checks
// constructors/destructors' access to their own guarded members.

#ifndef LEXEQUAL_COMMON_THREAD_ANNOTATIONS_H_
#define LEXEQUAL_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define LEXEQUAL_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef LEXEQUAL_THREAD_ANNOTATION
#define LEXEQUAL_THREAD_ANNOTATION(x)  // no-op off clang
#endif

#define CAPABILITY(x) LEXEQUAL_THREAD_ANNOTATION(capability(x))

#define SCOPED_CAPABILITY LEXEQUAL_THREAD_ANNOTATION(scoped_lockable)

#define GUARDED_BY(x) LEXEQUAL_THREAD_ANNOTATION(guarded_by(x))

#define PT_GUARDED_BY(x) LEXEQUAL_THREAD_ANNOTATION(pt_guarded_by(x))

#define ACQUIRED_BEFORE(...) \
  LEXEQUAL_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))

#define ACQUIRED_AFTER(...) \
  LEXEQUAL_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

#define REQUIRES(...) \
  LEXEQUAL_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

#define REQUIRES_SHARED(...) \
  LEXEQUAL_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

#define ACQUIRE(...) \
  LEXEQUAL_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

#define ACQUIRE_SHARED(...) \
  LEXEQUAL_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

#define RELEASE(...) \
  LEXEQUAL_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

#define RELEASE_SHARED(...) \
  LEXEQUAL_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

#define RELEASE_GENERIC(...) \
  LEXEQUAL_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))

#define TRY_ACQUIRE(...) \
  LEXEQUAL_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

#define TRY_ACQUIRE_SHARED(...) \
  LEXEQUAL_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))

#define EXCLUDES(...) LEXEQUAL_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

#define ASSERT_CAPABILITY(x) \
  LEXEQUAL_THREAD_ANNOTATION(assert_capability(x))

#define ASSERT_SHARED_CAPABILITY(x) \
  LEXEQUAL_THREAD_ANNOTATION(assert_shared_capability(x))

#define RETURN_CAPABILITY(x) LEXEQUAL_THREAD_ANNOTATION(lock_returned(x))

#define NO_THREAD_SAFETY_ANALYSIS \
  LEXEQUAL_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // LEXEQUAL_COMMON_THREAD_ANNOTATIONS_H_
