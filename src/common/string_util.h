// Small string helpers shared across modules.

#ifndef LEXEQUAL_COMMON_STRING_UTIL_H_
#define LEXEQUAL_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace lexequal {

/// ASCII-lowercases a string (non-ASCII bytes pass through untouched).
std::string AsciiToLower(std::string_view s);

/// ASCII-uppercases a string (non-ASCII bytes pass through untouched).
std::string AsciiToUpper(std::string_view s);

/// Splits on a single-character delimiter; empty fields are kept.
std::vector<std::string> Split(std::string_view s, char delim);

/// Joins pieces with a separator.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep);

/// Strips ASCII whitespace from both ends.
std::string_view StripAsciiWhitespace(std::string_view s);

/// True if `s` starts with `prefix`.
inline bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

/// True if `s` ends with `suffix`.
inline bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

/// True if c is an ASCII letter.
inline bool IsAsciiAlpha(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
}

/// True if c is an ASCII vowel letter (either case).
bool IsAsciiVowel(char c);

}  // namespace lexequal

#endif  // LEXEQUAL_COMMON_STRING_UTIL_H_
