// Result<T>: a value-or-Status union, the return type of fallible
// functions that produce a value (the Arrow/absl StatusOr idiom).

#ifndef LEXEQUAL_COMMON_RESULT_H_
#define LEXEQUAL_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace lexequal {

/// Holds either a T (status is OK) or a non-OK Status.
///
/// Accessing value() on an error Result is a programming error and
/// asserts in debug builds. Typical use:
///
///   Result<PhonemeString> r = converter.ToPhonemes(text);
///   if (!r.ok()) return r.status();
///   Use(r.value());
///
/// Like Status, Result is [[nodiscard]]: dropping one on the floor
/// loses both the value and the failure it may carry.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from a value: allows `return value;` in factory functions.
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}
  /// Implicit from a Status: allows `return Status::NotFound(...)`.
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  [[nodiscard]] bool ok() const { return status_.ok(); }
  [[nodiscard]] const Status& status() const { return status_; }

  [[nodiscard]] const T& value() const& {
    assert(ok());
    return *value_;
  }
  [[nodiscard]] T& value() & {
    assert(ok());
    return *value_;
  }
  [[nodiscard]] T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the contained value or `fallback` when in error state.
  [[nodiscard]] T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Evaluates `rexpr` (a Result<T>), propagating its Status on error,
/// otherwise assigning the value to `lhs`.
#define LEXEQUAL_ASSIGN_OR_RETURN(lhs, rexpr)                \
  LEXEQUAL_ASSIGN_OR_RETURN_IMPL_(                           \
      LEXEQUAL_CONCAT_(_result_tmp_, __LINE__), lhs, rexpr)

#define LEXEQUAL_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                    \
  if (!tmp.ok()) return tmp.status();                    \
  lhs = std::move(tmp).value()

#define LEXEQUAL_CONCAT_(a, b) LEXEQUAL_CONCAT_IMPL_(a, b)
#define LEXEQUAL_CONCAT_IMPL_(a, b) a##b

}  // namespace lexequal

#endif  // LEXEQUAL_COMMON_RESULT_H_
