#include "common/string_util.h"

namespace lexequal {

std::string AsciiToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

std::string AsciiToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'a' && c <= 'z') c = static_cast<char>(c - 'a' + 'A');
  }
  return out;
}

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

std::string_view StripAsciiWhitespace(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  auto is_ws = [](char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
           c == '\v';
  };
  while (b < e && is_ws(s[b])) ++b;
  while (e > b && is_ws(s[e - 1])) --e;
  return s.substr(b, e - b);
}

bool IsAsciiVowel(char c) {
  switch (c) {
    case 'a': case 'e': case 'i': case 'o': case 'u':
    case 'A': case 'E': case 'I': case 'O': case 'U':
      return true;
    default:
      return false;
  }
}

}  // namespace lexequal
