#include "storage/slotted_page.h"

#include <cstring>

namespace lexequal::storage {

namespace {
constexpr size_t kNextPageOffset = 0;
constexpr size_t kNumSlotsOffset = 4;
constexpr size_t kFreePtrOffset = 6;
}  // namespace

uint16_t SlottedPage::ReadU16(size_t offset) const {
  uint16_t v;
  std::memcpy(&v, page_->data() + offset, sizeof(v));
  return v;
}

void SlottedPage::WriteU16(size_t offset, uint16_t value) {
  std::memcpy(page_->data() + offset, &value, sizeof(value));
}

uint32_t SlottedPage::ReadU32(size_t offset) const {
  uint32_t v;
  std::memcpy(&v, page_->data() + offset, sizeof(v));
  return v;
}

void SlottedPage::WriteU32(size_t offset, uint32_t value) {
  std::memcpy(page_->data() + offset, &value, sizeof(value));
}

void SlottedPage::Init() {
  WriteU32(kNextPageOffset, kInvalidPageId);
  WriteU16(kNumSlotsOffset, 0);
  WriteU16(kFreePtrOffset, static_cast<uint16_t>(kPageSize));
}

PageId SlottedPage::next_page_id() const {
  return ReadU32(kNextPageOffset);
}

void SlottedPage::set_next_page_id(PageId id) {
  WriteU32(kNextPageOffset, id);
}

uint16_t SlottedPage::slot_count() const {
  return ReadU16(kNumSlotsOffset);
}

size_t SlottedPage::FreeSpace() const {
  const size_t slots_end = kHeaderSize + slot_count() * kSlotSize;
  const size_t free_ptr = ReadU16(kFreePtrOffset);
  const size_t gap = free_ptr > slots_end ? free_ptr - slots_end : 0;
  return gap > kSlotSize ? gap - kSlotSize : 0;
}

Result<uint16_t> SlottedPage::Insert(std::string_view record) {
  if (record.empty()) {
    return Status::InvalidArgument("empty record");
  }
  if (record.size() > FreeSpace()) {
    return Status::ResourceExhausted(
        "record of " + std::to_string(record.size()) +
        " bytes does not fit (free: " + std::to_string(FreeSpace()) +
        ")");
  }
  const uint16_t slot = slot_count();
  const uint16_t new_free =
      static_cast<uint16_t>(ReadU16(kFreePtrOffset) - record.size());
  std::memcpy(page_->data() + new_free, record.data(), record.size());
  WriteU16(kFreePtrOffset, new_free);
  const size_t slot_offset = kHeaderSize + slot * kSlotSize;
  WriteU16(slot_offset, new_free);
  WriteU16(slot_offset + 2, static_cast<uint16_t>(record.size()));
  WriteU16(kNumSlotsOffset, slot + 1);
  return slot;
}

Result<std::string_view> SlottedPage::Get(uint16_t slot) const {
  if (slot >= slot_count()) {
    return Status::NotFound("slot " + std::to_string(slot) +
                            " out of range");
  }
  const size_t slot_offset = kHeaderSize + slot * kSlotSize;
  const uint16_t offset = ReadU16(slot_offset);
  if (offset == kDeletedSlot) {
    return Status::NotFound("slot " + std::to_string(slot) +
                            " is deleted");
  }
  const uint16_t size = ReadU16(slot_offset + 2);
  return std::string_view(page_->data() + offset, size);
}

Status SlottedPage::Delete(uint16_t slot) {
  if (slot >= slot_count()) {
    return Status::NotFound("slot " + std::to_string(slot) +
                            " out of range");
  }
  const size_t slot_offset = kHeaderSize + slot * kSlotSize;
  if (ReadU16(slot_offset) == kDeletedSlot) {
    return Status::NotFound("slot " + std::to_string(slot) +
                            " already deleted");
  }
  WriteU16(slot_offset, kDeletedSlot);
  return Status::OK();
}

}  // namespace lexequal::storage
