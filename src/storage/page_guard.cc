#include "storage/page_guard.h"

namespace lexequal::storage {

Result<PageGuard> PageGuard::Fetch(BufferPool* pool, PageId id) {
  Page* page;
  LEXEQUAL_ASSIGN_OR_RETURN(page, pool->FetchPage(id));
  return PageGuard(pool, page);
}

Result<PageGuard> PageGuard::New(BufferPool* pool) {
  Page* page;
  LEXEQUAL_ASSIGN_OR_RETURN(page, pool->NewPage());
  return PageGuard(pool, page);
}

Status PageGuard::Release() {
  if (page_ == nullptr) return Status::OK();
  const PageId id = page_->page_id();
  page_ = nullptr;
  BufferPool* pool = std::exchange(pool_, nullptr);
  const bool dirty = std::exchange(dirty_, false);
  return pool->UnpinPage(id, dirty);
}

void PageGuard::Drop() {
  IgnoreNonFatal(Release(), "destructor path has no error channel; "
                            "success paths Release() explicitly");
}

}  // namespace lexequal::storage
