// SlottedPage: variable-length record storage inside one page.
//
// Layout:
//   [next_page_id:4][num_slots:2][free_ptr:2]  header (8 bytes)
//   [slot 0][slot 1]...                        growing upward
//   ...free space...
//   [record data]                              growing downward
//
// Each slot is {offset:2, size:2}; a deleted slot keeps its index
// (RIDs stay stable) with offset kDeletedSlot.

#ifndef LEXEQUAL_STORAGE_SLOTTED_PAGE_H_
#define LEXEQUAL_STORAGE_SLOTTED_PAGE_H_

#include <optional>
#include <string_view>

#include "common/result.h"
#include "storage/page.h"

namespace lexequal::storage {

/// A typed view over a Page holding slotted records. The view does
/// not own the page and must not outlive its pin.
class SlottedPage {
 public:
  explicit SlottedPage(Page* page) : page_(page) {}

  /// Formats a fresh page (call once after NewPage).
  void Init();

  /// Next page in the owning heap file's chain.
  PageId next_page_id() const;
  void set_next_page_id(PageId id);

  /// Number of slots ever created (including deleted ones).
  uint16_t slot_count() const;

  /// Bytes available for one more record (including its slot entry).
  size_t FreeSpace() const;

  /// Inserts a record; fails with ResourceExhausted when it does not
  /// fit. Records must be non-empty and < ~4000 bytes.
  Result<uint16_t> Insert(std::string_view record);

  /// Returns the record at `slot`, or NotFound for deleted/bad slots.
  Result<std::string_view> Get(uint16_t slot) const;

  /// Tombstones the record at `slot` (space is not reclaimed; the
  /// paper's workloads are append-only, deletion exists for API
  /// completeness and tests).
  Status Delete(uint16_t slot);

 private:
  static constexpr size_t kHeaderSize = 8;
  static constexpr size_t kSlotSize = 4;
  static constexpr uint16_t kDeletedSlot = 0xFFFF;

  uint16_t ReadU16(size_t offset) const;
  void WriteU16(size_t offset, uint16_t value);
  uint32_t ReadU32(size_t offset) const;
  void WriteU32(size_t offset, uint32_t value);

  Page* page_;
};

}  // namespace lexequal::storage

#endif  // LEXEQUAL_STORAGE_SLOTTED_PAGE_H_
