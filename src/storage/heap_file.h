// HeapFile: an unordered collection of records in a chain of slotted
// pages, addressed by RID.

#ifndef LEXEQUAL_STORAGE_HEAP_FILE_H_
#define LEXEQUAL_STORAGE_HEAP_FILE_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "storage/buffer_pool.h"
#include "storage/slotted_page.h"

namespace lexequal::storage {

/// A heap file rooted at its first page id. Inserts append to the
/// last page (tracked in memory); scans follow the page chain.
class HeapFile {
 public:
  /// Creates a new, empty heap file.
  static Result<HeapFile> Create(BufferPool* pool);

  /// Re-opens an existing heap file rooted at `first_page`.
  static Result<HeapFile> Open(BufferPool* pool, PageId first_page);

  /// Appends a record and returns its RID.
  Result<RID> Insert(std::string_view record);

  /// Reads the record at `rid` into an owned string (the page pin is
  /// released before returning).
  Result<std::string> Get(const RID& rid) const;

  /// Tombstones the record at `rid`.
  Status Delete(const RID& rid);

  PageId first_page() const { return first_page_; }
  uint64_t record_count() const { return record_count_; }

  /// Forward iterator over live records. Usage:
  ///   auto it = heap.Begin();
  ///   LEXEQUAL_RETURN_IF_ERROR(it.status());
  ///   for (; !it.AtEnd(); ...) { ... LEXEQUAL_RETURN_IF_ERROR(it.Next()); }
  /// Iteration holds no pins between Next() calls.
  class Iterator {
   public:
    bool AtEnd() const { return at_end_; }
    const RID& rid() const { return rid_; }
    const std::string& record() const { return record_; }

    /// Error hit while settling onto the first record, if any. A
    /// failed Begin() is NOT AtEnd() — callers must check status()
    /// (or call Next(), which re-surfaces it) rather than treat an
    /// unreadable heap as an empty one.
    Status status() const { return error_; }

    /// Advances to the next live record; surfaces I/O errors.
    Status Next();

   private:
    friend class HeapFile;
    Iterator(BufferPool* pool, PageId first_page);
    // Moves to the first live slot at or after (page_, slot_).
    Status Settle();

    BufferPool* pool_;
    PageId page_;
    uint16_t slot_;
    bool at_end_;
    RID rid_;
    std::string record_;
    Status error_;
  };

  Iterator Begin() const;

 private:
  HeapFile(BufferPool* pool, PageId first, PageId last, uint64_t count)
      : pool_(pool),
        first_page_(first),
        last_page_(last),
        record_count_(count) {}

  BufferPool* pool_;
  PageId first_page_;
  PageId last_page_;
  uint64_t record_count_;
};

}  // namespace lexequal::storage

#endif  // LEXEQUAL_STORAGE_HEAP_FILE_H_
