// BufferPool: fixed set of page frames with LRU replacement and
// pin/unpin discipline.

#ifndef LEXEQUAL_STORAGE_BUFFER_POOL_H_
#define LEXEQUAL_STORAGE_BUFFER_POOL_H_

#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "storage/disk_manager.h"
#include "storage/page.h"

namespace lexequal::storage {

/// Counters exposed for the efficiency experiments: buffered vs.
/// on-disk behaviour is part of the Table 1-3 story.
struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t flushes = 0;
};

/// LRU buffer pool. Callers must Unpin every page they Fetch/New;
/// a pinned page is never evicted. Single-threaded.
class BufferPool {
 public:
  /// `pool_size` frames over `disk` (borrowed; must outlive the pool).
  BufferPool(DiskManager* disk, size_t pool_size);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  ~BufferPool();

  /// Pins page `id`, reading it from disk if absent. Fails with
  /// ResourceExhausted when every frame is pinned.
  Result<Page*> FetchPage(PageId id);

  /// Allocates a new page on disk and pins it.
  Result<Page*> NewPage();

  /// Releases one pin; `dirty` marks the page as modified.
  Status UnpinPage(PageId id, bool dirty);

  /// Writes a page back if dirty (keeps it buffered).
  Status FlushPage(PageId id);

  /// Flushes every dirty page.
  Status FlushAll();

  const BufferPoolStats& stats() const { return stats_; }
  size_t pool_size() const { return frames_.size(); }
  DiskManager* disk() const { return disk_; }

 private:
  // Finds a victim frame: a free one, else the LRU unpinned one.
  Result<size_t> GetVictimFrame();

  DiskManager* disk_;
  std::vector<std::unique_ptr<Page>> frames_;
  std::unordered_map<PageId, size_t> page_table_;  // page id -> frame
  std::list<size_t> lru_;  // unpinned frames, least-recent first
  std::unordered_map<size_t, std::list<size_t>::iterator> lru_pos_;
  std::vector<size_t> free_frames_;
  BufferPoolStats stats_;
};

}  // namespace lexequal::storage

#endif  // LEXEQUAL_STORAGE_BUFFER_POOL_H_
