// BufferPool: fixed set of page frames with LRU replacement and
// pin/unpin discipline.

#ifndef LEXEQUAL_STORAGE_BUFFER_POOL_H_
#define LEXEQUAL_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"
#include "storage/disk_manager.h"
#include "storage/page.h"

namespace lexequal::storage {

/// Counter snapshot exposed for the efficiency experiments: buffered
/// vs. on-disk behaviour is part of the Table 1-3 story. Returned by
/// value from BufferPool::stats(); the live counters are atomic, so a
/// snapshot taken while another thread drives evictions is safe (if
/// not a single consistent cut — each field is individually exact).
struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t flushes = 0;
};

/// LRU buffer pool. Callers must Unpin every page they Fetch/New;
/// a pinned page is never evicted.
///
/// Threading: safe for concurrent callers. Any number of sessions
/// fetch and unpin pages in parallel under the engine's shared latch,
/// so the frame bookkeeping — page table, LRU list, pin counts — is
/// guarded by an internal mutex (held across the disk read of a
/// faulting fetch; correctness first, the concurrency experiments run
/// warm). Page *contents* are not guarded here: the engine latch
/// already serializes page writers against readers. The counters are
/// std::atomic so stats() needs no lock, and they mirror into the
/// process-wide MetricsRegistry (lexequal_bufpool_*), which
/// aggregates across every pool instance.
class BufferPool {
 public:
  /// `pool_size` frames over `disk` (borrowed; must outlive the pool).
  BufferPool(DiskManager* disk, size_t pool_size);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  ~BufferPool();

  /// Pins page `id`, reading it from disk if absent. Fails with
  /// ResourceExhausted when every frame is pinned.
  Result<Page*> FetchPage(PageId id);

  /// Allocates a new page on disk and pins it.
  Result<Page*> NewPage();

  /// Releases one pin; `dirty` marks the page as modified.
  Status UnpinPage(PageId id, bool dirty);

  /// Writes a page back if dirty (keeps it buffered).
  Status FlushPage(PageId id);

  /// Flushes every dirty page.
  Status FlushAll();

  /// Atomic snapshot of this pool's counters (thread-safe).
  BufferPoolStats stats() const {
    BufferPoolStats out;
    out.hits = counters_.hits.load(std::memory_order_relaxed);
    out.misses = counters_.misses.load(std::memory_order_relaxed);
    out.evictions = counters_.evictions.load(std::memory_order_relaxed);
    out.flushes = counters_.flushes.load(std::memory_order_relaxed);
    return out;
  }
  size_t pool_size() const { return frames_.size(); }

  /// Pages currently resident in frames — the occupancy side of the
  /// health snapshot. Takes the bookkeeping mutex (cold path only).
  size_t resident_pages() const EXCLUDES(mu_) {
    common::MutexLock lock(&mu_);
    return page_table_.size();
  }

  DiskManager* disk() const { return disk_; }

 private:
  // Per-pool live counters plus their process-wide registry mirrors.
  struct AtomicStats {
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> misses{0};
    std::atomic<uint64_t> evictions{0};
    std::atomic<uint64_t> flushes{0};
  };

  // Finds a victim frame: a free one, else the LRU unpinned one.
  Result<size_t> GetVictimFrameLocked() REQUIRES(mu_);

  mutable common::Mutex mu_;  // guards the frame bookkeeping below
  DiskManager* const disk_;   // borrowed; internally synchronized
  // Sized once in the constructor and never resized; the frame
  // *contents* (pin counts, dirty bits, page bytes) mutate only with
  // mu_ held, so pool_size() may read frames_.size() lock-free.
  // lexlint:allow(guards): frames_ vector shape is immutable after construction; element state is mutated under mu_
  std::vector<std::unique_ptr<Page>> frames_;
  std::unordered_map<PageId, size_t> page_table_
      GUARDED_BY(mu_);  // page id -> frame
  // Unpinned frames, least-recent first.
  std::list<size_t> lru_ GUARDED_BY(mu_);
  std::unordered_map<size_t, std::list<size_t>::iterator> lru_pos_
      GUARDED_BY(mu_);
  std::vector<size_t> free_frames_ GUARDED_BY(mu_);
  AtomicStats counters_;
  obs::Counter* const m_hits_;
  obs::Counter* const m_misses_;
  obs::Counter* const m_evictions_;
  obs::Counter* const m_flushes_;
};

}  // namespace lexequal::storage

#endif  // LEXEQUAL_STORAGE_BUFFER_POOL_H_
