#include "storage/disk_manager.h"

#include <cerrno>
#include <cstring>
#include <memory>

#include "obs/metrics.h"

namespace lexequal::storage {

namespace {

// Process-wide disk I/O counters, shared across every DiskManager.
// Function-local statics keep the registration off the hot path.
obs::Counter* DiskReads() {
  static obs::Counter* c = obs::MetricsRegistry::Default().GetCounter(
      "lexequal_disk_reads", "Pages read from disk");
  return c;
}

obs::Counter* DiskWrites() {
  static obs::Counter* c = obs::MetricsRegistry::Default().GetCounter(
      "lexequal_disk_writes", "Pages written to disk");
  return c;
}

}  // namespace

Result<std::unique_ptr<DiskManager>> DiskManager::Open(
    const std::string& path) {
  // "a" then reopen r+b: creates the file if absent without
  // truncating existing data.
  std::FILE* probe = std::fopen(path.c_str(), "ab");
  if (probe == nullptr) {
    return Status::IOError("cannot create '" + path +
                           "': " + std::strerror(errno));
  }
  std::fclose(probe);
  std::FILE* file = std::fopen(path.c_str(), "r+b");
  if (file == nullptr) {
    return Status::IOError("cannot open '" + path +
                           "': " + std::strerror(errno));
  }
  if (std::fseek(file, 0, SEEK_END) != 0) {
    std::fclose(file);
    return Status::IOError("seek failed on '" + path + "'");
  }
  const long size = std::ftell(file);
  if (size < 0 || size % static_cast<long>(kPageSize) != 0) {
    std::fclose(file);
    return Status::Corruption("file '" + path +
                              "' is not page-aligned: " +
                              std::to_string(size) + " bytes");
  }
  const PageId pages = static_cast<PageId>(size / kPageSize);
  return std::unique_ptr<DiskManager>(
      new DiskManager(path, file, pages));
}

DiskManager::~DiskManager() {
  if (file_ != nullptr) {
    std::fflush(file_);
    std::fclose(file_);
  }
}

Result<PageId> DiskManager::AllocatePage() {
  const PageId id = page_count_;
  char zeros[kPageSize];
  std::memset(zeros, 0, kPageSize);
  LEXEQUAL_RETURN_IF_ERROR(WritePage(id, zeros));
  page_count_ = id + 1;
  return id;
}

Status DiskManager::ReadPage(PageId id, char* out) {
  if (id >= page_count_) {
    return Status::OutOfRange("read of unallocated page " +
                              std::to_string(id));
  }
  const long offset = static_cast<long>(id) * kPageSize;
  if (std::fseek(file_, offset, SEEK_SET) != 0) {
    return Status::IOError("seek failed reading page " +
                           std::to_string(id));
  }
  if (std::fread(out, 1, kPageSize, file_) != kPageSize) {
    return Status::IOError("short read of page " + std::to_string(id));
  }
  DiskReads()->Inc();
  return Status::OK();
}

Status DiskManager::WritePage(PageId id, const char* data) {
  if (id > page_count_) {
    return Status::OutOfRange("write of unallocated page " +
                              std::to_string(id));
  }
  const long offset = static_cast<long>(id) * kPageSize;
  if (std::fseek(file_, offset, SEEK_SET) != 0) {
    return Status::IOError("seek failed writing page " +
                           std::to_string(id));
  }
  if (std::fwrite(data, 1, kPageSize, file_) != kPageSize) {
    return Status::IOError("short write of page " + std::to_string(id));
  }
  DiskWrites()->Inc();
  return Status::OK();
}

Status DiskManager::Sync() {
  if (std::fflush(file_) != 0) {
    return Status::IOError("fflush failed on '" + path_ + "'");
  }
  return Status::OK();
}

}  // namespace lexequal::storage
