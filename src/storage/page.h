// Page: the unit of disk I/O and buffering.
//
// The engine is single-threaded by design (the paper's experiments
// are single-stream query timings); pages carry pin counts for
// buffer-pool correctness but no latches.

#ifndef LEXEQUAL_STORAGE_PAGE_H_
#define LEXEQUAL_STORAGE_PAGE_H_

#include <cstdint>
#include <cstring>

namespace lexequal::storage {

/// Page identifier; kInvalidPageId marks "no page".
using PageId = uint32_t;
inline constexpr PageId kInvalidPageId = 0xFFFFFFFFu;

/// Page size in bytes. 4 KiB, the common database default.
inline constexpr size_t kPageSize = 4096;

/// An in-memory frame holding one disk page.
class Page {
 public:
  Page() { Reset(); }

  Page(const Page&) = delete;
  Page& operator=(const Page&) = delete;

  char* data() { return data_; }
  const char* data() const { return data_; }

  PageId page_id() const { return page_id_; }
  bool is_dirty() const { return is_dirty_; }
  int pin_count() const { return pin_count_; }

  void set_page_id(PageId id) { page_id_ = id; }
  void set_dirty(bool dirty) { is_dirty_ = dirty; }
  void IncPin() { ++pin_count_; }
  void DecPin() {
    if (pin_count_ > 0) --pin_count_;
  }

  /// Returns the frame to its pristine state (buffer pool internal).
  void Reset() {
    std::memset(data_, 0, kPageSize);
    page_id_ = kInvalidPageId;
    is_dirty_ = false;
    pin_count_ = 0;
  }

 private:
  char data_[kPageSize];
  PageId page_id_;
  bool is_dirty_;
  int pin_count_;
};

/// Record identifier: a tuple's physical address.
struct RID {
  PageId page_id = kInvalidPageId;
  uint16_t slot = 0;

  bool valid() const { return page_id != kInvalidPageId; }

  friend bool operator==(const RID& a, const RID& b) {
    return a.page_id == b.page_id && a.slot == b.slot;
  }
  friend bool operator<(const RID& a, const RID& b) {
    if (a.page_id != b.page_id) return a.page_id < b.page_id;
    return a.slot < b.slot;
  }
};

}  // namespace lexequal::storage

#endif  // LEXEQUAL_STORAGE_PAGE_H_
