// DiskManager: page-granular file I/O.

#ifndef LEXEQUAL_STORAGE_DISK_MANAGER_H_
#define LEXEQUAL_STORAGE_DISK_MANAGER_H_

#include <cstdio>
#include <memory>
#include <string>

#include "common/result.h"
#include "storage/page.h"

namespace lexequal::storage {

/// Owns one database file and hands out page-aligned reads/writes.
/// Page allocation is append-only (no free list): the paper's
/// workloads are load-then-query.
class DiskManager {
 public:
  /// Opens (creating if necessary) the file at `path`.
  static Result<std::unique_ptr<DiskManager>> Open(
      const std::string& path);

  ~DiskManager();

  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;

  /// Allocates a fresh page (zero-filled on disk) and returns its id.
  Result<PageId> AllocatePage();

  /// Reads page `id` into `out` (kPageSize bytes).
  Status ReadPage(PageId id, char* out);

  /// Writes kPageSize bytes from `data` to page `id`.
  Status WritePage(PageId id, const char* data);

  /// Flushes OS buffers to disk.
  Status Sync();

  /// Number of pages allocated so far.
  PageId page_count() const { return page_count_; }

  const std::string& path() const { return path_; }

 private:
  DiskManager(std::string path, std::FILE* file, PageId page_count)
      : path_(std::move(path)), file_(file), page_count_(page_count) {}

  std::string path_;
  std::FILE* file_;
  PageId page_count_;
};

}  // namespace lexequal::storage

#endif  // LEXEQUAL_STORAGE_DISK_MANAGER_H_
