#include "storage/buffer_pool.h"

namespace lexequal::storage {

BufferPool::BufferPool(DiskManager* disk, size_t pool_size)
    : disk_(disk),
      m_hits_(obs::MetricsRegistry::Default().GetCounter(
          "lexequal_bufpool_hits", "Buffer pool page hits")),
      m_misses_(obs::MetricsRegistry::Default().GetCounter(
          "lexequal_bufpool_misses",
          "Buffer pool page misses (disk faults)")),
      m_evictions_(obs::MetricsRegistry::Default().GetCounter(
          "lexequal_bufpool_evictions",
          "Frames reclaimed from the LRU list")),
      m_flushes_(obs::MetricsRegistry::Default().GetCounter(
          "lexequal_bufpool_flushes",
          "Dirty pages written back to disk")) {
  frames_.reserve(pool_size);
  free_frames_.reserve(pool_size);
  for (size_t i = 0; i < pool_size; ++i) {
    frames_.push_back(std::make_unique<Page>());
    free_frames_.push_back(pool_size - 1 - i);  // pop from the back
  }
}

BufferPool::~BufferPool() {
  // Best effort: persist what we can; callers that care must
  // FlushAll explicitly.
  IgnoreNonFatal(FlushAll(), "destructor flush has no error channel");
}

Result<size_t> BufferPool::GetVictimFrameLocked() {
  if (!free_frames_.empty()) {
    size_t frame = free_frames_.back();
    free_frames_.pop_back();
    return frame;
  }
  if (lru_.empty()) {
    return Status::ResourceExhausted(
        "buffer pool exhausted: all " + std::to_string(frames_.size()) +
        " frames are pinned");
  }
  size_t frame = lru_.front();
  lru_.pop_front();
  lru_pos_.erase(frame);
  Page* victim = frames_[frame].get();
  if (victim->is_dirty()) {
    LEXEQUAL_RETURN_IF_ERROR(
        disk_->WritePage(victim->page_id(), victim->data()));
    counters_.flushes.fetch_add(1, std::memory_order_relaxed);
    m_flushes_->Inc();
  }
  page_table_.erase(victim->page_id());
  counters_.evictions.fetch_add(1, std::memory_order_relaxed);
  m_evictions_->Inc();
  victim->Reset();
  return frame;
}

Result<Page*> BufferPool::FetchPage(PageId id) {
  common::MutexLock lock(&mu_);
  auto it = page_table_.find(id);
  if (it != page_table_.end()) {
    counters_.hits.fetch_add(1, std::memory_order_relaxed);
    m_hits_->Inc();
    size_t frame = it->second;
    Page* page = frames_[frame].get();
    // A page moving from unpinned to pinned leaves the LRU list.
    auto lru_it = lru_pos_.find(frame);
    if (lru_it != lru_pos_.end()) {
      lru_.erase(lru_it->second);
      lru_pos_.erase(lru_it);
    }
    page->IncPin();
    return page;
  }
  counters_.misses.fetch_add(1, std::memory_order_relaxed);
  m_misses_->Inc();
  size_t frame;
  LEXEQUAL_ASSIGN_OR_RETURN(frame, GetVictimFrameLocked());
  Page* page = frames_[frame].get();
  Status read = disk_->ReadPage(id, page->data());
  if (!read.ok()) {
    free_frames_.push_back(frame);
    return read;
  }
  page->set_page_id(id);
  page->IncPin();
  page_table_[id] = frame;
  return page;
}

Result<Page*> BufferPool::NewPage() {
  common::MutexLock lock(&mu_);
  PageId id;
  LEXEQUAL_ASSIGN_OR_RETURN(id, disk_->AllocatePage());
  size_t frame;
  LEXEQUAL_ASSIGN_OR_RETURN(frame, GetVictimFrameLocked());
  Page* page = frames_[frame].get();
  page->set_page_id(id);
  page->IncPin();
  page->set_dirty(true);  // newly allocated pages must reach disk
  page_table_[id] = frame;
  return page;
}

Status BufferPool::UnpinPage(PageId id, bool dirty) {
  common::MutexLock lock(&mu_);
  auto it = page_table_.find(id);
  if (it == page_table_.end()) {
    return Status::NotFound("unpin of unbuffered page " +
                            std::to_string(id));
  }
  size_t frame = it->second;
  Page* page = frames_[frame].get();
  if (page->pin_count() == 0) {
    return Status::Internal("unpin of unpinned page " +
                            std::to_string(id));
  }
  if (dirty) page->set_dirty(true);
  page->DecPin();
  if (page->pin_count() == 0) {
    lru_.push_back(frame);
    lru_pos_[frame] = std::prev(lru_.end());
  }
  return Status::OK();
}

Status BufferPool::FlushPage(PageId id) {
  common::MutexLock lock(&mu_);
  auto it = page_table_.find(id);
  if (it == page_table_.end()) {
    return Status::NotFound("flush of unbuffered page " +
                            std::to_string(id));
  }
  Page* page = frames_[it->second].get();
  if (page->is_dirty()) {
    LEXEQUAL_RETURN_IF_ERROR(disk_->WritePage(id, page->data()));
    page->set_dirty(false);
    counters_.flushes.fetch_add(1, std::memory_order_relaxed);
    m_flushes_->Inc();
  }
  return Status::OK();
}

Status BufferPool::FlushAll() {
  common::MutexLock lock(&mu_);
  for (const auto& [id, frame] : page_table_) {
    Page* page = frames_[frame].get();
    if (page->is_dirty()) {
      LEXEQUAL_RETURN_IF_ERROR(disk_->WritePage(id, page->data()));
      page->set_dirty(false);
      counters_.flushes.fetch_add(1, std::memory_order_relaxed);
      m_flushes_->Inc();
    }
  }
  return disk_->Sync();
}

}  // namespace lexequal::storage
