// PageGuard: RAII ownership of one buffer-pool pin.
//
// Every FetchPage/NewPage outside the pool implementation must flow
// through this guard — enforced by the `bufpool` rule of
// tools/lexlint. A manually managed pin that leaks on an early error
// return is never reclaimed; once enough leak, the pool has no
// evictable frame left and scans start failing (or, worse, a partial
// scan is reported as a complete — and wrong — match set).

#ifndef LEXEQUAL_STORAGE_PAGE_GUARD_H_
#define LEXEQUAL_STORAGE_PAGE_GUARD_H_

#include <utility>

#include "common/result.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"

namespace lexequal::storage {

/// Owns a pinned page; unpins on destruction or explicit Release().
///
/// The dirty bit is sticky: call MarkDirty() after the first
/// mutation, and the eventual unpin reports the page as modified.
/// Success paths should Release() explicitly so the unpin Status can
/// propagate; the destructor covers early error returns, where the
/// unpin result has no channel and is dropped via IgnoreNonFatal.
class PageGuard {
 public:
  /// Empty guard (holds no pin); assign from Fetch()/New().
  PageGuard() = default;

  /// Pins page `id`, reading it from disk if absent.
  static Result<PageGuard> Fetch(BufferPool* pool, PageId id);

  /// Allocates a new page on disk and pins it.
  static Result<PageGuard> New(BufferPool* pool);

  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  PageGuard(PageGuard&& other) noexcept { *this = std::move(other); }
  PageGuard& operator=(PageGuard&& other) noexcept {
    if (this != &other) {
      Drop();
      pool_ = std::exchange(other.pool_, nullptr);
      page_ = std::exchange(other.page_, nullptr);
      dirty_ = std::exchange(other.dirty_, false);
    }
    return *this;
  }
  ~PageGuard() { Drop(); }

  /// The pinned page; null for an empty guard.
  Page* get() const { return page_; }
  Page* operator->() const { return page_; }
  /// Id of the pinned page. Must hold a page.
  PageId id() const { return page_->page_id(); }
  bool holds_page() const { return page_ != nullptr; }

  /// Marks the page modified; the unpin will report it dirty.
  void MarkDirty() { dirty_ = true; }

  /// Unpins now, surfacing the pool's Status; the guard is empty
  /// afterwards (and on an empty guard this is a no-op OK).
  Status Release();

 private:
  PageGuard(BufferPool* pool, Page* page) : pool_(pool), page_(page) {}
  void Drop();

  BufferPool* pool_ = nullptr;
  Page* page_ = nullptr;
  bool dirty_ = false;
};

}  // namespace lexequal::storage

#endif  // LEXEQUAL_STORAGE_PAGE_GUARD_H_
