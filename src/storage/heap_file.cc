#include "storage/heap_file.h"

#include "storage/page_guard.h"

namespace lexequal::storage {

Result<HeapFile> HeapFile::Create(BufferPool* pool) {
  PageGuard guard;
  LEXEQUAL_ASSIGN_OR_RETURN(guard, PageGuard::New(pool));
  SlottedPage sp(guard.get());
  sp.Init();
  guard.MarkDirty();
  const PageId id = guard.id();
  LEXEQUAL_RETURN_IF_ERROR(guard.Release());
  return HeapFile(pool, id, id, 0);
}

Result<HeapFile> HeapFile::Open(BufferPool* pool, PageId first_page) {
  // Walk the chain to find the tail and count records.
  PageId page_id = first_page;
  PageId last = first_page;
  uint64_t count = 0;
  while (page_id != kInvalidPageId) {
    PageGuard guard;
    LEXEQUAL_ASSIGN_OR_RETURN(guard, PageGuard::Fetch(pool, page_id));
    SlottedPage sp(guard.get());
    for (uint16_t s = 0; s < sp.slot_count(); ++s) {
      if (sp.Get(s).ok()) ++count;
    }
    last = page_id;
    page_id = sp.next_page_id();
    LEXEQUAL_RETURN_IF_ERROR(guard.Release());
  }
  return HeapFile(pool, first_page, last, count);
}

Result<RID> HeapFile::Insert(std::string_view record) {
  PageGuard tail;
  LEXEQUAL_ASSIGN_OR_RETURN(tail, PageGuard::Fetch(pool_, last_page_));
  SlottedPage sp(tail.get());
  Result<uint16_t> slot = sp.Insert(record);
  if (slot.ok()) {
    RID rid{last_page_, slot.value()};
    tail.MarkDirty();
    LEXEQUAL_RETURN_IF_ERROR(tail.Release());
    ++record_count_;
    return rid;
  }
  if (!slot.status().IsResourceExhausted()) return slot.status();
  // Grow the chain.
  PageGuard fresh;
  LEXEQUAL_ASSIGN_OR_RETURN(fresh, PageGuard::New(pool_));
  SlottedPage fresh_sp(fresh.get());
  fresh_sp.Init();
  fresh.MarkDirty();
  sp.set_next_page_id(fresh.id());
  tail.MarkDirty();
  LEXEQUAL_RETURN_IF_ERROR(tail.Release());
  last_page_ = fresh.id();
  Result<uint16_t> slot2 = fresh_sp.Insert(record);
  if (!slot2.ok()) return slot2.status();  // record larger than a page
  RID rid{last_page_, slot2.value()};
  LEXEQUAL_RETURN_IF_ERROR(fresh.Release());
  ++record_count_;
  return rid;
}

Result<std::string> HeapFile::Get(const RID& rid) const {
  PageGuard guard;
  LEXEQUAL_ASSIGN_OR_RETURN(guard, PageGuard::Fetch(pool_, rid.page_id));
  SlottedPage sp(guard.get());
  Result<std::string_view> rec = sp.Get(rid.slot);
  if (!rec.ok()) return rec.status();
  std::string out(rec.value());
  LEXEQUAL_RETURN_IF_ERROR(guard.Release());
  return out;
}

Status HeapFile::Delete(const RID& rid) {
  PageGuard guard;
  LEXEQUAL_ASSIGN_OR_RETURN(guard, PageGuard::Fetch(pool_, rid.page_id));
  SlottedPage sp(guard.get());
  Status st = sp.Delete(rid.slot);
  if (st.ok()) guard.MarkDirty();
  LEXEQUAL_RETURN_IF_ERROR(guard.Release());
  if (st.ok() && record_count_ > 0) --record_count_;
  return st;
}

HeapFile::Iterator HeapFile::Begin() const {
  Iterator it(pool_, first_page_);
  // Settle onto the first record. A failure here must not masquerade
  // as an empty heap — a scan that silently starts at "end" returns a
  // wrong (empty) match set. The iterator records the error and stays
  // !AtEnd(); status() and Next() surface it to the scan.
  Status st = it.Settle();
  if (!st.ok()) it.error_ = std::move(st);
  return it;
}

HeapFile::Iterator::Iterator(BufferPool* pool, PageId first_page)
    : pool_(pool), page_(first_page), slot_(0), at_end_(false) {}

Status HeapFile::Iterator::Settle() {
  while (page_ != kInvalidPageId) {
    PageGuard guard;
    LEXEQUAL_ASSIGN_OR_RETURN(guard, PageGuard::Fetch(pool_, page_));
    SlottedPage sp(guard.get());
    const uint16_t n = sp.slot_count();
    while (slot_ < n) {
      Result<std::string_view> rec = sp.Get(slot_);
      if (rec.ok()) {
        rid_ = {page_, slot_};
        record_.assign(rec.value());
        return guard.Release();
      }
      ++slot_;
    }
    const PageId next = sp.next_page_id();
    LEXEQUAL_RETURN_IF_ERROR(guard.Release());
    page_ = next;
    slot_ = 0;
  }
  at_end_ = true;
  return Status::OK();
}

Status HeapFile::Iterator::Next() {
  LEXEQUAL_RETURN_IF_ERROR(error_);  // construction-time failure
  if (at_end_) return Status::OutOfRange("iterator past the end");
  ++slot_;
  return Settle();
}

}  // namespace lexequal::storage
