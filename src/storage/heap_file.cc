#include "storage/heap_file.h"

namespace lexequal::storage {

Result<HeapFile> HeapFile::Create(BufferPool* pool) {
  Page* page;
  LEXEQUAL_ASSIGN_OR_RETURN(page, pool->NewPage());
  SlottedPage sp(page);
  sp.Init();
  const PageId id = page->page_id();
  LEXEQUAL_RETURN_IF_ERROR(pool->UnpinPage(id, /*dirty=*/true));
  return HeapFile(pool, id, id, 0);
}

Result<HeapFile> HeapFile::Open(BufferPool* pool, PageId first_page) {
  // Walk the chain to find the tail and count records.
  PageId page_id = first_page;
  PageId last = first_page;
  uint64_t count = 0;
  while (page_id != kInvalidPageId) {
    Page* page;
    LEXEQUAL_ASSIGN_OR_RETURN(page, pool->FetchPage(page_id));
    SlottedPage sp(page);
    for (uint16_t s = 0; s < sp.slot_count(); ++s) {
      if (sp.Get(s).ok()) ++count;
    }
    last = page_id;
    page_id = sp.next_page_id();
    LEXEQUAL_RETURN_IF_ERROR(pool->UnpinPage(last, /*dirty=*/false));
  }
  return HeapFile(pool, first_page, last, count);
}

Result<RID> HeapFile::Insert(std::string_view record) {
  Page* page;
  LEXEQUAL_ASSIGN_OR_RETURN(page, pool_->FetchPage(last_page_));
  SlottedPage sp(page);
  Result<uint16_t> slot = sp.Insert(record);
  if (slot.ok()) {
    RID rid{last_page_, slot.value()};
    LEXEQUAL_RETURN_IF_ERROR(pool_->UnpinPage(last_page_, true));
    ++record_count_;
    return rid;
  }
  if (!slot.status().IsResourceExhausted()) {
    (void)pool_->UnpinPage(last_page_, false);
    return slot.status();
  }
  // Grow the chain.
  Page* fresh;
  Result<Page*> fresh_or = pool_->NewPage();
  if (!fresh_or.ok()) {
    (void)pool_->UnpinPage(last_page_, false);
    return fresh_or.status();
  }
  fresh = fresh_or.value();
  SlottedPage fresh_sp(fresh);
  fresh_sp.Init();
  sp.set_next_page_id(fresh->page_id());
  LEXEQUAL_RETURN_IF_ERROR(pool_->UnpinPage(last_page_, true));
  last_page_ = fresh->page_id();
  Result<uint16_t> slot2 = fresh_sp.Insert(record);
  if (!slot2.ok()) {
    (void)pool_->UnpinPage(last_page_, true);
    return slot2.status();  // record larger than a page
  }
  RID rid{last_page_, slot2.value()};
  LEXEQUAL_RETURN_IF_ERROR(pool_->UnpinPage(last_page_, true));
  ++record_count_;
  return rid;
}

Result<std::string> HeapFile::Get(const RID& rid) const {
  Page* page;
  LEXEQUAL_ASSIGN_OR_RETURN(page, pool_->FetchPage(rid.page_id));
  SlottedPage sp(page);
  Result<std::string_view> rec = sp.Get(rid.slot);
  if (!rec.ok()) {
    (void)pool_->UnpinPage(rid.page_id, false);
    return rec.status();
  }
  std::string out(rec.value());
  LEXEQUAL_RETURN_IF_ERROR(pool_->UnpinPage(rid.page_id, false));
  return out;
}

Status HeapFile::Delete(const RID& rid) {
  Page* page;
  LEXEQUAL_ASSIGN_OR_RETURN(page, pool_->FetchPage(rid.page_id));
  SlottedPage sp(page);
  Status st = sp.Delete(rid.slot);
  LEXEQUAL_RETURN_IF_ERROR(pool_->UnpinPage(rid.page_id, st.ok()));
  if (st.ok() && record_count_ > 0) --record_count_;
  return st;
}

HeapFile::Iterator HeapFile::Begin() const {
  Iterator it(pool_, first_page_);
  // Settle onto the first record; errors surface as AtEnd (the
  // explicit Next() API reports them on subsequent use).
  (void)it.Settle();
  return it;
}

HeapFile::Iterator::Iterator(BufferPool* pool, PageId first_page)
    : pool_(pool), page_(first_page), slot_(0), at_end_(false) {}

Status HeapFile::Iterator::Settle() {
  while (page_ != kInvalidPageId) {
    Page* page;
    LEXEQUAL_ASSIGN_OR_RETURN(page, pool_->FetchPage(page_));
    SlottedPage sp(page);
    const uint16_t n = sp.slot_count();
    while (slot_ < n) {
      Result<std::string_view> rec = sp.Get(slot_);
      if (rec.ok()) {
        rid_ = {page_, slot_};
        record_.assign(rec.value());
        return pool_->UnpinPage(page_, false);
      }
      ++slot_;
    }
    const PageId next = sp.next_page_id();
    LEXEQUAL_RETURN_IF_ERROR(pool_->UnpinPage(page_, false));
    page_ = next;
    slot_ = 0;
  }
  at_end_ = true;
  return Status::OK();
}

Status HeapFile::Iterator::Next() {
  if (at_end_) return Status::OutOfRange("iterator past the end");
  ++slot_;
  return Settle();
}

}  // namespace lexequal::storage
