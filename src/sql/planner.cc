#include "sql/planner.h"

#include <algorithm>
#include <cstdio>

#include "common/string_util.h"
#include "obs/stmt_stats.h"
#include "sql/fingerprint.h"
#include "sql/parser.h"
#include "text/utf8.h"

namespace lexequal::sql {

namespace {

using engine::LexEqualPlan;
using engine::LexEqualQueryOptions;
using engine::Session;
using engine::TableInfo;
using engine::Tuple;
using engine::Value;
using engine::ValueType;

Result<LexEqualPlan> ResolvePlanHint(const std::string& hint) {
  const std::string lower = AsciiToLower(hint);
  // No hint = the cost-based picker; kAuto resolves in the engine
  // (stats when ANALYZEd, a documented heuristic otherwise).
  if (lower.empty() || lower == "auto") return LexEqualPlan::kAuto;
  if (lower == "naive" || lower == "udf") return LexEqualPlan::kNaiveUdf;
  if (lower == "qgram" || lower == "qgrams") {
    return LexEqualPlan::kQGramFilter;
  }
  if (lower == "phonetic" || lower == "index") {
    return LexEqualPlan::kPhoneticIndex;
  }
  if (lower == "parallel" || lower == "batch") {
    return LexEqualPlan::kParallelScan;
  }
  if (lower == "invidx" || lower == "inverted") {
    return LexEqualPlan::kInvertedIndex;
  }
  return Status::InvalidArgument(
      "unknown plan hint '" + hint +
      "' (auto | naive | qgram | phonetic | parallel | invidx)");
}

Result<LexEqualQueryOptions> BuildOptions(const Predicate& pred,
                                          const std::string& hint) {
  LexEqualQueryOptions options;
  if (pred.threshold.has_value()) {
    options.match.threshold = *pred.threshold;
  }
  if (pred.cost.has_value()) {
    options.match.intra_cluster_cost = *pred.cost;
  }
  for (const std::string& lang : pred.in_languages) {
    text::Language parsed;
    LEXEQUAL_ASSIGN_OR_RETURN(parsed, text::ParseLanguage(lang));
    options.in_languages.push_back(parsed);
  }
  LEXEQUAL_ASSIGN_OR_RETURN(options.hints.plan, ResolvePlanHint(hint));
  return options;
}

// Stamps the statement's fingerprint identity onto the request at
// plan time, so Session::Execute records it under the normalized SQL
// text rather than a request-shape description.
void AttachFingerprint(const SelectStatement& stmt,
                       engine::QueryRequest* req) {
  Statement wrapper;
  wrapper.kind = StatementKind::kSelect;
  wrapper.select = stmt;
  req->statement = NormalizeStatement(wrapper);
  req->fingerprint = obs::FingerprintHash(req->statement);
}

// Resolves a column against one table; the qualifier (if any) must
// match the table's alias.
Result<uint32_t> ResolveColumn(const ColumnName& col, const TableRef& ref,
                               const TableInfo& info) {
  if (!col.qualifier.empty() &&
      AsciiToLower(col.qualifier) !=
          AsciiToLower(ref.effective_name())) {
    return Status::NotFound("qualifier '" + col.qualifier +
                            "' does not name table '" +
                            ref.effective_name() + "'");
  }
  return info.schema.IndexOf(col.column);
}

// Applies residual `col = literal` predicates to a row.
Result<bool> PassesResiduals(
    const Tuple& row,
    const std::vector<std::pair<uint32_t, Value>>& residuals) {
  for (const auto& [ordinal, literal] : residuals) {
    const Value& cell = row[ordinal];
    if (cell.type() == ValueType::kString &&
        literal.type() == ValueType::kString) {
      if (cell.AsString().text() != literal.AsString().text()) {
        return false;
      }
    } else if (!(cell == literal)) {
      return false;
    }
  }
  return true;
}

// ORDER BY lexsim(col, 'query') LIMIT k — ranked retrieval. The rows
// come back best-first from the engine (inverted-index top-K or the
// brute-force fallback, identical results), so no post-hoc sort; the
// projection grows a trailing "lexsim" score column.
Result<QueryResult> ExecuteTopK(Session* session,
                                const SelectStatement& stmt) {
  if (stmt.tables.size() != 1) {
    return Status::NotSupported(
        "ORDER BY lexsim(...) supports single-table queries");
  }
  if (!stmt.predicates.empty()) {
    return Status::NotSupported(
        "ORDER BY lexsim(...) cannot be combined with WHERE");
  }
  if (!stmt.limit.has_value() || *stmt.limit == 0) {
    return Status::InvalidArgument(
        "ORDER BY lexsim(...) requires LIMIT k with k >= 1");
  }
  const TableRef& ref = stmt.tables[0];
  TableInfo* info;
  LEXEQUAL_ASSIGN_OR_RETURN(info, session->engine()->GetTable(ref.table));

  LexEqualQueryOptions options;
  LEXEQUAL_ASSIGN_OR_RETURN(options.hints.plan,
                            ResolvePlanHint(stmt.plan_hint));
  const text::TaggedString query =
      text::TaggedString::WithDetectedLanguage(stmt.lexsim_order->query);
  engine::QueryRequest req = engine::QueryRequest::TopK(
      ref.table, stmt.lexsim_order->column.column, query, *stmt.limit);
  req.options = options;
  AttachFingerprint(stmt, &req);
  engine::QueryResult executed;
  LEXEQUAL_ASSIGN_OR_RETURN(executed, session->Execute(req));
  std::vector<engine::TopKRow> ranked = std::move(executed.ranked);

  QueryResult result;
  result.stats = executed.stats;
  result.trace = executed.trace;
  std::vector<uint32_t> ordinals;
  if (stmt.select_star) {
    for (size_t i = 0; i < info->schema.size(); ++i) {
      ordinals.push_back(static_cast<uint32_t>(i));
      result.column_names.push_back(info->schema.column(i).name);
    }
  } else {
    for (const ColumnName& col : stmt.select_list) {
      uint32_t ordinal;
      LEXEQUAL_ASSIGN_OR_RETURN(ordinal, ResolveColumn(col, ref, *info));
      ordinals.push_back(ordinal);
      result.column_names.push_back(col.column);
    }
  }
  result.column_names.push_back("lexsim");
  for (engine::TopKRow& r : ranked) {
    Tuple projected;
    projected.reserve(ordinals.size() + 1);
    for (uint32_t o : ordinals) projected.push_back(r.row[o]);
    projected.push_back(Value::Double(r.score));
    result.rows.push_back(std::move(projected));
  }
  result.stats.results = result.rows.size();
  return result;
}

Result<QueryResult> ExecuteSingleTable(Session* session,
                                       const SelectStatement& stmt) {
  const TableRef& ref = stmt.tables[0];
  TableInfo* info;
  LEXEQUAL_ASSIGN_OR_RETURN(info, session->engine()->GetTable(ref.table));

  // Classify predicates.
  const Predicate* lex_pred = nullptr;
  std::vector<std::pair<uint32_t, Value>> residuals;
  for (const Predicate& pred : stmt.predicates) {
    switch (pred.kind) {
      case PredicateKind::kLexEqualLiteral: {
        if (lex_pred != nullptr) {
          return Status::NotSupported(
              "at most one LexEQUAL predicate per query");
        }
        lex_pred = &pred;
        break;
      }
      case PredicateKind::kEqualsLiteral: {
        uint32_t ordinal;
        LEXEQUAL_ASSIGN_OR_RETURN(ordinal,
                                  ResolveColumn(pred.left, ref, *info));
        Value literal =
            pred.number_literal.has_value()
                ? (info->schema.column(ordinal).type == ValueType::kInt64
                       ? Value::Int64(
                             static_cast<int64_t>(*pred.number_literal))
                       : Value::Double(*pred.number_literal))
                : Value::String(pred.string_literal);
        residuals.emplace_back(ordinal, std::move(literal));
        break;
      }
      default:
        return Status::NotSupported(
            "column-to-column predicates need a two-table query");
    }
  }

  std::vector<Tuple> rows;
  engine::QueryStats stats;
  std::shared_ptr<const obs::QueryTrace> trace;
  if (lex_pred != nullptr) {
    LexEqualQueryOptions options;
    LEXEQUAL_ASSIGN_OR_RETURN(options,
                              BuildOptions(*lex_pred, stmt.plan_hint));
    // The query constant's language is auto-detected from its script
    // (§2.1 of the paper).
    text::TaggedString query =
        text::TaggedString::WithDetectedLanguage(lex_pred->string_literal);
    engine::QueryRequest req = engine::QueryRequest::ThresholdSelect(
        ref.table, lex_pred->left.column, query);
    req.options = options;
    AttachFingerprint(stmt, &req);
    engine::QueryResult executed;
    LEXEQUAL_ASSIGN_OR_RETURN(executed, session->Execute(req));
    rows = std::move(executed.rows);
    stats = executed.stats;
    trace = executed.trace;
  } else {
    // Plain scan.
    engine::SeqScanExecutor scan(info);
    LEXEQUAL_RETURN_IF_ERROR(scan.Init());
    Tuple row;
    while (true) {
      bool has;
      LEXEQUAL_ASSIGN_OR_RETURN(has, scan.Next(&row));
      if (!has) break;
      ++stats.rows_scanned;
      rows.push_back(row);
    }
  }

  // Residual filters.
  std::vector<Tuple> filtered;
  for (Tuple& row : rows) {
    bool pass;
    LEXEQUAL_ASSIGN_OR_RETURN(pass, PassesResiduals(row, residuals));
    if (pass) filtered.push_back(std::move(row));
  }

  // Projection.
  QueryResult result;
  result.stats = stats;
  result.trace = std::move(trace);
  std::vector<uint32_t> ordinals;
  if (stmt.select_star) {
    for (size_t i = 0; i < info->schema.size(); ++i) {
      ordinals.push_back(static_cast<uint32_t>(i));
      result.column_names.push_back(info->schema.column(i).name);
    }
  } else {
    for (const ColumnName& col : stmt.select_list) {
      uint32_t ordinal;
      LEXEQUAL_ASSIGN_OR_RETURN(ordinal, ResolveColumn(col, ref, *info));
      ordinals.push_back(ordinal);
      result.column_names.push_back(col.column);
    }
  }
  for (Tuple& row : filtered) {
    if (stmt.limit.has_value() && result.rows.size() >= *stmt.limit) {
      break;
    }
    Tuple projected;
    projected.reserve(ordinals.size());
    for (uint32_t o : ordinals) projected.push_back(row[o]);
    result.rows.push_back(std::move(projected));
  }
  result.stats.results = result.rows.size();
  return result;
}

Result<QueryResult> ExecuteJoin(Session* session,
                                const SelectStatement& stmt) {
  const TableRef& left_ref = stmt.tables[0];
  const TableRef& right_ref = stmt.tables[1];
  TableInfo* left_info;
  LEXEQUAL_ASSIGN_OR_RETURN(left_info,
                            session->engine()->GetTable(left_ref.table));
  TableInfo* right_info;
  LEXEQUAL_ASSIGN_OR_RETURN(right_info,
                            session->engine()->GetTable(right_ref.table));

  const Predicate* lex_pred = nullptr;
  for (const Predicate& pred : stmt.predicates) {
    switch (pred.kind) {
      case PredicateKind::kLexEqualColumn:
        if (lex_pred != nullptr) {
          return Status::NotSupported(
              "at most one LexEQUAL predicate per query");
        }
        lex_pred = &pred;
        break;
      case PredicateKind::kNotEqualsColumn: {
        // The idiomatic B1.Language <> B2.Language: implicit in the
        // LexEQUAL join (it never pairs same-language rows).
        if (AsciiToLower(pred.left.column) != "language" ||
            AsciiToLower(pred.right_column.column) != "language") {
          return Status::NotSupported(
              "only language <> language is supported in joins");
        }
        break;
      }
      default:
        return Status::NotSupported(
            "unsupported predicate in a two-table query");
    }
  }
  if (lex_pred == nullptr) {
    return Status::NotSupported(
        "two-table queries require a LexEQUAL join predicate");
  }

  // Sides may arrive in either order.
  const ColumnName* left_col = &lex_pred->left;
  const ColumnName* right_col = &lex_pred->right_column;
  if (!left_col->qualifier.empty() &&
      AsciiToLower(left_col->qualifier) ==
          AsciiToLower(right_ref.effective_name())) {
    std::swap(left_col, right_col);
  }

  LexEqualQueryOptions options;
  LEXEQUAL_ASSIGN_OR_RETURN(options,
                            BuildOptions(*lex_pred, stmt.plan_hint));

  engine::QueryRequest req =
      engine::QueryRequest::Join(left_ref.table, left_col->column,
                                 right_ref.table, right_col->column);
  req.options = options;
  AttachFingerprint(stmt, &req);
  engine::QueryResult executed;
  LEXEQUAL_ASSIGN_OR_RETURN(executed, session->Execute(req));
  std::vector<std::pair<Tuple, Tuple>> pairs = std::move(executed.pairs);

  // Projection over the concatenated row.
  QueryResult result;
  result.stats = executed.stats;
  result.trace = executed.trace;
  struct Slot {
    bool from_left;
    uint32_t ordinal;
  };
  std::vector<Slot> slots;
  auto resolve = [&](const ColumnName& col) -> Result<Slot> {
    const bool left_q =
        col.qualifier.empty() ||
        AsciiToLower(col.qualifier) ==
            AsciiToLower(left_ref.effective_name());
    const bool right_q =
        col.qualifier.empty() ||
        AsciiToLower(col.qualifier) ==
            AsciiToLower(right_ref.effective_name());
    if (left_q) {
      Result<uint32_t> o = left_info->schema.IndexOf(col.column);
      if (o.ok()) return Slot{true, o.value()};
      if (!col.qualifier.empty()) return o.status();
    }
    if (right_q) {
      Result<uint32_t> o = right_info->schema.IndexOf(col.column);
      if (o.ok()) return Slot{false, o.value()};
    }
    return Status::NotFound("cannot resolve column '" + col.ToString() +
                            "'");
  };
  if (stmt.select_star) {
    for (size_t i = 0; i < left_info->schema.size(); ++i) {
      slots.push_back({true, static_cast<uint32_t>(i)});
      result.column_names.push_back(left_ref.effective_name() + "." +
                                    left_info->schema.column(i).name);
    }
    for (size_t i = 0; i < right_info->schema.size(); ++i) {
      slots.push_back({false, static_cast<uint32_t>(i)});
      result.column_names.push_back(right_ref.effective_name() + "." +
                                    right_info->schema.column(i).name);
    }
  } else {
    for (const ColumnName& col : stmt.select_list) {
      Slot slot;
      LEXEQUAL_ASSIGN_OR_RETURN(slot, resolve(col));
      slots.push_back(slot);
      result.column_names.push_back(col.ToString());
    }
  }
  for (const auto& [lrow, rrow] : pairs) {
    if (stmt.limit.has_value() && result.rows.size() >= *stmt.limit) {
      break;
    }
    Tuple projected;
    projected.reserve(slots.size());
    for (const Slot& slot : slots) {
      projected.push_back(slot.from_left ? lrow[slot.ordinal]
                                         : rrow[slot.ordinal]);
    }
    result.rows.push_back(std::move(projected));
  }
  result.stats.results = result.rows.size();
  return result;
}

}  // namespace

namespace {

std::string RenderTable(const std::vector<std::string>& column_names,
                        const std::vector<engine::Tuple>& rows) {
  // Column widths in code points.
  std::vector<size_t> widths(column_names.size());
  std::vector<std::vector<std::string>> cells;
  for (size_t c = 0; c < column_names.size(); ++c) {
    widths[c] = text::CodePointCount(column_names[c]);
  }
  cells.reserve(rows.size());
  for (const engine::Tuple& row : rows) {
    std::vector<std::string> line;
    for (size_t c = 0; c < row.size() && c < column_names.size(); ++c) {
      line.push_back(row[c].ToDisplayString());
      widths[c] = std::max(widths[c], text::CodePointCount(line[c]));
    }
    cells.push_back(std::move(line));
  }
  auto pad = [](const std::string& s, size_t width) {
    std::string out = s;
    size_t len = text::CodePointCount(s);
    for (size_t i = len; i < width; ++i) out += ' ';
    return out;
  };
  std::string out;
  for (size_t c = 0; c < column_names.size(); ++c) {
    out += "| " + pad(column_names[c], widths[c]) + " ";
  }
  out += "|\n";
  for (size_t c = 0; c < column_names.size(); ++c) {
    out += "|" + std::string(widths[c] + 2, '-');
  }
  out += "|\n";
  for (const auto& line : cells) {
    for (size_t c = 0; c < column_names.size(); ++c) {
      out += "| " + pad(c < line.size() ? line[c] : "", widths[c]) + " ";
    }
    out += "|\n";
  }
  return out;
}

}  // namespace

std::string QueryResult::ToTable() const {
  return RenderTable(column_names, rows);
}

std::string QueryResult::TraceTable() const {
  if (trace_rows.empty()) return "";
  return RenderTable(trace_column_names, trace_rows);
}

namespace {

// Total order over values for ORDER BY (types never mix within one
// column; mixed types order by type id for stability).
bool ValueLess(const Value& a, const Value& b) {
  if (a.type() != b.type()) return a.type() < b.type();
  switch (a.type()) {
    case ValueType::kInt64:
      return a.AsInt64() < b.AsInt64();
    case ValueType::kDouble:
      return a.AsDouble() < b.AsDouble();
    case ValueType::kString:
      return a.AsString().text() < b.AsString().text();
  }
  return false;
}

}  // namespace

Result<QueryResult> ExecuteStatement(engine::Session* session,
                                     const SelectStatement& stmt) {
  // Ranked retrieval bypasses the sort-after path entirely: the limit
  // drives the top-K algorithm and rows arrive already ordered.
  if (stmt.lexsim_order.has_value()) return ExecuteTopK(session, stmt);

  // ORDER BY sorts the projected result, so run the core plan without
  // the limit and apply sort + limit here.
  SelectStatement core = stmt;
  if (stmt.order_by.has_value()) core.limit.reset();

  Result<QueryResult> result_or =
      core.tables.size() == 1   ? ExecuteSingleTable(session, core)
      : core.tables.size() == 2 ? ExecuteJoin(session, core)
                                : Status::NotSupported(
                                      "only 1- and 2-table queries");
  if (!result_or.ok() || !stmt.order_by.has_value()) return result_or;

  QueryResult result = std::move(result_or).value();
  // Resolve the ORDER BY column against the output columns.
  const std::string wanted = stmt.order_by->column.ToString();
  size_t ordinal = result.column_names.size();
  for (size_t i = 0; i < result.column_names.size(); ++i) {
    if (AsciiToLower(result.column_names[i]) == AsciiToLower(wanted) ||
        AsciiToLower(result.column_names[i]) ==
            AsciiToLower(stmt.order_by->column.column)) {
      ordinal = i;
      break;
    }
  }
  if (ordinal == result.column_names.size()) {
    return Status::NotFound("ORDER BY column '" + wanted +
                            "' is not in the select list");
  }
  const bool desc = stmt.order_by->descending;
  std::stable_sort(result.rows.begin(), result.rows.end(),
                   [ordinal, desc](const engine::Tuple& a,
                                   const engine::Tuple& b) {
                     return desc ? ValueLess(b[ordinal], a[ordinal])
                                 : ValueLess(a[ordinal], b[ordinal]);
                   });
  if (stmt.limit.has_value() && result.rows.size() > *stmt.limit) {
    result.rows.resize(*stmt.limit);
  }
  result.stats.results = result.rows.size();
  return result;
}

namespace {

Result<QueryResult> ExecuteAnalyze(Session* session,
                                   const AnalyzeStatement& stmt) {
  engine::Engine* engine = session->engine();
  std::vector<std::string> names;
  if (!stmt.table.empty()) {
    names.push_back(stmt.table);
  } else {
    names = engine->catalog()->TableNames();
  }
  QueryResult result;
  result.column_names = {"table", "rows"};
  for (const std::string& name : names) {
    LEXEQUAL_RETURN_IF_ERROR(engine->Analyze(name));
    TableInfo* info;
    LEXEQUAL_ASSIGN_OR_RETURN(info, engine->GetTable(name));
    Tuple row;
    row.push_back(Value::String(name));
    row.push_back(
        Value::Int64(static_cast<int64_t>(info->stats.row_count)));
    result.rows.push_back(std::move(row));
  }
  result.stats.results = result.rows.size();
  return result;
}

Result<QueryResult> ExecuteCreateIndex(Session* session,
                                       const CreateIndexStatement& stmt) {
  engine::IndexSpec spec;
  spec.kind = stmt.kind == "phonetic" ? engine::IndexSpec::Kind::kPhonetic
              : stmt.kind == "invidx" ? engine::IndexSpec::Kind::kInverted
                                      : engine::IndexSpec::Kind::kQGram;
  spec.table = stmt.table;
  spec.column = stmt.column;
  if (stmt.q.has_value()) spec.q = *stmt.q;
  LEXEQUAL_RETURN_IF_ERROR(session->engine()->CreateIndex(spec));
  QueryResult result;
  result.column_names = {"created"};
  Tuple row;
  row.push_back(Value::String(stmt.kind + " index on " + stmt.table +
                              "(" + stmt.column + ")"));
  result.rows.push_back(std::move(row));
  result.stats.results = 1;
  return result;
}

std::string FormatCost(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f", v);
  return buf;
}

// SHOW STATEMENTS [ORDER BY ...] [LIMIT n] — one row per fingerprint
// from the engine's StatementStats registry, ordered hottest-first;
// SHOW STATEMENTS RESET zeroes the registry.
Result<QueryResult> ExecuteShow(Session* session,
                                const ShowStatement& stmt) {
  obs::StatementStats* stats = session->engine()->stmt_stats();
  QueryResult result;
  if (stmt.reset) {
    stats->Reset();
    result.column_names = {"statements"};
    Tuple row;
    row.push_back(Value::String("reset"));
    result.rows.push_back(std::move(row));
    result.stats.results = 1;
    return result;
  }

  std::vector<obs::StatementStats::Aggregate> aggs = stats->Snapshot();
  auto key = [&stmt](const obs::StatementStats::Aggregate& a) {
    switch (stmt.order) {
      case ShowStatement::Order::kP99:
        return a.latency.p99();
      case ShowStatement::Order::kTotalTime:
        return static_cast<double>(a.total_us);
      case ShowStatement::Order::kCalls:
        break;
    }
    return static_cast<double>(a.calls);
  };
  std::stable_sort(aggs.begin(), aggs.end(),
                   [&key](const obs::StatementStats::Aggregate& a,
                          const obs::StatementStats::Aggregate& b) {
                     return key(a) > key(b);
                   });
  if (stmt.limit.has_value() && aggs.size() > *stmt.limit) {
    aggs.resize(*stmt.limit);
  }

  result.column_names = {"fingerprint", "calls",  "errors", "rows",
                         "total_us",    "p50_us", "p95_us", "p99_us",
                         "plans",       "statement"};
  for (const obs::StatementStats::Aggregate& a : aggs) {
    char fp[24];
    std::snprintf(fp, sizeof fp, "%016llx",
                  static_cast<unsigned long long>(a.fingerprint));
    std::string plans;
    for (size_t i = 0; i < a.plan_calls.size(); ++i) {
      if (a.plan_calls[i] == 0) continue;
      if (!plans.empty()) plans += ' ';
      plans += engine::LexEqualPlanName(static_cast<LexEqualPlan>(i));
      plans += ':' + std::to_string(a.plan_calls[i]);
    }
    Tuple row;
    row.push_back(Value::String(fp));
    row.push_back(Value::Int64(static_cast<int64_t>(a.calls)));
    row.push_back(Value::Int64(static_cast<int64_t>(a.errors)));
    row.push_back(Value::Int64(static_cast<int64_t>(a.rows)));
    row.push_back(Value::Int64(static_cast<int64_t>(a.total_us)));
    row.push_back(Value::Int64(static_cast<int64_t>(a.latency.p50())));
    row.push_back(Value::Int64(static_cast<int64_t>(a.latency.p95())));
    row.push_back(Value::Int64(static_cast<int64_t>(a.latency.p99())));
    row.push_back(Value::String(std::move(plans)));
    row.push_back(Value::String(a.statement));
    result.rows.push_back(std::move(row));
  }
  result.stats.results = result.rows.size();
  return result;
}

// Renders a query's span tree as EXPLAIN ANALYZE's stage table:
// stage name (indented by nesting depth), wall-clock µs, stage rows,
// and the watched-counter deltas the engine's trace records.
void AppendTraceTable(const obs::QueryTrace& trace, QueryResult* result) {
  result->trace_column_names = {
      "stage",      "wall_us",      "rows",
      "bp_hits",    "bp_misses",    "disk_reads",
      "cache_hits", "cache_misses", "cache_hit_pct"};
  const std::vector<std::string>& labels = trace.watched_labels();
  auto idx_of = [&](std::string_view label) {
    for (size_t i = 0; i < labels.size(); ++i) {
      if (labels[i] == label) return static_cast<int>(i);
    }
    return -1;
  };
  const int bp_hits = idx_of("bp_hits");
  const int bp_misses = idx_of("bp_misses");
  const int disk_reads = idx_of("disk_reads");
  const int cache_hits = idx_of("cache_hits");
  const int cache_misses = idx_of("cache_misses");
  auto delta = [](const obs::QueryTrace::Span& span, int i) -> int64_t {
    return i >= 0 && static_cast<size_t>(i) < span.deltas.size()
               ? static_cast<int64_t>(span.deltas[i])
               : 0;
  };
  for (const obs::QueryTrace::Span& span : trace.spans()) {
    engine::Tuple row;
    row.push_back(
        Value::String(std::string(span.depth * 2, ' ') + span.name));
    row.push_back(Value::Int64(static_cast<int64_t>(span.wall_us)));
    row.push_back(Value::Int64(static_cast<int64_t>(span.rows)));
    row.push_back(Value::Int64(delta(span, bp_hits)));
    row.push_back(Value::Int64(delta(span, bp_misses)));
    row.push_back(Value::Int64(delta(span, disk_reads)));
    const int64_t ch = delta(span, cache_hits);
    const int64_t cm = delta(span, cache_misses);
    row.push_back(Value::Int64(ch));
    row.push_back(Value::Int64(cm));
    row.push_back(Value::String(
        ch + cm > 0 ? FormatCost(100.0 * static_cast<double>(ch) /
                                 static_cast<double>(ch + cm))
                    : ""));
    result->trace_rows.push_back(std::move(row));
  }
}

// EXPLAIN for ORDER BY lexsim(...) LIMIT k. The top-K path has two
// plans (inverted-index skip-block merge, brute-force ranking) chosen
// by index presence, not by the cost picker; EXPLAIN ANALYZE executes
// the query and surfaces the posting / skip / early-termination
// counters plus the stage (span) table.
Result<QueryResult> ExplainTopK(Session* session, const Statement& stmt) {
  const SelectStatement& sel = stmt.select;
  if (sel.tables.size() != 1) {
    return Status::NotSupported("EXPLAIN supports single-table queries");
  }
  TableInfo* info;
  LEXEQUAL_ASSIGN_OR_RETURN(
      info, session->engine()->GetTable(sel.tables[0].table));

  QueryResult result;
  engine::QueryStats actual;
  if (stmt.explain_analyze) {
    const bool was_tracing = session->tracing();
    session->set_tracing(true);
    Result<QueryResult> executed = ExecuteStatement(session, sel);
    session->set_tracing(was_tracing);
    if (!executed.ok()) return executed.status();
    actual = executed->stats;
    result.stats = executed->stats;
    if (executed->trace != nullptr) {
      AppendTraceTable(*executed->trace, &result);
    }
  }

  result.column_names = {"plan", "chosen", "note"};
  const bool has_invidx = info->inverted_index != nullptr;
  engine::LexEqualPlan hinted = engine::LexEqualPlan::kAuto;
  if (!sel.plan_hint.empty()) {
    LEXEQUAL_ASSIGN_OR_RETURN(hinted, ResolvePlanHint(sel.plan_hint));
  }
  const bool invidx_chosen =
      has_invidx && (hinted == engine::LexEqualPlan::kAuto ||
                     hinted == engine::LexEqualPlan::kInvertedIndex);
  auto add_row = [&](std::string_view plan, bool chosen,
                     std::string note) {
    Tuple row;
    row.push_back(Value::String(std::string(plan)));
    row.push_back(Value::String(chosen ? "*" : ""));
    row.push_back(Value::String(std::move(note)));
    result.rows.push_back(std::move(row));
  };
  std::string invidx_note =
      has_invidx ? "skip-block merge, per-list score upper bounds"
                 : "no inverted index";
  std::string naive_note = "exact ranking of every phonemic row";
  if (stmt.explain_analyze) {
    std::string& chosen_note = invidx_chosen ? invidx_note : naive_note;
    chosen_note += "; postings=" + std::to_string(actual.invidx_postings);
    chosen_note +=
        " skipped=" + std::to_string(actual.invidx_postings_skipped);
    chosen_note += " early_terminated=" +
                   std::to_string(actual.invidx_early_terminated);
    chosen_note +=
        " fallbacks=" + std::to_string(actual.invidx_fallbacks);
  }
  add_row("inverted-index", invidx_chosen, std::move(invidx_note));
  add_row("naive-udf", !invidx_chosen, std::move(naive_note));
  if (!stmt.explain_analyze) result.stats.results = result.rows.size();
  return result;
}

Result<QueryResult> ExecuteExplain(Session* session,
                                   const Statement& stmt) {
  const SelectStatement& sel = stmt.select;
  if (sel.lexsim_order.has_value()) return ExplainTopK(session, stmt);
  if (sel.tables.size() != 1) {
    return Status::NotSupported(
        "EXPLAIN supports single-table queries");
  }
  const Predicate* lex_pred = nullptr;
  for (const Predicate& pred : sel.predicates) {
    if (pred.kind == PredicateKind::kLexEqualLiteral) {
      lex_pred = &pred;
      break;
    }
  }
  if (lex_pred == nullptr) {
    return Status::NotSupported(
        "EXPLAIN needs a LexEQUAL predicate to explain");
  }
  LexEqualQueryOptions options;
  LEXEQUAL_ASSIGN_OR_RETURN(options,
                            BuildOptions(*lex_pred, sel.plan_hint));
  const text::TaggedString query =
      text::TaggedString::WithDetectedLanguage(lex_pred->string_literal);
  engine::QueryRequest explain_req = engine::QueryRequest::ThresholdSelect(
      sel.tables[0].table, lex_pred->left.column, query);
  explain_req.options = options;
  explain_req.explain_only = true;
  engine::QueryResult explained;
  LEXEQUAL_ASSIGN_OR_RETURN(explained, session->Execute(explain_req));
  if (!explained.plan_choice.has_value()) {
    return Status::Internal("explain returned no plan choice");
  }
  const engine::PlanChoice& choice = *explained.plan_choice;

  QueryResult result;
  engine::QueryStats actual;
  if (stmt.explain_analyze) {
    // Execute with tracing forced on so the stage table below carries
    // real wall-clock and I/O data; the caller's setting is restored.
    const bool was_tracing = session->tracing();
    session->set_tracing(true);
    Result<QueryResult> executed = ExecuteStatement(session, sel);
    session->set_tracing(was_tracing);
    if (!executed.ok()) return executed.status();
    actual = executed->stats;
    result.stats = executed->stats;
    if (executed->trace != nullptr) {
      AppendTraceTable(*executed->trace, &result);
    }
  }

  result.column_names = {"plan", "chosen", "source", "est_cost",
                         "est_rows"};
  if (stmt.explain_analyze) {
    result.column_names.push_back("act_rows");
    result.column_names.push_back("act_results");
  }
  result.column_names.push_back("note");

  const std::string source = choice.hinted       ? "hint"
                             : choice.used_stats ? "statistics"
                                                 : "heuristic";
  auto add_row = [&](std::string_view plan_name, bool chosen,
                     const engine::PlanCostEstimate* est,
                     std::string note) {
    if (chosen && stmt.explain_analyze &&
        actual.match.dp_evaluations > 0) {
      // Surface which edit-distance kernel verified this query's
      // candidates and how much DP work it did.
      if (!note.empty()) note += "; ";
      note += "kernel=";
      note += actual.match.DominantKernel();
      note += " dp_cells=";
      note += std::to_string(actual.match.dp_cells);
      if (actual.match.simd_cells > 0) {
        note += " simd_cells=";
        note += std::to_string(actual.match.simd_cells);
      }
    }
    Tuple row;
    row.push_back(Value::String(std::string(plan_name)));
    row.push_back(Value::String(chosen ? "*" : ""));
    row.push_back(Value::String(chosen ? source : ""));
    row.push_back(Value::String(
        est != nullptr && est->eligible ? FormatCost(est->cost) : ""));
    row.push_back(Value::String(est != nullptr && est->eligible
                                    ? FormatCost(est->est_candidates)
                                    : ""));
    if (stmt.explain_analyze) {
      row.push_back(Value::String(
          chosen ? std::to_string(actual.candidates) : ""));
      row.push_back(
          Value::String(chosen ? std::to_string(actual.results) : ""));
    }
    row.push_back(Value::String(std::move(note)));
    result.rows.push_back(std::move(row));
  };

  if (!choice.estimates.empty()) {
    for (const engine::PlanCostEstimate& e : choice.estimates) {
      add_row(engine::LexEqualPlanName(e.plan), e.plan == choice.plan,
              &e, e.note);
    }
  } else {
    add_row(engine::LexEqualPlanName(choice.plan), true, nullptr,
            "table unanalyzed; run ANALYZE for cost-based choice");
  }
  if (!stmt.explain_analyze) result.stats.results = result.rows.size();
  return result;
}

}  // namespace

Result<QueryResult> Execute(engine::Session* session,
                            const Statement& stmt) {
  switch (stmt.kind) {
    case StatementKind::kSelect:
      return ExecuteStatement(session, stmt.select);
    case StatementKind::kExplain:
      return ExecuteExplain(session, stmt);
    case StatementKind::kAnalyze:
      return ExecuteAnalyze(session, stmt.analyze);
    case StatementKind::kCreateIndex:
      return ExecuteCreateIndex(session, stmt.create_index);
    case StatementKind::kShow:
      return ExecuteShow(session, stmt.show);
  }
  return Status::Internal("unhandled statement kind");
}

Result<QueryResult> ExecuteQuery(engine::Session* session,
                                 std::string_view sql) {
  Statement stmt;
  LEXEQUAL_ASSIGN_OR_RETURN(stmt, ParseStatement(sql));
  return Execute(session, stmt);
}

}  // namespace lexequal::sql
