// Planner: lowers a parsed SELECT onto the engine's physical plans.
//
// Supported shapes (the paper's query classes):
//  * Single table, any mix of `col = literal` predicates and at most
//    one `col LexEQUAL 'literal'` predicate (Fig. 3). The LexEQUAL
//    predicate picks the physical plan: naive scan, q-gram filters,
//    or the phonetic index (USING hint or best-available).
//  * Two tables with `a.col LexEQUAL b.col` plus the idiomatic
//    `a.language <> b.language` (Fig. 5), run as the LexEQUAL join.

#ifndef LEXEQUAL_SQL_PLANNER_H_
#define LEXEQUAL_SQL_PLANNER_H_

#include <memory>
#include <string>
#include <vector>

#include "engine/session.h"
#include "sql/ast.h"

namespace lexequal::sql {

/// A rendered result set.
struct QueryResult {
  std::vector<std::string> column_names;
  std::vector<engine::Tuple> rows;
  engine::QueryStats stats;

  /// Span tree of the executed query, when the session traced it
  /// (carried through from engine::QueryResult).
  std::shared_ptr<const obs::QueryTrace> trace;

  /// EXPLAIN ANALYZE stage table: one row per executed plan stage
  /// (planner, access path, verify, matcher) with wall-clock µs and
  /// buffer-pool / disk / phoneme-cache counter deltas. Empty for
  /// every other statement kind — the plan table above keeps its
  /// columns unchanged.
  std::vector<std::string> trace_column_names;
  std::vector<engine::Tuple> trace_rows;

  /// ASCII table rendering for examples and debugging.
  std::string ToTable() const;

  /// Renders the EXPLAIN ANALYZE stage table; "" when absent.
  std::string TraceTable() const;
};

/// Parses and executes `sql` on `session`. Accepts every statement
/// kind: SELECT, EXPLAIN [ANALYZE] select, ANALYZE, CREATE INDEX.
/// Queries run under the engine's shared latch (concurrent across
/// sessions); ANALYZE and CREATE INDEX take it exclusively.
Result<QueryResult> ExecuteQuery(engine::Session* session,
                                 std::string_view sql);

/// Executes an already-parsed statement of any kind.
Result<QueryResult> Execute(engine::Session* session,
                            const Statement& stmt);

/// Executes an already-parsed SELECT.
Result<QueryResult> ExecuteStatement(engine::Session* session,
                                     const SelectStatement& stmt);

}  // namespace lexequal::sql

#endif  // LEXEQUAL_SQL_PLANNER_H_
