#include "sql/fingerprint.h"

#include <cstdio>

#include "common/string_util.h"
#include "obs/stmt_stats.h"

namespace lexequal::sql {

namespace {

void AppendColumn(const ColumnName& col, std::string* out) {
  if (!col.qualifier.empty()) {
    *out += AsciiToLower(col.qualifier);
    *out += '.';
  }
  *out += AsciiToLower(col.column);
}

// Knob values print as %g: "0.30" and "0.3" are the same statement.
void AppendKnob(const char* name, double v, std::string* out) {
  char buf[48];
  std::snprintf(buf, sizeof buf, " %s %g", name, v);
  *out += buf;
}

void AppendPredicate(const Predicate& pred, std::string* out) {
  AppendColumn(pred.left, out);
  switch (pred.kind) {
    case PredicateKind::kEqualsLiteral:
      *out += " = ?";
      return;
    case PredicateKind::kEqualsColumn:
      *out += " = ";
      AppendColumn(pred.right_column, out);
      return;
    case PredicateKind::kNotEqualsColumn:
      *out += " <> ";
      AppendColumn(pred.right_column, out);
      return;
    case PredicateKind::kLexEqualLiteral:
      *out += " lexequal ?";
      break;
    case PredicateKind::kLexEqualColumn:
      *out += " lexequal ";
      AppendColumn(pred.right_column, out);
      break;
  }
  // The LexEQUAL plan knobs survive normalization.
  if (pred.threshold.has_value()) {
    AppendKnob("threshold", *pred.threshold, out);
  }
  if (pred.cost.has_value()) AppendKnob("cost", *pred.cost, out);
  if (!pred.in_languages.empty()) {
    *out += " inlanguages {";
    for (size_t i = 0; i < pred.in_languages.size(); ++i) {
      if (i > 0) *out += ", ";
      *out += AsciiToLower(pred.in_languages[i]);
    }
    *out += "}";
  }
}

std::string NormalizeSelect(const SelectStatement& stmt) {
  std::string out = "select ";
  if (stmt.select_star) {
    out += "*";
  } else {
    for (size_t i = 0; i < stmt.select_list.size(); ++i) {
      if (i > 0) out += ", ";
      AppendColumn(stmt.select_list[i], &out);
    }
  }
  out += " from ";
  for (size_t i = 0; i < stmt.tables.size(); ++i) {
    if (i > 0) out += ", ";
    out += AsciiToLower(stmt.tables[i].table);
    if (!stmt.tables[i].alias.empty()) {
      out += " as " + AsciiToLower(stmt.tables[i].alias);
    }
  }
  for (size_t i = 0; i < stmt.predicates.size(); ++i) {
    out += i == 0 ? " where " : " and ";
    AppendPredicate(stmt.predicates[i], &out);
  }
  if (stmt.lexsim_order.has_value()) {
    out += " order by lexsim(";
    AppendColumn(stmt.lexsim_order->column, &out);
    out += ", ?)";
  } else if (stmt.order_by.has_value()) {
    out += " order by ";
    AppendColumn(stmt.order_by->column, &out);
    if (stmt.order_by->descending) out += " desc";
  }
  if (!stmt.plan_hint.empty()) {
    out += " using " + AsciiToLower(stmt.plan_hint);
  }
  if (stmt.limit.has_value()) out += " limit ?";
  return out;
}

}  // namespace

std::string NormalizeStatement(const Statement& stmt) {
  switch (stmt.kind) {
    case StatementKind::kSelect:
      return NormalizeSelect(stmt.select);
    case StatementKind::kExplain:
      return (stmt.explain_analyze ? std::string("explain analyze ")
                                   : std::string("explain ")) +
             NormalizeSelect(stmt.select);
    case StatementKind::kAnalyze:
      return "analyze " + (stmt.analyze.table.empty()
                               ? std::string("*")
                               : AsciiToLower(stmt.analyze.table));
    case StatementKind::kCreateIndex: {
      std::string out = "create index " + stmt.create_index.kind +
                        " on " + AsciiToLower(stmt.create_index.table) +
                        "(" + AsciiToLower(stmt.create_index.column) +
                        ")";
      if (stmt.create_index.q.has_value()) {
        out += " q " + std::to_string(*stmt.create_index.q);
      }
      return out;
    }
    case StatementKind::kShow: {
      std::string out = "show statements";
      if (stmt.show.reset) return out + " reset";
      switch (stmt.show.order) {
        case ShowStatement::Order::kCalls:
          out += " order by calls";
          break;
        case ShowStatement::Order::kP99:
          out += " order by p99";
          break;
        case ShowStatement::Order::kTotalTime:
          out += " order by total_time";
          break;
      }
      if (stmt.show.limit.has_value()) out += " limit ?";
      return out;
    }
  }
  return "";
}

uint64_t FingerprintStatement(const Statement& stmt) {
  return obs::FingerprintHash(NormalizeStatement(stmt));
}

}  // namespace lexequal::sql
