// Statement fingerprinting for the statement-statistics plane.
//
// NormalizeStatement maps a parsed statement to its canonical text:
// comparison literals, probe strings, and LIMIT counts become `?`,
// identifiers are case-folded, and clause spelling is fixed — while
// the knobs that change the *plan* (THRESHOLD, COST, INLANGUAGES,
// USING) keep their values, because "the same query at threshold 0.2
// vs 0.5" is two different statements to an operator reading
// SHOW STATEMENTS. FingerprintStatement hashes that text to the
// stable 64-bit id the planner stamps onto every QueryRequest at plan
// time (QueryRequest::fingerprint / ::statement), which is what
// obs::StatementStats aggregates under.

#ifndef LEXEQUAL_SQL_FINGERPRINT_H_
#define LEXEQUAL_SQL_FINGERPRINT_H_

#include <cstdint>
#include <string>

#include "sql/ast.h"

namespace lexequal::sql {

/// Canonical text of `stmt`: literals -> `?`, identifiers folded,
/// plan-shaping knobs preserved verbatim. Deterministic — equal ASTs
/// always normalize identically.
[[nodiscard]] std::string NormalizeStatement(const Statement& stmt);

/// obs::FingerprintHash over NormalizeStatement(stmt). Never 0.
[[nodiscard]] uint64_t FingerprintStatement(const Statement& stmt);

}  // namespace lexequal::sql

#endif  // LEXEQUAL_SQL_FINGERPRINT_H_
