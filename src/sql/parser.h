// Recursive-descent parser for the LexEQUAL SQL subset.

#ifndef LEXEQUAL_SQL_PARSER_H_
#define LEXEQUAL_SQL_PARSER_H_

#include "common/result.h"
#include "sql/ast.h"

namespace lexequal::sql {

/// Parses one SELECT statement; errors carry byte offsets.
Result<SelectStatement> Parse(std::string_view sql);

/// Parses any supported statement: SELECT, EXPLAIN [ANALYZE] select,
/// ANALYZE [table], CREATE INDEX phonetic|qgram ON table (col) [Q n].
Result<Statement> ParseStatement(std::string_view sql);

}  // namespace lexequal::sql

#endif  // LEXEQUAL_SQL_PARSER_H_
