// SQL lexer for the LexEQUAL query subset.

#ifndef LEXEQUAL_SQL_LEXER_H_
#define LEXEQUAL_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace lexequal::sql {

enum class TokenType {
  kIdentifier,   // table / column names (also non-reserved keywords)
  kKeyword,      // SELECT FROM WHERE AND OR NOT LEXEQUAL THRESHOLD
                 // INLANGUAGES USING LIMIT
  kString,       // '...' literal (UTF-8, '' escapes a quote)
  kNumber,       // integer or decimal literal
  kSymbol,       // , . * = ( ) { } <>
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;    // keywords uppercased, identifiers as written
  double number = 0;   // valid for kNumber
  size_t offset = 0;   // byte offset in the input (error reporting)
};

/// Tokenizes `input`. Keywords are recognized case-insensitively.
Result<std::vector<Token>> Tokenize(std::string_view input);

}  // namespace lexequal::sql

#endif  // LEXEQUAL_SQL_LEXER_H_
