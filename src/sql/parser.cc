#include "sql/parser.h"

#include "common/string_util.h"
#include "sql/lexer.h"

namespace lexequal::sql {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens)
      : tokens_(std::move(tokens)) {}

  Result<Statement> ParseStatement() {
    Statement stmt;
    if (MatchKeyword("ANALYZE")) {
      stmt.kind = StatementKind::kAnalyze;
      if (Peek().type == TokenType::kIdentifier) {
        stmt.analyze.table = Next().text;
      }
      return Finish(std::move(stmt));
    }
    if (MatchKeyword("EXPLAIN")) {
      stmt.kind = StatementKind::kExplain;
      stmt.explain_analyze = MatchKeyword("ANALYZE");
      LEXEQUAL_ASSIGN_OR_RETURN(stmt.select, ParseSelect());
      return stmt;
    }
    if (MatchKeyword("CREATE")) {
      stmt.kind = StatementKind::kCreateIndex;
      LEXEQUAL_RETURN_IF_ERROR(ExpectKeyword("INDEX"));
      if (Peek().type != TokenType::kIdentifier) {
        return Error("expected index kind (phonetic | qgram)");
      }
      stmt.create_index.kind = AsciiToLower(Next().text);
      if (stmt.create_index.kind == "inverted") {
        stmt.create_index.kind = "invidx";  // accepted alias
      }
      if (stmt.create_index.kind != "phonetic" &&
          stmt.create_index.kind != "qgram" &&
          stmt.create_index.kind != "invidx") {
        return Error("index kind must be phonetic, qgram or invidx");
      }
      LEXEQUAL_RETURN_IF_ERROR(ExpectKeyword("ON"));
      if (Peek().type != TokenType::kIdentifier) {
        return Error("expected table name after ON");
      }
      stmt.create_index.table = Next().text;
      LEXEQUAL_RETURN_IF_ERROR(ExpectSymbol("("));
      if (Peek().type != TokenType::kIdentifier) {
        return Error("expected column name");
      }
      stmt.create_index.column = Next().text;
      LEXEQUAL_RETURN_IF_ERROR(ExpectSymbol(")"));
      // Optional gram length: Q <n> (an identifier, not a keyword, so
      // columns named q stay usable elsewhere).
      if (Peek().type == TokenType::kIdentifier &&
          AsciiToLower(Peek().text) == "q") {
        ++pos_;
        if (Peek().type != TokenType::kNumber) {
          return Error("expected number after Q");
        }
        stmt.create_index.q = static_cast<int>(Next().number);
      }
      return Finish(std::move(stmt));
    }
    if (MatchKeyword("SHOW")) {
      stmt.kind = StatementKind::kShow;
      // STATEMENTS / RESET / the order names stay identifiers (so
      // columns with those names remain usable elsewhere); matched
      // case-insensitively here.
      if (!MatchIdentifier("statements")) {
        return Error("expected STATEMENTS after SHOW");
      }
      if (MatchIdentifier("reset")) {
        stmt.show.reset = true;
        return Finish(std::move(stmt));
      }
      if (MatchKeyword("ORDER")) {
        LEXEQUAL_RETURN_IF_ERROR(ExpectKeyword("BY"));
        if (MatchIdentifier("calls")) {
          stmt.show.order = ShowStatement::Order::kCalls;
        } else if (MatchIdentifier("p99")) {
          stmt.show.order = ShowStatement::Order::kP99;
        } else if (MatchIdentifier("total_time")) {
          stmt.show.order = ShowStatement::Order::kTotalTime;
        } else {
          return Error(
              "expected calls, p99 or total_time after ORDER BY");
        }
      }
      if (MatchKeyword("LIMIT")) {
        if (Peek().type != TokenType::kNumber) {
          return Error("expected number after LIMIT");
        }
        stmt.show.limit = static_cast<uint64_t>(Next().number);
      }
      return Finish(std::move(stmt));
    }
    stmt.kind = StatementKind::kSelect;
    LEXEQUAL_ASSIGN_OR_RETURN(stmt.select, ParseSelect());
    return stmt;
  }

  Result<SelectStatement> ParseSelect() {
    SelectStatement stmt;
    LEXEQUAL_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    LEXEQUAL_RETURN_IF_ERROR(ParseSelectList(&stmt));
    LEXEQUAL_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    LEXEQUAL_RETURN_IF_ERROR(ParseTableRefs(&stmt));
    if (MatchKeyword("WHERE")) {
      LEXEQUAL_RETURN_IF_ERROR(ParsePredicates(&stmt));
    }
    if (MatchKeyword("ORDER")) {
      LEXEQUAL_RETURN_IF_ERROR(ExpectKeyword("BY"));
      // `lexsim` stays an identifier (columns with that name remain
      // usable); only `lexsim(` after ORDER BY means ranked retrieval.
      if (Peek().type == TokenType::kIdentifier &&
          AsciiToLower(Peek().text) == "lexsim" &&
          Peek(1).type == TokenType::kSymbol && Peek(1).text == "(") {
        pos_ += 2;
        LexsimOrder order;
        LEXEQUAL_ASSIGN_OR_RETURN(order.column, ParseColumnName());
        LEXEQUAL_RETURN_IF_ERROR(ExpectSymbol(","));
        if (Peek().type != TokenType::kString) {
          return Error("expected a string literal in lexsim()");
        }
        order.query = Next().text;
        LEXEQUAL_RETURN_IF_ERROR(ExpectSymbol(")"));
        if (MatchKeyword("ASC")) {
          return Error(
              "ORDER BY lexsim(...) ranks best-first; ASC is not "
              "supported");
        }
        MatchKeyword("DESC");  // the default; accepted as documentation
        stmt.lexsim_order = std::move(order);
      } else {
        OrderBy order;
        LEXEQUAL_ASSIGN_OR_RETURN(order.column, ParseColumnName());
        if (MatchKeyword("DESC")) {
          order.descending = true;
        } else {
          MatchKeyword("ASC");
        }
        stmt.order_by = order;
      }
    }
    if (MatchKeyword("USING")) {
      if (Peek().type != TokenType::kIdentifier) {
        return Error("expected plan name after USING");
      }
      stmt.plan_hint = Next().text;
    }
    if (MatchKeyword("LIMIT")) {
      if (Peek().type != TokenType::kNumber) {
        return Error("expected number after LIMIT");
      }
      stmt.limit = static_cast<uint64_t>(Next().number);
    }
    MatchSymbol(";");
    if (Peek().type != TokenType::kEnd) {
      return Error("unexpected trailing input");
    }
    return stmt;
  }

 private:
  // Consumes the optional trailing ';' for statements that end here.
  Result<Statement> Finish(Statement stmt) {
    MatchSymbol(";");
    if (Peek().type != TokenType::kEnd) {
      return Error("unexpected trailing input");
    }
    return stmt;
  }

  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Next() { return tokens_[pos_++]; }

  bool MatchKeyword(std::string_view kw) {
    if (Peek().type == TokenType::kKeyword && Peek().text == kw) {
      ++pos_;
      return true;
    }
    return false;
  }
  // Case-insensitive contextual word — a name that only acts as a
  // keyword in one clause (lowercase expected).
  bool MatchIdentifier(std::string_view lower) {
    if (Peek().type == TokenType::kIdentifier &&
        AsciiToLower(Peek().text) == lower) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool MatchSymbol(std::string_view sym) {
    if (Peek().type == TokenType::kSymbol && Peek().text == sym) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status ExpectKeyword(std::string_view kw) {
    if (!MatchKeyword(kw)) {
      return Status::InvalidArgument(
          "expected " + std::string(kw) + " at offset " +
          std::to_string(Peek().offset));
    }
    return Status::OK();
  }
  Status ExpectSymbol(std::string_view sym) {
    if (!MatchSymbol(sym)) {
      return Status::InvalidArgument(
          "expected '" + std::string(sym) + "' at offset " +
          std::to_string(Peek().offset));
    }
    return Status::OK();
  }
  Status Error(std::string msg) const {
    return Status::InvalidArgument(msg + " at offset " +
                                   std::to_string(Peek().offset));
  }

  Result<ColumnName> ParseColumnName() {
    if (Peek().type != TokenType::kIdentifier) {
      return Status::InvalidArgument(
          "expected column name at offset " +
          std::to_string(Peek().offset));
    }
    ColumnName col;
    col.column = Next().text;
    if (MatchSymbol(".")) {
      if (Peek().type != TokenType::kIdentifier) {
        return Status::InvalidArgument(
            "expected column after '.' at offset " +
            std::to_string(Peek().offset));
      }
      col.qualifier = std::move(col.column);
      col.column = Next().text;
    }
    return col;
  }

  Status ParseSelectList(SelectStatement* stmt) {
    if (MatchSymbol("*")) {
      stmt->select_star = true;
      return Status::OK();
    }
    while (true) {
      ColumnName col;
      LEXEQUAL_ASSIGN_OR_RETURN(col, ParseColumnName());
      stmt->select_list.push_back(std::move(col));
      if (!MatchSymbol(",")) break;
    }
    return Status::OK();
  }

  Status ParseTableRefs(SelectStatement* stmt) {
    while (true) {
      if (Peek().type != TokenType::kIdentifier) {
        return Status::InvalidArgument(
            "expected table name at offset " +
            std::to_string(Peek().offset));
      }
      TableRef ref;
      ref.table = Next().text;
      MatchKeyword("AS");
      if (Peek().type == TokenType::kIdentifier) {
        ref.alias = Next().text;
      }
      stmt->tables.push_back(std::move(ref));
      if (!MatchSymbol(",")) break;
    }
    if (stmt->tables.size() > 2) {
      return Status::NotSupported(
          "at most two tables in the FROM clause");
    }
    return Status::OK();
  }

  Status ParsePredicates(SelectStatement* stmt) {
    while (true) {
      Predicate pred;
      LEXEQUAL_RETURN_IF_ERROR(ParsePredicate(&pred));
      stmt->predicates.push_back(std::move(pred));
      if (!MatchKeyword("AND")) break;
    }
    return Status::OK();
  }

  Status ParsePredicate(Predicate* pred) {
    LEXEQUAL_ASSIGN_OR_RETURN(pred->left, ParseColumnName());
    if (MatchSymbol("=")) {
      if (Peek().type == TokenType::kString) {
        pred->kind = PredicateKind::kEqualsLiteral;
        pred->string_literal = Next().text;
        return Status::OK();
      }
      if (Peek().type == TokenType::kNumber) {
        pred->kind = PredicateKind::kEqualsLiteral;
        pred->number_literal = Next().number;
        return Status::OK();
      }
      pred->kind = PredicateKind::kEqualsColumn;
      LEXEQUAL_ASSIGN_OR_RETURN(pred->right_column, ParseColumnName());
      return Status::OK();
    }
    if (MatchSymbol("<>")) {
      pred->kind = PredicateKind::kNotEqualsColumn;
      LEXEQUAL_ASSIGN_OR_RETURN(pred->right_column, ParseColumnName());
      return Status::OK();
    }
    if (MatchKeyword("LEXEQUAL")) {
      if (Peek().type == TokenType::kString) {
        pred->kind = PredicateKind::kLexEqualLiteral;
        pred->string_literal = Next().text;
      } else {
        pred->kind = PredicateKind::kLexEqualColumn;
        LEXEQUAL_ASSIGN_OR_RETURN(pred->right_column, ParseColumnName());
      }
      // Optional clauses in any order.
      while (true) {
        if (MatchKeyword("THRESHOLD")) {
          if (Peek().type != TokenType::kNumber) {
            return Error("expected number after THRESHOLD");
          }
          pred->threshold = Next().number;
          continue;
        }
        if (MatchKeyword("COST")) {
          if (Peek().type != TokenType::kNumber) {
            return Error("expected number after COST");
          }
          pred->cost = Next().number;
          continue;
        }
        if (MatchKeyword("INLANGUAGES")) {
          LEXEQUAL_RETURN_IF_ERROR(ExpectSymbol("{"));
          while (true) {
            if (Peek().type == TokenType::kIdentifier) {
              pred->in_languages.push_back(Next().text);
            } else if (MatchSymbol("*")) {
              pred->in_languages.push_back("*");
            } else {
              return Error("expected language name or *");
            }
            if (!MatchSymbol(",")) break;
          }
          LEXEQUAL_RETURN_IF_ERROR(ExpectSymbol("}"));
          continue;
        }
        break;
      }
      return Status::OK();
    }
    return Error("expected =, <> or LexEQUAL");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<SelectStatement> Parse(std::string_view sql) {
  std::vector<Token> tokens;
  LEXEQUAL_ASSIGN_OR_RETURN(tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseSelect();
}

Result<Statement> ParseStatement(std::string_view sql) {
  std::vector<Token> tokens;
  LEXEQUAL_ASSIGN_OR_RETURN(tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

}  // namespace lexequal::sql
