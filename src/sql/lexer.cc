#include "sql/lexer.h"

#include <cctype>
#include <cstdlib>

#include "common/string_util.h"

namespace lexequal::sql {

namespace {

bool IsKeyword(const std::string& upper) {
  static const char* kKeywords[] = {
      "SELECT", "FROM",      "WHERE",       "AND",   "OR",
      "NOT",    "LEXEQUAL",  "THRESHOLD",   "LIMIT", "INLANGUAGES",
      "USING",  "COST",      "AS",          "ORDER", "BY",
      "ASC",    "DESC",      "ANALYZE",     "EXPLAIN", "CREATE",
      "INDEX",  "ON",        "SHOW",
  };
  for (const char* kw : kKeywords) {
    if (upper == kw) return true;
  }
  return false;
}

bool IsIdentStart(char c) {
  return IsAsciiAlpha(c) || c == '_';
}

bool IsIdentChar(char c) {
  return IsAsciiAlpha(c) || c == '_' || (c >= '0' && c <= '9');
}

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view input) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    char c = input[i];
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
      ++i;
      continue;
    }
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < n && IsIdentChar(input[i])) ++i;
      std::string word(input.substr(start, i - start));
      std::string upper = AsciiToUpper(word);
      Token t;
      t.offset = start;
      if (IsKeyword(upper)) {
        t.type = TokenType::kKeyword;
        t.text = upper;
      } else {
        t.type = TokenType::kIdentifier;
        t.text = word;
      }
      out.push_back(std::move(t));
      continue;
    }
    if (c == '\'') {
      size_t start = i;
      ++i;
      std::string value;
      bool closed = false;
      while (i < n) {
        if (input[i] == '\'') {
          if (i + 1 < n && input[i + 1] == '\'') {  // '' escape
            value.push_back('\'');
            i += 2;
            continue;
          }
          ++i;
          closed = true;
          break;
        }
        value.push_back(input[i]);
        ++i;
      }
      if (!closed) {
        return Status::InvalidArgument(
            "unterminated string literal at offset " +
            std::to_string(start));
      }
      out.push_back({TokenType::kString, std::move(value), 0, start});
      continue;
    }
    if ((c >= '0' && c <= '9') ||
        (c == '.' && i + 1 < n && input[i + 1] >= '0' &&
         input[i + 1] <= '9')) {
      size_t start = i;
      while (i < n && ((input[i] >= '0' && input[i] <= '9') ||
                       input[i] == '.')) {
        ++i;
      }
      std::string num(input.substr(start, i - start));
      Token t;
      t.type = TokenType::kNumber;
      t.text = num;
      t.offset = start;
      char* end = nullptr;
      t.number = std::strtod(num.c_str(), &end);
      if (end != num.c_str() + num.size()) {
        return Status::InvalidArgument("bad numeric literal '" + num +
                                       "'");
      }
      out.push_back(std::move(t));
      continue;
    }
    if (c == '<' && i + 1 < n && input[i + 1] == '>') {
      out.push_back({TokenType::kSymbol, "<>", 0, i});
      i += 2;
      continue;
    }
    if (c == ',' || c == '.' || c == '*' || c == '=' || c == '(' ||
        c == ')' || c == '{' || c == '}' || c == ';') {
      out.push_back({TokenType::kSymbol, std::string(1, c), 0, i});
      ++i;
      continue;
    }
    return Status::InvalidArgument("unexpected character '" +
                                   std::string(1, c) + "' at offset " +
                                   std::to_string(i));
  }
  out.push_back({TokenType::kEnd, "", 0, n});
  return out;
}

}  // namespace lexequal::sql
