// AST for the LexEQUAL SQL subset (Figures 3 and 5 of the paper):
//
//   SELECT cols FROM table [alias] [, table [alias]]
//   WHERE pred [AND pred]...
//   [ORDER BY col [ASC|DESC] | ORDER BY lexsim(col, 'query') [DESC]]
//   [USING plan] [LIMIT n]
//
//   pred := col = 'literal'
//         | col = col | col <> col
//         | col LEXEQUAL 'literal' [THRESHOLD t] [COST c]
//               [INLANGUAGES { lang, ... }]
//         | col LEXEQUAL col [THRESHOLD t] [COST c]
//
// ORDER BY lexsim(...) LIMIT k is ranked retrieval: the k rows most
// phonemically similar to the query, scored lexsim = 1 - editdistance
// / max length, served by the inverted index's top-K when one exists.
//
// plus the optimizer statements:
//
//   ANALYZE [table]
//   EXPLAIN [ANALYZE] select
//   CREATE INDEX phonetic|qgram|invidx ON table (column) [Q n]
//
// and the observability statement:
//
//   SHOW STATEMENTS [ORDER BY calls|p99|total_time] [LIMIT n]
//   SHOW STATEMENTS RESET

#ifndef LEXEQUAL_SQL_AST_H_
#define LEXEQUAL_SQL_AST_H_

#include <optional>
#include <string>
#include <vector>

namespace lexequal::sql {

/// A possibly alias-qualified column reference.
struct ColumnName {
  std::string qualifier;  // alias or table name; empty if unqualified
  std::string column;

  std::string ToString() const {
    return qualifier.empty() ? column : qualifier + "." + column;
  }
};

/// A table reference with optional alias.
struct TableRef {
  std::string table;
  std::string alias;  // defaults to the table name

  const std::string& effective_name() const {
    return alias.empty() ? table : alias;
  }
};

enum class PredicateKind {
  kEqualsLiteral,     // col = 'str' / col = number
  kEqualsColumn,      // col = col
  kNotEqualsColumn,   // col <> col
  kLexEqualLiteral,   // col LEXEQUAL 'str' ...
  kLexEqualColumn,    // col LEXEQUAL col ...
};

struct Predicate {
  PredicateKind kind;
  ColumnName left;
  ColumnName right_column;        // for column comparisons
  std::string string_literal;     // for literal comparisons
  std::optional<double> number_literal;
  // LexEQUAL options.
  std::optional<double> threshold;
  std::optional<double> cost;
  std::vector<std::string> in_languages;  // "*" allowed
};

struct OrderBy {
  ColumnName column;
  bool descending = false;
};

/// ORDER BY lexsim(col, 'query'): rank by phonemic similarity to the
/// query constant. Always descending (best first; DESC is accepted as
/// documentation, ASC rejected); ties break by insertion order. The
/// result grows a trailing "lexsim" score column.
struct LexsimOrder {
  ColumnName column;
  std::string query;
};

struct SelectStatement {
  bool select_star = false;
  std::vector<ColumnName> select_list;
  std::vector<TableRef> tables;  // 1 or 2
  std::vector<Predicate> predicates;
  /// USING naive|qgram|phonetic|parallel|invidx|auto ("" = auto).
  std::string plan_hint;
  std::optional<OrderBy> order_by;           // at most one of these
  std::optional<LexsimOrder> lexsim_order;   // two is set
  std::optional<uint64_t> limit;
};

/// ANALYZE [table] — collect optimizer statistics.
struct AnalyzeStatement {
  std::string table;  // empty = every table
};

/// CREATE INDEX phonetic|qgram|invidx ON table (column) [Q n].
struct CreateIndexStatement {
  std::string kind;    // "phonetic" | "qgram" | "invidx" (lowercased)
  std::string table;
  std::string column;  // the phonemic column
  std::optional<int> q;
};

/// SHOW STATEMENTS [ORDER BY calls|p99|total_time] [LIMIT n]
/// — the statement-statistics registry, one row per fingerprint —
/// and SHOW STATEMENTS RESET, which zeroes it.
struct ShowStatement {
  enum class Order { kCalls, kP99, kTotalTime };
  Order order = Order::kCalls;
  bool reset = false;
  std::optional<uint64_t> limit;
};

enum class StatementKind {
  kSelect,
  kExplain,
  kAnalyze,
  kCreateIndex,
  kShow,
};

/// Any statement the SQL front end accepts. The payload for kExplain
/// is `select` (with `explain_analyze` saying whether to execute it).
struct Statement {
  StatementKind kind = StatementKind::kSelect;
  SelectStatement select;
  bool explain_analyze = false;
  AnalyzeStatement analyze;
  CreateIndexStatement create_index;
  ShowStatement show;
};

}  // namespace lexequal::sql

#endif  // LEXEQUAL_SQL_AST_H_
