// Phoneme-to-orthography renderers for Devanagari and Tamil.
//
// These generate the Indic spellings of the dataset lexicon from the
// phoneme space (DESIGN.md §2): an English name's phoneme string is
// rendered into each Indic script the way a literate speaker would
// transcribe it. The rendering is deliberately *lossy in exactly the
// ways the scripts are lossy* — Tamil cannot write voicing or
// aspiration, Devanagari has no /æ/ or /ʒ/ — so converting the
// rendered text back through the corresponding G2P yields phoneme
// strings that are near but not equal to the English ones. This is
// the cross-script "mismatch of phoneme sets" the paper's experiments
// measure.

#ifndef LEXEQUAL_G2P_RENDER_INDIC_H_
#define LEXEQUAL_G2P_RENDER_INDIC_H_

#include <string>

#include "common/result.h"
#include "phonetic/phoneme_string.h"

namespace lexequal::g2p {

/// Renders a phoneme string as Devanagari text (Hindi orthography
/// conventions for loan names: alveolar stops become retroflex
/// letters, f/z use nukta letters).
Result<std::string> RenderDevanagari(const phonetic::PhonemeString& ps);

/// Renders a phoneme string as Tamil text (Tamil orthography: one
/// stop letter per place regardless of voicing/aspiration, Grantha
/// letters for s/ʃ/h/dʒ).
Result<std::string> RenderTamil(const phonetic::PhonemeString& ps);

}  // namespace lexequal::g2p

#endif  // LEXEQUAL_G2P_RENDER_INDIC_H_
