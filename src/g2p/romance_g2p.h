// French and Spanish grapheme-to-phoneme converters.
//
// These cover the paper's Figure 1/9 examples (René, École, Español).
// Both reuse the rewrite-rule engine with compact per-language rule
// tables; accents that change the phoneme (é/è, ñ, ç) are rewritten
// to ASCII digraph spellings before folding.

#ifndef LEXEQUAL_G2P_ROMANCE_G2P_H_
#define LEXEQUAL_G2P_ROMANCE_G2P_H_

#include <memory>

#include "g2p/g2p.h"
#include "g2p/rule_engine.h"

namespace lexequal::g2p {

/// Rule-based French TTP (names-oriented subset).
class FrenchG2P : public G2PConverter {
 public:
  static Result<std::unique_ptr<FrenchG2P>> Create();

  text::Language language() const override {
    return text::Language::kFrench;
  }

  Result<phonetic::PhonemeString> ToPhonemes(
      std::string_view utf8) const override;

 private:
  explicit FrenchG2P(RuleEngine engine) : engine_(std::move(engine)) {}
  RuleEngine engine_;
};

/// Rule-based Spanish TTP (names-oriented subset, seseo variety).
class SpanishG2P : public G2PConverter {
 public:
  static Result<std::unique_ptr<SpanishG2P>> Create();

  text::Language language() const override {
    return text::Language::kSpanish;
  }

  Result<phonetic::PhonemeString> ToPhonemes(
      std::string_view utf8) const override;

 private:
  explicit SpanishG2P(RuleEngine engine) : engine_(std::move(engine)) {}
  RuleEngine engine_;
};

}  // namespace lexequal::g2p

#endif  // LEXEQUAL_G2P_ROMANCE_G2P_H_
