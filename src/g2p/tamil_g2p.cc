#include "g2p/tamil_g2p.h"

#include <vector>

#include "text/utf8.h"

namespace lexequal::g2p {

namespace {

using phonetic::Phoneme;
using P = Phoneme;

constexpr uint32_t kPulli = 0x0BCD;  // Tamil virama

// Stop letters with positional voicing: (voiceless, voiced) pair.
struct StopPair {
  Phoneme voiceless;
  Phoneme voiced;
};

// Returns the stop pair for the five ambiguous stop letters; nullptr
// phonemes (kNumPhonemes) otherwise.
bool StopLetter(uint32_t cp, StopPair* out) {
  switch (cp) {
    case 0x0B95: *out = {P::kK, P::kG}; return true;     // க
    case 0x0B9A: *out = {P::kCh, P::kS}; return true;    // ச (see below)
    case 0x0B9F: *out = {P::kTt, P::kDd}; return true;   // ட
    case 0x0BA4: *out = {P::kT, P::kD}; return true;     // த
    case 0x0BAA: *out = {P::kP, P::kB}; return true;     // ப
    default:
      return false;
  }
}

// Unambiguous consonants.
Phoneme PlainConsonant(uint32_t cp) {
  switch (cp) {
    case 0x0B99: return P::kNg;  // ங
    case 0x0B9E: return P::kNy;  // ஞ
    case 0x0BA3: return P::kNn;  // ண
    case 0x0BA8: return P::kN;   // ந
    case 0x0BA9: return P::kN;   // ன (alveolar n, folded)
    case 0x0BAE: return P::kM;   // ம
    case 0x0BAF: return P::kJ;   // ய
    case 0x0BB0: return P::kR;   // ர
    case 0x0BB1: return P::kRr;  // ற (alveolar tap/trill)
    case 0x0BB2: return P::kL;   // ல
    case 0x0BB3: return P::kLl;  // ள
    case 0x0BB4: return P::kRz;  // ழ
    case 0x0BB5: return P::kV;   // வ
    case 0x0BB6: return P::kSh;  // ஶ
    case 0x0BB7: return P::kSs;  // ஷ (Grantha)
    case 0x0BB8: return P::kS;   // ஸ (Grantha)
    case 0x0BB9: return P::kH;   // ஹ (Grantha)
    case 0x0B9C: return P::kJh;  // ஜ (Grantha)
    default:
      return P::kNumPhonemes;
  }
}

Phoneme IndependentVowel(uint32_t cp) {
  switch (cp) {
    case 0x0B85: return P::kA;      // அ (short a; central)
    case 0x0B86: return P::kA;      // ஆ
    case 0x0B87: return P::kIh;     // இ
    case 0x0B88: return P::kI;      // ஈ
    case 0x0B89: return P::kUh;     // உ
    case 0x0B8A: return P::kU;      // ஊ
    case 0x0B8E: return P::kEh;     // எ (short e)
    case 0x0B8F: return P::kE;      // ஏ
    case 0x0B90: return P::kNumPhonemes;  // ஐ handled as diphthong
    case 0x0B92: return P::kOh;     // ஒ (short o)
    case 0x0B93: return P::kO;      // ஓ
    case 0x0B94: return P::kNumPhonemes;  // ஔ handled as diphthong
    default:
      return P::kNumPhonemes;
  }
}

Phoneme MatraVowel(uint32_t cp) {
  switch (cp) {
    case 0x0BBE: return P::kA;   // ா
    case 0x0BBF: return P::kIh;  // ி
    case 0x0BC0: return P::kI;   // ீ
    case 0x0BC1: return P::kUh;  // ு
    case 0x0BC2: return P::kU;   // ூ
    case 0x0BC6: return P::kEh;  // ெ
    case 0x0BC7: return P::kE;   // ே
    case 0x0BCA: return P::kOh;  // ொ
    case 0x0BCB: return P::kO;   // ோ
    default:
      return P::kNumPhonemes;
  }
}

// Diphthong vowels expand to two phonemes.
bool DiphthongVowel(uint32_t cp, Phoneme* first, Phoneme* second) {
  switch (cp) {
    case 0x0B90:  // ஐ independent
    case 0x0BC8:  // ை matra
      *first = P::kA;
      *second = P::kIh;
      return true;
    case 0x0B94:  // ஔ independent
    case 0x0BCC:  // ௌ matra
      *first = P::kA;
      *second = P::kUh;
      return true;
    default:
      return false;
  }
}

bool IsNasal(Phoneme p) {
  return phonetic::GetPhonemeInfo(p).type == phonetic::PhonemeType::kNasal;
}

}  // namespace

Result<std::unique_ptr<TamilG2P>> TamilG2P::Create() {
  return std::unique_ptr<TamilG2P>(new TamilG2P());
}

Result<phonetic::PhonemeString> TamilG2P::ToPhonemes(
    std::string_view utf8) const {
  const std::vector<uint32_t> cps = text::DecodeUtf8(utf8);

  // Pass 1: tokenize into (consonant-letter | vowel) events, tracking
  // the pulli (virama) and gemination to resolve stop voicing.
  struct Unit {
    bool is_stop = false;
    StopPair stops{P::kNumPhonemes, P::kNumPhonemes};
    Phoneme phoneme = P::kNumPhonemes;  // plain consonant or vowel
    bool is_vowel = false;
    uint32_t letter = 0;  // source letter for gemination detection
  };
  std::vector<Unit> units;

  size_t i = 0;
  const size_t n = cps.size();
  while (i < n) {
    uint32_t cp = cps[i];
    StopPair sp;
    Phoneme plain = PlainConsonant(cp);
    Phoneme d1, d2;
    if (StopLetter(cp, &sp) || plain != P::kNumPhonemes) {
      Unit u;
      u.letter = cp;
      if (plain != P::kNumPhonemes) {
        u.phoneme = plain;
      } else {
        u.is_stop = true;
        u.stops = sp;
      }
      units.push_back(u);
      ++i;
      if (i < n && cps[i] == kPulli) {
        ++i;  // bare consonant; no vowel follows
        continue;
      }
      // Vowel: matra, diphthong matra, or inherent 'a'.
      if (i < n && DiphthongVowel(cps[i], &d1, &d2)) {
        Unit v1;
        v1.is_vowel = true;
        v1.phoneme = d1;
        units.push_back(v1);
        Unit v2;
        v2.is_vowel = true;
        v2.phoneme = d2;
        units.push_back(v2);
        ++i;
        continue;
      }
      Phoneme matra = i < n ? MatraVowel(cps[i]) : P::kNumPhonemes;
      Unit v;
      v.is_vowel = true;
      v.phoneme = matra != P::kNumPhonemes ? matra : P::kA;  // inherent a
      if (matra != P::kNumPhonemes) ++i;
      units.push_back(v);
      continue;
    }
    Phoneme vowel = IndependentVowel(cp);
    if (vowel != P::kNumPhonemes) {
      Unit v;
      v.is_vowel = true;
      v.phoneme = vowel;
      units.push_back(v);
      ++i;
      continue;
    }
    if (DiphthongVowel(cp, &d1, &d2)) {
      Unit v1;
      v1.is_vowel = true;
      v1.phoneme = d1;
      units.push_back(v1);
      Unit v2;
      v2.is_vowel = true;
      v2.phoneme = d2;
      units.push_back(v2);
      ++i;
      continue;
    }
    if (cp == 0x0B83) {  // ஃ aytham: fricativizes; folded to h
      Unit u;
      u.phoneme = P::kH;
      u.letter = cp;
      units.push_back(u);
      ++i;
      continue;
    }
    if (cp == ' ' || cp == '-' || cp == '.' || cp == 0x200C ||
        cp == 0x200D || (cp >= 0x0BE6 && cp <= 0x0BEF)) {
      ++i;
      continue;
    }
    return Status::InvalidArgument("unexpected code point U+" +
                                   std::to_string(cp) + " in Tamil text");
  }

  // Pass 2: resolve stop voicing positionally.
  std::vector<Phoneme> out;
  out.reserve(units.size());
  for (size_t k = 0; k < units.size(); ++k) {
    const Unit& u = units[k];
    if (!u.is_stop) {
      out.push_back(u.phoneme);
      continue;
    }
    const bool word_initial = (k == 0);
    // Geminates (க்க) stay voiceless on both halves: the bare onset
    // half is detected by looking ahead, the closing half by looking
    // back.
    const bool geminate =
        (k > 0 && !units[k - 1].is_vowel &&
         units[k - 1].letter == u.letter) ||
        (k + 1 < units.size() && !units[k + 1].is_vowel &&
         units[k + 1].letter == u.letter);
    const bool after_nasal =
        (k > 0 && !units[k - 1].is_vowel &&
         units[k - 1].phoneme != P::kNumPhonemes &&
         IsNasal(units[k - 1].phoneme));
    const bool after_vowel = (k > 0 && units[k - 1].is_vowel);

    Phoneme chosen;
    if (word_initial || geminate) {
      chosen = u.stops.voiceless;
    } else if (after_nasal) {
      // ச after nasal is the affricate dʒ, not z.
      chosen = (u.letter == 0x0B9A) ? P::kJh : u.stops.voiced;
    } else if (after_vowel) {
      chosen = u.stops.voiced;  // intervocalic lenition (ச -> s)
    } else {
      chosen = u.stops.voiceless;  // other clusters stay voiceless
    }
    out.push_back(chosen);
  }
  return phonetic::PhonemeString(std::move(out));
}

}  // namespace lexequal::g2p
