// Japanese kana grapheme-to-phoneme converter.

#ifndef LEXEQUAL_G2P_KANA_G2P_H_
#define LEXEQUAL_G2P_KANA_G2P_H_

#include <memory>

#include "g2p/g2p.h"

namespace lexequal::g2p {

/// Hiragana and katakana are syllabaries — each sign is a (C)V mora,
/// so conversion is a table lookup plus three contextual signs: the
/// moraic nasal ん/ン, the gemination marker っ/ッ (folded: length is
/// non-phonemic after suprasegmental stripping), and the long-vowel
/// mark ー (likewise folded). Yoon digraphs (きゃ -> kja) combine the
/// base sign with a small ゃゅょ.
///
/// Kanji carries no phonetic information without a dictionary, so
/// kanji input fails with InvalidArgument — such rows store the empty
/// phonemic string and match nothing, which reproduces the paper's
/// untransformable-row behaviour for the Japanese entry of Fig. 1.
class KanaG2P : public G2PConverter {
 public:
  static Result<std::unique_ptr<KanaG2P>> Create();

  text::Language language() const override {
    return text::Language::kJapanese;
  }

  Result<phonetic::PhonemeString> ToPhonemes(
      std::string_view utf8) const override;
};

}  // namespace lexequal::g2p

#endif  // LEXEQUAL_G2P_KANA_G2P_H_
