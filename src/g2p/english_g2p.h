// English grapheme-to-phoneme converter.

#ifndef LEXEQUAL_G2P_ENGLISH_G2P_H_
#define LEXEQUAL_G2P_ENGLISH_G2P_H_

#include <memory>

#include "g2p/g2p.h"
#include "g2p/rule_engine.h"

namespace lexequal::g2p {

/// Rule-based English TTP in the NRL tradition, tuned for proper
/// names (the paper's attribute domain). Deterministic: a given
/// spelling always yields the same phoneme string.
class EnglishG2P : public G2PConverter {
 public:
  /// Builds the converter; fails only on an internal rule-table bug.
  static Result<std::unique_ptr<EnglishG2P>> Create();

  text::Language language() const override {
    return text::Language::kEnglish;
  }

  Result<phonetic::PhonemeString> ToPhonemes(
      std::string_view utf8) const override;

  /// The underlying engine, exposed for rule-count introspection in
  /// tests and docs.
  const RuleEngine& engine() const { return engine_; }

 private:
  explicit EnglishG2P(RuleEngine engine) : engine_(std::move(engine)) {}

  RuleEngine engine_;
};

}  // namespace lexequal::g2p

#endif  // LEXEQUAL_G2P_ENGLISH_G2P_H_
