#include "g2p/hangul_g2p.h"

#include <vector>

#include "text/utf8.h"

namespace lexequal::g2p {

namespace {

using phonetic::Phoneme;
using P = Phoneme;

// Jamo tables in Unicode decomposition order. kNumPhonemes entries
// mean "no sound" (the silent initial ㅇ, the empty final).
const std::vector<std::vector<Phoneme>>& Initials() {
  static const std::vector<std::vector<Phoneme>>& t =
      *new std::vector<std::vector<Phoneme>>{
          {P::kG},         // ㄱ
          {P::kK},         // ㄲ (tense -> plain k)
          {P::kN},         // ㄴ
          {P::kD},         // ㄷ
          {P::kT},         // ㄸ
          {P::kRr},        // ㄹ
          {P::kM},         // ㅁ
          {P::kB},         // ㅂ
          {P::kP},         // ㅃ
          {P::kS},         // ㅅ
          {P::kS},         // ㅆ
          {},              // ㅇ silent initial
          {P::kJh},        // ㅈ
          {P::kCh},        // ㅉ
          {P::kChh},       // ㅊ aspirated
          {P::kKh},        // ㅋ
          {P::kTh},        // ㅌ
          {P::kPh},        // ㅍ
          {P::kH},         // ㅎ
      };
  return t;
}

const std::vector<std::vector<Phoneme>>& Medials() {
  static const std::vector<std::vector<Phoneme>>& t =
      *new std::vector<std::vector<Phoneme>>{
          {P::kA},                 // ㅏ
          {P::kEh},                // ㅐ
          {P::kJ, P::kA},          // ㅑ
          {P::kJ, P::kEh},         // ㅒ
          {P::kVv},                // ㅓ
          {P::kE},                 // ㅔ
          {P::kJ, P::kVv},         // ㅕ
          {P::kJ, P::kE},          // ㅖ
          {P::kO},                 // ㅗ
          {P::kW, P::kA},          // ㅘ
          {P::kW, P::kEh},         // ㅙ
          {P::kW, P::kE},          // ㅚ
          {P::kJ, P::kO},          // ㅛ
          {P::kU},                 // ㅜ
          {P::kW, P::kVv},         // ㅝ
          {P::kW, P::kE},          // ㅞ
          {P::kW, P::kI},          // ㅟ
          {P::kJ, P::kU},          // ㅠ
          {P::kUh},                // ㅡ (ɯ folded to ʊ)
          {P::kUh, P::kI},         // ㅢ
          {P::kI},                 // ㅣ
      };
  return t;
}

const std::vector<std::vector<Phoneme>>& Finals() {
  static const std::vector<std::vector<Phoneme>>& t =
      *new std::vector<std::vector<Phoneme>>{
          {},               // (none)
          {P::kK},          // ㄱ
          {P::kK},          // ㄲ
          {P::kK},          // ㄳ
          {P::kN},          // ㄴ
          {P::kN},          // ㄵ
          {P::kN},          // ㄶ
          {P::kT},          // ㄷ
          {P::kL},          // ㄹ
          {P::kK},          // ㄺ
          {P::kM},          // ㄻ
          {P::kL},          // ㄼ
          {P::kL},          // ㄽ
          {P::kL},          // ㄾ
          {P::kP},          // ㄿ
          {P::kL},          // ㅀ
          {P::kM},          // ㅁ
          {P::kP},          // ㅂ
          {P::kP},          // ㅄ
          {P::kT},          // ㅅ
          {P::kT},          // ㅆ
          {P::kNg},         // ㅇ
          {P::kT},          // ㅈ
          {P::kT},          // ㅊ
          {P::kK},          // ㅋ
          {P::kT},          // ㅌ
          {P::kP},          // ㅍ
          {P::kT},          // ㅎ
      };
  return t;
}

}  // namespace

Result<std::unique_ptr<HangulG2P>> HangulG2P::Create() {
  return std::unique_ptr<HangulG2P>(new HangulG2P());
}

Result<phonetic::PhonemeString> HangulG2P::ToPhonemes(
    std::string_view utf8) const {
  const std::vector<uint32_t> cps = text::DecodeUtf8(utf8);
  std::vector<Phoneme> out;
  for (uint32_t cp : cps) {
    if (cp >= 0xAC00 && cp <= 0xD7A3) {
      const uint32_t index = cp - 0xAC00;
      const uint32_t initial = index / (21 * 28);
      const uint32_t medial = (index / 28) % 21;
      const uint32_t final = index % 28;
      for (Phoneme p : Initials()[initial]) out.push_back(p);
      for (Phoneme p : Medials()[medial]) out.push_back(p);
      for (Phoneme p : Finals()[final]) out.push_back(p);
      continue;
    }
    if (cp == ' ' || cp == '-' || cp == '.') continue;
    return Status::InvalidArgument(
        "unexpected code point U+" + std::to_string(cp) +
        " in Hangul text (only composed syllables supported)");
  }
  return phonetic::PhonemeString(std::move(out));
}

}  // namespace lexequal::g2p
