#include "g2p/greek_g2p.h"

#include <vector>

#include "text/utf8.h"

namespace lexequal::g2p {

namespace {

using phonetic::Phoneme;
using P = Phoneme;

// Folds case and accents to lowercase base letters (code points in
// the Greek and Coptic block). Returns 0 for non-letters.
uint32_t FoldGreek(uint32_t cp) {
  // Uppercase plain letters.
  if (cp >= 0x0391 && cp <= 0x03A9 && cp != 0x03A2) {
    return cp + 0x20;
  }
  switch (cp) {
    case 0x0386: return 0x03B1;  // Ά
    case 0x0388: return 0x03B5;  // Έ
    case 0x0389: return 0x03B7;  // Ή
    case 0x038A: return 0x03B9;  // Ί
    case 0x038C: return 0x03BF;  // Ό
    case 0x038E: return 0x03C5;  // Ύ
    case 0x038F: return 0x03C9;  // Ώ
    case 0x03AC: return 0x03B1;  // ά
    case 0x03AD: return 0x03B5;  // έ
    case 0x03AE: return 0x03B7;  // ή
    case 0x03AF: return 0x03B9;  // ί
    case 0x03CC: return 0x03BF;  // ό
    case 0x03CD: return 0x03C5;  // ύ
    case 0x03CE: return 0x03C9;  // ώ
    case 0x03CA: return 0x03B9;  // ϊ
    case 0x03CB: return 0x03C5;  // ϋ
    case 0x0390: return 0x03B9;  // ΐ
    case 0x03B0: return 0x03C5;  // ΰ
    case 0x03C2: return 0x03C3;  // ς final sigma
    default:
      break;
  }
  if (cp >= 0x03B1 && cp <= 0x03C9) return cp;
  return 0;
}

bool IsGreekVowel(uint32_t cp) {
  switch (cp) {
    case 0x03B1:  // α
    case 0x03B5:  // ε
    case 0x03B7:  // η
    case 0x03B9:  // ι
    case 0x03BF:  // ο
    case 0x03C5:  // υ
    case 0x03C9:  // ω
      return true;
    default:
      return false;
  }
}

// True when the letter starts a voiceless continuation for αυ/ευ.
bool IsVoicelessNext(uint32_t cp) {
  switch (cp) {
    case 0x03B8:  // θ
    case 0x03BA:  // κ
    case 0x03BE:  // ξ
    case 0x03C0:  // π
    case 0x03C3:  // σ
    case 0x03C4:  // τ
    case 0x03C6:  // φ
    case 0x03C7:  // χ
    case 0x03C8:  // ψ
      return true;
    default:
      return false;
  }
}

}  // namespace

Result<std::unique_ptr<GreekG2P>> GreekG2P::Create() {
  return std::unique_ptr<GreekG2P>(new GreekG2P());
}

Result<phonetic::PhonemeString> GreekG2P::ToPhonemes(
    std::string_view utf8) const {
  std::vector<uint32_t> raw = text::DecodeUtf8(utf8);
  std::vector<uint32_t> g;  // folded Greek letters only
  g.reserve(raw.size());
  for (uint32_t cp : raw) {
    if (cp == ' ' || cp == '-' || cp == '.' || cp == 0x0384 ||
        cp == 0x0385) {
      continue;
    }
    uint32_t f = FoldGreek(cp);
    if (f == 0) {
      return Status::InvalidArgument("unexpected code point U+" +
                                     std::to_string(cp) +
                                     " in Greek text");
    }
    g.push_back(f);
  }

  std::vector<Phoneme> out;
  out.reserve(g.size());
  size_t i = 0;
  const size_t n = g.size();
  auto next_is = [&](uint32_t cp) { return i + 1 < n && g[i + 1] == cp; };

  while (i < n) {
    uint32_t c = g[i];
    switch (c) {
      case 0x03B1:  // α
        if (next_is(0x03B9)) {  // αι -> e
          out.push_back(P::kE);
          i += 2;
        } else if (next_is(0x03C5)) {  // αυ -> av / af
          out.push_back(P::kA);
          out.push_back(i + 2 < n && IsVoicelessNext(g[i + 2]) ? P::kF
                                                               : P::kV);
          i += 2;
        } else {
          out.push_back(P::kA);
          ++i;
        }
        break;
      case 0x03B5:  // ε
        if (next_is(0x03B9)) {  // ει -> i
          out.push_back(P::kI);
          i += 2;
        } else if (next_is(0x03C5)) {  // ευ -> ev / ef
          out.push_back(P::kE);
          out.push_back(i + 2 < n && IsVoicelessNext(g[i + 2]) ? P::kF
                                                               : P::kV);
          i += 2;
        } else {
          out.push_back(P::kEh);
          ++i;
        }
        break;
      case 0x03BF:  // ο
        if (next_is(0x03B9)) {  // οι -> i
          out.push_back(P::kI);
          i += 2;
        } else if (next_is(0x03C5)) {  // ου -> u
          out.push_back(P::kU);
          i += 2;
        } else {
          out.push_back(P::kO);
          ++i;
        }
        break;
      case 0x03C5:  // υ alone -> i
        if (next_is(0x03B9)) {  // υι -> i
          out.push_back(P::kI);
          i += 2;
        } else {
          out.push_back(P::kI);
          ++i;
        }
        break;
      case 0x03B7:  // η -> i
      case 0x03B9:  // ι
        out.push_back(P::kI);
        ++i;
        break;
      case 0x03C9:  // ω -> o
        out.push_back(P::kO);
        ++i;
        break;
      case 0x03B2:  // β -> v
        out.push_back(P::kV);
        ++i;
        break;
      case 0x03B3:  // γ
        if (next_is(0x03BA)) {  // γκ -> g initially, ŋg medially
          if (i != 0) out.push_back(P::kNg);
          out.push_back(P::kG);
          i += 2;
        } else if (next_is(0x03B3)) {  // γγ -> ŋg
          out.push_back(P::kNg);
          out.push_back(P::kG);
          i += 2;
        } else if (i + 1 < n &&
                   (g[i + 1] == 0x03B5 || g[i + 1] == 0x03B9 ||
                    g[i + 1] == 0x03B7 || g[i + 1] == 0x03C5)) {
          out.push_back(P::kJ);  // palatal before front vowels
          ++i;
        } else {
          out.push_back(P::kGhF);  // ɣ
          ++i;
        }
        break;
      case 0x03B4:  // δ -> ð
        out.push_back(P::kDhF);
        ++i;
        break;
      case 0x03B6:  // ζ -> z
        out.push_back(P::kZ);
        ++i;
        break;
      case 0x03B8:  // θ
        out.push_back(P::kThF);
        ++i;
        break;
      case 0x03BA:  // κ
        out.push_back(P::kK);
        ++i;
        break;
      case 0x03BB:  // λ
        out.push_back(P::kL);
        ++i;
        break;
      case 0x03BC:  // μ
        if (next_is(0x03C0)) {  // μπ -> b (mb medially; folded to b)
          out.push_back(P::kB);
          i += 2;
        } else {
          out.push_back(P::kM);
          ++i;
        }
        break;
      case 0x03BD:  // ν
        if (next_is(0x03C4)) {  // ντ -> d
          out.push_back(P::kD);
          i += 2;
        } else {
          out.push_back(P::kN);
          ++i;
        }
        break;
      case 0x03BE:  // ξ -> ks
        out.push_back(P::kK);
        out.push_back(P::kS);
        ++i;
        break;
      case 0x03C0:  // π
        out.push_back(P::kP);
        ++i;
        break;
      case 0x03C1:  // ρ
        out.push_back(P::kR);
        ++i;
        break;
      case 0x03C3:  // σ
        out.push_back(P::kS);
        ++i;
        break;
      case 0x03C4:  // τ
        if (next_is(0x03C3)) {  // τσ -> tʃ (ts folded to the affricate)
          out.push_back(P::kCh);
          i += 2;
        } else if (next_is(0x03B6)) {  // τζ -> dʒ
          out.push_back(P::kJh);
          i += 2;
        } else {
          out.push_back(P::kT);
          ++i;
        }
        break;
      case 0x03C6:  // φ -> f
        out.push_back(P::kF);
        ++i;
        break;
      case 0x03C7:  // χ -> x
        out.push_back(P::kX);
        ++i;
        break;
      case 0x03C8:  // ψ -> ps
        out.push_back(P::kP);
        out.push_back(P::kS);
        ++i;
        break;
      default:
        return Status::InvalidArgument("unhandled Greek letter U+" +
                                       std::to_string(c));
    }
  }
  return phonetic::PhonemeString(std::move(out));
}

}  // namespace lexequal::g2p
