#include "g2p/devanagari_g2p.h"

#include <vector>

#include "text/utf8.h"

namespace lexequal::g2p {

namespace {

using phonetic::Phoneme;
using P = Phoneme;

// Devanagari block offsets.
constexpr uint32_t kVirama = 0x094D;
constexpr uint32_t kAnusvara = 0x0902;
constexpr uint32_t kCandrabindu = 0x0901;
constexpr uint32_t kVisarga = 0x0903;
constexpr uint32_t kNukta = 0x093C;

// Consonant phoneme for code points U+0915..U+0939; kNumPhonemes for
// non-consonants.
Phoneme ConsonantPhoneme(uint32_t cp) {
  switch (cp) {
    case 0x0915: return P::kK;    // क
    case 0x0916: return P::kKh;   // ख
    case 0x0917: return P::kG;    // ग
    case 0x0918: return P::kGh;   // घ
    case 0x0919: return P::kNg;   // ङ
    case 0x091A: return P::kCh;   // च
    case 0x091B: return P::kChh;  // छ
    case 0x091C: return P::kJh;   // ज
    case 0x091D: return P::kJhh;  // झ
    case 0x091E: return P::kNy;   // ञ
    case 0x091F: return P::kTt;   // ट
    case 0x0920: return P::kTth;  // ठ
    case 0x0921: return P::kDd;   // ड
    case 0x0922: return P::kDdh;  // ढ
    case 0x0923: return P::kNn;   // ण
    case 0x0924: return P::kT;    // त
    case 0x0925: return P::kTh;   // थ
    case 0x0926: return P::kD;    // द
    case 0x0927: return P::kDh;   // ध
    case 0x0928: return P::kN;    // न
    case 0x0929: return P::kN;    // ऩ
    case 0x092A: return P::kP;    // प
    case 0x092B: return P::kPh;   // फ
    case 0x092C: return P::kB;    // ब
    case 0x092D: return P::kBh;   // भ
    case 0x092E: return P::kM;    // म
    case 0x092F: return P::kJ;    // य
    case 0x0930: return P::kR;    // र
    case 0x0931: return P::kR;    // ऱ
    case 0x0932: return P::kL;    // ल
    case 0x0933: return P::kLl;   // ळ
    case 0x0934: return P::kRz;   // ऴ
    case 0x0935: return P::kV;    // व
    case 0x0936: return P::kSh;   // श
    case 0x0937: return P::kSs;   // ष
    case 0x0938: return P::kS;    // स
    case 0x0939: return P::kH;    // ह
    // Precomposed nukta consonants (Perso-Arabic loan sounds).
    case 0x0958: return P::kK;    // क़ qa -> k
    case 0x0959: return P::kX;    // ख़
    case 0x095A: return P::kGhF;  // ग़
    case 0x095B: return P::kZ;    // ज़
    case 0x095C: return P::kRd;   // ड़
    case 0x095D: return P::kRd;   // ढ़
    case 0x095E: return P::kF;    // फ़
    case 0x095F: return P::kJ;    // य़
    default:
      return P::kNumPhonemes;
  }
}

// Applies a nukta to a base consonant phoneme.
Phoneme ApplyNukta(Phoneme base) {
  switch (base) {
    case P::kK:   return P::kK;    // क़ (q), folded to k
    case P::kKh:  return P::kX;    // ख़
    case P::kG:   return P::kGhF;  // ग़
    case P::kJh:  return P::kZ;    // ज़
    case P::kDd:  return P::kRd;   // ड़
    case P::kDdh: return P::kRd;   // ढ़
    case P::kPh:  return P::kF;    // फ़
    default:
      return base;
  }
}

// Independent vowel (U+0904..U+0914 and friends); kNumPhonemes if not.
Phoneme IndependentVowel(uint32_t cp) {
  switch (cp) {
    case 0x0905: return P::kSchwa;  // अ
    case 0x0906: return P::kA;      // आ
    case 0x0907: return P::kIh;     // इ
    case 0x0908: return P::kI;      // ई
    case 0x0909: return P::kUh;     // उ
    case 0x090A: return P::kU;      // ऊ
    case 0x090B: return P::kRr;     // ऋ (r; the vocalic quality folds)
    case 0x090F: return P::kE;      // ए
    case 0x0910: return P::kEh;     // ऐ
    case 0x0911: return P::kOh;     // ऑ
    case 0x0913: return P::kO;      // ओ
    case 0x0914: return P::kOh;     // औ
    default:
      return P::kNumPhonemes;
  }
}

// Dependent vowel sign (matra, U+093E..U+094C); kNumPhonemes if not.
Phoneme MatraVowel(uint32_t cp) {
  switch (cp) {
    case 0x093E: return P::kA;      // ा
    case 0x093F: return P::kIh;     // ि
    case 0x0940: return P::kI;      // ी
    case 0x0941: return P::kUh;     // ु
    case 0x0942: return P::kU;      // ू
    case 0x0943: return P::kRr;     // ृ
    case 0x0945: return P::kEh;     // ॅ
    case 0x0947: return P::kE;      // े
    case 0x0948: return P::kEh;     // ै
    case 0x0949: return P::kOh;     // ॉ
    case 0x094B: return P::kO;      // ो
    case 0x094C: return P::kOh;     // ौ
    default:
      return P::kNumPhonemes;
  }
}

// Homorganic nasal for the consonant that follows an anusvara.
Phoneme AnusvaraBefore(Phoneme next) {
  if (next == P::kNumPhonemes) return P::kM;  // word-final
  const phonetic::PhonemeInfo& info = phonetic::GetPhonemeInfo(next);
  using phonetic::Place;
  switch (info.place) {
    case Place::kBilabial:
    case Place::kLabiodental:
      return P::kM;
    case Place::kVelar:
      return P::kNg;
    case Place::kPalatal:
    case Place::kPostalveolar:
      return P::kNy;
    case Place::kRetroflex:
      return P::kNn;
    default:
      return P::kN;
  }
}

// True for vowel phonemes (syllable nuclei) in the working sequence.
bool IsVowelP(Phoneme p) { return phonetic::IsVowel(p); }

}  // namespace

Result<std::unique_ptr<DevanagariG2P>> DevanagariG2P::Create() {
  return std::unique_ptr<DevanagariG2P>(new DevanagariG2P());
}

Result<phonetic::PhonemeString> DevanagariG2P::ToPhonemes(
    std::string_view utf8) const {
  const std::vector<uint32_t> cps = text::DecodeUtf8(utf8);

  // Pass 1: linearize to phonemes with explicit inherent schwas.
  // `inherent[i]` marks schwas that came from the abugida (only those
  // are candidates for deletion).
  std::vector<Phoneme> seq;
  std::vector<bool> inherent;
  auto push = [&](Phoneme p, bool inh) {
    seq.push_back(p);
    inherent.push_back(inh);
  };

  size_t i = 0;
  const size_t n = cps.size();
  while (i < n) {
    uint32_t cp = cps[i];

    Phoneme cons = ConsonantPhoneme(cp);
    if (cons != P::kNumPhonemes) {
      ++i;
      if (i < n && cps[i] == kNukta) {
        cons = ApplyNukta(cons);
        ++i;
      }
      push(cons, false);
      if (i < n && cps[i] == kVirama) {
        ++i;  // vowel suppressed; consonant cluster continues
        continue;
      }
      Phoneme matra = i < n ? MatraVowel(cps[i]) : P::kNumPhonemes;
      if (matra != P::kNumPhonemes) {
        push(matra, false);
        ++i;
      } else {
        push(P::kSchwa, true);  // inherent vowel
      }
      continue;
    }

    Phoneme vowel = IndependentVowel(cp);
    if (vowel != P::kNumPhonemes) {
      push(vowel, false);
      ++i;
      continue;
    }

    if (cp == kAnusvara || cp == kCandrabindu) {
      // Resolve against the next consonant (peek past this sign).
      Phoneme next = P::kNumPhonemes;
      if (i + 1 < n) {
        Phoneme c = ConsonantPhoneme(cps[i + 1]);
        if (c != P::kNumPhonemes) next = c;
      }
      push(AnusvaraBefore(next), false);
      ++i;
      continue;
    }
    if (cp == kVisarga) {
      push(P::kH, false);
      ++i;
      continue;
    }
    if (cp == 0x200C || cp == 0x200D ||  // ZWNJ / ZWJ
        cp == ' ' || cp == '-' || cp == '.' || cp == kNukta ||
        (cp >= 0x0966 && cp <= 0x096F)) {  // digits
      ++i;
      continue;
    }
    return Status::InvalidArgument(
        "unexpected code point U+" + std::to_string(cp) +
        " in Devanagari text");
  }

  // Pass 2: schwa deletion, in two stages so the medial rule sees the
  // post-final-deletion form (भारत must become bʱarət, not bʱart).
  // Stage 1: the word-final inherent schwa always deletes.
  if (seq.size() > 1 && seq.back() == P::kSchwa && inherent.back()) {
    seq.pop_back();
    inherent.pop_back();
  }
  // Stage 2: a medial inherent schwa deletes in the V C _ C V context
  // (the standard Hindi heuristic), left to right, non-recursively.
  std::vector<Phoneme> out;
  out.reserve(seq.size());
  for (size_t k = 0; k < seq.size(); ++k) {
    if (seq[k] == P::kSchwa && inherent[k]) {
      const bool vc_before = k >= 2 && IsVowelP(seq[k - 2]) &&
                             !IsVowelP(seq[k - 1]);
      const bool cv_after = k + 2 < seq.size() && !IsVowelP(seq[k + 1]) &&
                            IsVowelP(seq[k + 2]);
      if (vc_before && cv_after) continue;  // delete medial schwa
    }
    out.push_back(seq[k]);
  }
  return phonetic::PhonemeString(std::move(out));
}

}  // namespace lexequal::g2p
