// Text-to-Phoneme (TTP / G2P) conversion.
//
// This is the `transform` function of the LexEQUAL algorithm (Fig. 8):
// it takes a lexicographic string in a given language and returns the
// phonetically equivalent string in the IPA alphabet. The paper
// integrates third-party TTP converters; here each converter is a
// rule-based engine built from scratch (see DESIGN.md §2).

#ifndef LEXEQUAL_G2P_G2P_H_
#define LEXEQUAL_G2P_G2P_H_

#include <map>
#include <memory>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "phonetic/phoneme_string.h"
#include "text/language.h"
#include "text/tagged_string.h"

namespace lexequal::g2p {

/// Interface of a per-language grapheme-to-phoneme converter.
class G2PConverter {
 public:
  virtual ~G2PConverter() = default;

  /// Language this converter handles.
  virtual text::Language language() const = 0;

  /// Converts UTF-8 text to its phonemic representation. Characters
  /// outside the converter's script (digits, punctuation) are skipped;
  /// fails with InvalidArgument only on text it cannot interpret at
  /// all.
  virtual Result<phonetic::PhonemeString> ToPhonemes(
      std::string_view utf8) const = 0;
};

/// Registry of converters, the "lexical resources ... integrated with
/// the query processor" of the paper's architecture (Fig. 7).
///
/// Thread-compatible: construct and populate once, then share.
class G2PRegistry {
 public:
  G2PRegistry() = default;
  G2PRegistry(const G2PRegistry&) = delete;
  G2PRegistry& operator=(const G2PRegistry&) = delete;

  /// Registers a converter; replaces any previous one for the same
  /// language (user-installable resources, as in the paper).
  void Register(std::unique_ptr<G2PConverter> converter);

  /// True when a converter for `lang` is installed.
  bool Supports(text::Language lang) const;

  /// Languages with installed converters (the paper's S_L).
  std::vector<text::Language> SupportedLanguages() const;

  /// The `transform(S, L)` of Fig. 8. Returns NoResource when no
  /// converter is installed for `lang` — the LexEQUAL NORESOURCE
  /// outcome.
  Result<phonetic::PhonemeString> Transform(std::string_view utf8,
                                            text::Language lang) const;

  /// Convenience overload for tagged strings.
  Result<phonetic::PhonemeString> Transform(
      const text::TaggedString& s) const {
    return Transform(s.text(), s.language());
  }

  /// Registry preloaded with every bundled converter (English, Hindi,
  /// Tamil, Greek, French, Spanish). The instance is immutable and
  /// shared; lives for the program duration.
  static const G2PRegistry& Default();

 private:
  std::map<text::Language, std::unique_ptr<G2PConverter>> converters_;
};

}  // namespace lexequal::g2p

#endif  // LEXEQUAL_G2P_G2P_H_
