#include "g2p/kana_g2p.h"

#include <vector>

#include "text/utf8.h"

namespace lexequal::g2p {

namespace {

using phonetic::Phoneme;
using P = Phoneme;

// Phonemes of one hiragana sign (katakana is normalized first).
// Returns false for code points that are not plain syllable signs.
bool Syllable(uint32_t cp, std::vector<Phoneme>* out) {
  auto cv = [out](std::initializer_list<Phoneme> ps) {
    out->assign(ps);
    return true;
  };
  switch (cp) {
    case 0x3042: case 0x3041: return cv({P::kA});            // あ
    case 0x3044: case 0x3043: return cv({P::kI});            // い
    case 0x3046: case 0x3045: return cv({P::kU});            // う
    case 0x3048: case 0x3047: return cv({P::kE});            // え
    case 0x304A: case 0x3049: return cv({P::kO});            // お
    case 0x304B: return cv({P::kK, P::kA});                  // か
    case 0x304D: return cv({P::kK, P::kI});                  // き
    case 0x304F: return cv({P::kK, P::kU});                  // く
    case 0x3051: return cv({P::kK, P::kE});                  // け
    case 0x3053: return cv({P::kK, P::kO});                  // こ
    case 0x304C: return cv({P::kG, P::kA});                  // が
    case 0x304E: return cv({P::kG, P::kI});                  // ぎ
    case 0x3050: return cv({P::kG, P::kU});                  // ぐ
    case 0x3052: return cv({P::kG, P::kE});                  // げ
    case 0x3054: return cv({P::kG, P::kO});                  // ご
    case 0x3055: return cv({P::kS, P::kA});                  // さ
    case 0x3057: return cv({P::kSh, P::kI});                 // し
    case 0x3059: return cv({P::kS, P::kU});                  // す
    case 0x305B: return cv({P::kS, P::kE});                  // せ
    case 0x305D: return cv({P::kS, P::kO});                  // そ
    case 0x3056: return cv({P::kZ, P::kA});                  // ざ
    case 0x3058: return cv({P::kJh, P::kI});                 // じ
    case 0x305A: return cv({P::kZ, P::kU});                  // ず
    case 0x305C: return cv({P::kZ, P::kE});                  // ぜ
    case 0x305E: return cv({P::kZ, P::kO});                  // ぞ
    case 0x305F: return cv({P::kT, P::kA});                  // た
    case 0x3061: return cv({P::kCh, P::kI});                 // ち
    case 0x3064: return cv({P::kT, P::kS, P::kU});           // つ
    case 0x3066: return cv({P::kT, P::kE});                  // て
    case 0x3068: return cv({P::kT, P::kO});                  // と
    case 0x3060: return cv({P::kD, P::kA});                  // だ
    case 0x3062: return cv({P::kJh, P::kI});                 // ぢ
    case 0x3065: return cv({P::kZ, P::kU});                  // づ
    case 0x3067: return cv({P::kD, P::kE});                  // で
    case 0x3069: return cv({P::kD, P::kO});                  // ど
    case 0x306A: return cv({P::kN, P::kA});                  // な
    case 0x306B: return cv({P::kN, P::kI});                  // に
    case 0x306C: return cv({P::kN, P::kU});                  // ぬ
    case 0x306D: return cv({P::kN, P::kE});                  // ね
    case 0x306E: return cv({P::kN, P::kO});                  // の
    case 0x306F: return cv({P::kH, P::kA});                  // は
    case 0x3072: return cv({P::kH, P::kI});                  // ひ
    case 0x3075: return cv({P::kF, P::kU});                  // ふ
    case 0x3078: return cv({P::kH, P::kE});                  // へ
    case 0x307B: return cv({P::kH, P::kO});                  // ほ
    case 0x3070: return cv({P::kB, P::kA});                  // ば
    case 0x3073: return cv({P::kB, P::kI});                  // び
    case 0x3076: return cv({P::kB, P::kU});                  // ぶ
    case 0x3079: return cv({P::kB, P::kE});                  // べ
    case 0x307C: return cv({P::kB, P::kO});                  // ぼ
    case 0x3071: return cv({P::kP, P::kA});                  // ぱ
    case 0x3074: return cv({P::kP, P::kI});                  // ぴ
    case 0x3077: return cv({P::kP, P::kU});                  // ぷ
    case 0x307A: return cv({P::kP, P::kE});                  // ぺ
    case 0x307D: return cv({P::kP, P::kO});                  // ぽ
    case 0x307E: return cv({P::kM, P::kA});                  // ま
    case 0x307F: return cv({P::kM, P::kI});                  // み
    case 0x3080: return cv({P::kM, P::kU});                  // む
    case 0x3081: return cv({P::kM, P::kE});                  // め
    case 0x3082: return cv({P::kM, P::kO});                  // も
    case 0x3084: return cv({P::kJ, P::kA});                  // や
    case 0x3086: return cv({P::kJ, P::kU});                  // ゆ
    case 0x3088: return cv({P::kJ, P::kO});                  // よ
    case 0x3089: return cv({P::kRr, P::kA});                 // ら
    case 0x308A: return cv({P::kRr, P::kI});                 // り
    case 0x308B: return cv({P::kRr, P::kU});                 // る
    case 0x308C: return cv({P::kRr, P::kE});                 // れ
    case 0x308D: return cv({P::kRr, P::kO});                 // ろ
    case 0x308F: return cv({P::kW, P::kA});                  // わ
    case 0x3092: return cv({P::kO});                         // を
    case 0x3094: return cv({P::kV, P::kU});                  // ゔ
    default:
      return false;
  }
}

// Vowel of a small yoon sign, or kNumPhonemes.
Phoneme YoonVowel(uint32_t cp) {
  switch (cp) {
    case 0x3083: return P::kA;  // ゃ
    case 0x3085: return P::kU;  // ゅ
    case 0x3087: return P::kO;  // ょ
    default:
      return P::kNumPhonemes;
  }
}

}  // namespace

Result<std::unique_ptr<KanaG2P>> KanaG2P::Create() {
  return std::unique_ptr<KanaG2P>(new KanaG2P());
}

Result<phonetic::PhonemeString> KanaG2P::ToPhonemes(
    std::string_view utf8) const {
  std::vector<uint32_t> cps = text::DecodeUtf8(utf8);
  // Normalize katakana to hiragana (U+30A1..U+30F6 -> −0x60).
  for (uint32_t& cp : cps) {
    if (cp >= 0x30A1 && cp <= 0x30F6) cp -= 0x60;
  }

  std::vector<Phoneme> out;
  std::vector<Phoneme> syll;
  for (size_t i = 0; i < cps.size(); ++i) {
    const uint32_t cp = cps[i];
    if (Syllable(cp, &syll)) {
      out.insert(out.end(), syll.begin(), syll.end());
      continue;
    }
    Phoneme yoon = YoonVowel(cp);
    if (yoon != P::kNumPhonemes) {
      // きゃ: replace the i of the preceding syllable with j + vowel.
      // Palatal-region consonants absorb the glide (しゅ = ʃu).
      if (!out.empty() && out.back() == P::kI) out.pop_back();
      const bool palatal =
          !out.empty() &&
          (phonetic::GetPhonemeInfo(out.back()).place ==
               phonetic::Place::kPostalveolar ||
           phonetic::GetPhonemeInfo(out.back()).place ==
               phonetic::Place::kPalatal);
      if (!palatal) out.push_back(P::kJ);
      out.push_back(yoon);
      continue;
    }
    switch (cp) {
      case 0x3093:  // ん moraic nasal
        out.push_back(P::kN);
        break;
      case 0x3063:  // っ sokuon: gemination, non-phonemic here
      case 0x30FC:  // ー long-vowel mark (length stripped)
      case 0x30FB:  // ・ middle dot
      case 0x309B:  // voicing marks (spacing)
      case 0x309C:
      case ' ':
        break;
      default:
        return Status::InvalidArgument(
            "unexpected code point U+" + std::to_string(cp) +
            " in kana text (kanji needs a reading dictionary)");
    }
  }
  return phonetic::PhonemeString(std::move(out));
}

}  // namespace lexequal::g2p
