#include "g2p/english_g2p.h"

#include <vector>

#include "common/string_util.h"
#include "g2p/latin_util.h"

namespace lexequal::g2p {

namespace {

// English letter-to-sound rules. Within each letter bucket the first
// matching rule wins, so specific spellings precede defaults. The
// final single-letter rule of every bucket is unconditional, making
// the table total over [a-z].
const std::vector<RewriteRule>& EnglishRules() {
  static const std::vector<RewriteRule>& rules = *new std::vector<
      RewriteRule>{
      // --- A ---
      {" ", "a", " ", "ə"},
      {" ", "are", " ", "ɑr"},
      {" ", "ar", "o", "ər"},
      {"", "ar", "#", "ɛr"},
      {" :", "any", "", "ɛni"},
      {"", "a", "wa", "ə"},
      {"", "augh", "", "ɔ"},
      {"", "aw", "", "ɔ"},
      {"", "au", "", "ɔ"},
      {"#:", "ally", " ", "əli"},
      {" ", "al", "#", "əl"},
      {"", "al", "k", "ɔ"},
      {" ", "again", " ", "əɡɛn"},
      {"#:", "ag", "e", "ɪdʒ"},
      {"", "arr", "", "ər"},
      {" :", "a", "^+ ", "eɪ"},
      {"", "a", "^%", "eɪ"},
      {"", "a", "^+#", "eɪ"},
      {"", "ai", "", "eɪ"},
      {"", "ay", "", "eɪ"},
      {"#:", "a", " ", "ə"},
      {"", "a", "r", "ɑ"},
      // Names domain: plain a is the open central vowel, not æ —
      // Indian/European names and their Indic spellings agree on /a/.
      {"", "a", "", "a"},
      // --- B ---
      {"", "bb", "", "b"},
      {"", "b", "", "b"},
      // --- C ---
      {" ", "ch", "^", "k"},
      {"^e", "ch", "", "k"},
      {"", "ch", "", "tʃ"},
      {" s", "ci", "#", "saɪ"},
      {"", "ci", "a", "ʃ"},
      {"", "ci", "o", "ʃ"},
      {"", "ci", "en", "ʃ"},
      {"", "cc", "+", "ks"},
      {"", "cc", "", "k"},
      {"", "ck", "", "k"},
      {"", "c", "+", "s"},
      {"", "c", "", "k"},
      // --- D ---
      {"", "dge", "", "dʒ"},
      {"", "dd", "", "d"},
      {"", "d", "", "d"},
      // --- E ---
      {"#:", "e", " ", ""},
      {" :", "e", " ", "i"},
      {"#:", "e", "d ", ""},
      {"#:", "e", "s ", ""},
      {"", "ev", "er", "ɛv"},
      {"", "e", "^%", "i"},
      {"#:", "er", "", "ər"},
      {"", "ee", "", "i"},
      {"", "earn", "", "ɜrn"},
      {" ", "ear", "^", "ɜr"},
      {"", "ead", "", "ɛd"},
      {"#:", "ea", " ", "iə"},
      {"", "ea", "", "i"},
      {"", "eigh", "", "eɪ"},
      {"", "ei", "", "i"},
      {" ", "eye", "", "aɪ"},
      {"", "ey", "", "i"},
      {"", "eu", "", "ju"},
      {"", "er", "", "ɜr"},
      {"", "e", "", "ɛ"},
      // --- F ---
      {"", "ff", "", "f"},
      {"", "f", "", "f"},
      // --- G ---
      {" ", "gh", "", "ɡ"},
      {"", "gh", "", ""},
      {" ", "gn", "", "n"},
      {"", "gn", " ", "n"},
      {"", "gi", "v", "ɡɪ"},
      {"", "ge", "t", "ɡɛ"},
      {"", "gg", "", "ɡ"},
      {"", "g", "+", "dʒ"},
      {"", "g", "", "ɡ"},
      // --- H ---
      // Names domain: h is audible except word-finally (Sarah) and
      // before n (John); digraph h's (ch sh th ph gh wh) never reach
      // these rules.
      {"", "h", " ", ""},
      {"", "h", "n", ""},
      {"", "h", "", "h"},
      // --- I ---
      {" ", "i", " ", "aɪ"},
      {"", "ique", "", "ik"},
      {"", "igh", "", "aɪ"},
      {"", "ild", "", "aɪld"},
      {"", "ign", " ", "aɪn"},
      {"", "ir", "#", "aɪr"},
      {"", "ier", "", "iər"},
      {"", "ie", "", "i"},
      {" :", "i", "%", "aɪ"},
      {"", "i", "%", "i"},
      {"", "i", "^e ", "aɪ"},  // magic e: mike, kite
      {"", "ir", "", "ɜr"},
      {"", "i", "", "ɪ"},
      // --- J ---
      {"", "j", "", "dʒ"},
      // --- K ---
      {" ", "k", "n", ""},
      {"", "kk", "", "k"},
      {"", "k", "", "k"},
      // --- L ---
      {"", "ll", "", "l"},
      {"", "l", "", "l"},
      // --- M ---
      {"", "mm", "", "m"},
      {"", "m", "", "m"},
      // --- N ---
      {"", "nn", "", "n"},
      {"", "ng", "+", "ndʒ"},
      {"", "ng", "r", "ŋɡ"},
      {"", "ng", "#", "ŋɡ"},
      {"", "ng", "", "ŋ"},
      {"", "nk", "", "ŋk"},
      {"", "n", "", "n"},
      // --- O ---
      {"", "o", "^%", "oʊ"},
      {"", "oo", "k", "ʊ"},
      {"", "ood", "", "ʊd"},
      {"", "oo", "", "u"},
      {"", "o", "e", "oʊ"},
      {"", "o", " ", "oʊ"},
      {"", "oa", "", "oʊ"},
      {"", "ong", "", "ɔŋ"},
      {"", "ow", "", "oʊ"},
      {"", "ought", "", "ɔt"},
      {"", "ough", "", "ʌf"},
      {"", "our", "", "ɔr"},
      {"", "ould", "", "ʊd"},
      {"", "ou", "", "aʊ"},
      {"", "oy", "", "ɔɪ"},
      {"", "oi", "", "ɔɪ"},
      {"", "or", "", "ɔr"},
      {"", "o", "", "ɑ"},
      // --- P ---
      {"", "ph", "", "f"},
      {"", "pp", "", "p"},
      {"", "p", "", "p"},
      // --- Q ---
      {"", "qu", "", "kw"},
      {"", "q", "", "k"},
      // --- R ---
      {"", "rr", "", "r"},
      {"", "r", "", "r"},
      // --- S ---
      {"", "sh", "", "ʃ"},
      {"", "sch", "^", "ʃ"},
      {"", "sch", "", "sk"},
      {"#", "sion", "", "ʒən"},
      {"", "sion", "", "ʃən"},
      {"", "ss", "", "s"},
      {"#", "s", "#", "z"},
      {"", "s", "", "s"},
      // --- T ---
      {"", "tion", "", "ʃən"},
      {"", "tia", "", "ʃə"},
      {"", "tch", "", "tʃ"},
      {"", "th", "", "θ"},
      {"", "tt", "", "t"},
      {"", "t", "", "t"},
      // --- U ---
      {" ", "u", " ", "ju"},
      {" ", "u", "", "ju"},
      {"", "uy", "", "aɪ"},
      {"g", "u", "#", ""},  // silent u: guard, guest
      {"", "u", "^ ", "ʌ"},
      {"", "u", "^^", "ʌ"},
      {"@", "u", "", "u"},
      {"", "u", "", "u"},
      // --- V ---
      {"", "v", "", "v"},
      // --- W ---
      {" ", "wr", "", "r"},
      {"", "wh", "o", "h"},
      {"", "wh", "", "w"},
      {"", "w", "", "w"},
      // --- X ---
      {" ", "x", "", "z"},
      {"", "x", "", "ks"},
      // --- Y ---
      {"#:", "y", " ", "i"},
      {" :", "y", " ", "aɪ"},
      {" ", "y", "", "j"},
      {"", "y", "", "ɪ"},
      // --- Z ---
      {"", "zz", "", "z"},
      {"", "z", "", "z"},
  };
  return rules;
}

}  // namespace

Result<std::unique_ptr<EnglishG2P>> EnglishG2P::Create() {
  Result<RuleEngine> engine = RuleEngine::Create(EnglishRules());
  if (!engine.ok()) return engine.status();
  return std::unique_ptr<EnglishG2P>(
      new EnglishG2P(std::move(engine).value()));
}

Result<phonetic::PhonemeString> EnglishG2P::ToPhonemes(
    std::string_view utf8) const {
  return engine_.Apply(FoldLatinAccents(utf8));
}

}  // namespace lexequal::g2p
