// Korean (Hangul script) grapheme-to-phoneme converter.

#ifndef LEXEQUAL_G2P_HANGUL_G2P_H_
#define LEXEQUAL_G2P_HANGUL_G2P_H_

#include <memory>

#include "g2p/g2p.h"

namespace lexequal::g2p {

/// Hangul syllable blocks decompose arithmetically:
///   code = 0xAC00 + (initial*21 + medial)*28 + final
/// with 19 initial consonants, 21 medial vowels, and 28 finals (0 =
/// none). The converter decomposes each block and maps the jamo to
/// phonemes; tense consonants fold to their plain series and the
/// aspirated series keeps its aspiration (the inventory carries it).
class HangulG2P : public G2PConverter {
 public:
  static Result<std::unique_ptr<HangulG2P>> Create();

  text::Language language() const override {
    return text::Language::kKorean;
  }

  Result<phonetic::PhonemeString> ToPhonemes(
      std::string_view utf8) const override;
};

}  // namespace lexequal::g2p

#endif  // LEXEQUAL_G2P_HANGUL_G2P_H_
