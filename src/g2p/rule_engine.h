// Context-sensitive rewrite-rule engine for Latin-script G2P.
//
// Rules follow the classic text-to-phoneme formalism of Elovitz et
// al. (NRL) that underlies most rule-based TTP systems, the kind of
// "standard linguistic resource" the paper integrates: each rule
//
//     left [ target ] right  ->  phonemes
//
// rewrites `target` to `phonemes` when its left/right contexts match.
// Scanning is left-to-right; at each position the first matching rule
// wins and the cursor advances past `target`, so rule order encodes
// priority. Context patterns may use metacharacters:
//
//   ' '  word boundary
//   '#'  one or more vowel letters
//   ':'  zero or more consonant letters
//   '^'  exactly one consonant letter
//   '.'  one voiced consonant (b d g j l m n r v w z)
//   '+'  one front vowel letter (e i y)
//   '%'  one of the suffixes -e -er -es -ed -ing -ely (right only)
//   '&'  a sibilant (s c g z x j, or digraph ch sh)
//   '@'  one of t s r d l n j, or digraph th ch sh
//
// Inputs are ASCII-lowercased before matching; accents must be folded
// by the caller (see latin_util.h).

#ifndef LEXEQUAL_G2P_RULE_ENGINE_H_
#define LEXEQUAL_G2P_RULE_ENGINE_H_

#include <array>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "phonetic/phoneme_string.h"

namespace lexequal::g2p {

/// One rewrite rule in source form. `ipa` is parsed by
/// PhonemeString::FromIpa when the engine is built; it may be empty
/// (silent letters).
struct RewriteRule {
  const char* left;
  const char* target;
  const char* right;
  const char* ipa;
};

/// A compiled, immutable rule set.
class RuleEngine {
 public:
  /// Compiles a rule table. Fails if any rule has an empty target or
  /// unparseable IPA.
  static Result<RuleEngine> Create(const std::vector<RewriteRule>& rules);

  /// Applies the rules to one word (ASCII letters; other characters
  /// are skipped). Returns InvalidArgument if some letter position
  /// matches no rule — a complete rule table ends with single-letter
  /// default rules, so this indicates a table bug.
  Result<phonetic::PhonemeString> Apply(std::string_view word) const;

  size_t rule_count() const { return rules_.size(); }

 private:
  struct CompiledRule {
    std::string left;
    std::string target;
    std::string right;
    phonetic::PhonemeString phonemes;
  };

  RuleEngine() = default;

  // Rules bucketed by first letter of target ('a'..'z').
  std::vector<CompiledRule> rules_;
  std::array<std::vector<uint32_t>, 26> by_letter_;
};

}  // namespace lexequal::g2p

#endif  // LEXEQUAL_G2P_RULE_ENGINE_H_
