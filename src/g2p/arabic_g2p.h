// Arabic grapheme-to-phoneme converter.

#ifndef LEXEQUAL_G2P_ARABIC_G2P_H_
#define LEXEQUAL_G2P_ARABIC_G2P_H_

#include <memory>

#include "g2p/g2p.h"

namespace lexequal::g2p {

/// Arabic is an abjad: short vowels are normally unwritten. The
/// converter emits the consonant skeleton, long vowels (ا و ي), and
/// any short-vowel diacritics that are present (fatha/damma/kasra,
/// shadda gemination, tanwin). Emphatic consonants fold to their
/// plain counterparts and the pharyngeals (ع ح) to their nearest
/// glottal sounds — the same phoneme-set flattening the paper's IPA
/// pipeline applies everywhere else.
///
/// Unvocalized text therefore yields sparser vowels than a
/// romanization; the weak-vowel-tolerant cost model absorbs much of
/// that (see the Al-Qaeda test), but matching unvocalized Arabic
/// remains the hardest configuration, as the paper's §2.1 anticipates
/// for vocalization-dependent scripts.
class ArabicG2P : public G2PConverter {
 public:
  static Result<std::unique_ptr<ArabicG2P>> Create();

  text::Language language() const override {
    return text::Language::kArabic;
  }

  Result<phonetic::PhonemeString> ToPhonemes(
      std::string_view utf8) const override;
};

}  // namespace lexequal::g2p

#endif  // LEXEQUAL_G2P_ARABIC_G2P_H_
