#include "g2p/cyrillic_g2p.h"

#include <vector>

#include "text/utf8.h"

namespace lexequal::g2p {

namespace {

using phonetic::Phoneme;
using P = Phoneme;

// Lowercases Cyrillic (А..Я -> а..я, Ё -> ё).
uint32_t FoldCyrillic(uint32_t cp) {
  if (cp >= 0x0410 && cp <= 0x042F) return cp + 0x20;
  if (cp == 0x0401) return 0x0451;  // Ё
  return cp;
}

bool IsCyrillicVowelLetter(uint32_t cp) {
  switch (cp) {
    case 0x0430:  // а
    case 0x0435:  // е
    case 0x0451:  // ё
    case 0x0438:  // и
    case 0x043E:  // о
    case 0x0443:  // у
    case 0x044B:  // ы
    case 0x044D:  // э
    case 0x044E:  // ю
    case 0x044F:  // я
      return true;
    default:
      return false;
  }
}

}  // namespace

Result<std::unique_ptr<CyrillicG2P>> CyrillicG2P::Create() {
  return std::unique_ptr<CyrillicG2P>(new CyrillicG2P());
}

Result<phonetic::PhonemeString> CyrillicG2P::ToPhonemes(
    std::string_view utf8) const {
  std::vector<uint32_t> cps = text::DecodeUtf8(utf8);
  for (uint32_t& cp : cps) cp = FoldCyrillic(cp);

  std::vector<Phoneme> out;
  out.reserve(cps.size());
  for (size_t i = 0; i < cps.size(); ++i) {
    const uint32_t cp = cps[i];
    // The iotated vowels contribute /j/ word-initially, after another
    // vowel, and after the signs ь/ъ.
    const bool j_position =
        i == 0 || IsCyrillicVowelLetter(cps[i - 1]) ||
        cps[i - 1] == 0x044C || cps[i - 1] == 0x044A;
    switch (cp) {
      case 0x0430: out.push_back(P::kA); break;             // а
      case 0x0431: out.push_back(P::kB); break;             // б
      case 0x0432: out.push_back(P::kV); break;             // в
      case 0x0433: out.push_back(P::kG); break;             // г
      case 0x0434: out.push_back(P::kD); break;             // д
      case 0x0435:                                          // е
        if (j_position) out.push_back(P::kJ);
        out.push_back(P::kE);
        break;
      case 0x0451:                                          // ё
        if (j_position) out.push_back(P::kJ);
        out.push_back(P::kO);
        break;
      case 0x0436: out.push_back(P::kZh); break;            // ж
      case 0x0437: out.push_back(P::kZ); break;             // з
      case 0x0438: out.push_back(P::kI); break;             // и
      case 0x0439: out.push_back(P::kJ); break;             // й
      case 0x043A: out.push_back(P::kK); break;             // к
      case 0x043B: out.push_back(P::kL); break;             // л
      case 0x043C: out.push_back(P::kM); break;             // м
      case 0x043D: out.push_back(P::kN); break;             // н
      case 0x043E: out.push_back(P::kO); break;             // о
      case 0x043F: out.push_back(P::kP); break;             // п
      case 0x0440: out.push_back(P::kR); break;             // р
      case 0x0441: out.push_back(P::kS); break;             // с
      case 0x0442: out.push_back(P::kT); break;             // т
      case 0x0443: out.push_back(P::kU); break;             // у
      case 0x0444: out.push_back(P::kF); break;             // ф
      case 0x0445: out.push_back(P::kX); break;             // х
      case 0x0446:                                          // ц -> ts
        out.push_back(P::kT);
        out.push_back(P::kS);
        break;
      case 0x0447: out.push_back(P::kCh); break;            // ч
      case 0x0448: out.push_back(P::kSh); break;            // ш
      case 0x0449:                                          // щ -> ʃtʃ
        out.push_back(P::kSh);
        out.push_back(P::kCh);
        break;
      case 0x044A:                                          // ъ silent
      case 0x044C:                                          // ь silent
        break;
      case 0x044B: out.push_back(P::kIh); break;            // ы
      case 0x044D: out.push_back(P::kEh); break;            // э
      case 0x044E:                                          // ю
        if (j_position) out.push_back(P::kJ);
        out.push_back(P::kU);
        break;
      case 0x044F:                                          // я
        if (j_position) out.push_back(P::kJ);
        out.push_back(P::kA);
        break;
      default:
        if (cp == ' ' || cp == '-' || cp == '.' || cp == 0x2019) break;
        return Status::InvalidArgument("unexpected code point U+" +
                                       std::to_string(cp) +
                                       " in Cyrillic text");
    }
  }
  return phonetic::PhonemeString(std::move(out));
}

}  // namespace lexequal::g2p
