#include "g2p/latin_util.h"

#include "text/utf8.h"

namespace lexequal::g2p {

namespace {

// Base letter for Latin-1 Supplement / Latin Extended-A code points;
// 0 means "drop". Covers the accented letters that occur in European
// name data (Figure 1 of the paper: René, École, Espanől, ...).
char FoldOne(uint32_t cp) {
  if (cp < 0x80) return static_cast<char>(cp);
  switch (cp) {
    case 0xC0: case 0xC1: case 0xC2: case 0xC3: case 0xC4: case 0xC5:
    case 0x100: case 0x102: case 0x104:
      return 'A';
    case 0xE0: case 0xE1: case 0xE2: case 0xE3: case 0xE4: case 0xE5:
    case 0x101: case 0x103: case 0x105:
      return 'a';
    case 0xC7: case 0x106: case 0x108: case 0x10A: case 0x10C:
      return 'C';
    case 0xE7: case 0x107: case 0x109: case 0x10B: case 0x10D:
      return 'c';
    case 0xC8: case 0xC9: case 0xCA: case 0xCB:
    case 0x112: case 0x114: case 0x116: case 0x118: case 0x11A:
      return 'E';
    case 0xE8: case 0xE9: case 0xEA: case 0xEB:
    case 0x113: case 0x115: case 0x117: case 0x119: case 0x11B:
      return 'e';
    case 0xCC: case 0xCD: case 0xCE: case 0xCF:
    case 0x128: case 0x12A: case 0x12C: case 0x12E: case 0x130:
      return 'I';
    case 0xEC: case 0xED: case 0xEE: case 0xEF:
    case 0x129: case 0x12B: case 0x12D: case 0x12F: case 0x131:
      return 'i';
    case 0xD1: case 0x143: case 0x145: case 0x147:
      return 'N';
    case 0xF1: case 0x144: case 0x146: case 0x148:
      return 'n';
    case 0xD2: case 0xD3: case 0xD4: case 0xD5: case 0xD6: case 0xD8:
    case 0x14C: case 0x14E: case 0x150:
      return 'O';
    case 0xF2: case 0xF3: case 0xF4: case 0xF5: case 0xF6: case 0xF8:
    case 0x14D: case 0x14F: case 0x151:
      return 'o';
    case 0xD9: case 0xDA: case 0xDB: case 0xDC:
    case 0x168: case 0x16A: case 0x16C: case 0x16E: case 0x170:
    case 0x172:
      return 'U';
    case 0xF9: case 0xFA: case 0xFB: case 0xFC:
    case 0x169: case 0x16B: case 0x16D: case 0x16F: case 0x171:
    case 0x173:
      return 'u';
    case 0xDD: case 0x176: case 0x178:
      return 'Y';
    case 0xFD: case 0xFF: case 0x177:
      return 'y';
    case 0x15A: case 0x15C: case 0x15E: case 0x160:
      return 'S';
    case 0x15B: case 0x15D: case 0x15F: case 0x161:
      return 's';
    case 0x179: case 0x17B: case 0x17D:
      return 'Z';
    case 0x17A: case 0x17C: case 0x17E:
      return 'z';
    case 0xDF:
      return 's';  // ß -> s (ss collapses in phoneme space anyway)
    default:
      return 0;
  }
}

}  // namespace

std::string FoldLatinAccents(std::string_view utf8) {
  std::string out;
  out.reserve(utf8.size());
  size_t pos = 0;
  while (pos < utf8.size()) {
    uint32_t cp = text::DecodeUtf8(utf8, &pos);
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
      continue;
    }
    // Combining diacritical marks: drop.
    if (cp >= 0x0300 && cp <= 0x036F) continue;
    char folded = FoldOne(cp);
    if (folded != 0) out.push_back(folded);
    // Other non-Latin code points are dropped: the Latin converters
    // only interpret Latin letters.
  }
  return out;
}

}  // namespace lexequal::g2p
