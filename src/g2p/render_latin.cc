#include "g2p/render_latin.h"

#include "text/utf8.h"

namespace lexequal::g2p {

namespace {

using phonetic::Phoneme;
using P = Phoneme;

const char* LatinOf(Phoneme p) {
  switch (p) {
    case P::kI: return "i";
    case P::kIh: return "i";
    case P::kE: return "e";
    case P::kEh: return "e";
    case P::kAe: return "a";
    case P::kY: return "u";
    case P::kOe: return "eu";
    case P::kA: return "a";
    case P::kAa: return "a";
    case P::kVv: return "u";
    case P::kSchwa: return "a";
    case P::kEr: return "er";
    case P::kO: return "o";
    case P::kOh: return "o";
    case P::kU: return "u";
    case P::kUh: return "u";
    case P::kP: return "p";
    case P::kB: return "b";
    case P::kPh: return "ph";
    case P::kBh: return "bh";
    case P::kT: return "t";
    case P::kD: return "d";
    case P::kTh: return "th";
    case P::kDh: return "dh";
    case P::kTt: return "t";
    case P::kDd: return "d";
    case P::kTth: return "th";
    case P::kDdh: return "dh";
    case P::kK: return "k";
    case P::kG: return "g";
    case P::kKh: return "kh";
    case P::kGh: return "gh";
    case P::kCh: return "ch";
    case P::kJh: return "j";
    case P::kChh: return "chh";
    case P::kJhh: return "jh";
    case P::kF: return "f";
    case P::kV: return "v";
    case P::kThF: return "th";
    case P::kDhF: return "dh";
    case P::kS: return "s";
    case P::kZ: return "z";
    case P::kSh: return "sh";
    case P::kZh: return "zh";
    case P::kSs: return "sh";
    case P::kX: return "kh";
    case P::kGhF: return "gh";
    case P::kH: return "h";
    case P::kM: return "m";
    case P::kN: return "n";
    case P::kNn: return "n";
    case P::kNy: return "ny";
    case P::kNg: return "ng";
    case P::kL: return "l";
    case P::kLl: return "l";
    case P::kR: return "r";
    case P::kRr: return "r";
    case P::kRd: return "r";
    case P::kRz: return "zh";
    case P::kJ: return "y";
    case P::kW: return "w";
    default:
      return "";
  }
}

// Greek spellings; voiced stops use the digraphs the Greek G2P
// decodes (μπ ντ γκ).
const char* GreekOf(Phoneme p) {
  switch (p) {
    case P::kI: case P::kIh: case P::kY: return "ι";
    case P::kE: return "ε";
    case P::kEh: return "ε";
    case P::kAe: case P::kA: case P::kAa: case P::kSchwa:
    case P::kVv: case P::kEr:
      return "α";
    case P::kOe: case P::kO: case P::kOh: return "ο";
    case P::kU: case P::kUh: return "ου";
    case P::kP: case P::kPh: return "π";
    case P::kB: case P::kBh: return "μπ";
    case P::kT: case P::kTh: case P::kTt: case P::kTth: return "τ";
    case P::kD: case P::kDh: case P::kDd: case P::kDdh: return "ντ";
    case P::kK: case P::kKh: return "κ";
    case P::kG: case P::kGh: return "γκ";
    case P::kCh: case P::kChh: return "τσ";
    case P::kJh: case P::kJhh: return "τζ";
    case P::kF: return "φ";
    case P::kV: case P::kW: return "β";
    case P::kThF: return "θ";
    case P::kDhF: return "δ";
    case P::kS: return "σ";
    case P::kZ: case P::kZh: return "ζ";
    case P::kSh: case P::kSs: return "σ";
    case P::kX: case P::kGhF: case P::kH: return "χ";
    case P::kM: return "μ";
    case P::kN: case P::kNn: case P::kNy: case P::kNg: return "ν";
    case P::kL: case P::kLl: return "λ";
    case P::kR: case P::kRr: case P::kRd: case P::kRz: return "ρ";
    case P::kJ: return "γι";
    default:
      return nullptr;
  }
}

}  // namespace

std::string RenderLatin(const phonetic::PhonemeString& ps) {
  std::string out;
  for (Phoneme p : ps.phonemes()) {
    out += LatinOf(p);
  }
  return out;
}

Result<std::string> RenderGreek(const phonetic::PhonemeString& ps) {
  std::string out;
  const auto& ph = ps.phonemes();
  for (size_t i = 0; i < ph.size(); ++i) {
    const Phoneme p = ph[i];
    // /j/ before a front vowel is plain γ (the reader's palatal rule
    // gives the glide back exactly); elsewhere γι approximates it.
    if (p == P::kJ) {
      const bool front_next =
          i + 1 < ph.size() &&
          (ph[i + 1] == P::kE || ph[i + 1] == P::kEh ||
           ph[i + 1] == P::kI || ph[i + 1] == P::kIh);
      out += front_next ? "γ" : "γι";
      continue;
    }
    const char* g = GreekOf(p);
    if (g == nullptr) {
      return Status::InvalidArgument(
          std::string("phoneme '") + std::string(PhonemeIpa(p)) +
          "' has no Greek spelling");
    }
    out += g;
  }
  return out;
}

}  // namespace lexequal::g2p
