#include "g2p/g2p.h"

#include "g2p/arabic_g2p.h"
#include "g2p/cyrillic_g2p.h"
#include "g2p/devanagari_g2p.h"
#include "g2p/english_g2p.h"
#include "g2p/greek_g2p.h"
#include "g2p/hangul_g2p.h"
#include "g2p/kana_g2p.h"
#include "g2p/romance_g2p.h"
#include "g2p/tamil_g2p.h"

namespace lexequal::g2p {

void G2PRegistry::Register(std::unique_ptr<G2PConverter> converter) {
  text::Language lang = converter->language();
  converters_[lang] = std::move(converter);
}

bool G2PRegistry::Supports(text::Language lang) const {
  return converters_.count(lang) > 0;
}

std::vector<text::Language> G2PRegistry::SupportedLanguages() const {
  std::vector<text::Language> out;
  out.reserve(converters_.size());
  for (const auto& [lang, conv] : converters_) {
    out.push_back(lang);
  }
  return out;
}

Result<phonetic::PhonemeString> G2PRegistry::Transform(
    std::string_view utf8, text::Language lang) const {
  if (lang == text::Language::kUnknown) {
    // Auto-tag from script, as discussed in the paper's Section 2.1.
    lang = text::DefaultLanguageForScript(text::DetectScript(utf8));
  }
  auto it = converters_.find(lang);
  if (it == converters_.end()) {
    return Status::NoResource(
        "no text-to-phoneme converter installed for language '" +
        std::string(text::LanguageName(lang)) + "'");
  }
  return it->second->ToPhonemes(utf8);
}

const G2PRegistry& G2PRegistry::Default() {
  static const G2PRegistry& registry = *[] {
    auto* r = new G2PRegistry();
    // Converter construction only fails on internal rule-table bugs;
    // surface those loudly at first use.
    auto add = [r](auto result) {
      if (!result.ok()) {
        std::abort();
      }
      r->Register(std::move(result).value());
    };
    add(EnglishG2P::Create());
    add(DevanagariG2P::Create());
    add(TamilG2P::Create());
    add(GreekG2P::Create());
    add(FrenchG2P::Create());
    add(SpanishG2P::Create());
    add(ArabicG2P::Create());
    add(KanaG2P::Create());
    add(CyrillicG2P::Create());
    add(HangulG2P::Create());
    return r;
  }();
  return registry;
}

}  // namespace lexequal::g2p
