#include "g2p/arabic_g2p.h"

#include <vector>

#include "text/utf8.h"

namespace lexequal::g2p {

namespace {

using phonetic::Phoneme;
using P = Phoneme;

// Consonant letters (kNumPhonemes = not a consonant letter).
Phoneme Consonant(uint32_t cp) {
  switch (cp) {
    case 0x0628: return P::kB;    // ب
    case 0x062A: return P::kT;    // ت
    case 0x062B: return P::kThF;  // ث
    case 0x062C: return P::kJh;   // ج
    case 0x062D: return P::kH;    // ح (pharyngeal -> h)
    case 0x062E: return P::kX;    // خ
    case 0x062F: return P::kD;    // د
    case 0x0630: return P::kDhF;  // ذ
    case 0x0631: return P::kR;    // ر
    case 0x0632: return P::kZ;    // ز
    case 0x0633: return P::kS;    // س
    case 0x0634: return P::kSh;   // ش
    case 0x0635: return P::kS;    // ص (emphatic -> s)
    case 0x0636: return P::kD;    // ض
    case 0x0637: return P::kT;    // ط
    case 0x0638: return P::kZ;    // ظ
    case 0x063A: return P::kGhF;  // غ
    case 0x0641: return P::kF;    // ف
    case 0x0642: return P::kK;    // ق (uvular -> k)
    case 0x0643: return P::kK;    // ك
    case 0x0644: return P::kL;    // ل
    case 0x0645: return P::kM;    // م
    case 0x0646: return P::kN;    // ن
    case 0x0647: return P::kH;    // ه
    case 0x067E: return P::kP;    // پ (Persian)
    case 0x0686: return P::kCh;   // چ (Persian)
    case 0x06AF: return P::kG;    // گ (Persian)
    case 0x06A4: return P::kV;    // ڤ
    default:
      return P::kNumPhonemes;
  }
}

bool IsVowelP(Phoneme p) { return phonetic::IsVowel(p); }

}  // namespace

Result<std::unique_ptr<ArabicG2P>> ArabicG2P::Create() {
  return std::unique_ptr<ArabicG2P>(new ArabicG2P());
}

Result<phonetic::PhonemeString> ArabicG2P::ToPhonemes(
    std::string_view utf8) const {
  const std::vector<uint32_t> cps = text::DecodeUtf8(utf8);
  std::vector<Phoneme> out;
  out.reserve(cps.size());

  auto last = [&]() -> Phoneme {
    return out.empty() ? P::kNumPhonemes : out.back();
  };

  size_t i = 0;
  const size_t n = cps.size();
  while (i < n) {
    const uint32_t cp = cps[i];

    Phoneme cons = Consonant(cp);
    if (cons != P::kNumPhonemes) {
      out.push_back(cons);
      ++i;
      continue;
    }

    switch (cp) {
      // Alif family: the long open vowel.
      case 0x0627:  // ا
      case 0x0622:  // آ
      case 0x0623:  // أ
      case 0x0625:  // إ
      case 0x0671:  // ٱ
        out.push_back(P::kA);
        ++i;
        break;
      case 0x0649:  // ى alif maqsura
        out.push_back(P::kA);
        ++i;
        break;
      case 0x0629:  // ة ta marbuta: word-final -a(t); folded to a
        out.push_back(P::kA);
        ++i;
        break;
      case 0x0648:  // و: w before a vowel, long u otherwise
        if (i + 1 < n &&
            (cps[i + 1] == 0x0627 || cps[i + 1] == 0x064E ||
             cps[i + 1] == 0x0650)) {
          out.push_back(P::kW);
        } else if (out.empty() || !IsVowelP(last())) {
          out.push_back(P::kU);
        } else {
          out.push_back(P::kW);
        }
        ++i;
        break;
      case 0x064A:  // ي: j before a vowel, long i otherwise
        if (i + 1 < n && cps[i + 1] == 0x0627) {
          out.push_back(P::kJ);
        } else if (out.empty() || !IsVowelP(last())) {
          out.push_back(P::kI);
        } else {
          out.push_back(P::kJ);
        }
        ++i;
        break;
      // Short-vowel diacritics (present only in vocalized text).
      case 0x064E:  // fatha
        out.push_back(P::kA);
        ++i;
        break;
      case 0x064F:  // damma
        out.push_back(P::kUh);
        ++i;
        break;
      case 0x0650:  // kasra
        out.push_back(P::kIh);
        ++i;
        break;
      case 0x064B:  // fathatan -> an
        out.push_back(P::kA);
        out.push_back(P::kN);
        ++i;
        break;
      case 0x064C:  // dammatan -> un
        out.push_back(P::kUh);
        out.push_back(P::kN);
        ++i;
        break;
      case 0x064D:  // kasratan -> in
        out.push_back(P::kIh);
        out.push_back(P::kN);
        ++i;
        break;
      case 0x0651:  // shadda: geminate the previous consonant
        if (!out.empty() && !IsVowelP(out.back())) {
          out.push_back(out.back());
        }
        ++i;
        break;
      case 0x0652:  // sukun: explicit vowel absence
      case 0x0621:  // ء hamza (glottal stop: dropped)
      case 0x0624:  // ؤ
      case 0x0626:  // ئ
      case 0x0639:  // ع ain (pharyngeal: dropped, as in loan practice)
      case 0x0640:  // ـ tatweel
      case 0x200C:
      case 0x200D:
      case ' ':
      case '-':
      case '.':
      case 0x060C:  // Arabic comma
        ++i;
        break;
      default:
        if (cp >= 0x0660 && cp <= 0x0669) {  // digits
          ++i;
          break;
        }
        return Status::InvalidArgument("unexpected code point U+" +
                                       std::to_string(cp) +
                                       " in Arabic text");
    }
  }
  return phonetic::PhonemeString(std::move(out));
}

}  // namespace lexequal::g2p
