// Modern Greek grapheme-to-phoneme converter.

#ifndef LEXEQUAL_G2P_GREEK_G2P_H_
#define LEXEQUAL_G2P_GREEK_G2P_H_

#include <memory>

#include "g2p/g2p.h"

namespace lexequal::g2p {

/// Modern Greek orthography is nearly phonemic once its digraphs are
/// handled: ου→u, αι→e, ει/οι/υι→i, αυ/ευ→av/ev (af/ef before
/// voiceless), μπ→b, ντ→d, γκ/γγ→g/ŋg, τσ/τζ→affricates. Accented
/// vowels fold to their bases (tonos carries stress only, which the
/// paper strips).
class GreekG2P : public G2PConverter {
 public:
  static Result<std::unique_ptr<GreekG2P>> Create();

  text::Language language() const override {
    return text::Language::kGreek;
  }

  Result<phonetic::PhonemeString> ToPhonemes(
      std::string_view utf8) const override;
};

}  // namespace lexequal::g2p

#endif  // LEXEQUAL_G2P_GREEK_G2P_H_
