// Hindi (Devanagari script) grapheme-to-phoneme converter.

#ifndef LEXEQUAL_G2P_DEVANAGARI_G2P_H_
#define LEXEQUAL_G2P_DEVANAGARI_G2P_H_

#include <memory>

#include "g2p/g2p.h"

namespace lexequal::g2p {

/// Devanagari is an abugida: consonants carry an inherent schwa that
/// matras replace and the virama suppresses. Hindi additionally
/// deletes the inherent schwa word-finally and (heuristically) in
/// medial V.C(ə)C.V contexts — the converter implements both, plus
/// homorganic anusvara resolution, visarga, and the nukta consonants
/// used for Perso-Arabic loan sounds (fa, za, ...).
class DevanagariG2P : public G2PConverter {
 public:
  static Result<std::unique_ptr<DevanagariG2P>> Create();

  text::Language language() const override {
    return text::Language::kHindi;
  }

  Result<phonetic::PhonemeString> ToPhonemes(
      std::string_view utf8) const override;
};

}  // namespace lexequal::g2p

#endif  // LEXEQUAL_G2P_DEVANAGARI_G2P_H_
