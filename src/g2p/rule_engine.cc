#include "g2p/rule_engine.h"

#include "common/string_util.h"

namespace lexequal::g2p {

namespace {

bool IsVowelLetter(char c) { return IsAsciiVowel(c); }

bool IsConsonantLetter(char c) {
  return IsAsciiAlpha(c) && !IsAsciiVowel(c);
}

bool IsVoicedConsonant(char c) {
  switch (c) {
    case 'b': case 'd': case 'g': case 'j': case 'l': case 'm':
    case 'n': case 'r': case 'v': case 'w': case 'z':
      return true;
    default:
      return false;
  }
}

bool IsFrontVowel(char c) { return c == 'e' || c == 'i' || c == 'y'; }

// The word is matched inside sentinels: word[i] for i in [0, n), with
// positions outside treated as boundary.

// Matches `pattern` leftwards, ending just before `pos` (exclusive).
// Returns true if the pattern can consume characters so that its
// leftmost element is satisfied.
bool MatchLeft(std::string_view word, size_t pos, std::string_view pattern) {
  // Walk the pattern right-to-left.
  long p = static_cast<long>(pattern.size()) - 1;
  long w = static_cast<long>(pos) - 1;
  while (p >= 0) {
    char pc = pattern[static_cast<size_t>(p)];
    switch (pc) {
      case ' ':
        if (w >= 0) return false;
        --p;
        break;
      case '#': {  // one or more vowels
        if (w < 0 || !IsVowelLetter(word[static_cast<size_t>(w)])) {
          return false;
        }
        while (w >= 0 && IsVowelLetter(word[static_cast<size_t>(w)])) --w;
        --p;
        break;
      }
      case ':':  // zero or more consonants
        while (w >= 0 && IsConsonantLetter(word[static_cast<size_t>(w)])) {
          --w;
        }
        --p;
        break;
      case '^':
        if (w < 0 || !IsConsonantLetter(word[static_cast<size_t>(w)])) {
          return false;
        }
        --w;
        --p;
        break;
      case '.':
        if (w < 0 || !IsVoicedConsonant(word[static_cast<size_t>(w)])) {
          return false;
        }
        --w;
        --p;
        break;
      case '+':
        if (w < 0 || !IsFrontVowel(word[static_cast<size_t>(w)])) {
          return false;
        }
        --w;
        --p;
        break;
      case '&': {  // sibilant, possibly a digraph ending here
        if (w < 0) return false;
        char c = word[static_cast<size_t>(w)];
        if (w >= 1 && c == 'h') {
          char c2 = word[static_cast<size_t>(w - 1)];
          if (c2 == 'c' || c2 == 's') {
            w -= 2;
            --p;
            break;
          }
        }
        if (c == 's' || c == 'c' || c == 'g' || c == 'z' || c == 'x' ||
            c == 'j') {
          --w;
          --p;
          break;
        }
        return false;
      }
      case '@': {
        if (w < 0) return false;
        char c = word[static_cast<size_t>(w)];
        if (w >= 1 && c == 'h') {
          char c2 = word[static_cast<size_t>(w - 1)];
          if (c2 == 't' || c2 == 'c' || c2 == 's') {
            w -= 2;
            --p;
            break;
          }
        }
        if (c == 't' || c == 's' || c == 'r' || c == 'd' || c == 'l' ||
            c == 'n' || c == 'j') {
          --w;
          --p;
          break;
        }
        return false;
      }
      default:
        if (w < 0 || word[static_cast<size_t>(w)] != pc) return false;
        --w;
        --p;
        break;
    }
  }
  return true;
}

// Matches `pattern` rightwards starting at `pos` (inclusive).
bool MatchRight(std::string_view word, size_t pos,
                std::string_view pattern) {
  size_t p = 0;
  size_t w = pos;
  const size_t n = word.size();
  while (p < pattern.size()) {
    char pc = pattern[p];
    switch (pc) {
      case ' ':
        if (w < n) return false;
        ++p;
        break;
      case '#': {
        if (w >= n || !IsVowelLetter(word[w])) return false;
        while (w < n && IsVowelLetter(word[w])) ++w;
        ++p;
        break;
      }
      case ':':
        while (w < n && IsConsonantLetter(word[w])) ++w;
        ++p;
        break;
      case '^':
        if (w >= n || !IsConsonantLetter(word[w])) return false;
        ++w;
        ++p;
        break;
      case '.':
        if (w >= n || !IsVoicedConsonant(word[w])) return false;
        ++w;
        ++p;
        break;
      case '+':
        if (w >= n || !IsFrontVowel(word[w])) return false;
        ++w;
        ++p;
        break;
      case '%': {  // suffix: e, er, es, ed, ing, ely (then boundary)
        std::string_view rest = word.substr(w);
        auto suffix_ok = [&](std::string_view sfx) {
          return rest == sfx;
        };
        if (suffix_ok("e") || suffix_ok("er") || suffix_ok("es") ||
            suffix_ok("ed") || suffix_ok("ing") || suffix_ok("ely")) {
          w = n;
          ++p;
          break;
        }
        return false;
      }
      case '&': {
        if (w >= n) return false;
        char c = word[w];
        if ((c == 'c' || c == 's') && w + 1 < n && word[w + 1] == 'h') {
          w += 2;
          ++p;
          break;
        }
        if (c == 's' || c == 'c' || c == 'g' || c == 'z' || c == 'x' ||
            c == 'j') {
          ++w;
          ++p;
          break;
        }
        return false;
      }
      case '@': {
        if (w >= n) return false;
        char c = word[w];
        if ((c == 't' || c == 'c' || c == 's') && w + 1 < n &&
            word[w + 1] == 'h') {
          w += 2;
          ++p;
          break;
        }
        if (c == 't' || c == 's' || c == 'r' || c == 'd' || c == 'l' ||
            c == 'n' || c == 'j') {
          ++w;
          ++p;
          break;
        }
        return false;
      }
      default:
        if (w >= n || word[w] != pc) return false;
        ++w;
        ++p;
        break;
    }
  }
  return true;
}

}  // namespace

Result<RuleEngine> RuleEngine::Create(
    const std::vector<RewriteRule>& rules) {
  RuleEngine engine;
  engine.rules_.reserve(rules.size());
  for (const RewriteRule& r : rules) {
    if (r.target == nullptr || r.target[0] == '\0') {
      return Status::InvalidArgument("rewrite rule with empty target");
    }
    Result<phonetic::PhonemeString> ps =
        phonetic::PhonemeString::FromIpa(r.ipa);
    if (!ps.ok()) {
      return Status::InvalidArgument(
          std::string("bad IPA '") + r.ipa + "' in rule for target '" +
          r.target + "': " + ps.status().message());
    }
    CompiledRule cr;
    cr.left = r.left;
    cr.target = r.target;
    cr.right = r.right;
    cr.phonemes = std::move(ps).value();
    char first = cr.target[0];
    if (first < 'a' || first > 'z') {
      return Status::InvalidArgument(
          "rule target must start with a lowercase letter: '" + cr.target +
          "'");
    }
    engine.by_letter_[first - 'a'].push_back(
        static_cast<uint32_t>(engine.rules_.size()));
    engine.rules_.push_back(std::move(cr));
  }
  return engine;
}

Result<phonetic::PhonemeString> RuleEngine::Apply(
    std::string_view input) const {
  // Keep letters only so that hyphens/apostrophes ("Mary-Ann",
  // "O'Brien") neither emit phonemes nor break context matching.
  std::string word;
  word.reserve(input.size());
  for (char c : AsciiToLower(input)) {
    if (c >= 'a' && c <= 'z') word.push_back(c);
  }
  phonetic::PhonemeString out;
  size_t pos = 0;
  while (pos < word.size()) {
    char c = word[pos];
    const std::vector<uint32_t>& bucket = by_letter_[c - 'a'];
    bool matched = false;
    for (uint32_t idx : bucket) {
      const CompiledRule& r = rules_[idx];
      if (word.compare(pos, r.target.size(), r.target) != 0) continue;
      if (!MatchLeft(word, pos, r.left)) continue;
      if (!MatchRight(word, pos + r.target.size(), r.right)) continue;
      out.Append(r.phonemes);
      pos += r.target.size();
      matched = true;
      break;
    }
    if (!matched) {
      return Status::InvalidArgument(
          std::string("no rule matches letter '") + c + "' at position " +
          std::to_string(pos) + " of '" + word + "'");
    }
  }
  return out;
}

}  // namespace lexequal::g2p
