// Russian (Cyrillic script) grapheme-to-phoneme converter.

#ifndef LEXEQUAL_G2P_CYRILLIC_G2P_H_
#define LEXEQUAL_G2P_CYRILLIC_G2P_H_

#include <memory>

#include "g2p/g2p.h"

namespace lexequal::g2p {

/// Russian orthography is close to phonemic for names: one letter,
/// one sound, with the palatalizing vowels (я ю ё е) contributing a
/// /j/ glide word-initially and after vowels/signs, and the signs
/// (ь ъ) silent. Vowel reduction (akanye) is folded like the other
/// converters fold allophony: orthographic values are used, which
/// keeps the converter deterministic and round-trippable.
class CyrillicG2P : public G2PConverter {
 public:
  static Result<std::unique_ptr<CyrillicG2P>> Create();

  text::Language language() const override {
    return text::Language::kRussian;
  }

  Result<phonetic::PhonemeString> ToPhonemes(
      std::string_view utf8) const override;
};

}  // namespace lexequal::g2p

#endif  // LEXEQUAL_G2P_CYRILLIC_G2P_H_
