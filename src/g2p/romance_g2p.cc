#include "g2p/romance_g2p.h"

#include <vector>

#include "g2p/latin_util.h"
#include "text/utf8.h"

namespace lexequal::g2p {

namespace {

// Pre-folding rewrite of accented letters whose accent changes the
// phoneme. Maps each to an unambiguous ASCII marker spelling that the
// rule tables below recognize ("q" + letter sequences never occur
// natively, so qe/qo style markers stay collision-free).
std::string PreFoldFrench(std::string_view utf8) {
  std::string out;
  size_t pos = 0;
  while (pos < utf8.size()) {
    uint32_t cp = text::DecodeUtf8(utf8, &pos);
    switch (cp) {
      case 0xE9: case 0xC9:  // é -> "qe" marker (close e)
        out += "qe";
        break;
      case 0xE8: case 0xC8: case 0xEA: case 0xCA:  // è ê -> open e
        out += "qx";
        break;
      case 0xE7: case 0xC7:  // ç -> s
        out += 's';
        break;
      default:
        text::AppendUtf8(cp, &out);
    }
  }
  return FoldLatinAccents(out);
}

// French rules. Final consonants of names are NOT silenced (names
// like "Descartes" conventionally keep their final s silent, but
// final-consonant silencing is lexical; we silence only final -s/-t/
// -d/-x after a vowel-bearing syllable, the productive pattern).
const std::vector<RewriteRule>& FrenchRules() {
  static const std::vector<RewriteRule>& rules = *new std::vector<
      RewriteRule>{
      // Marker spellings from PreFoldFrench.
      {"", "qe", "", "e"},   // é
      {"", "qx", "", "ɛ"},   // è / ê
      {"", "qu", "", "k"},
      {"", "q", "", "k"},
      // Vowels and digraphs.
      {"", "eau", "", "o"},
      {"", "eaux", " ", "o"},
      {"", "au", "", "o"},
      {"", "oi", "", "wa"},
      {"", "ou", "", "u"},
      {"", "ai", "", "ɛ"},
      {"", "ei", "", "ɛ"},
      {"", "eu", "", "ø"},
      // A vowel before n+accent-marker is NOT nasal (René): consume
      // just the vowel so the n reaches its plain rule.
      {"", "e", "nq", "ə"},
      {"", "a", "nq", "a"},
      {"", "o", "nq", "ɔ"},
      {"", "i", "nq", "i"},
      {"", "an", "^", "ɑn"},
      {"", "an", " ", "ɑn"},
      {"", "en", "^", "ɑn"},
      {"", "en", " ", "ɑn"},
      {"", "on", "^", "ɔn"},
      {"", "on", " ", "ɔn"},
      {"", "in", "^", "ɛn"},
      {"", "in", " ", "ɛn"},
      {"j", "e", "a", ""},    // silent e: Jean
      {"g", "e", "a", ""},    // silent e: Georges
      {"g", "e", "o", ""},
      {"#:", "e", " ", ""},   // final mute e
      {"#:", "es", " ", ""},  // final mute es
      {"", "e", "r ", "e"},   // -er
      {"", "e", "z ", "e"},   // -ez
      {"", "e", "", "ə"},
      {"", "a", "", "a"},
      {"", "i", "", "i"},
      {"", "o", "", "ɔ"},
      {"", "u", "", "y"},
      {"", "y", "", "i"},
      // Consonants.
      {"", "ch", "", "ʃ"},
      {"", "gn", "", "ɲ"},
      {"", "ph", "", "f"},
      {"", "th", "", "t"},
      {"", "g", "+", "ʒ"},
      {"", "gg", "", "ɡ"},
      {"", "g", "", "ɡ"},
      {"", "c", "+", "s"},
      {"", "cc", "", "k"},
      {"", "c", "", "k"},
      {"", "j", "", "ʒ"},
      {"#", "s", "#", "z"},
      {"", "ss", "", "s"},
      {"#", "s", " ", ""},  // final s silent
      {"", "s", "", "s"},
      {"#", "t", " ", ""},  // final t silent
      {"", "tt", "", "t"},
      {"", "t", "", "t"},
      {"#", "d", " ", ""},  // final d silent
      {"", "dd", "", "d"},
      {"", "d", "", "d"},
      {"#", "x", " ", ""},  // final x silent
      {"", "x", "", "ks"},
      {"", "ll", "", "l"},
      {"", "l", "", "l"},
      {"", "rr", "", "r"},
      {"", "r", "", "r"},
      {"", "mm", "", "m"},
      {"", "m", "", "m"},
      {"", "nn", "", "n"},
      {"", "n", "", "n"},
      {"", "pp", "", "p"},
      {"", "p", "", "p"},
      {"", "bb", "", "b"},
      {"", "b", "", "b"},
      {"", "f", "", "f"},
      {"", "v", "", "v"},
      {"", "w", "", "v"},
      {"", "h", "", ""},  // h is always silent
      {"", "k", "", "k"},
      {"", "z", "", "z"},
  };
  return rules;
}

// Spanish rules (seseo: c/z before front vowels -> s).
const std::vector<RewriteRule>& SpanishRules() {
  static const std::vector<RewriteRule>& rules = *new std::vector<
      RewriteRule>{
      // Marker spellings from PreFoldSpanish.
      {"", "qn", "", "ɲ"},  // ñ
      {"", "qu", "", "k"},
      {"", "q", "", "k"},
      // Vowels.
      {"", "a", "", "a"},
      {"", "e", "", "e"},
      {"", "i", "", "i"},
      {"", "o", "", "o"},
      {"", "u", "", "u"},
      {"", "y", " ", "i"},
      {"", "y", "", "j"},
      // Consonants.
      {"", "ch", "", "tʃ"},
      {"", "ll", "", "j"},
      {"", "rr", "", "r"},
      {"", "g", "+", "x"},
      {"", "gu", "+", "ɡ"},
      {"", "g", "", "ɡ"},
      {"", "c", "+", "s"},
      {"", "cc", "", "k"},
      {"", "c", "", "k"},
      {"", "j", "", "x"},
      {"", "h", "", ""},
      {"", "v", "", "b"},
      {"", "b", "", "b"},
      {"", "z", "", "s"},
      {"", "ss", "", "s"},
      {"", "s", "", "s"},
      {"", "x", "", "ks"},
      {"", "w", "", "w"},
      {"", "k", "", "k"},
      {"", "l", "", "l"},
      {"", "r", "", "ɾ"},
      {"", "m", "", "m"},
      {"", "nn", "", "n"},
      {"", "n", "", "n"},
      {"", "p", "", "p"},
      {"", "t", "", "t"},
      {"", "d", "", "d"},
      {"", "f", "", "f"},
  };
  return rules;
}

std::string PreFoldSpanish(std::string_view utf8) {
  std::string out;
  size_t pos = 0;
  while (pos < utf8.size()) {
    uint32_t cp = text::DecodeUtf8(utf8, &pos);
    switch (cp) {
      case 0xF1: case 0xD1:  // ñ
      case 0x151: case 0x150:  // ő (the paper's "Espanől" spelling)
        out += "qn";
        break;
      default:
        text::AppendUtf8(cp, &out);
    }
  }
  return FoldLatinAccents(out);
}

}  // namespace

Result<std::unique_ptr<FrenchG2P>> FrenchG2P::Create() {
  Result<RuleEngine> engine = RuleEngine::Create(FrenchRules());
  if (!engine.ok()) return engine.status();
  return std::unique_ptr<FrenchG2P>(
      new FrenchG2P(std::move(engine).value()));
}

Result<phonetic::PhonemeString> FrenchG2P::ToPhonemes(
    std::string_view utf8) const {
  return engine_.Apply(PreFoldFrench(utf8));
}

Result<std::unique_ptr<SpanishG2P>> SpanishG2P::Create() {
  Result<RuleEngine> engine = RuleEngine::Create(SpanishRules());
  if (!engine.ok()) return engine.status();
  return std::unique_ptr<SpanishG2P>(
      new SpanishG2P(std::move(engine).value()));
}

Result<phonetic::PhonemeString> SpanishG2P::ToPhonemes(
    std::string_view utf8) const {
  return engine_.Apply(PreFoldSpanish(utf8));
}

}  // namespace lexequal::g2p
