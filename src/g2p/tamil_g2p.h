// Tamil grapheme-to-phoneme converter.

#ifndef LEXEQUAL_G2P_TAMIL_G2P_H_
#define LEXEQUAL_G2P_TAMIL_G2P_H_

#include <memory>

#include "g2p/g2p.h"

namespace lexequal::g2p {

/// Tamil is an abugida whose stop letters are voicing-ambiguous: the
/// script writes one letter per place of articulation and voicing is
/// positional — voiceless word-initially and when geminate, voiced
/// after a nasal and between vowels. The converter implements these
/// sandhi rules, the Grantha letters used for Sanskrit/English loans
/// (ஜ ஷ ஸ ஹ), and the Tamil-specific liquids (ழ ள ற).
class TamilG2P : public G2PConverter {
 public:
  static Result<std::unique_ptr<TamilG2P>> Create();

  text::Language language() const override {
    return text::Language::kTamil;
  }

  Result<phonetic::PhonemeString> ToPhonemes(
      std::string_view utf8) const override;
};

}  // namespace lexequal::g2p

#endif  // LEXEQUAL_G2P_TAMIL_G2P_H_
