// Latin-script helpers: accent folding for rule-engine input.

#ifndef LEXEQUAL_G2P_LATIN_UTIL_H_
#define LEXEQUAL_G2P_LATIN_UTIL_H_

#include <string>
#include <string_view>

namespace lexequal::g2p {

/// Folds accented Latin letters (U+00C0..U+024F) to their ASCII base
/// letters (é→e, ñ→n, ç→c, ...) and drops combining marks; ASCII
/// passes through. Used to normalize input before ASCII-only rewrite
/// rules run; language-specific converters handle the accents that
/// matter (e.g. French é) before folding.
std::string FoldLatinAccents(std::string_view utf8);

}  // namespace lexequal::g2p

#endif  // LEXEQUAL_G2P_LATIN_UTIL_H_
