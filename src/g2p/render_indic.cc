#include "g2p/render_indic.h"

#include <vector>

#include "text/utf8.h"

namespace lexequal::g2p {

namespace {

using phonetic::Phoneme;
using P = Phoneme;

// ---------------------------------------------------------------------
// Devanagari
// ---------------------------------------------------------------------

// Consonant letter for a consonant phoneme (loan conventions: English
// alveolar stops are written retroflex, f/z/x with nukta letters).
uint32_t DevaConsonant(Phoneme p) {
  switch (p) {
    case P::kP:   return 0x092A;  // प
    case P::kB:   return 0x092C;  // ब
    case P::kPh:  return 0x092B;  // फ
    case P::kBh:  return 0x092D;  // भ
    case P::kT:   return 0x091F;  // ट (loan convention)
    case P::kD:   return 0x0921;  // ड
    case P::kTh:  return 0x0925;  // थ
    case P::kDh:  return 0x0927;  // ध
    case P::kTt:  return 0x091F;  // ट
    case P::kDd:  return 0x0921;  // ड
    case P::kTth: return 0x0920;  // ठ
    case P::kDdh: return 0x0922;  // ढ
    case P::kK:   return 0x0915;  // क
    case P::kG:   return 0x0917;  // ग
    case P::kKh:  return 0x0916;  // ख
    case P::kGh:  return 0x0918;  // घ
    case P::kCh:  return 0x091A;  // च
    case P::kJh:  return 0x091C;  // ज
    case P::kChh: return 0x091B;  // छ
    case P::kJhh: return 0x091D;  // झ
    case P::kF:   return 0x095E;  // फ़
    case P::kV:   return 0x0935;  // व
    case P::kThF: return 0x0925;  // थ (θ has no letter)
    case P::kDhF: return 0x0926;  // द (ð has no letter)
    case P::kS:   return 0x0938;  // स
    case P::kZ:   return 0x095B;  // ज़
    case P::kSh:  return 0x0936;  // श
    case P::kZh:  return 0x091D;  // झ (ʒ has no letter)
    case P::kSs:  return 0x0937;  // ष
    case P::kX:   return 0x0959;  // ख़
    case P::kGhF: return 0x095A;  // ग़
    case P::kH:   return 0x0939;  // ह
    case P::kM:   return 0x092E;  // म
    case P::kN:   return 0x0928;  // न
    case P::kNn:  return 0x0923;  // ण
    case P::kNy:  return 0x091E;  // ञ
    case P::kNg:  return 0x0919;  // ङ
    case P::kL:   return 0x0932;  // ल
    case P::kLl:  return 0x0933;  // ळ
    case P::kR:   return 0x0930;  // र
    case P::kRr:  return 0x0930;  // र
    case P::kRd:  return 0x095C;  // ड़
    case P::kRz:  return 0x095C;  // ड़ (ɻ approximated)
    case P::kJ:   return 0x092F;  // य
    case P::kW:   return 0x0935;  // व
    default:
      return 0;
  }
}

// (matra, independent) letters for a vowel phoneme; matra 0 means
// "inherent vowel" (no sign).
struct DevaVowel {
  uint32_t matra;
  uint32_t independent;
};

bool DevaVowelOf(Phoneme p, DevaVowel* out) {
  switch (p) {
    case P::kSchwa:
    case P::kVv:
    case P::kEr:
      *out = {0, 0x0905};  // अ
      return true;
    case P::kA:
    case P::kAa:
    case P::kAe:
      *out = {0x093E, 0x0906};  // ा / आ
      return true;
    case P::kIh:
      *out = {0x093F, 0x0907};  // ि / इ
      return true;
    case P::kI:
      *out = {0x0940, 0x0908};  // ी / ई
      return true;
    case P::kUh:
      *out = {0x0941, 0x0909};  // ु / उ
      return true;
    case P::kU:
    case P::kY:
      *out = {0x0942, 0x090A};  // ू / ऊ
      return true;
    case P::kE:
      *out = {0x0947, 0x090F};  // े / ए
      return true;
    case P::kEh:
      *out = {0x0948, 0x0910};  // ै / ऐ
      return true;
    case P::kO:
    case P::kOe:
      *out = {0x094B, 0x0913};  // ो / ओ
      return true;
    case P::kOh:
      *out = {0x094C, 0x0914};  // ौ / औ
      return true;
    default:
      return false;
  }
}

// ---------------------------------------------------------------------
// Tamil
// ---------------------------------------------------------------------

uint32_t TamilConsonant(Phoneme p, bool word_initial) {
  switch (p) {
    case P::kP: case P::kB: case P::kPh: case P::kBh:
    case P::kF:  // Tamil has no f; names use ப
      return 0x0BAA;  // ப
    case P::kT: case P::kD:
    case P::kTt: case P::kDd: case P::kTth: case P::kDdh:
      return 0x0B9F;  // ட (loan convention for English t/d)
    case P::kTh: case P::kDh: case P::kThF: case P::kDhF:
      return 0x0BA4;  // த
    case P::kK: case P::kG: case P::kKh: case P::kGh:
    case P::kX: case P::kGhF:
      return 0x0B95;  // க
    case P::kCh: case P::kChh:
      return 0x0B9A;  // ச
    case P::kJh: case P::kJhh:
      return 0x0B9C;  // ஜ (Grantha)
    case P::kS: case P::kZ:
      return 0x0BB8;  // ஸ (Grantha)
    case P::kSh: case P::kZh: case P::kSs:
      return 0x0BB7;  // ஷ (Grantha)
    case P::kH:
      return 0x0BB9;  // ஹ (Grantha)
    case P::kV: case P::kW:
      return 0x0BB5;  // வ
    case P::kM:
      return 0x0BAE;  // ம
    case P::kN:
      return word_initial ? 0x0BA8 : 0x0BA9;  // ந / ன
    case P::kNn:
      return 0x0BA3;  // ண
    case P::kNy:
      return 0x0B9E;  // ஞ
    case P::kNg:
      return 0x0B99;  // ங
    case P::kL:
      return 0x0BB2;  // ல
    case P::kLl:
      return 0x0BB3;  // ள
    case P::kR: case P::kRr: case P::kRd:
      return 0x0BB0;  // ர
    case P::kRz:
      return 0x0BB4;  // ழ
    case P::kJ:
      return 0x0BAF;  // ய
    default:
      return 0;
  }
}

struct TamilVowel {
  uint32_t matra;
  uint32_t independent;
};

bool TamilVowelOf(Phoneme p, TamilVowel* out) {
  switch (p) {
    case P::kSchwa:
    case P::kVv:
    case P::kEr:
      *out = {0, 0x0B85};  // அ (inherent)
      return true;
    case P::kA:
    case P::kAa:
    case P::kAe:
      *out = {0x0BBE, 0x0B86};  // ா / ஆ
      return true;
    case P::kIh:
      *out = {0x0BBF, 0x0B87};  // ி / இ
      return true;
    case P::kI:
      *out = {0x0BC0, 0x0B88};  // ீ / ஈ
      return true;
    case P::kUh:
    case P::kY:
      *out = {0x0BC1, 0x0B89};  // ு / உ
      return true;
    case P::kU:
      *out = {0x0BC2, 0x0B8A};  // ூ / ஊ
      return true;
    case P::kEh:
      *out = {0x0BC6, 0x0B8E};  // ெ / எ
      return true;
    case P::kE:
      *out = {0x0BC7, 0x0B8F};  // ே / ஏ
      return true;
    case P::kOh:
      *out = {0x0BCA, 0x0B92};  // ொ / ஒ
      return true;
    case P::kO:
    case P::kOe:
      *out = {0x0BCB, 0x0B93};  // ோ / ஓ
      return true;
    default:
      return false;
  }
}

// Generic abugida renderer parameterized over the two letter tables.
// `final_schwa_as_a`: Hindi orthography writes a name-final schwa as
// long ā (Kamala -> कमला), which survives the reader's schwa deletion.
template <typename ConsonantFn, typename VowelFn>
Result<std::string> RenderAbugida(const phonetic::PhonemeString& ps,
                                  ConsonantFn consonant_of,
                                  VowelFn vowel_of, uint32_t virama,
                                  bool final_schwa_as_a) {
  std::string out;
  const auto& ph = ps.phonemes();
  size_t i = 0;
  const size_t n = ph.size();
  auto effective_vowel = [&](Phoneme v, size_t pos) {
    if (final_schwa_as_a && pos + 1 == n &&
        (v == P::kSchwa || v == P::kVv || v == P::kEr)) {
      return P::kA;
    }
    return v;
  };
  while (i < n) {
    Phoneme p = ph[i];
    if (!phonetic::IsVowel(p)) {
      uint32_t letter = consonant_of(p, i == 0);
      if (letter == 0) {
        return Status::InvalidArgument(
            std::string("phoneme '") + std::string(PhonemeIpa(p)) +
            "' has no letter in this script");
      }
      text::AppendUtf8(letter, &out);
      // Attach the following vowel as a matra, if any.
      if (i + 1 < n && phonetic::IsVowel(ph[i + 1])) {
        auto* v = vowel_of(effective_vowel(ph[i + 1], i + 1));
        if (v == nullptr) {
          return Status::InvalidArgument(
              std::string("vowel '") +
              std::string(PhonemeIpa(ph[i + 1])) +
              "' has no sign in this script");
        }
        if (v->matra != 0) text::AppendUtf8(v->matra, &out);
        i += 2;
        continue;
      }
      // Bare consonant (cluster or word-final): suppress the vowel.
      text::AppendUtf8(virama, &out);
      ++i;
      continue;
    }
    // Vowel at word start or after another vowel: independent letter.
    auto* v = vowel_of(effective_vowel(p, i));
    if (v == nullptr) {
      return Status::InvalidArgument(std::string("vowel '") +
                                     std::string(PhonemeIpa(p)) +
                                     "' has no letter in this script");
    }
    text::AppendUtf8(v->independent, &out);
    ++i;
  }
  return out;
}

}  // namespace

Result<std::string> RenderDevanagari(const phonetic::PhonemeString& ps) {
  static thread_local DevaVowel vowel_buf;
  return RenderAbugida(
      ps,
      [](Phoneme p, bool) { return DevaConsonant(p); },
      [](Phoneme p) -> DevaVowel* {
        return DevaVowelOf(p, &vowel_buf) ? &vowel_buf : nullptr;
      },
      0x094D, /*final_schwa_as_a=*/true);
}

Result<std::string> RenderTamil(const phonetic::PhonemeString& ps) {
  static thread_local TamilVowel vowel_buf;
  return RenderAbugida(
      ps,
      [](Phoneme p, bool initial) { return TamilConsonant(p, initial); },
      [](Phoneme p) -> TamilVowel* {
        return TamilVowelOf(p, &vowel_buf) ? &vowel_buf : nullptr;
      },
      0x0BCD, /*final_schwa_as_a=*/false);
}

}  // namespace lexequal::g2p
