// Phoneme-to-Latin romanizer and phoneme-to-Greek renderer.
//
// The romanizer displays any match result in the user's own script —
// the natural companion feature to multiscript matching ("retrieve
// all the works of Nehru irrespective of the language of
// publication" needs to *show* them readably too). The Greek renderer
// extends the dataset builder to a fourth script, covering the
// paper's Fig. 2 language set (English, Hindi, Tamil, Greek).

#ifndef LEXEQUAL_G2P_RENDER_LATIN_H_
#define LEXEQUAL_G2P_RENDER_LATIN_H_

#include <string>

#include "common/result.h"
#include "phonetic/phoneme_string.h"

namespace lexequal::g2p {

/// Renders a phoneme string as a readable Latin romanization
/// ("nɛhru" -> "nehru", "dʒævɑhərlɑl" -> "javaharlal"). Total over
/// the inventory; loses the distinctions Latin spelling loses.
std::string RenderLatin(const phonetic::PhonemeString& ps);

/// Renders a phoneme string in Greek orthography (modern monotonic),
/// using the digraphs the Greek G2P reads back: b -> μπ, d -> ντ,
/// g -> γκ, u -> ου, e -> ε/αι. Fails only for phonemes with no
/// Greek approximation at all (none in the current inventory).
Result<std::string> RenderGreek(const phonetic::PhonemeString& ps);

}  // namespace lexequal::g2p

#endif  // LEXEQUAL_G2P_RENDER_LATIN_H_
