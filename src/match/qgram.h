// Positional q-grams over phoneme strings, and the three q-gram
// filters of the paper's Section 5.2 (after Gravano et al., VLDB'01):
//
//   Length filter — strings within edit distance k differ in length
//   by at most k.
//   Count filter — they share at least
//   max(|a|,|b|) - 1 - (k-1)*q positional q-grams.
//   Position filter — corresponding q-grams are at most k positions
//   apart.
//
// Strings are padded with q-1 start (◁) and end (▷) sentinels, which
// are not phonemes, so q-grams are represented as packed integer
// codes rather than PhonemeStrings.
//
// The filters are stated for *unit-cost* (Levenshtein) edit distance
// with budget k. Two call sites consume them with different k:
//
//   * The q-gram access path (Engine::QGramCandidates) uses
//     k = threshold * min(|a|,|b|) in unit edits — the paper's
//     Fig. 14 semantics — which is exact for Levenshtein costs and
//     may lose a few clustered-cost matches (see DESIGN.md).
//   * The ParallelMatcher derives a conservative unit budget
//     k = allowance / cheapest_edit from the weighted cost model, so
//     its filtering is lossless for any ClusteredCost configuration.
//
// Everything here is a pure function over its arguments (the probe
// builder additionally bumps one monotonic metric), safe to call
// concurrently from the parallel scan's workers.

#ifndef LEXEQUAL_MATCH_QGRAM_H_
#define LEXEQUAL_MATCH_QGRAM_H_

#include <cstdint>
#include <vector>

#include "phonetic/phoneme_string.h"

namespace lexequal::match {

/// One positional q-gram: the 1-based position in the padded string
/// and the packed gram code (8 bits per symbol, first symbol in the
/// highest-order byte, so codes sort lexicographically).
struct PositionalQGram {
  uint32_t pos;
  uint64_t gram;

  friend bool operator==(const PositionalQGram& a,
                         const PositionalQGram& b) {
    return a.pos == b.pos && a.gram == b.gram;
  }
};

/// Maximum supported q (packing limit: 8 symbols × 8 bits).
inline constexpr int kMaxQ = 8;

/// Sentinel symbol codes used for padding (outside the phoneme range).
inline constexpr uint8_t kQGramStartSymbol = 0xFF;  // ◁
inline constexpr uint8_t kQGramEndSymbol = 0xFE;    // ▷

/// Positional q-grams of `s` padded with q-1 start/end sentinels.
/// A string of n phonemes yields n + q - 1 grams, in position order
/// (call SortQGrams before CountCloseMatches). q must be in
/// [1, kMaxQ]; the result borrows nothing from `s`.
std::vector<PositionalQGram> PositionalQGrams(
    const phonetic::PhonemeString& s, int q);

/// Length filter: can strings of these phoneme lengths be within edit
/// distance k?
inline bool PassesLengthFilter(size_t la, size_t lb, double k) {
  const size_t gap = la > lb ? la - lb : lb - la;
  return static_cast<double>(gap) <= k;
}

/// Minimum number of matching positional q-grams required by the
/// count filter; values <= 0 mean the filter cannot reject.
inline double CountFilterMinMatches(size_t la, size_t lb, double k,
                                    int q) {
  const double longer = static_cast<double>(la > lb ? la : lb);
  return longer - 1.0 - (k - 1.0) * static_cast<double>(q);
}

/// Number of pairs (ga, gb) with equal grams and |pos(ga) - pos(gb)|
/// <= k — the q-gram join with the position filter applied. Both
/// inputs must be sorted by (gram, pos), as PositionalQGrams returns
/// after SortQGrams. Runs in O(|a| + |b| + matches) via a sorted
/// merge.
int CountCloseMatches(const std::vector<PositionalQGram>& a,
                      const std::vector<PositionalQGram>& b, double k);

/// Sorts grams into the (gram, pos) order CountCloseMatches expects.
void SortQGrams(std::vector<PositionalQGram>* grams);

/// Applies all three filters to a candidate pair. True means the pair
/// *may* be within edit distance k and must be verified with the
/// exact matcher; false proves it cannot match (no false dismissals
/// with respect to unit-cost edit distance). Convenience form for
/// one-off pairs — batch callers precompute and sort the query's
/// grams once instead (see ParallelMatcher's probe context).
bool PassesQGramFilters(const phonetic::PhonemeString& a,
                        const phonetic::PhonemeString& b, double k, int q);

/// A probe's q-gram multiset, computed once per query and shared by
/// every downstream consumer (the q-gram B-Tree candidate path, the
/// inverted-index merge, and the top-K scorer). Hoisting the build to
/// the query boundary is load-bearing: the access paths chunk their
/// work (per gram list, per posting block), and recomputing the probe
/// grams per chunk silently multiplies the G2P-adjacent work by the
/// chunk count. The build is counted in the
/// lexequal_qgram_probe_builds metric so a regression test can pin
/// "exactly one build per query" (tests/inverted_index_test.cc).
struct QGramProbe {
  int q = 2;
  size_t length = 0;                   // probe phoneme count (unpadded)
  /// In position order, exactly as PositionalQGrams returns them.
  std::vector<PositionalQGram> grams;
};

/// Builds the probe context for `s` (padded positional grams plus the
/// unpadded length) and bumps lexequal_qgram_probe_builds.
QGramProbe BuildQGramProbe(const phonetic::PhonemeString& s, int q);

}  // namespace lexequal::match

#endif  // LEXEQUAL_MATCH_QGRAM_H_
