#include "match/phoneme_cache.h"

#include <cstdlib>
#include <utility>

#include "obs/metrics.h"

namespace lexequal::match {

namespace {

// Registry mirrors, shared by every PhonemeCache instance. The
// per-shard counters under the stripe mutex remain the per-instance
// ground truth; these aggregate process-wide for \metrics and traces.
struct CacheMetrics {
  obs::Counter* hits;
  obs::Counter* misses;
  obs::Counter* evictions;
  obs::Gauge* entries;
  obs::Counter* g2p_transforms;
  obs::Counter* ipa_parses;

  static const CacheMetrics& Get() {
    static const CacheMetrics m = [] {
      auto& reg = obs::MetricsRegistry::Default();
      CacheMetrics out;
      out.hits = reg.GetCounter("lexequal_phoneme_cache_hits",
                                "Phoneme cache lookups served");
      out.misses = reg.GetCounter("lexequal_phoneme_cache_misses",
                                  "Phoneme cache lookups that computed");
      out.evictions =
          reg.GetCounter("lexequal_phoneme_cache_evictions",
                         "Entries dropped by per-shard LRU pressure");
      out.entries = reg.GetGauge("lexequal_phoneme_cache_entries",
                                 "Entries currently resident");
      out.g2p_transforms =
          reg.GetCounter("lexequal_g2p_transforms",
                         "Rule-engine grapheme-to-phoneme runs");
      out.ipa_parses = reg.GetCounter("lexequal_g2p_ipa_parses",
                                      "Stored IPA cell decodes");
      return out;
    }();
    return m;
  }
};

// Key namespaces. G2P tags carry the language in the low byte so the
// same spelling through two converters gets two entries; the IPA
// namespace has a single tag.
constexpr uint16_t kIpaTag = 'i' << 8;

uint16_t MakeG2PTag(text::Language lang) {
  return static_cast<uint16_t>(('g' << 8) |
                               static_cast<uint8_t>(lang));
}

}  // namespace

PhonemeCache::PhonemeCache(const g2p::G2PRegistry& registry,
                           size_t capacity)
    : registry_(registry),
      capacity_(capacity < kShards ? kShards : capacity),
      per_shard_capacity_(capacity_ / kShards) {}

PhonemeCache::Shard& PhonemeCache::ShardFor(const KeyRef& key) {
  return shards_[KeyRefHash{}(key) % kShards];
}

template <typename Fn>
Result<std::shared_ptr<const phonetic::PhonemeString>>
PhonemeCache::GetOrCompute(uint16_t tag, std::string_view text,
                           Fn&& compute) {
  const KeyRef probe{tag, text};
  Shard& shard = ShardFor(probe);
  {
    common::MutexLock lock(&shard.mu);
    auto it = shard.map.find(probe);
    if (it != shard.map.end()) {
      ++shard.hits;
      CacheMetrics::Get().hits->Inc();
      // Move to MRU position; iterators (and the KeyRef map keys
      // viewing Entry::key) stay valid across splice.
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      const Entry& e = *it->second;
      if (!e.status.ok()) return e.status;
      return e.phonemes;
    }
    ++shard.misses;
    CacheMetrics::Get().misses->Inc();
  }

  // Compute outside the lock: rule-engine runs and IPA parses are the
  // expensive part, and holding the stripe would serialize workers.
  Result<phonetic::PhonemeString> computed = compute();
  const bool cacheable =
      computed.ok() || computed.status().IsNoResource() ||
      computed.status().IsInvalidArgument();
  if (!cacheable) return computed.status();  // transient, not memoized

  Entry entry;
  entry.tag = tag;
  entry.key = std::string(text);
  std::shared_ptr<const phonetic::PhonemeString> value;
  if (computed.ok()) {
    entry.status = Status::OK();
    value = std::make_shared<const phonetic::PhonemeString>(
        std::move(computed).value());
    entry.phonemes = value;
  } else {
    entry.status = computed.status();
  }
  const Status status = entry.status;

  common::MutexLock lock(&shard.mu);
  // Another thread may have raced us to the same key; keep theirs.
  if (shard.map.find(KeyRef{tag, entry.key}) == shard.map.end()) {
    shard.lru.push_front(std::move(entry));
    shard.map.emplace(
        KeyRef{tag, std::string_view(shard.lru.front().key)},
        shard.lru.begin());
    CacheMetrics::Get().entries->Add(1);
    while (shard.lru.size() > per_shard_capacity_) {
      const Entry& back = shard.lru.back();
      shard.map.erase(KeyRef{back.tag, std::string_view(back.key)});
      shard.lru.pop_back();
      ++shard.evictions;
      CacheMetrics::Get().evictions->Inc();
      CacheMetrics::Get().entries->Add(-1);
    }
  }
  if (!status.ok()) return status;
  return value;
}

Result<std::shared_ptr<const phonetic::PhonemeString>>
PhonemeCache::TransformShared(std::string_view utf8,
                              text::Language lang) {
  return GetOrCompute(MakeG2PTag(lang), utf8, [&] {
    CacheMetrics::Get().g2p_transforms->Inc();
    return registry_.Transform(utf8, lang);
  });
}

Result<std::shared_ptr<const phonetic::PhonemeString>>
PhonemeCache::ParseIpaShared(std::string_view ipa_utf8) {
  if (ipa_utf8.empty()) {
    static const std::shared_ptr<const phonetic::PhonemeString> empty =
        std::make_shared<const phonetic::PhonemeString>();
    return empty;
  }
  return GetOrCompute(kIpaTag, ipa_utf8, [&] {
    CacheMetrics::Get().ipa_parses->Inc();
    return phonetic::PhonemeString::FromIpa(ipa_utf8);
  });
}

Result<phonetic::PhonemeString> PhonemeCache::Transform(
    std::string_view utf8, text::Language lang) {
  std::shared_ptr<const phonetic::PhonemeString> shared;
  LEXEQUAL_ASSIGN_OR_RETURN(shared, TransformShared(utf8, lang));
  return *shared;
}

Result<phonetic::PhonemeString> PhonemeCache::ParseIpa(
    std::string_view ipa_utf8) {
  std::shared_ptr<const phonetic::PhonemeString> shared;
  LEXEQUAL_ASSIGN_OR_RETURN(shared, ParseIpaShared(ipa_utf8));
  return *shared;
}

PhonemeCacheStats PhonemeCache::stats() const {
  PhonemeCacheStats out;
  for (const Shard& shard : shards_) {
    common::MutexLock lock(&shard.mu);
    out.hits += shard.hits;
    out.misses += shard.misses;
    out.evictions += shard.evictions;
    out.entries += shard.lru.size();
  }
  return out;
}

void PhonemeCache::Clear() {
  int64_t dropped = 0;
  for (Shard& shard : shards_) {
    common::MutexLock lock(&shard.mu);
    dropped += static_cast<int64_t>(shard.lru.size());
    shard.map.clear();
    shard.lru.clear();
  }
  CacheMetrics::Get().entries->Add(-dropped);
}

PhonemeCache& PhonemeCache::Default() {
  // Leaked singleton: shared across Engine instances and threads
  // for the program's lifetime, like G2PRegistry::Default().
  static PhonemeCache* cache = [] {
    size_t capacity = kDefaultCapacity;
    if (const char* env = std::getenv("LEXEQUAL_PHONEME_CACHE_CAPACITY")) {
      const long long parsed = std::atoll(env);
      if (parsed > 0) capacity = static_cast<size_t>(parsed);
    }
    return new PhonemeCache(g2p::G2PRegistry::Default(), capacity);
  }();
  return *cache;
}

}  // namespace lexequal::match
