// NEON backend: 8 u16 lanes per uint16x8_t, aarch64 only (vqtbl4q is
// an A64 instruction and NEON is baseline there, so no per-file ISA
// flag is needed). The only arm_neon.h code in the tree — lexlint
// keeps it that way.

#include "match/simd_dp_lanes.h"

#if defined(LEXEQUAL_SIMD_NEON)

#include <arm_neon.h>

namespace lexequal::match::internal {

namespace {

struct VecNeon {
  static constexpr uint32_t kLanes = 8;
  using U16 = uint16x8_t;
  using U8 = uint8x8_t;
  struct Lut {
    uint8x16x4_t t;
  };

  static U16 Splat(uint16_t x) { return vdupq_n_u16(x); }
  static U16 Load(const uint16_t* p) { return vld1q_u16(p); }
  static void Store(uint16_t* p, U16 a) { vst1q_u16(p, a); }
  static U8 LoadBytes(const uint8_t* p) { return vld1_u8(p); }
  static void StoreBytes(uint8_t* p, U8 a) { vst1_u8(p, a); }
  static Lut PrepareLut(const uint8_t* row64) {
    Lut l;
    l.t.val[0] = vld1q_u8(row64);
    l.t.val[1] = vld1q_u8(row64 + 16);
    l.t.val[2] = vld1q_u8(row64 + 32);
    l.t.val[3] = vld1q_u8(row64 + 48);
    return l;
  }
  // One 64-entry table lookup instruction; phoneme ids are < 61.
  static U8 Lookup(const Lut& l, U8 ids) { return vqtbl4_u8(l.t, ids); }
  static U16 Widen(U8 a) { return vmovl_u8(a); }
  static U16 AddSat(U16 a, U16 b) { return vqaddq_u16(a, b); }
  static U16 Min(U16 a, U16 b) { return vminq_u16(a, b); }
  static U16 Or(U16 a, U16 b) { return vorrq_u16(a, b); }
  static U16 And(U16 a, U16 b) { return vandq_u16(a, b); }
  static U16 LeMask(U16 a, U16 b) { return vcleq_u16(a, b); }
  static bool AnyNonZero(U16 a) { return vmaxvq_u16(a) != 0; }
};

void LaneDpNeon(const LaneGroup& g) { RunLaneDp<VecNeon>(g); }

}  // namespace

LaneKernelFn GetLaneKernelNeon() { return &LaneDpNeon; }

}  // namespace lexequal::match::internal

#else  // !LEXEQUAL_SIMD_NEON

namespace lexequal::match::internal {
LaneKernelFn GetLaneKernelNeon() { return nullptr; }
}  // namespace lexequal::match::internal

#endif
