#include "match/edit_distance.h"

#include <algorithm>
#include <limits>

#include "match/match_kernel.h"

namespace lexequal::match {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

// This file is the *reference* implementation the table-driven kernel
// (match_kernel.cc) is differential-tested against: the algorithms
// are kept deliberately plain. The only optimization shared with the
// kernel is scratch reuse — both borrow rows from the thread-local
// DpArena instead of heap-allocating two vectors per pair.

double EditDistance(const phonetic::PhonemeString& a,
                    const phonetic::PhonemeString& b,
                    const CostModel& costs) {
  const auto& sa = a.phonemes();
  const auto& sb = b.phonemes();
  const size_t la = sa.size();
  const size_t lb = sb.size();

  auto [prev, cur] = DpArena::ThreadLocal().Rows(lb + 1);
  prev[0] = 0.0;
  for (size_t j = 1; j <= lb; ++j) {
    prev[j] = prev[j - 1] + costs.InsCost(sb[j - 1]);
  }
  for (size_t i = 1; i <= la; ++i) {
    cur[0] = prev[0] + costs.DelCost(sa[i - 1]);
    for (size_t j = 1; j <= lb; ++j) {
      const double del = prev[j] + costs.DelCost(sa[i - 1]);
      const double ins = cur[j - 1] + costs.InsCost(sb[j - 1]);
      const double sub = prev[j - 1] + costs.SubCost(sa[i - 1], sb[j - 1]);
      cur[j] = std::min({del, ins, sub});
    }
    std::swap(prev, cur);
  }
  return prev[lb];
}

double BoundedEditDistance(const phonetic::PhonemeString& a,
                           const phonetic::PhonemeString& b,
                           const CostModel& costs, double bound) {
  const auto& sa = a.phonemes();
  const auto& sb = b.phonemes();
  const size_t la = sa.size();
  const size_t lb = sb.size();

  // Length filter: every unmatched length unit costs at least one
  // insert/delete of weight >= MinEditCost.
  const double min_edit = costs.MinEditCost();
  const double len_gap =
      static_cast<double>(la > lb ? la - lb : lb - la) * min_edit;
  if (len_gap > bound) return bound + 1.0;

  auto [prev, cur] = DpArena::ThreadLocal().Rows(lb + 1);
  prev[0] = 0.0;
  for (size_t j = 1; j <= lb; ++j) {
    prev[j] = prev[j - 1] + costs.InsCost(sb[j - 1]);
    if (prev[j] > bound) prev[j] = kInf;  // can only grow rightwards
  }
  for (size_t i = 1; i <= la; ++i) {
    cur[0] = prev[0] + costs.DelCost(sa[i - 1]);
    if (cur[0] > bound) cur[0] = kInf;
    double row_min = cur[0];
    for (size_t j = 1; j <= lb; ++j) {
      const double del =
          prev[j] == kInf ? kInf : prev[j] + costs.DelCost(sa[i - 1]);
      const double ins =
          cur[j - 1] == kInf ? kInf : cur[j - 1] + costs.InsCost(sb[j - 1]);
      const double sub = prev[j - 1] == kInf
                             ? kInf
                             : prev[j - 1] +
                                   costs.SubCost(sa[i - 1], sb[j - 1]);
      double v = std::min({del, ins, sub});
      // A cell must still cover the remaining length difference; if
      // even the best-case completion exceeds the bound, prune it.
      // (The kernel tightens this with per-phoneme suffix min-cost
      // tables; the reference keeps the simpler global bound.)
      const size_t rem_a = la - i;
      const size_t rem_b = lb - j;
      const double rem_gap =
          static_cast<double>(rem_a > rem_b ? rem_a - rem_b
                                            : rem_b - rem_a) *
          min_edit;
      if (v + rem_gap > bound) v = kInf;
      cur[j] = v;
      row_min = std::min(row_min, v);
    }
    if (row_min == kInf) return bound + 1.0;  // no viable path remains
    std::swap(prev, cur);
  }
  return prev[lb] == kInf ? bound + 1.0 : prev[lb];
}

}  // namespace lexequal::match
