#include "match/plan_cost.h"

#include <algorithm>
#include <cmath>
#include <thread>

#include "match/qgram.h"
#include "match/simd_dp.h"

namespace lexequal::match {

VerifyPath ClassifyVerifyPath(double query_len, double intra_cluster_cost,
                              bool weak_phoneme_discount) {
  // Mirrors the dispatch in MatchKernel::MatchBatch. Unit tables (no
  // intra-cluster discount, no weak-phoneme discount) with the probe
  // inside one 64-bit block take the Myers bit-parallel path.
  if (intra_cluster_cost == 1.0 && !weak_phoneme_discount) {
    if (query_len <= 64.0) return VerifyPath::kBitParallel;
    return VerifyPath::kBanded;
  }
  // Weighted tables on the 1/128 fixed-point grid take the lane path
  // when the host resolves a real vector ISA. The weak-phoneme
  // discount halves substitution costs, which keeps them on the grid,
  // so only the intra-cluster cost decides representability here.
  const double scaled =
      intra_cluster_cost * QuantizedCostModel::kScale;
  const bool on_grid = scaled >= 0.0 && scaled <= 255.0 &&
                       std::nearbyint(scaled) == scaled;
  if (on_grid) {
    const SimdBackend best = BestSimdBackend();
    if (best == SimdBackend::kAvx2 || best == SimdBackend::kNeon) {
      return VerifyPath::kSimdLanes;
    }
  }
  return VerifyPath::kBanded;
}

double EstimateVerifyCost(double query_len, double cand_len,
                          double threshold, const PlanCostParams& p,
                          VerifyPath path) {
  if (query_len <= 0 || cand_len <= 0) return p.phoneme_parse;
  const double shorter = std::min(query_len, cand_len);
  const double longer = std::max(query_len, cand_len);
  const double parse = p.phoneme_parse * cand_len;
  switch (path) {
    case VerifyPath::kBitParallel:
      // One Myers word-op bundle per text phoneme, band-free.
      return parse + p.dp_cell_bitparallel * longer;
    case VerifyPath::kSimdLanes:
      // The lane DP runs the full matrix, unbanded; the 8/16-wide
      // vector and row-minimum early exit live in the constant.
      return parse + p.dp_cell_simd * shorter * longer;
    case VerifyPath::kGeneral:
      return parse + p.dp_cell * shorter * (longer + 1.0);
    case VerifyPath::kBanded:
      break;
  }
  // Band around the diagonal as the kernel computes it: the weighted
  // bound (threshold * shorter) buys bound / min_indel unit edits each
  // side; with the default clustered weights (min_indel = 0.5) that is
  // ~ 4k+1 columns. The DP visits at most longer * band cells before
  // the row-minimum early-out prunes.
  const double band =
      std::min(4.0 * threshold * shorter + 1.0, longer + 1.0);
  return parse + p.dp_cell * shorter * band;
}

double EstimateQGramPostings(double query_len, int q,
                             double avg_postings_per_gram) {
  const double grams = query_len + static_cast<double>(q) - 1.0;
  return std::max(0.0, grams * avg_postings_per_gram);
}

double EstimateQGramCandidates(double query_len, double avg_len,
                               double threshold, int q,
                               double postings_touched,
                               double nonempty_rows) {
  const double shorter = std::min(query_len, avg_len);
  const double k = threshold * shorter;  // Fig. 14 unit-edit budget
  const double required = CountFilterMinMatches(
      static_cast<size_t>(query_len + 0.5),
      static_cast<size_t>(avg_len + 0.5), k, q);
  double est = required > 1.0 ? postings_touched / required
                              : nonempty_rows;
  return std::clamp(est, 0.0, nonempty_rows);
}

double EstimateInvidxPostings(double query_len, int q,
                              double avg_postings_per_list) {
  const double grams = query_len + static_cast<double>(q) - 1.0;
  return std::max(0.0, grams * avg_postings_per_list);
}

double EstimateParallelSpeedup(uint32_t threads_hint,
                               const PlanCostParams& p) {
  uint32_t n = threads_hint;
  if (n == 0) n = std::thread::hardware_concurrency();
  if (n == 0) n = 1;
  n = std::min(n, p.max_useful_threads);
  return std::max(1.0, p.parallel_efficiency * static_cast<double>(n));
}

}  // namespace lexequal::match
