#include "match/plan_cost.h"

#include <algorithm>
#include <thread>

#include "match/qgram.h"

namespace lexequal::match {

double EstimateVerifyCost(double query_len, double cand_len,
                          double threshold, const PlanCostParams& p) {
  if (query_len <= 0 || cand_len <= 0) return p.phoneme_parse;
  const double shorter = std::min(query_len, cand_len);
  const double longer = std::max(query_len, cand_len);
  // Band around the diagonal as the kernel computes it: the weighted
  // bound (threshold * shorter) buys bound / min_indel unit edits each
  // side; with the default clustered weights (min_indel = 0.5) that is
  // ~ 4k+1 columns. The DP visits at most longer * band cells before
  // the row-minimum early-out prunes.
  const double band =
      std::min(4.0 * threshold * shorter + 1.0, longer + 1.0);
  return p.phoneme_parse * cand_len + p.dp_cell * shorter * band;
}

double EstimateQGramPostings(double query_len, int q,
                             double avg_postings_per_gram) {
  const double grams = query_len + static_cast<double>(q) - 1.0;
  return std::max(0.0, grams * avg_postings_per_gram);
}

double EstimateQGramCandidates(double query_len, double avg_len,
                               double threshold, int q,
                               double postings_touched,
                               double nonempty_rows) {
  const double shorter = std::min(query_len, avg_len);
  const double k = threshold * shorter;  // Fig. 14 unit-edit budget
  const double required = CountFilterMinMatches(
      static_cast<size_t>(query_len + 0.5),
      static_cast<size_t>(avg_len + 0.5), k, q);
  double est = required > 1.0 ? postings_touched / required
                              : nonempty_rows;
  return std::clamp(est, 0.0, nonempty_rows);
}

double EstimateInvidxPostings(double query_len, int q,
                              double avg_postings_per_list) {
  const double grams = query_len + static_cast<double>(q) - 1.0;
  return std::max(0.0, grams * avg_postings_per_list);
}

double EstimateParallelSpeedup(uint32_t threads_hint,
                               const PlanCostParams& p) {
  uint32_t n = threads_hint;
  if (n == 0) n = std::thread::hardware_concurrency();
  if (n == 0) n = 1;
  n = std::min(n, p.max_useful_threads);
  return std::max(1.0, p.parallel_efficiency * static_cast<double>(n));
}

}  // namespace lexequal::match
