// PhonemeCache: a sharded, mutex-striped LRU that memoizes the two
// text→phoneme conversions on the LexEQUAL hot path:
//
//   * G2P transforms, keyed by (language, lexicographic string) — the
//     `transform` of the paper's Fig. 8. Repeated probes and
//     multi-predicate queries stop re-running the rule engines.
//   * IPA parses, keyed by the stored phonemic cell text — the
//     candidate-side decode that a naive scan repeats for every tuple
//     of every probe (paper Table 1's dominant fixed cost).
//
// The paper's own §5 remedy is to precompute the phonemic form once
// and reuse it; this cache is the dynamic version of that idea for
// query-time work that cannot be precomputed at load time.
//
// Thread-safe: the key space is hashed across kShards independent
// LRU shards, each guarded by its own mutex, so concurrent probes
// from the ParallelMatcher's worker pool contend only when they hash
// to the same shard. Failed conversions (NoResource / InvalidArgument)
// are cached too — negative caching — so a probe in an unsupported
// language costs one rule-engine run, not one per retry.
//
// The hit path is allocation-free: lookups probe with a (tag,
// string_view) composite key, so no composed key string is built, and
// values are handed out as shared_ptr<const PhonemeString>, so a hit
// costs one refcount increment rather than a vector copy. This is
// what lets the batch scan call ParseIpaShared once per tuple without
// the allocator showing up in profiles.

#ifndef LEXEQUAL_MATCH_PHONEME_CACHE_H_
#define LEXEQUAL_MATCH_PHONEME_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "g2p/g2p.h"
#include "phonetic/phoneme_string.h"
#include "text/language.h"
#include "text/tagged_string.h"

namespace lexequal::match {

/// Aggregate cache counters (summed over shards at read time).
struct PhonemeCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t entries = 0;  // currently resident
};

/// Memoizing front-end for G2PRegistry::Transform and
/// PhonemeString::FromIpa. Borrows the registry, which must outlive
/// the cache (the G2PRegistry::Default() singleton always does).
class PhonemeCache {
 public:
  /// Total capacity across all shards; per-shard capacity is
  /// capacity / shard count (minimum 1). The default covers the
  /// paper's ~200k-row enlarged dataset with headroom: an LRU under a
  /// repeated full-column scan is all-or-nothing (capacity below the
  /// working set degenerates to 0% hits plus eviction churn — see
  /// ParallelMatcher's bypass), so the default errs large. Entries
  /// cost roughly 250 bytes, fully populated ~65 MB.
  static constexpr size_t kDefaultCapacity = 1 << 18;
  static constexpr size_t kShards = 16;

  explicit PhonemeCache(
      const g2p::G2PRegistry& registry = g2p::G2PRegistry::Default(),
      size_t capacity = kDefaultCapacity);

  PhonemeCache(const PhonemeCache&) = delete;
  PhonemeCache& operator=(const PhonemeCache&) = delete;

  /// Memoized G2PRegistry::Transform(utf8, lang). The NoResource /
  /// InvalidArgument failure statuses are memoized as well. The
  /// returned value is never null on OK.
  Result<std::shared_ptr<const phonetic::PhonemeString>> TransformShared(
      std::string_view utf8, text::Language lang);

  /// Memoized PhonemeString::FromIpa(ipa_utf8). An empty input yields
  /// an empty phoneme string (the stored form of untransformable
  /// rows) without touching the cache. A cached parse is a contiguous
  /// byte array of phoneme ids (PhonemeString::ids()), so borrowers
  /// can feed it straight to MatchKernel without copying.
  Result<std::shared_ptr<const phonetic::PhonemeString>> ParseIpaShared(
      std::string_view ipa_utf8);

  /// Copying conveniences for callers that want an owned value.
  Result<phonetic::PhonemeString> Transform(std::string_view utf8,
                                            text::Language lang);

  Result<phonetic::PhonemeString> Transform(const text::TaggedString& s) {
    return Transform(s.text(), s.language());
  }

  Result<phonetic::PhonemeString> ParseIpa(std::string_view ipa_utf8);

  /// Point-in-time counters. Hit rate = hits / (hits + misses).
  PhonemeCacheStats stats() const;

  /// Drops every entry; counters keep accumulating.
  void Clear();

  size_t capacity() const { return capacity_; }

  /// Process-wide cache over G2PRegistry::Default(), shared by every
  /// Engine instance. Never destroyed (lives for program duration).
  /// Capacity is kDefaultCapacity, overridable once at first use via
  /// the LEXEQUAL_PHONEME_CACHE_CAPACITY environment variable (for
  /// datasets larger than the paper's; size it to the phonemic
  /// column's distinct-value count).
  static PhonemeCache& Default();

 private:
  // Composite lookup key: `tag` encodes the conversion namespace (and
  // the language for G2P keys) so the two memoizations never collide;
  // `text` views either the caller's input (lookup) or Entry::key
  // (stored). Probing with a view is what keeps hits allocation-free.
  struct KeyRef {
    uint16_t tag;
    std::string_view text;
    friend bool operator==(const KeyRef& a, const KeyRef& b) {
      return a.tag == b.tag && a.text == b.text;
    }
  };
  struct KeyRefHash {
    size_t operator()(const KeyRef& k) const {
      return std::hash<std::string_view>{}(k.text) ^
             (static_cast<size_t>(k.tag) * 0x9e3779b97f4a7c15ull);
    }
  };
  struct Entry {
    uint16_t tag;
    std::string key;
    Status status;  // OK, NoResource, or InvalidArgument
    std::shared_ptr<const phonetic::PhonemeString> phonemes;
  };
  struct Shard {
    mutable common::Mutex mu;
    // MRU at front; map values point into the list.
    std::list<Entry> lru GUARDED_BY(mu);
    std::unordered_map<KeyRef, std::list<Entry>::iterator, KeyRefHash>
        map GUARDED_BY(mu);
    uint64_t hits GUARDED_BY(mu) = 0;
    uint64_t misses GUARDED_BY(mu) = 0;
    uint64_t evictions GUARDED_BY(mu) = 0;
  };

  // Looks up (tag, text) in its shard, computing-and-inserting via
  // `compute` on a miss. Returns the cached conversion outcome.
  template <typename Fn>
  Result<std::shared_ptr<const phonetic::PhonemeString>> GetOrCompute(
      uint16_t tag, std::string_view text, Fn&& compute);

  Shard& ShardFor(const KeyRef& key);

  const g2p::G2PRegistry& registry_;
  const size_t capacity_;
  const size_t per_shard_capacity_;
  Shard shards_[kShards];
};

}  // namespace lexequal::match

#endif  // LEXEQUAL_MATCH_PHONEME_CACHE_H_
