#include "match/lexequal.h"

namespace lexequal::match {

MatchOutcome LexEqualMatcher::Match(const text::TaggedString& left,
                                    const text::TaggedString& right) const {
  Result<phonetic::PhonemeString> tl = registry_.Transform(left);
  if (!tl.ok()) return MatchOutcome::kNoResource;
  Result<phonetic::PhonemeString> tr = registry_.Transform(right);
  if (!tr.ok()) return MatchOutcome::kNoResource;
  return MatchPhonemes(tl.value(), tr.value()) ? MatchOutcome::kTrue
                                               : MatchOutcome::kFalse;
}

bool LexEqualMatcher::MatchPhonemes(const phonetic::PhonemeString& a,
                                    const phonetic::PhonemeString& b,
                                    KernelCounters* counters) const {
  const double bound = Allowance(a.size(), b.size());
  DpArena& arena = DpArena::ThreadLocal();
  const KernelCounters before = arena.counters;
  const bool matched = kernel_.BoundedDistance(a, b, bound, &arena) <= bound;
  if (counters != nullptr) {
    counters->Merge(arena.counters.DeltaSince(before));
  }
  return matched;
}

}  // namespace lexequal::match
