// The LexEQUAL operator (paper Fig. 8): multiscript matching of
// proper names by approximate comparison of their phonemic forms.

#ifndef LEXEQUAL_MATCH_LEXEQUAL_H_
#define LEXEQUAL_MATCH_LEXEQUAL_H_

#include <memory>

#include "common/result.h"
#include "g2p/g2p.h"
#include "match/cost_model.h"
#include "match/match_kernel.h"
#include "phonetic/cluster.h"
#include "phonetic/phoneme_string.h"
#include "text/tagged_string.h"

namespace lexequal::match {

/// Three-valued outcome of a LexEQUAL comparison, as in the paper:
/// TRUE, FALSE, or NORESOURCE (no TTP converter for a language).
enum class MatchOutcome { kTrue, kFalse, kNoResource };

/// Tunable parameters of the operator (paper §3.3).
struct LexEqualOptions {
  /// User match threshold e ∈ [0,1]: allowable edit distance as a
  /// fraction of the size of the smaller phonemic string. 0 accepts
  /// only perfect phonemic matches.
  double threshold = 0.25;
  /// Intra-cluster substitution cost ∈ [0,1]: 1 = Levenshtein,
  /// 0 = Soundex-style free substitution of like phonemes.
  double intra_cluster_cost = 0.5;
  /// Charge only ClusteredCost::kWeakEditCost for inserting/deleting
  /// weak phonemes (h, schwa). Disable together with
  /// intra_cluster_cost = 1 for the textbook Levenshtein distance.
  bool weak_phoneme_discount = true;
};

/// The LexEQUAL matcher. Owns its cost model; borrows the G2P
/// registry and cluster table (both must outlive the matcher; the
/// Default() singletons always do).
class LexEqualMatcher {
 public:
  explicit LexEqualMatcher(
      LexEqualOptions options = {},
      const g2p::G2PRegistry& registry = g2p::G2PRegistry::Default(),
      const phonetic::ClusterTable& clusters =
          phonetic::ClusterTable::Default())
      : options_(options),
        registry_(registry),
        clusters_(clusters),
        cost_(clusters, options.intra_cluster_cost,
              options.weak_phoneme_discount),
        kernel_(CompiledCostModel::Compile(cost_)) {}

  /// LexEQUAL(S_l, S_r, e) over lexicographic strings: transforms both
  /// to phoneme space and compares. Returns kNoResource when either
  /// language lacks a converter.
  MatchOutcome Match(const text::TaggedString& left,
                     const text::TaggedString& right) const;

  /// Phoneme-space comparison (both strings already transformed):
  /// editdistance(a, b) <= threshold * min(|a|, |b|), evaluated by
  /// the table-driven MatchKernel on the calling thread's DpArena.
  /// The optional `counters` out-param receives the kernel-path
  /// breakdown of this call (which algorithm ran, cells computed).
  bool MatchPhonemes(const phonetic::PhonemeString& a,
                     const phonetic::PhonemeString& b,
                     KernelCounters* counters = nullptr) const;

  /// The decision bound for a pair of lengths: threshold * min(la, lb).
  double Allowance(size_t la, size_t lb) const {
    return options_.threshold * static_cast<double>(la < lb ? la : lb);
  }

  const LexEqualOptions& options() const { return options_; }
  const CostModel& cost_model() const { return cost_; }
  /// The compiled batch kernel this matcher verifies through; shared
  /// with ParallelMatcher workers (each brings its own DpArena).
  const MatchKernel& kernel() const { return kernel_; }
  const g2p::G2PRegistry& registry() const { return registry_; }
  const phonetic::ClusterTable& clusters() const { return clusters_; }

 private:
  LexEqualOptions options_;
  const g2p::G2PRegistry& registry_;
  const phonetic::ClusterTable& clusters_;
  ClusteredCost cost_;
  MatchKernel kernel_;  // compiled form of cost_, cached per params
};

}  // namespace lexequal::match

#endif  // LEXEQUAL_MATCH_LEXEQUAL_H_
