// Cost models for approximate phoneme-string matching.
//
// The dynamic-programming edit distance (edit_distance.h) is
// parameterized by InsCost/DelCost/SubCost exactly as in the paper's
// Fig. 8, "chosen for its flexibility in simulating a wide range of
// different edit distances by appropriate parameterization of the
// cost functions".

#ifndef LEXEQUAL_MATCH_COST_MODEL_H_
#define LEXEQUAL_MATCH_COST_MODEL_H_

#include "phonetic/cluster.h"
#include "phonetic/phoneme.h"

namespace lexequal::match {

/// Interface of a cost model over phonemes. Costs are non-negative;
/// a SubCost of 0 for identical phonemes is required for the distance
/// to be a pseudometric.
class CostModel {
 public:
  virtual ~CostModel() = default;

  /// Cost of inserting `p`.
  virtual double InsCost(phonetic::Phoneme p) const = 0;
  /// Cost of deleting `p`.
  virtual double DelCost(phonetic::Phoneme p) const = 0;
  /// Cost of substituting `from` by `to`.
  virtual double SubCost(phonetic::Phoneme from,
                         phonetic::Phoneme to) const = 0;

  /// Smallest possible cost of any single edit; used by the banded
  /// algorithm to prune rows that cannot recover. Must be > 0.
  virtual double MinEditCost() const = 0;
};

/// Unit costs: the standard Levenshtein distance.
class LevenshteinCost final : public CostModel {
 public:
  double InsCost(phonetic::Phoneme) const override { return 1.0; }
  double DelCost(phonetic::Phoneme) const override { return 1.0; }
  double SubCost(phonetic::Phoneme from,
                 phonetic::Phoneme to) const override {
    return from == to ? 0.0 : 1.0;
  }
  double MinEditCost() const override { return 1.0; }
};

/// The paper's Clustered Edit Distance: substitutions between like
/// phonemes (same cluster) cost `intra_cluster_cost` ∈ [0, 1];
/// everything else is unit cost. 1.0 degenerates to Levenshtein,
/// 0.0 simulates Soundex-style equivalence.
///
/// The model additionally implements the "installable cost matrix"
/// of the paper's architecture (Fig. 7) with a names-domain default:
/// inserting or deleting a *weak* phoneme — glottal h or schwa, the
/// segments scripts most often drop (Tamil writes no /h/; Hindi
/// deletes schwas) — costs kWeakEditCost instead of 1. Disable via
/// the constructor for the textbook distance.
class ClusteredCost final : public CostModel {
 public:
  /// Insert/delete cost of weak phonemes when the discount is on.
  static constexpr double kWeakEditCost = 0.5;

  /// `clusters` must outlive this object (pass
  /// phonetic::ClusterTable::Default() for the standard grouping).
  explicit ClusteredCost(const phonetic::ClusterTable& clusters,
                         double intra_cluster_cost,
                         bool weak_phoneme_discount = true)
      : clusters_(clusters),
        intra_cost_(intra_cluster_cost < 0.0   ? 0.0
                    : intra_cluster_cost > 1.0 ? 1.0
                                               : intra_cluster_cost),
        weak_discount_(weak_phoneme_discount) {}

  double InsCost(phonetic::Phoneme p) const override {
    return IsWeak(p) ? kWeakEditCost : 1.0;
  }
  double DelCost(phonetic::Phoneme p) const override {
    return IsWeak(p) ? kWeakEditCost : 1.0;
  }
  double SubCost(phonetic::Phoneme from,
                 phonetic::Phoneme to) const override {
    if (from == to) return 0.0;
    if (clusters_.SameCluster(from, to)) return intra_cost_;
    return 1.0;
  }
  double MinEditCost() const override {
    return weak_discount_ ? kWeakEditCost : 1.0;
  }

  double intra_cluster_cost() const { return intra_cost_; }
  bool weak_phoneme_discount() const { return weak_discount_; }
  /// The cluster table this model's params are defined over; part of
  /// the compiled-model cache key (match_kernel.h).
  const phonetic::ClusterTable& clusters() const { return clusters_; }

 private:
  bool IsWeak(phonetic::Phoneme p) const {
    return weak_discount_ && (p == phonetic::Phoneme::kH ||
                              p == phonetic::Phoneme::kSchwa);
  }

  const phonetic::ClusterTable& clusters_;
  double intra_cost_;
  bool weak_discount_;
};

/// Feature-weighted substitution costs: instead of a binary
/// in/out-of-cluster decision, the cost of substituting two phonemes
/// is a weighted sum of their differing articulatory features
/// (manner, place, voicing, aspiration; height/backness/rounding for
/// vowels). This is the continuous refinement the paper's §5.3
/// gestures at ("a more robust design of phoneme clusters and cost
/// functions"); the ablation bench compares it against the discrete
/// clustered model.
class FeatureCost final : public CostModel {
 public:
  static constexpr double kWeakEditCost = 0.5;

  explicit FeatureCost(bool weak_phoneme_discount = true)
      : weak_discount_(weak_phoneme_discount) {}

  double InsCost(phonetic::Phoneme p) const override {
    return IsWeak(p) ? kWeakEditCost : 1.0;
  }
  double DelCost(phonetic::Phoneme p) const override {
    return IsWeak(p) ? kWeakEditCost : 1.0;
  }
  double SubCost(phonetic::Phoneme from,
                 phonetic::Phoneme to) const override {
    if (from == to) return 0.0;
    const phonetic::PhonemeInfo& a = phonetic::GetPhonemeInfo(from);
    const phonetic::PhonemeInfo& b = phonetic::GetPhonemeInfo(to);
    const bool a_vowel = a.type == phonetic::PhonemeType::kVowel;
    const bool b_vowel = b.type == phonetic::PhonemeType::kVowel;
    if (a_vowel != b_vowel) return 1.0;
    double cost = 0.0;
    if (a_vowel) {
      if (a.height != b.height) cost += 0.35;
      if (a.backness != b.backness) cost += 0.35;
      if (a.rounded != b.rounded) cost += 0.15;
    } else {
      if (a.type != b.type) cost += 0.40;
      if (a.place != b.place) cost += 0.30;
      if (a.voiced != b.voiced) cost += 0.15;
      if (a.aspirated != b.aspirated) cost += 0.10;
    }
    // Distinct phonemes always cost something.
    return cost < 0.10 ? 0.10 : (cost > 1.0 ? 1.0 : cost);
  }
  double MinEditCost() const override {
    return weak_discount_ ? kWeakEditCost : 1.0;
  }

  bool weak_phoneme_discount() const { return weak_discount_; }

 private:
  bool IsWeak(phonetic::Phoneme p) const {
    return weak_discount_ && (p == phonetic::Phoneme::kH ||
                              p == phonetic::Phoneme::kSchwa);
  }

  bool weak_discount_;
};

}  // namespace lexequal::match

#endif  // LEXEQUAL_MATCH_COST_MODEL_H_
