// The lane DP itself, shared by every backend as a template over a
// vector trait V. A trait provides W = V::kLanes u16 lanes and the
// tiny op set the recurrence needs (saturating add, unsigned min,
// byte-table lookup, <=-mask, any-lane test). Instantiating the same
// template everywhere is what makes the backends bit-identical: the
// recurrence, the row-0 border, the pad-column handling, and the
// early-exit test are one piece of code; a backend only decides how
// many lanes advance per instruction.
//
// Internal header: included by simd_dp.cc and the simd_dp_*.cc
// backend translation units only.

#ifndef LEXEQUAL_MATCH_SIMD_DP_LANES_H_
#define LEXEQUAL_MATCH_SIMD_DP_LANES_H_

#include <algorithm>
#include <cstdint>

#include "match/simd_dp.h"

namespace lexequal::match::internal {

// Row-major lane DP over one group. Row i of the classic matrix is a
// vector row of lc_max columns x W lanes; every lane runs its own
// candidate in its own column range, columns past a lane's length are
// forced to kSat through pad_or (OR with 0xFFFF saturates the cell,
// and since dependencies only flow left-to-right, a forced cell never
// feeds a real one). The early exit is sound because every alignment
// path crosses every row and all costs are >= 0, so a row minimum
// above the lane's bound proves the final distance is too.
template <typename V>
void RunLaneDp(const LaneGroup& g) {
  constexpr uint32_t W = V::kLanes;
  using U16 = typename V::U16;
  const QuantizedCostModel& q = *g.q;
  const size_t n = g.lc_max;
  constexpr uint16_t kSat = QuantizedCostModel::kSat;

  uint16_t* prev = g.rows;
  uint16_t* cur = g.rows + (n + 1) * W;

  // Row 0: per-lane prefix sums of the candidate's insert costs. Pad
  // positions carry kSat in ins_col already, so their prefix saturates
  // and stays saturated.
  U16 acc = V::Splat(0);
  V::Store(prev, acc);
  for (size_t j = 1; j <= n; ++j) {
    acc = V::AddSat(acc, V::Load(g.ins_col + (j - 1) * W));
    V::Store(prev + j * W, acc);
  }

  const U16 bounds_v = V::Load(g.bounds);
  U16 alive = V::Splat(kSat);
  uint32_t border = 0;  // column-0 prefix of probe deletes (scalar)
  uint8_t next_slot = 0;
  uint64_t cells = 0;
  bool all_dead = false;

  for (size_t i = 1; i <= g.lp; ++i) {
    const uint8_t ca = g.probe[i - 1];

    // Substitution stripe for this probe phoneme: sub[ca][cand_id]
    // gathered once per distinct probe phoneme into a byte column
    // (lane-major, same layout as ids), then the inner loop only
    // loads and widens bytes.
    uint8_t slot = g.stripe_slot[ca];
    if (slot == 0xFF) {
      slot = next_slot++;
      g.stripe_slot[ca] = slot;
      uint8_t* sp = g.stripes + static_cast<size_t>(slot) * n * W;
      const typename V::Lut lut =
          V::PrepareLut(q.sub + static_cast<size_t>(ca) *
                                    QuantizedCostModel::kRow);
      for (size_t j = 0; j < n; ++j) {
        V::StoreBytes(sp + j * W, V::Lookup(lut, V::LoadBytes(g.ids + j * W)));
      }
    }
    const uint8_t* stripe = g.stripes + static_cast<size_t>(slot) * n * W;

    border = std::min<uint32_t>(border + q.del[ca], kSat);
    const U16 border_v = V::Splat(static_cast<uint16_t>(border));
    V::Store(cur, border_v);
    U16 row_min = border_v;
    const U16 del_v = V::Splat(q.del[ca]);
    for (size_t j = 1; j <= n; ++j) {
      const U16 sub16 = V::Widen(V::LoadBytes(stripe + (j - 1) * W));
      U16 v = V::Min(V::AddSat(V::Load(prev + j * W), del_v),
                     V::AddSat(V::Load(cur + (j - 1) * W),
                               V::Load(g.ins_col + (j - 1) * W)));
      v = V::Min(v, V::AddSat(V::Load(prev + (j - 1) * W), sub16));
      v = V::Or(v, V::Load(g.pad_or + (j - 1) * W));
      V::Store(cur + j * W, v);
      row_min = V::Min(row_min, v);
    }
    cells += n * W;

    // Retire lanes whose row minimum exceeds their bound; once no
    // lane is alive, no lane can still match and the group stops.
    alive = V::And(alive, V::LeMask(row_min, bounds_v));
    if (!V::AnyNonZero(alive)) {
      all_dead = true;
      break;
    }
    uint16_t* t = prev;
    prev = cur;
    cur = t;
  }
  *g.cells += cells;

  // The final DP row sits in `prev` after the last swap. Lanes whose
  // mask died before the final row still computed exact cells (the
  // mask only gates the break), so extraction stays exact; a lane
  // that died is guaranteed > bound either way.
  if (all_dead) {
    for (uint32_t l = 0; l < g.width; ++l) g.dist_q[l] = kSat;
  } else {
    for (uint32_t l = 0; l < g.width; ++l) {
      g.dist_q[l] = prev[static_cast<size_t>(g.lc[l]) * W + l];
    }
  }

  alignas(32) uint16_t alive_arr[W];
  V::Store(alive_arr, alive);
  uint64_t dead = 0;
  for (uint32_t l = 0; l < g.active; ++l) {
    if (alive_arr[l] == 0) ++dead;
  }
  *g.early_exit_lanes += dead;
}

// Backend entry points. Each simd_dp_*.cc translation unit always
// compiles; the getter returns nullptr when its ISA was not built in,
// so simd_dp.cc links identically on every platform.
LaneKernelFn GetLaneKernelAvx2();
LaneKernelFn GetLaneKernelNeon();
LaneKernelFn GetLaneKernelScalar();

}  // namespace lexequal::match::internal

#endif  // LEXEQUAL_MATCH_SIMD_DP_LANES_H_
