#include "match/simd_dp.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "match/simd_dp_lanes.h"

namespace lexequal::match {

namespace {

// Portable 16-lane emulation of the vector trait. Same lane count as
// AVX2 so group shapes (and therefore pad-lane behavior) match the
// widest real backend; the ops are plain loops the autovectorizer is
// free to lower however it likes — correctness never depends on it.
struct VecScalar {
  static constexpr uint32_t kLanes = 16;
  struct U16 {
    uint16_t v[kLanes];
  };
  struct U8 {
    uint8_t v[kLanes];
  };
  struct Lut {
    const uint8_t* row;
  };

  static U16 Splat(uint16_t x) {
    U16 r;
    for (uint32_t l = 0; l < kLanes; ++l) r.v[l] = x;
    return r;
  }
  static U16 Load(const uint16_t* p) {
    U16 r;
    std::memcpy(r.v, p, sizeof r.v);
    return r;
  }
  static void Store(uint16_t* p, U16 a) { std::memcpy(p, a.v, sizeof a.v); }
  static U8 LoadBytes(const uint8_t* p) {
    U8 r;
    std::memcpy(r.v, p, sizeof r.v);
    return r;
  }
  static void StoreBytes(uint8_t* p, U8 a) { std::memcpy(p, a.v, sizeof a.v); }
  static Lut PrepareLut(const uint8_t* row64) { return Lut{row64}; }
  static U8 Lookup(const Lut& t, U8 ids) {
    U8 r;
    for (uint32_t l = 0; l < kLanes; ++l) r.v[l] = t.row[ids.v[l]];
    return r;
  }
  static U16 Widen(U8 a) {
    U16 r;
    for (uint32_t l = 0; l < kLanes; ++l) r.v[l] = a.v[l];
    return r;
  }
  static U16 AddSat(U16 a, U16 b) {
    U16 r;
    for (uint32_t l = 0; l < kLanes; ++l) {
      const uint32_t s = static_cast<uint32_t>(a.v[l]) + b.v[l];
      r.v[l] = static_cast<uint16_t>(std::min<uint32_t>(s, 0xFFFF));
    }
    return r;
  }
  static U16 Min(U16 a, U16 b) {
    U16 r;
    for (uint32_t l = 0; l < kLanes; ++l) r.v[l] = std::min(a.v[l], b.v[l]);
    return r;
  }
  static U16 Or(U16 a, U16 b) {
    U16 r;
    for (uint32_t l = 0; l < kLanes; ++l) r.v[l] = a.v[l] | b.v[l];
    return r;
  }
  static U16 And(U16 a, U16 b) {
    U16 r;
    for (uint32_t l = 0; l < kLanes; ++l) r.v[l] = a.v[l] & b.v[l];
    return r;
  }
  static U16 LeMask(U16 a, U16 b) {  // a <= b ? 0xFFFF : 0, per lane
    U16 r;
    for (uint32_t l = 0; l < kLanes; ++l) r.v[l] = a.v[l] <= b.v[l] ? 0xFFFF : 0;
    return r;
  }
  static bool AnyNonZero(U16 a) {
    for (uint32_t l = 0; l < kLanes; ++l) {
      if (a.v[l] != 0) return true;
    }
    return false;
  }
};

void LaneDpScalar(const LaneGroup& g) { internal::RunLaneDp<VecScalar>(g); }

bool ForceScalarFromEnv() {
  const char* v = std::getenv("LEXEQUAL_FORCE_SCALAR_SIMD");
  return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

}  // namespace

namespace internal {
LaneKernelFn GetLaneKernelScalar() { return &LaneDpScalar; }
}  // namespace internal

const char* SimdBackendName(SimdBackend b) {
  switch (b) {
    case SimdBackend::kAuto:
      return "auto";
    case SimdBackend::kDisabled:
      return "disabled";
    case SimdBackend::kScalar:
      return "scalar";
    case SimdBackend::kAvx2:
      return "avx2";
    case SimdBackend::kNeon:
      return "neon";
  }
  return "disabled";
}

bool SimdBackendCompiled(SimdBackend b) {
  switch (b) {
    case SimdBackend::kScalar:
      return true;
    case SimdBackend::kAvx2:
      return internal::GetLaneKernelAvx2() != nullptr;
    case SimdBackend::kNeon:
      return internal::GetLaneKernelNeon() != nullptr;
    case SimdBackend::kAuto:
    case SimdBackend::kDisabled:
      return false;
  }
  return false;
}

bool SimdBackendAvailable(SimdBackend b) {
  if (!SimdBackendCompiled(b)) return false;
  if (b == SimdBackend::kAvx2) {
#if defined(__x86_64__) || defined(__i386__)
    return __builtin_cpu_supports("avx2") != 0;
#else
    return false;
#endif
  }
  return true;  // scalar always; NEON is baseline where it compiles
}

SimdBackend BestSimdBackend() {
  static const SimdBackend best = [] {
    if (ForceScalarFromEnv()) return SimdBackend::kScalar;
    if (SimdBackendAvailable(SimdBackend::kAvx2)) return SimdBackend::kAvx2;
    if (SimdBackendAvailable(SimdBackend::kNeon)) return SimdBackend::kNeon;
    return SimdBackend::kScalar;
  }();
  return best;
}

SimdBackend ResolveSimdBackend(SimdBackend requested) {
  if (requested == SimdBackend::kAuto) return BestSimdBackend();
  if (requested == SimdBackend::kDisabled) return SimdBackend::kDisabled;
  return SimdBackendAvailable(requested) ? requested : SimdBackend::kDisabled;
}

uint32_t SimdLaneWidth(SimdBackend b) {
  switch (b) {
    case SimdBackend::kScalar:
    case SimdBackend::kAvx2:
      return 16;
    case SimdBackend::kNeon:
      return 8;
    case SimdBackend::kAuto:
    case SimdBackend::kDisabled:
      return 0;
  }
  return 0;
}

LaneKernelFn GetLaneKernel(SimdBackend b) {
  switch (b) {
    case SimdBackend::kScalar:
      return internal::GetLaneKernelScalar();
    case SimdBackend::kAvx2:
      return internal::GetLaneKernelAvx2();
    case SimdBackend::kNeon:
      return internal::GetLaneKernelNeon();
    case SimdBackend::kAuto:
    case SimdBackend::kDisabled:
      return nullptr;
  }
  return nullptr;
}

std::unique_ptr<QuantizedCostModel> QuantizedCostModel::Build(
    const CompiledCostModel& cm) {
  auto q = std::make_unique<QuantizedCostModel>();
  // A value quantizes losslessly iff v * 128 is a non-negative
  // integer in range. The comparison is exact: v * 128 only shifts
  // the exponent, and nearbyint of an integer-valued double is
  // itself.
  auto grid = [](double v, double max) -> int64_t {
    const double s = v * kScale;
    if (!(s >= 0.0) || s > max) return -1;
    const double r = std::nearbyint(s);
    if (r != s) return -1;
    return static_cast<int64_t>(r);
  };
  q->valid = true;
  for (int p = 0; p < kP && q->valid; ++p) {
    const auto ph = static_cast<uint8_t>(p);
    const int64_t iv = grid(cm.Ins(ph), kSat - 1.0);
    const int64_t dv = grid(cm.Del(ph), kSat - 1.0);
    if (iv < 0 || dv < 0) {
      q->valid = false;
      break;
    }
    q->ins[p] = static_cast<uint16_t>(iv);
    q->del[p] = static_cast<uint16_t>(dv);
    for (int c = 0; c < kP; ++c) {
      const int64_t sv = grid(cm.Sub(ph, static_cast<uint8_t>(c)), 255.0);
      if (sv < 0) {
        q->valid = false;
        break;
      }
      q->sub[static_cast<size_t>(p) * kRow + c] = static_cast<uint8_t>(sv);
    }
  }
  return q;
}

void MatchLanes(LaneKernelFn fn, uint32_t width, const QuantizedCostModel& q,
                const uint8_t* probe, size_t lp, LaneScratch* ls,
                KernelCounters* counters) {
  const uint32_t active = ls->pending;
  size_t lc_max = 0;
  for (uint32_t l = 0; l < active; ++l) {
    lc_max = std::max(lc_max, ls->cand[l]->size());
  }

  const size_t cols = lc_max * width;
  if (ls->ids.size() < cols) {
    ls->ids.resize(cols);
    ls->ins_col.resize(cols);
    ls->pad_or.resize(cols);
  }
  const size_t row_elems = 2 * (lc_max + 1) * width;
  if (ls->rows.size() < row_elems) ls->rows.resize(row_elems);
  const size_t slots = std::min(lp, static_cast<size_t>(QuantizedCostModel::kP));
  if (ls->stripes.size() < slots * lc_max * width) {
    ls->stripes.resize(slots * lc_max * width);
  }
  ls->stripe_slot.fill(0xFF);

  // Transpose candidates into lane-major columns. Pad lanes and a
  // lane's columns past its own length get id 0, a saturated insert
  // cost, and the kSat pad mask.
  for (size_t j = 0; j < lc_max; ++j) {
    uint8_t* idp = ls->ids.data() + j * width;
    uint16_t* inp = ls->ins_col.data() + j * width;
    uint16_t* pop = ls->pad_or.data() + j * width;
    for (uint32_t l = 0; l < width; ++l) {
      if (l < active && j < ls->cand[l]->size()) {
        const uint8_t id = ls->cand[l]->ids()[j];
        idp[l] = id;
        inp[l] = q.ins[id];
        pop[l] = 0;
      } else {
        idp[l] = 0;
        inp[l] = QuantizedCostModel::kSat;
        pop[l] = QuantizedCostModel::kSat;
      }
    }
  }
  for (uint32_t l = 0; l < width; ++l) {
    ls->lc[l] =
        l < active ? static_cast<uint16_t>(ls->cand[l]->size()) : uint16_t{0};
    if (l >= active) ls->bounds[l] = 0;  // pad lanes can never match
  }

  LaneGroup g;
  g.q = &q;
  g.probe = probe;
  g.lp = lp;
  g.width = width;
  g.active = active;
  g.lc_max = lc_max;
  g.ids = ls->ids.data();
  g.ins_col = ls->ins_col.data();
  g.pad_or = ls->pad_or.data();
  g.bounds = ls->bounds.data();
  g.lc = ls->lc.data();
  g.rows = ls->rows.data();
  g.stripes = ls->stripes.data();
  g.stripe_slot = ls->stripe_slot.data();
  g.dist_q = ls->dist.data();
  g.cells = &counters->simd_cells;
  g.early_exit_lanes = &counters->simd_early_exits;
  ++counters->simd_groups;
  fn(g);
}

}  // namespace lexequal::match
