#include "match/qgram.h"

#include <algorithm>
#include <cassert>

#include "obs/metrics.h"

namespace lexequal::match {

std::vector<PositionalQGram> PositionalQGrams(
    const phonetic::PhonemeString& s, int q) {
  assert(q >= 1 && q <= kMaxQ);
  const auto& ph = s.phonemes();
  const size_t n = ph.size();
  const size_t padded = n + 2 * (q - 1);

  // Symbol at padded index i.
  auto symbol_at = [&](size_t i) -> uint8_t {
    if (i < static_cast<size_t>(q - 1)) return kQGramStartSymbol;
    const size_t body = i - (q - 1);
    if (body < n) return static_cast<uint8_t>(ph[body]);
    return kQGramEndSymbol;
  };

  std::vector<PositionalQGram> out;
  if (padded < static_cast<size_t>(q)) return out;
  out.reserve(padded - q + 1);
  for (size_t start = 0; start + q <= padded; ++start) {
    uint64_t gram = 0;
    for (int j = 0; j < q; ++j) {
      gram = (gram << 8) | symbol_at(start + j);
    }
    out.push_back({static_cast<uint32_t>(start + 1), gram});
  }
  return out;
}

void SortQGrams(std::vector<PositionalQGram>* grams) {
  std::sort(grams->begin(), grams->end(),
            [](const PositionalQGram& x, const PositionalQGram& y) {
              if (x.gram != y.gram) return x.gram < y.gram;
              return x.pos < y.pos;
            });
}

int CountCloseMatches(const std::vector<PositionalQGram>& a,
                      const std::vector<PositionalQGram>& b, double k) {
  int count = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i].gram < b[j].gram) {
      ++i;
    } else if (a[i].gram > b[j].gram) {
      ++j;
    } else {
      // Runs of equal grams: count cross pairs within k positions.
      const uint64_t gram = a[i].gram;
      size_t ie = i;
      while (ie < a.size() && a[ie].gram == gram) ++ie;
      size_t je = j;
      while (je < b.size() && b[je].gram == gram) ++je;
      for (size_t x = i; x < ie; ++x) {
        for (size_t y = j; y < je; ++y) {
          const double diff =
              a[x].pos > b[y].pos
                  ? static_cast<double>(a[x].pos - b[y].pos)
                  : static_cast<double>(b[y].pos - a[x].pos);
          if (diff <= k) ++count;
        }
      }
      i = ie;
      j = je;
    }
  }
  return count;
}

QGramProbe BuildQGramProbe(const phonetic::PhonemeString& s, int q) {
  static obs::Counter* builds =
      obs::MetricsRegistry::Default().GetCounter(
          "lexequal_qgram_probe_builds",
          "Probe q-gram multisets computed (one per query)");
  builds->Inc();
  QGramProbe probe;
  probe.q = q;
  probe.length = s.size();
  probe.grams = PositionalQGrams(s, q);
  return probe;
}

bool PassesQGramFilters(const phonetic::PhonemeString& a,
                        const phonetic::PhonemeString& b, double k,
                        int q) {
  if (!PassesLengthFilter(a.size(), b.size(), k)) return false;
  const double required = CountFilterMinMatches(a.size(), b.size(), k, q);
  if (required <= 0) return true;  // count filter cannot reject
  std::vector<PositionalQGram> ga = PositionalQGrams(a, q);
  std::vector<PositionalQGram> gb = PositionalQGrams(b, q);
  SortQGrams(&ga);
  SortQGrams(&gb);
  return CountCloseMatches(ga, gb, k) >= required;
}

}  // namespace lexequal::match
