// MatchStats: per-query execution counters for the batch/parallel
// LexEQUAL path, the observability companion of the paper's Tables
// 1–3 (which report only wall time). Where QueryStats counts what the
// *plan* did (rows scanned, UDF calls), MatchStats breaks down what
// the *matcher* did with those rows: how many were rejected by the
// cheap filters before the DP ran, how many DP evaluations survived,
// and how often the phoneme cache saved a conversion.

#ifndef LEXEQUAL_MATCH_MATCH_STATS_H_
#define LEXEQUAL_MATCH_MATCH_STATS_H_

#include <cstdint>
#include <cstdio>
#include <string>

namespace lexequal::match {

/// Counters for one batch-match invocation (or the merged sum over
/// one query's invocations). Plain aggregable integers; workers keep
/// a private copy and the driver Merge()s them, so no atomics are
/// needed on the hot path.
struct MatchStats {
  uint64_t tuples_scanned = 0;     // candidates offered to the matcher
  uint64_t filter_rejections = 0;  // dropped by length/q-gram filters
  uint64_t dp_evaluations = 0;     // clustered-cost DP runs
  uint64_t matches = 0;            // candidates accepted
  uint64_t cache_hits = 0;         // phoneme-cache hits this query
  uint64_t cache_misses = 0;       // phoneme-cache misses this query
  // Kernel-path breakdown (match_kernel.h): which algorithm decided
  // the dp_evaluations above, and how many DP cells the non-bit-
  // parallel paths actually computed.
  uint64_t kernel_bitparallel = 0;  // pairs via the Myers bit kernel
  uint64_t kernel_simd = 0;         // pairs via the SIMD lane path
  uint64_t kernel_banded = 0;       // pairs via the banded DP
  uint64_t kernel_general = 0;      // pairs via the general full DP
  uint64_t dp_cells = 0;            // banded+general DP cells computed
  uint64_t simd_cells = 0;          // lane DP cells (incl. pad lanes)
  uint32_t threads_used = 0;       // worker threads (0 = serial path)
  double wall_ms = 0.0;            // matcher wall-clock

  /// Sums the counters of `other` into this (threads_used takes the
  /// max, wall_ms the sum — workers run concurrently but the driver
  /// times the whole batch, so it overwrites wall_ms afterwards).
  void Merge(const MatchStats& other) {
    tuples_scanned += other.tuples_scanned;
    filter_rejections += other.filter_rejections;
    dp_evaluations += other.dp_evaluations;
    matches += other.matches;
    cache_hits += other.cache_hits;
    cache_misses += other.cache_misses;
    kernel_bitparallel += other.kernel_bitparallel;
    kernel_simd += other.kernel_simd;
    kernel_banded += other.kernel_banded;
    kernel_general += other.kernel_general;
    dp_cells += other.dp_cells;
    simd_cells += other.simd_cells;
    if (other.threads_used > threads_used) {
      threads_used = other.threads_used;
    }
    wall_ms += other.wall_ms;
  }

  double cache_hit_rate() const {
    const uint64_t total = cache_hits + cache_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(cache_hits) /
                            static_cast<double>(total);
  }

  /// Name of the kernel path that decided most pairs this query
  /// ("bitparallel" / "simd" / "banded" / "general"), or "none"
  /// before any DP ran. Surfaced by EXPLAIN ANALYZE and \stats.
  const char* DominantKernel() const {
    const uint64_t counts[4] = {kernel_bitparallel, kernel_simd,
                                kernel_banded, kernel_general};
    static constexpr const char* kNames[4] = {"bitparallel", "simd",
                                              "banded", "general"};
    uint64_t total = 0;
    int best = 0;
    for (int i = 0; i < 4; ++i) {
      total += counts[i];
      if (counts[i] > counts[best]) best = i;
    }
    return total == 0 ? "none" : kNames[best];
  }

  /// One-line rendering for shells and benches, e.g.
  /// "scanned=200466 filtered=182031 dp=18435 matched=12
  ///  cache=1020/3 (99.7% hit) kernel=banded cells=812k threads=4
  ///  wall=41.2ms".
  std::string ToString() const {
    char buf[320];
    std::snprintf(buf, sizeof(buf),
                  "scanned=%llu filtered=%llu dp=%llu matched=%llu "
                  "cache=%llu/%llu (%.1f%% hit) kernel=%s cells=%llu "
                  "threads=%u wall=%.1fms",
                  static_cast<unsigned long long>(tuples_scanned),
                  static_cast<unsigned long long>(filter_rejections),
                  static_cast<unsigned long long>(dp_evaluations),
                  static_cast<unsigned long long>(matches),
                  static_cast<unsigned long long>(cache_hits),
                  static_cast<unsigned long long>(cache_misses),
                  100.0 * cache_hit_rate(), DominantKernel(),
                  static_cast<unsigned long long>(dp_cells), threads_used,
                  wall_ms);
    std::string out(buf);
    if (simd_cells > 0) {
      std::snprintf(buf, sizeof(buf), " simd_cells=%llu",
                    static_cast<unsigned long long>(simd_cells));
      out += buf;
    }
    return out;
  }
};

}  // namespace lexequal::match

#endif  // LEXEQUAL_MATCH_MATCH_STATS_H_
