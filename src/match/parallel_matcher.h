// ParallelMatcher: batch evaluation of one LexEQUAL probe against
// many candidate phoneme strings, partitioned across a small fixed
// pool of std::threads.
//
// This is the scan-side answer to the paper's Table 1 problem: the
// naive UDF plan runs the clustered-cost DP once per tuple, single
// threaded. The batch matcher (a) applies the cheap filters first —
// the weighted length filter, and the q-gram count/position filter of
// §5.2 when it can reject — so most tuples never reach the DP, and
// (b) splits the candidate array into contiguous per-thread chunks.
//
// Determinism contract: the result is the ascending list of matching
// candidate indices, bit-identical to the serial loop
//
//   for i in 0..n: if matcher.MatchPhonemes(query, cand[i]) keep i
//
// for every thread count, because (1) chunks are contiguous and
// concatenated in chunk order, and (2) every filter is lossless with
// respect to the *weighted* distance: a candidate is only skipped
// when a lower bound on its distance already exceeds the allowance.
// (The engine's q-gram access path uses sharper but lossy unit-cost
// filters; here losslessness is required so `USING parallel` returns
// exactly what `USING naive` does.)
//
// Thread-safety: Match* methods are const and reentrant. The borrowed
// LexEqualMatcher and PhonemeCache must outlive the ParallelMatcher;
// the matcher is read-only shared state, the cache synchronizes
// internally.

#ifndef LEXEQUAL_MATCH_PARALLEL_MATCHER_H_
#define LEXEQUAL_MATCH_PARALLEL_MATCHER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "match/lexequal.h"
#include "match/match_stats.h"
#include "match/phoneme_cache.h"

namespace lexequal::match {

/// Knobs of the batch/parallel scan path.
struct ParallelMatcherOptions {
  /// Worker threads. 0 = auto: hardware_concurrency clamped to
  /// [1, kMaxAutoThreads]. 1 runs inline in the calling thread.
  uint32_t threads = 0;
  static constexpr uint32_t kMaxAutoThreads = 8;

  /// Batches smaller than this always run inline: thread start-up
  /// costs more than the matching itself.
  size_t min_parallel_batch = 4096;

  /// q for the count/position prefilter; 0 disables it (the length
  /// filter always runs). The filter only engages for parameter
  /// settings where it can actually reject (unit-edit budgets small
  /// enough), so it costs nothing in the default operating region.
  int filter_q = 2;

  /// Optional phoneme cache for the IPA-parsing batch entry point;
  /// nullptr parses uncached. Borrowed, must outlive the matcher.
  /// Batches larger than the cache's capacity bypass it (an LRU
  /// repeatedly scanned with an oversized key set thrashes: ~0% hits
  /// plus eviction churn), falling back to direct parsing.
  PhonemeCache* cache = nullptr;
};

/// Runs one probe against candidate batches. Cheap to construct;
/// borrows `matcher` (and options.cache), both of which must outlive
/// this object.
class ParallelMatcher {
 public:
  explicit ParallelMatcher(const LexEqualMatcher& matcher,
                           ParallelMatcherOptions options = {});

  /// Matches `query` against already-parsed candidates. Returns the
  /// ascending indices of matches (see the determinism contract
  /// above). `stats` (optional) receives the per-batch counters;
  /// cache counters stay zero on this entry point.
  Result<std::vector<size_t>> MatchBatch(
      const phonetic::PhonemeString& query,
      const std::vector<phonetic::PhonemeString>& candidates,
      MatchStats* stats = nullptr) const;

  /// Matches `query` against IPA-encoded candidate cells (the stored
  /// form of phonemic shadow columns). Parsing happens inside the
  /// worker threads, memoized through options.cache when set — on a
  /// repeated-probe workload the second query's parses are all cache
  /// hits. Empty cells (untransformable rows) never match.
  Result<std::vector<size_t>> MatchBatchIpa(
      const phonetic::PhonemeString& query,
      const std::vector<std::string>& ipa_candidates,
      MatchStats* stats = nullptr) const;

  /// The thread count a batch of `batch_size` would use.
  uint32_t EffectiveThreads(size_t batch_size) const;

  const ParallelMatcherOptions& options() const { return options_; }

 private:
  const LexEqualMatcher& matcher_;
  ParallelMatcherOptions options_;
};

}  // namespace lexequal::match

#endif  // LEXEQUAL_MATCH_PARALLEL_MATCHER_H_
