#include "match/parallel_matcher.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <thread>

#include "match/match_kernel.h"
#include "match/qgram.h"
#include "obs/metrics.h"

namespace lexequal::match {

namespace {

using phonetic::PhonemeString;

// Fan-out metrics. The per-worker chunk histogram is what exposes
// skew: with even partitioning every chunk should land in the same
// bucket, and a fat p99 means one worker got the expensive tuples.
obs::Counter* BatchCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Default().GetCounter(
      "lexequal_parallel_batches", "ParallelMatcher batch invocations");
  return c;
}

obs::Histogram* ChunkWallHistogram() {
  static obs::Histogram* h =
      obs::MetricsRegistry::Default().GetHistogram(
          "lexequal_parallel_chunk_wall_us",
          "Per-worker chunk wall time in microseconds");
  return h;
}

// Precomputed probe-side state shared (read-only) by all workers.
struct ProbeContext {
  const PhonemeString* query;
  size_t qlen;
  // Lower bound on the weighted cost of one insert/delete.
  double min_edit;
  // Lower bound on the weighted cost of *any* single edit; 0 means
  // some edit is free and no unit-edit budget can be derived.
  double cheapest_edit;
  int filter_q;
  // Query grams in (gram, pos) order; empty when the count filter is
  // off.
  std::vector<PositionalQGram> query_grams;
};

// The lossless prefilters, shared by every plan: length filter, then
// the Fig. 14 count/position q-gram filter. Returns true when `cand`
// survives and must be verified by the kernel; updates the
// worker-local stats either way.
bool PassesPrefilters(const LexEqualMatcher& matcher,
                      const ProbeContext& ctx, const PhonemeString& cand,
                      MatchStats* stats) {
  ++stats->tuples_scanned;
  if (cand.empty() || ctx.qlen == 0) {
    ++stats->filter_rejections;
    return false;
  }
  const size_t clen = cand.size();
  const double allowance = matcher.Allowance(ctx.qlen, clen);

  // Length filter: each surplus phoneme must be inserted or deleted.
  const size_t gap = ctx.qlen > clen ? ctx.qlen - clen : clen - ctx.qlen;
  if (static_cast<double>(gap) * ctx.min_edit > allowance) {
    ++stats->filter_rejections;
    return false;
  }

  // Count/position filter (Fig. 14 semantics) on the conservative
  // unit-edit budget k = allowance / cheapest_edit. Only engage when
  // the required-match bound can reject at these lengths — for the
  // default clustered costs the budget is too lax and this stays off.
  if (ctx.filter_q > 0 && ctx.cheapest_edit > 0.0) {
    const double k_units = allowance / ctx.cheapest_edit;
    const double required =
        CountFilterMinMatches(ctx.qlen, clen, k_units, ctx.filter_q);
    if (required > 0.0) {
      std::vector<PositionalQGram> cand_grams =
          PositionalQGrams(cand, ctx.filter_q);
      SortQGrams(&cand_grams);
      const int shared =
          CountCloseMatches(ctx.query_grams, cand_grams, k_units);
      if (static_cast<double>(shared) < required) {
        ++stats->filter_rejections;
        return false;
      }
    }
  }
  return true;
}

// Per-worker verification state: survivors of the prefilters are
// collected and decided by MatchKernel::MatchBatch calls on the
// worker's private arena — zero allocations per pair. Batches are
// flushed every kVerifierFlushThreshold survivors rather than once
// per chunk: the arena scratch (and, on the MatchBatchIpa path, the
// `owned` parse pins) stays bounded on huge scans, while the batch is
// still far wider than the SIMD lane width, so the lane path keeps
// forming full-width candidate groups.
constexpr size_t kVerifierFlushThreshold = 4096;

struct ChunkVerifier {
  explicit ChunkVerifier(const LexEqualMatcher& matcher)
      : matcher(matcher) {}

  const LexEqualMatcher& matcher;
  DpArena arena;
  // Parallel vectors: candidate view + its original batch index.
  std::vector<const PhonemeString*> survivors;
  std::vector<size_t> survivor_index;
  // Keeps cache borrows / fresh parses alive until the batch runs.
  std::vector<std::shared_ptr<const PhonemeString>> owned;
  std::vector<size_t> batch_matched;

  void Add(const PhonemeString* cand, size_t index) {
    survivors.push_back(cand);
    survivor_index.push_back(index);
  }

  // Runs the batched verification, appends matched original indices
  // (ascending) to *matched, and folds kernel counters into *stats.
  // Survivors are added in ascending index order and every segment
  // flushes before later indices arrive, so the concatenation of
  // per-flush match lists stays ascending.
  void Flush(const ProbeContext& ctx, MatchStats* stats,
             std::vector<size_t>* matched) {
    stats->dp_evaluations += survivors.size();
    batch_matched.clear();
    matcher.kernel().MatchBatch(*ctx.query, survivors,
                                matcher.options().threshold, &arena,
                                &batch_matched);
    for (const size_t k : batch_matched) {
      matched->push_back(survivor_index[k]);
    }
    stats->matches += batch_matched.size();
    arena.counters.AccumulateInto(stats);
    arena.counters = KernelCounters{};
    survivors.clear();
    survivor_index.clear();
    owned.clear();
  }
};

}  // namespace

ParallelMatcher::ParallelMatcher(const LexEqualMatcher& matcher,
                                 ParallelMatcherOptions options)
    : matcher_(matcher), options_(options) {}

uint32_t ParallelMatcher::EffectiveThreads(size_t batch_size) const {
  if (batch_size < options_.min_parallel_batch) return 1;
  uint32_t n = options_.threads;
  if (n == 0) {
    n = std::thread::hardware_concurrency();
    if (n == 0) n = 1;
    n = std::min(n, ParallelMatcherOptions::kMaxAutoThreads);
  }
  // Never more threads than candidates.
  return static_cast<uint32_t>(
      std::min<size_t>(n == 0 ? 1 : n, batch_size == 0 ? 1 : batch_size));
}

namespace {

// Shared driver: partitions [0, n) into contiguous chunks, runs
// `chunk_fn(begin, end, stats, matched)` for each chunk, concatenates
// per-chunk match lists in chunk order (each chunk must append its
// matches in ascending index order). `chunk_fn` must be reentrant; it
// gets a worker-local MatchStats and returns Status.
template <typename ChunkFn>
Result<std::vector<size_t>> RunPartitioned(size_t n, uint32_t threads,
                                           ChunkFn&& chunk_fn,
                                           MatchStats* stats_out) {
  const auto start = std::chrono::steady_clock::now();
  BatchCounter()->Inc();
  std::vector<std::vector<size_t>> chunk_matches(threads);
  std::vector<MatchStats> chunk_stats(threads);
  std::vector<Status> chunk_status(threads, Status::OK());

  auto worker = [&](uint32_t t) {
    const auto chunk_start = std::chrono::steady_clock::now();
    const size_t begin = n * t / threads;
    const size_t end = n * (t + 1) / threads;
    chunk_status[t] =
        chunk_fn(begin, end, &chunk_stats[t], &chunk_matches[t]);
    // One lock-free Record per chunk, not per tuple.
    ChunkWallHistogram()->Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - chunk_start)
            .count()));
  };

  if (threads <= 1) {
    worker(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (uint32_t t = 0; t < threads; ++t) {
      pool.emplace_back(worker, t);
    }
    for (std::thread& th : pool) th.join();
  }

  for (const Status& st : chunk_status) {
    LEXEQUAL_RETURN_IF_ERROR(st);
  }

  std::vector<size_t> out;
  size_t total = 0;
  for (const auto& m : chunk_matches) total += m.size();
  out.reserve(total);
  for (const auto& m : chunk_matches) {
    out.insert(out.end(), m.begin(), m.end());
  }
  if (stats_out != nullptr) {
    for (const MatchStats& s : chunk_stats) stats_out->Merge(s);
    stats_out->threads_used = threads;
    stats_out->wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - start)
                             .count();
  }
  return out;
}

ProbeContext BuildProbeContext(const LexEqualMatcher& matcher,
                               const PhonemeString& query, int filter_q) {
  ProbeContext ctx;
  ctx.query = &query;
  ctx.qlen = query.size();
  ctx.min_edit = matcher.cost_model().MinEditCost();
  // Cheapest single edit overall: an insert/delete, or an
  // intra-cluster substitution (which MinEditCost need not cover).
  const double intra =
      std::clamp(matcher.options().intra_cluster_cost, 0.0, 1.0);
  ctx.cheapest_edit = std::min(ctx.min_edit, intra);
  ctx.filter_q = filter_q > 0 && filter_q <= kMaxQ ? filter_q : 0;
  if (ctx.filter_q > 0 && ctx.cheapest_edit > 0.0 && ctx.qlen > 0) {
    ctx.query_grams = PositionalQGrams(query, ctx.filter_q);
    SortQGrams(&ctx.query_grams);
  }
  return ctx;
}

}  // namespace

Result<std::vector<size_t>> ParallelMatcher::MatchBatch(
    const PhonemeString& query,
    const std::vector<PhonemeString>& candidates,
    MatchStats* stats) const {
  const ProbeContext ctx =
      BuildProbeContext(matcher_, query, options_.filter_q);
  const uint32_t threads = EffectiveThreads(candidates.size());
  return RunPartitioned(
      candidates.size(), threads,
      [&](size_t begin, size_t end, MatchStats* s,
          std::vector<size_t>* matched) -> Status {
        ChunkVerifier verifier(matcher_);
        for (size_t i = begin; i < end; ++i) {
          if (PassesPrefilters(matcher_, ctx, candidates[i], s)) {
            verifier.Add(&candidates[i], i);
            if (verifier.survivors.size() >= kVerifierFlushThreshold) {
              verifier.Flush(ctx, s, matched);
            }
          }
        }
        verifier.Flush(ctx, s, matched);
        return Status::OK();
      },
      stats);
}

Result<std::vector<size_t>> ParallelMatcher::MatchBatchIpa(
    const PhonemeString& query,
    const std::vector<std::string>& ipa_candidates,
    MatchStats* stats) const {
  const ProbeContext ctx =
      BuildProbeContext(matcher_, query, options_.filter_q);
  const uint32_t threads = EffectiveThreads(ipa_candidates.size());
  // Scan resistance: a batch larger than the cache cannot profit from
  // it — an LRU under repeated full scans of an oversized key set
  // yields ~0% hits while paying insert/evict churn per tuple — so
  // bypass and parse directly, which costs exactly what the naive
  // plan pays.
  PhonemeCache* cache = options_.cache;
  if (cache != nullptr && ipa_candidates.size() > cache->capacity()) {
    cache = nullptr;
  }
  const PhonemeCacheStats before =
      cache != nullptr ? cache->stats() : PhonemeCacheStats{};
  Result<std::vector<size_t>> out = RunPartitioned(
      ipa_candidates.size(), threads,
      [&](size_t begin, size_t end, MatchStats* s,
          std::vector<size_t>* matched) -> Status {
        ChunkVerifier verifier(matcher_);
        for (size_t i = begin; i < end; ++i) {
          const std::string& ipa = ipa_candidates[i];
          if (ipa.empty()) {
            ++s->tuples_scanned;
            ++s->filter_rejections;
            continue;
          }
          std::shared_ptr<const PhonemeString> cand;
          if (cache != nullptr) {
            // Allocation-free hit path: borrow the cached parse (the
            // cached PhonemeString carries its contiguous id buffer,
            // so the kernel reads it in place).
            LEXEQUAL_ASSIGN_OR_RETURN(cand, cache->ParseIpaShared(ipa));
          } else {
            PhonemeString parsed;
            LEXEQUAL_ASSIGN_OR_RETURN(parsed, PhonemeString::FromIpa(ipa));
            cand = std::make_shared<const PhonemeString>(std::move(parsed));
          }
          if (PassesPrefilters(matcher_, ctx, *cand, s)) {
            verifier.Add(cand.get(), i);
            verifier.owned.push_back(std::move(cand));
            if (verifier.survivors.size() >= kVerifierFlushThreshold) {
              verifier.Flush(ctx, s, matched);
            }
          }
        }
        verifier.Flush(ctx, s, matched);
        return Status::OK();
      },
      stats);
  if (out.ok() && stats != nullptr && cache != nullptr) {
    const PhonemeCacheStats after = cache->stats();
    stats->cache_hits += after.hits - before.hits;
    stats->cache_misses += after.misses - before.misses;
  }
  return out;
}

}  // namespace lexequal::match
