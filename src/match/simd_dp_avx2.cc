// AVX2 backend: 16 u16 lanes per __m256i. This translation unit is
// the only x86-intrinsic code in the tree (lexlint enforces that) and
// is compiled with -mavx2 *per file* (see src/match/CMakeLists.txt),
// so the rest of the binary stays baseline-portable; the kernel is
// only ever called after a runtime cpuid check (SimdBackendAvailable).

#include "match/simd_dp_lanes.h"

#if defined(LEXEQUAL_SIMD_AVX2)

#include <immintrin.h>

namespace lexequal::match::internal {

namespace {

struct VecAvx2 {
  static constexpr uint32_t kLanes = 16;
  using U16 = __m256i;
  using U8 = __m128i;
  struct Lut {
    __m128i t[4];
  };

  static U16 Splat(uint16_t x) {
    return _mm256_set1_epi16(static_cast<short>(x));
  }
  static U16 Load(const uint16_t* p) {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  }
  static void Store(uint16_t* p, U16 a) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), a);
  }
  static U8 LoadBytes(const uint8_t* p) {
    return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  }
  static void StoreBytes(uint8_t* p, U8 a) {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(p), a);
  }
  static Lut PrepareLut(const uint8_t* row64) {
    Lut l;
    for (int c = 0; c < 4; ++c) {
      l.t[c] =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(row64 + 16 * c));
    }
    return l;
  }
  // 64-entry byte table lookup from four 16-byte shuffles. For chunk
  // c the index is rebased by -16c; pshufb zeroes lanes whose rebased
  // index has the sign bit set (index below the chunk), and the
  // explicit `off < 16` mask drops lanes above it, so exactly one
  // chunk contributes per lane. Phoneme ids are < 61, so every lane
  // hits one of the four chunks.
  static U8 Lookup(const Lut& l, U8 ids) {
    __m128i r = _mm_setzero_si128();
    for (int c = 0; c < 4; ++c) {
      const __m128i off =
          _mm_sub_epi8(ids, _mm_set1_epi8(static_cast<char>(16 * c)));
      const __m128i hit = _mm_shuffle_epi8(l.t[c], off);
      const __m128i in_range = _mm_cmpgt_epi8(_mm_set1_epi8(16), off);
      r = _mm_or_si128(r, _mm_and_si128(hit, in_range));
    }
    return r;
  }
  static U16 Widen(U8 a) { return _mm256_cvtepu8_epi16(a); }
  static U16 AddSat(U16 a, U16 b) { return _mm256_adds_epu16(a, b); }
  static U16 Min(U16 a, U16 b) { return _mm256_min_epu16(a, b); }
  static U16 Or(U16 a, U16 b) { return _mm256_or_si256(a, b); }
  static U16 And(U16 a, U16 b) { return _mm256_and_si256(a, b); }
  // Unsigned u16 a <= b via min: no unsigned compare until AVX-512.
  static U16 LeMask(U16 a, U16 b) {
    return _mm256_cmpeq_epi16(_mm256_min_epu16(a, b), a);
  }
  static bool AnyNonZero(U16 a) { return _mm256_testz_si256(a, a) == 0; }
};

void LaneDpAvx2(const LaneGroup& g) { RunLaneDp<VecAvx2>(g); }

}  // namespace

LaneKernelFn GetLaneKernelAvx2() { return &LaneDpAvx2; }

}  // namespace lexequal::match::internal

#else  // !LEXEQUAL_SIMD_AVX2

namespace lexequal::match::internal {
LaneKernelFn GetLaneKernelAvx2() { return nullptr; }
}  // namespace lexequal::match::internal

#endif
