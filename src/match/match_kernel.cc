#include "match/match_kernel.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <map>
#include <string>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "match/simd_dp.h"
#include "obs/metrics.h"

namespace lexequal::match {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Path/arena counters on the process-wide registry. One relaxed
// atomic add per pair (or per arena growth) — the same budget the
// rest of the hot path already pays (see src/obs/metrics.h).
obs::Counter* BitParallelPairs() {
  static obs::Counter* c = obs::MetricsRegistry::Default().GetCounter(
      "lexequal_match_kernel_bitparallel_pairs",
      "Pairs decided by the Myers bit-parallel kernel");
  return c;
}
obs::Counter* BandedPairs() {
  static obs::Counter* c = obs::MetricsRegistry::Default().GetCounter(
      "lexequal_match_kernel_banded_pairs",
      "Pairs decided by the banded table-driven DP");
  return c;
}
obs::Counter* GeneralPairs() {
  static obs::Counter* c = obs::MetricsRegistry::Default().GetCounter(
      "lexequal_match_kernel_general_pairs",
      "Pairs decided by the general full DP");
  return c;
}
obs::Counter* DpCells() {
  static obs::Counter* c = obs::MetricsRegistry::Default().GetCounter(
      "lexequal_match_kernel_dp_cells",
      "DP cells computed by the banded/general kernel paths");
  return c;
}
obs::Counter* SimdPairs() {
  static obs::Counter* c = obs::MetricsRegistry::Default().GetCounter(
      "lexequal_match_kernel_simd_pairs",
      "Pairs decided under the SIMD lane-parallel weighted path");
  return c;
}
obs::Counter* SimdCells() {
  static obs::Counter* c = obs::MetricsRegistry::Default().GetCounter(
      "lexequal_match_kernel_simd_cells",
      "Lane DP cells computed by the SIMD path (including pad lanes)");
  return c;
}
obs::Counter* SimdGroups() {
  static obs::Counter* c = obs::MetricsRegistry::Default().GetCounter(
      "lexequal_match_kernel_simd_groups",
      "Lane groups executed by the SIMD path");
  return c;
}
obs::Counter* SimdEarlyExits() {
  static obs::Counter* c = obs::MetricsRegistry::Default().GetCounter(
      "lexequal_match_kernel_simd_early_exits",
      "Lanes retired by the row-minimum early exit before the last row");
  return c;
}
obs::Counter* ArenaReuses() {
  static obs::Counter* c = obs::MetricsRegistry::Default().GetCounter(
      "lexequal_match_kernel_arena_reuses",
      "DpArena requests served from already-grown buffers");
  return c;
}
obs::Counter* ArenaGrowths() {
  static obs::Counter* c = obs::MetricsRegistry::Default().GetCounter(
      "lexequal_match_kernel_arena_growths",
      "DpArena requests that had to grow a buffer");
  return c;
}

// First-time cost-model compiles, keyed by model parameters. The map
// is leaked intentionally: compiled models may be referenced from
// thread-local caches past static destruction order. File scope (not
// function-local statics) so the guard relationship is visible to
// the thread-safety analysis.
common::Mutex g_compile_mu;
std::map<std::string, std::shared_ptr<const CompiledCostModel>>*
    g_compile_cache GUARDED_BY(g_compile_mu) = nullptr;

}  // namespace

const char* KernelPathName(KernelPath path) {
  switch (path) {
    case KernelPath::kNone:
      return "none";
    case KernelPath::kBitParallel:
      return "bitparallel";
    case KernelPath::kSimdLanes:
      return "simd";
    case KernelPath::kBanded:
      return "banded";
    case KernelPath::kGeneral:
      return "general";
  }
  return "none";
}

// ---------------------------------------------------------------------------
// CompiledCostModel

CompiledCostModel::CompiledCostModel(const CostModel& model) {
  sub_.resize(static_cast<size_t>(kP) * kP);
  min_edit_ = model.MinEditCost();
  min_indel_ = kInf;
  for (int p = 0; p < kP; ++p) {
    const auto ph = static_cast<phonetic::Phoneme>(p);
    ins_[p] = model.InsCost(ph);
    del_[p] = model.DelCost(ph);
    min_indel_ = std::min({min_indel_, ins_[p], del_[p]});
    for (int q = 0; q < kP; ++q) {
      sub_[static_cast<size_t>(p) * kP + q] =
          model.SubCost(ph, static_cast<phonetic::Phoneme>(q));
    }
  }
  unit_ = true;
  for (int p = 0; p < kP && unit_; ++p) {
    if (ins_[p] != 1.0 || del_[p] != 1.0) unit_ = false;
    for (int q = 0; q < kP && unit_; ++q) {
      const double want = p == q ? 0.0 : 1.0;
      if (sub_[static_cast<size_t>(p) * kP + q] != want) unit_ = false;
    }
  }
  quantized_ = QuantizedCostModel::Build(*this);
}

CompiledCostModel::~CompiledCostModel() = default;

std::shared_ptr<const CompiledCostModel> CompiledCostModel::Compile(
    const CostModel& model) {
  // Key the recognized models by their parameters so e.g. the SQL UDF
  // (one LexEqualMatcher per call) never recompiles the tables.
  std::string key;
  if (dynamic_cast<const LevenshteinCost*>(&model) != nullptr) {
    key = "lev";
  } else if (const auto* c = dynamic_cast<const ClusteredCost*>(&model)) {
    char buf[96];
    std::snprintf(buf, sizeof buf, "clu:%p:%.17g:%d",
                  static_cast<const void*>(&c->clusters()),
                  c->intra_cluster_cost(),
                  c->weak_phoneme_discount() ? 1 : 0);
    key = buf;
  } else if (const auto* f = dynamic_cast<const FeatureCost*>(&model)) {
    key = f->weak_phoneme_discount() ? "feat:w" : "feat";
  }
  if (key.empty()) {
    // Unknown model type: no parameter identity to key on.
    return std::make_shared<CompiledCostModel>(model);
  }
  // Lock-free repeat path for the per-row matcher-construction
  // pattern; the mutex guards only first-time compiles per thread.
  thread_local std::string last_key;
  thread_local std::shared_ptr<const CompiledCostModel> last;
  if (last != nullptr && last_key == key) return last;

  common::MutexLock lock(&g_compile_mu);
  if (g_compile_cache == nullptr) {
    g_compile_cache = new std::map<
        std::string, std::shared_ptr<const CompiledCostModel>>();
  }
  std::shared_ptr<const CompiledCostModel>& slot =
      (*g_compile_cache)[key];
  if (slot == nullptr) slot = std::make_shared<CompiledCostModel>(model);
  last_key = key;
  last = slot;
  return slot;
}

// ---------------------------------------------------------------------------
// DpArena

DpArena::DpArena() = default;
DpArena::~DpArena() = default;

DpArena& DpArena::ThreadLocal() {
  thread_local DpArena arena;
  return arena;
}

LaneScratch& DpArena::Lanes() {
  if (lanes_ == nullptr) lanes_ = std::make_unique<LaneScratch>();
  return *lanes_;
}

double* DpArena::Grow(std::vector<double>* buf, size_t n) {
  if (buf->size() < n) {
    buf->resize(n);
    ++pending_growths_;
  } else {
    ++pending_reuses_;
  }
  return buf->data();
}

void DpArena::FlushMetrics() {
  if (pending_growths_ > 0) {
    ArenaGrowths()->Inc(pending_growths_);
    pending_growths_ = 0;
  }
  if (pending_reuses_ > 0) {
    ArenaReuses()->Inc(pending_reuses_);
    pending_reuses_ = 0;
  }
}

std::pair<double*, double*> DpArena::Rows(size_t n) {
  double* base = Grow(&rows_, 2 * n);
  return {base, base + n};
}

double* DpArena::SuffixA(size_t n) { return Grow(&suffix_a_, n); }
double* DpArena::SuffixB(size_t n) { return Grow(&suffix_b_, n); }

// ---------------------------------------------------------------------------
// MatchKernel

namespace {

// Contiguous byte view of a phoneme string (Phoneme is uint8_t-based;
// see the static_assert in phoneme_string.h).
inline const uint8_t* Ids(const phonetic::PhonemeString& s) {
  return s.ids();
}

// Myers/Hyyrö bit-parallel Levenshtein recurrence for a pattern of
// m <= 64 phonemes (already loaded into `peq`) against a text of n
// phonemes. Exact unit edit distance. MatchBatch builds `peq` once
// for a whole batch of texts; the scalar wrapper below builds and
// clears it per call.
uint64_t MyersCore(const uint64_t* peq, size_t m, const uint8_t* txt,
                   size_t n) {
  uint64_t vp = m == 64 ? ~uint64_t{0} : (uint64_t{1} << m) - 1;
  uint64_t vn = 0;
  uint64_t score = m;
  const uint64_t top = uint64_t{1} << (m - 1);
  for (size_t j = 0; j < n; ++j) {
    const uint64_t x = peq[txt[j]] | vn;
    const uint64_t d0 = (((x & vp) + vp) ^ vp) | x;
    uint64_t hp = vn | ~(d0 | vp);
    uint64_t hn = vp & d0;
    if (hp & top) {
      ++score;
    } else if (hn & top) {
      --score;
    }
    hp = (hp << 1) | 1;
    hn <<= 1;
    vp = hn | ~(d0 | hp);
    vn = hp & d0;
  }
  return score;
}

void BuildPeq(const uint8_t* pat, size_t m, uint64_t* peq) {
  for (size_t i = 0; i < m; ++i) {
    peq[pat[i]] |= uint64_t{1} << i;
  }
}

void ClearPeq(const uint8_t* pat, size_t m, uint64_t* peq) {
  for (size_t i = 0; i < m; ++i) {
    peq[pat[i]] = 0;
  }
}

// Scalar form: builds the mask table, runs the recurrence, leaves
// the table zeroed again.
uint64_t MyersDistance(const uint8_t* pat, size_t m, const uint8_t* txt,
                       size_t n, uint64_t* peq) {
  BuildPeq(pat, m, peq);
  const uint64_t score = MyersCore(peq, m, txt, n);
  ClearPeq(pat, m, peq);
  return score;
}

// Publishes a batch of arena-local counter deltas to the process
// registry: one atomic add per counter per public kernel call (or per
// whole batch), never per pair.
void FlushRegistry(const KernelCounters& d) {
  if (d.bitparallel_pairs > 0) BitParallelPairs()->Inc(d.bitparallel_pairs);
  if (d.simd_pairs > 0) SimdPairs()->Inc(d.simd_pairs);
  if (d.banded_pairs > 0) BandedPairs()->Inc(d.banded_pairs);
  if (d.general_pairs > 0) GeneralPairs()->Inc(d.general_pairs);
  if (d.dp_cells > 0) DpCells()->Inc(d.dp_cells);
  if (d.simd_cells > 0) SimdCells()->Inc(d.simd_cells);
  if (d.simd_groups > 0) SimdGroups()->Inc(d.simd_groups);
  if (d.simd_early_exits > 0) SimdEarlyExits()->Inc(d.simd_early_exits);
}

}  // namespace

double MatchKernel::DistanceImpl(const phonetic::PhonemeString& a,
                                 const phonetic::PhonemeString& b,
                                 double bound, bool bounded,
                                 DpArena* arena,
                                 const double* batch_suffix_del) const {
  const CompiledCostModel& cm = *costs_;
  const uint8_t* ia = Ids(a);
  const uint8_t* ib = Ids(b);
  const size_t la = a.size();
  const size_t lb = b.size();
  // Normalizes a bounded result to the contract: exact when <= bound,
  // exactly bound + 1.0 otherwise.
  auto norm = [&](double d) {
    return bounded && d > bound ? bound + 1.0 : d;
  };

  // Empty sides: the distance is a pure prefix sum of ins/del costs,
  // accumulated left-to-right like the reference DP's border row.
  if (la == 0 || lb == 0) {
    ++arena->counters.general_pairs;
    double d = 0.0;
    if (la == 0) {
      for (size_t j = 0; j < lb; ++j) d += cm.Ins(ib[j]);
    } else {
      for (size_t i = 0; i < la; ++i) d += cm.Del(ia[i]);
    }
    return norm(d);
  }

  // Bit-parallel fast path: exact unit Levenshtein in one 64-bit
  // block, pattern = shorter side (unit distance is symmetric).
  if (cm.IsUnit() && std::min(la, lb) <= 64) {
    ++arena->counters.bitparallel_pairs;
    const uint8_t* pat = la <= lb ? ia : ib;
    const uint8_t* txt = la <= lb ? ib : ia;
    const size_t m = std::min(la, lb);
    const size_t n = std::max(la, lb);
    if (bounded &&
        static_cast<double>(n - m) > bound) {  // length filter
      return bound + 1.0;
    }
    const uint64_t score = MyersDistance(pat, m, txt, n, arena->Peq());
    return norm(static_cast<double>(score));
  }

  // Cheap conservative length reject before any per-pair setup: each
  // surplus phoneme costs at least min_indel (tight) / min_edit
  // (legacy prune semantics), so a large enough length gap loses
  // without touching the strings.
  if (bounded) {
    const size_t gap = la > lb ? la - lb : lb - la;
    const double per_gap =
        options_.tight_prune ? cm.min_indel() : cm.min_edit();
    if (static_cast<double>(gap) * per_gap > bound) {
      ++arena->counters.banded_pairs;
      return bound + 1.0;
    }
  }

  // Weighted paths. Per-phoneme suffix min ins/del tables make the
  // length filter and the remaining-gap prune tight: the legacy prune
  // priced every remaining insert/delete at the global MinEditCost
  // (0.5 with the weak-phoneme discount) even when no remaining
  // phoneme is weak. suffix_del[i] = min del cost over a[i..), and
  // symmetrically for inserts of b.
  const double* suffix_del = nullptr;
  double* suffix_ins = nullptr;
  if (bounded) {
    const bool tight = options_.tight_prune;
    if (batch_suffix_del != nullptr) {
      // MatchBatch precomputed the probe-side table for the whole
      // batch (the probe is side `a` on every pair).
      suffix_del = batch_suffix_del;
    } else {
      double* sd = arena->SuffixA(la + 1);
      sd[la] = kInf;
      for (size_t i = la; i-- > 0;) {
        const double d = tight ? cm.Del(ia[i]) : cm.min_edit();
        sd[i] = std::min(sd[i + 1], d);
      }
      suffix_del = sd;
    }
    suffix_ins = arena->SuffixB(lb + 1);
    suffix_ins[lb] = kInf;
    for (size_t j = lb; j-- > 0;) {
      const double d = tight ? cm.Ins(ib[j]) : cm.min_edit();
      suffix_ins[j] = std::min(suffix_ins[j + 1], d);
    }
  }
  auto rem_gap = [&](size_t i, size_t j) {
    const size_t rem_a = la - i;
    const size_t rem_b = lb - j;
    if (rem_a > rem_b) {
      return static_cast<double>(rem_a - rem_b) * suffix_del[i];
    }
    if (rem_b > rem_a) {
      return static_cast<double>(rem_b - rem_a) * suffix_ins[j];
    }
    return 0.0;
  };

  if (bounded && rem_gap(0, 0) > bound) {
    ++arena->counters.banded_pairs;
    return bound + 1.0;
  }

  // Ukkonen band: a path through cell (i, j) contains at least
  // |j - i| inserts/deletes, each costing >= min_indel, so cells with
  // |j - i| > bound / min_indel cannot be on a <= bound path. The +1
  // absorbs the floor/rounding slack so the band never clips an
  // exactly-at-bound alignment.
  size_t k = std::max(la, lb);  // unbounded: full width
  if (bounded && cm.min_indel() > 0.0) {
    const double band = bound / cm.min_indel();
    if (band < static_cast<double>(k)) {
      k = static_cast<size_t>(band) + 1;
    }
  }
  if (k < std::max(la, lb)) {
    ++arena->counters.banded_pairs;
  } else {
    ++arena->counters.general_pairs;
  }

  auto [prev, cur] = arena->Rows(lb + 1);
  uint64_t cells = 0;

  // Border row 0: prefix sums of inserts, clipped to the band.
  const size_t top_hi = std::min(lb, k);
  prev[0] = 0.0;
  for (size_t j = 1; j <= top_hi; ++j) {
    prev[j] = prev[j - 1] + cm.Ins(ib[j - 1]);
    if (bounded && prev[j] > bound) prev[j] = kInf;
  }
  if (top_hi < lb) prev[top_hi + 1] = kInf;

  for (size_t i = 1; i <= la; ++i) {
    const size_t lo = i > k ? i - k : 1;
    const size_t hi = std::min(lb, i + k);
    const uint8_t ca = ia[i - 1];
    const double del_ca = cm.Del(ca);
    const double* sub_row = cm.SubRow(ca);
    double row_min;
    if (lo == 1) {
      cur[0] = prev[0] + del_ca;
      if (bounded && cur[0] > bound) cur[0] = kInf;
      row_min = cur[0];
    } else {
      cur[lo - 1] = kInf;  // left band edge
      row_min = kInf;
    }
    for (size_t j = lo; j <= hi; ++j) {
      ++cells;
      const uint8_t cb = ib[j - 1];
      const double del = prev[j] + del_ca;
      const double ins = cur[j - 1] + cm.Ins(cb);
      const double sub = prev[j - 1] + sub_row[cb];
      double v = std::min({del, ins, sub});
      if (bounded && v + rem_gap(i, j) > bound) v = kInf;
      cur[j] = v;
      if (v < row_min) row_min = v;
    }
    if (hi < lb) cur[hi + 1] = kInf;  // right band edge
    if (bounded && row_min == kInf) {
      arena->counters.dp_cells += cells;
      return bound + 1.0;  // no viable path remains
    }
    std::swap(prev, cur);
  }
  arena->counters.dp_cells += cells;
  const double result = prev[lb];
  if (result == kInf) return bound + 1.0;
  return norm(result);
}

double MatchKernel::Distance(const phonetic::PhonemeString& a,
                             const phonetic::PhonemeString& b,
                             DpArena* arena) const {
  const KernelCounters before = arena->counters;
  const double d =
      DistanceImpl(a, b, /*bound=*/0.0, /*bounded=*/false, arena);
  FlushRegistry(arena->counters.DeltaSince(before));
  arena->FlushMetrics();
  return d;
}

double MatchKernel::BoundedDistance(const phonetic::PhonemeString& a,
                                    const phonetic::PhonemeString& b,
                                    double bound, DpArena* arena) const {
  const KernelCounters before = arena->counters;
  const double d = DistanceImpl(a, b, bound, /*bounded=*/true, arena);
  FlushRegistry(arena->counters.DeltaSince(before));
  arena->FlushMetrics();
  return d;
}

void MatchKernel::MatchBatch(
    const phonetic::PhonemeString& probe,
    std::span<const phonetic::PhonemeString* const> candidates,
    double threshold, DpArena* arena,
    std::vector<size_t>* matched) const {
  // Candidates are walked in index order: batch producers materialize
  // them contiguously (dataset vectors, per-chunk survivor lists), so
  // index order is also allocation order and the hardware prefetcher
  // streams the phoneme buffers. (A length-sorted order — nicer band
  // shapes for the branch predictor — was measured and rejected: the
  // reordering turns the scan into random access and costs a cache
  // miss per pair once the batch outgrows L2.) Ascending iteration
  // also satisfies the ascending-index contract on *matched for free.
  const KernelCounters before = arena->counters;
  const CompiledCostModel& cm = *costs_;
  const size_t lp = probe.size();

  if (cm.IsUnit() && lp > 0 && lp <= 64) {
    // Batch bit-parallel: the probe is the Myers pattern for every
    // candidate (unit distance is symmetric, and the pattern only has
    // to fit the 64-bit block), so the mask table is built once for
    // the whole batch instead of per pair.
    uint64_t* peq = arena->Peq();
    const uint8_t* pp = Ids(probe);
    BuildPeq(pp, lp, peq);
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (candidates[i] == nullptr) continue;
      const phonetic::PhonemeString& cand = *candidates[i];
      const size_t lc = cand.size();
      const double bound =
          threshold * static_cast<double>(std::min(lp, lc));
      ++arena->counters.bitparallel_pairs;
      const size_t gap = lc > lp ? lc - lp : lp - lc;
      if (static_cast<double>(gap) > bound) continue;  // length filter
      const uint64_t score = MyersCore(peq, lp, Ids(cand), lc);
      if (static_cast<double>(score) <= bound) matched->push_back(i);
    }
    ClearPeq(pp, lp, peq);
  } else {
    // Batch weighted path: the probe-side suffix min-del table and
    // the per-gap reject cost are loop invariants — compute them once
    // and reject hopeless length gaps before paying the call into the
    // DP at all.
    const bool tight = options_.tight_prune;
    const uint8_t* pp = Ids(probe);
    double* probe_suffix = arena->SuffixA(lp + 1);
    probe_suffix[lp] = kInf;
    for (size_t i = lp; i-- > 0;) {
      const double d = tight ? cm.Del(pp[i]) : cm.min_edit();
      probe_suffix[i] = std::min(probe_suffix[i + 1], d);
    }
    const double per_gap = tight ? cm.min_indel() : cm.min_edit();

    // SIMD lane dispatch: when the compiled tables sit on the 1/128
    // fixed-point grid and the batch is wide enough, survivors of the
    // length filter are staged into lane groups and decided 8/16 at
    // a time (simd_dp.h proves decision parity with the scalar DP).
    // Candidates the lane path cannot take (quantized bound overflow,
    // oversized strings) flush the pending group first so *matched
    // stays ascending, then run the scalar DP inline.
    const SimdBackend backend = ResolveSimdBackend(options_.simd_backend);
    const uint32_t width = SimdLaneWidth(backend);
    const QuantizedCostModel* q =
        width > 0 ? costs_->quantized() : nullptr;
    const LaneKernelFn lane_fn =
        q != nullptr && q->valid && lp > 0 &&
                candidates.size() >= options_.simd_min_batch
            ? GetLaneKernel(backend)
            : nullptr;
    LaneScratch* ls = lane_fn != nullptr ? &arena->Lanes() : nullptr;
    auto flush_group = [&] {
      if (ls->pending == 0) return;
      MatchLanes(lane_fn, width, *q, pp, lp, ls, &arena->counters);
      for (uint32_t l = 0; l < ls->pending; ++l) {
        if (ls->dist[l] <= ls->bounds[l]) matched->push_back(ls->index[l]);
      }
      ls->pending = 0;
    };

    for (size_t i = 0; i < candidates.size(); ++i) {
      if (candidates[i] == nullptr) continue;
      const phonetic::PhonemeString& cand = *candidates[i];
      const size_t lc = cand.size();
      const double bound =
          threshold * static_cast<double>(std::min(lp, lc));
      if (lp > 0 && lc > 0) {
        const size_t gap = lc > lp ? lc - lp : lp - lc;
        if (static_cast<double>(gap) * per_gap > bound) {
          // The length filter decides the pair under whichever path
          // owns the batch, mirroring the bit-parallel branch.
          ++(ls != nullptr ? arena->counters.simd_pairs
                           : arena->counters.banded_pairs);
          continue;
        }
      }
      if (ls != nullptr) {
        const int64_t bq = QuantizeBound(bound);
        if (bq >= 0 && lc <= kMaxLaneCandLen) {
          ls->cand[ls->pending] = &cand;
          ls->index[ls->pending] = i;
          ls->bounds[ls->pending] = static_cast<uint16_t>(bq);
          ++ls->pending;
          ++arena->counters.simd_pairs;
          if (ls->pending == width) flush_group();
          continue;
        }
        flush_group();
      }
      if (DistanceImpl(probe, cand, bound, /*bounded=*/true, arena,
                       probe_suffix) <= bound) {
        matched->push_back(i);
      }
    }
    if (ls != nullptr) flush_group();
  }

  // Publish the whole batch's counters in one registry round-trip.
  FlushRegistry(arena->counters.DeltaSince(before));
  arena->FlushMetrics();
}

}  // namespace lexequal::match
