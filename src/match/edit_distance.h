// Dynamic-programming edit distance over phoneme strings — the
// `editdistance` function of the paper's Fig. 8.
//
// This is the *reference* implementation: deliberately plain, used
// as ground truth by the differential tests and by consumers that
// need the full metric (index/bktree.cc, dataset/metrics.cc).
// Execution paths verify candidates through the table-driven
// MatchKernel (match_kernel.h) instead — lexlint's `kernel` rule
// enforces that engine/sql code never calls these directly.

#ifndef LEXEQUAL_MATCH_EDIT_DISTANCE_H_
#define LEXEQUAL_MATCH_EDIT_DISTANCE_H_

#include "match/cost_model.h"
#include "phonetic/phoneme_string.h"

namespace lexequal::match {

/// Full O(|a|·|b|) DP, two-row rolling storage. Returns the weighted
/// edit distance between `a` and `b` under `costs`.
double EditDistance(const phonetic::PhonemeString& a,
                    const phonetic::PhonemeString& b,
                    const CostModel& costs);

/// Threshold variant with early exit: returns the exact distance when
/// it is <= `bound`, otherwise returns any value > `bound` (callers
/// must only compare against `bound`). Prunes cells whose best-case
/// completion already exceeds the bound, which makes the common
/// non-match case run in O(bound · min(|a|,|b|)) for unit-cost
/// models.
double BoundedEditDistance(const phonetic::PhonemeString& a,
                           const phonetic::PhonemeString& b,
                           const CostModel& costs, double bound);

}  // namespace lexequal::match

#endif  // LEXEQUAL_MATCH_EDIT_DISTANCE_H_
