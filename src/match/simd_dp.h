// SIMD lane-parallel weighted DP: the batch kernel path for compiled
// cost models the Myers bit-parallel block cannot serve.
//
// The scalar banded DP decides one (probe, candidate) pair at a time.
// This path transposes a batch of candidates into structure-of-arrays
// lanes — one probe against 8 (NEON) or 16 (AVX2 / scalar emulation)
// candidates per instruction — and advances every lane across DP rows
// together, with a per-lane early-exit mask that retires a lane as
// soon as its row minimum exceeds its threshold bound.
//
// Exactness. Costs run in 16-bit saturating fixed point on the 1/128
// grid (kScaleShift). The path only activates when every compiled
// table value is exactly representable on that grid
// (QuantizedCostModel::valid): then every DP partial sum is an exact
// integer multiple of 1/128 in both the double and the u16 arithmetic
// (sums stay far below 2^53), the quantized bound floor(bound * 128)
// is computed without rounding (a *128 only shifts the exponent), and
// saturation can only under-report values that already exceed every
// representable bound. Hence dist_q <= bound_q iff the reference
// distance <= bound, and dist_q / 128.0 equals the reference distance
// bit-for-bit whenever it is within bound — for every backend, since
// all backends instantiate the same RunLaneDp template over a vector
// trait with identical semantics (lane width only changes grouping,
// never a lane's own cells). Models off the grid (e.g. FeatureCost's
// 0.35 weights) simply keep the scalar banded path.
//
// Backend selection is a runtime decision (cpuid on x86, compile-time
// baseline on aarch64), overridable per kernel via
// MatchKernelOptions::simd_backend and process-wide via the
// LEXEQUAL_FORCE_SCALAR_SIMD environment variable (the sanitizer
// matrix uses the latter so asan/ubsan/tsan execute the lane logic on
// every host). ISA-specific code lives only in simd_dp_avx2.cc /
// simd_dp_neon.cc — the lexlint `kernel` rule rejects raw intrinsics
// anywhere else.

#ifndef LEXEQUAL_MATCH_SIMD_DP_H_
#define LEXEQUAL_MATCH_SIMD_DP_H_

#include <array>
#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "match/match_kernel.h"
#include "phonetic/phoneme_string.h"

namespace lexequal::match {

/// Widest lane count any backend uses (AVX2 and the scalar emulation
/// run 16 u16 lanes; NEON runs 8).
inline constexpr uint32_t kMaxSimdLanes = 16;

/// Longest candidate the lane path accepts; longer strings fall back
/// to the scalar banded DP. Bounds the per-arena stripe scratch at
/// kP * kMaxLaneCandLen * kMaxSimdLanes bytes (~1 MiB).
inline constexpr size_t kMaxLaneCandLen = 1024;

/// Display name ("auto", "disabled", "scalar", "avx2", "neon").
const char* SimdBackendName(SimdBackend b);

/// True when the backend's kernel is linked into this binary (the
/// AVX2 translation unit only emits code when the compiler accepts
/// -mavx2; NEON only on aarch64). Scalar emulation is always compiled.
bool SimdBackendCompiled(SimdBackend b);

/// Compiled and runnable on this machine (cpuid check for AVX2).
bool SimdBackendAvailable(SimdBackend b);

/// The backend kAuto resolves to: the best available vector ISA, the
/// scalar emulation when LEXEQUAL_FORCE_SCALAR_SIMD is set, kDisabled
/// when nothing usable is linked. Computed once per process.
SimdBackend BestSimdBackend();

/// Resolves a requested backend: kAuto -> BestSimdBackend(); an
/// explicit backend is honored only when available, else kDisabled.
SimdBackend ResolveSimdBackend(SimdBackend requested);

/// u16 lanes per vector for a concrete backend (0 for kAuto/kDisabled).
uint32_t SimdLaneWidth(SimdBackend b);

/// A CompiledCostModel snapshotted onto the 1/128 fixed-point grid.
/// `valid` is true only when the conversion is lossless: every table
/// value v satisfies v * 128 integral, sub costs fit u8 (<= 255/128),
/// ins/del fit u16. The substitution matrix is padded to 64-byte rows
/// so a row doubles as a 4x16 byte shuffle table.
struct QuantizedCostModel {
  static constexpr int kP = CompiledCostModel::kP;
  static constexpr int kRow = 64;  // padded sub row stride (LUT width)
  static constexpr int kScaleShift = 7;
  static constexpr double kScale = 128.0;
  static constexpr uint16_t kSat = 0xFFFF;  // saturating "infinity"

  bool valid = false;
  alignas(16) uint8_t sub[static_cast<size_t>(kP) * kRow] = {};
  uint16_t ins[kP] = {};
  uint16_t del[kP] = {};

  /// Snapshots `cm`; `valid` records whether the grid was lossless.
  static std::unique_ptr<QuantizedCostModel> Build(
      const CompiledCostModel& cm);
};

/// floor(bound * 128) when it is a representable lane bound, -1 when
/// the pair must stay on the scalar path. Exact: * 128 only shifts
/// the double exponent, and floor of an exact product is exact.
inline int64_t QuantizeBound(double bound) {
  if (!(bound >= 0.0)) return -1;
  const double scaled = std::floor(bound * QuantizedCostModel::kScale);
  if (scaled >= static_cast<double>(QuantizedCostModel::kSat)) return -1;
  return static_cast<int64_t>(scaled);
}

/// One transposed lane group, handed to a backend kernel. All column
/// buffers are lane-major: element (column j, lane l) lives at
/// [j * width + l]. Pad lanes (l >= active) and pad columns (j beyond
/// a lane's own length) carry kSat in pad_or so their cells saturate
/// and can never look like a match.
struct LaneGroup {
  const QuantizedCostModel* q = nullptr;
  const uint8_t* probe = nullptr;  // probe phoneme ids, length lp
  size_t lp = 0;
  uint32_t width = 0;   // backend lane count (must equal V::kLanes)
  uint32_t active = 0;  // real candidate lanes (<= width)
  size_t lc_max = 0;    // widest candidate (columns per row)

  const uint8_t* ids = nullptr;      // [lc_max * width] candidate ids
  const uint16_t* ins_col = nullptr; // [lc_max * width] per-cand ins cost
  const uint16_t* pad_or = nullptr;  // [lc_max * width] 0 or kSat
  const uint16_t* bounds = nullptr;  // [width] quantized per-lane bounds
  const uint16_t* lc = nullptr;      // [width] per-lane candidate length

  uint16_t* rows = nullptr;          // [2 * (lc_max + 1) * width] scratch
  uint8_t* stripes = nullptr;        // [min(lp,kP) * lc_max * width]
  uint8_t* stripe_slot = nullptr;    // [kP], caller-filled with 0xFF

  uint16_t* dist_q = nullptr;        // out: [width] final distances
  uint64_t* cells = nullptr;         // out: lane DP cells accumulated
  uint64_t* early_exit_lanes = nullptr;  // out: real lanes retired early
};

/// A backend kernel: runs the full lane DP for one group.
using LaneKernelFn = void (*)(const LaneGroup&);

/// The kernel for a concrete backend, nullptr when unavailable.
LaneKernelFn GetLaneKernel(SimdBackend b);

/// Reusable per-arena scratch for lane groups: the SoA buffers plus
/// the group being assembled by MatchBatch. Grown monotonically,
/// reused across groups. Not thread-safe (lives in a DpArena).
class LaneScratch {
 public:
  // SoA buffers, sized by MatchLanes per group.
  std::vector<uint8_t> ids;
  std::vector<uint8_t> stripes;
  std::vector<uint16_t> ins_col;
  std::vector<uint16_t> pad_or;
  std::vector<uint16_t> rows;
  std::array<uint8_t, QuantizedCostModel::kP> stripe_slot = {};

  // Per-lane group state (bounds/lc are kernel inputs, dist outputs).
  std::array<uint16_t, kMaxSimdLanes> bounds = {};
  std::array<uint16_t, kMaxSimdLanes> lc = {};
  std::array<uint16_t, kMaxSimdLanes> dist = {};

  // Group assembly, owned by MatchBatch: the candidate pointers and
  // original batch indices of the lanes pending a flush.
  std::array<const phonetic::PhonemeString*, kMaxSimdLanes> cand = {};
  std::array<size_t, kMaxSimdLanes> index = {};
  uint32_t pending = 0;
};

/// Runs one assembled group (ls->pending lanes, candidates/bounds
/// already staged in *ls) through `fn`: transposes the candidates
/// into the SoA buffers, pads the tail lanes, executes the lane DP,
/// and leaves per-lane quantized distances in ls->dist. A lane
/// matches iff ls->dist[l] <= ls->bounds[l]; when it matches,
/// ls->dist[l] / 128.0 is the exact reference distance. Accumulates
/// simd_groups / simd_cells / simd_early_exits into *counters (the
/// caller owns simd_pairs).
void MatchLanes(LaneKernelFn fn, uint32_t width, const QuantizedCostModel& q,
                const uint8_t* probe, size_t lp, LaneScratch* ls,
                KernelCounters* counters);

}  // namespace lexequal::match

#endif  // LEXEQUAL_MATCH_SIMD_DP_H_
