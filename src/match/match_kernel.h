// MatchKernel: the table-driven batch edit-distance kernel every
// execution path verifies candidates through.
//
// The paper's run-time half (§5) is dominated by the `editdistance`
// UDF. The reference DP (edit_distance.h) pays three virtual
// CostModel calls per cell; this kernel removes that by snapshotting
// the cost model into dense tables over the small fixed Phoneme enum
// (CompiledCostModel), then picking the cheapest algorithm the
// compiled tables admit:
//
//   unit costs, min side <= 64   -> bit-parallel (Myers 64-bit block)
//   weighted, tables on the 1/128
//   grid, batch wide enough      -> SIMD lane DP (simd_dp.h: one
//                                   probe vs 8/16 candidates per
//                                   instruction, u16 fixed point)
//   weighted + finite bound      -> banded DP (Ukkonen band from
//                                   bound / min ins-del cost)
//   otherwise                    -> general full DP, table-driven
//
// All paths are exact: the kernel returns bit-identical distances to
// the reference DP (tests/match_kernel_test.cc proves this over
// randomized pairs for every bundled cost model). Scratch memory
// lives in a caller-owned DpArena so the per-pair hot path performs
// zero heap allocations; ParallelMatcher keeps one arena per worker,
// scalar callers use DpArena::ThreadLocal().

#ifndef LEXEQUAL_MATCH_MATCH_KERNEL_H_
#define LEXEQUAL_MATCH_MATCH_KERNEL_H_

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "match/cost_model.h"
#include "match/match_stats.h"
#include "phonetic/phoneme.h"
#include "phonetic/phoneme_string.h"

namespace lexequal::match {

struct QuantizedCostModel;  // simd_dp.h: fixed-point table snapshot
class LaneScratch;          // simd_dp.h: SoA scratch for lane groups

/// Which algorithm decided a pair. Exported per pair through the
/// lexequal_match_kernel_* counters and per query through MatchStats.
enum class KernelPath : uint8_t {
  kNone,
  kBitParallel,
  kSimdLanes,
  kBanded,
  kGeneral
};

/// Display name ("bitparallel", "simd", "banded", "general", "none").
const char* KernelPathName(KernelPath path);

/// SIMD lane backend for the weighted batch path (see simd_dp.h).
/// kAuto picks the best available at runtime; kDisabled keeps every
/// pair on the scalar paths; the concrete backends exist so tests and
/// benches can force one (an unavailable backend degrades to
/// kDisabled, never to a different ISA).
enum class SimdBackend : uint8_t { kAuto, kDisabled, kScalar, kAvx2, kNeon };

/// Per-arena kernel counters. Workers accumulate these privately and
/// fold them into MatchStats at batch end — no atomics on the pair
/// path (the global registry counters are bumped separately).
struct KernelCounters {
  uint64_t bitparallel_pairs = 0;  // pairs decided by the Myers path
  uint64_t simd_pairs = 0;         // pairs decided under the lane path
  uint64_t banded_pairs = 0;       // pairs decided by the banded DP
  uint64_t general_pairs = 0;      // pairs decided by the full DP
  uint64_t dp_cells = 0;           // scalar DP cells (banded+general)
  uint64_t simd_cells = 0;         // lane DP cells (incl. pad lanes)
  uint64_t simd_groups = 0;        // lane groups executed
  uint64_t simd_early_exits = 0;   // lanes retired before the last row

  void Merge(const KernelCounters& o) {
    bitparallel_pairs += o.bitparallel_pairs;
    simd_pairs += o.simd_pairs;
    banded_pairs += o.banded_pairs;
    general_pairs += o.general_pairs;
    dp_cells += o.dp_cells;
    simd_cells += o.simd_cells;
    simd_groups += o.simd_groups;
    simd_early_exits += o.simd_early_exits;
  }

  /// This minus an earlier snapshot of the same counters.
  KernelCounters DeltaSince(const KernelCounters& before) const {
    KernelCounters d;
    d.bitparallel_pairs = bitparallel_pairs - before.bitparallel_pairs;
    d.simd_pairs = simd_pairs - before.simd_pairs;
    d.banded_pairs = banded_pairs - before.banded_pairs;
    d.general_pairs = general_pairs - before.general_pairs;
    d.dp_cells = dp_cells - before.dp_cells;
    d.simd_cells = simd_cells - before.simd_cells;
    d.simd_groups = simd_groups - before.simd_groups;
    d.simd_early_exits = simd_early_exits - before.simd_early_exits;
    return d;
  }

  void AccumulateInto(MatchStats* stats) const {
    stats->kernel_bitparallel += bitparallel_pairs;
    stats->kernel_simd += simd_pairs;
    stats->kernel_banded += banded_pairs;
    stats->kernel_general += general_pairs;
    stats->dp_cells += dp_cells;
    stats->simd_cells += simd_cells;
  }
};

/// A CostModel snapshotted into dense tables over the Phoneme enum:
/// sub[P][P] matrix plus ins[P]/del[P] vectors, the model's exact
/// MinEditCost, and the min over the ins/del tables (the band
/// derives from the latter — diagonal deviation is paid for in
/// inserts/deletes only). Values are copied verbatim (doubles, no
/// narrowing), which is what makes the kernel bit-exact against the
/// reference DP.
class CompiledCostModel {
 public:
  static constexpr int kP = phonetic::kPhonemeCount;

  /// Snapshots `model` with kP*(kP+2) virtual calls. Prefer Compile()
  /// on hot paths — it caches one compiled model per (model, params).
  explicit CompiledCostModel(const CostModel& model);
  ~CompiledCostModel();  // out-of-line: quantized_ is forward-declared

  /// Returns the cached compiled form of `model`. Recognized models
  /// (Levenshtein / Clustered / Feature) are keyed by their params and
  /// compiled once per process; unknown models compile fresh.
  static std::shared_ptr<const CompiledCostModel> Compile(
      const CostModel& model);

  double Sub(uint8_t from, uint8_t to) const {
    return sub_[static_cast<size_t>(from) * kP + to];
  }
  /// Contiguous row of the substitution matrix for `from`; the inner
  /// DP loop indexes it by the candidate-side phoneme id.
  const double* SubRow(uint8_t from) const {
    return sub_.data() + static_cast<size_t>(from) * kP;
  }
  double Ins(uint8_t p) const { return ins_[p]; }
  double Del(uint8_t p) const { return del_[p]; }

  /// The source model's exact MinEditCost().
  double min_edit() const { return min_edit_; }
  /// Min over the ins/del tables; > 0. Bounds the cost of straying
  /// one cell off the DP diagonal, hence the Ukkonen band width.
  double min_indel() const { return min_indel_; }

  /// True when the tables are exactly unit Levenshtein (all ins/del
  /// 1, sub 0 on the diagonal and 1 off it) — e.g. LevenshteinCost,
  /// or ClusteredCost with intra_cluster_cost 1 and the weak-phoneme
  /// discount off. Enables the bit-parallel path.
  bool IsUnit() const { return unit_; }

  /// The tables snapshotted onto the 1/128 fixed-point grid for the
  /// SIMD lane path; quantized()->valid is false when any value is
  /// off the grid (then the lane path is never taken). Built once at
  /// compile time, never null.
  const QuantizedCostModel* quantized() const { return quantized_.get(); }

 private:
  std::vector<double> sub_;  // kP * kP, row-major [from][to]
  std::array<double, kP> ins_;
  std::array<double, kP> del_;
  double min_edit_ = 1.0;
  double min_indel_ = 1.0;
  bool unit_ = false;
  std::unique_ptr<QuantizedCostModel> quantized_;
};

/// Reusable scratch for the kernel: DP rows, suffix min-cost tables,
/// and the Myers pattern-mask table. Grows
/// monotonically and is reused across calls (arena reuse/growth is
/// exported through lexequal_match_kernel_arena_*). Not thread-safe;
/// keep one per worker, or use ThreadLocal() from scalar paths.
class DpArena {
 public:
  DpArena();
  ~DpArena();  // out-of-line: LaneScratch is forward-declared
  DpArena(const DpArena&) = delete;
  DpArena& operator=(const DpArena&) = delete;

  /// The calling thread's arena (used by the scalar MatchPhonemes
  /// API and by the legacy reference DP).
  static DpArena& ThreadLocal();

  /// Two DP rows of `n` doubles each; contents are stale.
  std::pair<double*, double*> Rows(size_t n);
  /// Suffix min-cost tables of `n` doubles (probe / candidate side).
  double* SuffixA(size_t n);
  double* SuffixB(size_t n);
  /// The Myers pattern-mask table (kP words). The kernel clears the
  /// entries it set before returning, so the table is always zero
  /// between calls.
  uint64_t* Peq() { return peq_.data(); }

  /// Structure-of-arrays scratch for the SIMD lane path, created on
  /// first use (scalar-only workloads never pay for it).
  LaneScratch& Lanes();

  /// Kernel counters accumulated by every call through this arena.
  KernelCounters counters;

  /// Publishes the buffered arena reuse/growth counts to the process
  /// metrics registry. Called by the kernel once per public call /
  /// batch — Grow itself never touches an atomic.
  void FlushMetrics();

 private:
  double* Grow(std::vector<double>* buf, size_t n);

  uint64_t pending_reuses_ = 0;
  uint64_t pending_growths_ = 0;

  std::vector<double> rows_;      // 2 * row length
  std::vector<double> suffix_a_;
  std::vector<double> suffix_b_;
  std::array<uint64_t, CompiledCostModel::kP> peq_{};
  std::unique_ptr<LaneScratch> lanes_;
};

/// Kernel tuning knobs. `tight_prune` selects the per-phoneme
/// suffix-min remaining-gap bound (on by default); off reproduces the
/// legacy prune that priced the remaining length gap with the global
/// MinEditCost even when no remaining phoneme is that cheap. The
/// regression test shows both decide identically while the tight
/// bound visits strictly fewer cells.
struct MatchKernelOptions {
  bool tight_prune = true;

  /// Lane backend for the weighted MatchBatch path. kAuto resolves
  /// once per batch via cpuid / compile-time detection (and honors
  /// LEXEQUAL_FORCE_SCALAR_SIMD); tests force concrete backends to
  /// prove bit-identical results.
  SimdBackend simd_backend = SimdBackend::kAuto;

  /// Minimum batch size before the lane path engages; smaller batches
  /// stay on the scalar banded DP (too few candidates to fill lanes).
  uint32_t simd_min_batch = 8;
};

/// The batch-oriented, allocation-free edit-distance kernel. Holds a
/// shared immutable compiled cost model; the object itself is
/// stateless and safe to share across threads (each caller brings its
/// own DpArena).
class MatchKernel {
 public:
  explicit MatchKernel(std::shared_ptr<const CompiledCostModel> costs,
                       MatchKernelOptions options = {})
      : costs_(std::move(costs)), options_(options) {}

  const CompiledCostModel& costs() const { return *costs_; }

  /// Exact distance, no bound. Equals EditDistance(a, b, model)
  /// bit-for-bit.
  double Distance(const phonetic::PhonemeString& a,
                  const phonetic::PhonemeString& b, DpArena* arena) const;

  /// Threshold variant: returns the exact distance when it is <=
  /// `bound`, otherwise exactly `bound + 1.0`. Callers must only
  /// compare against `bound` (same contract as the reference
  /// BoundedEditDistance).
  double BoundedDistance(const phonetic::PhonemeString& a,
                         const phonetic::PhonemeString& b, double bound,
                         DpArena* arena) const;

  /// Batch decision for the LexEQUAL predicate: appends to *matched
  /// (in ascending order) every index i with
  ///   distance(probe, *candidates[i]) <= threshold * min(|probe|,
  ///   |candidates[i]|).
  /// Candidates are processed in index order (their allocation order,
  /// which streams memory sequentially); null entries never match.
  void MatchBatch(const phonetic::PhonemeString& probe,
                  std::span<const phonetic::PhonemeString* const> candidates,
                  double threshold, DpArena* arena,
                  std::vector<size_t>* matched) const;

 private:
  /// `batch_suffix_del` optionally carries a precomputed probe-side
  /// suffix min-del table (MatchBatch hoists it out of the per-pair
  /// loop); null means compute it locally.
  double DistanceImpl(const phonetic::PhonemeString& a,
                      const phonetic::PhonemeString& b, double bound,
                      bool bounded, DpArena* arena,
                      const double* batch_suffix_del = nullptr) const;

  std::shared_ptr<const CompiledCostModel> costs_;
  MatchKernelOptions options_;
};

}  // namespace lexequal::match

#endif  // LEXEQUAL_MATCH_MATCH_KERNEL_H_
