// Per-plan cost estimators for LexEQUAL access paths.
//
// These price the operators of the paper's efficiency study (Section
// 5, Tables 1-3) in abstract work units (~ one heap-tuple pull). They
// sit next to the filters they model: the q-gram candidate estimate
// reuses CountFilterMinMatches (qgram.h) so the estimator and the
// executed filter can never drift apart, and the verification
// estimate mirrors the banded table-driven DP of match_kernel.h. The engine's
// plan picker (engine/plan_picker.h) combines these with persisted
// table statistics; everything here is a pure function of its
// arguments.

#ifndef LEXEQUAL_MATCH_PLAN_COST_H_
#define LEXEQUAL_MATCH_PLAN_COST_H_

#include <cstdint>

namespace lexequal::match {

/// Cost-model constants, in units of one sequential heap-tuple pull.
/// Calibrated against bench/autoplan on the generated dataset; only
/// the *ratios* matter to plan choice.
struct PlanCostParams {
  double scan_tuple = 1.0;       // sequential heap pull + deserialize
  double rid_lookup = 4.0;       // random heap fetch for one candidate
  double btree_probe = 40.0;     // one B-Tree descent
  double posting_entry = 0.2;    // one index entry touched in a range
  double dp_cell = 0.02;         // one cell of the table-driven DP
  double invidx_posting = 0.05;  // one varint posting decoded in a
                                 // block-at-a-time inverted-list merge
                                 // (sequential, no B-Tree re-descent)
  double phoneme_parse = 0.3;    // parse one phoneme of a stored cell
  double index_plan_overhead = 300.0;  // fixed cost of any index plan
  double parallel_setup = 20000.0;     // worker-pool spin-up
  double parallel_efficiency = 0.6;    // per-thread scaling factor
  uint32_t max_useful_threads = 8;     // memory bandwidth ceiling
};

/// Cost of verifying one candidate of `cand_len` phonemes against a
/// probe of `query_len`: parsing the stored IPA cell plus the
/// table-driven DP of match_kernel.h. The kernel band derives from
/// the weighted bound over the cheapest insert/delete (~ threshold *
/// min length / min_indel unit edits each side of the diagonal); with
/// the default clustered weights (min_indel = 0.5) that is ~ 4k+1
/// columns wide, k = threshold * min length. The bit-parallel
/// unit-cost path is strictly cheaper, so this stays an upper bound.
double EstimateVerifyCost(double query_len, double cand_len,
                          double threshold,
                          const PlanCostParams& p = {});

/// Index entries touched by a q-gram probe: the padded probe carries
/// query_len + q - 1 grams, each hitting ~avg_postings_per_gram
/// entries of the covering index.
double EstimateQGramPostings(double query_len, int q,
                             double avg_postings_per_gram);

/// Candidates surviving the q-gram length/position/count filters,
/// estimated from the postings touched and the count-filter bar
/// (CountFilterMinMatches): a candidate needs `required` of its grams
/// hit, so ~postings/required candidates clear it. When the bar is <=
/// 1 the filters cannot prune and every phonemic row is a candidate.
/// Clamped to [0, nonempty_rows].
double EstimateQGramCandidates(double query_len, double avg_len,
                               double threshold, int q,
                               double postings_touched,
                               double nonempty_rows);

/// Postings decoded by an inverted-index merge of the probe's grams:
/// the padded probe carries query_len + q - 1 grams (duplicates share
/// a list, but the estimate ignores that), each list holding
/// ~avg_postings_per_list *document* entries. Unlike
/// EstimateQGramPostings this counts docs-per-list, not positional
/// grams, so the same stats table feeds both without double counting.
double EstimateInvidxPostings(double query_len, int q,
                              double avg_postings_per_list);

/// Effective speedup of the parallel scan for a thread-count hint
/// (0 = hardware concurrency), after the per-thread efficiency
/// discount. Never below 1.
double EstimateParallelSpeedup(uint32_t threads_hint,
                               const PlanCostParams& p = {});

}  // namespace lexequal::match

#endif  // LEXEQUAL_MATCH_PLAN_COST_H_
