// Per-plan cost estimators for LexEQUAL access paths.
//
// These price the operators of the paper's efficiency study (Section
// 5, Tables 1-3) in abstract work units (~ one heap-tuple pull). They
// sit next to the filters they model: the q-gram candidate estimate
// reuses CountFilterMinMatches (qgram.h) so the estimator and the
// executed filter can never drift apart, and the verification
// estimate mirrors the banded table-driven DP of match_kernel.h. The engine's
// plan picker (engine/plan_picker.h) combines these with persisted
// table statistics; everything here is a pure function of its
// arguments.

#ifndef LEXEQUAL_MATCH_PLAN_COST_H_
#define LEXEQUAL_MATCH_PLAN_COST_H_

#include <cstdint>

namespace lexequal::match {

/// Which MatchKernel path will verify candidates, for pricing. The
/// per-cell constants differ by an order of magnitude between the
/// scalar banded DP and the bit-parallel / SIMD lane paths, so
/// pricing every model at the banded rate over-priced exactly the
/// weighted-model scans the lane path now accelerates.
enum class VerifyPath : uint8_t {
  kBitParallel,  // unit costs, min side <= 64: Myers word ops
  kSimdLanes,    // 1/128-grid tables + vector ISA: lane DP
  kBanded,       // weighted scalar DP, Ukkonen band
  kGeneral,      // weighted scalar DP, full width
};

/// Cost-model constants, in units of one sequential heap-tuple pull.
/// Calibrated against bench/autoplan and bench/kernel_speedup on the
/// generated dataset; only the *ratios* matter to plan choice.
struct PlanCostParams {
  double scan_tuple = 1.0;       // sequential heap pull + deserialize
  double rid_lookup = 4.0;       // random heap fetch for one candidate
  double btree_probe = 40.0;     // one B-Tree descent
  double posting_entry = 0.2;    // one index entry touched in a range
  double dp_cell = 0.02;         // one cell of the scalar banded /
                                 // general table-driven DP
  double dp_cell_simd = 0.006;   // one lane-DP cell amortized over the
                                 // 8/16-wide vector (kernel_speedup:
                                 // ~3.3x under the scalar cell)
  double dp_cell_bitparallel = 0.005;  // one Myers word op (priced per
                                       // text phoneme, not per cell)
  double invidx_posting = 0.05;  // one varint posting decoded in a
                                 // block-at-a-time inverted-list merge
                                 // (sequential, no B-Tree re-descent)
  double phoneme_parse = 0.3;    // parse one phoneme of a stored cell
  double index_plan_overhead = 300.0;  // fixed cost of any index plan
  double parallel_setup = 20000.0;     // worker-pool spin-up
  double parallel_efficiency = 0.6;    // per-thread scaling factor
  uint32_t max_useful_threads = 8;     // memory bandwidth ceiling
};

/// The kernel path MatchBatch will take for a clustered cost model
/// with these options, mirroring the dispatch in match_kernel.cc:
/// exactly-unit tables with the probe inside the 64-bit block go
/// bit-parallel; tables on the 1/128 fixed-point grid go to the SIMD
/// lane path when this host resolves a real vector ISA (the scalar
/// emulation exists for coverage, not speed, so grid models without
/// an ISA — and off-grid models everywhere — price as banded). Pure
/// in its arguments except for the process-constant backend probe.
VerifyPath ClassifyVerifyPath(double query_len, double intra_cluster_cost,
                              bool weak_phoneme_discount);

/// Cost of verifying one candidate of `cand_len` phonemes against a
/// probe of `query_len`: parsing the stored IPA cell plus the
/// table-driven DP of match_kernel.h, priced per path.
///
///   kBanded       dp_cell * shorter * band; the band derives from
///                 the weighted bound over the cheapest insert/delete
///                 (~ threshold * min length / min_indel unit edits
///                 each side of the diagonal: ~4k+1 columns with the
///                 default clustered weights)
///   kGeneral      dp_cell over the full shorter * (longer+1) matrix
///   kSimdLanes    dp_cell_simd over the full shorter * longer matrix
///                 (the lane path runs unbanded; the vector width and
///                 row-minimum early exit are folded into the cheaper
///                 per-cell constant)
///   kBitParallel  dp_cell_bitparallel * longer word ops
///
/// The default path keeps the historical banded pricing so existing
/// callers are unchanged.
double EstimateVerifyCost(double query_len, double cand_len,
                          double threshold,
                          const PlanCostParams& p = {},
                          VerifyPath path = VerifyPath::kBanded);

/// Index entries touched by a q-gram probe: the padded probe carries
/// query_len + q - 1 grams, each hitting ~avg_postings_per_gram
/// entries of the covering index.
double EstimateQGramPostings(double query_len, int q,
                             double avg_postings_per_gram);

/// Candidates surviving the q-gram length/position/count filters,
/// estimated from the postings touched and the count-filter bar
/// (CountFilterMinMatches): a candidate needs `required` of its grams
/// hit, so ~postings/required candidates clear it. When the bar is <=
/// 1 the filters cannot prune and every phonemic row is a candidate.
/// Clamped to [0, nonempty_rows].
double EstimateQGramCandidates(double query_len, double avg_len,
                               double threshold, int q,
                               double postings_touched,
                               double nonempty_rows);

/// Postings decoded by an inverted-index merge of the probe's grams:
/// the padded probe carries query_len + q - 1 grams (duplicates share
/// a list, but the estimate ignores that), each list holding
/// ~avg_postings_per_list *document* entries. Unlike
/// EstimateQGramPostings this counts docs-per-list, not positional
/// grams, so the same stats table feeds both without double counting.
double EstimateInvidxPostings(double query_len, int q,
                              double avg_postings_per_list);

/// Effective speedup of the parallel scan for a thread-count hint
/// (0 = hardware concurrency), after the per-thread efficiency
/// discount. Never below 1.
double EstimateParallelSpeedup(uint32_t threads_hint,
                               const PlanCostParams& p = {});

}  // namespace lexequal::match

#endif  // LEXEQUAL_MATCH_PLAN_COST_H_
