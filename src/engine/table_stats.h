// TableStats: optimizer statistics collected by ANALYZE and persisted
// through the catalog snapshot.
//
// One scan of the table heap summarizes, per phonemic column, the
// quantities each access path's cost depends on: how many rows carry
// phonemes at all (naive/parallel verification volume), the average
// phonemic length (DP cost per verification), the grouped
// phonetic-key fanout (phonetic-index candidate count, paper §5.3),
// and the q-gram posting density (q-gram probe volume, paper §5.2).
//
// Stats are advisory: a database written before they existed (or one
// never ANALYZEd) simply reports analyzed = false and the planner
// falls back to a documented heuristic (see engine/plan_picker.h).

#ifndef LEXEQUAL_ENGINE_TABLE_STATS_H_
#define LEXEQUAL_ENGINE_TABLE_STATS_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "engine/value.h"

namespace lexequal::engine {

/// Statistics for one phonemic (IPA shadow) column.
struct PhonemicColumnStats {
  uint32_t column = 0;            // ordinal of the phonemic column
  uint64_t nonempty_rows = 0;     // rows with a non-empty phonemic cell
  uint64_t total_phonemes = 0;    // sum of phonemic lengths
  uint64_t max_phonemes = 0;      // longest phonemic string
  uint64_t distinct_phonetic_keys = 0;  // grouped phoneme string ids
  uint64_t max_phonetic_fanout = 0;     // rows behind the hottest key
  uint64_t distinct_qgrams = 0;   // distinct gram codes at qgram_q
  uint64_t total_qgrams = 0;      // positional gram postings at qgram_q
  int qgram_q = 2;                // q the gram counts were taken at
  // Inverted-index shape (v2 stats; zero when no invidx exists or the
  // snapshot predates them). Postings here are docs-per-list entries,
  // not positional grams: each row contributes one posting per
  // *distinct* gram it contains.
  int invidx_q = 0;                     // q of the inverted index
  uint64_t invidx_distinct_grams = 0;   // posting lists in the index
  uint64_t invidx_total_postings = 0;   // sum of list lengths

  /// Average posting-list length of the inverted index.
  double avg_invidx_postings() const {
    return invidx_distinct_grams == 0
               ? 0.0
               : static_cast<double>(invidx_total_postings) /
                     static_cast<double>(invidx_distinct_grams);
  }

  double avg_phonemes() const {
    return nonempty_rows == 0
               ? 0.0
               : static_cast<double>(total_phonemes) /
                     static_cast<double>(nonempty_rows);
  }
  /// Average rows behind one phonetic key (candidates per index probe).
  double avg_phonetic_fanout() const {
    return distinct_phonetic_keys == 0
               ? 0.0
               : static_cast<double>(nonempty_rows) /
                     static_cast<double>(distinct_phonetic_keys);
  }
  /// Average postings behind one gram code.
  double avg_qgram_postings() const {
    return distinct_qgrams == 0
               ? 0.0
               : static_cast<double>(total_qgrams) /
                     static_cast<double>(distinct_qgrams);
  }
};

/// Per-table statistics. `analyzed` is false until ANALYZE runs (and
/// stays false for snapshots written before stats existed).
struct TableStats {
  bool analyzed = false;
  uint64_t row_count = 0;
  std::vector<PhonemicColumnStats> columns;

  /// Stats of one phonemic column, or nullptr if it was not analyzed.
  const PhonemicColumnStats* ForColumn(uint32_t column) const;

  /// Appends the stats block to a catalog snapshot record. The block
  /// is a flat run of Int64 cells: [version] and, when analyzed,
  /// [row_count, n_columns, then a fixed cell run per column]. The
  /// leading cell doubles as the format version: 0 = unanalyzed,
  /// 1 = the original 9-cell columns, 2 = 12 cells (adds the
  /// inverted-index shape). Old snapshots simply end before the block
  /// (see ReadFrom).
  void AppendTo(Tuple* record) const;

  /// Reads the stats block starting at *pos, advancing it. A record
  /// that ends before *pos (a pre-stats snapshot) yields default
  /// (unanalyzed) stats, and version-1 blocks load with zeroed
  /// inverted-index cells — the backward-compatibility paths.
  static Result<TableStats> ReadFrom(const Tuple& record, size_t* pos);
};

}  // namespace lexequal::engine

#endif  // LEXEQUAL_ENGINE_TABLE_STATS_H_
