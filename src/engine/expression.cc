#include "engine/expression.h"

namespace lexequal::engine {

namespace {

Value Bool(bool b) { return Value::Int64(b ? 1 : 0); }

bool Truthy(const Value& v) {
  switch (v.type()) {
    case ValueType::kInt64:
      return v.AsInt64() != 0;
    case ValueType::kDouble:
      return v.AsDouble() != 0.0;
    case ValueType::kString:
      return !v.AsString().empty();
  }
  return false;
}

}  // namespace

Result<Value> CompareExpr::Eval(const Tuple& tuple) const {
  Value l;
  LEXEQUAL_ASSIGN_OR_RETURN(l, left_->Eval(tuple));
  Value r;
  LEXEQUAL_ASSIGN_OR_RETURN(r, right_->Eval(tuple));
  switch (op_) {
    case CompareOp::kEq:
      return Bool(l == r);
    case CompareOp::kNe:
      return Bool(!(l == r));
    case CompareOp::kEqTextOnly:
    case CompareOp::kNeTextOnly: {
      if (l.type() != ValueType::kString ||
          r.type() != ValueType::kString) {
        const bool eq = l == r;
        return Bool(op_ == CompareOp::kEqTextOnly ? eq : !eq);
      }
      const bool eq = l.AsString().text() == r.AsString().text();
      return Bool(op_ == CompareOp::kEqTextOnly ? eq : !eq);
    }
  }
  return Status::Internal("unhandled compare op");
}

Result<Value> LogicExpr::Eval(const Tuple& tuple) const {
  Value l;
  LEXEQUAL_ASSIGN_OR_RETURN(l, left_->Eval(tuple));
  // Short-circuit where sound.
  if (op_ == LogicOp::kAnd && !Truthy(l)) return Bool(false);
  if (op_ == LogicOp::kOr && Truthy(l)) return Bool(true);
  Value r;
  LEXEQUAL_ASSIGN_OR_RETURN(r, right_->Eval(tuple));
  return Bool(Truthy(r));
}

Result<Value> NotExpr::Eval(const Tuple& tuple) const {
  Value v;
  LEXEQUAL_ASSIGN_OR_RETURN(v, child_->Eval(tuple));
  return Bool(!Truthy(v));
}

Status UdfRegistry::Register(std::string name, UdfFn fn) {
  if (udfs_.count(name) > 0) {
    return Status::AlreadyExists("UDF '" + name + "' already registered");
  }
  udfs_[std::move(name)] = std::move(fn);
  return Status::OK();
}

Result<const UdfFn*> UdfRegistry::Lookup(const std::string& name) const {
  auto it = udfs_.find(name);
  if (it == udfs_.end()) {
    return Status::NotFound("no UDF named '" + name + "'");
  }
  return &it->second;
}

Result<Value> UdfExpr::Eval(const Tuple& tuple) const {
  std::vector<Value> args;
  args.reserve(args_.size());
  for (const ExprPtr& arg : args_) {
    Value v;
    LEXEQUAL_ASSIGN_OR_RETURN(v, arg->Eval(tuple));
    args.push_back(std::move(v));
  }
  return (*fn_)(args);
}

Result<bool> EvalPredicate(const Expr& expr, const Tuple& tuple) {
  Value v;
  LEXEQUAL_ASSIGN_OR_RETURN(v, expr.Eval(tuple));
  return Truthy(v);
}

}  // namespace lexequal::engine
