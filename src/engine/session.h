// Session: the per-client half of the execution API.
//
// A Session is one client's handle onto a shared Engine: it owns the
// query-option defaults, the \stats / \trace state, and the single
// query entry point, Session::Execute(QueryRequest). Every query —
// threshold select, top-K, join, the exact baselines, EXPLAIN — is a
// QueryRequest, and everything it produces — rows, ranking, stats,
// plan choice, span tree — rides back in the QueryResult. Out-params
// are gone.
//
// Threading: a Session is single-threaded (one client, one thread).
// Concurrency comes from many sessions: Execute takes the engine
// latch shared, so any number of sessions query in parallel while
// DDL / ANALYZE / Insert (Engine methods) serialize against them.

#ifndef LEXEQUAL_ENGINE_SESSION_H_
#define LEXEQUAL_ENGINE_SESSION_H_

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "engine/engine.h"

namespace lexequal::engine {

/// One query, declaratively. Build with the static constructors and
/// adjust fields; unset `options` / `trace` fall back to the session
/// defaults, so a request carries only what the call site cares
/// about.
struct QueryRequest {
  enum class Kind {
    kThresholdSelect,  // WHERE column LexEQUAL probe [Threshold e]
    kTopK,             // ORDER BY lexsim(column, probe) LIMIT k
    kJoin,             // t1.c1 LexEQUAL t2.c2, different languages
    kExactSelect,      // WHERE column = literal (native equality)
    kExactJoin,        // text equi-join baseline (Table 1)
  };
  Kind kind = Kind::kThresholdSelect;

  std::string table;   // the (outer / left) table
  std::string column;  // the probed (outer / left) column
  std::string right_table;   // kJoin / kExactJoin only
  std::string right_column;  // kJoin / kExactJoin only

  /// The probe, in exactly one form (kThresholdSelect / kTopK):
  /// source text, G2P-transformed by Execute with the cache traffic
  /// charged to this query's stats — or pre-transformed phonemes,
  /// for callers that already hold IPA (benches, bulk dedup).
  std::optional<text::TaggedString> query_text;
  std::optional<phonetic::PhonemeString> query_phonemes;
  /// kExactSelect's comparison literal.
  std::optional<Value> literal;

  size_t k = 0;              // kTopK: result size (0 = empty result)
  uint64_t outer_limit = 0;  // joins: cap on outer rows (0 = all)

  /// EXPLAIN: resolve and price the plan choice, execute nothing.
  /// Supported for kThresholdSelect (the plans the picker owns).
  bool explain_only = false;

  /// Per-request overrides of the session defaults.
  std::optional<LexEqualQueryOptions> options;
  std::optional<bool> trace;

  /// Statement-statistics identity, set by the SQL planner at plan
  /// time (sql/fingerprint.h): the 64-bit fingerprint of the
  /// normalized statement and the normalized text itself. Left at 0,
  /// Session::Execute derives both from the request shape, so direct
  /// API callers (benches, tests) aggregate too.
  uint64_t fingerprint = 0;
  std::string statement;

  static QueryRequest ThresholdSelect(std::string table,
                                      std::string column,
                                      text::TaggedString query);
  static QueryRequest ThresholdSelectPhonemes(
      std::string table, std::string column,
      phonetic::PhonemeString phonemes);
  static QueryRequest TopK(std::string table, std::string column,
                           text::TaggedString query, size_t k);
  static QueryRequest TopKPhonemes(std::string table, std::string column,
                                   phonetic::PhonemeString phonemes,
                                   size_t k);
  static QueryRequest Join(std::string left_table,
                           std::string left_column,
                           std::string right_table,
                           std::string right_column);
  static QueryRequest ExactSelect(std::string table, std::string column,
                                  Value literal);
  static QueryRequest ExactJoin(std::string left_table,
                                std::string left_column,
                                std::string right_table,
                                std::string right_column);
};

/// Everything one query produced. Exactly one of rows / ranked /
/// pairs is populated, per the request kind; stats always is, and the
/// rest is present when the query asked for it.
struct QueryResult {
  std::vector<Tuple> rows;      // kThresholdSelect / kExactSelect
  std::vector<TopKRow> ranked;  // kTopK, best-first
  std::vector<std::pair<Tuple, Tuple>> pairs;  // join kinds

  /// Execution counters and the plan that ran (the old out-param).
  QueryStats stats;

  /// The picker's priced alternatives — set by explain_only requests
  /// (the substance of EXPLAIN's plan table).
  std::optional<PlanChoice> plan_choice;

  /// Span tree of this query, when it was traced (shared with the
  /// session's LastTrace — traces are immutable once the query ends).
  std::shared_ptr<const obs::QueryTrace> trace;
};

/// One client's execution context over a shared Engine. Create via
/// Engine::CreateSession(); the engine must outlive the session.
/// Cheap to construct and move — one per connection or thread.
class Session {
 public:
  explicit Session(Engine* engine, uint64_t id = 0)
      : engine_(engine), id_(id) {}

  /// This session's engine-assigned id (1-based for sessions from
  /// Engine::CreateSession; 0 for directly constructed ones). Slow
  /// -query log entries carry it so the DBA can attribute captures.
  uint64_t id() const { return id_; }

  /// Executes one request under the engine's shared latch. Per-query
  /// metrics are flushed to the process registry here, once; stats,
  /// plan choice, and the trace come back inside the result (and are
  /// also kept as this session's LastQueryStats / LastTrace).
  Result<QueryResult> Execute(const QueryRequest& req)
      EXCLUDES(engine_->latch_);

  Engine* engine() const { return engine_; }

  /// Session-wide option defaults, used by requests that carry none
  /// (a client's SET-style knobs: threshold, cost model, plan hint).
  const LexEqualQueryOptions& default_options() const {
    return default_options_;
  }
  void set_default_options(LexEqualQueryOptions options) {
    default_options_ = std::move(options);
  }

  /// Stats of this session's most recent executed query — the shell's
  /// \stats. Other sessions' queries never show up here.
  const QueryStats& LastQueryStats() const { return last_stats_; }

  /// Per-query tracing default (the shell's \trace on|off); a
  /// request's `trace` field overrides it for one query.
  void set_tracing(bool on) { tracing_ = on; }
  bool tracing() const { return tracing_; }

  /// Span tree of this session's most recent traced query; null when
  /// that query ran untraced (or none has run).
  const obs::QueryTrace* LastTrace() const { return last_trace_.get(); }

  /// Slow-query capture threshold in µs; 0 (the default) disables
  /// capture. While armed, every query is traced — the log must
  /// retain the span tree of a query nobody predicted would be slow —
  /// and any query at or over the threshold lands in the engine's
  /// SlowQueryLog with this session's id.
  void set_slow_query_us(uint64_t us) { slow_query_us_ = us; }
  uint64_t slow_query_us() const { return slow_query_us_; }

 private:
  // Dispatches one validated request with the latch held; root spans
  // and the G2P probe transform live here. (Session is a friend of
  // Engine, so the analysis can name the private latch directly.)
  Result<QueryResult> Dispatch(const QueryRequest& req,
                               const LexEqualQueryOptions& options,
                               QueryStats* qs, obs::QueryTrace* trace)
      REQUIRES_SHARED(engine_->latch_);

  // Records one finished query into the engine's StatementStats and,
  // when over this session's threshold, its SlowQueryLog. Called by
  // Execute strictly after the shared latch is released
  // (record-after-release; audited by the lexlint latch rule and
  // encoded here as EXCLUDES — holding the latch at this point is a
  // compile error under -Wthread-safety).
  void RecordStatement(const QueryRequest& req,
                       const LexEqualQueryOptions& options,
                       const QueryStats& qs, bool error,
                       const std::shared_ptr<const obs::QueryTrace>& trace)
      EXCLUDES(engine_->latch_);

  Engine* engine_;
  uint64_t id_ = 0;
  LexEqualQueryOptions default_options_;
  QueryStats last_stats_;
  bool tracing_ = false;
  uint64_t slow_query_us_ = 0;
  std::shared_ptr<const obs::QueryTrace> last_trace_;
};

}  // namespace lexequal::engine

#endif  // LEXEQUAL_ENGINE_SESSION_H_
