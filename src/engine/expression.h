// Expression trees evaluated over tuples, including UDF calls — the
// mechanism the paper uses to add LexEQUAL to a server that lacks it
// ("all commercial database systems allow User-defined Functions").

#ifndef LEXEQUAL_ENGINE_EXPRESSION_H_
#define LEXEQUAL_ENGINE_EXPRESSION_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/value.h"

namespace lexequal::engine {

/// Base expression. Booleans are Int64 0/1.
class Expr {
 public:
  virtual ~Expr() = default;
  virtual Result<Value> Eval(const Tuple& tuple) const = 0;
};

using ExprPtr = std::unique_ptr<Expr>;

/// References the tuple cell at a fixed ordinal (after join, ordinals
/// index the concatenated row).
class ColumnRefExpr final : public Expr {
 public:
  explicit ColumnRefExpr(uint32_t index) : index_(index) {}
  Result<Value> Eval(const Tuple& tuple) const override {
    if (index_ >= tuple.size()) {
      return Status::OutOfRange("column ordinal " +
                                std::to_string(index_) +
                                " beyond tuple width");
    }
    return tuple[index_];
  }
  uint32_t index() const { return index_; }

 private:
  uint32_t index_;
};

/// A literal.
class ConstExpr final : public Expr {
 public:
  explicit ConstExpr(Value value) : value_(std::move(value)) {}
  Result<Value> Eval(const Tuple&) const override { return value_; }
  const Value& value() const { return value_; }

 private:
  Value value_;
};

/// Comparison operators. Strings compare by (language, text) for
/// equality — the SQL:1999 binary behaviour across collations the
/// paper contrasts LexEQUAL with. kEqTextOnly ignores the tag.
enum class CompareOp { kEq, kNe, kEqTextOnly, kNeTextOnly };

class CompareExpr final : public Expr {
 public:
  CompareExpr(CompareOp op, ExprPtr left, ExprPtr right)
      : op_(op), left_(std::move(left)), right_(std::move(right)) {}
  Result<Value> Eval(const Tuple& tuple) const override;

 private:
  CompareOp op_;
  ExprPtr left_;
  ExprPtr right_;
};

/// Logical connectives (strict evaluation).
enum class LogicOp { kAnd, kOr };

class LogicExpr final : public Expr {
 public:
  LogicExpr(LogicOp op, ExprPtr left, ExprPtr right)
      : op_(op), left_(std::move(left)), right_(std::move(right)) {}
  Result<Value> Eval(const Tuple& tuple) const override;

 private:
  LogicOp op_;
  ExprPtr left_;
  ExprPtr right_;
};

class NotExpr final : public Expr {
 public:
  explicit NotExpr(ExprPtr child) : child_(std::move(child)) {}
  Result<Value> Eval(const Tuple& tuple) const override;

 private:
  ExprPtr child_;
};

/// A user-defined function: vector of argument values -> value.
using UdfFn = std::function<Result<Value>(const std::vector<Value>&)>;

/// Registry of UDFs by name (case-sensitive).
class UdfRegistry {
 public:
  Status Register(std::string name, UdfFn fn);
  Result<const UdfFn*> Lookup(const std::string& name) const;

 private:
  std::map<std::string, UdfFn> udfs_;
};

/// Calls a UDF with evaluated arguments. Borrows the registry entry;
/// the registry must outlive the expression.
class UdfExpr final : public Expr {
 public:
  UdfExpr(const UdfFn* fn, std::vector<ExprPtr> args)
      : fn_(fn), args_(std::move(args)) {}
  Result<Value> Eval(const Tuple& tuple) const override;

 private:
  const UdfFn* fn_;
  std::vector<ExprPtr> args_;
};

/// Helper: evaluates `expr` as a boolean predicate.
Result<bool> EvalPredicate(const Expr& expr, const Tuple& tuple);

}  // namespace lexequal::engine

#endif  // LEXEQUAL_ENGINE_EXPRESSION_H_
