// Catalog: in-memory metadata for tables and LexEQUAL access paths.
//
// Table data, auxiliary q-gram tables, and index pages all live in
// the page file and persist; the catalog itself (name → root page
// mappings) is process-local, matching the load-then-query shape of
// the paper's experiments.

#ifndef LEXEQUAL_ENGINE_CATALOG_H_
#define LEXEQUAL_ENGINE_CATALOG_H_

#include <map>
#include <memory>
#include <string>

#include "common/result.h"
#include "engine/table_stats.h"
#include "engine/value.h"
#include "index/btree.h"
#include "index/inverted_index.h"
#include "storage/heap_file.h"

namespace lexequal::engine {

/// A phonetic index (paper §5.3): B-Tree over the grouped phoneme
/// string identifier of one phonemic column.
struct PhoneticIndexInfo {
  uint32_t column = 0;  // ordinal of the phonemic column
  std::unique_ptr<index::BTree> btree;
};

/// A q-gram access path (paper §5.2). The paper stores an auxiliary
/// table of positional q-grams and joins through it; we realize the
/// same logical structure as a *covering* B-Tree: the key packs
/// (gram code, position, string length) and the value is the base
/// row's RID, so a probe never touches a heap page. q is limited to
/// kQGramPackMaxQ by the key packing.
struct QGramIndexInfo {
  /// Bits reserved for pos and len in the packed key.
  static constexpr int kPosBits = 8;
  static constexpr int kLenBits = 8;
  static constexpr uint64_t kPosLenMask = 0xFFFF;
  /// Max q such that the gram code fits above pos+len (8 bits/symbol).
  static constexpr int kQGramPackMaxQ = 6;

  /// Packs one positional gram; pos/len clamp at 255 (the filters
  /// treat 255 as "at least 255" and pass conservatively).
  static uint64_t PackKey(uint64_t gram, uint32_t pos, size_t len) {
    const uint64_t p = pos > 255 ? 255 : pos;
    const uint64_t l = len > 255 ? 255 : len;
    return (gram << 16) | (p << 8) | l;
  }
  static uint64_t GramOf(uint64_t key) { return key >> 16; }
  static uint32_t PosOf(uint64_t key) {
    return static_cast<uint32_t>((key >> 8) & 0xFF);
  }
  static size_t LenOf(uint64_t key) {
    return static_cast<size_t>(key & 0xFF);
  }

  uint32_t column = 0;  // ordinal of the phonemic column
  int q = 2;
  std::unique_ptr<index::BTree> btree;
};

/// The q-gram inverted index (index/inverted_index.h): delta-encoded
/// posting lists with skip blocks over one phonemic column's grams.
/// Docids are packed RIDs ((page_id << 16) | slot), increasing under
/// the append-only heap. min_len/max_len bound the indexed phoneme
/// lengths — the top-K exactness check maximizes its score bound over
/// this range, so they must cover every indexed row (they are
/// maintained on insert and persisted with the snapshot).
struct InvertedIndexInfo {
  static uint64_t PackDocid(const storage::RID& rid) {
    return (static_cast<uint64_t>(rid.page_id) << 16) |
           static_cast<uint64_t>(rid.slot);
  }
  static storage::RID UnpackDocid(uint64_t docid) {
    return storage::RID{static_cast<storage::PageId>(docid >> 16),
                        static_cast<uint16_t>(docid & 0xFFFF)};
  }

  uint32_t column = 0;  // ordinal of the phonemic column
  int q = 2;
  std::unique_ptr<index::InvertedIndex> index;
  uint64_t indexed_rows = 0;
  uint32_t min_len = 0;  // shortest indexed phoneme string (0 = none)
  uint32_t max_len = 0;  // longest indexed phoneme string
};

/// One table: schema + heap + optional LexEQUAL access paths.
struct TableInfo {
  std::string name;
  Schema schema;
  std::unique_ptr<storage::HeapFile> heap;
  std::unique_ptr<PhoneticIndexInfo> phonetic_index;
  std::unique_ptr<QGramIndexInfo> qgram_index;
  std::unique_ptr<InvertedIndexInfo> inverted_index;
  /// Optimizer statistics from the last ANALYZE (unanalyzed default
  /// until one runs); persisted through the catalog snapshot.
  TableStats stats;
};

/// Name → table registry.
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  Status AddTable(std::unique_ptr<TableInfo> table);
  Result<TableInfo*> GetTable(const std::string& name) const;
  bool HasTable(const std::string& name) const {
    return tables_.count(name) > 0;
  }
  std::vector<std::string> TableNames() const;

 private:
  std::map<std::string, std::unique_ptr<TableInfo>> tables_;
};

}  // namespace lexequal::engine

#endif  // LEXEQUAL_ENGINE_CATALOG_H_
