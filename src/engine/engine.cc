#include "engine/engine.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <unordered_map>
#include <unordered_set>

#include "phonetic/phonetic_key.h"

namespace lexequal::engine {

namespace {

using phonetic::PhonemeString;
using storage::RID;

// Catalog snapshot format. v1 records ended after the q-gram block;
// v2 appends the table-stats block (engine/table_stats.h) and widens
// the version marker to [version, format]; v3 appends the
// inverted-index block after the stats block. The loader is
// structural — it reads whatever blocks are present — so the number
// is persisted for diagnostics and future migrations rather than
// branched on.
constexpr int64_t kCatalogFormatVersion = 3;

// Finds the phonemic shadow column of `source_col`: either a column
// declared with phonemic_source = source_col (engine-derived on
// insert) or, failing that, a string column named "<source>_phon"
// (caller-materialized phonemes, e.g. bulk loads that concatenate in
// phoneme space).
Result<uint32_t> PhonemicColumnOf(const Schema& schema,
                                  uint32_t source_col) {
  for (size_t i = 0; i < schema.size(); ++i) {
    if (schema.column(i).phonemic_source.has_value() &&
        *schema.column(i).phonemic_source == source_col) {
      return static_cast<uint32_t>(i);
    }
  }
  const std::string by_name = schema.column(source_col).name + "_phon";
  for (size_t i = 0; i < schema.size(); ++i) {
    if (schema.column(i).name == by_name &&
        schema.column(i).type == ValueType::kString) {
      return static_cast<uint32_t>(i);
    }
  }
  return Status::NotFound(
      "column '" + schema.column(source_col).name +
      "' has no phonemic shadow column; declare one in the schema");
}

// Parses a row's stored phonemic cell. Empty cells (untransformable
// rows) yield an empty phoneme string.
Result<PhonemeString> RowPhonemes(const Tuple& row, uint32_t phon_col) {
  const Value& cell = row[phon_col];
  if (cell.type() != ValueType::kString) {
    return Status::Corruption("phonemic column is not a string");
  }
  if (cell.AsString().text().empty()) return PhonemeString();
  return PhonemeString::FromIpa(cell.AsString().text());
}

// Feeds one row into a table's inverted index, maintaining the
// indexed-rows count and the length bounds the top-K exactness check
// depends on. Docids are packed RIDs, increasing under the
// append-only heap, which keeps posting lists sorted on append.
Status AddToInvertedIndex(InvertedIndexInfo* ii,
                          const PhonemeString& phon, RID rid) {
  if (phon.empty()) return Status::OK();
  LEXEQUAL_RETURN_IF_ERROR(
      ii->index->Add(InvertedIndexInfo::PackDocid(rid),
                     match::PositionalQGrams(phon, ii->q),
                     static_cast<uint32_t>(phon.size())));
  const uint32_t len = static_cast<uint32_t>(phon.size());
  ++ii->indexed_rows;
  ii->min_len = ii->indexed_rows == 1 ? len : std::min(ii->min_len, len);
  ii->max_len = std::max(ii->max_len, len);
  return Status::OK();
}

// Process-wide engine counters. QueryStats / MatchStats stay the
// per-query ground truth; one FlushQueryStats call per public query
// entry point folds them into the registry, so every plan — serial or
// parallel — feeds the same lexequal_query_* / lexequal_match_*
// series (the counter-drift fix: the sequential paths used to leave
// the match breakdown empty).
struct EngineCounters {
  obs::Counter* query_total;
  obs::Counter* rows_scanned;
  obs::Counter* udf_calls;
  obs::Counter* results;
  obs::Histogram* query_wall_us;
  obs::Counter* match_tuples;
  obs::Counter* match_filtered;
  obs::Counter* match_dp;
  obs::Counter* match_matches;
  obs::Counter* qgram_probes;
  obs::Counter* qgram_postings;
  obs::Counter* qgram_candidates;
  obs::Counter* phonetic_probes;
  obs::Counter* phonetic_candidates;
  obs::Counter* invidx_probes;
  obs::Counter* invidx_postings;
  obs::Counter* invidx_postings_skipped;
  obs::Counter* invidx_blocks_skipped;
  obs::Counter* invidx_candidates;
  obs::Counter* invidx_early_terminations;
  obs::Counter* invidx_restarts;
  obs::Counter* invidx_fallback_scans;

  static const EngineCounters& Get() {
    static const EngineCounters c = [] {
      auto& reg = obs::MetricsRegistry::Default();
      EngineCounters out;
      out.query_total = reg.GetCounter("lexequal_query_total",
                                       "Queries executed");
      out.rows_scanned = reg.GetCounter(
          "lexequal_query_rows_scanned", "Base-table rows pulled");
      out.udf_calls = reg.GetCounter("lexequal_query_udf_calls",
                                     "Exact-matcher invocations");
      out.results = reg.GetCounter("lexequal_query_results",
                                   "Rows returned to callers");
      out.query_wall_us = reg.GetHistogram(
          "lexequal_query_wall_us", "End-to-end query latency (µs)");
      out.match_tuples =
          reg.GetCounter("lexequal_match_tuples_scanned",
                         "Candidates offered to the matcher");
      out.match_filtered =
          reg.GetCounter("lexequal_match_filter_rejections",
                         "Candidates dropped by cheap filters");
      out.match_dp = reg.GetCounter("lexequal_match_dp_evaluations",
                                    "Clustered-cost DP runs");
      out.match_matches = reg.GetCounter("lexequal_match_matches",
                                         "Candidates accepted");
      out.qgram_probes = reg.GetCounter(
          "lexequal_qgram_probes", "Q-gram index range probes");
      out.qgram_postings = reg.GetCounter(
          "lexequal_qgram_postings", "Q-gram postings merged");
      out.qgram_candidates =
          reg.GetCounter("lexequal_qgram_candidates",
                         "Candidates surviving the q-gram filters");
      out.phonetic_probes = reg.GetCounter(
          "lexequal_phonetic_probes", "Phonetic B-Tree equality probes");
      out.phonetic_candidates =
          reg.GetCounter("lexequal_phonetic_candidates",
                         "RIDs returned by phonetic probes");
      out.invidx_probes = reg.GetCounter(
          "lexequal_invidx_probes",
          "Inverted-index posting lists opened");
      out.invidx_postings = reg.GetCounter(
          "lexequal_invidx_postings",
          "Inverted-index postings decoded");
      out.invidx_postings_skipped = reg.GetCounter(
          "lexequal_invidx_postings_skipped",
          "Postings bypassed via skip blocks or pruned lists");
      out.invidx_blocks_skipped = reg.GetCounter(
          "lexequal_invidx_blocks_skipped",
          "Posting blocks never decoded");
      out.invidx_candidates = reg.GetCounter(
          "lexequal_invidx_candidates",
          "Candidates produced by inverted-index merges");
      out.invidx_early_terminations = reg.GetCounter(
          "lexequal_invidx_early_terminations",
          "Top-K candidates pruned by the score upper bound");
      out.invidx_restarts = reg.GetCounter(
          "lexequal_invidx_restarts",
          "Top-K merge escalations (wider list prefix)");
      out.invidx_fallback_scans = reg.GetCounter(
          "lexequal_invidx_fallback_scans",
          "Top-K queries re-run as brute-force ranking");
      return out;
    }();
    return c;
  }
};

// Folds one inverted-index operation's counters into the query stats
// and the registry. Bumped at the call site like the q-gram counters;
// FlushQueryStats never touches these, so nothing double counts.
void FoldInvidxStats(const index::invidx::Stats& is, QueryStats* qs) {
  const EngineCounters& c = EngineCounters::Get();
  c.invidx_probes->Inc(is.lists_opened);
  c.invidx_postings->Inc(is.postings_examined);
  c.invidx_postings_skipped->Inc(is.postings_skipped);
  c.invidx_blocks_skipped->Inc(is.blocks_skipped);
  c.invidx_candidates->Inc(is.candidates);
  c.invidx_early_terminations->Inc(is.early_terminated);
  c.invidx_restarts->Inc(is.restarts);
  if (qs != nullptr) {
    qs->invidx_postings += is.postings_examined;
    qs->invidx_postings_skipped += is.postings_skipped;
    qs->invidx_blocks_skipped += is.blocks_skipped;
    qs->invidx_early_terminated += is.early_terminated;
    qs->invidx_restarts += is.restarts;
  }
}

}  // namespace

// Definitions of the Session-facing statics live here, next to the
// counter registrations they feed (EngineCounters is file-local).
void Engine::FlushQueryStats(const QueryStats& qs, uint64_t wall_us) {
  const EngineCounters& c = EngineCounters::Get();
  c.query_total->Inc();
  c.rows_scanned->Inc(qs.rows_scanned);
  c.udf_calls->Inc(qs.udf_calls);
  c.results->Inc(qs.results);
  c.query_wall_us->Record(wall_us);
  c.match_tuples->Inc(qs.match.tuples_scanned);
  c.match_filtered->Inc(qs.match.filter_rejections);
  c.match_dp->Inc(qs.match.dp_evaluations);
  c.match_matches->Inc(qs.match.matches);
}

std::unique_ptr<obs::QueryTrace> Engine::MakeEngineTrace() {
  auto& reg = obs::MetricsRegistry::Default();
  auto trace = std::make_unique<obs::QueryTrace>();
  trace->Watch("bp_hits", reg.GetCounter("lexequal_bufpool_hits"));
  trace->Watch("bp_misses", reg.GetCounter("lexequal_bufpool_misses"));
  trace->Watch("disk_reads", reg.GetCounter("lexequal_disk_reads"));
  trace->Watch("cache_hits",
               reg.GetCounter("lexequal_phoneme_cache_hits"));
  trace->Watch("cache_misses",
               reg.GetCounter("lexequal_phoneme_cache_misses"));
  return trace;
}

void QueryStats::Accumulate(const QueryStats& other) {
  rows_scanned += other.rows_scanned;
  candidates += other.candidates;
  udf_calls += other.udf_calls;
  wall_us += other.wall_us;
  invidx_postings += other.invidx_postings;
  invidx_postings_skipped += other.invidx_postings_skipped;
  invidx_blocks_skipped += other.invidx_blocks_skipped;
  invidx_early_terminated += other.invidx_early_terminated;
  invidx_restarts += other.invidx_restarts;
  invidx_fallbacks += other.invidx_fallbacks;
  results = other.results;
  plan = other.plan;
  plan_was_auto = other.plan_was_auto;
  plan_used_stats = other.plan_used_stats;
  est_cost = other.est_cost;
  est_candidates = other.est_candidates;
  match.Merge(other.match);
}

Engine::Engine(std::unique_ptr<storage::DiskManager> disk,
               std::unique_ptr<storage::BufferPool> pool)
    : disk_(std::move(disk)),
      pool_(std::move(pool)),
      g2p_(&g2p::G2PRegistry::Default()),
      stmt_stats_(/*shards=*/8, /*shard_capacity=*/512,
                  &obs::MetricsRegistry::Default()),
      slow_log_(obs::SlowQueryLog::kDefaultCapacity,
                &obs::MetricsRegistry::Default()) {}

Engine::~Engine() {
  // Best-effort checkpoint. Callers that need guaranteed durability
  // call Flush() themselves. Sessions must already be gone (they
  // borrow the engine), so the latch is free.
  IgnoreNonFatal(Flush(), "destructor checkpoint has no error channel");
}

HealthSnapshot Engine::Health() const {
  HealthSnapshot snap;
  snap.uptime_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - started_at_)
          .count());

  const storage::BufferPoolStats bp = pool_->stats();
  snap.bufpool_frames = pool_->pool_size();
  snap.bufpool_resident = pool_->resident_pages();
  snap.bufpool_hits = bp.hits;
  snap.bufpool_misses = bp.misses;

  match::PhonemeCache& cache = match::PhonemeCache::Default();
  const match::PhonemeCacheStats pc = cache.stats();
  snap.phoneme_cache_entries = pc.entries;
  snap.phoneme_cache_capacity = cache.capacity();
  snap.phoneme_cache_hits = pc.hits;
  snap.phoneme_cache_misses = pc.misses;

  {
    // Catalog shape is latch-guarded shared state; everything else in
    // the snapshot reads atomics.
    common::SharedMutexLock lock(&latch_);
    for (const std::string& name : catalog_.TableNames()) {
      Result<TableInfo*> info = catalog_.GetTable(name);
      if (!info.ok()) continue;
      ++snap.tables;
      if (info.value()->stats.analyzed) ++snap.analyzed_tables;
      if (info.value()->phonetic_index != nullptr) ++snap.indexes;
      if (info.value()->qgram_index != nullptr) ++snap.indexes;
      if (info.value()->inverted_index != nullptr) ++snap.indexes;
    }
  }

  snap.sessions_created =
      next_session_id_.load(std::memory_order_relaxed);
  snap.in_flight_queries =
      in_flight_queries_.load(std::memory_order_relaxed);
  snap.statements_recorded = stmt_stats_.recorded();
  snap.statement_fingerprints = stmt_stats_.fingerprints();
  snap.slow_queries_captured = slow_log_.captured();
  return snap;
}

std::string HealthSnapshot::ToString() const {
  char buf[160];
  std::string out;
  std::snprintf(buf, sizeof buf, "uptime          %.1f s\n",
                static_cast<double>(uptime_us) / 1e6);
  out += buf;
  std::snprintf(buf, sizeof buf,
                "buffer pool     %zu/%zu pages resident (%.1f%%), hit "
                "rate %.1f%%\n",
                bufpool_resident, bufpool_frames,
                100.0 * bufpool_occupancy(), 100.0 * bufpool_hit_rate());
  out += buf;
  std::snprintf(buf, sizeof buf,
                "phoneme cache   %" PRIu64
                "/%zu entries (%.1f%%), hit rate %.1f%%\n",
                phoneme_cache_entries, phoneme_cache_capacity,
                100.0 * phoneme_cache_fill(),
                100.0 * phoneme_cache_hit_rate());
  out += buf;
  std::snprintf(buf, sizeof buf,
                "catalog         %zu tables (%zu analyzed), %zu "
                "indexes\n",
                tables, analyzed_tables, indexes);
  out += buf;
  std::snprintf(buf, sizeof buf,
                "sessions        %" PRIu64 " created, %" PRId64
                " queries in flight\n",
                sessions_created, in_flight_queries);
  out += buf;
  std::snprintf(buf, sizeof buf,
                "statements      %" PRIu64 " recorded over %" PRIu64
                " fingerprints, %" PRIu64 " slow captures\n",
                statements_recorded, statement_fingerprints,
                slow_queries_captured);
  out += buf;
  return out;
}

std::string HealthSnapshot::ToJson() const {
  char buf[640];
  std::snprintf(
      buf, sizeof buf,
      "{\"uptime_us\": %" PRIu64
      ", \"bufpool\": {\"frames\": %zu, \"resident\": %zu, \"hits\": "
      "%" PRIu64 ", \"misses\": %" PRIu64
      "}, \"phoneme_cache\": {\"entries\": %" PRIu64
      ", \"capacity\": %zu, \"hits\": %" PRIu64 ", \"misses\": %" PRIu64
      "}, \"catalog\": {\"tables\": %zu, \"analyzed\": %zu, "
      "\"indexes\": %zu}, \"sessions\": {\"created\": %" PRIu64
      ", \"in_flight_queries\": %" PRId64
      "}, \"statements\": {\"recorded\": %" PRIu64
      ", \"fingerprints\": %" PRIu64 ", \"slow_captured\": %" PRIu64
      "}}",
      uptime_us, bufpool_frames, bufpool_resident, bufpool_hits,
      bufpool_misses, phoneme_cache_entries, phoneme_cache_capacity,
      phoneme_cache_hits, phoneme_cache_misses, tables, analyzed_tables,
      indexes, sessions_created, in_flight_queries, statements_recorded,
      statement_fingerprints, slow_queries_captured);
  return buf;
}

Status Engine::Flush() {
  common::WriterMutexLock lock(&latch_);
  // lexlint:allow(latch): exclusive latch acquired on the line above
  LEXEQUAL_RETURN_IF_ERROR(SaveCatalogLocked());
  return pool_->FlushAll();
}

Result<std::unique_ptr<Engine>> Engine::Open(const std::string& path,
                                             size_t pool_pages) {
  std::unique_ptr<storage::DiskManager> disk;
  LEXEQUAL_ASSIGN_OR_RETURN(disk, storage::DiskManager::Open(path));
  const bool fresh = disk->page_count() == 0;
  auto pool = std::make_unique<storage::BufferPool>(disk.get(),
                                                    pool_pages);
  std::unique_ptr<Engine> db(
      new Engine(std::move(disk), std::move(pool)));

  // The meta heap lives at page 0: the very first allocation of a
  // fresh file, or the known root of an existing one. No session can
  // exist yet, so the exclusive latch below is uncontended — it is
  // taken anyway so the REQUIRES(latch_) contract on
  // LoadCatalogLocked and the GUARDED_BY(latch_) on meta_ hold by
  // construction rather than by suppression.
  {
    common::WriterMutexLock lock(&db->latch_);
    if (fresh) {
      // Surfacing the Status matters here: with an undersized pool the
      // very first page allocation can fail, and the old
      // `.value()`-and-hope pattern turned that into undefined
      // behaviour instead of an error (caught by the nodiscard audit).
      Result<storage::HeapFile> meta =
          storage::HeapFile::Create(db->pool_.get());
      if (!meta.ok()) return meta.status();
      if (meta->first_page() != 0) {
        return Status::Internal("meta heap did not land on page 0");
      }
      db->meta_ =
          std::make_unique<storage::HeapFile>(std::move(meta).value());
    } else {
      Result<storage::HeapFile> meta =
          storage::HeapFile::Open(db->pool_.get(), 0);
      if (!meta.ok()) return meta.status();
      db->meta_ =
          std::make_unique<storage::HeapFile>(std::move(meta).value());
      // lexlint:allow(latch): exclusive latch held by the WriterMutexLock scope above
      LEXEQUAL_RETURN_IF_ERROR(db->LoadCatalogLocked());
    }
  }

  // The LexEQUAL UDF, callable from SQL and expression trees:
  // LEXEQUAL(ipa_a, ipa_b, threshold, intra_cluster_cost) -> 0/1.
  Status st = db->udfs_.Register(
      "LEXEQUAL", [](const std::vector<Value>& args) -> Result<Value> {
        if (args.size() != 4 ||
            args[0].type() != ValueType::kString ||
            args[1].type() != ValueType::kString) {
          return Status::InvalidArgument(
              "LEXEQUAL(ipa_a, ipa_b, threshold, cost)");
        }
        auto num = [](const Value& v) {
          return v.type() == ValueType::kDouble
                     ? v.AsDouble()
                     : static_cast<double>(v.AsInt64());
        };
        const std::string& a = args[0].AsString().text();
        const std::string& b = args[1].AsString().text();
        if (a.empty() || b.empty()) return Value::Int64(0);
        Result<PhonemeString> pa = PhonemeString::FromIpa(a);
        if (!pa.ok()) return pa.status();
        Result<PhonemeString> pb = PhonemeString::FromIpa(b);
        if (!pb.ok()) return pb.status();
        match::LexEqualMatcher matcher(
            {.threshold = num(args[2]),
             .intra_cluster_cost = num(args[3])});
        return Value::Int64(
            matcher.MatchPhonemes(pa.value(), pb.value()) ? 1 : 0);
      });
  LEXEQUAL_RETURN_IF_ERROR(st);
  return db;
}

Status Engine::SaveCatalogLocked() {
  if (meta_ == nullptr) return Status::OK();
  ++catalog_version_;
  for (const std::string& name : catalog_.TableNames()) {
    TableInfo* info;
    LEXEQUAL_ASSIGN_OR_RETURN(info, catalog_.GetTable(name));
    Tuple rec;
    rec.push_back(Value::Int64(catalog_version_));
    rec.push_back(Value::String(info->name));
    rec.push_back(Value::Int64(static_cast<int64_t>(info->schema.size())));
    for (const Column& col : info->schema.columns()) {
      rec.push_back(Value::String(col.name));
      rec.push_back(Value::Int64(static_cast<int64_t>(col.type)));
      rec.push_back(Value::Int64(
          col.phonemic_source.has_value()
              ? static_cast<int64_t>(*col.phonemic_source)
              : -1));
    }
    rec.push_back(Value::Int64(info->heap->first_page()));
    const PhoneticIndexInfo* pi = info->phonetic_index.get();
    rec.push_back(Value::Int64(pi != nullptr ? 1 : 0));
    rec.push_back(Value::Int64(pi != nullptr ? pi->column : 0));
    rec.push_back(
        Value::Int64(pi != nullptr ? pi->btree->root_page_id() : 0));
    const QGramIndexInfo* qi = info->qgram_index.get();
    rec.push_back(Value::Int64(qi != nullptr ? 1 : 0));
    rec.push_back(Value::Int64(qi != nullptr ? qi->column : 0));
    rec.push_back(Value::Int64(qi != nullptr ? qi->q : 0));
    rec.push_back(
        Value::Int64(qi != nullptr ? qi->btree->root_page_id() : 0));
    info->stats.AppendTo(&rec);
    // v3: inverted-index block, after the stats block so v2 readers
    // (which stop at the stats block's end) stay compatible.
    const InvertedIndexInfo* ii = info->inverted_index.get();
    rec.push_back(Value::Int64(ii != nullptr ? 1 : 0));
    if (ii != nullptr) {
      rec.push_back(Value::Int64(ii->column));
      rec.push_back(Value::Int64(ii->q));
      rec.push_back(Value::Int64(ii->index->directory_root()));
      rec.push_back(
          Value::Int64(static_cast<int64_t>(ii->indexed_rows)));
      rec.push_back(Value::Int64(ii->min_len));
      rec.push_back(Value::Int64(ii->max_len));
    }
    LEXEQUAL_RETURN_IF_ERROR(
        meta_->Insert(SerializeTuple(rec)).status());
  }
  // A version marker record makes empty catalogs reopenable too. The
  // loader tells markers and table records apart by cell [1]'s type
  // (markers carry the format number, table records their name).
  Tuple marker;
  marker.push_back(Value::Int64(catalog_version_));
  marker.push_back(Value::Int64(kCatalogFormatVersion));
  LEXEQUAL_RETURN_IF_ERROR(
      meta_->Insert(SerializeTuple(marker)).status());
  return Status::OK();
}

Status Engine::LoadCatalogLocked() {
  // Collect the latest snapshot version, then materialize its tables.
  int64_t latest = 0;
  std::vector<Tuple> records;
  auto it = meta_->Begin();
  LEXEQUAL_RETURN_IF_ERROR(it.status());
  for (; !it.AtEnd();) {
    Tuple rec;
    LEXEQUAL_ASSIGN_OR_RETURN(rec, DeserializeTuple(it.record()));
    if (rec.empty() || rec[0].type() != ValueType::kInt64) {
      return Status::Corruption("malformed catalog record");
    }
    latest = std::max(latest, rec[0].AsInt64());
    if (rec.size() > 1) records.push_back(std::move(rec));
    LEXEQUAL_RETURN_IF_ERROR(it.Next());
  }
  catalog_version_ = latest;
  for (const Tuple& rec : records) {
    if (rec[0].AsInt64() != latest) continue;
    // v2 version markers are [version, format]; table records always
    // carry their name at cell [1].
    if (rec[1].type() != ValueType::kString) continue;
    size_t pos = 1;
    auto next_int = [&]() { return rec[pos++].AsInt64(); };
    const std::string name = rec[pos++].AsString().text();
    const int64_t n_cols = next_int();
    std::vector<Column> cols;
    cols.reserve(n_cols);
    for (int64_t c = 0; c < n_cols; ++c) {
      Column col;
      col.name = rec[pos++].AsString().text();
      col.type = static_cast<ValueType>(next_int());
      const int64_t src = next_int();
      if (src >= 0) col.phonemic_source = static_cast<uint32_t>(src);
      cols.push_back(std::move(col));
    }
    auto info = std::make_unique<TableInfo>();
    info->name = name;
    info->schema = Schema(std::move(cols));
    const storage::PageId heap_root =
        static_cast<storage::PageId>(next_int());
    Result<storage::HeapFile> heap =
        storage::HeapFile::Open(pool_.get(), heap_root);
    if (!heap.ok()) return heap.status();
    info->heap =
        std::make_unique<storage::HeapFile>(std::move(heap).value());
    if (next_int() != 0) {  // phonetic index
      auto pi = std::make_unique<PhoneticIndexInfo>();
      pi->column = static_cast<uint32_t>(next_int());
      pi->btree = std::make_unique<index::BTree>(index::BTree::Open(
          pool_.get(), static_cast<storage::PageId>(next_int())));
      info->phonetic_index = std::move(pi);
    } else {
      pos += 2;
    }
    if (next_int() != 0) {  // q-gram index
      auto qi = std::make_unique<QGramIndexInfo>();
      qi->column = static_cast<uint32_t>(next_int());
      qi->q = static_cast<int>(next_int());
      qi->btree = std::make_unique<index::BTree>(index::BTree::Open(
          pool_.get(), static_cast<storage::PageId>(next_int())));
      info->qgram_index = std::move(qi);
    } else {
      pos += 3;
    }
    // Stats block (absent in pre-v2 snapshots => unanalyzed default).
    LEXEQUAL_ASSIGN_OR_RETURN(info->stats,
                              TableStats::ReadFrom(rec, &pos));
    // Inverted-index block (absent in pre-v3 snapshots).
    if (pos < rec.size() && next_int() != 0) {
      if (pos + 6 > rec.size()) {
        return Status::Corruption(
            "truncated inverted-index catalog block");
      }
      auto ii = std::make_unique<InvertedIndexInfo>();
      ii->column = static_cast<uint32_t>(next_int());
      ii->q = static_cast<int>(next_int());
      ii->index = std::make_unique<index::InvertedIndex>(
          index::InvertedIndex::Open(
              pool_.get(), ii->q,
              static_cast<storage::PageId>(next_int())));
      ii->indexed_rows = static_cast<uint64_t>(next_int());
      ii->min_len = static_cast<uint32_t>(next_int());
      ii->max_len = static_cast<uint32_t>(next_int());
      info->inverted_index = std::move(ii);
    }
    LEXEQUAL_RETURN_IF_ERROR(catalog_.AddTable(std::move(info)));
  }
  return Status::OK();
}

Status Engine::CreateTable(const std::string& name, Schema schema) {
  common::WriterMutexLock lock(&latch_);
  return CreateTableLocked(name, std::move(schema));
}

Status Engine::CreateTableLocked(const std::string& name, Schema schema) {
  // Validate derived columns.
  for (size_t i = 0; i < schema.size(); ++i) {
    const Column& c = schema.column(i);
    if (c.phonemic_source.has_value()) {
      if (*c.phonemic_source >= schema.size() ||
          schema.column(*c.phonemic_source).type != ValueType::kString ||
          c.type != ValueType::kString) {
        return Status::InvalidArgument(
            "phonemic column '" + c.name +
            "' must derive from a string column");
      }
    }
  }
  auto info = std::make_unique<TableInfo>();
  info->name = name;
  info->schema = std::move(schema);
  Result<storage::HeapFile> heap = storage::HeapFile::Create(pool_.get());
  if (!heap.ok()) return heap.status();
  info->heap =
      std::make_unique<storage::HeapFile>(std::move(heap).value());
  LEXEQUAL_RETURN_IF_ERROR(catalog_.AddTable(std::move(info)));
  return SaveCatalogLocked();
}

Result<RID> Engine::Insert(const std::string& table,
                           const Tuple& user_values) {
  common::WriterMutexLock lock(&latch_);
  return InsertLocked(table, user_values);
}

Result<RID> Engine::InsertLocked(const std::string& table,
                                 const Tuple& user_values) {
  TableInfo* info;
  LEXEQUAL_ASSIGN_OR_RETURN(info, catalog_.GetTable(table));
  const Schema& schema = info->schema;
  if (user_values.size() != schema.UserColumnCount()) {
    return Status::InvalidArgument(
        "expected " + std::to_string(schema.UserColumnCount()) +
        " values, got " + std::to_string(user_values.size()));
  }

  // Assemble the full row, deriving phonemic cells.
  Tuple row;
  row.reserve(schema.size());
  size_t user_i = 0;
  for (size_t i = 0; i < schema.size(); ++i) {
    const Column& col = schema.column(i);
    if (!col.phonemic_source.has_value()) {
      const Value& v = user_values[user_i++];
      if (v.type() != col.type) {
        return Status::InvalidArgument(
            "type mismatch for column '" + col.name + "'");
      }
      row.push_back(v);
      continue;
    }
    // Derived: transform the (already appended) source column,
    // through the shared cache — bulk loads with recurring names
    // (and re-loads of the same dataset) skip the rule engines.
    const Value& src = row[*col.phonemic_source];
    Result<PhonemeString> phon =
        match::PhonemeCache::Default().Transform(src.AsString());
    if (phon.ok()) {
      row.push_back(Value::String(phon.value().ToIpa()));
    } else if (phon.status().IsNoResource() ||
               phon.status().IsInvalidArgument()) {
      // No converter / untransformable: store the empty phonemic
      // string, which matches nothing (the NORESOURCE row behaviour).
      row.push_back(Value::String(""));
    } else {
      return phon.status();
    }
  }

  RID rid;
  LEXEQUAL_ASSIGN_OR_RETURN(rid, info->heap->Insert(SerializeTuple(row)));

  // Maintain access paths.
  if (info->phonetic_index != nullptr) {
    PhonemeString phon;
    LEXEQUAL_ASSIGN_OR_RETURN(
        phon, RowPhonemes(row, info->phonetic_index->column));
    if (!phon.empty()) {
      const uint64_t key = phonetic::GroupedPhonemeStringId(
          phon, phonetic::ClusterTable::Default());
      LEXEQUAL_RETURN_IF_ERROR(
          info->phonetic_index->btree->Insert(key, rid));
    }
  }
  if (info->qgram_index != nullptr) {
    PhonemeString phon;
    LEXEQUAL_ASSIGN_OR_RETURN(phon,
                              RowPhonemes(row, info->qgram_index->column));
    if (!phon.empty()) {
      for (const match::PositionalQGram& g :
           match::PositionalQGrams(phon, info->qgram_index->q)) {
        LEXEQUAL_RETURN_IF_ERROR(info->qgram_index->btree->Insert(
            QGramIndexInfo::PackKey(g.gram, g.pos, phon.size()), rid));
      }
    }
  }
  if (info->inverted_index != nullptr) {
    PhonemeString phon;
    LEXEQUAL_ASSIGN_OR_RETURN(
        phon, RowPhonemes(row, info->inverted_index->column));
    LEXEQUAL_RETURN_IF_ERROR(
        AddToInvertedIndex(info->inverted_index.get(), phon, rid));
  }
  return rid;
}

Status Engine::CreateIndex(const IndexSpec& spec) {
  common::WriterMutexLock lock(&latch_);
  return CreateIndexLocked(spec);
}

Status Engine::CreateIndexLocked(const IndexSpec& spec) {
  TableInfo* info;
  LEXEQUAL_ASSIGN_OR_RETURN(info, catalog_.GetTable(spec.table));
  uint32_t col;
  LEXEQUAL_ASSIGN_OR_RETURN(col, info->schema.IndexOf(spec.column));

  if (spec.kind == IndexSpec::Kind::kInverted) {
    if (spec.q < 1 || spec.q > match::kMaxQ) {
      return Status::InvalidArgument(
          "q must be in [1, " + std::to_string(match::kMaxQ) + "]");
    }
    if (info->inverted_index != nullptr) {
      return Status::AlreadyExists(
          "inverted index already exists on '" + spec.table + "'");
    }
    Result<index::InvertedIndex> created =
        index::InvertedIndex::Create(pool_.get(), spec.q);
    if (!created.ok()) return created.status();
    auto ii = std::make_unique<InvertedIndexInfo>();
    ii->column = col;
    ii->q = spec.q;
    ii->index = std::make_unique<index::InvertedIndex>(
        std::move(created).value());
    // Backfill in heap order, which yields strictly increasing RIDs
    // (= packed docids), the order posting-list appends require.
    SeqScanExecutor scan(info);
    LEXEQUAL_RETURN_IF_ERROR(scan.Init());
    Tuple row;
    while (true) {
      bool has;
      LEXEQUAL_ASSIGN_OR_RETURN(has, scan.Next(&row));
      if (!has) break;
      PhonemeString phon;
      LEXEQUAL_ASSIGN_OR_RETURN(phon, RowPhonemes(row, col));
      LEXEQUAL_RETURN_IF_ERROR(
          AddToInvertedIndex(ii.get(), phon, scan.current_rid()));
    }
    info->inverted_index = std::move(ii);
    return SaveCatalogLocked();
  }

  const bool phonetic = spec.kind == IndexSpec::Kind::kPhonetic;
  if (phonetic && info->phonetic_index != nullptr) {
    return Status::AlreadyExists("phonetic index already exists on '" +
                                 spec.table + "'");
  }
  if (!phonetic) {
    if (spec.q < 1 || spec.q > QGramIndexInfo::kQGramPackMaxQ) {
      return Status::InvalidArgument(
          "q must be in [1, " +
          std::to_string(QGramIndexInfo::kQGramPackMaxQ) + "]");
    }
    if (info->qgram_index != nullptr) {
      return Status::AlreadyExists("q-gram index already exists on '" +
                                   spec.table + "'");
    }
  }

  Result<index::BTree> btree = index::BTree::Create(pool_.get());
  if (!btree.ok()) return btree.status();
  auto tree =
      std::make_unique<index::BTree>(std::move(btree).value());

  // Backfill existing rows.
  SeqScanExecutor scan(info);
  LEXEQUAL_RETURN_IF_ERROR(scan.Init());
  Tuple row;
  while (true) {
    bool has;
    LEXEQUAL_ASSIGN_OR_RETURN(has, scan.Next(&row));
    if (!has) break;
    PhonemeString phon;
    LEXEQUAL_ASSIGN_OR_RETURN(phon, RowPhonemes(row, col));
    if (phon.empty()) continue;
    const RID rid = scan.current_rid();
    if (phonetic) {
      const uint64_t key = phonetic::GroupedPhonemeStringId(
          phon, phonetic::ClusterTable::Default());
      LEXEQUAL_RETURN_IF_ERROR(tree->Insert(key, rid));
    } else {
      for (const match::PositionalQGram& g :
           match::PositionalQGrams(phon, spec.q)) {
        LEXEQUAL_RETURN_IF_ERROR(tree->Insert(
            QGramIndexInfo::PackKey(g.gram, g.pos, phon.size()), rid));
      }
    }
  }

  if (phonetic) {
    auto idx = std::make_unique<PhoneticIndexInfo>();
    idx->column = col;
    idx->btree = std::move(tree);
    info->phonetic_index = std::move(idx);
  } else {
    auto idx = std::make_unique<QGramIndexInfo>();
    idx->column = col;
    idx->q = spec.q;
    idx->btree = std::move(tree);
    info->qgram_index = std::move(idx);
  }
  return SaveCatalogLocked();
}

Status Engine::Analyze(const std::string& table) {
  common::WriterMutexLock lock(&latch_);
  return AnalyzeLocked(table);
}

Status Engine::AnalyzeLocked(const std::string& table) {
  TableInfo* info;
  LEXEQUAL_ASSIGN_OR_RETURN(info, catalog_.GetTable(table));
  const Schema& schema = info->schema;

  // Phonemic columns: declared shadows, plus caller-materialized
  // "<name>_phon" string columns (same recognition as the query path).
  TableStats stats;
  stats.analyzed = true;
  struct ColState {
    PhonemicColumnStats s;
    std::unordered_map<uint64_t, uint64_t> key_counts;
    std::unordered_set<uint64_t> grams;
  };
  std::vector<ColState> cols;
  for (size_t i = 0; i < schema.size(); ++i) {
    const Column& c = schema.column(i);
    const bool shadow = c.phonemic_source.has_value();
    const bool by_name = c.type == ValueType::kString &&
                         c.name.size() > 5 &&
                         c.name.compare(c.name.size() - 5, 5, "_phon") == 0;
    if (!shadow && !by_name) continue;
    ColState state;
    state.s.column = static_cast<uint32_t>(i);
    if (info->qgram_index != nullptr && info->qgram_index->column == i) {
      state.s.qgram_q = info->qgram_index->q;
    }
    if (info->inverted_index != nullptr &&
        info->inverted_index->column == i) {
      state.s.invidx_q = info->inverted_index->q;
    }
    cols.push_back(std::move(state));
  }

  SeqScanExecutor scan(info);
  LEXEQUAL_RETURN_IF_ERROR(scan.Init());
  Tuple row;
  while (true) {
    bool has;
    LEXEQUAL_ASSIGN_OR_RETURN(has, scan.Next(&row));
    if (!has) break;
    ++stats.row_count;
    for (ColState& state : cols) {
      PhonemeString phon;
      LEXEQUAL_ASSIGN_OR_RETURN(phon, RowPhonemes(row, state.s.column));
      if (phon.empty()) continue;
      ++state.s.nonempty_rows;
      state.s.total_phonemes += phon.size();
      state.s.max_phonemes =
          std::max<uint64_t>(state.s.max_phonemes, phon.size());
      ++state.key_counts[phonetic::GroupedPhonemeStringId(
          phon, phonetic::ClusterTable::Default())];
      for (const match::PositionalQGram& g :
           match::PositionalQGrams(phon, state.s.qgram_q)) {
        ++state.s.total_qgrams;
        state.grams.insert(g.gram);
      }
    }
  }
  for (ColState& state : cols) {
    state.s.distinct_phonetic_keys = state.key_counts.size();
    for (const auto& [key, count] : state.key_counts) {
      state.s.max_phonetic_fanout =
          std::max(state.s.max_phonetic_fanout, count);
    }
    state.s.distinct_qgrams = state.grams.size();
    if (info->inverted_index != nullptr &&
        info->inverted_index->column == state.s.column) {
      index::InvertedIndex::Totals totals;
      LEXEQUAL_ASSIGN_OR_RETURN(
          totals, info->inverted_index->index->ComputeTotals());
      state.s.invidx_distinct_grams = totals.distinct_grams;
      state.s.invidx_total_postings = totals.total_postings;
    }
    stats.columns.push_back(std::move(state.s));
  }
  info->stats = std::move(stats);
  return SaveCatalogLocked();
}

Status Engine::AnalyzeAll() {
  // One exclusive latch across all tables, so a concurrent session
  // sees either no new stats or all of them.
  common::WriterMutexLock lock(&latch_);
  for (const std::string& name : catalog_.TableNames()) {
    LEXEQUAL_RETURN_IF_ERROR(AnalyzeLocked(name));
  }
  return Status::OK();
}

Result<std::vector<Tuple>> Engine::ExactSelectLocked(
    const std::string& table, const std::string& column,
    const Value& literal, QueryStats* qs) {
  TableInfo* info;
  LEXEQUAL_ASSIGN_OR_RETURN(info, catalog_.GetTable(table));
  uint32_t col;
  LEXEQUAL_ASSIGN_OR_RETURN(col, info->schema.IndexOf(column));
  SeqScanExecutor scan(info);
  LEXEQUAL_RETURN_IF_ERROR(scan.Init());
  std::vector<Tuple> out;
  Tuple row;
  while (true) {
    bool has;
    LEXEQUAL_ASSIGN_OR_RETURN(has, scan.Next(&row));
    if (!has) break;
    ++qs->rows_scanned;
    // Native equality is binary across scripts (SQL:1999 semantics):
    // text comparison, no phonetics.
    if (row[col].type() == ValueType::kString &&
        literal.type() == ValueType::kString) {
      if (row[col].AsString().text() == literal.AsString().text()) {
        out.push_back(row);
      }
    } else if (row[col] == literal) {
      out.push_back(row);
    }
  }
  qs->results = out.size();
  return out;
}

bool Engine::LanguageAllowed(const LexEqualQueryOptions& options,
                             const Tuple& row, uint32_t source_col) {
  if (options.in_languages.empty()) return true;  // wildcard *
  const text::Language lang = row[source_col].AsString().language();
  for (text::Language allowed : options.in_languages) {
    if (allowed == text::Language::kAny || allowed == lang) return true;
  }
  return false;
}

Result<bool> Engine::VerifyCandidate(
    const match::LexEqualMatcher& matcher,
    const PhonemeString& query_phon, const Tuple& row, uint32_t phon_col,
    QueryStats* stats) const {
  // Counter contract, identical to the parallel path's
  // DecideCandidate: every candidate bumps tuples_scanned; an empty
  // side is a filter rejection, not a UDF call; udf_calls ==
  // match.dp_evaluations on every plan. (Previously the sequential
  // plans counted udf_calls for unverifiable rows and left the
  // MatchStats breakdown at zero, so per-plan parity never held.)
  if (stats != nullptr) {
    ++stats->candidates;
    ++stats->match.tuples_scanned;
  }
  PhonemeString cand;
  LEXEQUAL_ASSIGN_OR_RETURN(cand, RowPhonemes(row, phon_col));
  if (cand.empty() || query_phon.empty()) {
    if (stats != nullptr) ++stats->match.filter_rejections;
    return false;
  }
  if (stats != nullptr) {
    ++stats->udf_calls;
    ++stats->match.dp_evaluations;
  }
  match::KernelCounters kernel;
  const bool matched = matcher.MatchPhonemes(query_phon, cand, &kernel);
  if (stats != nullptr) {
    kernel.AccumulateInto(&stats->match);
    if (matched) ++stats->match.matches;
  }
  return matched;
}

Result<std::vector<RID>> Engine::QGramCandidates(
    const TableInfo& table, const match::QGramProbe& probe,
    double threshold, QueryStats* stats) const {
  const QGramIndexInfo& idx = *table.qgram_index;
  const int q = probe.q;
  const size_t qlen = probe.length;

  struct CandState {
    int matches = 0;
    int64_t len = 0;
  };
  std::unordered_map<uint64_t, CandState> cands;  // packed RID -> state
  auto pack = [](const RID& r) {
    return (static_cast<uint64_t>(r.page_id) << 16) | r.slot;
  };

  for (const match::PositionalQGram& g : probe.grams) {
    // Covering-index probe: all entries whose gram equals g.gram,
    // with (pos, len) carried in the key's low bits.
    std::vector<std::pair<uint64_t, RID>> entries;
    LEXEQUAL_ASSIGN_OR_RETURN(
        entries,
        idx.btree->ScanRange(QGramIndexInfo::PackKey(g.gram, 0, 0),
                             QGramIndexInfo::PackKey(
                                 g.gram, 255, 255)));
    EngineCounters::Get().qgram_probes->Inc();
    EngineCounters::Get().qgram_postings->Inc(entries.size());
    for (const auto& [key, rid] : entries) {
      const uint32_t pos = QGramIndexInfo::PosOf(key);
      const size_t len = QGramIndexInfo::LenOf(key);
      // Clamped pos/len (255) pass the filters conservatively.
      const bool clamped = pos == 255 || len == 255;
      // Per-candidate unit-edit budget (Fig. 14: e * len).
      const double k =
          threshold * static_cast<double>(std::min<size_t>(qlen, len));
      if (!clamped) {
        // Length filter.
        if (!match::PassesLengthFilter(qlen, len, k)) continue;
        // Position filter.
        const double pos_diff = std::abs(static_cast<double>(pos) -
                                         static_cast<double>(g.pos));
        if (pos_diff > k) continue;
      }
      CandState& state = cands[pack(rid)];
      ++state.matches;
      state.len = static_cast<int64_t>(len);
    }
  }

  std::vector<RID> out;
  for (const auto& [packed, state] : cands) {
    const double k = threshold * static_cast<double>(std::min<int64_t>(
                                     qlen, state.len));
    // Count filter over *padded* gram matches: identical padded
    // strings share len + q - 1 grams, and each unit edit destroys at
    // most q of them.
    const double required =
        match::CountFilterMinMatches(qlen, state.len, k, q);
    if (required > 0 && state.matches < required) continue;
    out.push_back(RID{static_cast<storage::PageId>(packed >> 16),
                      static_cast<uint16_t>(packed & 0xFFFF)});
  }
  std::sort(out.begin(), out.end());
  EngineCounters::Get().qgram_candidates->Inc(out.size());
  if (stats != nullptr) stats->rows_scanned += out.size();
  return out;
}

PlanPickerInputs Engine::PickerInputs(
    const TableInfo& info, uint32_t phon_col, double query_len,
    const LexEqualQueryOptions& options) const {
  PlanPickerInputs in;
  in.stats = &info.stats;
  in.phon_col = phon_col;
  in.has_qgram = info.qgram_index != nullptr;
  if (in.has_qgram) in.qgram_q = info.qgram_index->q;
  in.has_phonetic = info.phonetic_index != nullptr;
  in.has_invidx = info.inverted_index != nullptr;
  if (in.has_invidx) in.invidx_q = info.inverted_index->q;
  if (query_len > 0) in.query_len = query_len;
  in.match = options.match;
  in.hints = options.hints;
  return in;
}

Result<PlanChoice> Engine::ExplainSelectLocked(
    const std::string& table, const std::string& column,
    const PhonemeString& query_phon,
    const LexEqualQueryOptions& options) {
  TableInfo* info;
  LEXEQUAL_ASSIGN_OR_RETURN(info, catalog_.GetTable(table));
  uint32_t source_col;
  LEXEQUAL_ASSIGN_OR_RETURN(source_col, info->schema.IndexOf(column));
  uint32_t phon_col;
  LEXEQUAL_ASSIGN_OR_RETURN(phon_col,
                            PhonemicColumnOf(info->schema, source_col));
  return ChooseLexEqualPlan(PickerInputs(
      *info, phon_col, static_cast<double>(query_phon.size()), options));
}

Result<std::vector<Tuple>> Engine::SelectPhonemesLocked(
    const std::string& table, const std::string& column,
    const PhonemeString& query_phon, const LexEqualQueryOptions& options,
    QueryStats* stats, obs::QueryTrace* trace) {
  TableInfo* info;
  LEXEQUAL_ASSIGN_OR_RETURN(info, catalog_.GetTable(table));
  uint32_t source_col;
  LEXEQUAL_ASSIGN_OR_RETURN(source_col, info->schema.IndexOf(column));
  uint32_t phon_col;
  LEXEQUAL_ASSIGN_OR_RETURN(phon_col,
                            PhonemicColumnOf(info->schema, source_col));

  const PlanChoice choice = [&] {
    obs::ScopedSpan span(trace, "plan_pick");
    return ChooseLexEqualPlan(PickerInputs(
        *info, phon_col, static_cast<double>(query_phon.size()),
        options));
  }();
  stats->plan = choice.plan;
  stats->plan_was_auto = !choice.hinted;
  stats->plan_used_stats = choice.used_stats;
  if (const PlanCostEstimate* est = choice.Estimate(choice.plan);
      est != nullptr) {
    stats->est_cost = est->cost;
    stats->est_candidates = est->est_candidates;
  }

  match::LexEqualMatcher matcher(options.match);

  std::vector<Tuple> out;
  switch (choice.plan) {
    case LexEqualPlan::kNaiveUdf: {
      obs::ScopedSpan span(trace, "seq_scan_udf");
      SeqScanExecutor scan(info);
      LEXEQUAL_RETURN_IF_ERROR(scan.Init());
      Tuple row;
      while (true) {
        bool has;
        LEXEQUAL_ASSIGN_OR_RETURN(has, scan.Next(&row));
        if (!has) break;
        if (stats != nullptr) ++stats->rows_scanned;
        if (!LanguageAllowed(options, row, source_col)) continue;
        bool matched;
        LEXEQUAL_ASSIGN_OR_RETURN(
            matched,
            VerifyCandidate(matcher, query_phon, row, phon_col, stats));
        if (matched) out.push_back(row);
      }
      if (stats != nullptr) span.AddRows(stats->rows_scanned);
      break;
    }
    case LexEqualPlan::kQGramFilter: {
      if (info->qgram_index == nullptr) {
        return Status::NotFound("no q-gram index on '" + table + "'");
      }
      // One probe multiset per query, reused across every index
      // chunk (the per-chunk rebuild was a measured regression).
      const match::QGramProbe probe =
          match::BuildQGramProbe(query_phon, info->qgram_index->q);
      std::vector<RID> rids;
      {
        obs::ScopedSpan span(trace, "qgram_filter");
        LEXEQUAL_ASSIGN_OR_RETURN(
            rids, QGramCandidates(*info, probe,
                                  options.match.threshold, stats));
        span.AddRows(rids.size());
      }
      obs::ScopedSpan span(trace, "verify");
      RidLookupExecutor lookup(info, std::move(rids));
      LEXEQUAL_RETURN_IF_ERROR(lookup.Init());
      Tuple row;
      while (true) {
        bool has;
        LEXEQUAL_ASSIGN_OR_RETURN(has, lookup.Next(&row));
        if (!has) break;
        if (!LanguageAllowed(options, row, source_col)) continue;
        bool matched;
        LEXEQUAL_ASSIGN_OR_RETURN(
            matched,
            VerifyCandidate(matcher, query_phon, row, phon_col, stats));
        if (matched) out.push_back(row);
      }
      span.AddRows(out.size());
      break;
    }
    case LexEqualPlan::kInvertedIndex: {
      if (info->inverted_index == nullptr) {
        return Status::NotFound("no inverted index on '" + table + "'");
      }
      const InvertedIndexInfo& ii = *info->inverted_index;
      const match::QGramProbe probe =
          match::BuildQGramProbe(query_phon, ii.q);
      index::invidx::Stats istats;
      std::vector<uint64_t> docids;
      {
        obs::ScopedSpan span(trace, "invidx_merge");
        LEXEQUAL_ASSIGN_OR_RETURN(
            docids, ii.index->ThresholdCandidates(
                        probe, options.match.threshold, &istats));
        span.AddRows(docids.size());
      }
      FoldInvidxStats(istats, stats);
      if (stats != nullptr) stats->rows_scanned += docids.size();
      std::vector<RID> rids;
      rids.reserve(docids.size());
      for (uint64_t d : docids) {
        rids.push_back(InvertedIndexInfo::UnpackDocid(d));
      }
      obs::ScopedSpan span(trace, "verify");
      RidLookupExecutor lookup(info, std::move(rids));
      LEXEQUAL_RETURN_IF_ERROR(lookup.Init());
      Tuple row;
      while (true) {
        bool has;
        LEXEQUAL_ASSIGN_OR_RETURN(has, lookup.Next(&row));
        if (!has) break;
        if (!LanguageAllowed(options, row, source_col)) continue;
        bool matched;
        LEXEQUAL_ASSIGN_OR_RETURN(
            matched,
            VerifyCandidate(matcher, query_phon, row, phon_col, stats));
        if (matched) out.push_back(row);
      }
      span.AddRows(out.size());
      break;
    }
    case LexEqualPlan::kPhoneticIndex: {
      if (info->phonetic_index == nullptr) {
        return Status::NotFound("no phonetic index on '" + table + "'");
      }
      const uint64_t key = phonetic::GroupedPhonemeStringId(
          query_phon, phonetic::ClusterTable::Default());
      std::vector<RID> rids;
      {
        obs::ScopedSpan span(trace, "phonetic_probe");
        LEXEQUAL_ASSIGN_OR_RETURN(
            rids, info->phonetic_index->btree->ScanEqual(key));
        span.AddRows(rids.size());
      }
      EngineCounters::Get().phonetic_probes->Inc();
      EngineCounters::Get().phonetic_candidates->Inc(rids.size());
      if (stats != nullptr) stats->rows_scanned += rids.size();
      obs::ScopedSpan span(trace, "verify");
      RidLookupExecutor lookup(info, std::move(rids));
      LEXEQUAL_RETURN_IF_ERROR(lookup.Init());
      Tuple row;
      while (true) {
        bool has;
        LEXEQUAL_ASSIGN_OR_RETURN(has, lookup.Next(&row));
        if (!has) break;
        if (!LanguageAllowed(options, row, source_col)) continue;
        bool matched;
        LEXEQUAL_ASSIGN_OR_RETURN(
            matched,
            VerifyCandidate(matcher, query_phon, row, phon_col, stats));
        if (matched) out.push_back(row);
      }
      span.AddRows(out.size());
      break;
    }
    case LexEqualPlan::kParallelScan: {
      ParallelScanSpec spec;
      spec.query = query_phon;
      spec.source_col = source_col;
      spec.phon_col = phon_col;
      spec.match = options.match;
      spec.in_languages = options.in_languages;
      spec.threads = options.hints.threads;
      spec.cache = &match::PhonemeCache::Default();
      spec.trace = trace;
      ParallelLexEqualScanExecutor scan(info, std::move(spec));
      LEXEQUAL_RETURN_IF_ERROR(scan.Init());
      Tuple row;
      while (true) {
        bool has;
        LEXEQUAL_ASSIGN_OR_RETURN(has, scan.Next(&row));
        if (!has) break;
        out.push_back(std::move(row));
      }
      if (stats != nullptr) {
        stats->rows_scanned += scan.rows_scanned();
        stats->candidates += scan.stats().dp_evaluations;
        stats->udf_calls += scan.stats().dp_evaluations;
        stats->match.Merge(scan.stats());
      }
      break;
    }
    case LexEqualPlan::kAuto:
      return Status::Internal("kAuto survived plan resolution");
  }
  stats->results = out.size();
  return out;
}

Result<std::vector<std::pair<Tuple, Tuple>>> Engine::JoinLocked(
    const std::string& left_table, const std::string& left_column,
    const std::string& right_table, const std::string& right_column,
    const LexEqualQueryOptions& options, uint64_t outer_limit,
    QueryStats* stats, obs::QueryTrace* trace) {
  QueryStats& qs = *stats;
  obs::ScopedSpan scan_span(trace, "join_scan");
  TableInfo* left;
  LEXEQUAL_ASSIGN_OR_RETURN(left, catalog_.GetTable(left_table));
  TableInfo* right;
  LEXEQUAL_ASSIGN_OR_RETURN(right, catalog_.GetTable(right_table));
  uint32_t lcol;
  LEXEQUAL_ASSIGN_OR_RETURN(lcol, left->schema.IndexOf(left_column));
  uint32_t lphon;
  LEXEQUAL_ASSIGN_OR_RETURN(lphon, PhonemicColumnOf(left->schema, lcol));
  uint32_t rcol;
  LEXEQUAL_ASSIGN_OR_RETURN(rcol, right->schema.IndexOf(right_column));
  uint32_t rphon;
  LEXEQUAL_ASSIGN_OR_RETURN(rphon, PhonemicColumnOf(right->schema, rcol));

  // The probe side of the join is the right table; the typical probe
  // length is the left side's average phonemic length when known.
  double probe_len = 0.0;
  if (left->stats.analyzed) {
    if (const PhonemicColumnStats* ls = left->stats.ForColumn(lphon)) {
      probe_len = ls->avg_phonemes();
    }
  }
  const PlanChoice choice =
      ChooseLexEqualPlan(PickerInputs(*right, rphon, probe_len, options));
  qs.plan = choice.plan;
  qs.plan_was_auto = !choice.hinted;
  qs.plan_used_stats = choice.used_stats;
  if (const PlanCostEstimate* est = choice.Estimate(choice.plan);
      est != nullptr) {
    qs.est_cost = est->cost;
    qs.est_candidates = est->est_candidates;
  }

  match::LexEqualMatcher matcher(options.match);
  std::vector<std::pair<Tuple, Tuple>> out;

  // Parallel plan: materialize the inner side once (rows + phonemic
  // cells), then batch-match every outer probe against it. The match
  // pair set and order are identical to the naive nested loop.
  std::vector<Tuple> inner_rows;
  std::vector<std::string> inner_ipa;
  match::ParallelMatcherOptions pm_options;
  pm_options.threads = options.hints.threads;
  pm_options.cache = &match::PhonemeCache::Default();
  match::ParallelMatcher pm(matcher, pm_options);
  if (choice.plan == LexEqualPlan::kParallelScan) {
    SeqScanExecutor inner(right);
    LEXEQUAL_RETURN_IF_ERROR(inner.Init());
    Tuple rrow;
    while (true) {
      bool rhas;
      LEXEQUAL_ASSIGN_OR_RETURN(rhas, inner.Next(&rrow));
      if (!rhas) break;
      const Value& cell = rrow[rphon];
      if (cell.type() != ValueType::kString) {
        return Status::Corruption("phonemic column is not a string");
      }
      inner_ipa.push_back(cell.AsString().text());
      inner_rows.push_back(std::move(rrow));
    }
  }

  SeqScanExecutor outer(left);
  LEXEQUAL_RETURN_IF_ERROR(outer.Init());
  Tuple lrow;
  uint64_t outer_seen = 0;
  while (true) {
    bool has;
    LEXEQUAL_ASSIGN_OR_RETURN(has, outer.Next(&lrow));
    if (!has) break;
    if (outer_limit > 0 && outer_seen >= outer_limit) break;
    ++outer_seen;
    ++qs.rows_scanned;
    if (!LanguageAllowed(options, lrow, lcol)) continue;
    PhonemeString lph;
    LEXEQUAL_ASSIGN_OR_RETURN(lph, RowPhonemes(lrow, lphon));
    if (lph.empty()) continue;
    const text::Language llang = lrow[lcol].AsString().language();

    auto emit_if_match = [&](const Tuple& rrow) -> Status {
      // Fig. 5: B1.Language <> B2.Language.
      if (rrow[rcol].AsString().language() == llang) return Status::OK();
      if (!LanguageAllowed(options, rrow, rcol)) return Status::OK();
      Result<bool> matched =
          VerifyCandidate(matcher, lph, rrow, rphon, &qs);
      if (!matched.ok()) return matched.status();
      if (matched.value()) out.emplace_back(lrow, rrow);
      return Status::OK();
    };

    switch (choice.plan) {
      case LexEqualPlan::kNaiveUdf: {
        SeqScanExecutor inner(right);
        LEXEQUAL_RETURN_IF_ERROR(inner.Init());
        Tuple rrow;
        while (true) {
          bool rhas;
          LEXEQUAL_ASSIGN_OR_RETURN(rhas, inner.Next(&rrow));
          if (!rhas) break;
          LEXEQUAL_RETURN_IF_ERROR(emit_if_match(rrow));
        }
        break;
      }
      case LexEqualPlan::kQGramFilter: {
        if (right->qgram_index == nullptr) {
          return Status::NotFound("no q-gram index on '" + right_table +
                                  "'");
        }
        // One probe multiset per outer probe string.
        const match::QGramProbe probe =
            match::BuildQGramProbe(lph, right->qgram_index->q);
        std::vector<RID> rids;
        LEXEQUAL_ASSIGN_OR_RETURN(
            rids, QGramCandidates(*right, probe,
                                  options.match.threshold, &qs));
        RidLookupExecutor lookup(right, std::move(rids));
        LEXEQUAL_RETURN_IF_ERROR(lookup.Init());
        Tuple rrow;
        while (true) {
          bool rhas;
          LEXEQUAL_ASSIGN_OR_RETURN(rhas, lookup.Next(&rrow));
          if (!rhas) break;
          LEXEQUAL_RETURN_IF_ERROR(emit_if_match(rrow));
        }
        break;
      }
      case LexEqualPlan::kInvertedIndex: {
        if (right->inverted_index == nullptr) {
          return Status::NotFound("no inverted index on '" +
                                  right_table + "'");
        }
        const InvertedIndexInfo& ii = *right->inverted_index;
        const match::QGramProbe probe = match::BuildQGramProbe(lph, ii.q);
        index::invidx::Stats istats;
        std::vector<uint64_t> docids;
        LEXEQUAL_ASSIGN_OR_RETURN(
            docids, ii.index->ThresholdCandidates(
                        probe, options.match.threshold, &istats));
        FoldInvidxStats(istats, &qs);
        qs.rows_scanned += docids.size();
        std::vector<RID> rids;
        rids.reserve(docids.size());
        for (uint64_t d : docids) {
          rids.push_back(InvertedIndexInfo::UnpackDocid(d));
        }
        RidLookupExecutor lookup(right, std::move(rids));
        LEXEQUAL_RETURN_IF_ERROR(lookup.Init());
        Tuple rrow;
        while (true) {
          bool rhas;
          LEXEQUAL_ASSIGN_OR_RETURN(rhas, lookup.Next(&rrow));
          if (!rhas) break;
          LEXEQUAL_RETURN_IF_ERROR(emit_if_match(rrow));
        }
        break;
      }
      case LexEqualPlan::kPhoneticIndex: {
        if (right->phonetic_index == nullptr) {
          return Status::NotFound("no phonetic index on '" + right_table +
                                  "'");
        }
        const uint64_t key = phonetic::GroupedPhonemeStringId(
            lph, phonetic::ClusterTable::Default());
        std::vector<RID> rids;
        LEXEQUAL_ASSIGN_OR_RETURN(
            rids, right->phonetic_index->btree->ScanEqual(key));
        qs.rows_scanned += rids.size();
        RidLookupExecutor lookup(right, std::move(rids));
        LEXEQUAL_RETURN_IF_ERROR(lookup.Init());
        Tuple rrow;
        while (true) {
          bool rhas;
          LEXEQUAL_ASSIGN_OR_RETURN(rhas, lookup.Next(&rrow));
          if (!rhas) break;
          LEXEQUAL_RETURN_IF_ERROR(emit_if_match(rrow));
        }
        break;
      }
      case LexEqualPlan::kParallelScan: {
        match::MatchStats mstats;
        std::vector<size_t> matched;
        {
          Result<std::vector<size_t>> matched_or =
              pm.MatchBatchIpa(lph, inner_ipa, &mstats);
          if (!matched_or.ok()) return matched_or.status();
          matched = std::move(matched_or).value();
        }
        qs.candidates += mstats.dp_evaluations;
        qs.udf_calls += mstats.dp_evaluations;
        qs.match.Merge(mstats);
        for (size_t idx : matched) {
          const Tuple& rrow = inner_rows[idx];
          // Fig. 5: B1.Language <> B2.Language, plus inlanguages.
          if (rrow[rcol].AsString().language() == llang) continue;
          if (!LanguageAllowed(options, rrow, rcol)) continue;
          out.emplace_back(lrow, rrow);
        }
        break;
      }
      case LexEqualPlan::kAuto:
        return Status::Internal("kAuto survived plan resolution");
    }
  }
  qs.results = out.size();
  return out;
}

Result<std::vector<TopKRow>> Engine::TopKPhonemesLocked(
    const std::string& table, const std::string& column,
    const PhonemeString& query_phon, size_t k,
    const LexEqualQueryOptions& options, QueryStats* qs,
    obs::QueryTrace* trace) {
  TableInfo* info;
  LEXEQUAL_ASSIGN_OR_RETURN(info, catalog_.GetTable(table));
  uint32_t source_col;
  LEXEQUAL_ASSIGN_OR_RETURN(source_col, info->schema.IndexOf(column));
  uint32_t phon_col;
  LEXEQUAL_ASSIGN_OR_RETURN(phon_col,
                            PhonemicColumnOf(info->schema, source_col));

  match::LexEqualMatcher matcher(options.match);
  std::vector<TopKRow> out;
  qs->plan_was_auto = options.hints.plan == LexEqualPlan::kAuto;
  if (options.hints.plan == LexEqualPlan::kInvertedIndex &&
      info->inverted_index == nullptr) {
    return Status::NotFound("no inverted index on '" + table + "'");
  }
  if (k == 0) {
    qs->plan = info->inverted_index != nullptr
                   ? LexEqualPlan::kInvertedIndex
                   : LexEqualPlan::kNaiveUdf;
    return out;
  }

  // Plan: the inverted index when present; a USING hint for another
  // plan or an empty probe (no grams to merge) runs the exact
  // brute-force ranking. Either path scores through the same kernel,
  // so the result rows and scores are identical.
  const bool hinted_away =
      options.hints.plan != LexEqualPlan::kAuto &&
      options.hints.plan != LexEqualPlan::kInvertedIndex;
  const bool use_invidx = info->inverted_index != nullptr &&
                          !hinted_away && !query_phon.empty();
  if (!use_invidx) {
    qs->plan = LexEqualPlan::kNaiveUdf;
    LEXEQUAL_ASSIGN_OR_RETURN(
        out, BruteForceTopK(info, source_col, phon_col, matcher,
                            query_phon, k, options, qs, trace));
    qs->results = out.size();
    return out;
  }

  qs->plan = LexEqualPlan::kInvertedIndex;
  const InvertedIndexInfo& ii = *info->inverted_index;
  const match::QGramProbe probe =
      match::BuildQGramProbe(query_phon, ii.q);

  // Lower-bound cost facts for the per-list score upper bound
  // (understating them weakens pruning but never correctness).
  index::invidx::ScoreBounds bounds;
  bounds.min_indel = matcher.kernel().costs().min_indel();
  bounds.cheapest_edit = std::min(matcher.kernel().costs().min_edit(),
                                  matcher.kernel().costs().min_indel());
  bounds.min_len = ii.min_len;
  bounds.max_len = ii.max_len;

  match::DpArena& arena = match::DpArena::ThreadLocal();
  std::unordered_map<uint64_t, Tuple> fetched;
  index::InvidxVerifyFn verify =
      [&](uint64_t docid,
          uint32_t /*len*/) -> Result<std::optional<double>> {
    const RID rid = InvertedIndexInfo::UnpackDocid(docid);
    std::string rec;
    LEXEQUAL_ASSIGN_OR_RETURN(rec, info->heap->Get(rid));
    Tuple row;
    LEXEQUAL_ASSIGN_OR_RETURN(row, DeserializeTuple(rec));
    ++qs->candidates;
    ++qs->match.tuples_scanned;
    if (!LanguageAllowed(options, row, source_col)) {
      return std::optional<double>();
    }
    PhonemeString cand;
    LEXEQUAL_ASSIGN_OR_RETURN(cand, RowPhonemes(row, phon_col));
    if (cand.empty()) {
      ++qs->match.filter_rejections;
      return std::optional<double>();
    }
    ++qs->udf_calls;
    ++qs->match.dp_evaluations;
    const double dist =
        matcher.kernel().Distance(query_phon, cand, &arena);
    const double score = index::invidx::LexsimScore(
        dist, query_phon.size(), cand.size());
    fetched[docid] = std::move(row);
    return std::optional<double>(score);
  };

  index::invidx::Stats istats;
  index::invidx::TopKOutcome outcome;
  LEXEQUAL_ASSIGN_OR_RETURN(
      outcome, ii.index->TopK(probe, k, bounds, verify, &istats, trace));
  FoldInvidxStats(istats, qs);
  if (!outcome.exact) {
    // The score bound could not certify the ranking (e.g. a row
    // sharing no gram with the probe could still outscore the k-th
    // hit on a short or sparse lexicon). Re-rank exactly.
    EngineCounters::Get().invidx_fallback_scans->Inc();
    ++qs->invidx_fallbacks;
    LEXEQUAL_ASSIGN_OR_RETURN(
        out, BruteForceTopK(info, source_col, phon_col, matcher,
                            query_phon, k, options, qs, trace));
    qs->results = out.size();
    return out;
  }
  out.reserve(outcome.hits.size());
  for (const index::invidx::TopKHit& hit : outcome.hits) {
    auto it = fetched.find(hit.docid);
    if (it == fetched.end()) {
      return Status::Internal("top-K hit was never verified");
    }
    out.push_back(TopKRow{it->second, hit.score});
  }
  qs->results = out.size();
  return out;
}

Result<std::vector<TopKRow>> Engine::BruteForceTopK(
    TableInfo* info, uint32_t source_col, uint32_t phon_col,
    const match::LexEqualMatcher& matcher,
    const PhonemeString& query_phon, size_t k,
    const LexEqualQueryOptions& options, QueryStats* qs,
    obs::QueryTrace* trace) {
  obs::ScopedSpan span(trace, "topk_brute_force");
  struct Scored {
    double score = 0.0;
    uint64_t docid = 0;
    Tuple row;
  };
  // Heap comparator = the ranking order (score desc, docid asc); with
  // it the heap front is the *worst* kept entry, the one the next
  // better candidate evicts.
  auto better = [](const Scored& a, const Scored& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.docid < b.docid;
  };
  std::vector<Scored> heap;
  heap.reserve(k);
  match::DpArena& arena = match::DpArena::ThreadLocal();
  SeqScanExecutor scan(info);
  LEXEQUAL_RETURN_IF_ERROR(scan.Init());
  Tuple row;
  while (true) {
    bool has;
    LEXEQUAL_ASSIGN_OR_RETURN(has, scan.Next(&row));
    if (!has) break;
    if (qs != nullptr) ++qs->rows_scanned;
    if (!LanguageAllowed(options, row, source_col)) continue;
    PhonemeString cand;
    LEXEQUAL_ASSIGN_OR_RETURN(cand, RowPhonemes(row, phon_col));
    if (cand.empty()) continue;
    if (qs != nullptr) {
      ++qs->candidates;
      ++qs->match.tuples_scanned;
      ++qs->udf_calls;
      ++qs->match.dp_evaluations;
    }
    const double dist =
        matcher.kernel().Distance(query_phon, cand, &arena);
    Scored s;
    s.score = index::invidx::LexsimScore(dist, query_phon.size(),
                                         cand.size());
    s.docid = InvertedIndexInfo::PackDocid(scan.current_rid());
    if (heap.size() < k) {
      s.row = row;
      heap.push_back(std::move(s));
      std::push_heap(heap.begin(), heap.end(), better);
    } else if (better(s, heap.front())) {
      s.row = row;
      std::pop_heap(heap.begin(), heap.end(), better);
      heap.back() = std::move(s);
      std::push_heap(heap.begin(), heap.end(), better);
    }
  }
  std::sort(heap.begin(), heap.end(), better);
  std::vector<TopKRow> out;
  out.reserve(heap.size());
  for (Scored& s : heap) {
    out.push_back(TopKRow{std::move(s.row), s.score});
  }
  span.AddRows(out.size());
  return out;
}

Result<std::vector<std::pair<Tuple, Tuple>>> Engine::ExactJoinLocked(
    const std::string& left_table, const std::string& left_column,
    const std::string& right_table, const std::string& right_column,
    uint64_t outer_limit, QueryStats* stats) {
  QueryStats& qs = *stats;
  TableInfo* left;
  LEXEQUAL_ASSIGN_OR_RETURN(left, catalog_.GetTable(left_table));
  TableInfo* right;
  LEXEQUAL_ASSIGN_OR_RETURN(right, catalog_.GetTable(right_table));
  uint32_t lcol;
  LEXEQUAL_ASSIGN_OR_RETURN(lcol, left->schema.IndexOf(left_column));
  uint32_t rcol;
  LEXEQUAL_ASSIGN_OR_RETURN(rcol, right->schema.IndexOf(right_column));

  // Hash the inner side on text (what a native equi-join does).
  std::unordered_map<std::string, std::vector<Tuple>> inner;
  {
    SeqScanExecutor scan(right);
    LEXEQUAL_RETURN_IF_ERROR(scan.Init());
    Tuple row;
    while (true) {
      bool has;
      LEXEQUAL_ASSIGN_OR_RETURN(has, scan.Next(&row));
      if (!has) break;
      inner[row[rcol].AsString().text()].push_back(row);
    }
  }
  std::vector<std::pair<Tuple, Tuple>> out;
  SeqScanExecutor scan(left);
  LEXEQUAL_RETURN_IF_ERROR(scan.Init());
  Tuple row;
  uint64_t outer_seen = 0;
  while (true) {
    bool has;
    LEXEQUAL_ASSIGN_OR_RETURN(has, scan.Next(&row));
    if (!has) break;
    if (outer_limit > 0 && outer_seen >= outer_limit) break;
    ++outer_seen;
    ++qs.rows_scanned;
    auto it = inner.find(row[lcol].AsString().text());
    if (it == inner.end()) continue;
    const text::Language llang = row[lcol].AsString().language();
    for (const Tuple& rrow : it->second) {
      if (rrow[rcol].AsString().language() == llang) continue;
      out.emplace_back(row, rrow);
    }
  }
  qs.results = out.size();
  return out;
}

}  // namespace lexequal::engine
