// Cost-based plan selection for LexEQUAL predicates.
//
// The paper's efficiency study (Tables 1-3) shows the best access
// path depends on table size, selectivity, and threshold. The picker
// prices every concrete plan from ANALYZE statistics (table_stats.h)
// and the match-layer cost estimators (match/plan_cost.h), then
// chooses the cheapest eligible one. A `USING` hint bypasses the
// choice but the estimates are still produced for EXPLAIN.
//
// Eligibility rules:
//  * kQGramFilter / kPhoneticIndex / kInvertedIndex need the
//    corresponding index.
//  * kPhoneticIndex is additionally gated to thresholds <=
//    kPhoneticIndexThresholdGate: the index only returns rows whose
//    grouped phonetic key equals the probe's, so at loose thresholds
//    its false-dismissal rate grows past the paper's reported 4-5%
//    (§5.3) and we refuse to auto-pick it. An explicit hint still
//    runs it.
//
// Unanalyzed tables fall back to a documented heuristic — the
// pre-optimizer preference order: phonetic index (when present and
// under the threshold gate), else q-gram index, else naive scan.

#ifndef LEXEQUAL_ENGINE_PLAN_PICKER_H_
#define LEXEQUAL_ENGINE_PLAN_PICKER_H_

#include <string>
#include <vector>

#include "engine/plan.h"
#include "engine/table_stats.h"
#include "match/lexequal.h"

namespace lexequal::engine {

/// Auto-pick gate for the phonetic index (see header comment).
inline constexpr double kPhoneticIndexThresholdGate = 0.35;

/// Priced alternative for one concrete plan.
struct PlanCostEstimate {
  LexEqualPlan plan = LexEqualPlan::kNaiveUdf;
  bool eligible = false;
  double cost = 0.0;            // abstract work units (plan_cost.h)
  double est_candidates = 0.0;  // rows expected to reach the UDF
  std::string note;             // ineligibility reason, or ""
};

/// The picker's decision plus the priced alternatives behind it.
struct PlanChoice {
  LexEqualPlan plan = LexEqualPlan::kNaiveUdf;
  bool used_stats = false;  // false = heuristic fallback (unanalyzed)
  bool hinted = false;      // plan forced by a USING hint
  std::vector<PlanCostEstimate> estimates;  // concrete plans, enum order

  const PlanCostEstimate* Estimate(LexEqualPlan p) const {
    for (const PlanCostEstimate& e : estimates) {
      if (e.plan == p) return &e;
    }
    return nullptr;
  }
};

/// Everything the picker needs, decoupled from the Engine so unit tests
/// can fabricate inputs directly.
struct PlanPickerInputs {
  const TableStats* stats = nullptr;  // null/unanalyzed => heuristic
  uint32_t phon_col = 0;              // phonemic column being probed
  bool has_qgram = false;
  int qgram_q = 2;
  bool has_phonetic = false;
  bool has_invidx = false;
  int invidx_q = 2;
  double query_len = 8.0;             // probe length in phonemes
  match::LexEqualOptions match;
  PlanHints hints;
};

/// Chooses the plan for one LexEQUAL selection (or one join probe).
/// Honors hints.plan != kAuto as a forced choice; otherwise picks the
/// cheapest eligible plan by cost (stats) or heuristic (no stats).
PlanChoice ChooseLexEqualPlan(const PlanPickerInputs& in);

}  // namespace lexequal::engine

#endif  // LEXEQUAL_ENGINE_PLAN_PICKER_H_
