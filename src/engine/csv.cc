#include "engine/csv.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace lexequal::engine {

namespace {

// Splits "text@Language" when the suffix names a known language.
Value ParseStringCell(const std::string& field) {
  const size_t at = field.rfind('@');
  if (at != std::string::npos && at + 1 < field.size()) {
    Result<text::Language> lang =
        text::ParseLanguage(field.substr(at + 1));
    if (lang.ok() && lang.value() != text::Language::kAny) {
      return Value::String(field.substr(0, at), lang.value());
    }
  }
  return Value::String(text::TaggedString::WithDetectedLanguage(field));
}

}  // namespace

Result<std::vector<std::string>> ParseCsvLine(std::string_view line) {
  std::vector<std::string> fields;
  std::string cur;
  bool quoted = false;
  size_t i = 0;
  const size_t n = line.size();
  while (i < n) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < n && line[i + 1] == '"') {  // escaped quote
          cur.push_back('"');
          i += 2;
          continue;
        }
        quoted = false;
        ++i;
        continue;
      }
      cur.push_back(c);
      ++i;
      continue;
    }
    if (c == '"') {
      if (!cur.empty()) {
        return Status::InvalidArgument(
            "quote in the middle of an unquoted field");
      }
      quoted = true;
      ++i;
      continue;
    }
    if (c == ',') {
      fields.push_back(std::move(cur));
      cur.clear();
      ++i;
      continue;
    }
    cur.push_back(c);
    ++i;
  }
  if (quoted) {
    return Status::InvalidArgument("unterminated quoted field");
  }
  fields.push_back(std::move(cur));
  return fields;
}

std::string QuoteCsvField(std::string_view field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(field);
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += '"';
  return out;
}

Result<CsvImportResult> ImportCsv(Engine* engine,
                                  const std::string& table,
                                  const std::string& path,
                                  bool has_header) {
  TableInfo* info;
  LEXEQUAL_ASSIGN_OR_RETURN(info, engine->GetTable(table));
  // User columns, in schema order.
  std::vector<const Column*> user_cols;
  for (const Column& col : info->schema.columns()) {
    if (!col.phonemic_source.has_value()) user_cols.push_back(&col);
  }

  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IOError("cannot open '" + path + "'");
  }
  CsvImportResult result;
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (first && has_header) {
      first = false;
      continue;
    }
    first = false;
    if (line.empty()) continue;
    Result<std::vector<std::string>> fields = ParseCsvLine(line);
    if (!fields.ok() || fields->size() != user_cols.size()) {
      ++result.rows_rejected;
      continue;
    }
    Tuple values;
    values.reserve(user_cols.size());
    bool bad = false;
    for (size_t c = 0; c < user_cols.size(); ++c) {
      const std::string& field = (*fields)[c];
      switch (user_cols[c]->type) {
        case ValueType::kInt64: {
          char* end = nullptr;
          const long long v = std::strtoll(field.c_str(), &end, 10);
          if (end != field.c_str() + field.size()) bad = true;
          values.push_back(Value::Int64(v));
          break;
        }
        case ValueType::kDouble: {
          char* end = nullptr;
          const double v = std::strtod(field.c_str(), &end);
          if (end != field.c_str() + field.size()) bad = true;
          values.push_back(Value::Double(v));
          break;
        }
        case ValueType::kString:
          values.push_back(ParseStringCell(field));
          break;
      }
    }
    if (bad) {
      ++result.rows_rejected;
      continue;
    }
    Result<storage::RID> rid = engine->Insert(table, values);
    if (!rid.ok()) {
      ++result.rows_rejected;
      continue;
    }
    ++result.rows_inserted;
  }
  return result;
}

Status ExportCsv(Engine* engine, const std::string& table,
                 const std::string& path) {
  TableInfo* info;
  LEXEQUAL_ASSIGN_OR_RETURN(info, engine->GetTable(table));
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    return Status::IOError("cannot create '" + path + "'");
  }
  // Header.
  for (size_t c = 0; c < info->schema.size(); ++c) {
    if (c > 0) out << ',';
    out << QuoteCsvField(info->schema.column(c).name);
  }
  out << '\n';

  SeqScanExecutor scan(info);
  LEXEQUAL_RETURN_IF_ERROR(scan.Init());
  Tuple row;
  while (true) {
    bool has;
    LEXEQUAL_ASSIGN_OR_RETURN(has, scan.Next(&row));
    if (!has) break;
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << ',';
      const Value& v = row[c];
      if (v.type() == ValueType::kString &&
          v.AsString().language() != text::Language::kUnknown) {
        out << QuoteCsvField(
            v.AsString().text() + "@" +
            std::string(text::LanguageName(v.AsString().language())));
      } else {
        out << QuoteCsvField(v.ToDisplayString());
      }
    }
    out << '\n';
  }
  if (!out.good()) {
    return Status::IOError("write failed for '" + path + "'");
  }
  return Status::OK();
}

}  // namespace lexequal::engine
