// Physical plans for LexEQUAL predicates, and the descriptor table
// that keeps every shell/EXPLAIN surface exhaustive over them.

#ifndef LEXEQUAL_ENGINE_PLAN_H_
#define LEXEQUAL_ENGINE_PLAN_H_

#include <cstdint>
#include <iterator>
#include <string_view>

namespace lexequal::engine {

/// Which physical plan evaluates a LexEQUAL predicate.
enum class LexEqualPlan {
  kNaiveUdf,        // full scan / NLJ + UDF (paper Table 1)
  kQGramFilter,     // q-gram filters + UDF   (paper Table 2)
  kPhoneticIndex,   // phonetic B-Tree + UDF  (paper Table 3)
  kParallelScan,    // batch scan: filters + thread pool + phoneme
                    // cache; same match set as kNaiveUdf
  kInvertedIndex,   // q-gram inverted-index merge + UDF on survivors;
                    // also backs ORDER BY lexsim(...) LIMIT k
  kAuto,            // cost-based choice from table statistics; must
                    // stay last (the descriptor guard pins it there)
};

/// One row of the plan table: canonical name, the USING spelling, and
/// a one-line summary for shells and EXPLAIN output.
struct LexEqualPlanDesc {
  LexEqualPlan plan;
  std::string_view name;     // canonical dashed name ("qgram-filter")
  std::string_view hint;     // USING spelling ("qgram")
  std::string_view summary;  // what the plan does
};

/// Every enum value, in enum order. Adding a LexEqualPlan without a
/// descriptor row here (or reordering either side) breaks the
/// static_assert below, so new plans cannot ship unnamed.
inline constexpr LexEqualPlanDesc kLexEqualPlans[] = {
    {LexEqualPlan::kNaiveUdf, "naive-udf", "naive",
     "full heap scan, UDF on every row (paper Table 1)"},
    {LexEqualPlan::kQGramFilter, "qgram-filter", "qgram",
     "q-gram length/position/count filters, UDF on survivors"},
    {LexEqualPlan::kPhoneticIndex, "phonetic-index", "phonetic",
     "grouped phonetic-key B-Tree probe, UDF on key-equal rows"},
    {LexEqualPlan::kParallelScan, "parallel-scan", "parallel",
     "batch scan over a worker pool; same rows as naive"},
    {LexEqualPlan::kInvertedIndex, "inverted-index", "invidx",
     "posting-list merge over the gram inverted index, UDF on "
     "survivors; skip blocks back top-K ranking"},
    {LexEqualPlan::kAuto, "auto", "auto",
     "cost-based choice from ANALYZE statistics"},
};

inline constexpr size_t kLexEqualPlanCount = std::size(kLexEqualPlans);

namespace internal {
constexpr bool PlanTableIsExhaustive() {
  for (size_t i = 0; i < kLexEqualPlanCount; ++i) {
    if (kLexEqualPlans[i].plan != static_cast<LexEqualPlan>(i)) {
      return false;
    }
  }
  return kLexEqualPlans[kLexEqualPlanCount - 1].plan ==
         LexEqualPlan::kAuto;
}
}  // namespace internal

static_assert(internal::PlanTableIsExhaustive(),
              "kLexEqualPlans must list every LexEqualPlan value in "
              "enum order, with kAuto last — add a descriptor row for "
              "any new plan");

/// Canonical name of a plan ("naive-udf", ..., "auto").
constexpr std::string_view LexEqualPlanName(LexEqualPlan plan) {
  const auto i = static_cast<size_t>(plan);
  return i < kLexEqualPlanCount ? kLexEqualPlans[i].name : "unknown";
}

/// Per-query plan hints. Defaulting the plan to kAuto hands hint-free
/// callers to the optimizer; `USING <plan>` (or setting `plan`)
/// remains an explicit override.
struct PlanHints {
  LexEqualPlan plan = LexEqualPlan::kAuto;
  /// Worker threads for kParallelScan (0 = hardware). Also feeds the
  /// cost model's parallel-speedup estimate.
  uint32_t threads = 0;
};

}  // namespace lexequal::engine

#endif  // LEXEQUAL_ENGINE_PLAN_H_
