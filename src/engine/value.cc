#include "engine/value.h"

#include <cstring>

namespace lexequal::engine {

namespace {

void AppendU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void AppendU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

bool ReadBytes(std::string_view bytes, size_t* pos, void* out,
               size_t n) {
  if (*pos + n > bytes.size()) return false;
  std::memcpy(out, bytes.data() + *pos, n);
  *pos += n;
  return true;
}

}  // namespace

std::string_view ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kInt64:
      return "INT64";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "STRING";
  }
  return "UNKNOWN";
}

std::string Value::ToDisplayString() const {
  switch (type_) {
    case ValueType::kInt64:
      return std::to_string(int_);
    case ValueType::kDouble: {
      std::string s = std::to_string(double_);
      // Trim trailing zeros but keep one decimal.
      while (s.size() > 1 && s.back() == '0' &&
             s[s.size() - 2] != '.') {
        s.pop_back();
      }
      return s;
    }
    case ValueType::kString:
      return string_.text();
  }
  return "";
}

bool operator==(const Value& a, const Value& b) {
  if (a.type_ != b.type_) return false;
  switch (a.type_) {
    case ValueType::kInt64:
      return a.int_ == b.int_;
    case ValueType::kDouble:
      return a.double_ == b.double_;
    case ValueType::kString:
      return a.string_ == b.string_;
  }
  return false;
}

Result<uint32_t> Schema::IndexOf(std::string_view name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return static_cast<uint32_t>(i);
  }
  return Status::NotFound("no column named '" + std::string(name) + "'");
}

size_t Schema::UserColumnCount() const {
  size_t n = 0;
  for (const Column& c : columns_) {
    if (!c.phonemic_source.has_value()) ++n;
  }
  return n;
}

std::string SerializeTuple(const Tuple& tuple) {
  std::string out;
  AppendU32(&out, static_cast<uint32_t>(tuple.size()));
  for (const Value& v : tuple) {
    out.push_back(static_cast<char>(v.type()));
    switch (v.type()) {
      case ValueType::kInt64:
        AppendU64(&out, static_cast<uint64_t>(v.AsInt64()));
        break;
      case ValueType::kDouble: {
        double d = v.AsDouble();
        uint64_t bits;
        std::memcpy(&bits, &d, sizeof(bits));
        AppendU64(&out, bits);
        break;
      }
      case ValueType::kString: {
        const text::TaggedString& s = v.AsString();
        out.push_back(static_cast<char>(s.language()));
        AppendU32(&out, static_cast<uint32_t>(s.text().size()));
        out.append(s.text());
        break;
      }
    }
  }
  return out;
}

Result<Tuple> DeserializeTuple(std::string_view bytes) {
  size_t pos = 0;
  uint32_t count;
  if (!ReadBytes(bytes, &pos, &count, sizeof(count))) {
    return Status::Corruption("truncated tuple header");
  }
  Tuple tuple;
  tuple.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint8_t type_byte;
    if (!ReadBytes(bytes, &pos, &type_byte, 1)) {
      return Status::Corruption("truncated tuple cell type");
    }
    switch (static_cast<ValueType>(type_byte)) {
      case ValueType::kInt64: {
        uint64_t v;
        if (!ReadBytes(bytes, &pos, &v, sizeof(v))) {
          return Status::Corruption("truncated int cell");
        }
        tuple.push_back(Value::Int64(static_cast<int64_t>(v)));
        break;
      }
      case ValueType::kDouble: {
        uint64_t bits;
        if (!ReadBytes(bytes, &pos, &bits, sizeof(bits))) {
          return Status::Corruption("truncated double cell");
        }
        double d;
        std::memcpy(&d, &bits, sizeof(d));
        tuple.push_back(Value::Double(d));
        break;
      }
      case ValueType::kString: {
        uint8_t lang;
        uint32_t len;
        if (!ReadBytes(bytes, &pos, &lang, 1) ||
            !ReadBytes(bytes, &pos, &len, sizeof(len)) ||
            pos + len > bytes.size()) {
          return Status::Corruption("truncated string cell");
        }
        tuple.push_back(Value::String(
            std::string(bytes.substr(pos, len)),
            static_cast<text::Language>(lang)));
        pos += len;
        break;
      }
      default:
        return Status::Corruption("unknown cell type " +
                                  std::to_string(type_byte));
    }
  }
  return tuple;
}

}  // namespace lexequal::engine
