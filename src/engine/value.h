// Value, Schema, Tuple: the engine's data model.
//
// Multilingual strings are first-class: every string value carries
// its language tag, mirroring the paper's assumption of Unicode data
// "with each attribute value tagged with its language".

#ifndef LEXEQUAL_ENGINE_VALUE_H_
#define LEXEQUAL_ENGINE_VALUE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "text/language.h"
#include "text/tagged_string.h"

namespace lexequal::engine {

/// Column/value types.
enum class ValueType : uint8_t {
  kInt64 = 0,
  kDouble = 1,
  kString = 2,
};

std::string_view ValueTypeName(ValueType type);

/// A dynamically typed cell.
class Value {
 public:
  Value() : type_(ValueType::kInt64), int_(0) {}

  static Value Int64(int64_t v) {
    Value out;
    out.type_ = ValueType::kInt64;
    out.int_ = v;
    return out;
  }
  static Value Double(double v) {
    Value out;
    out.type_ = ValueType::kDouble;
    out.double_ = v;
    return out;
  }
  static Value String(std::string s, text::Language lang =
                                         text::Language::kUnknown) {
    Value out;
    out.type_ = ValueType::kString;
    out.string_ = text::TaggedString(std::move(s), lang);
    return out;
  }
  static Value String(text::TaggedString s) {
    Value out;
    out.type_ = ValueType::kString;
    out.string_ = std::move(s);
    return out;
  }

  ValueType type() const { return type_; }
  int64_t AsInt64() const { return int_; }
  double AsDouble() const { return double_; }
  const text::TaggedString& AsString() const { return string_; }

  /// Rendering for result display ("Nehru", "9.95", "250").
  std::string ToDisplayString() const;

  /// Typed equality; values of different types never compare equal.
  friend bool operator==(const Value& a, const Value& b);

 private:
  ValueType type_;
  int64_t int_ = 0;
  double double_ = 0;
  text::TaggedString string_;
};

/// One column of a schema. `phonemic_source` marks a derived column:
/// the engine fills it with the IPA transform of the column at that
/// ordinal on every insert (the paper's materialized phonemic
/// representation).
struct Column {
  std::string name;
  ValueType type = ValueType::kString;
  std::optional<uint32_t> phonemic_source;
};

/// An ordered set of columns.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns)
      : columns_(std::move(columns)) {}

  const std::vector<Column>& columns() const { return columns_; }
  size_t size() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }

  /// Ordinal of a named column, or NotFound.
  Result<uint32_t> IndexOf(std::string_view name) const;

  /// Count of columns the user supplies on insert (non-derived).
  size_t UserColumnCount() const;

 private:
  std::vector<Column> columns_;
};

/// A row: one Value per schema column.
using Tuple = std::vector<Value>;

/// Serializes a tuple for heap storage (self-describing cells).
std::string SerializeTuple(const Tuple& tuple);

/// Inverse of SerializeTuple; fails on corrupt bytes.
Result<Tuple> DeserializeTuple(std::string_view bytes);

}  // namespace lexequal::engine

#endif  // LEXEQUAL_ENGINE_VALUE_H_
