#include "engine/catalog.h"

namespace lexequal::engine {

Status Catalog::AddTable(std::unique_ptr<TableInfo> table) {
  const std::string& name = table->name;
  if (tables_.count(name) > 0) {
    return Status::AlreadyExists("table '" + name + "' already exists");
  }
  tables_[name] = std::move(table);
  return Status::OK();
}

Result<TableInfo*> Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no table named '" + name + "'");
  }
  return it->second.get();
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, info] : tables_) out.push_back(name);
  return out;
}

}  // namespace lexequal::engine
