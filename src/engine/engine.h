// Engine: the shared half of the execution API — storage, catalog,
// G2P, indexes, and table statistics behind one reader/writer latch
// (the architecture of the paper's Figure 7, grown to many clients).
//
// Concurrency contract: an Engine is shared by any number of
// Sessions (engine/session.h). Queries run under the shared latch and
// may execute concurrently from different threads; DDL, ANALYZE, and
// Insert take the latch exclusively. A Session itself is
// single-threaded — one client, one thread — so all per-query state
// (options defaults, last stats, tracing) lives there, not here.

#ifndef LEXEQUAL_ENGINE_ENGINE_H_
#define LEXEQUAL_ENGINE_ENGINE_H_

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "engine/catalog.h"
#include "engine/executor.h"
#include "engine/expression.h"
#include "engine/plan.h"
#include "engine/plan_picker.h"
#include "match/lexequal.h"
#include "match/match_stats.h"
#include "match/phoneme_cache.h"
#include "match/qgram.h"
#include "obs/metrics.h"
#include "obs/slow_query_log.h"
#include "obs/stmt_stats.h"
#include "obs/trace.h"
#include "storage/buffer_pool.h"

namespace lexequal::engine {

class Session;

/// Per-query knobs for LexEQUAL selections and joins.
struct LexEqualQueryOptions {
  match::LexEqualOptions match;
  /// Target languages (Fig. 3 "inlanguages"); empty = all (*).
  std::vector<text::Language> in_languages;
  /// Physical-plan hints (engine/plan.h). The default, kAuto, hands
  /// the choice to the cost-based picker; setting hints.plan forces a
  /// specific access path (the SQL `USING <plan>` clause).
  PlanHints hints;
};

/// Execution counters for one query, used by the benchmark tables and
/// EXPLAIN ANALYZE. Counter fields accumulate across queries sharing
/// one stats object (the bench pattern); the plan/estimate/result
/// fields always describe the most recent query.
struct QueryStats {
  uint64_t rows_scanned = 0;     // tuples pulled from base tables
  uint64_t candidates = 0;       // rows reaching the UDF
  uint64_t udf_calls = 0;        // exact matcher invocations
  uint64_t results = 0;          // rows returned
  /// End-to-end wall time in µs, stamped by Session::Execute after
  /// the latch drops — the ground truth the statement-statistics
  /// differential test sums against.
  uint64_t wall_us = 0;
  /// The plan that actually ran (kAuto is resolved before execution).
  LexEqualPlan plan = LexEqualPlan::kNaiveUdf;
  bool plan_was_auto = false;    // picked by the optimizer, not forced
  bool plan_used_stats = false;  // priced from ANALYZE statistics
  double est_cost = 0.0;         // optimizer cost of the executed plan
  double est_candidates = 0.0;   // estimated rows reaching the UDF
  /// Inverted-index work (zero unless kInvertedIndex or top-K ran):
  /// postings decoded vs bypassed through skip blocks, top-K pruning
  /// outcomes, and brute-force fallbacks when the exactness check
  /// cannot certify the ranking.
  uint64_t invidx_postings = 0;
  uint64_t invidx_postings_skipped = 0;
  uint64_t invidx_blocks_skipped = 0;
  uint64_t invidx_early_terminated = 0;
  uint64_t invidx_restarts = 0;
  uint64_t invidx_fallbacks = 0;
  /// Matcher-side breakdown (filters, DP runs, phoneme-cache hits,
  /// threads, wall time). Filled by the parallel plan; the query-side
  /// G2P cache counters are filled by every LexEQUAL text query.
  match::MatchStats match;

  /// Folds one query's stats into this object: counters add, match
  /// stats merge, plan/estimate/result fields take the newcomer's.
  void Accumulate(const QueryStats& other);
};

/// Declarative description of a LexEQUAL access path — the single
/// entry point Engine::CreateIndex builds all index kinds from.
struct IndexSpec {
  enum class Kind {
    kPhonetic,  // grouped phoneme string id B-Tree (paper §5.3)
    kQGram,     // covering positional q-gram B-Tree (paper §5.2)
    kInverted,  // gram posting lists + skip blocks (invidx; §5.2 + top-K)
  };
  Kind kind = Kind::kPhonetic;
  std::string table;
  std::string column;  // the phonemic column to index
  int q = 2;           // gram length; kQGram and kInverted only
};

/// One row of a ranked (top-K) LexEQUAL retrieval, with its score
/// lexsim = 1 - editdistance / max(|a|, |b|) in [..., 1].
struct TopKRow {
  Tuple row;
  double score = 0.0;
};

/// Point-in-time engine health — the status payload the shell's
/// \health renders and the future line-protocol server will serve
/// verbatim. Produced by Engine::Health() under the shared latch;
/// every field is a copy, safe to hold after the latch drops.
struct HealthSnapshot {
  uint64_t uptime_us = 0;  // since Engine::Open

  // Buffer pool: occupancy and hit rate.
  size_t bufpool_frames = 0;
  size_t bufpool_resident = 0;
  uint64_t bufpool_hits = 0;
  uint64_t bufpool_misses = 0;

  // Shared phoneme (G2P) cache: fill and hit rate.
  uint64_t phoneme_cache_entries = 0;
  size_t phoneme_cache_capacity = 0;
  uint64_t phoneme_cache_hits = 0;
  uint64_t phoneme_cache_misses = 0;

  // Catalog shape.
  size_t tables = 0;
  size_t indexes = 0;          // all kinds, all tables
  size_t analyzed_tables = 0;  // tables with optimizer statistics

  // Sessions and queries.
  uint64_t sessions_created = 0;
  int64_t in_flight_queries = 0;  // across all sessions, right now
  uint64_t statements_recorded = 0;
  uint64_t statement_fingerprints = 0;
  uint64_t slow_queries_captured = 0;

  double bufpool_occupancy() const {
    return bufpool_frames == 0 ? 0.0
                               : static_cast<double>(bufpool_resident) /
                                     static_cast<double>(bufpool_frames);
  }
  double bufpool_hit_rate() const {
    const uint64_t total = bufpool_hits + bufpool_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(bufpool_hits) /
                            static_cast<double>(total);
  }
  double phoneme_cache_fill() const {
    return phoneme_cache_capacity == 0
               ? 0.0
               : static_cast<double>(phoneme_cache_entries) /
                     static_cast<double>(phoneme_cache_capacity);
  }
  double phoneme_cache_hit_rate() const {
    const uint64_t total = phoneme_cache_hits + phoneme_cache_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(phoneme_cache_hits) /
                            static_cast<double>(total);
  }

  /// Human-oriented multi-line rendering (the shell's \health).
  std::string ToString() const;
  /// One JSON object (the future status endpoint's payload).
  std::string ToJson() const;
};

/// The shared core of a single-file embedded database with the
/// LexEQUAL extension. Queries go through Session::Execute
/// (engine/session.h); Engine owns the shared state — catalog, buffer
/// pool, indexes, statistics, the metrics registry — and the write
/// path.
///
/// Catalog persistence: page 0 holds a meta heap of catalog snapshot
/// records (table schemas, heap roots, index roots). Flush() writes a
/// fresh snapshot, so a database that was Flush()ed reopens with all
/// tables and indexes intact. DDL (CreateTable / CreateIndex) also
/// snapshots immediately.
class Engine {
 public:
  /// Opens (creating if necessary) the page file at `path` with a
  /// buffer pool of `pool_pages` frames. Reloads the persisted
  /// catalog when the file is non-empty.
  static Result<std::unique_ptr<Engine>> Open(const std::string& path,
                                              size_t pool_pages = 4096);

  ~Engine();

  /// A new client session over this engine. Sessions are cheap — one
  /// per connection/thread; the engine must outlive its sessions.
  /// (Defined in engine/session.h; include it to call Execute.)
  Session CreateSession();

  /// Creates a table. Columns with `phonemic_source` set are derived:
  /// filled on insert with the IPA transform of the source column
  /// (rows whose language has no converter get an empty phonemic
  /// string, which never matches). Takes the latch exclusively.
  Status CreateTable(const std::string& name, Schema schema)
      EXCLUDES(latch_);

  /// Inserts a row; `user_values` covers the non-derived columns in
  /// schema order. Takes the latch exclusively (index maintenance
  /// mutates shared B-Trees and posting lists).
  Result<storage::RID> Insert(const std::string& table,
                              const Tuple& user_values) EXCLUDES(latch_);

  /// Looks up a table under the shared latch. The returned pointer
  /// stays valid for the engine's lifetime (tables are never
  /// dropped), but its mutable state (heap, indexes, stats) must only
  /// be touched under the latch — callers outside a query path should
  /// treat it as a schema snapshot.
  Result<TableInfo*> GetTable(const std::string& name) const
      EXCLUDES(latch_) {
    common::SharedMutexLock lock(&latch_);
    return catalog_.GetTable(name);
  }

  /// Builds the access path described by `spec` over an existing
  /// phonemic column, backfilling existing rows; maintained by
  /// subsequent inserts. A table holds at most one index of each
  /// kind. Takes the latch exclusively.
  Status CreateIndex(const IndexSpec& spec) EXCLUDES(latch_);

  /// Collects optimizer statistics for `table` — row count, phonemic
  /// lengths, phonetic-key fanout, q-gram posting density — in one
  /// heap scan, and persists them through the catalog snapshot. Until
  /// a table is ANALYZEd the plan picker falls back to a heuristic
  /// (see engine/plan_picker.h). Takes the latch exclusively.
  Status Analyze(const std::string& table) EXCLUDES(latch_);

  /// ANALYZEs every table in the catalog under one exclusive latch.
  Status AnalyzeAll() EXCLUDES(latch_);

  storage::BufferPool* buffer_pool() { return pool_.get(); }
  UdfRegistry* udf_registry() { return &udfs_; }
  const g2p::G2PRegistry& g2p() const { return *g2p_; }
  Catalog* catalog() { return &catalog_; }

  /// Cross-query statement statistics, keyed by fingerprint (SHOW
  /// STATEMENTS / shell \statements). Sessions record into it after
  /// releasing the latch; reads are safe from any thread.
  obs::StatementStats* stmt_stats() { return &stmt_stats_; }
  const obs::StatementStats* stmt_stats() const { return &stmt_stats_; }

  /// Ring of over-threshold query evidence (shell \slowlog). Fed by
  /// sessions whose slow_query_us threshold is set.
  obs::SlowQueryLog* slow_query_log() { return &slow_log_; }
  const obs::SlowQueryLog* slow_query_log() const { return &slow_log_; }

  /// One consistent-enough health snapshot: catalog shape under the
  /// shared latch, cache/pool counters from their atomics.
  HealthSnapshot Health() const EXCLUDES(latch_);

  /// Process-wide metrics registry in Prometheus text exposition
  /// format — the shell's \metrics command.
  static std::string DumpMetrics() {
    return obs::MetricsRegistry::Default().ExportPrometheus();
  }

  /// The same registry as one JSON object (\metrics json).
  static std::string DumpMetricsJson() {
    return obs::MetricsRegistry::Default().ExportJson();
  }

  /// Snapshots the catalog (current index roots included) and flushes
  /// all dirty pages. Call before closing to make the file reopenable
  /// with its tables and indexes. Takes the latch exclusively.
  Status Flush() EXCLUDES(latch_);

 private:
  friend class Session;  // queries run through the *Locked impls

  Engine(std::unique_ptr<storage::DiskManager> disk,
         std::unique_ptr<storage::BufferPool> pool);

  // ------------------------------------------------------------------
  // Latch discipline. `latch_` guards the shared mutable state: the
  // catalog map, every TableInfo (heaps, index roots, stats), and the
  // meta heap. Readers (Session::Execute) hold it shared for the
  // whole query, so TableInfo pointers stay valid across the plan;
  // writers (DDL / ANALYZE / Insert / Flush) hold it exclusively.
  // Methods suffixed `Locked` assume the caller already holds the
  // latch in the required mode and never re-acquire it. The contract
  // is machine-checked twice: the REQUIRES / REQUIRES_SHARED
  // annotations below make clang's thread-safety analysis reject any
  // unlatched call path at compile time (the `thread-safety` preset),
  // and the lexlint `latch` rule enforces the same funnel shape
  // textually under every toolchain.

  // Catalog persistence: snapshot records in the meta heap (page 0).
  Status SaveCatalogLocked() REQUIRES(latch_);
  Status LoadCatalogLocked() REQUIRES(latch_);

  // Write-path bodies (exclusive latch held).
  Status CreateTableLocked(const std::string& name, Schema schema)
      REQUIRES(latch_);
  Result<storage::RID> InsertLocked(const std::string& table,
                                    const Tuple& user_values)
      REQUIRES(latch_);
  Status CreateIndexLocked(const IndexSpec& spec) REQUIRES(latch_);
  Status AnalyzeLocked(const std::string& table) REQUIRES(latch_);

  // ------------------------------------------------------------------
  // Query bodies (shared latch held; called by Session::Execute).
  // `qs` is never null and receives this query's stats; the Session
  // owns LastQueryStats and the metrics flush. `trace` may be null
  // (tracing off).

  // The optimizer's decision for a LexEQUAL selection, with per-plan
  // cost estimates — the substance of EXPLAIN. Does not execute.
  Result<PlanChoice> ExplainSelectLocked(
      const std::string& table, const std::string& column,
      const phonetic::PhonemeString& query_phon,
      const LexEqualQueryOptions& options) REQUIRES_SHARED(latch_);

  // WHERE `column` LexEQUAL probe, in phoneme space (Fig. 3).
  Result<std::vector<Tuple>> SelectPhonemesLocked(
      const std::string& table, const std::string& column,
      const phonetic::PhonemeString& query_phon,
      const LexEqualQueryOptions& options, QueryStats* qs,
      obs::QueryTrace* trace) REQUIRES_SHARED(latch_);

  // Ranked retrieval: the k rows most similar to the probe under
  // lexsim, ordered (score desc, insertion order asc).
  Result<std::vector<TopKRow>> TopKPhonemesLocked(
      const std::string& table, const std::string& column,
      const phonetic::PhonemeString& query_phon, size_t k,
      const LexEqualQueryOptions& options, QueryStats* qs,
      obs::QueryTrace* trace) REQUIRES_SHARED(latch_);

  // SELECT pairs WHERE t1.c1 LexEQUAL t2.c2 AND t1.language <>
  // t2.language (Fig. 5). `outer_limit` caps outer rows (0 = all).
  Result<std::vector<std::pair<Tuple, Tuple>>> JoinLocked(
      const std::string& left_table, const std::string& left_column,
      const std::string& right_table, const std::string& right_column,
      const LexEqualQueryOptions& options, uint64_t outer_limit,
      QueryStats* qs, obs::QueryTrace* trace) REQUIRES_SHARED(latch_);

  // SELECT * WHERE `column` = literal (native equality; the Table 1
  // "Exact" baseline).
  Result<std::vector<Tuple>> ExactSelectLocked(const std::string& table,
                                               const std::string& column,
                                               const Value& literal,
                                               QueryStats* qs)
      REQUIRES_SHARED(latch_);

  // Exact-match join baseline (text equality on the two columns,
  // different languages), for Table 1's "Exact Join" row.
  Result<std::vector<std::pair<Tuple, Tuple>>> ExactJoinLocked(
      const std::string& left_table, const std::string& left_column,
      const std::string& right_table, const std::string& right_column,
      uint64_t outer_limit, QueryStats* qs) REQUIRES_SHARED(latch_);

  // ------------------------------------------------------------------
  // Session-facing plumbing (defined in engine.cc, next to the
  // process-wide counter registrations they feed).

  // Folds one finished query's stats into the metrics registry, once,
  // at the Session entry point (never in inner loops or workers —
  // that would double count).
  static void FlushQueryStats(const QueryStats& qs, uint64_t wall_us);

  // A trace pre-wired with the counters whose per-span deltas EXPLAIN
  // ANALYZE reports: buffer-pool faults, disk reads, phoneme-cache
  // traffic.
  static std::unique_ptr<obs::QueryTrace> MakeEngineTrace();

  // ------------------------------------------------------------------
  // Internal helpers (latch already held by the caller).

  // Assembles the plan-picker inputs for one probe of `phon_col`.
  PlanPickerInputs PickerInputs(const TableInfo& info, uint32_t phon_col,
                                double query_len,
                                const LexEqualQueryOptions& options) const
      REQUIRES_SHARED(latch_);

  // Shared verification step: parse the candidate's phonemic cell and
  // run the exact matcher.
  Result<bool> VerifyCandidate(const match::LexEqualMatcher& matcher,
                               const phonetic::PhonemeString& query_phon,
                               const Tuple& row, uint32_t phon_col,
                               QueryStats* stats) const
      REQUIRES_SHARED(latch_);

  // Exact reference ranking: scores every phonemic row with the
  // kernel and keeps the best k by (score desc, RID asc). Used as the
  // top-K fallback plan and by the differential tests.
  Result<std::vector<TopKRow>> BruteForceTopK(
      TableInfo* info, uint32_t source_col, uint32_t phon_col,
      const match::LexEqualMatcher& matcher,
      const phonetic::PhonemeString& query_phon, size_t k,
      const LexEqualQueryOptions& options, QueryStats* qs,
      obs::QueryTrace* trace) REQUIRES_SHARED(latch_);

  // Candidate RIDs from the q-gram access path for one probe. The
  // probe multiset is built once per query (BuildQGramProbe) and
  // reused across every index chunk — rebuilding it per chunk was a
  // measurable regression, pinned by a counter test. The filters use
  // the paper's Fig. 14 semantics: the edit budget is k = threshold *
  // min(|query|, |candidate|) counted in unit edits, so the candidate
  // set is exact for Levenshtein costs and may lose a few
  // clustered-cost matches (documented in DESIGN.md).
  Result<std::vector<storage::RID>> QGramCandidates(
      const TableInfo& table, const match::QGramProbe& probe,
      double threshold, QueryStats* stats) const
      REQUIRES_SHARED(latch_);

  // True if the row's language passes the inlanguages clause.
  static bool LanguageAllowed(const LexEqualQueryOptions& options,
                              const Tuple& row, uint32_t source_col);

  // Readers: queries; writers: DDL / ANALYZE / Insert / Flush.
  mutable common::SharedMutex latch_;
  // Owned sub-objects set once at Open and internally synchronized
  // (BufferPool carries its own frame mutex; DiskManager is stateless
  // past construction): the pointers never change, only the guarded
  // state behind them does.
  const std::unique_ptr<storage::DiskManager> disk_;
  const std::unique_ptr<storage::BufferPool> pool_;
  Catalog catalog_ GUARDED_BY(latch_);
  // Registered once under the exclusive latch in Open, read-only for
  // the rest of the engine's life — the accessor hands out a bare
  // pointer, so a GUARDED_BY here would be a lie the analysis can't
  // check through.
  // lexlint:allow(guards): UDFs are registered once at Open before the engine is shared, read-only afterwards
  UdfRegistry udfs_;
  const g2p::G2PRegistry* const g2p_;
  std::unique_ptr<storage::HeapFile> meta_
      GUARDED_BY(latch_);  // catalog snapshots
  int64_t catalog_version_ GUARDED_BY(latch_) = 0;

  // Observability state. Sessions mutate these only after releasing
  // latch_ (record-after-release; audited by the lexlint latch rule
  // and encoded as EXCLUDES(latch_) on Session::RecordStatement), so
  // a slow query can never serialize the shared query path. Both are
  // internally synchronized (lock-free shards / their own mutex).
  const std::chrono::steady_clock::time_point started_at_ =
      std::chrono::steady_clock::now();
  // lexlint:allow(guards): StatementStats is internally synchronized (lock-free shards + per-shard text mutex)
  obs::StatementStats stmt_stats_;
  // lexlint:allow(guards): SlowQueryLog is internally synchronized (owns its ring mutex)
  obs::SlowQueryLog slow_log_;
  std::atomic<uint64_t> next_session_id_{0};
  std::atomic<int64_t> in_flight_queries_{0};
};

}  // namespace lexequal::engine

#endif  // LEXEQUAL_ENGINE_ENGINE_H_
