#include "engine/plan_picker.h"

#include <algorithm>

#include "match/plan_cost.h"

namespace lexequal::engine {

namespace {

using match::ClassifyVerifyPath;
using match::EstimateInvidxPostings;
using match::EstimateParallelSpeedup;
using match::EstimateQGramCandidates;
using match::EstimateQGramPostings;
using match::EstimateVerifyCost;
using match::PlanCostParams;

/// Prices every concrete plan from analyzed statistics.
std::vector<PlanCostEstimate> PriceAll(const PlanPickerInputs& in,
                                       const PhonemicColumnStats& col) {
  const PlanCostParams p;
  const double rows =
      static_cast<double>(std::max<uint64_t>(in.stats->row_count, 1));
  const double phonemic =
      static_cast<double>(std::min<uint64_t>(col.nonempty_rows,
                                             in.stats->row_count));
  const double avg_len = std::max(col.avg_phonemes(), 1.0);
  const double threshold = in.match.threshold;
  // Price the verify step at the kernel path MatchBatch will actually
  // take for this cost model (bit-parallel / SIMD lanes / banded), so
  // weighted-model scans are no longer priced at the scalar DP rate.
  const match::VerifyPath path =
      ClassifyVerifyPath(in.query_len, in.match.intra_cluster_cost,
                         in.match.weak_phoneme_discount);
  const double verify =
      EstimateVerifyCost(in.query_len, avg_len, threshold, p, path);

  std::vector<PlanCostEstimate> out;

  {
    PlanCostEstimate e;
    e.plan = LexEqualPlan::kNaiveUdf;
    e.eligible = true;
    e.est_candidates = phonemic;
    e.cost = rows * p.scan_tuple + phonemic * verify;
    out.push_back(std::move(e));
  }
  {
    PlanCostEstimate e;
    e.plan = LexEqualPlan::kQGramFilter;
    if (!in.has_qgram) {
      e.note = "no q-gram index";
    } else {
      e.eligible = true;
      const double postings = EstimateQGramPostings(
          in.query_len, in.qgram_q, col.avg_qgram_postings());
      const double grams =
          in.query_len + static_cast<double>(in.qgram_q) - 1.0;
      e.est_candidates =
          EstimateQGramCandidates(in.query_len, avg_len, threshold,
                                  in.qgram_q, postings, phonemic);
      e.cost = p.index_plan_overhead + grams * p.btree_probe +
               postings * p.posting_entry +
               e.est_candidates * (p.rid_lookup + verify);
    }
    out.push_back(std::move(e));
  }
  {
    PlanCostEstimate e;
    e.plan = LexEqualPlan::kPhoneticIndex;
    if (!in.has_phonetic) {
      e.note = "no phonetic index";
    } else if (threshold > kPhoneticIndexThresholdGate) {
      e.note = "threshold above auto-pick gate";
    } else {
      e.eligible = true;
      e.est_candidates = std::max(col.avg_phonetic_fanout(), 1.0);
      e.cost = p.index_plan_overhead + p.btree_probe +
               e.est_candidates * (p.rid_lookup + verify);
    }
    out.push_back(std::move(e));
  }
  {
    PlanCostEstimate e;
    e.plan = LexEqualPlan::kParallelScan;
    e.eligible = true;
    e.est_candidates = phonemic;
    const double speedup = EstimateParallelSpeedup(in.hints.threads, p);
    e.cost = p.parallel_setup +
             (rows * p.scan_tuple + phonemic * verify) / speedup;
    out.push_back(std::move(e));
  }
  {
    PlanCostEstimate e;
    e.plan = LexEqualPlan::kInvertedIndex;
    if (!in.has_invidx) {
      e.note = "no inverted index";
    } else {
      e.eligible = true;
      // One directory descent per probe gram, then a sequential
      // decode of each list's blocks (no per-entry B-Tree work); the
      // survivors of the shared length/position/count filters match
      // the q-gram path's, so reuse that candidate estimate.
      const double postings = EstimateInvidxPostings(
          in.query_len, in.invidx_q, col.avg_invidx_postings());
      const double grams =
          in.query_len + static_cast<double>(in.invidx_q) - 1.0;
      e.est_candidates =
          EstimateQGramCandidates(in.query_len, avg_len, threshold,
                                  in.invidx_q, postings, phonemic);
      e.cost = p.index_plan_overhead + grams * p.btree_probe +
               postings * p.invidx_posting +
               e.est_candidates * (p.rid_lookup + verify);
    }
    out.push_back(std::move(e));
  }
  return out;
}

/// Pre-optimizer preference order, used when the table was never
/// ANALYZEd: an index beats a scan, and the phonetic index beats the
/// q-gram filter when the threshold is tight enough for it.
LexEqualPlan HeuristicPlan(const PlanPickerInputs& in) {
  if (in.has_phonetic &&
      in.match.threshold <= kPhoneticIndexThresholdGate) {
    return LexEqualPlan::kPhoneticIndex;
  }
  // The inverted index produces the same candidates as the q-gram
  // B-Tree with a sequential merge instead of per-entry probes.
  if (in.has_invidx) return LexEqualPlan::kInvertedIndex;
  if (in.has_qgram) return LexEqualPlan::kQGramFilter;
  return LexEqualPlan::kNaiveUdf;
}

}  // namespace

PlanChoice ChooseLexEqualPlan(const PlanPickerInputs& in) {
  PlanChoice choice;
  const PhonemicColumnStats* col =
      (in.stats != nullptr && in.stats->analyzed)
          ? in.stats->ForColumn(in.phon_col)
          : nullptr;
  if (col != nullptr) {
    choice.used_stats = true;
    choice.estimates = PriceAll(in, *col);
  }

  if (in.hints.plan != LexEqualPlan::kAuto) {
    choice.hinted = true;
    choice.plan = in.hints.plan;
    return choice;
  }

  if (!choice.used_stats) {
    choice.plan = HeuristicPlan(in);
    return choice;
  }

  const PlanCostEstimate* best = nullptr;
  for (const PlanCostEstimate& e : choice.estimates) {
    if (!e.eligible) continue;
    if (best == nullptr || e.cost < best->cost) best = &e;
  }
  choice.plan = best != nullptr ? best->plan : LexEqualPlan::kNaiveUdf;
  return choice;
}

}  // namespace lexequal::engine
