#include "engine/session.h"

#include <chrono>
#include <cstdio>

namespace lexequal::engine {

namespace {

using phonetic::PhonemeString;

uint64_t ElapsedUs(std::chrono::steady_clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

// Normalized statement text for requests that arrived without a
// SQL-planner fingerprint (direct API callers: benches, tests, bulk
// jobs). Mirrors sql/fingerprint.h's rules at the request level:
// probe literals become `?`, identifiers are case-folded upstream
// (request tables/columns are already exact), and the knobs that
// change the physical question — threshold, cost model, plan hint,
// language filter, k — are preserved.
std::string DescribeRequest(const QueryRequest& req,
                            const LexEqualQueryOptions& options) {
  using Kind = QueryRequest::Kind;
  std::string out;
  switch (req.kind) {
    case Kind::kThresholdSelect:
      out = "api threshold_select ";
      break;
    case Kind::kTopK:
      out = "api topk ";
      break;
    case Kind::kJoin:
      out = "api join ";
      break;
    case Kind::kExactSelect:
      out = "api exact_select ";
      break;
    case Kind::kExactJoin:
      out = "api exact_join ";
      break;
  }
  out += req.table + "." + req.column;
  if (!req.right_table.empty()) {
    out += " x " + req.right_table + "." + req.right_column;
  }
  const bool lexequal_probe =
      req.kind == Kind::kThresholdSelect || req.kind == Kind::kTopK;
  if (lexequal_probe || req.literal.has_value()) out += " probe=?";
  if (req.kind == Kind::kTopK) {
    char buf[32];
    std::snprintf(buf, sizeof buf, " k=%zu", req.k);
    out += buf;
  }
  if (lexequal_probe || req.kind == Kind::kJoin) {
    char buf[96];
    const std::string_view plan = LexEqualPlanName(options.hints.plan);
    std::snprintf(buf, sizeof buf, " threshold=%g cost=%g plan=%.*s",
                  options.match.threshold,
                  options.match.intra_cluster_cost,
                  static_cast<int>(plan.size()), plan.data());
    out += buf;
    if (!options.in_languages.empty()) {
      std::snprintf(buf, sizeof buf, " langs=%zu",
                    options.in_languages.size());
      out += buf;
    }
  }
  return out;
}

// G2P-transforms a text probe through the shared phoneme cache —
// repeated probes (and multi-predicate queries) re-use the G2P run —
// charging the hit/miss deltas to this query's stats.
Result<PhonemeString> TransformProbe(const text::TaggedString& query,
                                     QueryStats* qs,
                                     obs::QueryTrace* trace) {
  match::PhonemeCache& cache = match::PhonemeCache::Default();
  const match::PhonemeCacheStats before = cache.stats();
  Result<PhonemeString> phon = [&] {
    obs::ScopedSpan span(trace, "g2p_transform");
    return cache.Transform(query);
  }();
  const match::PhonemeCacheStats after = cache.stats();
  qs->match.cache_hits += after.hits - before.hits;
  qs->match.cache_misses += after.misses - before.misses;
  return phon;
}

}  // namespace

Session Engine::CreateSession() {
  return Session(
      this, next_session_id_.fetch_add(1, std::memory_order_relaxed) + 1);
}

QueryRequest QueryRequest::ThresholdSelect(std::string table,
                                           std::string column,
                                           text::TaggedString query) {
  QueryRequest req;
  req.kind = Kind::kThresholdSelect;
  req.table = std::move(table);
  req.column = std::move(column);
  req.query_text = std::move(query);
  return req;
}

QueryRequest QueryRequest::ThresholdSelectPhonemes(
    std::string table, std::string column,
    phonetic::PhonemeString phonemes) {
  QueryRequest req;
  req.kind = Kind::kThresholdSelect;
  req.table = std::move(table);
  req.column = std::move(column);
  req.query_phonemes = std::move(phonemes);
  return req;
}

QueryRequest QueryRequest::TopK(std::string table, std::string column,
                                text::TaggedString query, size_t k) {
  QueryRequest req;
  req.kind = Kind::kTopK;
  req.table = std::move(table);
  req.column = std::move(column);
  req.query_text = std::move(query);
  req.k = k;
  return req;
}

QueryRequest QueryRequest::TopKPhonemes(std::string table,
                                        std::string column,
                                        phonetic::PhonemeString phonemes,
                                        size_t k) {
  QueryRequest req;
  req.kind = Kind::kTopK;
  req.table = std::move(table);
  req.column = std::move(column);
  req.query_phonemes = std::move(phonemes);
  req.k = k;
  return req;
}

QueryRequest QueryRequest::Join(std::string left_table,
                                std::string left_column,
                                std::string right_table,
                                std::string right_column) {
  QueryRequest req;
  req.kind = Kind::kJoin;
  req.table = std::move(left_table);
  req.column = std::move(left_column);
  req.right_table = std::move(right_table);
  req.right_column = std::move(right_column);
  return req;
}

QueryRequest QueryRequest::ExactSelect(std::string table,
                                       std::string column, Value literal) {
  QueryRequest req;
  req.kind = Kind::kExactSelect;
  req.table = std::move(table);
  req.column = std::move(column);
  req.literal = std::move(literal);
  return req;
}

QueryRequest QueryRequest::ExactJoin(std::string left_table,
                                     std::string left_column,
                                     std::string right_table,
                                     std::string right_column) {
  QueryRequest req;
  req.kind = Kind::kExactJoin;
  req.table = std::move(left_table);
  req.column = std::move(left_column);
  req.right_table = std::move(right_table);
  req.right_column = std::move(right_column);
  return req;
}

Result<QueryResult> Session::Execute(const QueryRequest& req) {
  using Kind = QueryRequest::Kind;
  // Validate the request shape before taking the latch.
  const bool lexequal_probe =
      req.kind == Kind::kThresholdSelect || req.kind == Kind::kTopK;
  if (lexequal_probe &&
      req.query_text.has_value() == req.query_phonemes.has_value()) {
    return Status::InvalidArgument(
        "request needs exactly one of query_text / query_phonemes");
  }
  if (req.kind == Kind::kExactSelect && !req.literal.has_value()) {
    return Status::InvalidArgument(
        "an exact select needs a comparison literal");
  }
  if (req.explain_only && req.kind != Kind::kThresholdSelect) {
    return Status::InvalidArgument(
        "explain_only is supported for threshold selects");
  }

  const LexEqualQueryOptions& options =
      req.options.has_value() ? *req.options : default_options_;
  const auto start = std::chrono::steady_clock::now();
  QueryStats qs;
  std::unique_ptr<obs::QueryTrace> trace;
  // Trace when asked — and whenever slow-query capture is armed: the
  // log must retain the span tree of a query nobody predicted would
  // be slow.
  if ((req.trace.value_or(tracing_) || slow_query_us_ > 0) &&
      !req.explain_only) {
    trace = Engine::MakeEngineTrace();
  }

  // The whole query runs under the shared latch: concurrent with
  // other sessions' queries, serialized against DDL / ANALYZE /
  // Insert. Dispatch's root spans close before the latch drops.
  engine_->in_flight_queries_.fetch_add(1, std::memory_order_relaxed);
  Result<QueryResult> result = [&]() -> Result<QueryResult> {
    common::SharedMutexLock lock(&engine_->latch_);
    return Dispatch(req, options, &qs, trace.get());
  }();
  engine_->in_flight_queries_.fetch_sub(1, std::memory_order_relaxed);

  // Everything below runs after the latch dropped
  // (record-after-release — the lexlint latch rule audits this), so
  // statement bookkeeping never serializes the shared query path.
  qs.wall_us = ElapsedUs(start);
  if (!result.ok()) {
    if (!req.explain_only) {
      RecordStatement(req, options, qs, /*error=*/true, nullptr);
    }
    return result.status();
  }

  result->stats = qs;
  if (req.explain_only) return result;  // nothing executed: no flush

  last_stats_ = qs;
  Engine::FlushQueryStats(qs, qs.wall_us);
  std::shared_ptr<const obs::QueryTrace> shared;
  if (trace != nullptr) {
    shared = std::shared_ptr<const obs::QueryTrace>(std::move(trace));
    last_trace_ = shared;
    result->trace = shared;
  } else {
    last_trace_.reset();  // the latest query ran untraced
  }
  RecordStatement(req, options, qs, /*error=*/false, shared);
  return result;
}

void Session::RecordStatement(
    const QueryRequest& req, const LexEqualQueryOptions& options,
    const QueryStats& qs, bool error,
    const std::shared_ptr<const obs::QueryTrace>& trace) {
  obs::StatementStats* stats = engine_->stmt_stats();
  const bool aggregate = obs::Enabled() && stats->enabled();
  const bool slow =
      slow_query_us_ > 0 && qs.wall_us >= slow_query_us_ && !error;
  if (!aggregate && !slow) return;

  // Resolve the statement identity once: the planner's fingerprint
  // when the query came through SQL, a request-shape description
  // otherwise.
  uint64_t fp = req.fingerprint;
  std::string derived;
  std::string_view text = req.statement;
  if (fp == 0) {
    derived = DescribeRequest(req, options);
    fp = obs::FingerprintHash(derived);
    text = derived;
  }

  if (aggregate) {
    obs::StmtRecord record;
    record.fingerprint = fp;
    record.statement = text;
    record.wall_us = qs.wall_us;
    record.rows = qs.results;
    record.candidates = qs.candidates;
    record.dp_cells = qs.match.dp_cells;
    record.cache_hits = qs.match.cache_hits;
    record.cache_misses = qs.match.cache_misses;
    record.plan = static_cast<uint32_t>(qs.plan);
    record.error = error;
    stats->Record(record);
  }
  if (slow) {
    obs::SlowQueryEntry entry;
    entry.fingerprint = fp;
    entry.session_id = id_;
    entry.wall_us = qs.wall_us;
    entry.threshold_us = slow_query_us_;
    entry.rows = qs.results;
    entry.candidates = qs.candidates;
    entry.dp_cells = qs.match.dp_cells;
    entry.statement = std::string(text);
    entry.plan = LexEqualPlanName(qs.plan);
    entry.trace = trace;
    engine_->slow_query_log()->Record(std::move(entry));
  }
}

Result<QueryResult> Session::Dispatch(const QueryRequest& req,
                                      const LexEqualQueryOptions& options,
                                      QueryStats* qs,
                                      obs::QueryTrace* trace) {
  using Kind = QueryRequest::Kind;
  QueryResult out;
  switch (req.kind) {
    case Kind::kThresholdSelect: {
      obs::ScopedSpan root(trace, "lexequal_select");
      PhonemeString phon;
      if (req.query_text.has_value()) {
        LEXEQUAL_ASSIGN_OR_RETURN(
            phon, TransformProbe(*req.query_text, qs, trace));
      } else {
        phon = *req.query_phonemes;
      }
      if (req.explain_only) {
        PlanChoice choice;
        LEXEQUAL_ASSIGN_OR_RETURN(
            choice, engine_->ExplainSelectLocked(req.table, req.column,
                                                 phon, options));
        out.plan_choice = std::move(choice);
        return out;
      }
      LEXEQUAL_ASSIGN_OR_RETURN(
          out.rows, engine_->SelectPhonemesLocked(req.table, req.column,
                                                  phon, options, qs,
                                                  trace));
      return out;
    }
    case Kind::kTopK: {
      obs::ScopedSpan root(trace, "lexequal_topk");
      PhonemeString phon;
      if (req.query_text.has_value()) {
        LEXEQUAL_ASSIGN_OR_RETURN(
            phon, TransformProbe(*req.query_text, qs, trace));
      } else {
        phon = *req.query_phonemes;
      }
      LEXEQUAL_ASSIGN_OR_RETURN(
          out.ranked, engine_->TopKPhonemesLocked(req.table, req.column,
                                                  phon, req.k, options,
                                                  qs, trace));
      return out;
    }
    case Kind::kJoin: {
      obs::ScopedSpan root(trace, "lexequal_join");
      LEXEQUAL_ASSIGN_OR_RETURN(
          out.pairs,
          engine_->JoinLocked(req.table, req.column, req.right_table,
                              req.right_column, options, req.outer_limit,
                              qs, trace));
      return out;
    }
    case Kind::kExactSelect: {
      LEXEQUAL_ASSIGN_OR_RETURN(
          out.rows, engine_->ExactSelectLocked(req.table, req.column,
                                               *req.literal, qs));
      return out;
    }
    case Kind::kExactJoin: {
      LEXEQUAL_ASSIGN_OR_RETURN(
          out.pairs,
          engine_->ExactJoinLocked(req.table, req.column, req.right_table,
                                   req.right_column, req.outer_limit,
                                   qs));
      return out;
    }
  }
  return Status::Internal("unhandled request kind");
}

}  // namespace lexequal::engine
