#include "engine/table_stats.h"

namespace lexequal::engine {

const PhonemicColumnStats* TableStats::ForColumn(uint32_t column) const {
  for (const PhonemicColumnStats& c : columns) {
    if (c.column == column) return &c;
  }
  return nullptr;
}

void TableStats::AppendTo(Tuple* record) const {
  // The leading cell is the block version: 0 = unanalyzed, 2 = the
  // current 12-cell column run (1 was the pre-invidx 9-cell run).
  record->push_back(Value::Int64(analyzed ? 2 : 0));
  if (!analyzed) return;
  record->push_back(Value::Int64(static_cast<int64_t>(row_count)));
  record->push_back(Value::Int64(static_cast<int64_t>(columns.size())));
  for (const PhonemicColumnStats& c : columns) {
    record->push_back(Value::Int64(c.column));
    record->push_back(Value::Int64(static_cast<int64_t>(c.nonempty_rows)));
    record->push_back(
        Value::Int64(static_cast<int64_t>(c.total_phonemes)));
    record->push_back(Value::Int64(static_cast<int64_t>(c.max_phonemes)));
    record->push_back(
        Value::Int64(static_cast<int64_t>(c.distinct_phonetic_keys)));
    record->push_back(
        Value::Int64(static_cast<int64_t>(c.max_phonetic_fanout)));
    record->push_back(
        Value::Int64(static_cast<int64_t>(c.distinct_qgrams)));
    record->push_back(Value::Int64(static_cast<int64_t>(c.total_qgrams)));
    record->push_back(Value::Int64(c.qgram_q));
    record->push_back(Value::Int64(c.invidx_q));
    record->push_back(
        Value::Int64(static_cast<int64_t>(c.invidx_distinct_grams)));
    record->push_back(
        Value::Int64(static_cast<int64_t>(c.invidx_total_postings)));
  }
}

Result<TableStats> TableStats::ReadFrom(const Tuple& record,
                                        size_t* pos) {
  TableStats stats;
  // Pre-stats snapshot: the record ends where the block would start.
  if (*pos >= record.size()) return stats;
  auto next_int = [&]() -> Result<int64_t> {
    if (*pos >= record.size() ||
        record[*pos].type() != ValueType::kInt64) {
      return Status::Corruption("malformed table-stats block");
    }
    return record[(*pos)++].AsInt64();
  };
  int64_t version;
  LEXEQUAL_ASSIGN_OR_RETURN(version, next_int());
  if (version == 0) return stats;
  if (version != 1 && version != 2) {
    return Status::Corruption("unknown table-stats block version");
  }
  stats.analyzed = true;
  int64_t v;
  LEXEQUAL_ASSIGN_OR_RETURN(v, next_int());
  stats.row_count = static_cast<uint64_t>(v);
  int64_t n_cols;
  LEXEQUAL_ASSIGN_OR_RETURN(n_cols, next_int());
  for (int64_t i = 0; i < n_cols; ++i) {
    PhonemicColumnStats c;
    LEXEQUAL_ASSIGN_OR_RETURN(v, next_int());
    c.column = static_cast<uint32_t>(v);
    LEXEQUAL_ASSIGN_OR_RETURN(v, next_int());
    c.nonempty_rows = static_cast<uint64_t>(v);
    LEXEQUAL_ASSIGN_OR_RETURN(v, next_int());
    c.total_phonemes = static_cast<uint64_t>(v);
    LEXEQUAL_ASSIGN_OR_RETURN(v, next_int());
    c.max_phonemes = static_cast<uint64_t>(v);
    LEXEQUAL_ASSIGN_OR_RETURN(v, next_int());
    c.distinct_phonetic_keys = static_cast<uint64_t>(v);
    LEXEQUAL_ASSIGN_OR_RETURN(v, next_int());
    c.max_phonetic_fanout = static_cast<uint64_t>(v);
    LEXEQUAL_ASSIGN_OR_RETURN(v, next_int());
    c.distinct_qgrams = static_cast<uint64_t>(v);
    LEXEQUAL_ASSIGN_OR_RETURN(v, next_int());
    c.total_qgrams = static_cast<uint64_t>(v);
    LEXEQUAL_ASSIGN_OR_RETURN(v, next_int());
    c.qgram_q = static_cast<int>(v);
    if (version >= 2) {
      LEXEQUAL_ASSIGN_OR_RETURN(v, next_int());
      c.invidx_q = static_cast<int>(v);
      LEXEQUAL_ASSIGN_OR_RETURN(v, next_int());
      c.invidx_distinct_grams = static_cast<uint64_t>(v);
      LEXEQUAL_ASSIGN_OR_RETURN(v, next_int());
      c.invidx_total_postings = static_cast<uint64_t>(v);
    }
    stats.columns.push_back(c);
  }
  return stats;
}

}  // namespace lexequal::engine
