// Volcano-style executors. Each Next() produces one tuple; joins
// concatenate child tuples.

#ifndef LEXEQUAL_ENGINE_EXECUTOR_H_
#define LEXEQUAL_ENGINE_EXECUTOR_H_

#include <memory>
#include <vector>

#include "common/result.h"
#include "engine/catalog.h"
#include "engine/expression.h"
#include "match/match_stats.h"
#include "match/parallel_matcher.h"
#include "obs/trace.h"
#include "storage/heap_file.h"

namespace lexequal::engine {

/// Pull-based operator. Protocol: Init() once, then Next(&t) until it
/// returns false. Re-Init() rewinds (used by nested-loop join).
class Executor {
 public:
  virtual ~Executor() = default;
  virtual Status Init() = 0;
  /// Fills `out` and returns true, or returns false at end of stream.
  virtual Result<bool> Next(Tuple* out) = 0;
};

using ExecutorPtr = std::unique_ptr<Executor>;

/// Full scan of a table's heap.
class SeqScanExecutor final : public Executor {
 public:
  explicit SeqScanExecutor(const TableInfo* table) : table_(table) {}
  Status Init() override;
  Result<bool> Next(Tuple* out) override;

  /// RID of the tuple most recently returned.
  const storage::RID& current_rid() const { return rid_; }

 private:
  const TableInfo* table_;
  std::optional<storage::HeapFile::Iterator> it_;
  storage::RID rid_;
};

/// Fetches explicit RIDs from a table (index scan tail).
class RidLookupExecutor final : public Executor {
 public:
  RidLookupExecutor(const TableInfo* table,
                    std::vector<storage::RID> rids)
      : table_(table), rids_(std::move(rids)) {}
  Status Init() override {
    pos_ = 0;
    return Status::OK();
  }
  Result<bool> Next(Tuple* out) override;

 private:
  const TableInfo* table_;
  std::vector<storage::RID> rids_;
  size_t pos_ = 0;
};

/// Filters child tuples by a predicate expression.
class FilterExecutor final : public Executor {
 public:
  FilterExecutor(ExecutorPtr child, ExprPtr predicate)
      : child_(std::move(child)), predicate_(std::move(predicate)) {}
  Status Init() override { return child_->Init(); }
  Result<bool> Next(Tuple* out) override;

 private:
  ExecutorPtr child_;
  ExprPtr predicate_;
};

/// Projects child tuples through expressions.
class ProjectionExecutor final : public Executor {
 public:
  ProjectionExecutor(ExecutorPtr child, std::vector<ExprPtr> exprs)
      : child_(std::move(child)), exprs_(std::move(exprs)) {}
  Status Init() override { return child_->Init(); }
  Result<bool> Next(Tuple* out) override;

 private:
  ExecutorPtr child_;
  std::vector<ExprPtr> exprs_;
};

/// Tuple-nested-loop join with an optional join predicate over the
/// concatenated tuple — the plan the paper's optimizer chose for the
/// UDF join ("the optimizer chose a nested-loop technique").
class NestedLoopJoinExecutor final : public Executor {
 public:
  NestedLoopJoinExecutor(ExecutorPtr left, ExecutorPtr right,
                         ExprPtr predicate)
      : left_(std::move(left)),
        right_(std::move(right)),
        predicate_(std::move(predicate)) {}
  Status Init() override;
  Result<bool> Next(Tuple* out) override;

 private:
  ExecutorPtr left_;
  ExecutorPtr right_;
  ExprPtr predicate_;  // may be null (cross product)
  Tuple left_tuple_;
  bool left_valid_ = false;
};

/// Caps the stream at `limit` tuples.
class LimitExecutor final : public Executor {
 public:
  LimitExecutor(ExecutorPtr child, uint64_t limit)
      : child_(std::move(child)), limit_(limit) {}
  Status Init() override {
    seen_ = 0;
    return child_->Init();
  }
  Result<bool> Next(Tuple* out) override;

 private:
  ExecutorPtr child_;
  uint64_t limit_;
  uint64_t seen_ = 0;
};

/// Hash aggregation: groups child tuples by key expressions and
/// emits one tuple per group of the form [key..., COUNT(*)], with an
/// optional HAVING predicate evaluated over that output row — the
/// GROUP BY / HAVING shape of the paper's Fig. 14 q-gram SQL.
class HashGroupByExecutor final : public Executor {
 public:
  HashGroupByExecutor(ExecutorPtr child, std::vector<ExprPtr> keys,
                      ExprPtr having)
      : child_(std::move(child)),
        keys_(std::move(keys)),
        having_(std::move(having)) {}
  Status Init() override;
  Result<bool> Next(Tuple* out) override;

 private:
  ExecutorPtr child_;
  std::vector<ExprPtr> keys_;
  ExprPtr having_;  // may be null
  std::vector<Tuple> groups_;
  size_t pos_ = 0;
};

/// Everything the parallel scan node needs besides the table: the
/// probe, the column bindings, and the matcher/thread/cache knobs.
/// (A plain struct rather than LexEqualQueryOptions to keep executor.h
/// independent of engine.h, which includes this header.)
struct ParallelScanSpec {
  phonetic::PhonemeString query;       // probe, already in phoneme space
  uint32_t source_col = 0;             // text column (language tag)
  uint32_t phon_col = 0;               // phonemic shadow column
  match::LexEqualOptions match;        // threshold / cost knobs
  std::vector<text::Language> in_languages;  // empty = all (*)
  uint32_t threads = 0;                // 0 = auto
  match::PhonemeCache* cache = nullptr;  // optional, borrowed
  obs::QueryTrace* trace = nullptr;    // optional, borrowed: Init()
                                       // opens materialize/match spans
};

/// Parallel LexEQUAL scan (the batch sibling of the naive-UDF plan):
/// Init() materializes the heap once on the calling thread — the
/// storage layer is single-threaded by design — then fans the
/// candidate array out to a ParallelMatcher worker pool; Next()
/// streams the matching tuples in heap order. The match set is
/// bit-identical to the naive serial scan for every thread count
/// (see parallel_matcher.h for the determinism contract).
class ParallelLexEqualScanExecutor final : public Executor {
 public:
  ParallelLexEqualScanExecutor(const TableInfo* table,
                               ParallelScanSpec spec)
      : table_(table), spec_(std::move(spec)) {}

  Status Init() override;
  Result<bool> Next(Tuple* out) override;

  /// Matcher-side counters of the last Init() (filters, DP runs,
  /// cache hits, wall time).
  const match::MatchStats& stats() const { return stats_; }

  /// Base-table tuples pulled during materialization.
  uint64_t rows_scanned() const { return rows_scanned_; }

 private:
  const TableInfo* table_;
  ParallelScanSpec spec_;
  std::vector<Tuple> matched_rows_;
  size_t pos_ = 0;
  match::MatchStats stats_;
  uint64_t rows_scanned_ = 0;
};

/// Drains an executor into a vector.
Result<std::vector<Tuple>> Collect(Executor& executor);

}  // namespace lexequal::engine

#endif  // LEXEQUAL_ENGINE_EXECUTOR_H_
