// CSV import/export for LexEQUAL tables — the bulk-load path a
// downstream user reaches for first.
//
// Format: RFC-4180-style quoting (fields with commas/quotes/newlines
// wrapped in double quotes, embedded quotes doubled), UTF-8 text.
// String columns may carry a language tag as `text@Language`
// (e.g. `नेहरु@Hindi`); untagged strings get script-detected tags,
// matching the paper's auto-identification discussion (§2.1).

#ifndef LEXEQUAL_ENGINE_CSV_H_
#define LEXEQUAL_ENGINE_CSV_H_

#include <string>

#include "engine/engine.h"

namespace lexequal::engine {

struct CsvImportResult {
  uint64_t rows_inserted = 0;
  uint64_t rows_rejected = 0;  // malformed rows, reported not fatal
};

/// Imports `path` into `table`. The file's columns map 1:1 onto the
/// table's *user* columns (derived phonemic columns are computed by
/// the engine). `has_header` skips the first line.
Result<CsvImportResult> ImportCsv(Engine* engine,
                                  const std::string& table,
                                  const std::string& path,
                                  bool has_header = true);

/// Exports `table` to `path` with a header line; string cells with a
/// known language are written as `text@Language`.
Status ExportCsv(Engine* engine, const std::string& table,
                 const std::string& path);

/// Parses one CSV line into fields (exposed for tests).
Result<std::vector<std::string>> ParseCsvLine(std::string_view line);

/// Quotes one field for CSV output (exposed for tests).
std::string QuoteCsvField(std::string_view field);

}  // namespace lexequal::engine

#endif  // LEXEQUAL_ENGINE_CSV_H_
