// Database: the facade tying storage, catalog, G2P, and the LexEQUAL
// operator together — the architecture of the paper's Figure 7.

#ifndef LEXEQUAL_ENGINE_DATABASE_H_
#define LEXEQUAL_ENGINE_DATABASE_H_

#include <memory>
#include <string>
#include <vector>

#include "engine/catalog.h"
#include "engine/executor.h"
#include "engine/expression.h"
#include "engine/plan.h"
#include "engine/plan_picker.h"
#include "match/lexequal.h"
#include "match/match_stats.h"
#include "match/phoneme_cache.h"
#include "match/qgram.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/buffer_pool.h"

namespace lexequal::engine {

/// Per-query knobs for LexEQUAL selections and joins.
struct LexEqualQueryOptions {
  match::LexEqualOptions match;
  /// Target languages (Fig. 3 "inlanguages"); empty = all (*).
  std::vector<text::Language> in_languages;
  /// Physical-plan hints (engine/plan.h). The default, kAuto, hands
  /// the choice to the cost-based picker; setting hints.plan forces a
  /// specific access path (the SQL `USING <plan>` clause).
  PlanHints hints;
};

/// Execution counters for one query, used by the benchmark tables and
/// EXPLAIN ANALYZE. Counter fields accumulate across queries sharing
/// one stats object (the bench pattern); the plan/estimate/result
/// fields always describe the most recent query.
struct QueryStats {
  uint64_t rows_scanned = 0;     // tuples pulled from base tables
  uint64_t candidates = 0;       // rows reaching the UDF
  uint64_t udf_calls = 0;        // exact matcher invocations
  uint64_t results = 0;          // rows returned
  /// The plan that actually ran (kAuto is resolved before execution).
  LexEqualPlan plan = LexEqualPlan::kNaiveUdf;
  bool plan_was_auto = false;    // picked by the optimizer, not forced
  bool plan_used_stats = false;  // priced from ANALYZE statistics
  double est_cost = 0.0;         // optimizer cost of the executed plan
  double est_candidates = 0.0;   // estimated rows reaching the UDF
  /// Inverted-index work (zero unless kInvertedIndex or top-K ran):
  /// postings decoded vs bypassed through skip blocks, top-K pruning
  /// outcomes, and brute-force fallbacks when the exactness check
  /// cannot certify the ranking.
  uint64_t invidx_postings = 0;
  uint64_t invidx_postings_skipped = 0;
  uint64_t invidx_blocks_skipped = 0;
  uint64_t invidx_early_terminated = 0;
  uint64_t invidx_restarts = 0;
  uint64_t invidx_fallbacks = 0;
  /// Matcher-side breakdown (filters, DP runs, phoneme-cache hits,
  /// threads, wall time). Filled by the parallel plan; the query-side
  /// G2P cache counters are filled by every LexEQUAL text query.
  match::MatchStats match;

  /// Folds one query's stats into this object: counters add, match
  /// stats merge, plan/estimate/result fields take the newcomer's.
  void Accumulate(const QueryStats& other);
};

/// Declarative description of a LexEQUAL access path — the single
/// entry point Database::CreateIndex builds both index kinds from.
struct IndexSpec {
  enum class Kind {
    kPhonetic,  // grouped phoneme string id B-Tree (paper §5.3)
    kQGram,     // covering positional q-gram B-Tree (paper §5.2)
    kInverted,  // gram posting lists + skip blocks (invidx; §5.2 + top-K)
  };
  Kind kind = Kind::kPhonetic;
  std::string table;
  std::string column;  // the phonemic column to index
  int q = 2;           // gram length; kQGram and kInverted only
};

/// One row of a ranked (top-K) LexEQUAL retrieval, with its score
/// lexsim = 1 - editdistance / max(|a|, |b|) in [..., 1].
struct TopKRow {
  Tuple row;
  double score = 0.0;
};

/// A single-file embedded database with the LexEQUAL extension.
///
/// Catalog persistence: page 0 holds a meta heap of catalog snapshot
/// records (table schemas, heap roots, index roots). Flush() writes a
/// fresh snapshot, so a database that was Flush()ed reopens with all
/// tables and indexes intact. DDL (CreateTable / Create*Index) also
/// snapshots immediately.
class Database {
 public:
  /// Opens (creating if necessary) the page file at `path` with a
  /// buffer pool of `pool_pages` frames. Reloads the persisted
  /// catalog when the file is non-empty.
  static Result<std::unique_ptr<Database>> Open(const std::string& path,
                                                size_t pool_pages = 4096);

  ~Database();

  /// Creates a table. Columns with `phonemic_source` set are derived:
  /// filled on insert with the IPA transform of the source column
  /// (rows whose language has no converter get an empty phonemic
  /// string, which never matches).
  Status CreateTable(const std::string& name, Schema schema);

  /// Inserts a row; `user_values` covers the non-derived columns in
  /// schema order.
  Result<storage::RID> Insert(const std::string& table,
                              const Tuple& user_values);

  Result<TableInfo*> GetTable(const std::string& name) const {
    return catalog_.GetTable(name);
  }

  /// Builds the access path described by `spec` over an existing
  /// phonemic column, backfilling existing rows; maintained by
  /// subsequent inserts. A table holds at most one index of each kind.
  Status CreateIndex(const IndexSpec& spec);

  /// Deprecated shim — use CreateIndex with Kind::kPhonetic.
  Status CreatePhoneticIndex(const std::string& table,
                             const std::string& phonemic_column) {
    return CreateIndex({.kind = IndexSpec::Kind::kPhonetic,
                        .table = table,
                        .column = phonemic_column});
  }

  /// Deprecated shim — use CreateIndex with Kind::kQGram.
  Status CreateQGramIndex(const std::string& table,
                          const std::string& phonemic_column, int q = 2) {
    return CreateIndex({.kind = IndexSpec::Kind::kQGram,
                        .table = table,
                        .column = phonemic_column,
                        .q = q});
  }

  /// Convenience wrapper — CreateIndex with Kind::kInverted.
  Status CreateInvertedIndex(const std::string& table,
                             const std::string& phonemic_column, int q = 2) {
    return CreateIndex({.kind = IndexSpec::Kind::kInverted,
                        .table = table,
                        .column = phonemic_column,
                        .q = q});
  }

  /// Collects optimizer statistics for `table` — row count, phonemic
  /// lengths, phonetic-key fanout, q-gram posting density — in one
  /// heap scan, and persists them through the catalog snapshot. Until
  /// a table is ANALYZEd the plan picker falls back to a heuristic
  /// (see engine/plan_picker.h).
  Status Analyze(const std::string& table);

  /// ANALYZEs every table in the catalog.
  Status AnalyzeAll();

  /// The optimizer's decision for a LexEQUAL selection, with per-plan
  /// cost estimates — the substance of EXPLAIN. Does not execute.
  Result<PlanChoice> ExplainLexEqualSelect(
      const std::string& table, const std::string& column,
      const text::TaggedString& query, const LexEqualQueryOptions& options);

  /// SELECT * FROM `table` WHERE `column` = literal (native equality;
  /// the Table 1 "Exact" baseline).
  Result<std::vector<Tuple>> ExactSelect(const std::string& table,
                                         const std::string& column,
                                         const Value& literal,
                                         QueryStats* stats = nullptr);

  /// SELECT * FROM `table` WHERE `column` LexEQUAL query (Fig. 3).
  /// `column` is the *source* text column; its phonemic shadow column
  /// must exist — either declared with `phonemic_source`, or a string
  /// column named "<column>_phon" holding caller-materialized IPA.
  Result<std::vector<Tuple>> LexEqualSelect(
      const std::string& table, const std::string& column,
      const text::TaggedString& query, const LexEqualQueryOptions& options,
      QueryStats* stats = nullptr);

  /// Phoneme-space variant: the query is already transformed (used
  /// when the caller holds phonemic strings, e.g. the benches that
  /// probe with stored phonemes).
  Result<std::vector<Tuple>> LexEqualSelectPhonemes(
      const std::string& table, const std::string& column,
      const phonetic::PhonemeString& query_phon,
      const LexEqualQueryOptions& options, QueryStats* stats = nullptr);

  /// Ranked retrieval: the k rows of `table` most similar to `query`
  /// under lexsim(column, query) = 1 - editdistance / max length,
  /// ordered (score desc, insertion order asc) — the SQL surface is
  /// `SELECT ... ORDER BY lexsim(col, 'q') LIMIT k`. Runs the
  /// inverted index's skip-block top-K with score upper bounds when
  /// one exists on the column (falling back to an exact brute-force
  /// ranking otherwise, or whenever the index cannot certify the
  /// ranking); either way the scores come from the exact MatchKernel,
  /// so the result is identical to ranking every row.
  /// `options.match.threshold` is ignored — ranking has no cutoff.
  Result<std::vector<TopKRow>> LexEqualTopK(
      const std::string& table, const std::string& column,
      const text::TaggedString& query, size_t k,
      const LexEqualQueryOptions& options, QueryStats* stats = nullptr);

  /// Phoneme-space variant of LexEqualTopK.
  Result<std::vector<TopKRow>> LexEqualTopKPhonemes(
      const std::string& table, const std::string& column,
      const phonetic::PhonemeString& query_phon, size_t k,
      const LexEqualQueryOptions& options, QueryStats* stats = nullptr);

  /// SELECT pairs FROM t1, t2 WHERE t1.c1 LexEQUAL t2.c2 AND
  /// t1.language <> t2.language (Fig. 5). `outer_limit` caps the
  /// number of outer rows (0 = all) — the paper ran the naive UDF
  /// join on a 0.2% subset for tractability (footnote 3).
  Result<std::vector<std::pair<Tuple, Tuple>>> LexEqualJoin(
      const std::string& left_table, const std::string& left_column,
      const std::string& right_table, const std::string& right_column,
      const LexEqualQueryOptions& options, uint64_t outer_limit = 0,
      QueryStats* stats = nullptr);

  /// Exact-match join baseline (text equality on the two columns,
  /// different languages), for Table 1's "Exact Join" row.
  Result<std::vector<std::pair<Tuple, Tuple>>> ExactJoin(
      const std::string& left_table, const std::string& left_column,
      const std::string& right_table, const std::string& right_column,
      uint64_t outer_limit = 0, QueryStats* stats = nullptr);

  storage::BufferPool* buffer_pool() { return pool_.get(); }
  UdfRegistry* udf_registry() { return &udfs_; }
  const g2p::G2PRegistry& g2p() const { return *g2p_; }
  Catalog* catalog() { return &catalog_; }

  /// Stats of the most recent query executed on this database (exact
  /// or LexEQUAL, selection or join) — the shell's \stats command.
  const QueryStats& LastQueryStats() const { return last_stats_; }

  /// Per-query tracing (the shell's \trace on|off and the machinery
  /// behind EXPLAIN ANALYZE's stage table). While on, every LexEQUAL
  /// query builds a span tree — planner, access path, verify, matcher
  /// — with wall-clock durations and buffer-pool / phoneme-cache
  /// counter deltas per span, retrievable via LastTrace().
  void set_tracing(bool on) { tracing_ = on; }
  bool tracing() const { return tracing_; }

  /// Span tree of the most recent traced query; null when tracing was
  /// off for that query (or no query has run yet).
  const obs::QueryTrace* LastTrace() const { return last_trace_.get(); }

  /// Process-wide metrics registry in Prometheus text exposition
  /// format — the shell's \metrics command.
  static std::string DumpMetrics() {
    return obs::MetricsRegistry::Default().ExportPrometheus();
  }

  /// The same registry as one JSON object (\metrics json).
  static std::string DumpMetricsJson() {
    return obs::MetricsRegistry::Default().ExportJson();
  }

  /// Snapshots the catalog (current index roots included) and flushes
  /// all dirty pages. Call before closing to make the file reopenable
  /// with its tables and indexes.
  Status Flush();

 private:
  Database(std::unique_ptr<storage::DiskManager> disk,
           std::unique_ptr<storage::BufferPool> pool);

  // Catalog persistence: snapshot records in the meta heap (page 0).
  Status SaveCatalog();
  Status LoadCatalog();

  // Assembles the plan-picker inputs for one probe of `phon_col`.
  PlanPickerInputs PickerInputs(const TableInfo& info, uint32_t phon_col,
                                double query_len,
                                const LexEqualQueryOptions& options) const;

  // LexEqualSelectPhonemes body. `qs` is never null and receives this
  // query's stats; the public wrappers own the LastQueryStats and
  // out-parameter plumbing. `trace` may be null (tracing off).
  Result<std::vector<Tuple>> SelectPhonemesImpl(
      const std::string& table, const std::string& column,
      const phonetic::PhonemeString& query_phon,
      const LexEqualQueryOptions& options, QueryStats* qs,
      obs::QueryTrace* trace);

  // Shared verification step: parse the candidate's phonemic cell and
  // run the exact matcher.
  Result<bool> VerifyCandidate(const match::LexEqualMatcher& matcher,
                               const phonetic::PhonemeString& query_phon,
                               const Tuple& row, uint32_t phon_col,
                               QueryStats* stats) const;

  // LexEqualTopKPhonemes body, same contract as SelectPhonemesImpl.
  Result<std::vector<TopKRow>> TopKPhonemesImpl(
      const std::string& table, const std::string& column,
      const phonetic::PhonemeString& query_phon, size_t k,
      const LexEqualQueryOptions& options, QueryStats* qs,
      obs::QueryTrace* trace);

  // Exact reference ranking: scores every phonemic row with the
  // kernel and keeps the best k by (score desc, RID asc). Used as the
  // top-K fallback plan and by the differential tests.
  Result<std::vector<TopKRow>> BruteForceTopK(
      TableInfo* info, uint32_t source_col, uint32_t phon_col,
      const match::LexEqualMatcher& matcher,
      const phonetic::PhonemeString& query_phon, size_t k,
      const LexEqualQueryOptions& options, QueryStats* qs,
      obs::QueryTrace* trace);

  // Candidate RIDs from the q-gram access path for one probe. The
  // probe multiset is built once per query (BuildQGramProbe) and
  // reused across every index chunk — rebuilding it per chunk was a
  // measurable regression, pinned by a counter test. The filters use
  // the paper's Fig. 14 semantics: the edit budget is k = threshold *
  // min(|query|, |candidate|) counted in unit edits, so the candidate
  // set is exact for Levenshtein costs and may lose a few
  // clustered-cost matches (documented in DESIGN.md).
  Result<std::vector<storage::RID>> QGramCandidates(
      const TableInfo& table, const match::QGramProbe& probe,
      double threshold, QueryStats* stats) const;

  // True if the row's language passes the inlanguages clause.
  static bool LanguageAllowed(const LexEqualQueryOptions& options,
                              const Tuple& row, uint32_t source_col);

  std::unique_ptr<storage::DiskManager> disk_;
  std::unique_ptr<storage::BufferPool> pool_;
  Catalog catalog_;
  UdfRegistry udfs_;
  const g2p::G2PRegistry* g2p_;
  std::unique_ptr<storage::HeapFile> meta_;  // catalog snapshots
  int64_t catalog_version_ = 0;
  QueryStats last_stats_;  // most recent query (LastQueryStats)
  bool tracing_ = false;
  std::unique_ptr<obs::QueryTrace> last_trace_;  // most recent traced
};

}  // namespace lexequal::engine

#endif  // LEXEQUAL_ENGINE_DATABASE_H_
