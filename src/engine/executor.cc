#include "engine/executor.h"

#include <map>

#include "obs/metrics.h"

namespace lexequal::engine {

Status SeqScanExecutor::Init() {
  it_.emplace(table_->heap->Begin());
  return Status::OK();
}

Result<bool> SeqScanExecutor::Next(Tuple* out) {
  // Every heap tuple the engine materializes, across all plans and
  // maintenance scans (index backfill, ANALYZE).
  static obs::Counter* tuples =
      obs::MetricsRegistry::Default().GetCounter(
          "lexequal_heap_scan_tuples",
          "Tuples deserialized by sequential heap scans");
  if (!it_.has_value()) return Status::Internal("scan not initialized");
  // A Begin()-time I/O failure is parked on the iterator; surface it
  // here instead of mistaking the unreadable heap for an empty one.
  LEXEQUAL_RETURN_IF_ERROR(it_->status());
  if (it_->AtEnd()) return false;
  Result<Tuple> tuple = DeserializeTuple(it_->record());
  if (!tuple.ok()) return tuple.status();
  tuples->Inc();
  rid_ = it_->rid();
  *out = std::move(tuple).value();
  LEXEQUAL_RETURN_IF_ERROR(it_->Next());
  return true;
}

Result<bool> RidLookupExecutor::Next(Tuple* out) {
  while (pos_ < rids_.size()) {
    Result<std::string> rec = table_->heap->Get(rids_[pos_]);
    ++pos_;
    if (!rec.ok()) {
      if (rec.status().IsNotFound()) continue;  // deleted since indexed
      return rec.status();
    }
    Result<Tuple> tuple = DeserializeTuple(rec.value());
    if (!tuple.ok()) return tuple.status();
    *out = std::move(tuple).value();
    return true;
  }
  return false;
}

Result<bool> FilterExecutor::Next(Tuple* out) {
  Tuple tuple;
  while (true) {
    bool has;
    LEXEQUAL_ASSIGN_OR_RETURN(has, child_->Next(&tuple));
    if (!has) return false;
    bool pass;
    LEXEQUAL_ASSIGN_OR_RETURN(pass, EvalPredicate(*predicate_, tuple));
    if (pass) {
      *out = std::move(tuple);
      return true;
    }
  }
}

Result<bool> ProjectionExecutor::Next(Tuple* out) {
  Tuple tuple;
  bool has;
  LEXEQUAL_ASSIGN_OR_RETURN(has, child_->Next(&tuple));
  if (!has) return false;
  Tuple projected;
  projected.reserve(exprs_.size());
  for (const ExprPtr& e : exprs_) {
    Value v;
    LEXEQUAL_ASSIGN_OR_RETURN(v, e->Eval(tuple));
    projected.push_back(std::move(v));
  }
  *out = std::move(projected);
  return true;
}

Status NestedLoopJoinExecutor::Init() {
  LEXEQUAL_RETURN_IF_ERROR(left_->Init());
  LEXEQUAL_RETURN_IF_ERROR(right_->Init());
  left_valid_ = false;
  return Status::OK();
}

Result<bool> NestedLoopJoinExecutor::Next(Tuple* out) {
  Tuple right_tuple;
  while (true) {
    if (!left_valid_) {
      bool has;
      LEXEQUAL_ASSIGN_OR_RETURN(has, left_->Next(&left_tuple_));
      if (!has) return false;
      left_valid_ = true;
      LEXEQUAL_RETURN_IF_ERROR(right_->Init());  // rewind inner
    }
    bool has;
    LEXEQUAL_ASSIGN_OR_RETURN(has, right_->Next(&right_tuple));
    if (!has) {
      left_valid_ = false;  // advance outer
      continue;
    }
    Tuple joined = left_tuple_;
    joined.insert(joined.end(), right_tuple.begin(), right_tuple.end());
    if (predicate_ != nullptr) {
      bool pass;
      LEXEQUAL_ASSIGN_OR_RETURN(pass, EvalPredicate(*predicate_, joined));
      if (!pass) continue;
    }
    *out = std::move(joined);
    return true;
  }
}

Result<bool> LimitExecutor::Next(Tuple* out) {
  if (seen_ >= limit_) return false;
  bool has;
  LEXEQUAL_ASSIGN_OR_RETURN(has, child_->Next(out));
  if (!has) return false;
  ++seen_;
  return true;
}

Status HashGroupByExecutor::Init() {
  LEXEQUAL_RETURN_IF_ERROR(child_->Init());
  groups_.clear();
  pos_ = 0;

  // Group key rendered as a string (types are few and serialization
  // is canonical, so display form is a safe hash key here).
  std::map<std::string, std::pair<Tuple, int64_t>> groups;
  Tuple row;
  while (true) {
    Result<bool> has = child_->Next(&row);
    if (!has.ok()) return has.status();
    if (!has.value()) break;
    Tuple key_values;
    std::string key;
    for (const ExprPtr& k : keys_) {
      Result<Value> v = k->Eval(row);
      if (!v.ok()) return v.status();
      key += v->ToDisplayString();
      key.push_back('\x1F');
      key_values.push_back(std::move(v).value());
    }
    auto [it, inserted] =
        groups.try_emplace(key, std::move(key_values), 0);
    ++it->second.second;
  }
  for (auto& [key, group] : groups) {
    Tuple out = std::move(group.first);
    out.push_back(Value::Int64(group.second));
    if (having_ != nullptr) {
      Result<bool> pass = EvalPredicate(*having_, out);
      if (!pass.ok()) return pass.status();
      if (!pass.value()) continue;
    }
    groups_.push_back(std::move(out));
  }
  return Status::OK();
}

Result<bool> HashGroupByExecutor::Next(Tuple* out) {
  if (pos_ >= groups_.size()) return false;
  *out = groups_[pos_++];
  return true;
}

namespace {

// Mirrors Engine::LanguageAllowed: the inlanguages clause over the
// source column's language tag.
bool ScanLanguageAllowed(const std::vector<text::Language>& allowed,
                         const Tuple& row, uint32_t source_col) {
  if (allowed.empty()) return true;  // wildcard *
  const text::Language lang = row[source_col].AsString().language();
  for (text::Language l : allowed) {
    if (l == text::Language::kAny || l == lang) return true;
  }
  return false;
}

}  // namespace

Status ParallelLexEqualScanExecutor::Init() {
  matched_rows_.clear();
  pos_ = 0;
  stats_ = {};
  rows_scanned_ = 0;

  // Single-threaded materialization: heap iteration goes through the
  // buffer pool, which is not synchronized. Rows failing the language
  // clause are dropped here, exactly where the serial plan drops them.
  std::vector<Tuple> rows;
  std::vector<std::string> ipa;
  {
    obs::ScopedSpan span(spec_.trace, "materialize");
    SeqScanExecutor scan(table_);
    LEXEQUAL_RETURN_IF_ERROR(scan.Init());
    Tuple row;
    while (true) {
      Result<bool> has = scan.Next(&row);
      if (!has.ok()) return has.status();
      if (!has.value()) break;
      ++rows_scanned_;
      if (!ScanLanguageAllowed(spec_.in_languages, row,
                               spec_.source_col)) {
        continue;
      }
      const Value& cell = row[spec_.phon_col];
      if (cell.type() != ValueType::kString) {
        return Status::Corruption("phonemic column is not a string");
      }
      ipa.push_back(cell.AsString().text());
      rows.push_back(std::move(row));
    }
    span.AddRows(rows_scanned_);
  }

  match::LexEqualMatcher matcher(spec_.match);
  match::ParallelMatcherOptions pm_options;
  pm_options.threads = spec_.threads;
  pm_options.cache = spec_.cache;
  match::ParallelMatcher pm(matcher, pm_options);
  std::vector<size_t> matched;
  {
    obs::ScopedSpan span(spec_.trace, "parallel_match");
    Result<std::vector<size_t>> matched_or =
        pm.MatchBatchIpa(spec_.query, ipa, &stats_);
    if (!matched_or.ok()) return matched_or.status();
    matched = std::move(matched_or).value();
    span.AddRows(matched.size());
  }
  matched_rows_.reserve(matched.size());
  for (size_t i : matched) {
    matched_rows_.push_back(std::move(rows[i]));
  }
  return Status::OK();
}

Result<bool> ParallelLexEqualScanExecutor::Next(Tuple* out) {
  if (pos_ >= matched_rows_.size()) return false;
  *out = matched_rows_[pos_++];
  return true;
}

Result<std::vector<Tuple>> Collect(Executor& executor) {
  LEXEQUAL_RETURN_IF_ERROR(executor.Init());
  std::vector<Tuple> out;
  Tuple tuple;
  while (true) {
    bool has;
    LEXEQUAL_ASSIGN_OR_RETURN(has, executor.Next(&tuple));
    if (!has) break;
    out.push_back(tuple);
  }
  return out;
}

}  // namespace lexequal::engine
