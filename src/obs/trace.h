// QueryTrace: a per-query span tree with steady-clock durations and
// per-span registry-counter deltas — the timing backbone of EXPLAIN
// ANALYZE and the shell's \trace mode.
//
// A trace is owned by the driver of one query (a Session keeps one per
// traced query) and is NOT thread-safe: spans are begun and ended on
// the query thread only. Worker pools report through the registry
// counters the trace watches, so their work still shows up as deltas
// on the enclosing span.
//
// Usage:
//
//   obs::QueryTrace trace;
//   trace.Watch("bp_hits", registry.GetCounter("lexequal_bufpool_hits"));
//   {
//     obs::ScopedSpan query(&trace, "lexequal_select");
//     {
//       obs::ScopedSpan scan(&trace, "seq_scan_udf");
//       scan.AddRows(n);
//     }  // scan ends: duration + counter deltas captured
//   }
//   trace.ToString();  // indented tree
//
// Nesting comes from begin/end order: BeginSpan parents the new span
// under the innermost still-open span, which is exactly the call
// structure when spans are scoped objects. A null trace pointer makes
// ScopedSpan a no-op, so instrumented code needs no branches.

#ifndef LEXEQUAL_OBS_TRACE_H_
#define LEXEQUAL_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"

namespace lexequal::obs {

class QueryTrace {
 public:
  static constexpr size_t kNoParent = static_cast<size_t>(-1);

  struct Span {
    std::string name;
    size_t parent = kNoParent;
    size_t depth = 0;
    uint64_t wall_us = 0;
    uint64_t rows = 0;  // stage-defined tuple count, see AddRows
    bool open = true;
    /// Watched-counter deltas over the span, parallel to
    /// watched_labels(). Zero-filled while the span is open.
    std::vector<uint64_t> deltas;
  };

  QueryTrace() = default;
  QueryTrace(const QueryTrace&) = delete;
  QueryTrace& operator=(const QueryTrace&) = delete;

  /// Registers a counter whose per-span delta every subsequent span
  /// records. Call before the first BeginSpan. `counter` is borrowed
  /// and must outlive the trace (registry metrics always do).
  void Watch(std::string label, const Counter* counter);

  /// Opens a span under the innermost open span; returns its id.
  size_t BeginSpan(std::string_view name);

  /// Closes `id`, capturing wall time and counter deltas. Ending a
  /// span also ends any deeper spans still open (defensive; scoped
  /// usage never triggers it).
  void EndSpan(size_t id);

  /// Adds `n` to the span's row counter (what "rows" means is
  /// stage-specific: tuples scanned, candidates produced, matches).
  void AddRows(size_t id, uint64_t n);

  const std::vector<Span>& spans() const { return spans_; }
  const std::vector<std::string>& watched_labels() const {
    return labels_;
  }

  /// Indented tree: one line per span with µs, rows, and non-zero
  /// counter deltas.
  std::string ToString() const;

  void Clear();

 private:
  struct OpenState {
    std::chrono::steady_clock::time_point start;
    std::vector<uint64_t> counter_start;
  };

  std::vector<uint64_t> SnapshotCounters() const;

  std::vector<std::string> labels_;
  std::vector<const Counter*> watched_;
  std::vector<Span> spans_;
  std::vector<OpenState> open_state_;  // parallel to spans_
  std::vector<size_t> open_stack_;     // innermost open span on top
};

/// RAII span. A null trace makes every operation a no-op.
class ScopedSpan {
 public:
  ScopedSpan(QueryTrace* trace, std::string_view name)
      : trace_(trace),
        id_(trace != nullptr ? trace->BeginSpan(name)
                             : QueryTrace::kNoParent) {}
  ~ScopedSpan() { End(); }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void AddRows(uint64_t n) {
    if (trace_ != nullptr) trace_->AddRows(id_, n);
  }

  /// Ends the span early (idempotent).
  void End() {
    if (trace_ != nullptr) {
      trace_->EndSpan(id_);
      trace_ = nullptr;
    }
  }

  size_t id() const { return id_; }

 private:
  QueryTrace* trace_;
  size_t id_;
};

}  // namespace lexequal::obs

#endif  // LEXEQUAL_OBS_TRACE_H_
