#include "obs/stmt_stats.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>

namespace lexequal::obs {

namespace {

// JSON string escape for normalized statement text (quotes are rare
// after literal normalization, but the exporter must never emit
// malformed JSON).
std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(c) & 0xff);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

uint64_t FingerprintHash(std::string_view normalized) {
  // FNV-1a 64-bit.
  uint64_t h = 14695981039346656037ull;
  for (char c : normalized) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h == 0 ? 1 : h;
}

StatementStats::StatementStats(size_t shards, size_t shard_capacity,
                               MetricsRegistry* mirror)
    : shard_count_(shards == 0 ? 1 : shards),
      shard_capacity_(shard_capacity == 0 ? 1 : shard_capacity),
      shards_(new Shard[shard_count_]),
      recorded_metric_(
          mirror == nullptr
              ? nullptr
              : mirror->GetCounter(
                    "lexequal_stmt_recorded",
                    "Queries aggregated into statement statistics")),
      dropped_metric_(
          mirror == nullptr
              ? nullptr
              : mirror->GetCounter("lexequal_stmt_dropped",
                                   "Queries dropped because the "
                                   "fingerprint table was full")),
      fingerprints_metric_(
          mirror == nullptr
              ? nullptr
              : mirror->GetGauge(
                    "lexequal_stmt_fingerprints",
                    "Distinct statement fingerprints currently "
                    "tracked")) {
  for (size_t s = 0; s < shard_count_; ++s) {
    shards_[s].entries.reset(new Entry[shard_capacity_]);
  }
}

StatementStats::Entry* StatementStats::FindOrClaim(uint64_t fp) {
  Shard& shard = shards_[fp % shard_count_];
  Entry* entries = shard.entries.get();
  // Start the probe from an fp-derived slot decorrelated from the
  // shard choice (which consumed the low bits).
  size_t idx = (fp >> 8) % shard_capacity_;
  for (size_t probe = 0; probe < shard_capacity_; ++probe) {
    Entry& e = entries[idx];
    uint64_t cur = e.fingerprint.load(std::memory_order_acquire);
    if (cur == fp) return &e;
    if (cur == 0) {
      uint64_t expected = 0;
      if (e.fingerprint.compare_exchange_strong(
              expected, fp, std::memory_order_acq_rel,
              std::memory_order_acquire)) {
        fingerprints_.fetch_add(1, std::memory_order_relaxed);
        if (fingerprints_metric_ != nullptr) {
          fingerprints_metric_->Add(1);
        }
        return &e;
      }
      if (expected == fp) return &e;  // raced claim of the same fp
      // A different fingerprint won the slot; keep probing.
    }
    idx = idx + 1 == shard_capacity_ ? 0 : idx + 1;
  }
  return nullptr;
}

void StatementStats::Record(const StmtRecord& record) {
  if (!Enabled() || !enabled()) return;
  const uint64_t fp = record.fingerprint != 0
                          ? record.fingerprint
                          : FingerprintHash(record.statement);
  Entry* e = FindOrClaim(fp == 0 ? 1 : fp);
  if (e == nullptr) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    if (dropped_metric_ != nullptr) dropped_metric_->Inc();
    return;
  }
  if (!e->text_ready.load(std::memory_order_acquire) &&
      !record.statement.empty()) {
    Shard& shard = shards_[(fp == 0 ? 1 : fp) % shard_count_];
    common::MutexLock lock(&shard.text_mu);
    if (!e->text_ready.load(std::memory_order_relaxed)) {
      const size_t n =
          std::min(record.statement.size(), kMaxStatementBytes);
      std::memcpy(e->text, record.statement.data(), n);
      e->text_len = static_cast<uint16_t>(n);
      e->text_ready.store(true, std::memory_order_release);
    }
  }
  e->calls.fetch_add(1, std::memory_order_relaxed);
  if (record.error) e->errors.fetch_add(1, std::memory_order_relaxed);
  e->rows.fetch_add(record.rows, std::memory_order_relaxed);
  e->candidates.fetch_add(record.candidates, std::memory_order_relaxed);
  e->dp_cells.fetch_add(record.dp_cells, std::memory_order_relaxed);
  e->cache_hits.fetch_add(record.cache_hits, std::memory_order_relaxed);
  e->cache_misses.fetch_add(record.cache_misses,
                            std::memory_order_relaxed);
  e->total_us.fetch_add(record.wall_us, std::memory_order_relaxed);
  const size_t plan =
      record.plan < kMaxPlans ? record.plan : kMaxPlans - 1;
  e->plan_calls[plan].fetch_add(1, std::memory_order_relaxed);
  e->latency.Record(record.wall_us);
  recorded_.fetch_add(1, std::memory_order_relaxed);
  if (recorded_metric_ != nullptr) recorded_metric_->Inc();
}

std::vector<StatementStats::Aggregate> StatementStats::Snapshot()
    const {
  std::vector<Aggregate> out;
  for (size_t s = 0; s < shard_count_; ++s) {
    const Entry* entries = shards_[s].entries.get();
    for (size_t i = 0; i < shard_capacity_; ++i) {
      const Entry& e = entries[i];
      const uint64_t fp =
          e.fingerprint.load(std::memory_order_acquire);
      if (fp == 0) continue;
      Aggregate agg;
      agg.fingerprint = fp;
      if (e.text_ready.load(std::memory_order_acquire)) {
        agg.statement.assign(e.text, e.text_len);
      }
      agg.calls = e.calls.load(std::memory_order_relaxed);
      agg.errors = e.errors.load(std::memory_order_relaxed);
      agg.rows = e.rows.load(std::memory_order_relaxed);
      agg.candidates = e.candidates.load(std::memory_order_relaxed);
      agg.dp_cells = e.dp_cells.load(std::memory_order_relaxed);
      agg.cache_hits = e.cache_hits.load(std::memory_order_relaxed);
      agg.cache_misses =
          e.cache_misses.load(std::memory_order_relaxed);
      agg.total_us = e.total_us.load(std::memory_order_relaxed);
      for (size_t p = 0; p < kMaxPlans; ++p) {
        agg.plan_calls[p] =
            e.plan_calls[p].load(std::memory_order_relaxed);
      }
      agg.latency = e.latency.Snapshot();
      out.push_back(std::move(agg));
    }
  }
  return out;
}

void StatementStats::Reset() {
  for (size_t s = 0; s < shard_count_; ++s) {
    Shard& shard = shards_[s];
    common::MutexLock lock(&shard.text_mu);
    Entry* entries = shard.entries.get();
    for (size_t i = 0; i < shard_capacity_; ++i) {
      Entry& e = entries[i];
      if (e.fingerprint.load(std::memory_order_acquire) == 0) continue;
      e.calls.store(0, std::memory_order_relaxed);
      e.errors.store(0, std::memory_order_relaxed);
      e.rows.store(0, std::memory_order_relaxed);
      e.candidates.store(0, std::memory_order_relaxed);
      e.dp_cells.store(0, std::memory_order_relaxed);
      e.cache_hits.store(0, std::memory_order_relaxed);
      e.cache_misses.store(0, std::memory_order_relaxed);
      e.total_us.store(0, std::memory_order_relaxed);
      for (auto& p : e.plan_calls) p.store(0, std::memory_order_relaxed);
      e.latency.Reset();
      e.text_len = 0;
      e.text_ready.store(false, std::memory_order_relaxed);
      // Free the slot last so a racing Record re-claims a zeroed
      // entry rather than mixing epochs.
      e.fingerprint.store(0, std::memory_order_release);
    }
  }
  recorded_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
  fingerprints_.store(0, std::memory_order_relaxed);
  if (fingerprints_metric_ != nullptr) fingerprints_metric_->Set(0);
}

std::string StatementStats::ExportJson() const {
  std::vector<Aggregate> aggs = Snapshot();
  std::sort(aggs.begin(), aggs.end(),
            [](const Aggregate& a, const Aggregate& b) {
              if (a.calls != b.calls) return a.calls > b.calls;
              return a.fingerprint < b.fingerprint;
            });
  std::string out = "[";
  char buf[256];
  for (size_t i = 0; i < aggs.size(); ++i) {
    const Aggregate& a = aggs[i];
    if (i > 0) out += ", ";
    std::snprintf(buf, sizeof buf,
                  "{\"fingerprint\": \"%016" PRIx64
                  "\", \"calls\": %" PRIu64 ", \"errors\": %" PRIu64
                  ", \"rows\": %" PRIu64 ", \"total_us\": %" PRIu64,
                  a.fingerprint, a.calls, a.errors, a.rows, a.total_us);
    out += buf;
    std::snprintf(buf, sizeof buf,
                  ", \"p50_us\": %.1f, \"p95_us\": %.1f, \"p99_us\": "
                  "%.1f, \"candidates\": %" PRIu64
                  ", \"dp_cells\": %" PRIu64 ", \"cache_hits\": %" PRIu64
                  ", \"cache_misses\": %" PRIu64,
                  a.latency.p50(), a.latency.p95(), a.latency.p99(),
                  a.candidates, a.dp_cells, a.cache_hits,
                  a.cache_misses);
    out += buf;
    out += ", \"statement\": \"" + JsonEscape(a.statement) + "\"}";
  }
  out += "]";
  return out;
}

std::string StatementStats::ExportPrometheus() const {
  std::vector<Aggregate> aggs = Snapshot();
  std::sort(aggs.begin(), aggs.end(),
            [](const Aggregate& a, const Aggregate& b) {
              return a.fingerprint < b.fingerprint;
            });
  std::string out;
  char buf[160];
  const struct {
    const char* name;
    uint64_t Aggregate::* field;
  } kSeries[] = {
      {"lexequal_stmt_calls", &Aggregate::calls},
      {"lexequal_stmt_errors", &Aggregate::errors},
      {"lexequal_stmt_rows", &Aggregate::rows},
      {"lexequal_stmt_total_us", &Aggregate::total_us},
  };
  for (const auto& series : kSeries) {
    out += std::string("# TYPE ") + series.name + " counter\n";
    for (const Aggregate& a : aggs) {
      std::snprintf(buf, sizeof buf,
                    "%s{fingerprint=\"%016" PRIx64 "\"} %" PRIu64 "\n",
                    series.name, a.fingerprint, a.*(series.field));
      out += buf;
    }
  }
  out += "# TYPE lexequal_stmt_recorded counter\n";
  std::snprintf(buf, sizeof buf, "lexequal_stmt_recorded %" PRIu64 "\n",
                recorded());
  out += buf;
  out += "# TYPE lexequal_stmt_dropped counter\n";
  std::snprintf(buf, sizeof buf, "lexequal_stmt_dropped %" PRIu64 "\n",
                dropped());
  out += buf;
  out += "# TYPE lexequal_stmt_fingerprints gauge\n";
  std::snprintf(buf, sizeof buf,
                "lexequal_stmt_fingerprints %" PRIu64 "\n",
                fingerprints());
  out += buf;
  return out;
}

}  // namespace lexequal::obs
