// SlowQueryLog: a fixed-size ring of evidence about queries that
// exceeded their session's slow_query_us threshold.
//
// Aggregates (StatementStats) tell the DBA which statement shapes
// are slow on average; this log retains the *individual* outliers —
// the full QueryTrace span tree, the fingerprint, the owning session
// and the headline stats — after the query has finished and its
// session has moved on. The shell's \slowlog dumps it; the future
// line-protocol server will serve the JSON export.
//
// Concurrency: a single mutex guards the ring. That is deliberate —
// entries are recorded only for queries that already blew a
// multi-microsecond latency budget, so the lock is never on a fast
// path, and readers (\slowlog) are rare. When the ring is full the
// oldest entry is evicted (counted). Traces are retained by
// shared_ptr: the session, the query result, and the log can all
// hold the same immutable tree.

#ifndef LEXEQUAL_OBS_SLOW_QUERY_LOG_H_
#define LEXEQUAL_OBS_SLOW_QUERY_LOG_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace lexequal::obs {

struct SlowQueryEntry {
  uint64_t seq = 0;  // monotonic capture id, assigned by Record
  uint64_t fingerprint = 0;
  uint64_t session_id = 0;
  uint64_t wall_us = 0;
  uint64_t threshold_us = 0;
  uint64_t rows = 0;
  uint64_t candidates = 0;
  uint64_t dp_cells = 0;
  std::string statement;  // normalized text (may be empty)
  std::string plan;       // plan name that ran
  /// Full span tree; null when the query ran untraced.
  std::shared_ptr<const QueryTrace> trace;
};

class SlowQueryLog {
 public:
  static constexpr size_t kDefaultCapacity = 64;

  /// `mirror`, when non-null, receives lexequal_slowlog_captured /
  /// _evicted counters for the ordinary Prometheus scrape.
  explicit SlowQueryLog(size_t capacity = kDefaultCapacity,
                        MetricsRegistry* mirror = nullptr);

  SlowQueryLog(const SlowQueryLog&) = delete;
  SlowQueryLog& operator=(const SlowQueryLog&) = delete;

  /// Appends one over-threshold query, evicting the oldest entry if
  /// the ring is full. Assigns and returns the entry's seq.
  uint64_t Record(SlowQueryEntry entry);

  /// The most recent entries, newest first. n == 0 means all
  /// retained entries.
  [[nodiscard]] std::vector<SlowQueryEntry> Latest(size_t n = 0) const;

  void Clear();

  size_t capacity() const { return capacity_; }
  /// Entries currently retained (<= capacity).
  size_t size() const;
  /// Total captures ever, including evicted ones.
  uint64_t captured() const;

  /// JSON array, newest first (n == 0 means all retained). Each
  /// object carries the entry fields plus the rendered trace tree.
  [[nodiscard]] std::string ExportJson(size_t n = 0) const;

 private:
  const size_t capacity_;
  mutable common::Mutex mu_;
  std::vector<SlowQueryEntry> ring_ GUARDED_BY(mu_);  // slot = next_
  size_t next_ GUARDED_BY(mu_) = 0;
  uint64_t seq_ GUARDED_BY(mu_) = 0;
  Counter* const captured_metric_;  // mirrors, may be null
  Counter* const evicted_metric_;
};

}  // namespace lexequal::obs

#endif  // LEXEQUAL_OBS_SLOW_QUERY_LOG_H_
