#include "obs/metrics.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>

namespace lexequal::obs {

namespace internal {
std::atomic<bool> g_enabled{true};
}  // namespace internal

bool SetEnabled(bool enabled) {
  return internal::g_enabled.exchange(enabled,
                                      std::memory_order_relaxed);
}

const std::array<uint64_t, Histogram::kBucketCount>&
Histogram::BucketBounds() {
  // 1-2-5 progression over microseconds: 1 µs .. 2 s.
  static const std::array<uint64_t, kBucketCount> kBounds = {
      1,      2,      5,      10,     20,      50,      100,
      200,    500,    1000,   2000,   5000,    10000,   20000,
      50000,  100000, 200000, 500000, 1000000, 2000000,
  };
  return kBounds;
}

void Histogram::Record(uint64_t value) {
  if (!Enabled()) return;
  const auto& bounds = BucketBounds();
  size_t i = 0;
  while (i < kBucketCount && value > bounds[i]) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

static_assert(std::tuple_size<decltype(HistogramSnapshot::buckets)>::value ==
                  Histogram::kBucketCount + 1,
              "snapshot bucket array must cover finite buckets + overflow");

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the target observation (1-based, ceil).
  const uint64_t rank =
      static_cast<uint64_t>(q * static_cast<double>(count) + 0.5) == 0
          ? 1
          : static_cast<uint64_t>(q * static_cast<double>(count) + 0.5);
  const auto& bounds = Histogram::BucketBounds();
  constexpr size_t kBucketCount = Histogram::kBucketCount;
  uint64_t cumulative = 0;
  for (size_t i = 0; i <= kBucketCount; ++i) {
    const uint64_t in_bucket = buckets[i];
    if (cumulative + in_bucket < rank) {
      cumulative += in_bucket;
      continue;
    }
    if (i == kBucketCount) {
      // Overflow mass: clamp to the largest finite bound.
      return static_cast<double>(bounds[kBucketCount - 1]);
    }
    const double lower =
        i == 0 ? 0.0 : static_cast<double>(bounds[i - 1]);
    const double upper = static_cast<double>(bounds[i]);
    if (in_bucket == 0) return upper;
    const double frac = static_cast<double>(rank - cumulative) /
                        static_cast<double>(in_bucket);
    return lower + (upper - lower) * frac;
  }
  return static_cast<double>(bounds[kBucketCount - 1]);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  // Record() bumps bucket, count, then sum as three separate relaxed
  // RMWs, so a plain read can land between them. Retry until the
  // buckets we read sum to a stable count; under pathological
  // contention fall through and derive count from the buckets, which
  // keeps the snapshot internally consistent either way.
  for (int attempt = 0; attempt < 16; ++attempt) {
    const uint64_t before = count_.load(std::memory_order_relaxed);
    uint64_t total = 0;
    for (size_t i = 0; i <= kBucketCount; ++i) {
      snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
      total += snap.buckets[i];
    }
    snap.sum = sum_.load(std::memory_order_relaxed);
    const uint64_t after = count_.load(std::memory_order_relaxed);
    if (before == after && total == before) {
      snap.count = before;
      return snap;
    }
  }
  uint64_t total = 0;
  for (size_t i = 0; i <= kBucketCount; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    total += snap.buckets[i];
  }
  snap.count = total;
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

bool MetricsRegistry::ValidName(std::string_view name) {
  constexpr std::string_view kPrefix = "lexequal_";
  if (name.substr(0, kPrefix.size()) != kPrefix) return false;
  const std::string_view rest = name.substr(kPrefix.size());
  if (rest.empty()) return false;
  size_t segments = 1;
  char prev = '_';
  for (char c : rest) {
    const bool lower = c >= 'a' && c <= 'z';
    const bool digit = c >= '0' && c <= '9';
    if (c == '_') {
      if (prev == '_') return false;  // empty segment
      ++segments;
    } else if (!lower && !digit) {
      return false;
    }
    prev = c;
  }
  if (prev == '_') return false;  // trailing underscore
  // lexequal_<subsystem>_<name>: at least two segments after prefix.
  return segments >= 2;
}

MetricsRegistry::Entry* MetricsRegistry::GetOrCreate(
    std::string_view name, std::string_view help, Kind kind) {
  if (!ValidName(name)) {
    std::fprintf(stderr,
                 "metrics: invalid metric name '%.*s' (want "
                 "lexequal_<subsystem>_<name> snake_case)\n",
                 static_cast<int>(name.size()), name.data());
    std::abort();
  }
  common::MutexLock lock(&mu_);
  auto it = metrics_.find(std::string(name));
  if (it != metrics_.end()) {
    if (it->second.kind != kind) {
      std::fprintf(stderr,
                   "metrics: '%.*s' registered with two kinds\n",
                   static_cast<int>(name.size()), name.data());
      std::abort();
    }
    return &it->second;
  }
  Entry entry;
  entry.kind = kind;
  entry.help = std::string(help);
  switch (kind) {
    case Kind::kCounter:
      entry.counter = std::make_unique<Counter>();
      break;
    case Kind::kGauge:
      entry.gauge = std::make_unique<Gauge>();
      break;
    case Kind::kHistogram:
      entry.histogram = std::make_unique<Histogram>();
      break;
  }
  auto [pos, inserted] =
      metrics_.emplace(std::string(name), std::move(entry));
  (void)inserted;
  return &pos->second;
}

Counter* MetricsRegistry::GetCounter(std::string_view name,
                                     std::string_view help) {
  return GetOrCreate(name, help, Kind::kCounter)->counter.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name,
                                 std::string_view help) {
  return GetOrCreate(name, help, Kind::kGauge)->gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::string_view help) {
  return GetOrCreate(name, help, Kind::kHistogram)->histogram.get();
}

std::string MetricsRegistry::ExportPrometheus() const {
  common::MutexLock lock(&mu_);
  std::string out;
  char buf[160];
  for (const auto& [name, entry] : metrics_) {
    if (!entry.help.empty()) {
      out += "# HELP " + name + " " + entry.help + "\n";
    }
    switch (entry.kind) {
      case Kind::kCounter:
        out += "# TYPE " + name + " counter\n";
        std::snprintf(buf, sizeof buf, "%s %" PRIu64 "\n", name.c_str(),
                      entry.counter->value());
        out += buf;
        break;
      case Kind::kGauge:
        out += "# TYPE " + name + " gauge\n";
        std::snprintf(buf, sizeof buf, "%s %" PRId64 "\n", name.c_str(),
                      entry.gauge->value());
        out += buf;
        break;
      case Kind::kHistogram: {
        out += "# TYPE " + name + " histogram\n";
        const auto& bounds = Histogram::BucketBounds();
        // One consistent snapshot per histogram: the +Inf cumulative
        // bucket and _count below are guaranteed equal even while
        // recorders race or the runtime switch flips mid-export.
        const HistogramSnapshot snap = entry.histogram->Snapshot();
        uint64_t cumulative = 0;
        for (size_t i = 0; i < Histogram::kBucketCount; ++i) {
          cumulative += snap.buckets[i];
          std::snprintf(buf, sizeof buf,
                        "%s_bucket{le=\"%" PRIu64 "\"} %" PRIu64 "\n",
                        name.c_str(), bounds[i], cumulative);
          out += buf;
        }
        cumulative += snap.buckets[Histogram::kBucketCount];
        std::snprintf(buf, sizeof buf,
                      "%s_bucket{le=\"+Inf\"} %" PRIu64 "\n",
                      name.c_str(), cumulative);
        out += buf;
        std::snprintf(buf, sizeof buf, "%s_sum %" PRIu64 "\n",
                      name.c_str(), snap.sum);
        out += buf;
        std::snprintf(buf, sizeof buf, "%s_count %" PRIu64 "\n",
                      name.c_str(), snap.count);
        out += buf;
        break;
      }
    }
  }
  return out;
}

std::string MetricsRegistry::ExportJson() const {
  common::MutexLock lock(&mu_);
  std::string counters, gauges, histograms;
  char buf[200];
  for (const auto& [name, entry] : metrics_) {
    switch (entry.kind) {
      case Kind::kCounter:
        std::snprintf(buf, sizeof buf, "\"%s\": %" PRIu64, name.c_str(),
                      entry.counter->value());
        if (!counters.empty()) counters += ", ";
        counters += buf;
        break;
      case Kind::kGauge:
        std::snprintf(buf, sizeof buf, "\"%s\": %" PRId64, name.c_str(),
                      entry.gauge->value());
        if (!gauges.empty()) gauges += ", ";
        gauges += buf;
        break;
      case Kind::kHistogram: {
        const HistogramSnapshot snap = entry.histogram->Snapshot();
        std::snprintf(buf, sizeof buf,
                      "\"%s\": {\"count\": %" PRIu64 ", \"sum\": %" PRIu64
                      ", \"p50\": %.1f, \"p95\": %.1f, \"p99\": %.1f}",
                      name.c_str(), snap.count, snap.sum, snap.p50(),
                      snap.p95(), snap.p99());
        if (!histograms.empty()) histograms += ", ";
        histograms += buf;
        break;
      }
    }
  }
  return "{\"counters\": {" + counters + "}, \"gauges\": {" + gauges +
         "}, \"histograms\": {" + histograms + "}}";
}

std::vector<std::string> MetricsRegistry::Names() const {
  common::MutexLock lock(&mu_);
  std::vector<std::string> out;
  out.reserve(metrics_.size());
  for (const auto& [name, entry] : metrics_) out.push_back(name);
  return out;
}

void MetricsRegistry::ResetAll() {
  common::MutexLock lock(&mu_);
  for (auto& [name, entry] : metrics_) {
    switch (entry.kind) {
      case Kind::kCounter:
        entry.counter->Reset();
        break;
      case Kind::kGauge:
        entry.gauge->Reset();
        break;
      case Kind::kHistogram:
        entry.histogram->Reset();
        break;
    }
  }
}

MetricsRegistry& MetricsRegistry::Default() {
  // Leaked singleton, like G2PRegistry::Default(): cached metric
  // pointers must stay valid through static destruction.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace lexequal::obs
