// MetricsRegistry: the unified observability surface of the engine.
//
// The paper's entire efficiency argument (§5, Tables 1-3) is a cost
// story — where does a LexEQUAL query spend its budget? — yet until
// this subsystem the engine could only answer with per-query counter
// structs (QueryStats, MatchStats, BufferPoolStats) that neither
// accumulate across queries nor attribute I/O or latency. The
// registry is the process-wide aggregation point those structs feed:
// named counters, gauges, and fixed-bucket latency histograms, all
// readable at any moment through Prometheus-style text or JSON.
//
// Naming contract (enforced by scripts/check_metrics_names.sh and by
// ValidName at registration): every metric is
//
//   lexequal_<subsystem>_<name>    e.g. lexequal_bufpool_hits
//
// lower-snake-case, at least two segments after the prefix, each
// name registered with exactly one metric kind.
//
// Hot-path cost model:
//  * Counter::Inc / Gauge::Add / Histogram::Record are lock-free —
//    one relaxed atomic RMW (plus a relaxed load of the global
//    enabled flag). No mutex is ever taken after registration.
//  * Registration (Get*) takes the registry mutex; call sites cache
//    the returned pointer (a member or function-local static), so
//    the mutex is off every per-tuple path.
//  * The compile-time kill switch LEXEQUAL_NO_OBS (cmake
//    -DLEXEQUAL_NO_OBS=ON) turns every mutation into a no-op the
//    optimizer deletes; bench/obs_overhead quantifies the residual
//    cost of leaving instrumentation on (<3% on the Table-1 naive
//    scan — see EXPERIMENTS.md).
//  * SetEnabled(false) is the runtime kill switch: mutations become
//    a relaxed load + branch. The per-instance structs
//    (BufferPoolStats et al.) are *views* fed alongside the registry
//    and are never gated — tests asserting exact per-instance counts
//    stay deterministic regardless of the switch.
//
// Thread-safety: all metric mutations and reads are safe from any
// thread. Readout (value(), Quantile(), exporters) is monotonic but
// not a consistent cut across metrics — fine for monitoring.

#ifndef LEXEQUAL_OBS_METRICS_H_
#define LEXEQUAL_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace lexequal::obs {

namespace internal {
extern std::atomic<bool> g_enabled;
}  // namespace internal

/// Runtime kill switch for every metric mutation. Defaults to on.
inline bool Enabled() {
#ifdef LEXEQUAL_NO_OBS
  return false;
#else
  return internal::g_enabled.load(std::memory_order_relaxed);
#endif
}

/// Flips the runtime switch; returns the previous value. Under
/// LEXEQUAL_NO_OBS this is accepted but Enabled() stays false.
bool SetEnabled(bool enabled);

/// Monotonic counter. Lock-free; relaxed ordering (counters are
/// statistics, not synchronization).
class Counter {
 public:
  void Inc(uint64_t n = 1) {
    if (!Enabled()) return;
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  /// Test/bench helper; not for production paths.
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Point-in-time signed value (resident entries, pool occupancy).
class Gauge {
 public:
  void Set(int64_t v) {
    if (!Enabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }
  void Add(int64_t delta) {
    if (!Enabled()) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

class Histogram;

/// A consistent point-in-time view of one histogram: the bucket
/// counts always sum exactly to `count`, so cumulative Prometheus
/// series, _count, and quantiles computed from one snapshot can
/// never contradict each other — even while recorders race or
/// SetEnabled flips mid-export (a Record interrupted by the switch
/// leaves the live atomics mid-update; the snapshot reconciles).
struct HistogramSnapshot {
  /// Finite buckets then the overflow bucket (see BucketBounds()).
  std::array<uint64_t, 21> buckets{};
  uint64_t count = 0;
  uint64_t sum = 0;

  /// Interpolated quantile in [0, 1]; 0 when empty. Overflow mass
  /// clamps to the largest finite bound. Always defined: an empty
  /// snapshot returns 0, a single sample lands inside its bucket.
  double Quantile(double q) const;
  double p50() const { return Quantile(0.50); }
  double p95() const { return Quantile(0.95); }
  double p99() const { return Quantile(0.99); }
};

/// Fixed-bucket latency histogram, calibrated for microsecond
/// durations (1 µs .. 2 s in a 1-2-5 progression) plus an overflow
/// bucket. Recording is lock-free: one bucket increment plus
/// count/sum increments, all relaxed. Quantiles are read by linear
/// interpolation inside the winning bucket; an empty histogram
/// reports 0 and values past the last bound land in the overflow
/// bucket, whose quantile reads clamp to the largest finite bound.
class Histogram {
 public:
  static constexpr size_t kBucketCount = 20;

  /// Upper bounds (inclusive) of the finite buckets, ascending.
  static const std::array<uint64_t, kBucketCount>& BucketBounds();

  void Record(uint64_t value);

  uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Observations beyond the largest finite bound.
  uint64_t overflow() const {
    return buckets_[kBucketCount].load(std::memory_order_relaxed);
  }
  uint64_t bucket(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Consistent read of the whole histogram (see HistogramSnapshot).
  /// Retries while recorders race; if contention never quiesces it
  /// derives `count` from the buckets actually read, so the
  /// Σbuckets == count invariant holds unconditionally.
  HistogramSnapshot Snapshot() const;

  /// Interpolated quantile in [0, 1]; 0 when empty. Overflow mass
  /// clamps to the largest finite bound. Computed from Snapshot(),
  /// so it is internally consistent under concurrent recording.
  double Quantile(double q) const { return Snapshot().Quantile(q); }

  double p50() const { return Quantile(0.50); }
  double p95() const { return Quantile(0.95); }
  double p99() const { return Quantile(0.99); }

  void Reset();

 private:
  std::atomic<uint64_t> buckets_[kBucketCount + 1] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

/// Name → metric map. Registration is GetOrCreate: the first call
/// for a name creates the metric, later calls return the same
/// pointer (so every buffer pool instance shares one
/// lexequal_bufpool_hits). Registering one name as two different
/// kinds aborts — that is a programming error the name lint also
/// catches. Metric objects live as long as the registry (for
/// Default(), the process), so cached pointers never dangle.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// True iff `name` follows lexequal_<subsystem>_<name> snake_case.
  static bool ValidName(std::string_view name);

  Counter* GetCounter(std::string_view name, std::string_view help = "");
  Gauge* GetGauge(std::string_view name, std::string_view help = "");
  Histogram* GetHistogram(std::string_view name,
                          std::string_view help = "");

  /// Prometheus text exposition format (counters/gauges as samples,
  /// histograms as cumulative _bucket/_sum/_count series).
  std::string ExportPrometheus() const;

  /// One JSON object: {"counters": {...}, "gauges": {...},
  /// "histograms": {name: {count, sum, p50, p95, p99}}}.
  std::string ExportJson() const;

  /// Registered names in sorted order (tests, lint round-trips).
  std::vector<std::string> Names() const;

  /// Zeroes every metric (bench isolation; not thread-safe against
  /// concurrent recorders in the sense that in-flight increments may
  /// survive, which is fine for benches).
  void ResetAll();

  /// Process-wide registry, never destroyed.
  static MetricsRegistry& Default();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* GetOrCreate(std::string_view name, std::string_view help,
                     Kind kind) EXCLUDES(mu_);

  mutable common::Mutex mu_;
  // Sorted => stable exports. Entry objects are heap-allocated and
  // never erased, so pointers handed out by Get* outlive the lock.
  std::map<std::string, Entry> metrics_ GUARDED_BY(mu_);
};

}  // namespace lexequal::obs

#endif  // LEXEQUAL_OBS_METRICS_H_
