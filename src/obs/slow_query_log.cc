#include "obs/slow_query_log.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace lexequal::obs {

namespace {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(c) & 0xff);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

SlowQueryLog::SlowQueryLog(size_t capacity, MetricsRegistry* mirror)
    : capacity_(capacity == 0 ? 1 : capacity),
      captured_metric_(
          mirror == nullptr
              ? nullptr
              : mirror->GetCounter(
                    "lexequal_slowlog_captured",
                    "Queries captured by the slow-query log")),
      evicted_metric_(
          mirror == nullptr
              ? nullptr
              : mirror->GetCounter(
                    "lexequal_slowlog_evicted",
                    "Slow-query entries evicted by ring wraparound")) {
  ring_.reserve(capacity_);
}

uint64_t SlowQueryLog::Record(SlowQueryEntry entry) {
  uint64_t seq;
  bool evicted = false;
  {
    common::MutexLock lock(&mu_);
    seq = ++seq_;
    entry.seq = seq;
    if (ring_.size() < capacity_) {
      ring_.push_back(std::move(entry));
    } else {
      ring_[next_] = std::move(entry);
      evicted = true;
    }
    next_ = next_ + 1 == capacity_ ? 0 : next_ + 1;
  }
  if (captured_metric_ != nullptr) captured_metric_->Inc();
  if (evicted && evicted_metric_ != nullptr) evicted_metric_->Inc();
  return seq;
}

std::vector<SlowQueryEntry> SlowQueryLog::Latest(size_t n) const {
  common::MutexLock lock(&mu_);
  std::vector<SlowQueryEntry> out(ring_.begin(), ring_.end());
  std::sort(out.begin(), out.end(),
            [](const SlowQueryEntry& a, const SlowQueryEntry& b) {
              return a.seq > b.seq;
            });
  if (n != 0 && out.size() > n) out.resize(n);
  return out;
}

void SlowQueryLog::Clear() {
  common::MutexLock lock(&mu_);
  ring_.clear();
  next_ = 0;
}

size_t SlowQueryLog::size() const {
  common::MutexLock lock(&mu_);
  return ring_.size();
}

uint64_t SlowQueryLog::captured() const {
  common::MutexLock lock(&mu_);
  return seq_;
}

std::string SlowQueryLog::ExportJson(size_t n) const {
  const std::vector<SlowQueryEntry> entries = Latest(n);
  std::string out = "[";
  char buf[256];
  for (size_t i = 0; i < entries.size(); ++i) {
    const SlowQueryEntry& e = entries[i];
    if (i > 0) out += ", ";
    std::snprintf(
        buf, sizeof buf,
        "{\"seq\": %" PRIu64 ", \"fingerprint\": \"%016" PRIx64
        "\", \"session\": %" PRIu64 ", \"wall_us\": %" PRIu64
        ", \"threshold_us\": %" PRIu64 ", \"rows\": %" PRIu64
        ", \"candidates\": %" PRIu64 ", \"dp_cells\": %" PRIu64,
        e.seq, e.fingerprint, e.session_id, e.wall_us, e.threshold_us,
        e.rows, e.candidates, e.dp_cells);
    out += buf;
    out += ", \"plan\": \"" + JsonEscape(e.plan) + "\"";
    out += ", \"statement\": \"" + JsonEscape(e.statement) + "\"";
    out += ", \"trace\": ";
    if (e.trace != nullptr) {
      out += "\"" + JsonEscape(e.trace->ToString()) + "\"";
    } else {
      out += "null";
    }
    out += "}";
  }
  out += "]";
  return out;
}

}  // namespace lexequal::obs
