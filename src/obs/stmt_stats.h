// StatementStats: cross-query aggregate statistics per statement
// fingerprint — the pg_stat_statements of this engine.
//
// Per-query observability (QueryStats, QueryTrace) answers "what did
// THIS query do"; the metrics registry answers "what is the process
// doing overall". Neither answers the DBA question LexEQUAL's cost
// knobs make urgent: *which statement shapes* are slow, how often do
// they run, and which plan did the picker give them. StatementStats
// keys every executed query by a 64-bit fingerprint of its
// normalized form (literals -> `?`, identifiers case-folded,
// plan/threshold/cost-model knobs preserved — see sql/fingerprint.h)
// and aggregates: call count, error count, rows returned, per-plan
// call counts, a 1-2-5 µs latency histogram, and the DP-cells /
// candidates / phoneme-cache rollups that explain the latency.
//
// Concurrency: the steady-state Record path is lock-free. Slots live
// in fixed preallocated shards; a fingerprint claims its slot with
// one CAS on first sight and every later Record is a handful of
// relaxed atomic adds plus one histogram bucket increment. The only
// mutex is a per-shard text mutex taken once per fingerprint
// lifetime, to publish the normalized statement text. A full shard
// drops new fingerprints (counted, never blocks); existing
// fingerprints keep aggregating. Counter adds are exact — the
// differential test replays a workload and asserts aggregate
// equality against per-query ground truth.
//
// Reset() (SHOW STATEMENTS RESET) zeroes every slot. Like
// MetricsRegistry::ResetAll it is not linearizable against
// concurrent recorders: an in-flight Record may survive into the
// fresh epoch. That is fine for its job (bench isolation, DBA
// "measure from now").

#ifndef LEXEQUAL_OBS_STMT_STATS_H_
#define LEXEQUAL_OBS_STMT_STATS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"

namespace lexequal::obs {

/// FNV-1a over the normalized statement text. Never returns 0 (the
/// registry's empty-slot sentinel); a real hash of 0 remaps to 1.
uint64_t FingerprintHash(std::string_view normalized);

/// One executed query, as the engine reports it after the latch is
/// released. `plan` is an opaque small index (the engine's
/// LexEqualPlan value); StatementStats does not interpret it beyond
/// bucketing per-plan call counts.
struct StmtRecord {
  uint64_t fingerprint = 0;  // 0 = derive from `statement`
  std::string_view statement;  // normalized text, stored on first sight
  uint64_t wall_us = 0;
  uint64_t rows = 0;
  uint64_t candidates = 0;
  uint64_t dp_cells = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint32_t plan = 0;  // clamped to kMaxPlans - 1
  bool error = false;
};

class StatementStats {
 public:
  /// Per-plan count slots. The engine currently has 6 plan kinds
  /// (incl. kAuto); 8 leaves headroom without a layering dependency
  /// on engine/plan.h.
  static constexpr size_t kMaxPlans = 8;
  /// Longest normalized statement text retained per fingerprint.
  static constexpr size_t kMaxStatementBytes = 240;

  /// Everything aggregated for one fingerprint, read at one moment.
  struct Aggregate {
    uint64_t fingerprint = 0;
    std::string statement;
    uint64_t calls = 0;
    uint64_t errors = 0;
    uint64_t rows = 0;
    uint64_t candidates = 0;
    uint64_t dp_cells = 0;
    uint64_t cache_hits = 0;
    uint64_t cache_misses = 0;
    uint64_t total_us = 0;
    std::array<uint64_t, kMaxPlans> plan_calls{};
    HistogramSnapshot latency;  // p50()/p95()/p99() in µs
  };

  /// `mirror`, when non-null, receives the registry-level scalars
  /// (lexequal_stmt_recorded / _dropped / _fingerprints) so the
  /// subsystem shows up in the ordinary Prometheus scrape. Tests
  /// pass nullptr and read the accessors directly.
  explicit StatementStats(size_t shards = 8, size_t shard_capacity = 512,
                          MetricsRegistry* mirror = nullptr);

  StatementStats(const StatementStats&) = delete;
  StatementStats& operator=(const StatementStats&) = delete;

  /// Subsystem-local switch (the stmt-stats overhead bench's A/B
  /// knob). Both this and the global obs::Enabled() gate Record.
  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }
  bool set_enabled(bool on) {
    return enabled_.exchange(on, std::memory_order_relaxed);
  }

  /// Aggregates one executed query. Lock-free after a fingerprint's
  /// first sighting; never blocks on a full shard (drops + counts).
  void Record(const StmtRecord& record);

  /// Snapshot of every tracked fingerprint, unordered. Each entry is
  /// internally consistent per counter; cross-counter skew from
  /// in-flight Records is bounded by one query.
  [[nodiscard]] std::vector<Aggregate> Snapshot() const;

  /// SHOW STATEMENTS RESET. Not linearizable vs concurrent Records
  /// (header comment); fingerprint slots are freed for reuse.
  void Reset();

  uint64_t recorded() const {
    return recorded_.load(std::memory_order_relaxed);
  }
  uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  /// Distinct fingerprints currently tracked.
  uint64_t fingerprints() const {
    return fingerprints_.load(std::memory_order_relaxed);
  }
  size_t capacity() const { return shard_count_ * shard_capacity_; }

  /// JSON array of per-fingerprint objects, sorted by calls
  /// descending (ties by fingerprint for stable output).
  [[nodiscard]] std::string ExportJson() const;

  /// Prometheus text: lexequal_stmt_{calls,errors,rows,total_us}
  /// series labeled by fingerprint, plus the scalar rollups.
  [[nodiscard]] std::string ExportPrometheus() const;

 private:
  struct Entry {
    std::atomic<uint64_t> fingerprint{0};  // 0 = empty; claimed by CAS
    std::atomic<bool> text_ready{false};
    std::atomic<uint64_t> calls{0};
    std::atomic<uint64_t> errors{0};
    std::atomic<uint64_t> rows{0};
    std::atomic<uint64_t> candidates{0};
    std::atomic<uint64_t> dp_cells{0};
    std::atomic<uint64_t> cache_hits{0};
    std::atomic<uint64_t> cache_misses{0};
    std::atomic<uint64_t> total_us{0};
    std::array<std::atomic<uint64_t>, kMaxPlans> plan_calls{};
    Histogram latency;
    // Published once under the owning shard's text_mu, then read-only
    // behind the text_ready acquire flag. Entry cannot name that
    // mutex in a GUARDED_BY (it lives in Shard, one level up), so the
    // contract stays documented here and checked by the acquire/
    // release pair: readers load text_ready with acquire before
    // touching text/text_len; the single writer stores it with
    // release after filling them.
    uint16_t text_len = 0;
    char text[kMaxStatementBytes];
  };

  struct Shard {
    // Set once at construction, immutable afterwards; the Entry
    // slots themselves are atomics (lock-free Record path).
    // lexlint:allow(guards): entries pointer is written only in the StatementStats constructor, before any concurrent access
    std::unique_ptr<Entry[]> entries;
    common::Mutex text_mu;  // first-claim statement-text publication
  };

  /// Finds or claims the slot for `fp`; null when the shard is full.
  Entry* FindOrClaim(uint64_t fp);

  const size_t shard_count_;
  const size_t shard_capacity_;
  const std::unique_ptr<Shard[]> shards_;
  std::atomic<bool> enabled_{true};
  std::atomic<uint64_t> recorded_{0};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> fingerprints_{0};
  Counter* const recorded_metric_;   // mirrors, may be null
  Counter* const dropped_metric_;
  Gauge* const fingerprints_metric_;
};

}  // namespace lexequal::obs

#endif  // LEXEQUAL_OBS_STMT_STATS_H_
