#include "obs/trace.h"

#include <cinttypes>
#include <cstdio>

namespace lexequal::obs {

void QueryTrace::Watch(std::string label, const Counter* counter) {
  labels_.push_back(std::move(label));
  watched_.push_back(counter);
}

std::vector<uint64_t> QueryTrace::SnapshotCounters() const {
  std::vector<uint64_t> out;
  out.reserve(watched_.size());
  for (const Counter* c : watched_) out.push_back(c->value());
  return out;
}

size_t QueryTrace::BeginSpan(std::string_view name) {
  Span span;
  span.name = std::string(name);
  if (!open_stack_.empty()) {
    span.parent = open_stack_.back();
    span.depth = spans_[span.parent].depth + 1;
  }
  span.deltas.assign(watched_.size(), 0);
  const size_t id = spans_.size();
  spans_.push_back(std::move(span));
  OpenState state;
  state.start = std::chrono::steady_clock::now();
  state.counter_start = SnapshotCounters();
  open_state_.push_back(std::move(state));
  open_stack_.push_back(id);
  return id;
}

void QueryTrace::EndSpan(size_t id) {
  if (id >= spans_.size() || !spans_[id].open) return;
  // Close any deeper spans first so the stack unwinds cleanly.
  while (!open_stack_.empty()) {
    const size_t top = open_stack_.back();
    open_stack_.pop_back();
    Span& span = spans_[top];
    if (!span.open) continue;
    span.open = false;
    span.wall_us = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - open_state_[top].start)
            .count());
    const std::vector<uint64_t> now = SnapshotCounters();
    for (size_t i = 0; i < now.size(); ++i) {
      span.deltas[i] = now[i] - open_state_[top].counter_start[i];
    }
    if (top == id) break;
  }
}

void QueryTrace::AddRows(size_t id, uint64_t n) {
  if (id < spans_.size()) spans_[id].rows += n;
}

std::string QueryTrace::ToString() const {
  std::string out;
  char buf[96];
  for (const Span& span : spans_) {
    out.append(span.depth * 2, ' ');
    out += span.name;
    const size_t pad_to = 28;
    const size_t used = span.depth * 2 + span.name.size();
    out.append(used < pad_to ? pad_to - used : 1, ' ');
    std::snprintf(buf, sizeof buf, "%8" PRIu64 " us", span.wall_us);
    out += buf;
    if (span.rows > 0) {
      std::snprintf(buf, sizeof buf, "  rows=%" PRIu64, span.rows);
      out += buf;
    }
    for (size_t i = 0; i < span.deltas.size(); ++i) {
      if (span.deltas[i] == 0) continue;
      std::snprintf(buf, sizeof buf, "  %s=%" PRIu64,
                    labels_[i].c_str(), span.deltas[i]);
      out += buf;
    }
    out += "\n";
  }
  return out;
}

void QueryTrace::Clear() {
  spans_.clear();
  open_state_.clear();
  open_stack_.clear();
}

}  // namespace lexequal::obs
