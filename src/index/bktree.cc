#include "index/bktree.h"

namespace lexequal::index {

void BkTree::Insert(phonetic::PhonemeString phonemes, uint64_t payload) {
  ++size_;
  if (root_ == nullptr) {
    root_ = std::make_unique<Node>();
    root_->phonemes = std::move(phonemes);
    root_->payload = payload;
    return;
  }
  Node* node = root_.get();
  while (true) {
    const double d =
        match::EditDistance(phonemes, node->phonemes, *costs_);
    const int bucket = Quantize(d);
    auto it = node->children.find(bucket);
    if (it == node->children.end()) {
      auto child = std::make_unique<Node>();
      child->phonemes = std::move(phonemes);
      child->payload = payload;
      node->children[bucket] = std::move(child);
      return;
    }
    node = it->second.get();
  }
}

std::vector<uint64_t> BkTree::Search(const phonetic::PhonemeString& query,
                                     double radius) const {
  last_search_distances_ = 0;
  std::vector<uint64_t> out;
  if (root_ == nullptr) return out;

  const int r_q = Quantize(radius);
  std::vector<const Node*> stack = {root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    const double d = match::EditDistance(query, node->phonemes, *costs_);
    ++last_search_distances_;
    if (d <= radius) out.push_back(node->payload);
    const int d_q = Quantize(d);
    // Triangle inequality: a child at pivot-distance b can only hold
    // matches if |b - d| <= radius; the +1 absorbs quantization.
    const int lo = d_q - r_q - 1;
    const int hi = d_q + r_q + 1;
    for (auto it = node->children.lower_bound(lo);
         it != node->children.end() && it->first <= hi; ++it) {
      stack.push_back(it->second.get());
    }
  }
  return out;
}

}  // namespace lexequal::index
