#include "index/inverted_index.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <unordered_map>

#include "storage/page_guard.h"

namespace lexequal::index {

namespace invidx {

void AppendVarint(uint64_t v, std::string* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

size_t DecodeVarint(const uint8_t* p, const uint8_t* end, uint64_t* out) {
  uint64_t v = 0;
  int shift = 0;
  const uint8_t* start = p;
  while (p < end && shift < 64) {
    const uint8_t byte = *p++;
    v |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *out = v;
      return static_cast<size_t>(p - start);
    }
    shift += 7;
  }
  return 0;  // truncated or overlong
}

void AppendPosting(const Posting& p, uint64_t prev_docid,
                   std::string* out) {
  AppendVarint(p.docid - prev_docid, out);
  AppendVarint(p.len, out);
  AppendVarint(p.positions.size(), out);
  uint32_t prev_pos = 0;
  bool first = true;
  for (uint32_t pos : p.positions) {
    AppendVarint(first ? pos : pos - prev_pos, out);
    prev_pos = pos;
    first = false;
  }
}

namespace {

// Sanity ceilings for decoded fields: anything past these is a
// corrupt page, not a real phoneme string (the padded positions of an
// n-phoneme string never exceed n + q - 1).
constexpr uint64_t kMaxDecodedLen = 1u << 20;
constexpr uint64_t kMaxDecodedPositions = 1u << 12;

}  // namespace

Result<std::vector<Posting>> DecodePostings(std::string_view payload,
                                            uint32_t n_postings) {
  std::vector<Posting> out;
  out.reserve(n_postings);
  const uint8_t* p = reinterpret_cast<const uint8_t*>(payload.data());
  const uint8_t* end = p + payload.size();
  uint64_t docid = 0;
  for (uint32_t i = 0; i < n_postings; ++i) {
    uint64_t delta, len, npos;
    size_t n = DecodeVarint(p, end, &delta);
    if (n == 0) return Status::Corruption("posting docid truncated");
    p += n;
    if (i > 0 && delta == 0) {
      return Status::Corruption("non-increasing posting docid");
    }
    if (delta > std::numeric_limits<uint64_t>::max() - docid) {
      return Status::Corruption("posting docid overflow");
    }
    docid = (i == 0) ? delta : docid + delta;
    n = DecodeVarint(p, end, &len);
    if (n == 0) return Status::Corruption("posting length truncated");
    p += n;
    if (len == 0 || len > kMaxDecodedLen) {
      return Status::Corruption("implausible posting length");
    }
    n = DecodeVarint(p, end, &npos);
    if (n == 0) return Status::Corruption("position count truncated");
    p += n;
    if (npos == 0 || npos > kMaxDecodedPositions) {
      return Status::Corruption("implausible position count");
    }
    Posting posting;
    posting.docid = docid;
    posting.len = static_cast<uint32_t>(len);
    posting.positions.reserve(npos);
    uint64_t pos = 0;
    for (uint64_t j = 0; j < npos; ++j) {
      uint64_t d;
      n = DecodeVarint(p, end, &d);
      if (n == 0) return Status::Corruption("position delta truncated");
      p += n;
      if (j > 0 && d == 0) {
        return Status::Corruption("non-increasing gram position");
      }
      pos = (j == 0) ? d : pos + d;
      if (pos > kMaxDecodedLen) {
        return Status::Corruption("implausible gram position");
      }
      posting.positions.push_back(static_cast<uint32_t>(pos));
    }
    out.push_back(std::move(posting));
  }
  if (p != end) {
    return Status::Corruption("trailing bytes after posting block");
  }
  return out;
}

double ScoreUpperBound(size_t probe_len, uint32_t len,
                       uint64_t max_gram_matches, int q,
                       const ScoreBounds& bounds) {
  const double lp = static_cast<double>(probe_len);
  const double lc = static_cast<double>(len);
  const double longer = std::max(std::max(lp, lc), 1.0);
  const double gap = std::abs(lp - lc);
  // Count-filter arithmetic, inverted: strings within ed unit edits
  // share >= longer + q - 1 - ed*q padded grams, so a candidate
  // matching at most m grams has ed >= (longer + q - 1 - m) / q.
  const double total = longer + static_cast<double>(q) - 1.0;
  const double missing =
      std::max(0.0, total - static_cast<double>(max_gram_matches));
  const double units_lb = missing / static_cast<double>(q);
  // Every unit of length gap costs at least one insert/delete; every
  // unit edit costs at least the model's cheapest operation.
  const double ed_lb = std::max(gap * bounds.min_indel,
                                units_lb * bounds.cheapest_edit);
  return 1.0 - ed_lb / longer;
}

}  // namespace invidx

namespace {

using invidx::Posting;
using storage::kInvalidPageId;
using storage::kPageSize;
using storage::PageGuard;
using storage::PageId;

// Anchor-page layout (the per-list skip index).
constexpr size_t kAnchorNext = 0;        // u32
constexpr size_t kAnchorNBlocks = 4;     // u16
constexpr size_t kAnchorGram = 8;        // u64
constexpr size_t kAnchorDocCount = 16;   // u64 (first anchor only)
constexpr size_t kAnchorLast = 24;       // u32 (first anchor only)
constexpr size_t kAnchorHeaderSize = 32;
constexpr size_t kAnchorEntrySize = 20;  // u64 first, u64 last, u32 page
constexpr size_t kMaxAnchorEntries =
    (kPageSize - kAnchorHeaderSize) / kAnchorEntrySize;

// Block-page layout.
constexpr size_t kBlockNPostings = 0;  // u16
constexpr size_t kBlockUsed = 2;       // u16
constexpr size_t kBlockHeaderSize = 8;
constexpr size_t kBlockPayload = kPageSize - kBlockHeaderSize;

template <typename T>
T ReadAt(const char* data, size_t off) {
  T v;
  std::memcpy(&v, data + off, sizeof(T));
  return v;
}

template <typename T>
void WriteAt(char* data, size_t off, T v) {
  std::memcpy(data + off, &v, sizeof(T));
}

size_t EntryOffset(uint16_t i) {
  return kAnchorHeaderSize + static_cast<size_t>(i) * kAnchorEntrySize;
}

void WriteEntry(char* data, uint16_t i, uint64_t first, uint64_t last,
                PageId page) {
  const size_t off = EntryOffset(i);
  WriteAt<uint64_t>(data, off, first);
  WriteAt<uint64_t>(data, off + 8, last);
  WriteAt<uint32_t>(data, off + 16, page);
}

// Ranking comparator shared with the brute-force differential test:
// higher score first, ascending docid on ties.
bool BetterHit(double score_a, uint64_t docid_a, double score_b,
               uint64_t docid_b) {
  if (score_a != score_b) return score_a > score_b;
  return docid_a < docid_b;
}

}  // namespace

Result<InvertedIndex> InvertedIndex::Create(storage::BufferPool* pool,
                                            int q) {
  if (q < 1 || q > match::kMaxQ) {
    return Status::InvalidArgument("invidx q out of range");
  }
  Result<BTree> directory = BTree::Create(pool);
  if (!directory.ok()) return directory.status();
  return InvertedIndex(pool, q, directory->root_page_id());
}

Result<std::optional<PageId>> InvertedIndex::FindAnchor(
    uint64_t gram) const {
  std::vector<storage::RID> rids;
  LEXEQUAL_ASSIGN_OR_RETURN(rids, directory_.ScanEqual(gram));
  if (rids.empty()) return std::optional<PageId>();
  return std::optional<PageId>(rids.front().page_id);
}

Status InvertedIndex::CreateList(uint64_t gram, const Posting& posting) {
  PageGuard block;
  LEXEQUAL_ASSIGN_OR_RETURN(block, PageGuard::New(pool_));
  std::string encoded;
  invidx::AppendPosting(posting, 0, &encoded);
  WriteAt<uint16_t>(block->data(), kBlockNPostings, 1);
  WriteAt<uint16_t>(block->data(), kBlockUsed,
                    static_cast<uint16_t>(encoded.size()));
  std::memcpy(block->data() + kBlockHeaderSize, encoded.data(),
              encoded.size());
  block.MarkDirty();
  const PageId block_page = block.id();
  LEXEQUAL_RETURN_IF_ERROR(block.Release());

  PageGuard anchor;
  LEXEQUAL_ASSIGN_OR_RETURN(anchor, PageGuard::New(pool_));
  WriteAt<uint32_t>(anchor->data(), kAnchorNext, kInvalidPageId);
  WriteAt<uint16_t>(anchor->data(), kAnchorNBlocks, 1);
  WriteAt<uint64_t>(anchor->data(), kAnchorGram, gram);
  WriteAt<uint64_t>(anchor->data(), kAnchorDocCount, 1);
  WriteAt<uint32_t>(anchor->data(), kAnchorLast, anchor.id());
  WriteEntry(anchor->data(), 0, posting.docid, posting.docid, block_page);
  anchor.MarkDirty();
  const PageId anchor_page = anchor.id();
  LEXEQUAL_RETURN_IF_ERROR(anchor.Release());
  return directory_.Insert(gram, storage::RID{anchor_page, 0});
}

Status InvertedIndex::AppendToList(PageId first_anchor,
                                   const Posting& posting) {
  PageGuard first;
  LEXEQUAL_ASSIGN_OR_RETURN(first, PageGuard::Fetch(pool_, first_anchor));
  const PageId last_anchor = ReadAt<uint32_t>(first->data(), kAnchorLast);
  WriteAt<uint64_t>(first->data(), kAnchorDocCount,
                    ReadAt<uint64_t>(first->data(), kAnchorDocCount) + 1);
  first.MarkDirty();

  // Work on the tail anchor (== the first for short lists; the first
  // guard stays pinned so the metadata write above survives either
  // way).
  PageGuard tail_guard;
  char* tail = first->data();
  if (last_anchor != first_anchor) {
    LEXEQUAL_ASSIGN_OR_RETURN(tail_guard,
                              PageGuard::Fetch(pool_, last_anchor));
    tail = tail_guard->data();
  }
  const uint16_t n_blocks = ReadAt<uint16_t>(tail, kAnchorNBlocks);
  if (n_blocks == 0) return Status::Corruption("empty tail anchor");
  const size_t off = EntryOffset(n_blocks - 1);
  const uint64_t last_docid = ReadAt<uint64_t>(tail, off + 8);
  if (posting.docid <= last_docid) {
    return Status::InvalidArgument(
        "invidx postings must be appended in docid order");
  }

  const PageId block_page = ReadAt<uint32_t>(tail, off + 16);
  std::string encoded;
  invidx::AppendPosting(posting, last_docid, &encoded);

  PageGuard block;
  LEXEQUAL_ASSIGN_OR_RETURN(block, PageGuard::Fetch(pool_, block_page));
  const uint16_t used = ReadAt<uint16_t>(block->data(), kBlockUsed);
  if (kBlockHeaderSize + used + encoded.size() <= kPageSize) {
    // In-place append into the open block.
    std::memcpy(block->data() + kBlockHeaderSize + used, encoded.data(),
                encoded.size());
    WriteAt<uint16_t>(block->data(), kBlockUsed,
                      static_cast<uint16_t>(used + encoded.size()));
    WriteAt<uint16_t>(
        block->data(), kBlockNPostings,
        static_cast<uint16_t>(
            ReadAt<uint16_t>(block->data(), kBlockNPostings) + 1));
    block.MarkDirty();
    LEXEQUAL_RETURN_IF_ERROR(block.Release());
    WriteAt<uint64_t>(tail, off + 8, posting.docid);
    if (tail_guard.holds_page()) {
      tail_guard.MarkDirty();
      LEXEQUAL_RETURN_IF_ERROR(tail_guard.Release());
    }
    return first.Release();
  }
  LEXEQUAL_RETURN_IF_ERROR(block.Release());

  // Block full: start a fresh one (the new block's first posting
  // stores its absolute docid).
  PageGuard fresh;
  LEXEQUAL_ASSIGN_OR_RETURN(fresh, PageGuard::New(pool_));
  encoded.clear();
  invidx::AppendPosting(posting, 0, &encoded);
  WriteAt<uint16_t>(fresh->data(), kBlockNPostings, 1);
  WriteAt<uint16_t>(fresh->data(), kBlockUsed,
                    static_cast<uint16_t>(encoded.size()));
  std::memcpy(fresh->data() + kBlockHeaderSize, encoded.data(),
              encoded.size());
  fresh.MarkDirty();
  const PageId fresh_page = fresh.id();
  LEXEQUAL_RETURN_IF_ERROR(fresh.Release());

  if (n_blocks < kMaxAnchorEntries) {
    WriteEntry(tail, n_blocks, posting.docid, posting.docid, fresh_page);
    WriteAt<uint16_t>(tail, kAnchorNBlocks,
                      static_cast<uint16_t>(n_blocks + 1));
    if (tail_guard.holds_page()) {
      tail_guard.MarkDirty();
      LEXEQUAL_RETURN_IF_ERROR(tail_guard.Release());
    }
    return first.Release();
  }

  // Tail anchor full too: chain a new one.
  PageGuard next;
  LEXEQUAL_ASSIGN_OR_RETURN(next, PageGuard::New(pool_));
  WriteAt<uint32_t>(next->data(), kAnchorNext, kInvalidPageId);
  WriteAt<uint16_t>(next->data(), kAnchorNBlocks, 1);
  WriteAt<uint64_t>(next->data(), kAnchorGram,
                    ReadAt<uint64_t>(tail, kAnchorGram));
  WriteEntry(next->data(), 0, posting.docid, posting.docid, fresh_page);
  next.MarkDirty();
  const PageId next_page = next.id();
  LEXEQUAL_RETURN_IF_ERROR(next.Release());

  WriteAt<uint32_t>(tail, kAnchorNext, next_page);
  if (tail_guard.holds_page()) {
    tail_guard.MarkDirty();
    LEXEQUAL_RETURN_IF_ERROR(tail_guard.Release());
  }
  WriteAt<uint32_t>(first->data(), kAnchorLast, next_page);
  return first.Release();
}

Status InvertedIndex::Add(uint64_t docid,
                          const std::vector<match::PositionalQGram>& grams,
                          uint32_t len) {
  // Group the doc's grams by code; positions stay ascending because
  // the sort is (gram, pos).
  std::vector<match::PositionalQGram> sorted = grams;
  std::sort(sorted.begin(), sorted.end(),
            [](const match::PositionalQGram& a,
               const match::PositionalQGram& b) {
              if (a.gram != b.gram) return a.gram < b.gram;
              return a.pos < b.pos;
            });
  size_t i = 0;
  while (i < sorted.size()) {
    const uint64_t gram = sorted[i].gram;
    Posting posting;
    posting.docid = docid;
    posting.len = len;
    while (i < sorted.size() && sorted[i].gram == gram) {
      posting.positions.push_back(sorted[i].pos);
      ++i;
    }
    std::optional<PageId> anchor;
    LEXEQUAL_ASSIGN_OR_RETURN(anchor, FindAnchor(gram));
    if (anchor.has_value()) {
      LEXEQUAL_RETURN_IF_ERROR(AppendToList(*anchor, posting));
    } else {
      LEXEQUAL_RETURN_IF_ERROR(CreateList(gram, posting));
    }
  }
  return Status::OK();
}

Result<InvertedIndex::ListHandle> InvertedIndex::OpenList(
    uint64_t gram, PageId anchor) const {
  ListHandle handle;
  handle.gram = gram;
  handle.first_anchor = anchor;
  PageId page = anchor;
  bool first = true;
  while (page != kInvalidPageId) {
    PageGuard guard;
    LEXEQUAL_ASSIGN_OR_RETURN(guard, PageGuard::Fetch(pool_, page));
    if (ReadAt<uint64_t>(guard->data(), kAnchorGram) != gram) {
      return Status::Corruption("anchor gram mismatch");
    }
    if (first) {
      handle.doc_count = ReadAt<uint64_t>(guard->data(), kAnchorDocCount);
      first = false;
    }
    const uint16_t n = ReadAt<uint16_t>(guard->data(), kAnchorNBlocks);
    if (n > kMaxAnchorEntries) {
      return Status::Corruption("anchor block count out of range");
    }
    for (uint16_t e = 0; e < n; ++e) {
      const size_t off = EntryOffset(e);
      BlockRef ref;
      ref.first_docid = ReadAt<uint64_t>(guard->data(), off);
      ref.last_docid = ReadAt<uint64_t>(guard->data(), off + 8);
      ref.page = ReadAt<uint32_t>(guard->data(), off + 16);
      ref.anchor = page;
      ref.anchor_index = e;
      handle.blocks.push_back(ref);
    }
    page = ReadAt<uint32_t>(guard->data(), kAnchorNext);
    LEXEQUAL_RETURN_IF_ERROR(guard.Release());
  }
  return handle;
}

Result<std::vector<Posting>> InvertedIndex::DecodeBlock(
    const BlockRef& block) const {
  PageGuard guard;
  LEXEQUAL_ASSIGN_OR_RETURN(guard, PageGuard::Fetch(pool_, block.page));
  const uint16_t n = ReadAt<uint16_t>(guard->data(), kBlockNPostings);
  const uint16_t used = ReadAt<uint16_t>(guard->data(), kBlockUsed);
  if (used > kBlockPayload) {
    return Status::Corruption("posting block overflows its page");
  }
  Result<std::vector<Posting>> postings = invidx::DecodePostings(
      std::string_view(guard->data() + kBlockHeaderSize, used), n);
  if (!postings.ok()) return postings.status();
  LEXEQUAL_RETURN_IF_ERROR(guard.Release());
  if (!postings.value().empty() &&
      (postings.value().front().docid != block.first_docid ||
       postings.value().back().docid != block.last_docid)) {
    return Status::Corruption("posting block out of sync with its anchor");
  }
  return postings;
}

Result<std::vector<uint64_t>> InvertedIndex::ThresholdCandidates(
    const match::QGramProbe& probe, double threshold,
    invidx::Stats* stats) const {
  if (probe.q != q_) {
    return Status::InvalidArgument("probe q does not match index q");
  }
  const size_t qlen = probe.length;

  // Probe grams grouped by code (the probe's positions for each).
  std::vector<match::PositionalQGram> sorted = probe.grams;
  match::SortQGrams(&sorted);

  struct CandState {
    int matches = 0;
    uint32_t len = 0;
  };
  std::unordered_map<uint64_t, CandState> cands;

  size_t i = 0;
  while (i < sorted.size()) {
    const uint64_t gram = sorted[i].gram;
    std::vector<uint32_t> probe_pos;
    while (i < sorted.size() && sorted[i].gram == gram) {
      probe_pos.push_back(sorted[i].pos);
      ++i;
    }
    std::optional<PageId> anchor;
    LEXEQUAL_ASSIGN_OR_RETURN(anchor, FindAnchor(gram));
    if (!anchor.has_value()) continue;
    ++stats->lists_opened;
    ++stats->lists_merged;
    ListHandle handle;
    LEXEQUAL_ASSIGN_OR_RETURN(handle, OpenList(gram, *anchor));
    for (const BlockRef& block : handle.blocks) {
      std::vector<Posting> postings;
      LEXEQUAL_ASSIGN_OR_RETURN(postings, DecodeBlock(block));
      ++stats->blocks_decoded;
      stats->postings_examined += postings.size();
      for (const Posting& posting : postings) {
        // Per-candidate unit budget (Fig. 14: e * min length) and the
        // length filter, identical to the B-Tree candidate path.
        const double k = threshold * static_cast<double>(std::min<size_t>(
                                         qlen, posting.len));
        if (!match::PassesLengthFilter(qlen, posting.len, k)) continue;
        // Position filter: count close (probe, candidate) pairs.
        int close = 0;
        for (uint32_t pp : probe_pos) {
          for (uint32_t cp : posting.positions) {
            const double diff = pp > cp ? static_cast<double>(pp - cp)
                                        : static_cast<double>(cp - pp);
            if (diff <= k) ++close;
          }
        }
        if (close == 0) continue;
        CandState& state = cands[posting.docid];
        state.matches += close;
        state.len = posting.len;
      }
    }
  }

  std::vector<uint64_t> out;
  out.reserve(cands.size());
  for (const auto& [docid, state] : cands) {
    const double k = threshold * static_cast<double>(std::min<uint64_t>(
                                     qlen, state.len));
    const double required =
        match::CountFilterMinMatches(qlen, state.len, k, q_);
    if (required > 0 && state.matches < required) continue;
    out.push_back(docid);
  }
  std::sort(out.begin(), out.end());
  stats->candidates += out.size();
  return out;
}

Result<invidx::TopKOutcome> InvertedIndex::TopK(
    const match::QGramProbe& probe, size_t k,
    const invidx::ScoreBounds& bounds, const InvidxVerifyFn& verify,
    invidx::Stats* stats, obs::QueryTrace* trace) const {
  invidx::TopKOutcome outcome;
  if (probe.q != q_) {
    return Status::InvalidArgument("probe q does not match index q");
  }
  if (k == 0) return outcome;
  if (probe.length == 0) {
    outcome.exact = false;
    return outcome;
  }

  // Open the probe's gram lists (skip indexes only), rarest first.
  struct List {
    uint32_t mult = 0;  // gram occurrences in the probe
    ListHandle handle;
  };
  std::vector<List> lists;
  {
    obs::ScopedSpan span(trace, "invidx_open_lists");
    std::vector<match::PositionalQGram> sorted = probe.grams;
    match::SortQGrams(&sorted);
    size_t i = 0;
    while (i < sorted.size()) {
      const uint64_t gram = sorted[i].gram;
      uint32_t mult = 0;
      while (i < sorted.size() && sorted[i].gram == gram) {
        ++mult;
        ++i;
      }
      std::optional<PageId> anchor;
      LEXEQUAL_ASSIGN_OR_RETURN(anchor, FindAnchor(gram));
      if (!anchor.has_value()) continue;
      ++stats->lists_opened;
      List list;
      list.mult = mult;
      LEXEQUAL_ASSIGN_OR_RETURN(list.handle, OpenList(gram, *anchor));
      lists.push_back(std::move(list));
    }
    std::sort(lists.begin(), lists.end(),
              [](const List& a, const List& b) {
                if (a.handle.doc_count != b.handle.doc_count) {
                  return a.handle.doc_count < b.handle.doc_count;
                }
                return a.handle.gram < b.handle.gram;
              });
    span.AddRows(lists.size());
  }
  if (lists.empty()) {
    // Nothing indexed shares a gram with the probe; the index cannot
    // rank anything, so the caller must brute-force.
    outcome.exact = false;
    return outcome;
  }
  const size_t n_lists = lists.size();

  // The scan is incremental: lists are consumed rarest-first, one per
  // round, and every byte of work persists across rounds — merged
  // candidates, cached verification scores, pruning decisions. (The
  // first cut of this scan restarted with a doubled merge front when
  // the bound could not certify, re-decoding everything it had
  // already paid for; on merge-heavy probes that cost 2-3x the full
  // merge. The incremental front makes the total decode cost monotone
  // and bounded by one full merge.)
  //
  // Per-candidate bookkeeping keeps one invariant: m_exact +
  // (unmerged_mult - settled_mult) is an upper bound on the number of
  // probe gram occurrences the candidate can match. Merging a list
  // moves its mult out of unmerged_mult and its true contribution
  // into m_exact, so the bound is monotone nonincreasing; with the
  // running k-th score monotone nondecreasing, a candidate pruned by
  // the bound can never come back — pruning is sticky and exact.
  struct Cand {
    uint64_t docid = 0;
    uint32_t len = 0;
    uint64_t m_exact = 0;        // gram matches confirmed so far
    uint64_t settled_mask = 0;   // unmerged lists resolved via probe
    uint64_t settled_mult = 0;   // summed mult of settled_mask lists
    bool alive = true;
    bool verified = false;
    double score = 0.0;
  };

  // Top-k kept as a worst-on-top heap under the (score desc, docid
  // asc) ranking, so the running threshold is heap.front().
  std::vector<invidx::TopKHit> heap;
  auto worse_on_top = [](const invidx::TopKHit& a,
                         const invidx::TopKHit& b) {
    return BetterHit(a.score, a.docid, b.score, b.docid);
  };
  auto offer = [&](uint64_t docid, double score) {
    if (heap.size() < k) {
      heap.push_back({docid, score});
      std::push_heap(heap.begin(), heap.end(), worse_on_top);
      return;
    }
    if (BetterHit(score, docid, heap.front().score, heap.front().docid)) {
      std::pop_heap(heap.begin(), heap.end(), worse_on_top);
      heap.back() = {docid, score};
      std::push_heap(heap.begin(), heap.end(), worse_on_top);
    }
  };
  auto have_threshold = [&] { return heap.size() >= k; };
  // Strictly-below-threshold test; candidates tied with the current
  // k-th score must still be verified (a smaller docid wins the tie).
  auto below_threshold = [&](double ub) {
    return have_threshold() && ub < heap.front().score;
  };

  std::vector<Cand> cands;
  std::unordered_map<uint64_t, size_t> by_docid;
  size_t merged = 0;  // lists[0..merged) are fully decoded
  uint64_t unmerged_mult = 0;
  for (const List& list : lists) unmerged_mult += list.mult;
  // Per-list decode tallies for the skip accounting at the end.
  std::vector<uint64_t> probed_postings(n_lists, 0);
  std::vector<uint64_t> probed_blocks(n_lists, 0);
  // The probe phase tracks settled lists in a per-candidate bitmask;
  // probes of more than 64 lists are simply not attempted (the merge
  // front alone stays exact).
  const bool maskable = n_lists <= 64;

  auto m_potential = [&](const Cand& c) {
    return c.m_exact + (unmerged_mult - c.settled_mult);
  };
  auto cand_ub = [&](const Cand& c) {
    return invidx::ScoreUpperBound(probe.length, c.len, m_potential(c),
                                   q_, bounds);
  };
  // Best score any doc absent from every merged list could reach: it
  // matches at most the unmerged gram occurrences, at whatever indexed
  // length flatters it most.
  auto unseen_bound = [&](uint64_t unseen_mult) {
    double ub = -std::numeric_limits<double>::infinity();
    const uint32_t lo = std::max<uint32_t>(bounds.min_len, 1);
    for (uint32_t len = lo; len <= std::max(bounds.max_len, lo); ++len) {
      ub = std::max(ub, invidx::ScoreUpperBound(probe.length, len,
                                                unseen_mult, q_, bounds));
    }
    return ub;
  };

  auto verify_cand = [&](Cand& c) -> Status {
    if (c.verified) return Status::OK();
    c.verified = true;
    ++stats->verified;
    std::optional<double> score;
    LEXEQUAL_ASSIGN_OR_RETURN(score, verify(c.docid, c.len));
    if (!score.has_value()) {
      c.alive = false;  // excluded row (empty phonemes / language)
      return Status::OK();
    }
    c.score = *score;
    offer(c.docid, c.score);
    return Status::OK();
  };

  while (true) {
    // ---- Merge round: fully decode the next-rarest list. ----
    {
      obs::ScopedSpan span(trace, "invidx_merge");
      const List& list = lists[merged];
      const uint64_t bit = maskable ? (uint64_t{1} << merged) : 0;
      ++stats->lists_merged;
      uint64_t decoded = 0;
      for (const BlockRef& block : list.handle.blocks) {
        std::vector<Posting> postings;
        LEXEQUAL_ASSIGN_OR_RETURN(postings, DecodeBlock(block));
        ++stats->blocks_decoded;
        stats->postings_examined += postings.size();
        decoded += postings.size();
        for (const Posting& p : postings) {
          auto [it, fresh] = by_docid.try_emplace(p.docid, cands.size());
          if (fresh) {
            Cand c;
            c.docid = p.docid;
            c.len = p.len;
            cands.push_back(c);
          }
          Cand& c = cands[it->second];
          if (!c.alive || c.verified) continue;
          // A probe round may already have settled this list for the
          // candidate; its contribution is in m_exact, don't re-add.
          if (bit != 0 && (c.settled_mask & bit) != 0) continue;
          c.m_exact += std::min<uint64_t>(list.mult, p.positions.size());
        }
      }
      span.AddRows(decoded);
      // The list's mult leaves the unmerged pool; candidates that had
      // it settled via a probe drop the matching credit so the
      // potential stays an exact upper bound.
      if (bit != 0) {
        for (Cand& c : cands) {
          if ((c.settled_mask & bit) != 0) {
            c.settled_mask &= ~bit;
            c.settled_mult -= list.mult;
          }
        }
      }
      unmerged_mult -= list.mult;
      ++merged;
      if (merged > 1) ++stats->restarts;  // escalation rounds
    }

    // ---- Seed the threshold: verify the candidates with the most
    // confirmed gram matches (exact matches sit here), so the bound
    // starts pruning as early as possible. Scores cache across
    // rounds, so re-seeding is nearly free. ----
    {
      obs::ScopedSpan span(trace, "topk_verify");
      std::vector<size_t> order;
      for (size_t ci = 0; ci < cands.size(); ++ci) {
        if (cands[ci].alive && !cands[ci].verified) order.push_back(ci);
      }
      std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        if (cands[a].m_exact != cands[b].m_exact) {
          return cands[a].m_exact > cands[b].m_exact;
        }
        return cands[a].docid < cands[b].docid;
      });
      const size_t seed = std::min(order.size(), k + 8);
      for (size_t oi = 0; oi < seed; ++oi) {
        LEXEQUAL_RETURN_IF_ERROR(verify_cand(cands[order[oi]]));
      }
      span.AddRows(seed);
    }

    // ---- Certification check: with the k-th score strictly above
    // what any doc outside the merged lists could reach, finishing
    // the candidates we already hold finishes the query. ----
    const bool last = merged == n_lists;
    const bool certifiable =
        have_threshold() && heap.front().score > unseen_bound(unmerged_mult);
    if (!certifiable && !last) continue;  // escalate: merge next list

    // ---- Probe phase: resolve unmerged lists for the surviving
    // candidates through the skip blocks — but only where the skip
    // index shows most of the list's blocks hold no candidate, so a
    // probe is strictly cheaper than the merge it replaces. ----
    if (maskable && merged < n_lists) {
      obs::ScopedSpan span(trace, "invidx_probe");
      uint64_t decoded = 0;
      for (Cand& c : cands) {
        if (!c.alive || c.verified) continue;
        if (below_threshold(cand_ub(c))) {
          c.alive = false;
          ++stats->early_terminated;
        }
      }
      for (size_t li = merged; li < n_lists; ++li) {
        const uint64_t bit = uint64_t{1} << li;
        std::vector<size_t> targets;  // alive, unverified, docid asc
        for (size_t ci = 0; ci < cands.size(); ++ci) {
          if (cands[ci].alive && !cands[ci].verified &&
              (cands[ci].settled_mask & bit) == 0) {
            targets.push_back(ci);
          }
        }
        if (targets.empty()) break;
        std::sort(targets.begin(), targets.end(), [&](size_t a, size_t b) {
          return cands[a].docid < cands[b].docid;
        });
        const List& list = lists[li];
        // Which blocks can hold a target at all? The anchor's
        // [first_docid, last_docid] entries answer without touching a
        // block page.
        std::vector<size_t> hit_blocks;
        {
          size_t ti = 0;
          for (size_t bi = 0; bi < list.handle.blocks.size(); ++bi) {
            const BlockRef& block = list.handle.blocks[bi];
            while (ti < targets.size() &&
                   cands[targets[ti]].docid < block.first_docid) {
              ++ti;
            }
            if (ti < targets.size() &&
                cands[targets[ti]].docid <= block.last_docid) {
              hit_blocks.push_back(bi);
            }
          }
        }
        // Selectivity gate: if the targets land in most of the blocks
        // anyway, probing approximates the merge this phase exists to
        // avoid — leave the list to the bound instead.
        if (2 * hit_blocks.size() > list.handle.blocks.size()) continue;
        ++stats->lists_probed;
        size_t ti = 0;
        for (size_t bi : hit_blocks) {
          const BlockRef& block = list.handle.blocks[bi];
          std::vector<Posting> postings;
          LEXEQUAL_ASSIGN_OR_RETURN(postings, DecodeBlock(block));
          ++stats->blocks_decoded;
          stats->postings_examined += postings.size();
          decoded += postings.size();
          probed_postings[li] += postings.size();
          ++probed_blocks[li];
          while (ti < targets.size() &&
                 cands[targets[ti]].docid < block.first_docid) {
            ++ti;
          }
          size_t pi = 0;
          size_t tj = ti;
          while (pi < postings.size() && tj < targets.size()) {
            const uint64_t pd = postings[pi].docid;
            const uint64_t td = cands[targets[tj]].docid;
            if (pd < td) {
              ++pi;
            } else if (pd > td) {
              ++tj;
            } else {
              Cand& c = cands[targets[tj]];
              c.m_exact += std::min<uint64_t>(
                  list.mult, postings[pi].positions.size());
              ++pi;
              ++tj;
            }
          }
        }
        // Presence (or proven absence) is now exact for every target:
        // targets outside every hit block's range cannot be in the
        // list at all.
        for (size_t ci : targets) {
          cands[ci].settled_mask |= bit;
          cands[ci].settled_mult += list.mult;
        }
        for (size_t ci : targets) {
          Cand& c = cands[ci];
          if (!c.alive || c.verified) continue;
          if (below_threshold(cand_ub(c))) {
            c.alive = false;
            ++stats->early_terminated;
          }
        }
      }
      span.AddRows(decoded);
    }

    // ---- Burn-down: verify everything still alive, best upper
    // bound first, stopping at the first candidate the bound puts
    // strictly below the k-th score. ----
    {
      obs::ScopedSpan span(trace, "topk_verify");
      std::vector<size_t> order;
      for (size_t ci = 0; ci < cands.size(); ++ci) {
        if (cands[ci].alive && !cands[ci].verified) order.push_back(ci);
      }
      std::vector<double> ubs(cands.size(), 0.0);
      for (size_t ci : order) ubs[ci] = cand_ub(cands[ci]);
      std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        if (ubs[a] != ubs[b]) return ubs[a] > ubs[b];
        return cands[a].docid < cands[b].docid;
      });
      uint64_t swept = 0;
      for (size_t oi = 0; oi < order.size(); ++oi) {
        if (below_threshold(ubs[order[oi]])) {
          stats->early_terminated += order.size() - oi;
          break;
        }
        LEXEQUAL_RETURN_IF_ERROR(verify_cand(cands[order[oi]]));
        ++swept;
      }
      span.AddRows(swept);
    }

    // Verification only raises the k-th score, so a certifiable round
    // stays certifiable; re-check to cover the merged-everything path
    // (where the question is whether zero-overlap strings can place).
    outcome.exact = have_threshold() &&
                    heap.front().score > unseen_bound(unmerged_mult);
    break;
  }

  // Skip accounting for the lists the certification spared.
  for (size_t li = merged; li < n_lists; ++li) {
    stats->postings_skipped +=
        lists[li].handle.doc_count - probed_postings[li];
    stats->blocks_skipped +=
        lists[li].handle.blocks.size() - probed_blocks[li];
  }
  stats->candidates += cands.size();

  std::sort(heap.begin(), heap.end(),
            [](const invidx::TopKHit& a, const invidx::TopKHit& b) {
              return BetterHit(a.score, a.docid, b.score, b.docid);
            });
  outcome.hits = std::move(heap);
  outcome.threshold_score =
      outcome.hits.empty() ? 0.0 : outcome.hits.back().score;
  return outcome;
}

Result<InvertedIndex::Totals> InvertedIndex::ComputeTotals() const {
  Totals totals;
  std::vector<std::pair<uint64_t, storage::RID>> entries;
  LEXEQUAL_ASSIGN_OR_RETURN(
      entries,
      directory_.ScanRange(0, std::numeric_limits<uint64_t>::max()));
  for (const auto& [gram, rid] : entries) {
    ++totals.distinct_grams;
    PageGuard guard;
    LEXEQUAL_ASSIGN_OR_RETURN(guard,
                              PageGuard::Fetch(pool_, rid.page_id));
    totals.total_postings +=
        ReadAt<uint64_t>(guard->data(), kAnchorDocCount);
    LEXEQUAL_RETURN_IF_ERROR(guard.Release());
  }
  return totals;
}

}  // namespace lexequal::index
