// BK-tree: an in-memory metric index over phoneme strings.
//
// The paper's future work proposes "extending the approximate
// indexing techniques [Baeza-Yates/Navarro] for creating a metric
// index for phonemes"; this is that extension. A BK-tree partitions
// elements by their distance to a node's pivot; range queries prune
// subtrees with the triangle inequality, so a search with radius r
// computes far fewer distances than a scan.
//
// The clustered cost model is a pseudometric (symmetric ins/del,
// symmetric substitutions, DP = shortest edit path), which is exactly
// what the structure needs. Distances are quantized to 1/kScale
// buckets with a one-bucket pruning slack, so quantization can only
// add candidates, never lose them.
//
// In-memory by design — the comparison point against the on-disk
// phonetic index is part of the access-path ablation bench, mirroring
// the paper's remark that Zobel & Dart evaluated in-memory indexes
// while its own phonetic index is persistent.

#ifndef LEXEQUAL_INDEX_BKTREE_H_
#define LEXEQUAL_INDEX_BKTREE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "match/cost_model.h"
#include "match/edit_distance.h"
#include "phonetic/phoneme_string.h"

namespace lexequal::index {

/// Metric tree keyed by weighted phoneme-string distance; payloads
/// are opaque 64-bit ids (row ids, offsets, ...).
///
/// Contract: the cost model must be a pseudometric over phoneme
/// strings (symmetric, triangle inequality) — true for ClusteredCost
/// and LevenshteinCost — or Search may wrongly prune. Search is
/// complete: every payload within `radius` of the query is returned
/// (quantization slack only ever widens the candidate set).
///
/// Ownership and lifetime: the tree owns its nodes and copies each
/// inserted PhonemeString; `costs` is borrowed and must outlive the
/// tree. Movable, not copyable (a moved-from tree is empty).
///
/// Thread-safety: none. Insert mutates the tree, and Search updates
/// the distance counter, so even concurrent Searches race. Callers
/// that share a tree across the parallel scan's workers must build it
/// fully first and give each worker its own tree or external lock.
class BkTree {
 public:
  /// `costs` must outlive the tree.
  explicit BkTree(const match::CostModel* costs) : costs_(costs) {}

  BkTree(const BkTree&) = delete;
  BkTree& operator=(const BkTree&) = delete;
  BkTree(BkTree&&) = default;
  BkTree& operator=(BkTree&&) = default;

  /// Adds one element. Duplicate phoneme strings are allowed; each
  /// insert keeps its own payload. O(depth) distance computations.
  void Insert(phonetic::PhonemeString phonemes, uint64_t payload);

  /// All payloads whose distance to `query` is <= `radius`, in
  /// insertion-order within each branch (no global order guaranteed).
  /// Prunes children whose quantized distance bucket lies outside
  /// [d - radius, d + radius] by the triangle inequality.
  std::vector<uint64_t> Search(const phonetic::PhonemeString& query,
                               double radius) const;

  size_t size() const { return size_; }

  /// Distance computations performed by the last Search (the metric
  /// the access-path ablation reports). Overwritten by every Search —
  /// one more reason Search is not reentrant.
  uint64_t last_search_distance_count() const {
    return last_search_distances_;
  }

 private:
  // Distance buckets per unit distance; clustered costs are multiples
  // of 0.25, so 4 makes quantization exact for them.
  static constexpr int kScale = 4;

  struct Node {
    phonetic::PhonemeString phonemes;
    uint64_t payload;
    std::map<int, std::unique_ptr<Node>> children;  // quantized dist
  };

  static int Quantize(double d) {
    return static_cast<int>(d * kScale + 0.5);
  }

  const match::CostModel* costs_;
  std::unique_ptr<Node> root_;
  size_t size_ = 0;
  mutable uint64_t last_search_distances_ = 0;
};

}  // namespace lexequal::index

#endif  // LEXEQUAL_INDEX_BKTREE_H_
