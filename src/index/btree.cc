#include "index/btree.h"

#include <algorithm>
#include <cstring>

#include "storage/page.h"
#include "storage/page_guard.h"

namespace lexequal::index {

namespace {

using storage::kInvalidPageId;
using storage::kPageSize;
using storage::Page;
using storage::PageGuard;
using storage::PageId;
using storage::RID;

// Composite key: (key, rid) with lexicographic order.
struct CKey {
  uint64_t key;
  RID rid;
};

bool Less(const CKey& a, const CKey& b) {
  if (a.key != b.key) return a.key < b.key;
  return a.rid < b.rid;
}

// Node layout. Header:
//   [is_leaf:2][count:2][next:4]          (8 bytes)
// Leaf entries from offset 8, 14 bytes each:
//   [key:8][page:4][slot:2]
// Internal: leftmost child at offset 8 (4 bytes), then 18-byte
// entries from offset 12:
//   [key:8][page:4][slot:2][child:4]
// Internal entry i's child covers composite keys >= its own.
constexpr size_t kIsLeafOff = 0;
constexpr size_t kCountOff = 2;
constexpr size_t kNextOff = 4;
constexpr size_t kLeafEntriesOff = 8;
constexpr size_t kLeafEntrySize = 14;
constexpr size_t kLeftmostChildOff = 8;
constexpr size_t kInternalEntriesOff = 12;
constexpr size_t kInternalEntrySize = 18;

constexpr int kLeafCapacity =
    static_cast<int>((kPageSize - kLeafEntriesOff) / kLeafEntrySize);
constexpr int kInternalCapacity = static_cast<int>(
    (kPageSize - kInternalEntriesOff) / kInternalEntrySize);

uint16_t ReadU16(const Page* p, size_t off) {
  uint16_t v;
  std::memcpy(&v, p->data() + off, sizeof(v));
  return v;
}
void WriteU16(Page* p, size_t off, uint16_t v) {
  std::memcpy(p->data() + off, &v, sizeof(v));
}
uint32_t ReadU32(const Page* p, size_t off) {
  uint32_t v;
  std::memcpy(&v, p->data() + off, sizeof(v));
  return v;
}
void WriteU32(Page* p, size_t off, uint32_t v) {
  std::memcpy(p->data() + off, &v, sizeof(v));
}
uint64_t ReadU64(const Page* p, size_t off) {
  uint64_t v;
  std::memcpy(&v, p->data() + off, sizeof(v));
  return v;
}
void WriteU64(Page* p, size_t off, uint64_t v) {
  std::memcpy(p->data() + off, &v, sizeof(v));
}

bool IsLeaf(const Page* p) { return ReadU16(p, kIsLeafOff) != 0; }
int Count(const Page* p) { return ReadU16(p, kCountOff); }
void SetCount(Page* p, int c) {
  WriteU16(p, kCountOff, static_cast<uint16_t>(c));
}
PageId Next(const Page* p) { return ReadU32(p, kNextOff); }
void SetNext(Page* p, PageId id) { WriteU32(p, kNextOff, id); }

void InitLeaf(Page* p) {
  WriteU16(p, kIsLeafOff, 1);
  SetCount(p, 0);
  SetNext(p, kInvalidPageId);
}
void InitInternal(Page* p) {
  WriteU16(p, kIsLeafOff, 0);
  SetCount(p, 0);
  SetNext(p, kInvalidPageId);
  WriteU32(p, kLeftmostChildOff, kInvalidPageId);
}

CKey LeafEntry(const Page* p, int i) {
  const size_t off = kLeafEntriesOff + i * kLeafEntrySize;
  CKey e;
  e.key = ReadU64(p, off);
  e.rid.page_id = ReadU32(p, off + 8);
  e.rid.slot = ReadU16(p, off + 12);
  return e;
}
void SetLeafEntry(Page* p, int i, const CKey& e) {
  const size_t off = kLeafEntriesOff + i * kLeafEntrySize;
  WriteU64(p, off, e.key);
  WriteU32(p, off + 8, e.rid.page_id);
  WriteU16(p, off + 12, e.rid.slot);
}

CKey InternalKey(const Page* p, int i) {
  const size_t off = kInternalEntriesOff + i * kInternalEntrySize;
  CKey e;
  e.key = ReadU64(p, off);
  e.rid.page_id = ReadU32(p, off + 8);
  e.rid.slot = ReadU16(p, off + 12);
  return e;
}
PageId InternalChild(const Page* p, int i) {
  const size_t off = kInternalEntriesOff + i * kInternalEntrySize;
  return ReadU32(p, off + 14);
}
void SetInternalEntry(Page* p, int i, const CKey& e, PageId child) {
  const size_t off = kInternalEntriesOff + i * kInternalEntrySize;
  WriteU64(p, off, e.key);
  WriteU32(p, off + 8, e.rid.page_id);
  WriteU16(p, off + 12, e.rid.slot);
  WriteU32(p, off + 14, child);
}
PageId LeftmostChild(const Page* p) {
  return ReadU32(p, kLeftmostChildOff);
}
void SetLeftmostChild(Page* p, PageId id) {
  WriteU32(p, kLeftmostChildOff, id);
}

// First leaf index whose entry is >= ckey.
int LeafLowerBound(const Page* p, const CKey& ckey) {
  int lo = 0;
  int hi = Count(p);
  while (lo < hi) {
    int mid = (lo + hi) / 2;
    if (Less(LeafEntry(p, mid), ckey)) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

// Child index (0 = leftmost) to descend into for ckey: the child of
// the last internal entry whose key is <= ckey.
int InternalDescendSlot(const Page* p, const CKey& ckey) {
  int lo = 0;
  int hi = Count(p);  // slot in [0, count]; entry i guards slot i+1
  while (lo < hi) {
    int mid = (lo + hi) / 2;
    if (Less(ckey, InternalKey(p, mid))) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;  // number of entries <= ckey
}

PageId DescendChild(const Page* p, int slot) {
  return slot == 0 ? LeftmostChild(p) : InternalChild(p, slot - 1);
}

}  // namespace

Result<BTree> BTree::Create(storage::BufferPool* pool) {
  PageGuard guard;
  LEXEQUAL_ASSIGN_OR_RETURN(guard, PageGuard::New(pool));
  InitLeaf(guard.get());
  guard.MarkDirty();
  const PageId root = guard.id();
  LEXEQUAL_RETURN_IF_ERROR(guard.Release());
  return BTree(pool, root);
}

Status BTree::InsertRecursive(PageId node_id, uint64_t key,
                              const RID& rid, Split* split) {
  split->happened = false;
  PageGuard node;
  LEXEQUAL_ASSIGN_OR_RETURN(node, PageGuard::Fetch(pool_, node_id));
  Page* page = node.get();
  const CKey ckey{key, rid};

  if (IsLeaf(page)) {
    const int n = Count(page);
    const int pos = LeafLowerBound(page, ckey);
    if (n < kLeafCapacity) {
      // Shift right and insert.
      for (int i = n; i > pos; --i) {
        SetLeafEntry(page, i, LeafEntry(page, i - 1));
      }
      SetLeafEntry(page, pos, ckey);
      SetCount(page, n + 1);
      node.MarkDirty();
      return node.Release();
    }
    // Split: gather, divide, write both halves.
    std::vector<CKey> all;
    all.reserve(n + 1);
    for (int i = 0; i < n; ++i) all.push_back(LeafEntry(page, i));
    all.insert(all.begin() + pos, ckey);
    PageGuard right_guard;
    LEXEQUAL_ASSIGN_OR_RETURN(right_guard, PageGuard::New(pool_));
    Page* right = right_guard.get();
    InitLeaf(right);
    const int left_n = static_cast<int>(all.size() / 2);
    const int right_n = static_cast<int>(all.size()) - left_n;
    for (int i = 0; i < left_n; ++i) SetLeafEntry(page, i, all[i]);
    SetCount(page, left_n);
    for (int i = 0; i < right_n; ++i) {
      SetLeafEntry(right, i, all[left_n + i]);
    }
    SetCount(right, right_n);
    SetNext(right, Next(page));
    SetNext(page, right->page_id());
    split->happened = true;
    split->key = all[left_n].key;
    split->rid = all[left_n].rid;
    split->right = right->page_id();
    node.MarkDirty();
    right_guard.MarkDirty();
    LEXEQUAL_RETURN_IF_ERROR(right_guard.Release());
    return node.Release();
  }

  // Internal node: descend.
  const int slot = InternalDescendSlot(page, ckey);
  const PageId child = DescendChild(page, slot);
  // Unpin before recursing: bounded pin depth, the child path may
  // need many frames on deep trees.
  LEXEQUAL_RETURN_IF_ERROR(node.Release());
  Split child_split;
  LEXEQUAL_RETURN_IF_ERROR(
      InsertRecursive(child, key, rid, &child_split));
  if (!child_split.happened) return Status::OK();

  // Insert the separator into this node.
  LEXEQUAL_ASSIGN_OR_RETURN(node, PageGuard::Fetch(pool_, node_id));
  page = node.get();
  const int n = Count(page);
  const CKey sep{child_split.key, child_split.rid};
  // Position: entries stay sorted by key.
  int pos = 0;
  while (pos < n && Less(InternalKey(page, pos), sep)) ++pos;
  if (n < kInternalCapacity) {
    for (int i = n; i > pos; --i) {
      SetInternalEntry(page, i, InternalKey(page, i - 1),
                       InternalChild(page, i - 1));
    }
    SetInternalEntry(page, pos, sep, child_split.right);
    SetCount(page, n + 1);
    node.MarkDirty();
    return node.Release();
  }
  // Split internal node: middle entry is pushed up.
  struct IEntry {
    CKey key;
    PageId child;
  };
  std::vector<IEntry> all;
  all.reserve(n + 1);
  for (int i = 0; i < n; ++i) {
    all.push_back({InternalKey(page, i), InternalChild(page, i)});
  }
  all.insert(all.begin() + pos, {sep, child_split.right});
  PageGuard right_guard;
  LEXEQUAL_ASSIGN_OR_RETURN(right_guard, PageGuard::New(pool_));
  Page* right = right_guard.get();
  InitInternal(right);
  const int mid = static_cast<int>(all.size() / 2);
  // Left keeps entries [0, mid); all[mid] is promoted; right gets
  // (mid, end) with all[mid].child as its leftmost child.
  for (int i = 0; i < mid; ++i) {
    SetInternalEntry(page, i, all[i].key, all[i].child);
  }
  SetCount(page, mid);
  SetLeftmostChild(right, all[mid].child);
  const int right_n = static_cast<int>(all.size()) - mid - 1;
  for (int i = 0; i < right_n; ++i) {
    SetInternalEntry(right, i, all[mid + 1 + i].key,
                     all[mid + 1 + i].child);
  }
  SetCount(right, right_n);
  split->happened = true;
  split->key = all[mid].key.key;
  split->rid = all[mid].key.rid;
  split->right = right->page_id();
  node.MarkDirty();
  right_guard.MarkDirty();
  LEXEQUAL_RETURN_IF_ERROR(right_guard.Release());
  return node.Release();
}

Status BTree::Insert(uint64_t key, const RID& rid) {
  Split split;
  LEXEQUAL_RETURN_IF_ERROR(InsertRecursive(root_, key, rid, &split));
  if (!split.happened) return Status::OK();
  // Grow a new root.
  PageGuard new_root;
  LEXEQUAL_ASSIGN_OR_RETURN(new_root, PageGuard::New(pool_));
  InitInternal(new_root.get());
  SetLeftmostChild(new_root.get(), root_);
  SetInternalEntry(new_root.get(), 0, CKey{split.key, split.rid},
                   split.right);
  SetCount(new_root.get(), 1);
  root_ = new_root.id();
  new_root.MarkDirty();
  return new_root.Release();
}

Result<PageId> BTree::FindLeaf(uint64_t key, const RID& rid) const {
  const CKey ckey{key, rid};
  PageId node = root_;
  while (true) {
    PageGuard guard;
    LEXEQUAL_ASSIGN_OR_RETURN(guard, PageGuard::Fetch(pool_, node));
    if (IsLeaf(guard.get())) {
      LEXEQUAL_RETURN_IF_ERROR(guard.Release());
      return node;
    }
    const PageId child = DescendChild(
        guard.get(), InternalDescendSlot(guard.get(), ckey));
    LEXEQUAL_RETURN_IF_ERROR(guard.Release());
    node = child;
  }
}

Status BTree::Delete(uint64_t key, const RID& rid) {
  PageId leaf_id;
  LEXEQUAL_ASSIGN_OR_RETURN(leaf_id, FindLeaf(key, rid));
  PageGuard guard;
  LEXEQUAL_ASSIGN_OR_RETURN(guard, PageGuard::Fetch(pool_, leaf_id));
  Page* page = guard.get();
  const CKey ckey{key, rid};
  const int n = Count(page);
  const int pos = LeafLowerBound(page, ckey);
  const CKey found = pos < n ? LeafEntry(page, pos) : CKey{};
  if (pos >= n || Less(ckey, found) || Less(found, ckey)) {
    return Status::NotFound("entry not in index");
  }
  for (int i = pos; i + 1 < n; ++i) {
    SetLeafEntry(page, i, LeafEntry(page, i + 1));
  }
  SetCount(page, n - 1);
  guard.MarkDirty();
  return guard.Release();
}

Result<std::vector<RID>> BTree::ScanEqual(uint64_t key) const {
  std::vector<std::pair<uint64_t, RID>> range;
  LEXEQUAL_ASSIGN_OR_RETURN(range, ScanRange(key, key));
  std::vector<RID> out;
  out.reserve(range.size());
  for (const auto& [k, rid] : range) out.push_back(rid);
  return out;
}

Result<std::vector<std::pair<uint64_t, RID>>> BTree::ScanRange(
    uint64_t lo, uint64_t hi) const {
  std::vector<std::pair<uint64_t, RID>> out;
  PageId leaf_id;
  LEXEQUAL_ASSIGN_OR_RETURN(leaf_id, FindLeaf(lo, RID{0, 0}));
  PageId node = leaf_id;
  while (node != kInvalidPageId) {
    PageGuard guard;
    LEXEQUAL_ASSIGN_OR_RETURN(guard, PageGuard::Fetch(pool_, node));
    Page* page = guard.get();
    const int n = Count(page);
    bool past_hi = false;
    for (int i = 0; i < n; ++i) {
      const CKey e = LeafEntry(page, i);
      if (e.key < lo) continue;
      if (e.key > hi) {
        past_hi = true;
        break;
      }
      out.emplace_back(e.key, e.rid);
    }
    const PageId next = Next(page);
    LEXEQUAL_RETURN_IF_ERROR(guard.Release());
    if (past_hi) break;
    node = next;
  }
  return out;
}

Result<uint64_t> BTree::EntryCount() const {
  // Descend to the leftmost leaf, then walk the chain.
  PageId node = root_;
  while (true) {
    PageGuard guard;
    LEXEQUAL_ASSIGN_OR_RETURN(guard, PageGuard::Fetch(pool_, node));
    if (IsLeaf(guard.get())) {
      LEXEQUAL_RETURN_IF_ERROR(guard.Release());
      break;
    }
    const PageId child = LeftmostChild(guard.get());
    LEXEQUAL_RETURN_IF_ERROR(guard.Release());
    node = child;
  }
  uint64_t count = 0;
  while (node != kInvalidPageId) {
    PageGuard guard;
    LEXEQUAL_ASSIGN_OR_RETURN(guard, PageGuard::Fetch(pool_, node));
    count += Count(guard.get());
    const PageId next = Next(guard.get());
    LEXEQUAL_RETURN_IF_ERROR(guard.Release());
    node = next;
  }
  return count;
}

Result<int> BTree::Height() const {
  int height = 1;
  PageId node = root_;
  while (true) {
    PageGuard guard;
    LEXEQUAL_ASSIGN_OR_RETURN(guard, PageGuard::Fetch(pool_, node));
    if (IsLeaf(guard.get())) {
      LEXEQUAL_RETURN_IF_ERROR(guard.Release());
      return height;
    }
    const PageId child = LeftmostChild(guard.get());
    LEXEQUAL_RETURN_IF_ERROR(guard.Release());
    node = child;
    ++height;
  }
}

}  // namespace lexequal::index
