// Persistent B+Tree over (uint64 key, RID) composite entries.
//
// This is the "standard database B-Tree index" of the paper's
// Section 5.3: the phonetic index stores each record's grouped
// phoneme string identifier (a uint64) as the key and the record's
// RID as the payload. Duplicate keys are first-class: the composite
// (key, rid) order keeps entries strictly sorted.
//
// Deletion is lazy (entry removal without rebalancing), matching the
// paper's load-then-query workloads. Single-threaded.

#ifndef LEXEQUAL_INDEX_BTREE_H_
#define LEXEQUAL_INDEX_BTREE_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "storage/buffer_pool.h"

namespace lexequal::index {

/// A B+Tree rooted at root_page_id(), persisted through the buffer
/// pool. The root id must be stored externally (the catalog does) to
/// re-open the tree.
class BTree {
 public:
  /// Creates an empty tree (one empty leaf as root).
  static Result<BTree> Create(storage::BufferPool* pool);

  /// Opens an existing tree.
  static BTree Open(storage::BufferPool* pool, storage::PageId root) {
    return BTree(pool, root);
  }

  /// Inserts (key, rid). Duplicates of both key and rid are allowed.
  Status Insert(uint64_t key, const storage::RID& rid);

  /// Removes the exact (key, rid) entry; NotFound if absent.
  Status Delete(uint64_t key, const storage::RID& rid);

  /// All RIDs whose key equals `key`, in RID order.
  Result<std::vector<storage::RID>> ScanEqual(uint64_t key) const;

  /// All (key, rid) pairs with lo <= key <= hi, in key order.
  Result<std::vector<std::pair<uint64_t, storage::RID>>> ScanRange(
      uint64_t lo, uint64_t hi) const;

  /// Total number of entries (walks the leaf chain).
  Result<uint64_t> EntryCount() const;

  /// Height of the tree (1 = just a root leaf).
  Result<int> Height() const;

  storage::PageId root_page_id() const { return root_; }

 private:
  BTree(storage::BufferPool* pool, storage::PageId root)
      : pool_(pool), root_(root) {}

  // Result of a child split: separator entry + new right sibling.
  struct Split {
    bool happened = false;
    uint64_t key = 0;
    storage::RID rid;
    storage::PageId right = storage::kInvalidPageId;
  };

  Status InsertRecursive(storage::PageId node, uint64_t key,
                         const storage::RID& rid, Split* split);

  // Descends to the leaf that may contain (key, rid).
  Result<storage::PageId> FindLeaf(uint64_t key,
                                   const storage::RID& rid) const;

  storage::BufferPool* pool_;
  storage::PageId root_;
};

}  // namespace lexequal::index

#endif  // LEXEQUAL_INDEX_BTREE_H_
