// InvertedIndex: a persistent phoneme q-gram inverted index with
// delta-encoded varint posting lists, per-list skip blocks, and
// merge-based candidate generation — the access path ROADMAP's first
// open item asks for, in the spirit of RediSearch's block-compressed
// inverted lists and the "good parts first" skipping of Gerdjikov et
// al. (PAPERS.md).
//
// On-disk layout (all pages through the buffer pool, PageGuard pins):
//
//   directory  — the existing index::BTree, mapping the packed gram
//                code (uint64) to the gram's first anchor page
//                (stored as RID{anchor_page, 0}).
//   anchors    — one chain of anchor pages per gram. An anchor page
//                is the list's skip index: a 32-byte header
//                [next_anchor:4][n_blocks:2][pad:2][gram:8]
//                [doc_count:8][last_anchor:4][pad:4] followed by
//                fixed-width 20-byte block entries
//                [first_docid:8][last_docid:8][block_page:4]. A
//                reader can bound every block's docid range — and
//                skip the block page entirely — without touching it.
//   blocks     — one page per posting block:
//                [n_postings:2][used_bytes:2][pad:4] then varint
//                payload. Postings are delta-encoded on the docid
//                (LEB128 varints): the block's first posting stores
//                its absolute docid, later ones the strictly positive
//                delta. Each posting carries the doc's phoneme length
//                and its gram positions (delta-encoded, for the
//                position filter), so candidate generation never
//                touches a heap page.
//
// Docids are packed RIDs ((page_id << 16) | slot), which are
// monotonically increasing under the engine's append-only heap — so
// posting lists stay sorted by construction and Add() is an O(1)
// append into the last block (in-place page write, no list rewrite).
//
// Two read paths:
//   * ThresholdCandidates — full merge of the probe's gram lists with
//     the paper's length/position/count filters, bit-identical
//     candidate semantics to the q-gram B-Tree path (Fig. 14 budget,
//     k = threshold * min(|probe|, |cand|) unit edits) for pos/len
//     values the packed B-Tree key can represent (<= 255).
//   * TopK — ranked retrieval for ORDER BY lexsim(...) LIMIT k. Lists
//     are consumed incrementally, rarest-first, one list per round;
//     merged candidates, cached verification scores, and pruning
//     decisions all persist across rounds, so total decode cost is
//     monotone and bounded by one full merge. A per-candidate score
//     upper bound (WAND-style, from the count-filter arithmetic: a
//     candidate missing m of the probe's grams has unit edit distance
//     >= m/q, hence weighted distance >= m/q * cheapest_edit) prunes
//     both posting blocks and verifications once the running top-k
//     threshold score is established; the scan stops merging as soon
//     as the k-th score strictly exceeds what any doc outside the
//     merged lists could reach, optionally resolving stragglers
//     through targeted skip-block probes of the unmerged lists.
//     Exactness is never traded away: when even zero-gram strings
//     could still place after a full merge, the outcome is marked
//     inexact and the engine falls back to the brute-force ranking.
//
// Single-threaded, like index::BTree.

#ifndef LEXEQUAL_INDEX_INVERTED_INDEX_H_
#define LEXEQUAL_INDEX_INVERTED_INDEX_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "index/btree.h"
#include "match/qgram.h"
#include "obs/trace.h"
#include "storage/buffer_pool.h"

namespace lexequal::index {

namespace invidx {

/// Appends the LEB128 varint encoding of `v` to `out`.
void AppendVarint(uint64_t v, std::string* out);

/// Decodes one varint at [p, end); returns bytes consumed, or 0 on
/// truncation / overlong (> 10 byte) encodings.
size_t DecodeVarint(const uint8_t* p, const uint8_t* end, uint64_t* out);

/// One decoded posting: the doc (packed RID), its phoneme length, and
/// the ascending positions of the gram inside the padded doc.
struct Posting {
  uint64_t docid = 0;
  uint32_t len = 0;
  std::vector<uint32_t> positions;

  friend bool operator==(const Posting& a, const Posting& b) {
    return a.docid == b.docid && a.len == b.len &&
           a.positions == b.positions;
  }
};

/// Appends the wire encoding of `p` (docid delta against
/// `prev_docid`, then len, position count, and position deltas).
void AppendPosting(const Posting& p, uint64_t prev_docid,
                   std::string* out);

/// Decodes exactly `n_postings` postings from `payload`. Hardened
/// against corruption: truncated varints, non-monotonic docids,
/// zero deltas, and absurd lengths / position counts all surface as
/// Status::Corruption rather than unbounded allocation or UB
/// (fuzz-tested in tests/inverted_index_test.cc).
Result<std::vector<Posting>> DecodePostings(std::string_view payload,
                                            uint32_t n_postings);

/// Work counters for one index operation. The engine folds these into
/// the lexequal_invidx_* metrics and the EXPLAIN ANALYZE stage rows.
struct Stats {
  uint64_t lists_opened = 0;       // directory probes
  uint64_t lists_merged = 0;       // lists fully decoded (generate)
  uint64_t lists_probed = 0;       // lists consulted through skips
  uint64_t postings_examined = 0;  // postings actually decoded
  uint64_t postings_skipped = 0;   // postings bypassed via skip blocks
  uint64_t blocks_decoded = 0;
  uint64_t blocks_skipped = 0;
  uint64_t candidates = 0;         // distinct docids surfaced
  uint64_t early_terminated = 0;   // candidates pruned by score bound
  uint64_t verified = 0;           // verify() calls issued
  uint64_t restarts = 0;           // exactness escalations
};

/// One ranked result.
struct TopKHit {
  uint64_t docid = 0;
  double score = 0.0;
};

/// The ranked-retrieval outcome. `exact` is false when the score
/// bound could not exclude strings outside the candidate set (tiny or
/// adversarial tables); the caller must then re-rank by brute force.
struct TopKOutcome {
  std::vector<TopKHit> hits;  // (score desc, docid asc)
  bool exact = true;
  double threshold_score = 0.0;  // final k-th best verified score
};

/// Cost-model facts the score upper bound needs, plus the indexed
/// length range (persisted in the catalog). All lower-bound inputs:
/// understating cheapest_edit / min_indel only weakens pruning, never
/// correctness.
struct ScoreBounds {
  double min_indel = 1.0;     // min insert/delete cost of the model
  double cheapest_edit = 1.0; // min cost of any single edit op
  uint32_t min_len = 0;       // shortest indexed phoneme string
  uint32_t max_len = 0;       // longest indexed phoneme string
};

/// lexsim score of a verified pair: 1 - weighted_edit_distance /
/// max(|a|, |b|). 1.0 = phonemically identical; can go negative for
/// very distant pairs (kept unclamped so the ordering is total).
inline double LexsimScore(double distance, size_t la, size_t lb) {
  const double longer = static_cast<double>(la > lb ? la : lb);
  return 1.0 - distance / (longer > 0.0 ? longer : 1.0);
}

/// Upper bound on LexsimScore(probe, cand) for a candidate of length
/// `len` matching at most `max_gram_matches` of the probe's padded
/// grams — the WAND per-list bound argument (ARCHITECTURE.md §9).
double ScoreUpperBound(size_t probe_len, uint32_t len,
                       uint64_t max_gram_matches, int q,
                       const ScoreBounds& bounds);

}  // namespace invidx

/// Verification callback for TopK: exact lexsim score of `docid`
/// (fetch row, language filter, MatchKernel distance). nullopt =
/// the row is excluded from the ranking (empty phonemes, language
/// filter); errors abort the scan.
using InvidxVerifyFn =
    std::function<Result<std::optional<double>>(uint64_t docid,
                                                uint32_t len)>;

/// The persistent inverted index over one phonemic column's q-grams.
class InvertedIndex {
 public:
  /// Creates an empty index (directory B-Tree only).
  static Result<InvertedIndex> Create(storage::BufferPool* pool, int q);

  /// Re-opens an index rooted at the directory's root page.
  static InvertedIndex Open(storage::BufferPool* pool, int q,
                            storage::PageId directory_root) {
    return InvertedIndex(pool, q, directory_root);
  }

  /// The directory root to persist (may move on B-Tree splits; read
  /// it after mutations, like the other index roots).
  storage::PageId directory_root() const {
    return directory_.root_page_id();
  }
  int q() const { return q_; }

  /// Indexes one document: its packed RID, its positional grams (as
  /// PositionalQGrams yields them), and its phoneme length. Docids
  /// must arrive in strictly increasing order (the append-only heap
  /// guarantees this); out-of-order docids are rejected.
  Status Add(uint64_t docid,
             const std::vector<match::PositionalQGram>& grams,
             uint32_t len);

  /// Candidate docids for a LexEQUAL predicate: full merge of the
  /// probe's gram lists with the length/position/count filters
  /// applied — same candidate semantics as the q-gram B-Tree path.
  /// Sorted ascending.
  Result<std::vector<uint64_t>> ThresholdCandidates(
      const match::QGramProbe& probe, double threshold,
      invidx::Stats* stats) const;

  /// Ranked retrieval: the k best docids by exact lexsim score (ties
  /// by ascending docid), scores computed through `verify`. Lists are
  /// merged rarest-first with WAND-style upper-bound pruning; see the
  /// file header for the exactness contract. `trace` may be null.
  Result<invidx::TopKOutcome> TopK(const match::QGramProbe& probe,
                                   size_t k,
                                   const invidx::ScoreBounds& bounds,
                                   const InvidxVerifyFn& verify,
                                   invidx::Stats* stats,
                                   obs::QueryTrace* trace = nullptr) const;

  /// Total postings and distinct grams (walks every anchor chain;
  /// ANALYZE-time only).
  struct Totals {
    uint64_t distinct_grams = 0;
    uint64_t total_postings = 0;
  };
  Result<Totals> ComputeTotals() const;

 private:
  InvertedIndex(storage::BufferPool* pool, int q,
                storage::PageId directory_root)
      : pool_(pool), q_(q), directory_(BTree::Open(pool, directory_root)) {}

  // One skip entry: a posting block's docid range and page.
  struct BlockRef {
    uint64_t first_docid = 0;
    uint64_t last_docid = 0;
    storage::PageId page = storage::kInvalidPageId;
    storage::PageId anchor = storage::kInvalidPageId;  // owning anchor
    uint16_t anchor_index = 0;  // entry index within the anchor
  };

  // A gram's decoded skip index (anchor chain flattened).
  struct ListHandle {
    uint64_t gram = 0;
    uint64_t doc_count = 0;
    storage::PageId first_anchor = storage::kInvalidPageId;
    std::vector<BlockRef> blocks;
  };

  Result<std::optional<storage::PageId>> FindAnchor(uint64_t gram) const;
  Result<ListHandle> OpenList(uint64_t gram, storage::PageId anchor) const;
  Result<std::vector<invidx::Posting>> DecodeBlock(
      const BlockRef& block) const;

  // Creates a fresh single-block list for `gram` seeded with one
  // posting, and registers it in the directory.
  Status CreateList(uint64_t gram, const invidx::Posting& posting);
  // Appends one posting to an existing list (new block / chained
  // anchor as needed).
  Status AppendToList(storage::PageId first_anchor,
                      const invidx::Posting& posting);

  storage::BufferPool* pool_;
  int q_;
  BTree directory_;
};

}  // namespace lexequal::index

#endif  // LEXEQUAL_INDEX_INVERTED_INDEX_H_
