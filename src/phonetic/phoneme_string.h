// PhonemeString: a sequence of phonemes, the unit LexEQUAL compares.
//
// Phoneme strings round-trip through IPA-encoded UTF-8 so that stored
// phonemic columns are ordinary Unicode strings, as in the paper's
// prototype (which stored both forms in Unicode on Oracle).

#ifndef LEXEQUAL_PHONETIC_PHONEME_STRING_H_
#define LEXEQUAL_PHONETIC_PHONEME_STRING_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <type_traits>
#include <vector>

#include "common/result.h"
#include "phonetic/phoneme.h"

namespace lexequal::phonetic {

/// An immutable-ish phoneme sequence with IPA (de)serialization.
class PhonemeString {
 public:
  PhonemeString() = default;
  explicit PhonemeString(std::vector<Phoneme> phonemes)
      : phonemes_(std::move(phonemes)) {}
  PhonemeString(std::initializer_list<Phoneme> phonemes)
      : phonemes_(phonemes) {}

  /// Parses an IPA-encoded UTF-8 string. Code points that begin no
  /// known phoneme yield InvalidArgument; IPA length marks (ː),
  /// stress marks (ˈ ˌ) and syllable dots are skipped, mirroring the
  /// paper's removal of supra-segmentals.
  static Result<PhonemeString> FromIpa(std::string_view ipa_utf8);

  /// Renders the sequence as IPA UTF-8.
  std::string ToIpa() const;

  const std::vector<Phoneme>& phonemes() const { return phonemes_; }

  /// Contiguous byte view of the sequence for table-driven kernels
  /// (match/match_kernel.h): Phoneme is a dense uint8_t enum, so the
  /// backing vector *is* the id array — no copy, and cached parses
  /// (match/phoneme_cache.h) carry their id buffer for free. Valid
  /// while the string is alive and unmodified.
  const uint8_t* ids() const {
    static_assert(sizeof(Phoneme) == 1 &&
                      std::is_same_v<std::underlying_type_t<Phoneme>,
                                     uint8_t>,
                  "Phoneme must stay a dense uint8_t enum for the "
                  "id-buffer view");
    return reinterpret_cast<const uint8_t*>(phonemes_.data());
  }

  size_t size() const { return phonemes_.size(); }
  bool empty() const { return phonemes_.empty(); }
  Phoneme operator[](size_t i) const { return phonemes_[i]; }

  void Append(Phoneme p) { phonemes_.push_back(p); }
  void Append(const PhonemeString& other) {
    phonemes_.insert(phonemes_.end(), other.phonemes_.begin(),
                     other.phonemes_.end());
  }

  friend bool operator==(const PhonemeString& a, const PhonemeString& b) {
    return a.phonemes_ == b.phonemes_;
  }

 private:
  std::vector<Phoneme> phonemes_;
};

}  // namespace lexequal::phonetic

#endif  // LEXEQUAL_PHONETIC_PHONEME_STRING_H_
