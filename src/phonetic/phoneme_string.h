// PhonemeString: a sequence of phonemes, the unit LexEQUAL compares.
//
// Phoneme strings round-trip through IPA-encoded UTF-8 so that stored
// phonemic columns are ordinary Unicode strings, as in the paper's
// prototype (which stored both forms in Unicode on Oracle).

#ifndef LEXEQUAL_PHONETIC_PHONEME_STRING_H_
#define LEXEQUAL_PHONETIC_PHONEME_STRING_H_

#include <initializer_list>
#include <string>
#include <vector>

#include "common/result.h"
#include "phonetic/phoneme.h"

namespace lexequal::phonetic {

/// An immutable-ish phoneme sequence with IPA (de)serialization.
class PhonemeString {
 public:
  PhonemeString() = default;
  explicit PhonemeString(std::vector<Phoneme> phonemes)
      : phonemes_(std::move(phonemes)) {}
  PhonemeString(std::initializer_list<Phoneme> phonemes)
      : phonemes_(phonemes) {}

  /// Parses an IPA-encoded UTF-8 string. Code points that begin no
  /// known phoneme yield InvalidArgument; IPA length marks (ː),
  /// stress marks (ˈ ˌ) and syllable dots are skipped, mirroring the
  /// paper's removal of supra-segmentals.
  static Result<PhonemeString> FromIpa(std::string_view ipa_utf8);

  /// Renders the sequence as IPA UTF-8.
  std::string ToIpa() const;

  const std::vector<Phoneme>& phonemes() const { return phonemes_; }
  size_t size() const { return phonemes_.size(); }
  bool empty() const { return phonemes_.empty(); }
  Phoneme operator[](size_t i) const { return phonemes_[i]; }

  void Append(Phoneme p) { phonemes_.push_back(p); }
  void Append(const PhonemeString& other) {
    phonemes_.insert(phonemes_.end(), other.phonemes_.begin(),
                     other.phonemes_.end());
  }

  friend bool operator==(const PhonemeString& a, const PhonemeString& b) {
    return a.phonemes_ == b.phonemes_;
  }

 private:
  std::vector<Phoneme> phonemes_;
};

}  // namespace lexequal::phonetic

#endif  // LEXEQUAL_PHONETIC_PHONEME_STRING_H_
