#include "phonetic/cluster.h"

#include <algorithm>

namespace lexequal::phonetic {

Result<ClusterTable> ClusterTable::Create(
    const std::array<ClusterId, kPhonemeCount>& assignment) {
  int max_id = -1;
  for (ClusterId id : assignment) {
    if (id >= kMaxClusters) {
      return Status::InvalidArgument(
          "cluster id " + std::to_string(id) + " exceeds maximum of " +
          std::to_string(kMaxClusters - 1));
    }
    max_id = std::max<int>(max_id, id);
  }
  return ClusterTable(assignment, max_id + 1);
}

Result<ClusterTable> ClusterTable::FromGroups(
    const std::vector<std::vector<Phoneme>>& groups) {
  std::array<ClusterId, kPhonemeCount> assignment;
  std::array<bool, kPhonemeCount> assigned{};
  if (groups.size() > kMaxClusters) {
    return Status::InvalidArgument("too many clusters: " +
                                   std::to_string(groups.size()));
  }
  for (size_t g = 0; g < groups.size(); ++g) {
    for (Phoneme p : groups[g]) {
      size_t idx = static_cast<size_t>(p);
      if (idx >= kPhonemeCount) {
        return Status::InvalidArgument("invalid phoneme id");
      }
      if (assigned[idx]) {
        return Status::InvalidArgument(
            std::string("phoneme '") + std::string(PhonemeIpa(p)) +
            "' assigned to two clusters");
      }
      assigned[idx] = true;
      assignment[idx] = static_cast<ClusterId>(g);
    }
  }
  // Unmentioned phonemes get singleton clusters.
  int next = static_cast<int>(groups.size());
  for (int i = 0; i < kPhonemeCount; ++i) {
    if (!assigned[i]) {
      if (next >= kMaxClusters) {
        return Status::InvalidArgument(
            "singleton clusters for unassigned phonemes overflow the "
            "cluster limit; assign more phonemes to groups");
      }
      assignment[i] = static_cast<ClusterId>(next++);
    }
  }
  return Create(assignment);
}

const ClusterTable& ClusterTable::Default() {
  static const ClusterTable& table = *new ClusterTable([] {
    // 15 clusters over articulatory features; aspiration and the
    // dental/alveolar/retroflex splits collapse, which is exactly the
    // English-vs-Indic mismatch structure the paper exploits.
    std::array<ClusterId, kPhonemeCount> a{};
    auto set = [&a](std::initializer_list<Phoneme> ps, ClusterId id) {
      for (Phoneme p : ps) a[static_cast<size_t>(p)] = id;
    };
    using P = Phoneme;
    // 0: front vowels.
    set({P::kI, P::kIh, P::kE, P::kEh, P::kY}, 0);
    // 1: central / open vowels (æ patterns with a across languages).
    set({P::kA, P::kAa, P::kAe, P::kVv, P::kSchwa, P::kEr}, 1);
    // 2: back / rounded vowels.
    set({P::kO, P::kOh, P::kU, P::kUh, P::kOe}, 2);
    // 3: labial plosives.
    set({P::kP, P::kB, P::kPh, P::kBh}, 3);
    // 4: coronal plosives (dental, alveolar, retroflex) + the dental
    // fricatives θ/ð, which every bundled script adapts as stops
    // (Hindi थ/द, Tamil த, Greek loans).
    set({P::kT, P::kD, P::kTh, P::kDh, P::kTt, P::kDd, P::kTth, P::kDdh,
         P::kThF, P::kDhF},
        4);
    // 5: velar plosives.
    set({P::kK, P::kG, P::kKh, P::kGh}, 5);
    // 6: affricates + postalveolar fricatives.
    set({P::kCh, P::kJh, P::kChh, P::kJhh, P::kSh, P::kZh, P::kSs}, 6);
    // 7: labiodental fricatives + w (the pan-Indic v/w merger).
    set({P::kF, P::kV, P::kW}, 7);
    // 8: alveolar sibilants.
    set({P::kS, P::kZ}, 8);
    // 9: guttural fricatives.
    set({P::kH, P::kX, P::kGhF}, 9);
    // 10: labial nasal.
    set({P::kM}, 10);
    // 11: other nasals.
    set({P::kN, P::kNn, P::kNy, P::kNg}, 11);
    // 12: laterals.
    set({P::kL, P::kLl}, 12);
    // 13: rhotics.
    set({P::kR, P::kRr, P::kRd, P::kRz}, 13);
    // 14: palatal glide.
    set({P::kJ}, 14);
    Result<ClusterTable> t = Create(a);
    // The assignment above is a compile-time-known constant; failure
    // indicates a programming error in this file.
    return t.value();
  }());
  return table;
}

}  // namespace lexequal::phonetic
