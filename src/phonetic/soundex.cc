#include "phonetic/soundex.h"

#include "common/string_util.h"

namespace lexequal::phonetic {

namespace {

// Soundex digit per letter, '0' for vowels/h/w/y (not coded).
char SoundexDigit(char c) {
  switch (c) {
    case 'b': case 'f': case 'p': case 'v':
      return '1';
    case 'c': case 'g': case 'j': case 'k':
    case 'q': case 's': case 'x': case 'z':
      return '2';
    case 'd': case 't':
      return '3';
    case 'l':
      return '4';
    case 'm': case 'n':
      return '5';
    case 'r':
      return '6';
    default:
      return '0';
  }
}

}  // namespace

std::string Soundex(std::string_view name) {
  // Collect ASCII letters only, lowercased.
  std::string letters;
  letters.reserve(name.size());
  for (char c : name) {
    if (IsAsciiAlpha(c)) {
      letters.push_back(c >= 'A' && c <= 'Z'
                            ? static_cast<char>(c - 'A' + 'a')
                            : c);
    }
  }
  if (letters.empty()) return "0000";

  std::string code;
  code.push_back(static_cast<char>(letters[0] - 'a' + 'A'));
  char prev_digit = SoundexDigit(letters[0]);
  for (size_t i = 1; i < letters.size() && code.size() < 4; ++i) {
    char c = letters[i];
    char d = SoundexDigit(c);
    if (d != '0' && d != prev_digit) {
      code.push_back(d);
    }
    // 'h' and 'w' are transparent: they do not reset the previous
    // digit, so identical codes across them still merge.
    if (c != 'h' && c != 'w') {
      prev_digit = d;
    }
  }
  while (code.size() < 4) code.push_back('0');
  return code;
}

bool SoundexEqual(std::string_view a, std::string_view b) {
  return Soundex(a) == Soundex(b);
}

}  // namespace lexequal::phonetic
