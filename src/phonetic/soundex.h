// Classic Soundex (Knuth, TAOCP vol. 3) over Latin-script names.
//
// The paper cites Soundex as the root of phonetic matching and as the
// only phonetic facility databases offered at the time. We provide it
// both as a baseline comparator for the quality experiments and as
// the reference point for the clustered cost model (intra-cluster
// substitution cost 0 "simulates" Soundex behaviour in phoneme space).

#ifndef LEXEQUAL_PHONETIC_SOUNDEX_H_
#define LEXEQUAL_PHONETIC_SOUNDEX_H_

#include <string>
#include <string_view>

namespace lexequal::phonetic {

/// Four-character Soundex code ("N600" for "Nehru"). Non-ASCII and
/// non-alphabetic characters are ignored; an empty or letterless
/// input yields "0000".
std::string Soundex(std::string_view name);

/// True when the two names share a Soundex code.
bool SoundexEqual(std::string_view a, std::string_view b);

}  // namespace lexequal::phonetic

#endif  // LEXEQUAL_PHONETIC_SOUNDEX_H_
