#include "phonetic/phoneme.h"

#include <array>
#include <vector>

#include "text/utf8.h"

namespace lexequal::phonetic {

namespace {

using PT = PhonemeType;
using PL = Place;
using HT = Height;
using BK = Backness;

// One entry per Phoneme enumerator, in order. IPA spellings use
// universal character names and compile to UTF-8.
constexpr std::array<PhonemeInfo, kPhonemeCount> kInventory = {{
    // ipa        type          place            voiced aspir  height    back        round
    {"i",         PT::kVowel,   PL::kNone,       true,  false, HT::kHigh, BK::kFront,   false},
    {"ɪ",    PT::kVowel,   PL::kNone,       true,  false, HT::kHigh, BK::kFront,   false},
    {"e",         PT::kVowel,   PL::kNone,       true,  false, HT::kMid,  BK::kFront,   false},
    {"ɛ",    PT::kVowel,   PL::kNone,       true,  false, HT::kMid,  BK::kFront,   false},
    {"æ",    PT::kVowel,   PL::kNone,       true,  false, HT::kLow,  BK::kFront,   false},
    {"y",         PT::kVowel,   PL::kNone,       true,  false, HT::kHigh, BK::kFront,   true},
    {"ø",    PT::kVowel,   PL::kNone,       true,  false, HT::kMid,  BK::kFront,   true},
    {"a",         PT::kVowel,   PL::kNone,       true,  false, HT::kLow,  BK::kCentral, false},
    {"ɑ",    PT::kVowel,   PL::kNone,       true,  false, HT::kLow,  BK::kBack,    false},
    {"ʌ",    PT::kVowel,   PL::kNone,       true,  false, HT::kMid,  BK::kBack,    false},
    {"ə",    PT::kVowel,   PL::kNone,       true,  false, HT::kMid,  BK::kCentral, false},
    {"ɜ",    PT::kVowel,   PL::kNone,       true,  false, HT::kMid,  BK::kCentral, false},
    {"o",         PT::kVowel,   PL::kNone,       true,  false, HT::kMid,  BK::kBack,    true},
    {"ɔ",    PT::kVowel,   PL::kNone,       true,  false, HT::kMid,  BK::kBack,    true},
    {"u",         PT::kVowel,   PL::kNone,       true,  false, HT::kHigh, BK::kBack,    true},
    {"ʊ",    PT::kVowel,   PL::kNone,       true,  false, HT::kHigh, BK::kBack,    true},
    // Plosives.
    {"p",             PT::kPlosive, PL::kBilabial,  false, false, HT::kNA, BK::kNA, false},
    {"b",             PT::kPlosive, PL::kBilabial,  true,  false, HT::kNA, BK::kNA, false},
    {"pʰ",       PT::kPlosive, PL::kBilabial,  false, true,  HT::kNA, BK::kNA, false},
    {"bʱ",       PT::kPlosive, PL::kBilabial,  true,  true,  HT::kNA, BK::kNA, false},
    {"t",             PT::kPlosive, PL::kAlveolar,  false, false, HT::kNA, BK::kNA, false},
    {"d",             PT::kPlosive, PL::kAlveolar,  true,  false, HT::kNA, BK::kNA, false},
    {"tʰ",       PT::kPlosive, PL::kAlveolar,  false, true,  HT::kNA, BK::kNA, false},
    {"dʱ",       PT::kPlosive, PL::kAlveolar,  true,  true,  HT::kNA, BK::kNA, false},
    {"ʈ",        PT::kPlosive, PL::kRetroflex, false, false, HT::kNA, BK::kNA, false},
    {"ɖ",        PT::kPlosive, PL::kRetroflex, true,  false, HT::kNA, BK::kNA, false},
    {"ʈʰ",  PT::kPlosive, PL::kRetroflex, false, true,  HT::kNA, BK::kNA, false},
    {"ɖʱ",  PT::kPlosive, PL::kRetroflex, true,  true,  HT::kNA, BK::kNA, false},
    {"k",             PT::kPlosive, PL::kVelar,     false, false, HT::kNA, BK::kNA, false},
    {"ɡ",        PT::kPlosive, PL::kVelar,     true,  false, HT::kNA, BK::kNA, false},
    {"kʰ",       PT::kPlosive, PL::kVelar,     false, true,  HT::kNA, BK::kNA, false},
    {"ɡʱ",  PT::kPlosive, PL::kVelar,     true,  true,  HT::kNA, BK::kNA, false},
    // Affricates.
    {"tʃ",           PT::kAffricate, PL::kPostalveolar, false, false, HT::kNA, BK::kNA, false},
    {"dʒ",           PT::kAffricate, PL::kPostalveolar, true,  false, HT::kNA, BK::kNA, false},
    {"tʃʰ",     PT::kAffricate, PL::kPostalveolar, false, true,  HT::kNA, BK::kNA, false},
    {"dʒʱ",     PT::kAffricate, PL::kPostalveolar, true,  true,  HT::kNA, BK::kNA, false},
    // Fricatives.
    {"f",         PT::kFricative, PL::kLabiodental,  false, false, HT::kNA, BK::kNA, false},
    {"v",         PT::kFricative, PL::kLabiodental,  true,  false, HT::kNA, BK::kNA, false},
    {"θ",    PT::kFricative, PL::kDental,       false, false, HT::kNA, BK::kNA, false},
    {"ð",    PT::kFricative, PL::kDental,       true,  false, HT::kNA, BK::kNA, false},
    {"s",         PT::kFricative, PL::kAlveolar,     false, false, HT::kNA, BK::kNA, false},
    {"z",         PT::kFricative, PL::kAlveolar,     true,  false, HT::kNA, BK::kNA, false},
    {"ʃ",    PT::kFricative, PL::kPostalveolar, false, false, HT::kNA, BK::kNA, false},
    {"ʒ",    PT::kFricative, PL::kPostalveolar, true,  false, HT::kNA, BK::kNA, false},
    {"ʂ",    PT::kFricative, PL::kRetroflex,    false, false, HT::kNA, BK::kNA, false},
    {"x",         PT::kFricative, PL::kVelar,        false, false, HT::kNA, BK::kNA, false},
    {"ɣ",    PT::kFricative, PL::kVelar,        true,  false, HT::kNA, BK::kNA, false},
    {"h",         PT::kFricative, PL::kGlottal,      false, false, HT::kNA, BK::kNA, false},
    // Nasals.
    {"m",         PT::kNasal, PL::kBilabial,  true, false, HT::kNA, BK::kNA, false},
    {"n",         PT::kNasal, PL::kAlveolar,  true, false, HT::kNA, BK::kNA, false},
    {"ɳ",    PT::kNasal, PL::kRetroflex, true, false, HT::kNA, BK::kNA, false},
    {"ɲ",    PT::kNasal, PL::kPalatal,   true, false, HT::kNA, BK::kNA, false},
    {"ŋ",    PT::kNasal, PL::kVelar,     true, false, HT::kNA, BK::kNA, false},
    // Laterals.
    {"l",         PT::kLateral, PL::kAlveolar,  true, false, HT::kNA, BK::kNA, false},
    {"ɭ",    PT::kLateral, PL::kRetroflex, true, false, HT::kNA, BK::kNA, false},
    // Rhotics.
    {"r",         PT::kRhotic, PL::kAlveolar,  true, false, HT::kNA, BK::kNA, false},
    {"ɾ",    PT::kRhotic, PL::kAlveolar,  true, false, HT::kNA, BK::kNA, false},
    {"ɽ",    PT::kRhotic, PL::kRetroflex, true, false, HT::kNA, BK::kNA, false},
    {"ɻ",    PT::kRhotic, PL::kRetroflex, true, false, HT::kNA, BK::kNA, false},
    // Glides.
    {"j",         PT::kGlide, PL::kPalatal,   true, false, HT::kNA, BK::kNA, false},
    {"w",         PT::kGlide, PL::kVelar,     true, false, HT::kNA, BK::kNA, false},
}};

// Decoded code-point spellings of every phoneme, built on first use.
struct DecodedInventory {
  std::vector<uint32_t> spelling[kPhonemeCount];
  size_t max_len = 0;
  DecodedInventory() {
    for (int i = 0; i < kPhonemeCount; ++i) {
      spelling[i] = text::DecodeUtf8(kInventory[i].ipa);
      max_len = std::max(max_len, spelling[i].size());
    }
  }
};

const DecodedInventory& Decoded() {
  static const DecodedInventory& inv = *new DecodedInventory();
  return inv;
}

}  // namespace

const PhonemeInfo& GetPhonemeInfo(Phoneme p) {
  return kInventory[static_cast<size_t>(p)];
}

std::string_view PhonemeIpa(Phoneme p) {
  return kInventory[static_cast<size_t>(p)].ipa;
}

bool IsVowel(Phoneme p) {
  return GetPhonemeInfo(p).type == PhonemeType::kVowel;
}

std::string DescribePhoneme(Phoneme p) {
  const PhonemeInfo& info = GetPhonemeInfo(p);
  std::string out;
  if (info.type == PhonemeType::kVowel) {
    switch (info.height) {
      case Height::kHigh: out += "close "; break;
      case Height::kMid: out += "mid "; break;
      case Height::kLow: out += "open "; break;
      case Height::kNA: break;
    }
    switch (info.backness) {
      case Backness::kFront: out += "front "; break;
      case Backness::kCentral: out += "central "; break;
      case Backness::kBack: out += "back "; break;
      case Backness::kNA: break;
    }
    if (info.rounded) out += "rounded ";
    out += "vowel";
    return out;
  }
  out += info.voiced ? "voiced " : "voiceless ";
  if (info.aspirated) out += "aspirated ";
  switch (info.place) {
    case Place::kBilabial: out += "bilabial "; break;
    case Place::kLabiodental: out += "labiodental "; break;
    case Place::kDental: out += "dental "; break;
    case Place::kAlveolar: out += "alveolar "; break;
    case Place::kRetroflex: out += "retroflex "; break;
    case Place::kPostalveolar: out += "postalveolar "; break;
    case Place::kPalatal: out += "palatal "; break;
    case Place::kVelar: out += "velar "; break;
    case Place::kGlottal: out += "glottal "; break;
    case Place::kNone: break;
  }
  switch (info.type) {
    case PhonemeType::kPlosive: out += "plosive"; break;
    case PhonemeType::kAffricate: out += "affricate"; break;
    case PhonemeType::kFricative: out += "fricative"; break;
    case PhonemeType::kNasal: out += "nasal"; break;
    case PhonemeType::kLateral: out += "lateral"; break;
    case PhonemeType::kRhotic: out += "rhotic"; break;
    case PhonemeType::kGlide: out += "glide"; break;
    case PhonemeType::kVowel: break;
  }
  return out;
}

Result<Phoneme> ParsePhonemeAt(const std::vector<uint32_t>& cps,
                               size_t* pos) {
  const DecodedInventory& inv = Decoded();
  int best = -1;
  size_t best_len = 0;
  for (int i = 0; i < kPhonemeCount; ++i) {
    const std::vector<uint32_t>& sp = inv.spelling[i];
    if (sp.size() <= best_len || *pos + sp.size() > cps.size()) continue;
    bool match = true;
    for (size_t k = 0; k < sp.size(); ++k) {
      if (cps[*pos + k] != sp[k]) {
        match = false;
        break;
      }
    }
    if (match) {
      best = i;
      best_len = sp.size();
    }
  }
  if (best < 0) {
    return Status::NotFound("no phoneme at code-point offset " +
                            std::to_string(*pos));
  }
  *pos += best_len;
  return static_cast<Phoneme>(best);
}

}  // namespace lexequal::phonetic
