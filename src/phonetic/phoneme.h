// The phoneme inventory.
//
// Phonemes are the alphabet of the paper's match space: every
// lexicographic string is transformed into a string over this
// inventory (rendered in IPA), and LexEQUAL compares those strings.
//
// The inventory covers the union of the phoneme sets produced by the
// bundled G2P converters (English, Hindi, Tamil, Greek, plus the
// French/Spanish examples of Figure 9). Each phoneme carries
// articulatory features; the default phoneme clustering (cluster.h)
// is defined over these features, following the multilingual phoneme
// clustering approach of Mareuil et al. that the paper builds on.
//
// Vowel length and supra-segmentals are intentionally absent: the
// paper strips "those symbols specific to speech generation, such as
// the supra-segmentals, diacritics, tones and accents".

#ifndef LEXEQUAL_PHONETIC_PHONEME_H_
#define LEXEQUAL_PHONETIC_PHONEME_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace lexequal::phonetic {

/// Manner of articulation (with Vowel folded in as a type).
enum class PhonemeType : uint8_t {
  kVowel = 0,
  kPlosive,
  kAffricate,
  kFricative,
  kNasal,
  kLateral,
  kRhotic,
  kGlide,
};

/// Place of articulation (kNone for vowels).
enum class Place : uint8_t {
  kNone = 0,
  kBilabial,
  kLabiodental,
  kDental,
  kAlveolar,
  kRetroflex,
  kPostalveolar,
  kPalatal,
  kVelar,
  kGlottal,
};

/// Vowel height (kNA for consonants).
enum class Height : uint8_t { kNA = 0, kHigh, kMid, kLow };

/// Vowel backness (kNA for consonants).
enum class Backness : uint8_t { kNA = 0, kFront, kCentral, kBack };

/// Dense phoneme identifiers. The order groups vowels first, then
/// consonants by manner; new phonemes must be appended to keep stored
/// phonemic data stable.
enum class Phoneme : uint8_t {
  // Vowels.
  kI = 0,   // i  close front
  kIh,      // ɪ  near-close front
  kE,       // e  close-mid front
  kEh,      // ɛ  open-mid front
  kAe,      // æ  near-open front
  kY,       // y  close front rounded (Fr. u)
  kOe,      // ø  close-mid front rounded (Fr. eu)
  kA,       // a  open front/central
  kAa,      // ɑ  open back
  kVv,      // ʌ  open-mid back unrounded
  kSchwa,   // ə  mid central
  kEr,      // ɜ  open-mid central
  kO,       // o  close-mid back rounded
  kOh,      // ɔ  open-mid back rounded
  kU,       // u  close back rounded
  kUh,      // ʊ  near-close back rounded
  // Plosives.
  kP,       // p
  kB,       // b
  kPh,      // pʰ aspirated
  kBh,      // bʱ breathy
  kT,       // t
  kD,       // d
  kTh,      // tʰ
  kDh,      // dʱ
  kTt,      // ʈ  retroflex
  kDd,      // ɖ  retroflex
  kTth,     // ʈʰ
  kDdh,     // ɖʱ
  kK,       // k
  kG,       // ɡ
  kKh,      // kʰ
  kGh,      // ɡʱ
  // Affricates.
  kCh,      // tʃ
  kJh,      // dʒ
  kChh,     // tʃʰ
  kJhh,     // dʒʱ
  // Fricatives.
  kF,       // f
  kV,       // v
  kThF,     // θ
  kDhF,     // ð
  kS,       // s
  kZ,       // z
  kSh,      // ʃ
  kZh,      // ʒ
  kSs,      // ʂ  retroflex
  kX,       // x  velar
  kGhF,     // ɣ  velar voiced
  kH,       // h
  // Nasals.
  kM,       // m
  kN,       // n
  kNn,      // ɳ  retroflex
  kNy,      // ɲ  palatal
  kNg,      // ŋ  velar
  // Laterals.
  kL,       // l
  kLl,      // ɭ  retroflex
  // Rhotics.
  kR,       // r  trill
  kRr,      // ɾ  tap
  kRd,      // ɽ  retroflex flap
  kRz,      // ɻ  retroflex approximant (Ta. ழ)
  // Glides.
  kJ,       // j
  kW,       // w
  kNumPhonemes,  // sentinel, not a phoneme
};

/// Number of real phonemes in the inventory.
inline constexpr int kPhonemeCount =
    static_cast<int>(Phoneme::kNumPhonemes);

/// Static descriptor of one phoneme.
struct PhonemeInfo {
  const char* ipa;       // UTF-8 IPA spelling (1-3 code points)
  PhonemeType type;
  Place place;           // kNone for vowels
  bool voiced;
  bool aspirated;        // aspirated / breathy release
  Height height;         // kNA for consonants
  Backness backness;     // kNA for consonants
  bool rounded;          // false for consonants
};

/// Descriptor lookup; `p` must be a real phoneme.
const PhonemeInfo& GetPhonemeInfo(Phoneme p);

/// IPA spelling of a phoneme as UTF-8.
std::string_view PhonemeIpa(Phoneme p);

/// True for vowels.
bool IsVowel(Phoneme p);

/// Human-readable articulatory description, e.g. "voiceless bilabial
/// plosive" for p, "close front vowel" for i.
std::string DescribePhoneme(Phoneme p);

/// Parses the longest phoneme starting at code-point offset `*pos` of
/// the code-point sequence `cps` (greedy longest match, so "tʃʰ"
/// parses as the aspirated affricate, not t + ʃ + modifier). On
/// success advances `*pos`. Unknown code points yield NotFound without
/// advancing.
Result<Phoneme> ParsePhonemeAt(const std::vector<uint32_t>& cps,
                               size_t* pos);

}  // namespace lexequal::phonetic

#endif  // LEXEQUAL_PHONETIC_PHONEME_H_
