#include "phonetic/phoneme_string.h"

#include "text/utf8.h"

namespace lexequal::phonetic {

namespace {

// Supra-segmental / diacritic code points silently skipped by the
// parser (stress, length, syllable break, tie bar).
bool IsSuprasegmental(uint32_t cp) {
  switch (cp) {
    case 0x02D0:  // ː length
    case 0x02D1:  // ˑ half-length
    case 0x02C8:  // ˈ primary stress
    case 0x02CC:  // ˌ secondary stress
    case 0x002E:  // . syllable break
    case 0x0361:  // combining tie bar
    case 0x032F:  // combining inverted breve below
    case 0x0303:  // combining tilde (nasalization)
      return true;
    default:
      return false;
  }
}

}  // namespace

Result<PhonemeString> PhonemeString::FromIpa(std::string_view ipa_utf8) {
  std::vector<uint32_t> cps = text::DecodeUtf8(ipa_utf8);
  std::vector<Phoneme> out;
  out.reserve(cps.size());
  size_t pos = 0;
  while (pos < cps.size()) {
    if (IsSuprasegmental(cps[pos]) || cps[pos] == ' ') {
      ++pos;
      continue;
    }
    Result<Phoneme> p = ParsePhonemeAt(cps, &pos);
    if (!p.ok()) {
      return Status::InvalidArgument(
          "unrecognized IPA code point U+" +
          [](uint32_t cp) {
            char buf[9];
            static const char* digits = "0123456789ABCDEF";
            int n = 0;
            char tmp[8];
            if (cp == 0) tmp[n++] = '0';
            while (cp > 0) {
              tmp[n++] = digits[cp & 0xF];
              cp >>= 4;
            }
            int w = n < 4 ? 4 : n;
            for (int i = 0; i < w; ++i) {
              buf[i] = i < w - n ? '0' : tmp[w - 1 - i];
            }
            buf[w] = '\0';
            return std::string(buf);
          }(cps[pos]) +
          " in '" + std::string(ipa_utf8) + "'");
    }
    out.push_back(p.value());
  }
  return PhonemeString(std::move(out));
}

std::string PhonemeString::ToIpa() const {
  std::string out;
  for (Phoneme p : phonemes_) {
    out += PhonemeIpa(p);
  }
  return out;
}

}  // namespace lexequal::phonetic
