// Phoneme clustering.
//
// The paper's Clustered Edit Distance groups "like" phonemes into
// clusters (after Mareuil et al.'s multilingual phoneme clustering)
// and charges a tunable Intra-Cluster Substitution Cost for
// substitutions inside a cluster. The same clusters drive the
// phonetic index: a phoneme string maps to the sequence of its
// cluster ids (Section 5.3).
//
// The default table keeps the cluster count at 15 so each cluster id
// fits a 4-bit nibble of the grouped phoneme-string identifier.

#ifndef LEXEQUAL_PHONETIC_CLUSTER_H_
#define LEXEQUAL_PHONETIC_CLUSTER_H_

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "phonetic/phoneme.h"

namespace lexequal::phonetic {

/// Identifier of a phoneme cluster, in [0, cluster_count).
using ClusterId = uint8_t;

/// Maximum number of clusters representable in the 4-bit packing used
/// by the grouped phoneme-string identifier (value 15 is the length
/// sentinel).
inline constexpr int kMaxClusters = 15;

/// A total assignment of phonemes to clusters. Immutable once built;
/// user-customizable via the vector constructor (the paper allows
/// "user customization of clustering of phonemes").
class ClusterTable {
 public:
  /// Builds a table from an explicit assignment (indexed by Phoneme).
  /// Fails if any id is >= kMaxClusters.
  static Result<ClusterTable> Create(
      const std::array<ClusterId, kPhonemeCount>& assignment);

  /// Builds a table from named groups: each inner vector is one
  /// cluster; phonemes not mentioned each get their own singleton
  /// cluster — fails if that overflows kMaxClusters.
  static Result<ClusterTable> FromGroups(
      const std::vector<std::vector<Phoneme>>& groups);

  /// The default multilingual clustering (15 clusters, documented in
  /// cluster.cc): vowels by region; plosives by place (aspiration
  /// ignored); affricates with postalveolar fricatives; fricatives by
  /// region; m vs. other nasals; laterals; rhotics; glides.
  static const ClusterTable& Default();

  ClusterId cluster_of(Phoneme p) const {
    return assignment_[static_cast<size_t>(p)];
  }

  /// True when the two phonemes share a cluster.
  bool SameCluster(Phoneme a, Phoneme b) const {
    return cluster_of(a) == cluster_of(b);
  }

  int cluster_count() const { return cluster_count_; }

 private:
  ClusterTable(std::array<ClusterId, kPhonemeCount> assignment,
               int cluster_count)
      : assignment_(assignment), cluster_count_(cluster_count) {}

  std::array<ClusterId, kPhonemeCount> assignment_;
  int cluster_count_;
};

}  // namespace lexequal::phonetic

#endif  // LEXEQUAL_PHONETIC_CLUSTER_H_
