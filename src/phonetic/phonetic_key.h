// Grouped Phoneme String Identifier (paper §5.3, "Phoneme Grouping").
//
// Maps a phoneme string to a compact integer key by concatenating the
// cluster id of each phoneme, so that strings whose phonemes differ
// only within clusters collide — a Soundex-style hash generalized to
// the multilingual phoneme space. The key indexes a standard B-Tree:
// this is the paper's multilingual phonetic index (its Table 3 access
// path), built in src/engine via CreateIndex(IndexSpec::Kind::kPhonetic).
//
// Contract notes:
//   * The mapping is many-to-one by design. Equal keys mean "probably
//     phonetically equivalent"; candidates must still be verified by
//     the exact matcher. Distinct keys of *similar* names can occur
//     (the recall/threshold trade-off the paper's Fig. 11 measures),
//     so the index trades a little recall for point-lookup speed.
//   * Keys are persisted inside B-Tree pages, so the encoding below
//     (nibble packing, terminator, weak-phoneme elision) is an
//     on-disk format: changing it invalidates existing indexes.
//   * All functions are pure and thread-safe; the borrowed
//     ClusterTable must outlive each call (the Default() singleton
//     always does).

#ifndef LEXEQUAL_PHONETIC_PHONETIC_KEY_H_
#define LEXEQUAL_PHONETIC_PHONETIC_KEY_H_

#include <cstdint>
#include <string>

#include "phonetic/cluster.h"
#include "phonetic/phoneme_string.h"

namespace lexequal::phonetic {

/// Maximum number of phonemes encoded in the 64-bit key. Longer
/// strings are truncated: truncation merges keys (extra candidates,
/// filtered by the exact UDF) but never separates equivalents, so it
/// introduces no false dismissals beyond those inherent to the scheme.
inline constexpr size_t kPhoneticKeyMaxPhonemes = 15;

/// True when a phoneme contributes to the grouped key. Weak segments
/// — glottal h and the central vowels (a ɑ æ ʌ ə ɜ) — are skipped:
/// they are precisely what scripts add or drop (Tamil writes no /h/,
/// Hindi deletes schwas, final -a alternates with -ə), so keying on
/// them would dismiss most cross-script equivalents. This is the
/// "more robust grouping of like phonemes" the paper's §5.3 calls
/// for, in the spirit of Soundex's vowel/h elision.
bool IsKeyPhoneme(Phoneme p);

/// Packs the cluster-id sequence of `ps` (key phonemes only) into a
/// uint64.
///
/// Each key phoneme contributes one 4-bit nibble (cluster ids are
/// < 15); the nibble value 15 terminates the encoding so that e.g.
/// cluster sequence [3] and [3,0] produce different keys. Key
/// phonemes beyond kPhoneticKeyMaxPhonemes are ignored.
uint64_t GroupedPhonemeStringId(const PhonemeString& ps,
                                const ClusterTable& clusters);

/// Debug form: dotted cluster ids, e.g. "11.0.13.2" for "neru".
std::string GroupedPhonemeStringIdDebug(const PhonemeString& ps,
                                        const ClusterTable& clusters);

}  // namespace lexequal::phonetic

#endif  // LEXEQUAL_PHONETIC_PHONETIC_KEY_H_
