#include "phonetic/phonetic_key.h"

#include <algorithm>

namespace lexequal::phonetic {

bool IsKeyPhoneme(Phoneme p) {
  switch (p) {
    case Phoneme::kH:      // scripts drop /h/ (Tamil has none)
    case Phoneme::kSchwa:  // Hindi schwa deletion
    case Phoneme::kA:
    case Phoneme::kAa:
    case Phoneme::kAe:
    case Phoneme::kVv:
    case Phoneme::kEr:
      return false;
    default:
      return true;
  }
}

uint64_t GroupedPhonemeStringId(const PhonemeString& ps,
                                const ClusterTable& clusters) {
  uint64_t key = 0;
  size_t packed = 0;
  for (size_t i = 0;
       i < ps.size() && packed < kPhoneticKeyMaxPhonemes; ++i) {
    if (!IsKeyPhoneme(ps[i])) continue;
    key = (key << 4) | clusters.cluster_of(ps[i]);
    ++packed;
  }
  if (packed < kPhoneticKeyMaxPhonemes) {
    key = (key << 4) | 0xF;  // terminator nibble
  }
  return key;
}

std::string GroupedPhonemeStringIdDebug(const PhonemeString& ps,
                                        const ClusterTable& clusters) {
  std::string out;
  bool first = true;
  for (size_t i = 0; i < ps.size(); ++i) {
    if (!IsKeyPhoneme(ps[i])) continue;
    if (!first) out += '.';
    first = false;
    out += std::to_string(static_cast<int>(clusters.cluster_of(ps[i])));
  }
  return out;
}

}  // namespace lexequal::phonetic
