// Match-quality evaluation (paper §4.2).
//
// "We matched each phonemic string in the data set with every other
// phonemic string, counting the number of matches m1 that were
// correctly reported ... along with the total number of matches m2.
//   Recall    = m1 / sum_i C(n_i, 2)
//   Precision = m1 / m2"

#ifndef LEXEQUAL_DATASET_METRICS_H_
#define LEXEQUAL_DATASET_METRICS_H_

#include "dataset/lexicon.h"
#include "match/lexequal.h"

namespace lexequal::dataset {

/// Result of one all-pairs evaluation run.
struct QualityResult {
  double threshold = 0;
  double intra_cluster_cost = 0;
  uint64_t correct_matches = 0;   // m1
  uint64_t reported_matches = 0;  // m2
  uint64_t ideal_matches = 0;     // sum_i C(n_i, 2)
  double recall = 0;
  double precision = 0;
};

/// Runs the all-pairs phonemic match over `lexicon` with the given
/// parameters and computes recall/precision by tag agreement.
QualityResult EvaluateMatchQuality(const Lexicon& lexicon,
                                   const match::LexEqualOptions& options);

/// Same evaluation under an arbitrary cost model (used by the cost
/// ablation bench, e.g. for FeatureCost). The decision rule is the
/// operator's: distance <= threshold * min(|a|, |b|).
QualityResult EvaluateMatchQualityWithCost(const Lexicon& lexicon,
                                           double threshold,
                                           const match::CostModel& costs);

/// Recall broken down by language pair (En-Hi, En-Ta, Hi-Ta, and the
/// within-language variants) — shows which script pair loses the most
/// true matches at the chosen parameters.
struct PairwiseQuality {
  text::Language a;
  text::Language b;
  uint64_t ideal = 0;
  uint64_t correct = 0;
  double recall = 0;
};

std::vector<PairwiseQuality> EvaluatePairwiseRecall(
    const Lexicon& lexicon, const match::LexEqualOptions& options);

}  // namespace lexequal::dataset

#endif  // LEXEQUAL_DATASET_METRICS_H_
