#include "dataset/lexicon.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/string_util.h"
#include "g2p/g2p.h"
#include "g2p/render_indic.h"
#include "g2p/render_latin.h"
#include "text/utf8.h"

namespace lexequal::dataset {

namespace {

using g2p::G2PRegistry;
using phonetic::PhonemeString;
using text::Language;

}  // namespace

namespace {

// Spelling variants of one name. The paper tagged *phonetically
// equivalent* names with a common tag-number by manual judgement;
// these pairs are the same name in different conventional spellings,
// so they share a tag (and matching them is correct, not a false
// positive).
std::string CanonicalSpelling(const std::string& lower) {
  if (lower == "katherine") return "catherine";
  if (lower == "sita") return "seetha";
  if (lower == "sharma") return "sarma";
  if (lower == "smyth") return "smith";
  if (lower == "gita") return "geetha";
  return lower;
}

}  // namespace

Result<Lexicon> Lexicon::BuildMultiscript(bool include_greek) {
  const G2PRegistry& g2p = G2PRegistry::Default();
  Lexicon lex;
  std::set<std::string> seen;  // dedupe across domains
  std::map<std::string, int> canonical_tag;
  int tag = 0;

  for (NameDomain domain : {NameDomain::kIndian, NameDomain::kAmerican,
                            NameDomain::kGeneric}) {
    for (std::string_view name : BaseNames(domain)) {
      std::string lower = AsciiToLower(name);
      if (!seen.insert(lower).second) continue;

      // English entry.
      PhonemeString eng_phon;
      LEXEQUAL_ASSIGN_OR_RETURN(
          eng_phon, g2p.Transform(name, Language::kEnglish));

      // Hindi (Devanagari) form, generated through the phoneme space
      // and re-read with the Hindi converter — lossy exactly where
      // the script is lossy.
      std::string deva;
      LEXEQUAL_ASSIGN_OR_RETURN(deva, g2p::RenderDevanagari(eng_phon));
      PhonemeString hindi_phon;
      LEXEQUAL_ASSIGN_OR_RETURN(hindi_phon,
                                g2p.Transform(deva, Language::kHindi));

      // Tamil form.
      std::string tamil;
      LEXEQUAL_ASSIGN_OR_RETURN(tamil, g2p::RenderTamil(eng_phon));
      PhonemeString tamil_phon;
      LEXEQUAL_ASSIGN_OR_RETURN(tamil_phon,
                                g2p.Transform(tamil, Language::kTamil));

      // Same-name spelling variants share the tag of the first
      // spelling encountered.
      const std::string canon = CanonicalSpelling(lower);
      int entry_tag;
      auto it = canonical_tag.find(canon);
      if (it != canonical_tag.end()) {
        entry_tag = it->second;
        lex.group_sizes_[entry_tag] += 3;
      } else {
        entry_tag = tag++;
        canonical_tag[canon] = entry_tag;
        lex.group_sizes_.push_back(3);
      }

      lex.entries_.push_back({std::string(name), Language::kEnglish,
                              domain, entry_tag, eng_phon});
      lex.entries_.push_back({std::move(deva), Language::kHindi, domain,
                              entry_tag, std::move(hindi_phon)});
      lex.entries_.push_back({std::move(tamil), Language::kTamil, domain,
                              entry_tag, std::move(tamil_phon)});
      if (include_greek) {
        std::string greek;
        LEXEQUAL_ASSIGN_OR_RETURN(greek, g2p::RenderGreek(eng_phon));
        PhonemeString greek_phon;
        LEXEQUAL_ASSIGN_OR_RETURN(
            greek_phon, g2p.Transform(greek, Language::kGreek));
        lex.entries_.push_back({std::move(greek), Language::kGreek,
                                domain, entry_tag,
                                std::move(greek_phon)});
        lex.group_sizes_[entry_tag] += 1;
      }
    }
  }
  lex.group_count_ = tag;
  return lex;
}

double Lexicon::AverageTextLength() const {
  if (entries_.empty()) return 0;
  double sum = 0;
  for (const LexiconEntry& e : entries_) {
    sum += static_cast<double>(text::CodePointCount(e.text));
  }
  return sum / static_cast<double>(entries_.size());
}

double Lexicon::AveragePhonemeLength() const {
  if (entries_.empty()) return 0;
  double sum = 0;
  for (const LexiconEntry& e : entries_) {
    sum += static_cast<double>(e.phonemes.size());
  }
  return sum / static_cast<double>(entries_.size());
}

Lexicon Lexicon::Sample(int n_groups) const {
  Lexicon out;
  out.group_count_ = std::min(n_groups, group_count_);
  out.group_sizes_.assign(group_sizes_.begin(),
                          group_sizes_.begin() + out.group_count_);
  for (const LexiconEntry& e : entries_) {
    if (e.tag < out.group_count_) out.entries_.push_back(e);
  }
  return out;
}

std::vector<LexiconEntry> GenerateConcatenatedDataset(
    const Lexicon& lexicon, size_t limit) {
  // Group entries by language, preserving order (determinism).
  std::vector<const LexiconEntry*> by_lang[3];
  auto lang_slot = [](Language lang) -> int {
    switch (lang) {
      case Language::kEnglish:
        return 0;
      case Language::kHindi:
        return 1;
      case Language::kTamil:
        return 2;
      default:
        return -1;
    }
  };
  for (const LexiconEntry& e : lexicon.entries()) {
    int slot = lang_slot(e.language);
    if (slot >= 0) by_lang[slot].push_back(&e);
  }

  // With a limit, restrict every language to the same first K base
  // names, chosen so 3·K·(K-1) ≈ limit. The per-language entry lists
  // are index-aligned (one entry per base name in lexicon order), so
  // the K-prefix keeps cross-language equivalents — and therefore
  // join pairs — inside the subset.
  size_t per_lang = by_lang[0].size();
  if (limit > 0) {
    size_t k = 2;
    while (k * (k - 1) * 3 < limit && k < per_lang) ++k;
    per_lang = std::min(per_lang, k);
  }

  std::vector<LexiconEntry> out;
  const int n_groups = lexicon.group_count();
  for (int slot = 0; slot < 3; ++slot) {
    const auto& entries = by_lang[slot];
    const size_t n = std::min(per_lang, entries.size());
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) {
        if (i == j) continue;
        LexiconEntry concat;
        concat.text = entries[i]->text + entries[j]->text;
        concat.language = entries[i]->language;
        concat.domain = entries[i]->domain;
        // Tag by the ordered pair of source tags so that equivalent
        // concatenations across languages share a tag.
        concat.tag = entries[i]->tag * n_groups + entries[j]->tag;
        concat.phonemes = entries[i]->phonemes;
        concat.phonemes.Append(entries[j]->phonemes);
        out.push_back(std::move(concat));
      }
    }
  }
  return out;
}

}  // namespace lexequal::dataset
