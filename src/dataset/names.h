// Embedded base name lists for the evaluation lexicon.
//
// The paper drew ~800 names from three sources: the Bangalore
// telephone directory (common Indian names), the San Francisco
// physicians directory (common American first and last names), and
// OED head-words for places/objects/chemicals. These lists are
// stand-ins assembled from the same three domains.

#ifndef LEXEQUAL_DATASET_NAMES_H_
#define LEXEQUAL_DATASET_NAMES_H_

#include <string_view>
#include <vector>

namespace lexequal::dataset {

/// Name domain, mirroring the paper's three sources.
enum class NameDomain {
  kIndian,    // Bangalore telephone directory
  kAmerican,  // SF physicians directory
  kGeneric,   // OED: places, objects, chemicals
};

std::string_view NameDomainName(NameDomain domain);

/// The base names of one domain (English/Latin spellings).
const std::vector<std::string_view>& BaseNames(NameDomain domain);

/// All three domains concatenated (the paper's ~800-name lexicon).
std::vector<std::string_view> AllBaseNames();

}  // namespace lexequal::dataset

#endif  // LEXEQUAL_DATASET_NAMES_H_
