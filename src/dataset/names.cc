#include "dataset/names.h"

namespace lexequal::dataset {

namespace {

// Common Indian given and family names (Bangalore directory domain).
const std::vector<std::string_view>& IndianNames() {
  static const std::vector<std::string_view>& names =
      *new std::vector<std::string_view>{
          "Aarav",      "Abdul",      "Abhishek",  "Aditi",
          "Aditya",     "Agarwal",    "Ajay",      "Akash",
          "Akhil",      "Amar",       "Ambika",    "Amit",
          "Amrita",     "Anand",      "Ananya",    "Anil",
          "Anita",      "Anjali",     "Ankit",     "Anu",
          "Anupam",     "Aravind",    "Arjun",     "Arun",
          "Asha",       "Ashok",      "Ashwin",    "Babu",
          "Balaji",     "Balakrishna", "Banerjee", "Bhagat",
          "Bharat",     "Bhaskar",    "Bhavani",   "Bose",
          "Chandra",    "Chandran",   "Chawla",    "Chidambaram",
          "Chitra",     "Damodar",    "Das",       "Deepa",
          "Deepak",     "Desai",      "Devi",      "Dhanraj",
          "Dilip",      "Dinesh",     "Divya",     "Durga",
          "Ganesh",     "Ganguly",    "Gauri",     "Gayatri",
          "Geetha",     "Girish",     "Gopal",     "Gopalan",
          "Govind",     "Gupta",      "Harish",    "Hema",
          "Indira",     "Indra",      "Iyer",      "Jagan",
          "Jagdish",    "Jain",       "Jaya",      "Jayant",
          "Jawaharlal", "Jeevan",     "Jyoti",     "Kala",
          "Kailash",    "Kamala",     "Kamal",     "Kannan",
          "Kapoor",     "Karthik",    "Karan",     "Kaveri",
          "Kavita",     "Keshav",     "Kiran",     "Kishore",
          "Krishna",    "Krishnan",   "Kulkarni",  "Kumar",
          "Kumari",     "Lakshmi",    "Lalita",    "Lata",
          "Lokesh",     "Madhav",     "Madhu",     "Mahadev",
          "Mahesh",     "Mala",       "Malini",    "Mani",
          "Manish",     "Manju",      "Manoj",     "Meena",
          "Meenakshi",  "Mehta",      "Menon",     "Mohan",
          "Mukesh",     "Mukherjee",  "Murali",    "Murthy",
          "Nagaraj",    "Naidu",      "Nair",      "Nanda",
          "Nandini",    "Narayan",    "Narayanan", "Naresh",
          "Natarajan",  "Naveen",     "Nehru",     "Nikhil",
          "Nirmala",    "Nitin",      "Padma",     "Padmini",
          "Pandey",     "Pankaj",     "Parvati",   "Patel",
          "Pillai",     "Prabhu",     "Pradeep",   "Prakash",
          "Pramod",     "Pranav",     "Prasad",    "Praveen",
          "Prem",       "Priya",      "Radha",     "Raghav",
          "Raghu",      "Rahul",      "Raj",       "Raja",
          "Rajan",      "Rajesh",     "Rajiv",     "Rakesh",
          "Rama",       "Ramesh",     "Ramaswamy", "Rangan",
          "Rani",       "Ranjan",     "Rao",       "Rashmi",
          "Ravi",       "Reddy",      "Rekha",     "Renuka",
          "Rohan",      "Rohit",      "Roy",       "Rukmini",
          "Sagar",      "Sahana",     "Sai",       "Sandeep",
          "Sanjay",     "Santosh",    "Sarala",    "Saraswati",
          "Sarita",     "Sarma",      "Sathish",   "Savitri",
          "Seetha",     "Sekhar",     "Selvam",    "Sen",
          "Shankar",    "Shanti",     "Sharma",    "Shashi",
          "Sheela",     "Shiva",      "Shobha",    "Shyam",
          "Singh",      "Sita",       "Sitaram",   "Sneha",
          "Soma",       "Sridhar",    "Srikanth",  "Srinivas",
          "Srinivasan", "Subbarao",   "Subhash",   "Subramaniam",
          "Sudha",      "Sudhir",     "Sujata",    "Sukumar",
          "Suman",      "Sumathi",    "Sundar",    "Sundaram",
          "Sunil",      "Sunita",     "Suresh",    "Surya",
          "Sushila",    "Swamy",      "Tagore",    "Tara",
          "Tewari",     "Thomas",     "Uday",      "Uma",
          "Umesh",      "Usha",       "Vani",      "Varma",
          "Vasant",     "Vasudev",    "Veena",     "Venkat",
          "Venkatesh",  "Venu",       "Vidya",     "Vijay",
          "Vijaya",     "Vikram",     "Vimala",    "Vinay",
          "Vinod",      "Vishnu",     "Vishwanath", "Vivek",
          "Yadav",      "Yamuna",     "Yash",      "Yogesh",
      };
  return names;
}

// Common American first and last names (SF physicians domain).
const std::vector<std::string_view>& AmericanNames() {
  static const std::vector<std::string_view>& names =
      *new std::vector<std::string_view>{
          "Aaron",     "Adams",     "Albert",    "Alice",
          "Allen",     "Amanda",    "Amy",       "Anderson",
          "Andrew",    "Angela",    "Ann",       "Anthony",
          "Arnold",    "Arthur",    "Austin",    "Bailey",
          "Baker",     "Barbara",   "Barnes",    "Bell",
          "Benjamin",  "Bennett",   "Betty",     "Beverly",
          "Brandon",   "Brian",     "Brooks",    "Bruce",
          "Bryant",    "Burton",    "Campbell",  "Carl",
          "Carol",     "Carter",    "Catherine", "Charles",
          "Cheryl",    "Christine", "Christopher", "Clark",
          "Cole",      "Collins",   "Cooper",    "Craig",
          "Crawford",  "Cynthia",   "Daniel",    "David",
          "Davis",     "Deborah",   "Dennis",    "Diana",
          "Donald",    "Donna",     "Dorothy",   "Douglas",
          "Duncan",    "Edward",    "Eleanor",   "Elizabeth",
          "Ellis",     "Emily",     "Eric",      "Eugene",
          "Evans",     "Fisher",    "Foster",    "Frank",
          "Franklin",  "Fraser",    "Frederick", "Garcia",
          "Gary",      "George",    "Gerald",    "Gibson",
          "Gilbert",   "Gloria",    "Gordon",    "Graham",
          "Grant",     "Gray",      "Gregory",   "Griffin",
          "Hamilton",  "Harold",    "Harper",    "Harris",
          "Harrison",  "Harvey",    "Heather",   "Helen",
          "Henderson", "Henry",     "Herbert",   "Howard",
          "Hudson",    "Hughes",    "Hunter",    "Irene",
          "Jack",      "Jacob",     "James",     "Janet",
          "Jason",     "Jeffrey",   "Jennifer",  "Jessica",
          "Joan",      "John",      "Johnson",   "Jonathan",
          "Jordan",    "Joseph",    "Joshua",    "Joyce",
          "Judith",    "Julia",     "Justin",    "Karen",
          "Katherine", "Kathleen",  "Keith",     "Kelly",
          "Kennedy",   "Kenneth",   "Kevin",     "Kimberly",
          "Kyle",      "Larry",     "Laura",     "Lawrence",
          "Lee",       "Leonard",   "Lewis",     "Linda",
          "Lisa",      "Logan",     "Louis",     "Lucas",
          "Margaret",  "Maria",     "Marie",     "Marilyn",
          "Marion",    "Mark",      "Marshall",  "Martha",
          "Martin",    "Mary",      "Mason",     "Matthew",
          "Maxwell",   "Melissa",   "Michael",   "Michelle",
          "Miller",    "Mitchell",  "Monroe",    "Morgan",
          "Morris",    "Murphy",    "Murray",    "Nancy",
          "Nathan",    "Nelson",    "Newton",    "Nicholas",
          "Nicole",    "Norman",    "Oliver",    "Olson",
          "Pamela",    "Parker",    "Patricia",  "Patrick",
          "Paul",      "Pearson",   "Peter",     "Phillips",
          "Porter",    "Rachel",    "Ralph",     "Raymond",
          "Rebecca",   "Reed",      "Reynolds",  "Richard",
          "Riley",     "Robert",    "Roberts",   "Robinson",
          "Rodriguez", "Roger",     "Ronald",    "Rose",
          "Ross",      "Russell",   "Ruth",      "Ryan",
          "Samuel",    "Sandra",    "Sarah",     "Scott",
          "Sharon",    "Shirley",   "Simon",     "Smith",
          "Spencer",   "Stanley",   "Stephanie", "Stephen",
          "Stewart",   "Susan",     "Sutton",    "Taylor",
          "Teresa",    "Theodore",  "Thompson",  "Timothy",
          "Tucker",    "Turner",    "Tyler",     "Vernon",
          "Victor",    "Victoria",  "Vincent",   "Virginia",
          "Walker",    "Wallace",   "Walter",    "Warren",
          "Watson",    "Wayne",     "Webster",   "Wesley",
          "William",   "Williams",  "Wilson",    "Winston",
          "Wright",    "Young",     "Zachary",   "Zimmerman",
      };
  return names;
}

// Places, objects, chemicals (OED domain).
const std::vector<std::string_view>& GenericNames() {
  static const std::vector<std::string_view>& names =
      *new std::vector<std::string_view>{
          // Places.
          "Alabama",    "Alaska",     "Amazon",     "America",
          "Arabia",     "Arizona",    "Athens",     "Atlanta",
          "Australia",  "Baghdad",    "Bangalore",  "Barcelona",
          "Beijing",    "Bengal",     "Berlin",     "Bombay",
          "Boston",     "Brazil",     "Britain",    "Burma",
          "Cairo",      "Calcutta",   "California", "Canada",
          "Canberra",   "Chicago",    "China",      "Colombo",
          "Dakota",     "Dallas",     "Delhi",      "Denver",
          "Dublin",     "Egypt",      "England",    "Florida",
          "France",     "Geneva",     "Georgia",    "Germany",
          "Glasgow",    "Hamburg",    "Havana",     "Houston",
          "India",      "Indiana",    "Ireland",    "Israel",
          "Italy",      "Jakarta",    "Japan",      "Kashmir",
          "Kenya",      "Kerala",     "Lahore",     "Lisbon",
          "London",     "Madras",     "Madrid",     "Malaysia",
          "Manila",     "Mexico",     "Michigan",   "Montreal",
          "Moscow",     "Mysore",     "Nairobi",    "Nevada",
          "Newark",     "Niagara",    "Nigeria",    "Norway",
          "Ohio",       "Ontario",    "Oregon",     "Oslo",
          "Ottawa",     "Oxford",     "Panama",     "Paris",
          "Persia",     "Peru",       "Poland",     "Portugal",
          "Punjab",     "Quebec",     "Rangoon",    "Russia",
          "Sahara",     "Scotland",   "Seattle",    "Siberia",
          "Singapore",  "Spain",      "Sweden",     "Sydney",
          "Tehran",     "Texas",      "Tibet",      "Tokyo",
          "Toronto",    "Turkey",     "Vienna",     "Virginia",
          "Warsaw",     "Washington", "Wisconsin",  "Zurich",
          // Objects.
          "Anchor",     "Apple",      "Arrow",      "Basket",
          "Bell",       "Blanket",    "Bottle",     "Bridge",
          "Bucket",     "Butter",     "Button",     "Camera",
          "Candle",     "Carpet",     "Castle",     "Chair",
          "Chimney",    "Clock",      "Copper",     "Corner",
          "Cotton",     "Cradle",     "Curtain",    "Diamond",
          "Engine",     "Feather",    "Fiddle",     "Finger",
          "Flower",     "Garden",     "Guitar",     "Hammer",
          "Harbor",     "Helmet",     "Jacket",     "Kettle",
          "Ladder",     "Lantern",    "Leather",    "Lemon",
          "Marble",     "Market",     "Meadow",     "Mirror",
          "Mountain",   "Needle",     "Orange",     "Paper",
          "Pencil",     "Pepper",     "Pillow",     "Pistol",
          "Pocket",     "Ribbon",     "River",      "Saddle",
          "Shovel",     "Silver",     "Spoon",      "Sugar",
          "Table",      "Temple",     "Thunder",    "Timber",
          "Tunnel",     "Velvet",     "Violin",     "Wagon",
          "Water",      "Window",     "Winter",     "Zipper",
          // Chemicals.
          "Acetone",    "Alcohol",    "Ammonia",    "Argon",
          "Arsenic",    "Barium",     "Benzene",    "Bromine",
          "Calcium",    "Carbon",     "Cesium",     "Chlorine",
          "Chromium",   "Cobalt",     "Ethanol",    "Fluorine",
          "Gallium",    "Glucose",    "Glycerin",   "Helium",
          "Hydrogen",   "Iodine",     "Iridium",    "Krypton",
          "Lithium",    "Magnesium",  "Manganese",  "Mercury",
          "Methane",    "Neon",       "Nickel",     "Nitrogen",
          "Oxygen",     "Phosphorus", "Platinum",   "Potassium",
          "Propane",    "Radium",     "Radon",      "Silicon",
          "Sodium",     "Sulfur",     "Titanium",   "Uranium",
          "Vanadium",   "Xenon",      "Zinc",       "Zirconium",
      };
  return names;
}

}  // namespace

std::string_view NameDomainName(NameDomain domain) {
  switch (domain) {
    case NameDomain::kIndian:
      return "Indian";
    case NameDomain::kAmerican:
      return "American";
    case NameDomain::kGeneric:
      return "Generic";
  }
  return "Unknown";
}

const std::vector<std::string_view>& BaseNames(NameDomain domain) {
  switch (domain) {
    case NameDomain::kIndian:
      return IndianNames();
    case NameDomain::kAmerican:
      return AmericanNames();
    case NameDomain::kGeneric:
      return GenericNames();
  }
  return GenericNames();
}

std::vector<std::string_view> AllBaseNames() {
  std::vector<std::string_view> out;
  for (NameDomain d : {NameDomain::kIndian, NameDomain::kAmerican,
                       NameDomain::kGeneric}) {
    const auto& names = BaseNames(d);
    out.insert(out.end(), names.begin(), names.end());
  }
  return out;
}

}  // namespace lexequal::dataset
