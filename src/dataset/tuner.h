// Automatic parameter selection (the paper's future work: "techniques
// for automatically generating the optimal matching parameters, based
// on a given dataset, its domain and a training set").
//
// Given a tagged training lexicon, the tuner grid-searches the
// (threshold, intra-cluster cost) space and returns the setting that
// maximizes the chosen quality objective.

#ifndef LEXEQUAL_DATASET_TUNER_H_
#define LEXEQUAL_DATASET_TUNER_H_

#include <vector>

#include "dataset/metrics.h"

namespace lexequal::dataset {

/// What the tuner optimizes.
enum class TuneObjective {
  kF1,           // harmonic mean of recall and precision
  kRecallFirst,  // max recall, precision as tie-break (LASA-style)
  kPrecisionFirst,
};

struct TuneResult {
  match::LexEqualOptions options;
  QualityResult quality;
  double objective_value = 0;
  /// Every evaluated grid point, for reporting.
  std::vector<QualityResult> grid;
};

/// Grid ranges; defaults cover the paper's experimental space.
struct TuneGrid {
  std::vector<double> thresholds = {0.0,  0.05, 0.1,  0.15, 0.2, 0.25,
                                    0.3,  0.35, 0.4,  0.5};
  std::vector<double> costs = {0.0, 0.125, 0.25, 0.375, 0.5, 0.75, 1.0};
};

/// Exhaustive grid search over the training lexicon.
TuneResult TuneParameters(const Lexicon& training,
                          TuneObjective objective,
                          const TuneGrid& grid = TuneGrid());

/// Objective value of one quality point.
double ObjectiveValue(TuneObjective objective, const QualityResult& q);

}  // namespace lexequal::dataset

#endif  // LEXEQUAL_DATASET_TUNER_H_
