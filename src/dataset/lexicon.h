// The tagged multiscript lexicon (paper §4.1) and its synthetic
// enlargement (paper §5).

#ifndef LEXEQUAL_DATASET_LEXICON_H_
#define LEXEQUAL_DATASET_LEXICON_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "dataset/names.h"
#include "phonetic/phoneme_string.h"
#include "text/language.h"

namespace lexequal::dataset {

/// One lexicon entry: a name in one script, its phonemic form, and
/// the tag number shared by all phonetically equivalent entries.
struct LexiconEntry {
  std::string text;            // UTF-8 in the entry's script
  text::Language language;
  NameDomain domain;
  int tag;                     // equivalence-group id
  phonetic::PhonemeString phonemes;
};

/// A tagged multiscript lexicon. Built deterministically, so every
/// run of every bench sees identical data.
class Lexicon {
 public:
  /// Builds the trilingual lexicon: every base English name plus its
  /// Devanagari and Tamil forms generated through the phoneme space
  /// (DESIGN.md §2), each group sharing one tag number. Duplicate
  /// base names across domains are dropped (first domain wins).
  static Result<Lexicon> BuildTrilingual() {
    return BuildMultiscript(false);
  }

  /// Same, optionally adding a Greek form per group (the paper's
  /// Fig. 2 language set: English, Hindi, Tamil, Greek).
  static Result<Lexicon> BuildMultiscript(bool include_greek);

  const std::vector<LexiconEntry>& entries() const { return entries_; }

  /// Number of equivalence groups (n in the paper's recall formula).
  int group_count() const { return group_count_; }

  /// Group sizes n_i, indexed by tag.
  const std::vector<int>& group_sizes() const { return group_sizes_; }

  /// Average lexicographic length (code points) and phonemic length.
  double AverageTextLength() const;
  double AveragePhonemeLength() const;

  /// A training subset: the first `n_groups` equivalence groups (used
  /// by the parameter tuner and fast tests). Tags are preserved.
  Lexicon Sample(int n_groups) const;

 private:
  std::vector<LexiconEntry> entries_;
  int group_count_ = 0;
  std::vector<int> group_sizes_;
};

/// The enlarged performance dataset (paper §5): "we concatenated each
/// string with all remaining strings within a given language",
/// yielding about 200,000 names. `limit` (0 = all) approximately caps
/// the output for laptop-scale runs: every language is restricted to
/// the same prefix of base names so that cross-language equivalents
/// stay inside the subset (the result size is the nearest
/// 3*K*(K-1) >= limit).
std::vector<LexiconEntry> GenerateConcatenatedDataset(
    const Lexicon& lexicon, size_t limit = 0);

}  // namespace lexequal::dataset

#endif  // LEXEQUAL_DATASET_LEXICON_H_
