#include "dataset/metrics.h"

#include <algorithm>

#include "match/edit_distance.h"

namespace lexequal::dataset {

QualityResult EvaluateMatchQuality(const Lexicon& lexicon,
                                   const match::LexEqualOptions& options) {
  QualityResult result;
  result.threshold = options.threshold;
  result.intra_cluster_cost = options.intra_cluster_cost;

  for (int n : lexicon.group_sizes()) {
    result.ideal_matches +=
        static_cast<uint64_t>(n) * (n - 1) / 2;  // C(n_i, 2)
  }

  match::LexEqualMatcher matcher(options);
  const auto& entries = lexicon.entries();
  for (size_t i = 0; i < entries.size(); ++i) {
    for (size_t j = i + 1; j < entries.size(); ++j) {
      if (!matcher.MatchPhonemes(entries[i].phonemes,
                                 entries[j].phonemes)) {
        continue;
      }
      ++result.reported_matches;
      if (entries[i].tag == entries[j].tag) ++result.correct_matches;
    }
  }
  result.recall =
      result.ideal_matches == 0
          ? 1.0
          : static_cast<double>(result.correct_matches) /
                static_cast<double>(result.ideal_matches);
  result.precision =
      result.reported_matches == 0
          ? 1.0
          : static_cast<double>(result.correct_matches) /
                static_cast<double>(result.reported_matches);
  return result;
}

std::vector<PairwiseQuality> EvaluatePairwiseRecall(
    const Lexicon& lexicon, const match::LexEqualOptions& options) {
  using text::Language;
  const Language langs[] = {Language::kEnglish, Language::kHindi,
                            Language::kTamil};
  std::vector<PairwiseQuality> out;
  for (int i = 0; i < 3; ++i) {
    for (int j = i; j < 3; ++j) {
      out.push_back({langs[i], langs[j], 0, 0, 0});
    }
  }
  auto slot = [&](Language a, Language b) -> PairwiseQuality* {
    for (PairwiseQuality& p : out) {
      if ((p.a == a && p.b == b) || (p.a == b && p.b == a)) return &p;
    }
    return nullptr;
  };

  match::LexEqualMatcher matcher(options);
  const auto& entries = lexicon.entries();
  for (size_t i = 0; i < entries.size(); ++i) {
    for (size_t j = i + 1; j < entries.size(); ++j) {
      if (entries[i].tag != entries[j].tag) continue;
      PairwiseQuality* p =
          slot(entries[i].language, entries[j].language);
      if (p == nullptr) continue;
      ++p->ideal;
      if (matcher.MatchPhonemes(entries[i].phonemes,
                                entries[j].phonemes)) {
        ++p->correct;
      }
    }
  }
  for (PairwiseQuality& p : out) {
    p.recall = p.ideal == 0
                   ? 1.0
                   : static_cast<double>(p.correct) /
                         static_cast<double>(p.ideal);
  }
  return out;
}

QualityResult EvaluateMatchQualityWithCost(
    const Lexicon& lexicon, double threshold,
    const match::CostModel& costs) {
  QualityResult result;
  result.threshold = threshold;

  for (int n : lexicon.group_sizes()) {
    result.ideal_matches +=
        static_cast<uint64_t>(n) * (n - 1) / 2;
  }
  const auto& entries = lexicon.entries();
  for (size_t i = 0; i < entries.size(); ++i) {
    for (size_t j = i + 1; j < entries.size(); ++j) {
      const double bound =
          threshold * static_cast<double>(std::min(
                          entries[i].phonemes.size(),
                          entries[j].phonemes.size()));
      if (match::BoundedEditDistance(entries[i].phonemes,
                                     entries[j].phonemes, costs,
                                     bound) > bound) {
        continue;
      }
      ++result.reported_matches;
      if (entries[i].tag == entries[j].tag) ++result.correct_matches;
    }
  }
  result.recall =
      result.ideal_matches == 0
          ? 1.0
          : static_cast<double>(result.correct_matches) /
                static_cast<double>(result.ideal_matches);
  result.precision =
      result.reported_matches == 0
          ? 1.0
          : static_cast<double>(result.correct_matches) /
                static_cast<double>(result.reported_matches);
  return result;
}

}  // namespace lexequal::dataset
