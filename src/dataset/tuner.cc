#include "dataset/tuner.h"

namespace lexequal::dataset {

double ObjectiveValue(TuneObjective objective, const QualityResult& q) {
  switch (objective) {
    case TuneObjective::kF1: {
      const double denom = q.recall + q.precision;
      return denom == 0 ? 0 : 2.0 * q.recall * q.precision / denom;
    }
    case TuneObjective::kRecallFirst:
      return q.recall + q.precision / 1000.0;
    case TuneObjective::kPrecisionFirst:
      return q.precision + q.recall / 1000.0;
  }
  return 0;
}

TuneResult TuneParameters(const Lexicon& training,
                          TuneObjective objective, const TuneGrid& grid) {
  TuneResult best;
  best.objective_value = -1;
  for (double cost : grid.costs) {
    for (double threshold : grid.thresholds) {
      match::LexEqualOptions options;
      options.threshold = threshold;
      options.intra_cluster_cost = cost;
      QualityResult q = EvaluateMatchQuality(training, options);
      best.grid.push_back(q);
      const double value = ObjectiveValue(objective, q);
      if (value > best.objective_value) {
        best.objective_value = value;
        best.options = options;
        best.quality = q;
      }
    }
  }
  return best;
}

}  // namespace lexequal::dataset
