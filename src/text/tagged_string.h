// TaggedString: a UTF-8 text value tagged with its language — the
// storage format the paper assumes for multilingual attributes
// (Unicode "with each attribute value tagged with its language").

#ifndef LEXEQUAL_TEXT_TAGGED_STRING_H_
#define LEXEQUAL_TEXT_TAGGED_STRING_H_

#include <string>
#include <string_view>
#include <utility>

#include "text/language.h"

namespace lexequal::text {

/// A language-tagged Unicode string. When constructed without an
/// explicit language the tag is inferred from the dominant script.
class TaggedString {
 public:
  TaggedString() : language_(Language::kUnknown) {}

  TaggedString(std::string text, Language language)
      : text_(std::move(text)), language_(language) {}

  /// Infers the language from the dominant script of `text`.
  static TaggedString WithDetectedLanguage(std::string text) {
    Language lang = DefaultLanguageForScript(DetectScript(text));
    return TaggedString(std::move(text), lang);
  }

  const std::string& text() const { return text_; }
  Language language() const { return language_; }
  Script script() const { return DetectScript(text_); }

  /// Number of Unicode code points (the paper's "character length").
  size_t CodePointLength() const { return CodePointCount(text_); }

  bool empty() const { return text_.empty(); }

  friend bool operator==(const TaggedString& a, const TaggedString& b) {
    return a.language_ == b.language_ && a.text_ == b.text_;
  }

 private:
  std::string text_;
  Language language_;
};

}  // namespace lexequal::text

#endif  // LEXEQUAL_TEXT_TAGGED_STRING_H_
