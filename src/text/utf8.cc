#include "text/utf8.h"

namespace lexequal::text {

namespace {

bool IsContinuation(uint8_t b) { return (b & 0xC0) == 0x80; }

// Decodes one sequence; returns kReplacementChar and consumes one byte
// on malformation. `strict_ok` reports whether the sequence was valid.
CodePoint DecodeOne(std::string_view s, size_t* pos, bool* strict_ok) {
  *strict_ok = true;
  const size_t n = s.size();
  const size_t i = *pos;
  const uint8_t b0 = static_cast<uint8_t>(s[i]);

  if (b0 < 0x80) {
    *pos = i + 1;
    return b0;
  }

  auto fail = [&]() -> CodePoint {
    *strict_ok = false;
    *pos = i + 1;
    return kReplacementChar;
  };

  if (b0 < 0xC2) return fail();  // continuation byte or overlong lead

  if (b0 < 0xE0) {  // two bytes
    if (i + 1 >= n || !IsContinuation(static_cast<uint8_t>(s[i + 1]))) {
      return fail();
    }
    CodePoint cp = (static_cast<CodePoint>(b0 & 0x1F) << 6) |
                   (static_cast<uint8_t>(s[i + 1]) & 0x3F);
    *pos = i + 2;
    return cp;
  }

  if (b0 < 0xF0) {  // three bytes
    if (i + 2 >= n || !IsContinuation(static_cast<uint8_t>(s[i + 1])) ||
        !IsContinuation(static_cast<uint8_t>(s[i + 2]))) {
      return fail();
    }
    CodePoint cp = (static_cast<CodePoint>(b0 & 0x0F) << 12) |
                   ((static_cast<uint8_t>(s[i + 1]) & 0x3F) << 6) |
                   (static_cast<uint8_t>(s[i + 2]) & 0x3F);
    if (cp < 0x800) return fail();                    // overlong
    if (cp >= 0xD800 && cp <= 0xDFFF) return fail();  // surrogate
    *pos = i + 3;
    return cp;
  }

  if (b0 < 0xF5) {  // four bytes
    if (i + 3 >= n || !IsContinuation(static_cast<uint8_t>(s[i + 1])) ||
        !IsContinuation(static_cast<uint8_t>(s[i + 2])) ||
        !IsContinuation(static_cast<uint8_t>(s[i + 3]))) {
      return fail();
    }
    CodePoint cp = (static_cast<CodePoint>(b0 & 0x07) << 18) |
                   ((static_cast<uint8_t>(s[i + 1]) & 0x3F) << 12) |
                   ((static_cast<uint8_t>(s[i + 2]) & 0x3F) << 6) |
                   (static_cast<uint8_t>(s[i + 3]) & 0x3F);
    if (cp < 0x10000 || cp > 0x10FFFF) return fail();  // overlong / range
    *pos = i + 4;
    return cp;
  }

  return fail();
}

}  // namespace

void AppendUtf8(CodePoint cp, std::string* out) {
  if ((cp >= 0xD800 && cp <= 0xDFFF) || cp > 0x10FFFF) {
    cp = kReplacementChar;
  }
  if (cp < 0x80) {
    out->push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp < 0x10000) {
    out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
}

std::string EncodeUtf8(CodePoint cp) {
  std::string out;
  AppendUtf8(cp, &out);
  return out;
}

std::string EncodeUtf8(const std::vector<CodePoint>& cps) {
  std::string out;
  out.reserve(cps.size());
  for (CodePoint cp : cps) AppendUtf8(cp, &out);
  return out;
}

CodePoint DecodeUtf8(std::string_view s, size_t* pos) {
  bool ok;
  return DecodeOne(s, pos, &ok);
}

std::vector<CodePoint> DecodeUtf8(std::string_view s) {
  std::vector<CodePoint> out;
  out.reserve(s.size());
  size_t pos = 0;
  while (pos < s.size()) {
    bool ok;
    out.push_back(DecodeOne(s, &pos, &ok));
  }
  return out;
}

Result<std::vector<CodePoint>> DecodeUtf8Strict(std::string_view s) {
  std::vector<CodePoint> out;
  out.reserve(s.size());
  size_t pos = 0;
  while (pos < s.size()) {
    bool ok;
    size_t at = pos;
    out.push_back(DecodeOne(s, &pos, &ok));
    if (!ok) {
      return Status::InvalidArgument("malformed UTF-8 at byte offset " +
                                     std::to_string(at));
    }
  }
  return out;
}

bool IsValidUtf8(std::string_view s) {
  size_t pos = 0;
  while (pos < s.size()) {
    bool ok;
    DecodeOne(s, &pos, &ok);
    if (!ok) return false;
  }
  return true;
}

size_t CodePointCount(std::string_view s) {
  size_t pos = 0;
  size_t count = 0;
  while (pos < s.size()) {
    bool ok;
    DecodeOne(s, &pos, &ok);
    ++count;
  }
  return count;
}

}  // namespace lexequal::text
