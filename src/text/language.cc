#include "text/language.h"

#include "common/string_util.h"

namespace lexequal::text {

std::string_view LanguageName(Language lang) {
  switch (lang) {
    case Language::kUnknown:
      return "Unknown";
    case Language::kAny:
      return "*";
    case Language::kEnglish:
      return "English";
    case Language::kHindi:
      return "Hindi";
    case Language::kTamil:
      return "Tamil";
    case Language::kGreek:
      return "Greek";
    case Language::kFrench:
      return "French";
    case Language::kSpanish:
      return "Spanish";
    case Language::kArabic:
      return "Arabic";
    case Language::kJapanese:
      return "Japanese";
    case Language::kRussian:
      return "Russian";
    case Language::kKorean:
      return "Korean";
  }
  return "Unknown";
}

Result<Language> ParseLanguage(std::string_view name) {
  const std::string lower = AsciiToLower(StripAsciiWhitespace(name));
  if (lower == "*" || lower == "any") return Language::kAny;
  if (lower == "english") return Language::kEnglish;
  if (lower == "hindi") return Language::kHindi;
  if (lower == "tamil") return Language::kTamil;
  if (lower == "greek") return Language::kGreek;
  if (lower == "french") return Language::kFrench;
  if (lower == "spanish") return Language::kSpanish;
  if (lower == "arabic") return Language::kArabic;
  if (lower == "japanese") return Language::kJapanese;
  if (lower == "russian") return Language::kRussian;
  if (lower == "korean") return Language::kKorean;
  return Status::NotFound("unknown language: '" + std::string(name) + "'");
}

std::string_view ScriptName(Script script) {
  switch (script) {
    case Script::kUnknown:
      return "Unknown";
    case Script::kLatin:
      return "Latin";
    case Script::kDevanagari:
      return "Devanagari";
    case Script::kTamil:
      return "Tamil";
    case Script::kGreek:
      return "Greek";
    case Script::kArabic:
      return "Arabic";
    case Script::kCyrillic:
      return "Cyrillic";
    case Script::kHangul:
      return "Hangul";
    case Script::kCjk:
      return "CJK";
    case Script::kIpa:
      return "IPA";
  }
  return "Unknown";
}

Script ScriptOfCodePoint(CodePoint cp) {
  // Unicode block ranges (The Unicode Standard; only the blocks the
  // system stores). Order matters: IPA extensions sit inside the range
  // that a naive "Latin" test might claim.
  if (cp >= 0x0250 && cp <= 0x02AF) return Script::kIpa;  // IPA Extensions
  if (cp >= 0x02B0 && cp <= 0x02FF) return Script::kIpa;  // Spacing modifiers
  if ((cp >= 0x0041 && cp <= 0x005A) || (cp >= 0x0061 && cp <= 0x007A) ||
      (cp >= 0x00C0 && cp <= 0x024F)) {
    return Script::kLatin;  // Basic Latin letters + Latin-1/Extended
  }
  if ((cp >= 0x0370 && cp <= 0x03FF) || (cp >= 0x1F00 && cp <= 0x1FFF)) {
    return Script::kGreek;  // Greek and Coptic + Greek Extended
  }
  if ((cp >= 0x0600 && cp <= 0x06FF) || (cp >= 0x0750 && cp <= 0x077F)) {
    return Script::kArabic;
  }
  if ((cp >= 0x0400 && cp <= 0x04FF) || (cp >= 0x0500 && cp <= 0x052F)) {
    return Script::kCyrillic;
  }
  if ((cp >= 0xAC00 && cp <= 0xD7AF) ||  // Hangul syllables
      (cp >= 0x1100 && cp <= 0x11FF) ||  // Hangul jamo
      (cp >= 0x3130 && cp <= 0x318F)) {  // compatibility jamo
    return Script::kHangul;
  }
  if (cp >= 0x0900 && cp <= 0x097F) return Script::kDevanagari;
  if (cp >= 0x0B80 && cp <= 0x0BFF) return Script::kTamil;
  if ((cp >= 0x3040 && cp <= 0x30FF) ||  // Hiragana + Katakana
      (cp >= 0x4E00 && cp <= 0x9FFF) ||  // CJK Unified Ideographs
      (cp >= 0x3400 && cp <= 0x4DBF)) {
    return Script::kCjk;
  }
  return Script::kUnknown;
}

Script DetectScript(std::string_view utf8) {
  // Counts per script; ASCII digits/punct/space are "common" (skipped).
  int counts[11] = {0};
  size_t pos = 0;
  while (pos < utf8.size()) {
    CodePoint cp = DecodeUtf8(utf8, &pos);
    if (cp < 0x80 && !((cp >= 'A' && cp <= 'Z') || (cp >= 'a' && cp <= 'z'))) {
      continue;  // common: space, digits, punctuation
    }
    Script s = ScriptOfCodePoint(cp);
    counts[static_cast<int>(s)]++;
  }
  int best = 0;
  int best_count = 0;
  for (int i = 1; i < 11; ++i) {  // skip kUnknown at index 0
    if (counts[i] > best_count) {
      best = i;
      best_count = counts[i];
    }
  }
  return best_count > 0 ? static_cast<Script>(best) : Script::kUnknown;
}

Language DefaultLanguageForScript(Script script) {
  switch (script) {
    case Script::kLatin:
      return Language::kEnglish;
    case Script::kDevanagari:
      return Language::kHindi;
    case Script::kTamil:
      return Language::kTamil;
    case Script::kGreek:
      return Language::kGreek;
    case Script::kArabic:
      return Language::kArabic;
    case Script::kCjk:
      return Language::kJapanese;
    case Script::kCyrillic:
      return Language::kRussian;
    case Script::kHangul:
      return Language::kKorean;
    default:
      return Language::kUnknown;
  }
}

Script ScriptOfLanguage(Language lang) {
  switch (lang) {
    case Language::kEnglish:
    case Language::kFrench:
    case Language::kSpanish:
      return Script::kLatin;
    case Language::kHindi:
      return Script::kDevanagari;
    case Language::kTamil:
      return Script::kTamil;
    case Language::kGreek:
      return Script::kGreek;
    case Language::kArabic:
      return Script::kArabic;
    case Language::kJapanese:
      return Script::kCjk;
    case Language::kRussian:
      return Script::kCyrillic;
    case Language::kKorean:
      return Script::kHangul;
    default:
      return Script::kUnknown;
  }
}

}  // namespace lexequal::text
