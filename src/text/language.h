// Language and Script registries.
//
// The paper assumes each stored text value is tagged with its language
// (footnote 1). Language drives the choice of G2P converter; Script is
// the Unicode writing system, derivable from the code points, and is
// used for automatic language identification of untagged data.

#ifndef LEXEQUAL_TEXT_LANGUAGE_H_
#define LEXEQUAL_TEXT_LANGUAGE_H_

#include <cstdint>
#include <string_view>

#include "common/result.h"
#include "text/utf8.h"

namespace lexequal::text {

/// Writing systems relevant to the paper's evaluation plus those used
/// in its motivating examples (Figure 1).
enum class Script : uint8_t {
  kUnknown = 0,
  kLatin,
  kDevanagari,
  kTamil,
  kGreek,
  kArabic,
  kCyrillic,
  kHangul,
  kCjk,
  kIpa,  // IPA extensions block (stored phoneme strings)
};

/// Languages known to the system. kAny is the query-side wildcard
/// ("inlanguages { * }").
enum class Language : uint8_t {
  kUnknown = 0,
  kAny,
  kEnglish,
  kHindi,
  kTamil,
  kGreek,
  kFrench,
  kSpanish,
  kArabic,
  kJapanese,
  kRussian,
  kKorean,
};

/// Human-readable language name ("English", "Hindi", ...).
std::string_view LanguageName(Language lang);

/// Parses a language name (case-insensitive ASCII); "*" yields kAny.
Result<Language> ParseLanguage(std::string_view name);

/// Human-readable script name.
std::string_view ScriptName(Script script);

/// Script of a single code point, by Unicode block range.
Script ScriptOfCodePoint(CodePoint cp);

/// Dominant script of a UTF-8 string: the script of the majority of its
/// non-common code points (ASCII punctuation/digits/space are "common"
/// and ignored); kUnknown for empty or all-common strings.
Script DetectScript(std::string_view utf8);

/// Default language for a script, used to auto-tag untagged data
/// (Section 2.1 notes this identification is heuristic; e.g. Latin
/// script defaults to English).
Language DefaultLanguageForScript(Script script);

/// Script a language is conventionally written in.
Script ScriptOfLanguage(Language lang);

}  // namespace lexequal::text

#endif  // LEXEQUAL_TEXT_LANGUAGE_H_
