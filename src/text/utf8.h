// Minimal UTF-8 layer: decoding, encoding, validation, and code-point
// iteration. This is the Unicode substrate the paper obtains from the
// host DBMS; we implement exactly the subset the pipeline uses.

#ifndef LEXEQUAL_TEXT_UTF8_H_
#define LEXEQUAL_TEXT_UTF8_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace lexequal::text {

/// A Unicode code point (scalar value, U+0000..U+10FFFF minus surrogates).
using CodePoint = uint32_t;

/// Value returned by decoding when the input is malformed.
inline constexpr CodePoint kReplacementChar = 0xFFFD;

/// Appends the UTF-8 encoding of `cp` to `out`. Invalid scalar values
/// (surrogates, > U+10FFFF) encode the replacement character.
void AppendUtf8(CodePoint cp, std::string* out);

/// Encodes a single code point as UTF-8.
std::string EncodeUtf8(CodePoint cp);

/// Encodes a sequence of code points as UTF-8.
std::string EncodeUtf8(const std::vector<CodePoint>& cps);

/// Decodes one code point starting at `s[pos]`. Advances `*pos` past the
/// consumed bytes. Malformed sequences consume one byte and yield
/// kReplacementChar.
CodePoint DecodeUtf8(std::string_view s, size_t* pos);

/// Decodes an entire UTF-8 string into code points (replacement
/// characters for malformed byte sequences).
std::vector<CodePoint> DecodeUtf8(std::string_view s);

/// Strict decode: returns InvalidArgument on any malformed sequence.
Result<std::vector<CodePoint>> DecodeUtf8Strict(std::string_view s);

/// True if `s` is well-formed UTF-8 (no overlongs, no surrogates,
/// in-range scalar values).
bool IsValidUtf8(std::string_view s);

/// Number of code points in `s` (malformed bytes count as one each).
size_t CodePointCount(std::string_view s);

}  // namespace lexequal::text

#endif  // LEXEQUAL_TEXT_UTF8_H_
