// Kernel speedup bench: the table-driven MatchKernel against the
// reference virtual-dispatch DP (edit_distance.h) on the Table-1
// naive-scan verification workload — every (probe, candidate) pair of
// 10 probes against the generated dataset, decided at threshold 0.25.
//
// Arms, one per kernel family/backend:
//   levenshtein      — unit costs, bit-parallel path (target >= 3x
//                      over the reference DP)
//   clustered-banded — paper default (intra 0.25, weak discount) with
//                      the SIMD lane path disabled: the scalar banded
//                      DP baseline (target >= 1.5x)
//   clustered-simd   — same model, lane backend auto-resolved; the
//                      >= 3x target is enforced only on machines whose
//                      resolved backend is a real vector ISA
//                      (avx2/neon), reported-only elsewhere
//   clustered-scalar — same model through the portable scalar
//                      emulation backend, report-only (it exists for
//                      parity coverage, not speed)
//
// Arms are interleaved per repetition so clock drift and cache warmth
// cancel out, and each repetition cross-checks that both
// implementations accept exactly the same pairs (the kernel is exact,
// not approximate — tests/match_kernel_test.cc proves bit-equality
// per backend).
//
// Usage:
//   ./bench/kernel_speedup               full run, writes BENCH_kernel.json
//   ./bench/kernel_speedup --smoke       tiny dataset + 1 rep (ctest)
//   ./bench/kernel_speedup --simd-smoke  mid-size banded-vs-simd parity/
//                                        speedup gate (kernel_simd_smoke)
//   ./bench/kernel_speedup --json <path> JSON output path

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "dataset/lexicon.h"
#include "match/edit_distance.h"
#include "match/match_kernel.h"
#include "match/simd_dp.h"
#include "phonetic/cluster.h"

using namespace lexequal;
using namespace lexequal::bench;
using match::CompiledCostModel;
using match::CostModel;
using match::DpArena;
using match::MatchKernel;
using match::MatchKernelOptions;
using match::SimdBackend;
using phonetic::PhonemeString;

namespace {

constexpr double kThreshold = 0.25;
constexpr size_t kProbes = 10;

struct Arm {
  std::string name;
  std::unique_ptr<CostModel> model;
  MatchKernelOptions opts;
  double target_speedup;  // 0 = report-only
  double legacy_ms = 0;
  double kernel_ms = 0;
  uint64_t pairs = 0;
  uint64_t matched = 0;  // parity-checked across implementations
  match::KernelCounters counters;

  double Speedup() const {
    return kernel_ms > 0 ? legacy_ms / kernel_ms : 0.0;
  }
  // The backend the arm's kernel actually runs with.
  SimdBackend ResolvedBackend() const {
    return match::ResolveSimdBackend(opts.simd_backend);
  }
  // Lanes allocated per lane-path pair (width * groups / pairs).
  // Below 1 means the length filter rejected pairs before they cost
  // a lane; above 1 means pad lanes from partial tail groups
  // dominated. Early-exit rate is the fraction of lane-path pairs
  // retired by the row-minimum mask before the final DP row.
  double LanesPerPair() const {
    if (counters.simd_pairs == 0) return 0.0;
    return static_cast<double>(counters.simd_groups *
                               match::SimdLaneWidth(ResolvedBackend())) /
           static_cast<double>(counters.simd_pairs);
  }
  double EarlyExitRate() const {
    if (counters.simd_pairs == 0) return 0.0;
    return static_cast<double>(counters.simd_early_exits) /
           static_cast<double>(counters.simd_pairs);
  }
};

double Bound(size_t la, size_t lb) {
  return kThreshold * static_cast<double>(la < lb ? la : lb);
}

// Reference arm: the scalar virtual-dispatch bounded DP, one call per
// pair, exactly what every executor did before the kernel.
double RunLegacy(const std::vector<const PhonemeString*>& probes,
                 const std::vector<PhonemeString>& cands,
                 const CostModel& model, uint64_t* matched) {
  Timer t;
  for (const PhonemeString* p : probes) {
    for (const PhonemeString& c : cands) {
      const double bound = Bound(p->size(), c.size());
      if (match::BoundedEditDistance(*p, c, model, bound) <= bound) {
        ++*matched;
      }
    }
  }
  return t.Millis();
}

// Kernel arm: one MatchBatch per probe on a reused arena.
double RunKernel(const std::vector<const PhonemeString*>& probes,
                 const std::vector<const PhonemeString*>& cand_ptrs,
                 const MatchKernel& kernel, DpArena* arena,
                 uint64_t* matched) {
  std::vector<size_t> hits;
  Timer t;
  for (const PhonemeString* p : probes) {
    hits.clear();
    kernel.MatchBatch(*p, cand_ptrs, kThreshold, arena, &hits);
    *matched += hits.size();
  }
  return t.Millis();
}

std::unique_ptr<CostModel> Clustered() {
  return std::make_unique<match::ClusteredCost>(
      phonetic::ClusterTable::Default(), 0.25, true);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool simd_smoke = false;
  std::string json_path = "BENCH_kernel.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--simd-smoke") == 0) simd_smoke = true;
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }
  const size_t rows = smoke        ? 2000
                      : simd_smoke ? 20000
                                   : GeneratedDatasetSize(200000);
  const int reps = smoke || simd_smoke ? 1 : 5;

  // Whether this host resolves kAuto to a real vector ISA. Speedup
  // targets for the simd arm are gated on this: scalar emulation has
  // no architectural reason to beat the banded DP.
  const SimdBackend best = match::BestSimdBackend();
  const bool has_vector_isa =
      best == SimdBackend::kAvx2 || best == SimdBackend::kNeon;

  Result<dataset::Lexicon> lexicon = dataset::Lexicon::BuildTrilingual();
  if (!lexicon.ok()) {
    std::printf("lexicon: %s\n", lexicon.status().ToString().c_str());
    return 1;
  }
  const std::vector<dataset::LexiconEntry> gen =
      dataset::GenerateConcatenatedDataset(lexicon.value(), rows);
  std::vector<PhonemeString> cands;
  cands.reserve(gen.size());
  for (const dataset::LexiconEntry& e : gen) {
    if (!e.phonemes.empty()) cands.push_back(e.phonemes);
  }
  std::vector<const PhonemeString*> cand_ptrs;
  cand_ptrs.reserve(cands.size());
  for (const PhonemeString& c : cands) cand_ptrs.push_back(&c);
  std::vector<const PhonemeString*> probes;
  for (size_t i = 0; i < kProbes; ++i) {
    probes.push_back(&cands[(cands.size() / kProbes) * i]);
  }
  std::printf("kernel_speedup: %zu candidates x %zu probes, "
              "threshold %.2f, %d rep(s), best simd backend %s\n",
              cands.size(), probes.size(), kThreshold, reps,
              match::SimdBackendName(best));

  std::vector<Arm> arms;
  if (!simd_smoke) {
    Arm lev;
    lev.name = "levenshtein";
    lev.model = std::make_unique<match::LevenshteinCost>();
    lev.target_speedup = 3.0;
    arms.push_back(std::move(lev));
  }
  {
    Arm banded;
    banded.name = "clustered-banded";
    banded.model = Clustered();
    banded.opts.simd_backend = SimdBackend::kDisabled;
    banded.target_speedup = 1.5;
    arms.push_back(std::move(banded));
  }
  {
    Arm simd;
    simd.name = "clustered-simd";
    simd.model = Clustered();
    simd.opts.simd_backend = SimdBackend::kAuto;
    simd.target_speedup = has_vector_isa ? 3.0 : 0.0;
    arms.push_back(std::move(simd));
  }
  if (!simd_smoke) {
    Arm emul;
    emul.name = "clustered-scalar";
    emul.model = Clustered();
    emul.opts.simd_backend = SimdBackend::kScalar;
    emul.target_speedup = 0.0;  // parity coverage, not speed
    arms.push_back(std::move(emul));
  }

  DpArena arena;
  bool parity_ok = true;
  for (int rep = 0; rep < reps; ++rep) {
    for (Arm& arm : arms) {
      const MatchKernel kernel(CompiledCostModel::Compile(*arm.model),
                               arm.opts);
      uint64_t legacy_matched = 0;
      uint64_t kernel_matched = 0;
      const match::KernelCounters before = arena.counters;
      arm.legacy_ms +=
          RunLegacy(probes, cands, *arm.model, &legacy_matched);
      arm.kernel_ms +=
          RunKernel(probes, cand_ptrs, kernel, &arena, &kernel_matched);
      arm.counters.Merge(arena.counters.DeltaSince(before));
      if (legacy_matched != kernel_matched) {
        std::printf("PARITY FAILURE %s rep %d: legacy %llu vs kernel "
                    "%llu matches\n",
                    arm.name.c_str(), rep,
                    static_cast<unsigned long long>(legacy_matched),
                    static_cast<unsigned long long>(kernel_matched));
        parity_ok = false;
      }
      arm.pairs += probes.size() * cands.size();
      arm.matched += kernel_matched;
    }
  }

  std::printf("| %-16s | %-8s | %10s | %10s | %8s | %8s |\n", "model",
              "backend", "legacy ms", "kernel ms", "speedup", "target");
  for (const Arm& arm : arms) {
    std::printf("| %-16s | %-8s | %10.1f | %10.1f | %7.2fx | %7.2fx |\n",
                arm.name.c_str(),
                match::SimdBackendName(arm.ResolvedBackend()),
                arm.legacy_ms, arm.kernel_ms, arm.Speedup(),
                arm.target_speedup);
  }

  std::FILE* json = std::fopen(json_path.c_str(), "w");
  if (json == nullptr) {
    std::printf("cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(json,
               "{\n  \"bench\": \"kernel_speedup\",\n"
               "  \"rows\": %zu,\n  \"probes\": %zu,\n"
               "  \"threshold\": %.2f,\n  \"reps\": %d,\n"
               "  \"smoke\": %s,\n  \"simd_smoke\": %s,\n"
               "  \"best_simd_backend\": \"%s\",\n  \"arms\": [\n",
               cands.size(), probes.size(), kThreshold, reps,
               smoke ? "true" : "false", simd_smoke ? "true" : "false",
               match::SimdBackendName(best));
  for (size_t i = 0; i < arms.size(); ++i) {
    const Arm& arm = arms[i];
    std::fprintf(
        json,
        "    {\"model\": \"%s\", \"backend\": \"%s\", "
        "\"legacy_ms\": %.1f, "
        "\"kernel_ms\": %.1f, \"speedup\": %.2f, "
        "\"target_speedup\": %.1f, \"met_target\": %s, "
        "\"pairs\": %llu, \"matched\": %llu, "
        "\"bitparallel_pairs\": %llu, \"simd_pairs\": %llu, "
        "\"banded_pairs\": %llu, "
        "\"general_pairs\": %llu, \"dp_cells\": %llu, "
        "\"simd_cells\": %llu, \"simd_groups\": %llu, "
        "\"lanes_per_pair\": %.2f, \"early_exit_rate\": %.3f}%s\n",
        arm.name.c_str(), match::SimdBackendName(arm.ResolvedBackend()),
        arm.legacy_ms, arm.kernel_ms, arm.Speedup(), arm.target_speedup,
        arm.target_speedup <= 0.0 || arm.Speedup() >= arm.target_speedup
            ? "true"
            : "false",
        static_cast<unsigned long long>(arm.pairs),
        static_cast<unsigned long long>(arm.matched),
        static_cast<unsigned long long>(arm.counters.bitparallel_pairs),
        static_cast<unsigned long long>(arm.counters.simd_pairs),
        static_cast<unsigned long long>(arm.counters.banded_pairs),
        static_cast<unsigned long long>(arm.counters.general_pairs),
        static_cast<unsigned long long>(arm.counters.dp_cells),
        static_cast<unsigned long long>(arm.counters.simd_cells),
        static_cast<unsigned long long>(arm.counters.simd_groups),
        arm.LanesPerPair(), arm.EarlyExitRate(),
        i + 1 < arms.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n  \"parity_ok\": %s\n}\n",
               parity_ok ? "true" : "false");
  std::fclose(json);
  std::printf("wrote %s\n", json_path.c_str());

  // Parity is a correctness gate in every mode; speedup targets are
  // enforced on full runs, plus the banded-vs-simd ratio in
  // --simd-smoke on hosts with a real vector ISA (20k rows is enough
  // signal for a 1.5x floor; the full run enforces the 3x target).
  if (!parity_ok) return 1;
  if (simd_smoke && has_vector_isa) {
    const Arm* banded = nullptr;
    const Arm* simd = nullptr;
    for (const Arm& arm : arms) {
      if (arm.name == "clustered-banded") banded = &arm;
      if (arm.name == "clustered-simd") simd = &arm;
    }
    if (banded != nullptr && simd != nullptr && simd->kernel_ms > 0 &&
        banded->kernel_ms < 1.5 * simd->kernel_ms) {
      std::printf("SIMD SMOKE TARGET MISSED: banded %.1fms < 1.5 * simd "
                  "%.1fms\n",
                  banded->kernel_ms, simd->kernel_ms);
      return 1;
    }
  }
  if (!smoke && !simd_smoke) {
    for (const Arm& arm : arms) {
      if (arm.target_speedup > 0.0 && arm.Speedup() < arm.target_speedup) {
        std::printf("TARGET MISSED: %s %.2fx < %.1fx\n", arm.name.c_str(),
                    arm.Speedup(), arm.target_speedup);
        return 1;
      }
    }
  }
  return 0;
}
