// Kernel speedup bench: the table-driven MatchKernel against the
// reference virtual-dispatch DP (edit_distance.h) on the Table-1
// naive-scan verification workload — every (probe, candidate) pair of
// 10 probes against the generated dataset, decided at threshold 0.25.
//
// Two cost-model arms, one per kernel family:
//   levenshtein  — unit costs, decided by the bit-parallel path
//                  (target >= 3x over the reference DP)
//   clustered    — paper default (intra 0.25, weak discount), decided
//                  by the banded DP (target >= 1.5x)
//
// Arms are interleaved per repetition so clock drift and cache warmth
// cancel out, and each repetition cross-checks that both
// implementations accept exactly the same pairs (the kernel is exact,
// not approximate — tests/match_kernel_test.cc proves bit-equality).
//
// Usage:
//   ./bench/kernel_speedup               full run, writes BENCH_kernel.json
//   ./bench/kernel_speedup --smoke       tiny dataset + 1 rep (ctest)
//   ./bench/kernel_speedup --json <path> JSON output path

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "dataset/lexicon.h"
#include "match/edit_distance.h"
#include "match/match_kernel.h"
#include "phonetic/cluster.h"

using namespace lexequal;
using namespace lexequal::bench;
using match::CompiledCostModel;
using match::CostModel;
using match::DpArena;
using match::MatchKernel;
using phonetic::PhonemeString;

namespace {

constexpr double kThreshold = 0.25;
constexpr size_t kProbes = 10;

struct Arm {
  const char* name;
  std::unique_ptr<CostModel> model;
  double target_speedup;
  double legacy_ms = 0;
  double kernel_ms = 0;
  uint64_t pairs = 0;
  uint64_t matched = 0;  // parity-checked across implementations
  match::KernelCounters counters;

  double Speedup() const {
    return kernel_ms > 0 ? legacy_ms / kernel_ms : 0.0;
  }
};

double Bound(size_t la, size_t lb) {
  return kThreshold * static_cast<double>(la < lb ? la : lb);
}

// Reference arm: the scalar virtual-dispatch bounded DP, one call per
// pair, exactly what every executor did before the kernel.
double RunLegacy(const std::vector<const PhonemeString*>& probes,
                 const std::vector<PhonemeString>& cands,
                 const CostModel& model, uint64_t* matched) {
  Timer t;
  for (const PhonemeString* p : probes) {
    for (const PhonemeString& c : cands) {
      const double bound = Bound(p->size(), c.size());
      if (match::BoundedEditDistance(*p, c, model, bound) <= bound) {
        ++*matched;
      }
    }
  }
  return t.Millis();
}

// Kernel arm: one MatchBatch per probe on a reused arena.
double RunKernel(const std::vector<const PhonemeString*>& probes,
                 const std::vector<const PhonemeString*>& cand_ptrs,
                 const MatchKernel& kernel, DpArena* arena,
                 uint64_t* matched) {
  std::vector<size_t> hits;
  Timer t;
  for (const PhonemeString* p : probes) {
    hits.clear();
    kernel.MatchBatch(*p, cand_ptrs, kThreshold, arena, &hits);
    *matched += hits.size();
  }
  return t.Millis();
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_kernel.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }
  const size_t rows = smoke ? 2000 : GeneratedDatasetSize(200000);
  const int reps = smoke ? 1 : 5;

  Result<dataset::Lexicon> lexicon = dataset::Lexicon::BuildTrilingual();
  if (!lexicon.ok()) {
    std::printf("lexicon: %s\n", lexicon.status().ToString().c_str());
    return 1;
  }
  const std::vector<dataset::LexiconEntry> gen =
      dataset::GenerateConcatenatedDataset(lexicon.value(), rows);
  std::vector<PhonemeString> cands;
  cands.reserve(gen.size());
  for (const dataset::LexiconEntry& e : gen) {
    if (!e.phonemes.empty()) cands.push_back(e.phonemes);
  }
  std::vector<const PhonemeString*> cand_ptrs;
  cand_ptrs.reserve(cands.size());
  for (const PhonemeString& c : cands) cand_ptrs.push_back(&c);
  std::vector<const PhonemeString*> probes;
  for (size_t i = 0; i < kProbes; ++i) {
    probes.push_back(&cands[(cands.size() / kProbes) * i]);
  }
  std::printf("kernel_speedup: %zu candidates x %zu probes, "
              "threshold %.2f, %d rep(s)\n",
              cands.size(), probes.size(), kThreshold, reps);

  std::vector<Arm> arms;
  arms.push_back({"levenshtein", std::make_unique<match::LevenshteinCost>(),
                  3.0});
  arms.push_back({"clustered",
                  std::make_unique<match::ClusteredCost>(
                      phonetic::ClusterTable::Default(), 0.25, true),
                  1.5});

  DpArena arena;
  bool parity_ok = true;
  for (int rep = 0; rep < reps; ++rep) {
    for (Arm& arm : arms) {
      const MatchKernel kernel(CompiledCostModel::Compile(*arm.model));
      uint64_t legacy_matched = 0;
      uint64_t kernel_matched = 0;
      const match::KernelCounters before = arena.counters;
      arm.legacy_ms +=
          RunLegacy(probes, cands, *arm.model, &legacy_matched);
      arm.kernel_ms +=
          RunKernel(probes, cand_ptrs, kernel, &arena, &kernel_matched);
      arm.counters.Merge(arena.counters.DeltaSince(before));
      if (legacy_matched != kernel_matched) {
        std::printf("PARITY FAILURE %s rep %d: legacy %llu vs kernel "
                    "%llu matches\n",
                    arm.name, rep,
                    static_cast<unsigned long long>(legacy_matched),
                    static_cast<unsigned long long>(kernel_matched));
        parity_ok = false;
      }
      arm.pairs += probes.size() * cands.size();
      arm.matched += kernel_matched;
    }
  }

  std::printf("| %-12s | %10s | %10s | %8s | %8s |\n", "model",
              "legacy ms", "kernel ms", "speedup", "target");
  for (const Arm& arm : arms) {
    std::printf("| %-12s | %10.1f | %10.1f | %7.2fx | %7.2fx |\n",
                arm.name, arm.legacy_ms, arm.kernel_ms, arm.Speedup(),
                arm.target_speedup);
  }

  std::FILE* json = std::fopen(json_path.c_str(), "w");
  if (json == nullptr) {
    std::printf("cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(json,
               "{\n  \"bench\": \"kernel_speedup\",\n"
               "  \"rows\": %zu,\n  \"probes\": %zu,\n"
               "  \"threshold\": %.2f,\n  \"reps\": %d,\n"
               "  \"smoke\": %s,\n  \"arms\": [\n",
               cands.size(), probes.size(), kThreshold, reps,
               smoke ? "true" : "false");
  for (size_t i = 0; i < arms.size(); ++i) {
    const Arm& arm = arms[i];
    std::fprintf(
        json,
        "    {\"model\": \"%s\", \"legacy_ms\": %.1f, "
        "\"kernel_ms\": %.1f, \"speedup\": %.2f, "
        "\"target_speedup\": %.1f, \"met_target\": %s, "
        "\"pairs\": %llu, \"matched\": %llu, "
        "\"bitparallel_pairs\": %llu, \"banded_pairs\": %llu, "
        "\"general_pairs\": %llu, \"dp_cells\": %llu}%s\n",
        arm.name, arm.legacy_ms, arm.kernel_ms, arm.Speedup(),
        arm.target_speedup,
        arm.Speedup() >= arm.target_speedup ? "true" : "false",
        static_cast<unsigned long long>(arm.pairs),
        static_cast<unsigned long long>(arm.matched),
        static_cast<unsigned long long>(arm.counters.bitparallel_pairs),
        static_cast<unsigned long long>(arm.counters.banded_pairs),
        static_cast<unsigned long long>(arm.counters.general_pairs),
        static_cast<unsigned long long>(arm.counters.dp_cells),
        i + 1 < arms.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n  \"parity_ok\": %s\n}\n",
               parity_ok ? "true" : "false");
  std::fclose(json);
  std::printf("wrote %s\n", json_path.c_str());

  // Parity is a correctness gate in every mode; the speedup targets
  // are only enforced on full runs (smoke timings are noise).
  if (!parity_ok) return 1;
  if (!smoke) {
    for (const Arm& arm : arms) {
      if (arm.Speedup() < arm.target_speedup) {
        std::printf("TARGET MISSED: %s %.2fx < %.1fx\n", arm.name,
                    arm.Speedup(), arm.target_speedup);
        return 1;
      }
    }
  }
  return 0;
}
