// Observability overhead bench: proves the full observability stack —
// metrics, per-query traces, AND statement statistics — costs <3% by
// running the same probe workload with everything on and everything
// off. The arms interleave A/B/A/B inside every repetition (clock
// drift and cache warmth cancel out), share one warm-up pass, and
// report the median of the per-rep times, so one descheduled rep
// cannot fake an overhead regression. Covers all four physical plans.
//
// Usage:
//   ./bench/obs_overhead                  full run, writes BENCH_obs.json
//   ./bench/obs_overhead --smoke          tiny dataset + few reps (ctest)
//   ./bench/obs_overhead --stmt-smoke     statement-stats-only A/B on the
//                                         qgram plan; gates <1% overhead
//   ./bench/obs_overhead --json <path>    JSON output path
//   ./bench/obs_overhead --export <path>  also dump the Prometheus text
//                                         export (input for
//                                         scripts/check_metrics_names.sh)
//
// Under -DLEXEQUAL_NO_OBS=ON both arms compile to the same no-ops, so
// overhead_pct reads ~0 by construction.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "obs/metrics.h"

using namespace lexequal;
using namespace lexequal::bench;
using engine::LexEqualPlan;
using engine::LexEqualQueryOptions;
using engine::QueryStats;

namespace {

struct PlanRun {
  const char* name;
  LexEqualPlan plan;
  double enabled_ms = 0;   // median of per-rep times, stack on
  double disabled_ms = 0;  // median of per-rep times, stack off
  uint64_t hits = 0;       // result-count parity check across arms

  double OverheadPct() const {
    if (disabled_ms <= 0) return 0.0;
    return (enabled_ms - disabled_ms) / disabled_ms * 100.0;
  }
};

double Median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

// One timed pass of every probe under `plan`; returns total hits.
double RunProbes(engine::Session* session,
                 const std::vector<const dataset::LexiconEntry*>& probes,
                 LexEqualPlan plan, uint64_t* hits) {
  LexEqualQueryOptions options;
  options.match.threshold = 0.25;
  options.match.intra_cluster_cost = 0.25;
  options.hints.plan = plan;
  Timer t;
  for (const dataset::LexiconEntry* p : probes) {
    engine::QueryRequest req = engine::QueryRequest::
        ThresholdSelectPhonemes("names", "name", p->phonemes);
    req.options = options;
    auto result = session->Execute(req);
    if (!result.ok()) {
      std::printf("probe: %s\n", result.status().ToString().c_str());
      std::exit(1);
    }
    *hits += result->rows.size();
  }
  return t.Millis();
}

// Flips the whole observability stack at once: the metrics/trace
// runtime switch, per-query span collection, and statement stats.
void SetObsStack(engine::Engine* db, engine::Session* session, bool on) {
  obs::SetEnabled(on);
  session->set_tracing(on);
  db->stmt_stats()->set_enabled(on);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool stmt_smoke = false;
  std::string json_path = "BENCH_obs.json";
  std::string export_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--stmt-smoke") == 0) {
      smoke = true;
      stmt_smoke = true;
    }
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
    if (std::strcmp(argv[i], "--export") == 0 && i + 1 < argc) {
      export_path = argv[++i];
    }
  }

  Result<dataset::Lexicon> lexicon = dataset::Lexicon::BuildTrilingual();
  if (!lexicon.ok()) return 1;
  const size_t rows = smoke ? 2000 : GeneratedDatasetSize(20000);
  const int probes_n = smoke ? 3 : 10;
  const int reps = stmt_smoke ? 9 : smoke ? 3 : 7;
  std::vector<dataset::LexiconEntry> gen =
      dataset::GenerateConcatenatedDataset(*lexicon, rows);

  std::printf("obs_overhead: %zu rows, %d probes, %d reps%s%s\n",
              gen.size(), probes_n, reps, smoke ? " (smoke)" : "",
              stmt_smoke ? " (stmt stats A/B)" : "");
  Result<std::unique_ptr<engine::Engine>> db_or =
      BuildGeneratedDb("/tmp/lexequal_obs_overhead.db", *lexicon, gen);
  if (!db_or.ok()) {
    std::printf("build: %s\n", db_or.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<engine::Engine> db = std::move(db_or).value();
  if (!db->CreateIndex({.kind = engine::IndexSpec::Kind::kQGram,
                        .table = "names",
                        .column = "name_phon",
                        .q = 2}).ok()) return 1;
  if (!db->CreateIndex({.kind = engine::IndexSpec::Kind::kPhonetic,
                        .table = "names",
                        .column = "name_phon"}).ok()) return 1;
  if (!db->AnalyzeAll().ok()) return 1;

  std::vector<const dataset::LexiconEntry*> probes;
  for (int i = 0; i < probes_n; ++i) {
    probes.push_back(&gen[(gen.size() / probes_n) * i]);
  }

  std::vector<PlanRun> runs;
  if (stmt_smoke) {
    // Statement stats alone on the heaviest-traffic indexed plan; the
    // rest of the stack stays on in BOTH arms so the delta isolates
    // StatementStats::Record.
    runs.push_back({"qgram", LexEqualPlan::kQGramFilter});
  } else {
    runs = {{"naive", LexEqualPlan::kNaiveUdf},
            {"qgram", LexEqualPlan::kQGramFilter},
            {"phonetic", LexEqualPlan::kPhoneticIndex},
            {"parallel", LexEqualPlan::kParallelScan}};
  }

  engine::Session session = db->CreateSession();
  const bool was_enabled = obs::SetEnabled(true);
  bool gate_failed = false;
  for (PlanRun& run : runs) {
    // One shared warm-up pass (phoneme cache, buffer pool) outside
    // the timings — both arms inherit identical warmth.
    SetObsStack(db.get(), &session, true);
    uint64_t warm_hits = 0;
    RunProbes(&session, probes, run.plan, &warm_hits);

    uint64_t enabled_hits = 0, disabled_hits = 0;
    std::vector<double> on_ms, off_ms;
    for (int rep = 0; rep < reps; ++rep) {
      if (stmt_smoke) {
        db->stmt_stats()->set_enabled(true);
      } else {
        SetObsStack(db.get(), &session, true);
      }
      on_ms.push_back(
          RunProbes(&session, probes, run.plan, &enabled_hits));
      if (stmt_smoke) {
        db->stmt_stats()->set_enabled(false);
      } else {
        SetObsStack(db.get(), &session, false);
      }
      off_ms.push_back(
          RunProbes(&session, probes, run.plan, &disabled_hits));
    }
    SetObsStack(db.get(), &session, true);
    if (enabled_hits != disabled_hits) {
      std::printf("MISMATCH: %s enabled %llu vs disabled %llu hits\n",
                  run.name,
                  static_cast<unsigned long long>(enabled_hits),
                  static_cast<unsigned long long>(disabled_hits));
      return 1;
    }
    run.hits = enabled_hits;
    run.enabled_ms = Median(on_ms);
    run.disabled_ms = Median(off_ms);
    std::printf("| %-8s | on %8.2f ms | off %8.2f ms | %+6.2f %% |\n",
                run.name, run.enabled_ms, run.disabled_ms,
                run.OverheadPct());
    if (stmt_smoke) {
      // Gate: statement stats must cost <1% on the qgram plan. A
      // small absolute floor keeps micro-second timing jitter from
      // failing runs whose total is a handful of milliseconds.
      const double delta_ms = run.enabled_ms - run.disabled_ms;
      if (run.OverheadPct() >= 1.0 && delta_ms >= 0.25) {
        std::printf("GATE FAILED: stmt stats overhead %.2f%% "
                    "(delta %.3f ms) >= 1%% on %s\n",
                    run.OverheadPct(), delta_ms, run.name);
        gate_failed = true;
      }
    }
  }
  obs::SetEnabled(was_enabled);

  FILE* json = std::fopen(json_path.c_str(), "w");
  if (json == nullptr) {
    std::printf("cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(json,
               "{\"dataset_rows\": %zu, \"probes\": %d, \"reps\": %d, "
               "\"mode\": \"%s\", \"plans\": [",
               gen.size(), probes_n, reps,
               stmt_smoke ? "stmt_stats_ab" : "full_stack_ab");
  bool first = true;
  for (const PlanRun& run : runs) {
    std::fprintf(json,
                 "%s{\"plan\": \"%s\", \"enabled_ms\": %.3f, "
                 "\"disabled_ms\": %.3f, \"overhead_pct\": %.2f, "
                 "\"hits\": %llu}",
                 first ? "" : ", ", run.name, run.enabled_ms,
                 run.disabled_ms, run.OverheadPct(),
                 static_cast<unsigned long long>(run.hits));
    first = false;
  }
  std::fprintf(json, "]}\n");
  std::fclose(json);
  std::printf("wrote %s\n", json_path.c_str());

  if (!export_path.empty()) {
    FILE* exp = std::fopen(export_path.c_str(), "w");
    if (exp == nullptr) {
      std::printf("cannot write %s\n", export_path.c_str());
      return 1;
    }
    const std::string text = engine::Engine::DumpMetrics();
    std::fwrite(text.data(), 1, text.size(), exp);
    std::fclose(exp);
    std::printf("wrote %s\n", export_path.c_str());
  }

  db.reset();
  std::remove("/tmp/lexequal_obs_overhead.db");
  return gate_failed ? 1 : 0;
}
