// Ablation: the four access paths for one LexEQUAL selection —
// naive scan, q-gram filters, phonetic index (the paper's three),
// plus the BK-tree metric index from the paper's future work.
//
// Reports per-probe latency, exact-matcher invocations, and result
// counts over the generated dataset. The BK-tree is in-memory (the
// Zobel-Dart comparison point the paper contrasts its persistent
// index with).

#include <cstdio>

#include "bench/bench_common.h"
#include "index/bktree.h"

using namespace lexequal;
using namespace lexequal::bench;
using engine::LexEqualPlan;
using engine::LexEqualQueryOptions;
using engine::QueryStats;

int main() {
  Result<dataset::Lexicon> lexicon = dataset::Lexicon::BuildTrilingual();
  if (!lexicon.ok()) return 1;
  std::vector<dataset::LexiconEntry> gen =
      dataset::GenerateConcatenatedDataset(*lexicon,
                                           GeneratedDatasetSize());
  std::printf("Ablation: access paths for LexEQUAL selections\n");
  Result<std::unique_ptr<engine::Engine>> db_or =
      BuildGeneratedDb("/tmp/lexequal_ablation1.db", *lexicon, gen);
  if (!db_or.ok()) return 1;
  std::unique_ptr<engine::Engine> db = std::move(db_or).value();
  if (!db->CreateIndex({.kind = engine::IndexSpec::Kind::kQGram,
                      .table = "names",
                      .column = "name_phon",
                      .q = 2}).ok()) return 1;
  if (!db->CreateIndex({.kind = engine::IndexSpec::Kind::kPhonetic,
                      .table = "names",
                      .column = "name_phon"}).ok()) return 1;

  // BK-tree over the same data.
  match::ClusteredCost bk_cost(phonetic::ClusterTable::Default(), 0.25);
  index::BkTree bktree(&bk_cost);
  {
    Timer t;
    for (size_t i = 0; i < gen.size(); ++i) {
      bktree.Insert(gen[i].phonemes, i);
    }
    std::printf("BK-tree built in %.1f s (%zu elements)\n", t.Seconds(),
                bktree.size());
  }

  engine::Session session = db->CreateSession();
  const int kProbes = 20;
  LexEqualQueryOptions options;
  options.match.threshold = 0.25;
  options.match.intra_cluster_cost = 0.25;

  std::printf("\n| access path     | avg latency | udf/dist calls |"
              " avg hits |\n");
  std::printf("|-----------------|-------------|----------------|"
              "----------|\n");

  for (LexEqualPlan plan :
       {LexEqualPlan::kNaiveUdf, LexEqualPlan::kQGramFilter,
        LexEqualPlan::kPhoneticIndex}) {
    options.hints.plan = plan;
    QueryStats total;
    uint64_t hits = 0;
    Timer t;
    for (int i = 0; i < kProbes; ++i) {
      const auto* p = &gen[(gen.size() / kProbes) * i];
      engine::QueryRequest req = engine::QueryRequest::
          ThresholdSelectPhonemes("names", "name", p->phonemes);
      req.options = options;
      auto result = session.Execute(req);
      if (!result.ok()) {
        std::printf("%s: %s\n",
                    std::string(LexEqualPlanName(plan)).c_str(),
                    result.status().ToString().c_str());
        return 1;
      }
      hits += result->rows.size();
      total.udf_calls += result->stats.udf_calls;
    }
    std::printf("| %-15s | %8.3f ms |     %10.0f | %8.1f |\n",
                std::string(LexEqualPlanName(plan)).c_str(),
                t.Millis() / kProbes,
                static_cast<double>(total.udf_calls) / kProbes,
                static_cast<double>(hits) / kProbes);
  }

  // BK-tree: the radius equals the matcher's allowance for the probe
  // length; the candidate set is exact for that radius (no UDF
  // re-check needed except the min-length allowance nuance, which we
  // apply by using the probe's own allowance).
  {
    uint64_t hits = 0;
    uint64_t dists = 0;
    Timer t;
    for (int i = 0; i < kProbes; ++i) {
      const auto* p = &gen[(gen.size() / kProbes) * i];
      const double radius =
          options.match.threshold *
          static_cast<double>(p->phonemes.size());
      std::vector<uint64_t> found = bktree.Search(p->phonemes, radius);
      hits += found.size();
      dists += bktree.last_search_distance_count();
    }
    std::printf("| %-15s | %8.3f ms |     %10.0f | %8.1f |\n",
                "bk-tree (mem)", t.Millis() / kProbes,
                static_cast<double>(dists) / kProbes,
                static_cast<double>(hits) / kProbes);
  }

  std::printf(
      "\nnotes: udf/dist = exact distance evaluations per probe; the\n"
      "naive plan evaluates every row, the filters a small candidate\n"
      "set, the phonetic index only key-equal rows, and the BK-tree\n"
      "the nodes the triangle inequality cannot prune.\n");
  std::remove("/tmp/lexequal_ablation1.db");
  return 0;
}
