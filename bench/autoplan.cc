// Does the cost-based picker win? Runs the Table 1–3 scan workloads
// hint-free (kAuto over ANALYZEd statistics) against every manual
// plan and reports where the picker landed, its estimated vs actual
// candidate rows, and the auto-to-best-manual time ratio. Acceptance:
// auto stays within ~20% of the best manual plan on each workload.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"

using namespace lexequal;
using namespace lexequal::bench;
using engine::Engine;
using engine::LexEqualPlan;
using engine::LexEqualPlanName;
using engine::LexEqualQueryOptions;
using engine::QueryRequest;
using engine::QueryStats;
using engine::Session;

namespace {

constexpr LexEqualPlan kManualPlans[] = {
    LexEqualPlan::kNaiveUdf,
    LexEqualPlan::kQGramFilter,
    LexEqualPlan::kPhoneticIndex,
    LexEqualPlan::kParallelScan,
};

struct PlanTiming {
  LexEqualPlan plan;
  bool ok = false;
  double avg_s = 0;
};

// Times one plan over all probes; a failed probe marks the plan as
// unavailable (e.g. phonetic above the gate still runs when hinted,
// so failures here mean a missing index, not the gate).
PlanTiming TimePlan(Session* session, LexEqualPlan plan,
                    const std::vector<const dataset::LexiconEntry*>& probes,
                    const LexEqualQueryOptions& base) {
  PlanTiming timing;
  timing.plan = plan;
  LexEqualQueryOptions options = base;
  options.hints.plan = plan;
  Timer t;
  for (const auto* p : probes) {
    QueryRequest req = QueryRequest::ThresholdSelectPhonemes(
        "names", "name", p->phonemes);
    req.options = options;
    auto result = session->Execute(req);
    if (!result.ok()) return timing;
  }
  timing.ok = true;
  timing.avg_s = t.Seconds() / probes.size();
  return timing;
}

void RunWorkload(Session* session, const char* caption,
                 const std::vector<const dataset::LexiconEntry*>& probes,
                 double threshold) {
  LexEqualQueryOptions base;
  base.match.threshold = threshold;
  base.match.intra_cluster_cost = 0.25;

  std::printf("\n%s (threshold %.2f)\n", caption, threshold);

  double best_manual = -1;
  for (LexEqualPlan plan : kManualPlans) {
    const PlanTiming timing = TimePlan(session, plan, probes, base);
    if (!timing.ok) {
      std::printf("  %-15s unavailable\n",
                  std::string(LexEqualPlanName(plan)).c_str());
      continue;
    }
    // Above the gate the phonetic index trades recall for speed; the
    // picker refuses it there, so it can't be the bar auto is held to.
    const bool lossy = plan == LexEqualPlan::kPhoneticIndex &&
                       threshold > engine::kPhoneticIndexThresholdGate;
    std::printf("  %-15s %9.4f s/probe%s\n",
                std::string(LexEqualPlanName(plan)).c_str(),
                timing.avg_s,
                lossy ? "  (lossy at this threshold; excluded)" : "");
    if (!lossy && (best_manual < 0 || timing.avg_s < best_manual)) {
      best_manual = timing.avg_s;
    }
  }

  // Hint-free run: the picker chooses per probe from the statistics.
  const PlanTiming auto_timing =
      TimePlan(session, LexEqualPlan::kAuto, probes, base);
  if (!auto_timing.ok) {
    std::printf("  auto FAILED\n");
    return;
  }
  const QueryStats& s = session->LastQueryStats();
  std::printf("  %-15s %9.4f s/probe -> picked %s (%s)\n", "auto",
              auto_timing.avg_s,
              std::string(LexEqualPlanName(s.plan)).c_str(),
              s.plan_used_stats ? "statistics" : "heuristic");
  if (s.plan_used_stats) {
    std::printf("  estimate: cost %.0f, %.0f candidates; actual "
                "candidates %llu\n",
                s.est_cost, s.est_candidates,
                static_cast<unsigned long long>(s.candidates));
  }
  const double ratio = auto_timing.avg_s / best_manual;
  std::printf("  auto / best-manual = %.2fx %s\n", ratio,
              ratio <= 1.20 ? "(within 20%: PASS)"
                            : "(outside 20%: MISS)");
}

}  // namespace

int main() {
  Result<dataset::Lexicon> lexicon = dataset::Lexicon::BuildTrilingual();
  if (!lexicon.ok()) return 1;
  std::vector<dataset::LexiconEntry> gen =
      dataset::GenerateConcatenatedDataset(*lexicon,
                                           GeneratedDatasetSize());
  std::printf("Auto-plan picker vs manual plans\n");
  Result<std::unique_ptr<Engine>> db_or =
      BuildGeneratedDb("/tmp/lexequal_autoplan.db", *lexicon, gen);
  if (!db_or.ok()) return 1;
  std::unique_ptr<Engine> db = std::move(db_or).value();

  {
    Timer t;
    if (!db->CreateIndex({.kind = engine::IndexSpec::Kind::kQGram,
                          .table = "names",
                          .column = "name_phon",
                          .q = 2})
             .ok()) {
      return 1;
    }
    if (!db->CreateIndex({.kind = engine::IndexSpec::Kind::kPhonetic,
                          .table = "names",
                          .column = "name_phon"})
             .ok()) {
      return 1;
    }
    std::printf("built both indexes in %.1f s\n", t.Seconds());
  }
  {
    Timer t;
    if (!db->Analyze("names").ok()) return 1;
    std::printf("ANALYZE names in %.1f s (%llu rows)\n", t.Seconds(),
                static_cast<unsigned long long>(
                    db->GetTable("names").value()->stats.row_count));
  }

  const int kProbes = 10;
  std::vector<const dataset::LexiconEntry*> probes;
  for (int i = 0; i < kProbes; ++i) {
    probes.push_back(&gen[(gen.size() / kProbes) * i]);
  }

  Session session = db->CreateSession();
  // Table 3 regime: tight threshold, phonetic index eligible.
  RunWorkload(&session, "Workload A: tight-threshold scan (Table 3)",
              probes, 0.25);
  // Table 2 regime: loose threshold gates the (lossy) phonetic index,
  // leaving q-grams vs scans.
  RunWorkload(&session, "Workload B: loose-threshold scan (Table 2)",
              probes, 0.40);
  // Exact regime: threshold 0 makes every path cheap; overheads decide.
  RunWorkload(&session, "Workload C: exact match", probes, 0.0);

  std::remove("/tmp/lexequal_autoplan.db");
  return 0;
}
