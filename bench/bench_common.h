// Shared helpers for the table/figure reproduction benches.

#ifndef LEXEQUAL_BENCH_BENCH_COMMON_H_
#define LEXEQUAL_BENCH_BENCH_COMMON_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "dataset/lexicon.h"
#include "engine/session.h"

namespace lexequal::bench {

/// Wall-clock timer.
class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }
  double Millis() const { return Seconds() * 1e3; }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Size of the generated performance dataset. Defaults to the
/// paper's ~200k rows unless the bench passes its own default;
/// override with LEXEQUAL_DATASET_SIZE (e.g. 50000 for a quick run,
/// 0 for the complete ~1.5M concatenation set).
inline size_t GeneratedDatasetSize(size_t default_size = 200000) {
  const char* env = std::getenv("LEXEQUAL_DATASET_SIZE");
  if (env != nullptr) return static_cast<size_t>(std::atoll(env));
  return default_size;
}

/// Loads the generated dataset into table `names(name, name_phon,
/// tag)` of a fresh database at `path`. Prints load time.
inline Result<std::unique_ptr<engine::Engine>> BuildGeneratedDb(
    const std::string& path, const dataset::Lexicon& lexicon,
    const std::vector<dataset::LexiconEntry>& data) {
  std::remove(path.c_str());
  std::unique_ptr<engine::Engine> db;
  LEXEQUAL_ASSIGN_OR_RETURN(db, engine::Engine::Open(path, 8192));
  // name_phon is caller-materialized: the generated dataset is built
  // by concatenation in phoneme space (as the paper's was), so the
  // stored phonemes are the concatenated base phonemes rather than a
  // re-derivation from the concatenated spelling.
  engine::Schema schema({
      {"name", engine::ValueType::kString, std::nullopt},
      {"name_phon", engine::ValueType::kString, std::nullopt},
      {"tag", engine::ValueType::kInt64, std::nullopt},
  });
  LEXEQUAL_RETURN_IF_ERROR(db->CreateTable("names", schema));
  Timer load;
  for (const dataset::LexiconEntry& e : data) {
    engine::Tuple values{engine::Value::String(e.text, e.language),
                         engine::Value::String(e.phonemes.ToIpa()),
                         engine::Value::Int64(e.tag)};
    LEXEQUAL_RETURN_IF_ERROR(db->Insert("names", values).status());
  }
  std::printf("loaded %zu rows in %.1f s (avg phonemic length %.2f)\n",
              data.size(), load.Seconds(),
              [&] {
                double sum = 0;
                for (const auto& e : data) sum += e.phonemes.size();
                return data.empty() ? 0.0 : sum / data.size();
              }());
  (void)lexicon;
  return db;
}

/// Prints a paper-style two-column performance table row.
inline void PrintRow(const char* query, const char* method,
                     double seconds) {
  std::printf("| %-5s | %-38s | %10.3f s |\n", query, method, seconds);
}

inline void PrintTableHeader(const char* caption) {
  std::printf("\n%s\n", caption);
  std::printf("| Query | Matching Methodology                   |"
              "        Time |\n");
  std::printf("|-------|----------------------------------------|"
              "-------------|\n");
}

}  // namespace lexequal::bench

#endif  // LEXEQUAL_BENCH_BENCH_COMMON_H_
