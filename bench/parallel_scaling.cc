// Parallel-scan scaling: the naive serial UDF baseline vs. the batch
// ParallelMatcher at 1/2/4/8 worker threads, with a cold and a warm
// phoneme cache.
//
// Two regimes are measured, because they bound the speedup story from
// both sides:
//
//  A. Match layer, paper-faithful naive UDF (Table 1): the baseline
//     re-runs G2P conversion per tuple per probe, exactly like the
//     paper's lexeq(S1, S2, e) PL/SQL function over lexicographic
//     strings. The parallel/cached path converts each candidate once
//     (cold) and then serves every later probe from the phoneme
//     cache (warm) — this is where the tentpole's >= 2x comes from.
//
//  B. Engine plans over a precomputed phonemic column: kNaiveUdf vs.
//     kParallelScan through Session::Execute phoneme selects. Both
//     plans pay the same heap scan and the stored-IPA decode is far
//     cheaper than G2P, so gains here are the filters + memoized
//     parses only — the honest lower bound.
//
// On a single-core container the thread sweep shows flat-to-negative
// scaling (printed hardware_concurrency documents why); filters and
// cache carry the speedup there.
//
// Run after building:  ./bench/parallel_scaling
// Dataset size:        LEXEQUAL_DATASET_SIZE=200000 ./bench/parallel_scaling
//
// Unlike the table benches this one defaults to 50k rows, not the
// paper's 200k: it makes 19 full passes over the dataset, and at 50k
// the whole cached working set stays DRAM-friendly, which is the
// regime the per-thread sweep is meant to exhibit. Set the env var
// for paper scale.

#include <cstdio>
#include <thread>

#include "bench/bench_common.h"
#include "match/parallel_matcher.h"
#include "match/phoneme_cache.h"

using namespace lexequal;
using namespace lexequal::bench;
using engine::LexEqualPlan;
using engine::LexEqualQueryOptions;
using engine::QueryStats;

namespace {

struct RunResult {
  double seconds_per_probe = 0;
  uint64_t hits = 0;
  match::MatchStats stats;  // accumulated over all probes
};

void PrintScalingRow(const char* label, const RunResult& r,
                     double baseline_s) {
  std::printf("| %-26s | %9.4f s | %7.2fx | %s\n", label,
              r.seconds_per_probe, baseline_s / r.seconds_per_probe,
              r.stats.ToString().c_str());
}

void PrintScalingHeader(const char* caption) {
  std::printf("\n%s\n", caption);
  std::printf("| %-26s | %11s | %8s | per-probe match stats\n", "plan",
              "time/probe", "speedup");
  std::printf("|----------------------------|-------------|----------|"
              "----------------------\n");
}

// --- Regime A: match layer, per-tuple G2P baseline. ---

// The paper's naive UDF: every invocation transforms both arguments
// and runs the DP. Serial.
RunResult RunNaiveUdf(const match::LexEqualMatcher& matcher,
                      const std::vector<const dataset::LexiconEntry*>& probes,
                      const std::vector<text::TaggedString>& candidates) {
  RunResult out;
  Timer t;
  for (const auto* p : probes) {
    const text::TaggedString query(p->text, p->language);
    for (const text::TaggedString& cand : candidates) {
      if (matcher.Match(query, cand) == match::MatchOutcome::kTrue) {
        ++out.hits;
      }
    }
  }
  out.seconds_per_probe = t.Seconds() / probes.size();
  return out;
}

Result<RunResult> RunParallelIpa(
    const match::ParallelMatcher& pm,
    const std::vector<const dataset::LexiconEntry*>& probes,
    const std::vector<std::string>& cand_ipa) {
  RunResult out;
  Timer t;
  for (const auto* p : probes) {
    phonetic::PhonemeString query;
    LEXEQUAL_ASSIGN_OR_RETURN(
        query, match::PhonemeCache::Default().Transform(p->text,
                                                        p->language));
    match::MatchStats stats;
    LEXEQUAL_ASSIGN_OR_RETURN(
        std::vector<size_t> matches,
        pm.MatchBatchIpa(query, cand_ipa, &stats));
    out.hits += matches.size();
    out.stats.Merge(stats);
  }
  out.seconds_per_probe = t.Seconds() / probes.size();
  return out;
}

// --- Regime B: engine plans over the stored phonemic column. ---

Result<RunResult> RunEnginePlan(
    engine::Session* session,
    const std::vector<const dataset::LexiconEntry*>& probes,
    const LexEqualQueryOptions& options) {
  RunResult out;
  Timer t;
  for (const auto* p : probes) {
    engine::QueryRequest req = engine::QueryRequest::
        ThresholdSelectPhonemes("names", "name", p->phonemes);
    req.options = options;
    engine::QueryResult result;
    LEXEQUAL_ASSIGN_OR_RETURN(result, session->Execute(req));
    out.hits += result.rows.size();
    out.stats.Merge(result.stats.match);
  }
  out.seconds_per_probe = t.Seconds() / probes.size();
  return out;
}

}  // namespace

int main() {
  Result<dataset::Lexicon> lexicon = dataset::Lexicon::BuildTrilingual();
  if (!lexicon.ok()) return 1;
  std::vector<dataset::LexiconEntry> gen =
      dataset::GenerateConcatenatedDataset(
          *lexicon, GeneratedDatasetSize(/*default_size=*/50000));
  std::printf("Parallel-scan scaling (threads x cache), %zu rows\n",
              gen.size());

  // Probe with base-lexicon names: the interactive directory-search
  // workload (a user types one name; the table holds the enlarged
  // set). Base names are about half the phonemic length of the stored
  // concatenations, which is what gives the length filter its power.
  const int kProbes = 10;
  const std::vector<dataset::LexiconEntry>& base = lexicon->entries();
  std::vector<const dataset::LexiconEntry*> probes;
  for (int i = 0; i < kProbes; ++i) {
    probes.push_back(&base[(base.size() / kProbes) * i]);
  }

  match::LexEqualOptions match_options;
  match_options.threshold = 0.25;
  match_options.intra_cluster_cost = 0.25;
  match::LexEqualMatcher matcher(match_options);

  // ---- Regime A ----------------------------------------------------
  // Candidates as (text, language) for the UDF baseline, and as the
  // IPA that a derived phonemic column would store (G2P of the same
  // text) for the batch path, so both decide identical match sets.
  std::vector<text::TaggedString> cand_text;
  std::vector<std::string> cand_ipa;
  cand_text.reserve(gen.size());
  cand_ipa.reserve(gen.size());
  for (const dataset::LexiconEntry& e : gen) {
    Result<phonetic::PhonemeString> phon =
        g2p::G2PRegistry::Default().Transform(e.text, e.language);
    if (!phon.ok()) continue;  // keep both sides on the same rows
    cand_text.emplace_back(e.text, e.language);
    cand_ipa.push_back(phon->ToIpa());
  }

  RunResult naive_udf = RunNaiveUdf(matcher, probes, cand_text);

  PrintScalingHeader(
      "A. Match layer — naive UDF re-runs G2P per tuple (paper Table 1"
      " model); parallel path reads the phonemic form via the cache:");
  PrintScalingRow("naive serial UDF (G2P/row)", naive_udf,
                  naive_udf.seconds_per_probe);

  for (uint32_t threads : {1u, 2u, 4u, 8u}) {
    match::ParallelMatcherOptions pm_options;
    pm_options.threads = threads;
    pm_options.cache = &match::PhonemeCache::Default();
    match::ParallelMatcher pm(matcher, pm_options);

    match::PhonemeCache::Default().Clear();
    Result<RunResult> cold = RunParallelIpa(pm, probes, cand_ipa);
    if (!cold.ok()) return 1;
    char label[64];
    std::snprintf(label, sizeof(label), "parallel t=%u cold cache",
                  threads);
    PrintScalingRow(label, *cold, naive_udf.seconds_per_probe);

    Result<RunResult> warm = RunParallelIpa(pm, probes, cand_ipa);
    if (!warm.ok()) return 1;
    std::snprintf(label, sizeof(label), "parallel t=%u warm cache",
                  threads);
    PrintScalingRow(label, *warm, naive_udf.seconds_per_probe);

    if (cold->hits != naive_udf.hits || warm->hits != naive_udf.hits) {
      std::printf("MISMATCH: naive %llu vs parallel %llu/%llu hits\n",
                  static_cast<unsigned long long>(naive_udf.hits),
                  static_cast<unsigned long long>(cold->hits),
                  static_cast<unsigned long long>(warm->hits));
      return 1;
    }
  }

  // ---- Regime B ----------------------------------------------------
  Result<std::unique_ptr<engine::Engine>> db_or =
      BuildGeneratedDb("/tmp/lexequal_parallel_scaling.db", *lexicon, gen);
  if (!db_or.ok()) {
    std::printf("build: %s\n", db_or.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<engine::Engine> db = std::move(db_or).value();
  engine::Session session = db->CreateSession();

  LexEqualQueryOptions options;
  options.match = match_options;
  options.hints.plan = LexEqualPlan::kNaiveUdf;
  Result<RunResult> engine_naive = RunEnginePlan(&session, probes, options);
  if (!engine_naive.ok()) return 1;

  PrintScalingHeader(
      "B. Engine plans over the precomputed phonemic column (both pay"
      " the same heap scan; filters + memoized parses only):");
  PrintScalingRow("kNaiveUdf serial scan", *engine_naive,
                  engine_naive->seconds_per_probe);

  options.hints.plan = LexEqualPlan::kParallelScan;
  for (uint32_t threads : {1u, 4u}) {
    options.hints.threads = threads;
    match::PhonemeCache::Default().Clear();
    Result<RunResult> cold = RunEnginePlan(&session, probes, options);
    if (!cold.ok()) return 1;
    char label[64];
    std::snprintf(label, sizeof(label), "kParallelScan t=%u cold",
                  threads);
    PrintScalingRow(label, *cold, engine_naive->seconds_per_probe);

    Result<RunResult> warm = RunEnginePlan(&session, probes, options);
    if (!warm.ok()) return 1;
    std::snprintf(label, sizeof(label), "kParallelScan t=%u warm",
                  threads);
    PrintScalingRow(label, *warm, engine_naive->seconds_per_probe);

    if (cold->hits != engine_naive->hits ||
        warm->hits != engine_naive->hits) {
      std::printf("MISMATCH: engine naive %llu vs parallel %llu/%llu\n",
                  static_cast<unsigned long long>(engine_naive->hits),
                  static_cast<unsigned long long>(cold->hits),
                  static_cast<unsigned long long>(warm->hits));
      return 1;
    }
  }

  std::printf("\nAll plans returned identical hit counts within their"
              " regime.\n");
  std::printf("hardware_concurrency reported by this machine: %u\n",
              std::thread::hardware_concurrency());
  std::remove("/tmp/lexequal_parallel_scaling.db");
  return 0;
}
