// Table 2: LexEQUAL with q-gram filtering (paper §5.2) — the length,
// count, and position filters prune candidates through the auxiliary
// positional q-gram table before the exact UDF runs.

#include <cstdio>

#include "bench/bench_common.h"

using namespace lexequal;
using namespace lexequal::bench;
using engine::LexEqualPlan;
using engine::LexEqualQueryOptions;
using engine::QueryStats;

int main() {
  Result<dataset::Lexicon> lexicon = dataset::Lexicon::BuildTrilingual();
  if (!lexicon.ok()) return 1;
  std::vector<dataset::LexiconEntry> gen =
      dataset::GenerateConcatenatedDataset(*lexicon,
                                           GeneratedDatasetSize());
  std::printf("Table 2: Q-Gram Filter Performance\n");
  Result<std::unique_ptr<engine::Engine>> db_or =
      BuildGeneratedDb("/tmp/lexequal_table2.db", *lexicon, gen);
  if (!db_or.ok()) return 1;
  std::unique_ptr<engine::Engine> db = std::move(db_or).value();
  engine::Session session = db->CreateSession();

  {
    Timer t;
    Status st = db->CreateIndex({.kind = engine::IndexSpec::Kind::kQGram,
                      .table = "names",
                      .column = "name_phon",
                      .q = 2});
    if (!st.ok()) {
      std::printf("index: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("built auxiliary q-gram table + gram B-Tree in %.1f s\n",
                t.Seconds());
  }

  const int kProbes = 10;
  std::vector<const dataset::LexiconEntry*> probes;
  for (int i = 0; i < kProbes; ++i) {
    probes.push_back(&gen[(gen.size() / kProbes) * i]);
  }

  LexEqualQueryOptions qgram;
  qgram.match.threshold = 0.25;
  qgram.match.intra_cluster_cost = 0.25;
  qgram.hints.plan = LexEqualPlan::kQGramFilter;
  LexEqualQueryOptions naive = qgram;
  naive.hints.plan = LexEqualPlan::kNaiveUdf;

  // --- Scan. ---
  double qgram_scan_s = 0;
  uint64_t udf_calls = 0;
  uint64_t hits = 0;
  {
    Timer t;
    for (const auto* p : probes) {
      engine::QueryRequest req = engine::QueryRequest::
          ThresholdSelectPhonemes("names", "name", p->phonemes);
      req.options = qgram;
      auto result = session.Execute(req);
      if (!result.ok()) {
        std::printf("scan: %s\n", result.status().ToString().c_str());
        return 1;
      }
      udf_calls += result->stats.udf_calls;
      hits += result->rows.size();
    }
    qgram_scan_s = t.Seconds() / kProbes;
  }
  // Naive comparison point (same probes).
  double naive_scan_s = 0;
  {
    Timer t;
    for (const auto* p : probes) {
      engine::QueryRequest req = engine::QueryRequest::
          ThresholdSelectPhonemes("names", "name", p->phonemes);
      req.options = naive;
      auto result = session.Execute(req);
      if (!result.ok()) return 1;
    }
    naive_scan_s = t.Seconds() / kProbes;
  }

  // --- Join on the same 0.2% outer subset as Table 1. ---
  const uint64_t subset =
      std::max<uint64_t>(20, static_cast<uint64_t>(gen.size() * 0.002));
  double qgram_join_s = 0;
  uint64_t join_pairs = 0;
  {
    Timer t;
    engine::QueryRequest req =
        engine::QueryRequest::Join("names", "name", "names", "name");
    req.options = qgram;
    req.outer_limit = subset;
    auto result = session.Execute(req);
    if (!result.ok()) {
      std::printf("join: %s\n", result.status().ToString().c_str());
      return 1;
    }
    join_pairs = result->pairs.size();
    qgram_join_s = t.Seconds();
  }

  PrintTableHeader(
      "Table 2 (paper: 13.5 s scan / 856 s join, vs 1418 s / 4004 s "
      "naive):");
  PrintRow("Scan", "LexEQUAL UDF + q-gram filters", qgram_scan_s);
  char buf[96];
  std::snprintf(buf, sizeof(buf),
                "UDF + q-gram filters (%llu-row outer)",
                static_cast<unsigned long long>(subset));
  PrintRow("Join", buf, qgram_join_s);

  std::printf("\nq-gram scan speedup over naive UDF scan: %.1fx "
              "(paper: ~105x on PL/SQL, where the UDF dominated)\n",
              naive_scan_s / qgram_scan_s);
  std::printf("average UDF calls per scan after filtering: %.0f of "
              "%zu rows\n",
              static_cast<double>(udf_calls) / kProbes, gen.size());
  std::printf("hits %llu, join pairs %llu\n",
              static_cast<unsigned long long>(hits),
              static_cast<unsigned long long>(join_pairs));
  std::remove("/tmp/lexequal_table2.db");
  return 0;
}
