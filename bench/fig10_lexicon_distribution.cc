// Figure 10: frequency distribution of the multiscript lexicon with
// respect to string length, for lexicographic (code-point) and
// phonemic representations.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "text/utf8.h"

using namespace lexequal;

int main() {
  Result<dataset::Lexicon> lexicon = dataset::Lexicon::BuildTrilingual();
  if (!lexicon.ok()) {
    std::printf("lexicon: %s\n", lexicon.status().ToString().c_str());
    return 1;
  }

  constexpr int kMaxLen = 24;
  std::vector<int> text_hist(kMaxLen + 1, 0);
  std::vector<int> phon_hist(kMaxLen + 1, 0);
  for (const dataset::LexiconEntry& e : lexicon->entries()) {
    int tl = static_cast<int>(text::CodePointCount(e.text));
    int pl = static_cast<int>(e.phonemes.size());
    text_hist[std::min(tl, kMaxLen)]++;
    phon_hist[std::min(pl, kMaxLen)]++;
  }

  std::printf("Figure 10: Distribution of Multiscript Lexicon "
              "(match-quality dataset)\n");
  std::printf("entries: %zu   groups: %d\n", lexicon->entries().size(),
              lexicon->group_count());
  std::printf("average lexicographic length: %.2f (paper: 7.35)\n",
              lexicon->AverageTextLength());
  std::printf("average phonemic length:      %.2f (paper: 7.16)\n\n",
              lexicon->AveragePhonemeLength());

  std::printf("| length | lexicographic | phonemic |\n");
  std::printf("|--------|---------------|----------|\n");
  for (int len = 1; len <= kMaxLen; ++len) {
    if (text_hist[len] == 0 && phon_hist[len] == 0) continue;
    std::printf("| %6d | %13d | %8d |\n", len, text_hist[len],
                phon_hist[len]);
  }

  // ASCII bars, as a visual stand-in for the paper's plot.
  std::printf("\nlexicographic length histogram:\n");
  for (int len = 1; len <= kMaxLen; ++len) {
    if (text_hist[len] == 0) continue;
    std::printf("%3d | %s %d\n", len,
                std::string(text_hist[len] / 8, '#').c_str(),
                text_hist[len]);
  }
  std::printf("\nphonemic length histogram:\n");
  for (int len = 1; len <= kMaxLen; ++len) {
    if (phon_hist[len] == 0) continue;
    std::printf("%3d | %s %d\n", len,
                std::string(phon_hist[len] / 8, '#').c_str(),
                phon_hist[len]);
  }
  return 0;
}
