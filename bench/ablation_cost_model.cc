// Ablation: the cost-model design choices DESIGN.md calls out.
//
//  1. Clustered vs. plain Levenshtein matching quality (the paper's
//     central claim that phoneme clusters help).
//  2. The weak-phoneme discount (h/schwa at half cost): quality with
//     and without.
//  3. Bounded (early-exit) vs. full DP latency at matcher thresholds.
//  4. Q-gram length: filter selectivity for q = 1, 2, 3.

#include <cstdio>

#include "bench/bench_common.h"
#include "dataset/metrics.h"
#include "match/edit_distance.h"
#include "match/qgram.h"

using namespace lexequal;
using namespace lexequal::bench;

int main() {
  Result<dataset::Lexicon> lex_or = dataset::Lexicon::BuildTrilingual();
  if (!lex_or.ok()) return 1;
  const dataset::Lexicon& lexicon = lex_or.value();

  // --- 1 & 2: quality ablation at the operating threshold. ---
  std::printf("Quality ablation (threshold 0.25):\n");
  std::printf("| cost model                      | recall | precision "
              "|\n");
  std::printf("|---------------------------------|--------|-----------"
              "|\n");
  struct Config {
    const char* name;
    match::LexEqualOptions options;
  };
  const Config configs[] = {
      {"Levenshtein (cost 1, no discount)",
       {.threshold = 0.25, .intra_cluster_cost = 1.0,
        .weak_phoneme_discount = false}},
      {"clustered 0.25, no discount",
       {.threshold = 0.25, .intra_cluster_cost = 0.25,
        .weak_phoneme_discount = false}},
      {"clustered 0.25 + weak discount",
       {.threshold = 0.25, .intra_cluster_cost = 0.25,
        .weak_phoneme_discount = true}},
      {"Soundex-like (cost 0 + discount)",
       {.threshold = 0.25, .intra_cluster_cost = 0.0,
        .weak_phoneme_discount = true}},
  };
  for (const Config& c : configs) {
    dataset::QualityResult q =
        dataset::EvaluateMatchQuality(lexicon, c.options);
    std::printf("| %-31s | %5.3f  |   %5.3f   |\n", c.name, q.recall,
                q.precision);
  }
  {
    // Continuous feature-weighted substitution costs (no clusters).
    match::FeatureCost feature_cost;
    dataset::QualityResult q = dataset::EvaluateMatchQualityWithCost(
        lexicon, 0.25, feature_cost);
    std::printf("| %-31s | %5.3f  |   %5.3f   |\n",
                "feature-weighted + discount", q.recall, q.precision);
  }

  // --- 3: bounded vs. full DP. ---
  const auto& entries = lexicon.entries();
  match::ClusteredCost cost(phonetic::ClusterTable::Default(), 0.25);
  const int kPairs = 200000;
  double full_ms;
  double bounded_ms;
  {
    Timer t;
    double sink = 0;
    for (int i = 0; i < kPairs; ++i) {
      const auto& a = entries[i % entries.size()].phonemes;
      const auto& b = entries[(i * 13 + 7) % entries.size()].phonemes;
      sink += match::EditDistance(a, b, cost);
    }
    full_ms = t.Millis();
    if (sink < 0) std::printf("impossible\n");
  }
  {
    Timer t;
    double sink = 0;
    for (int i = 0; i < kPairs; ++i) {
      const auto& a = entries[i % entries.size()].phonemes;
      const auto& b = entries[(i * 13 + 7) % entries.size()].phonemes;
      const double bound =
          0.25 * static_cast<double>(std::min(a.size(), b.size()));
      sink += match::BoundedEditDistance(a, b, cost, bound);
    }
    bounded_ms = t.Millis();
    if (sink < 0) std::printf("impossible\n");
  }
  std::printf("\nDP ablation over %d lexicon pairs:\n", kPairs);
  std::printf("  full matrix:        %7.1f ms\n", full_ms);
  std::printf("  bounded early-exit: %7.1f ms  (%.1fx faster at the "
              "matcher's own bound)\n",
              bounded_ms, full_ms / bounded_ms);

  // --- 4: q sweep — how many candidate pairs survive the filters. ---
  std::printf("\nq-gram filter selectivity (k = 0.25 * min length, "
              "2000x2000 lexicon pairs):\n");
  const size_t n = std::min<size_t>(entries.size(), 2000);
  for (int q = 1; q <= 3; ++q) {
    uint64_t survivors = 0;
    uint64_t total = 0;
    Timer t;
    for (size_t i = 0; i < n; i += 4) {
      for (size_t j = i + 1; j < n; j += 4) {
        ++total;
        const double k =
            0.25 * static_cast<double>(std::min(
                       entries[i].phonemes.size(),
                       entries[j].phonemes.size()));
        if (match::PassesQGramFilters(entries[i].phonemes,
                                      entries[j].phonemes, k, q)) {
          ++survivors;
        }
      }
    }
    std::printf("  q=%d: %6.2f%% of pairs survive (%llu of %llu), "
                "%.0f ms\n",
                q, 100.0 * survivors / total,
                static_cast<unsigned long long>(survivors),
                static_cast<unsigned long long>(total), t.Millis());
  }
  std::printf("\nq=2 is the operating point: q=1 grams are near-useless"
              " discriminators,\nq=3 tightens little further on "
              "short names while tripling gram width.\n");
  return 0;
}
