// Figure 12: precision-recall curves, by intra-cluster substitution
// cost and by user match threshold, with the knee (best simultaneous
// recall/precision) identified as in the paper's §4.3.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "dataset/metrics.h"

using namespace lexequal;

namespace {

double DistanceToPerfect(const dataset::QualityResult& r) {
  const double dr = 1.0 - r.recall;
  const double dp = 1.0 - r.precision;
  return std::sqrt(dr * dr + dp * dp);
}

}  // namespace

int main() {
  Result<dataset::Lexicon> lexicon = dataset::Lexicon::BuildTrilingual();
  if (!lexicon.ok()) {
    std::printf("lexicon: %s\n", lexicon.status().ToString().c_str());
    return 1;
  }

  std::printf("Figure 12: Precision-Recall curves\n\n");

  // Left plot: one curve per cost (0, 0.5, 1), threshold as the
  // parameter along the curve.
  const std::vector<double> curve_costs = {0.0, 0.25, 0.5, 1.0};
  const std::vector<double> curve_thresholds = {
      0.0, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.5};
  std::printf("P-R by intra-cluster substitution cost "
              "(threshold varies along curve):\n");
  dataset::QualityResult best;
  double best_dist = 1e9;
  for (double cost : curve_costs) {
    std::printf("  cost %.2f:\n", cost);
    for (double t : curve_thresholds) {
      dataset::QualityResult r = dataset::EvaluateMatchQuality(
          *lexicon, {.threshold = t, .intra_cluster_cost = cost});
      std::printf("    t=%.2f  recall=%.3f  precision=%.3f\n", t,
                  r.recall, r.precision);
      if (DistanceToPerfect(r) < best_dist) {
        best_dist = DistanceToPerfect(r);
        best = r;
      }
    }
  }

  // Right plot: one curve per threshold (0.2, 0.3, 0.4), cost as the
  // parameter along the curve.
  const std::vector<double> fixed_thresholds = {0.2, 0.3, 0.4};
  const std::vector<double> sweep_costs = {0.0, 0.125, 0.25, 0.375,
                                           0.5, 0.75,  1.0};
  std::printf("\nP-R by user match threshold (cost varies along "
              "curve):\n");
  for (double t : fixed_thresholds) {
    std::printf("  threshold %.2f:\n", t);
    for (double cost : sweep_costs) {
      dataset::QualityResult r = dataset::EvaluateMatchQuality(
          *lexicon, {.threshold = t, .intra_cluster_cost = cost});
      std::printf("    c=%.3f  recall=%.3f  precision=%.3f\n", cost,
                  r.recall, r.precision);
      if (DistanceToPerfect(r) < best_dist) {
        best_dist = DistanceToPerfect(r);
        best = r;
      }
    }
  }

  std::printf(
      "\nKnee (closest point to the top-right corner): threshold %.2f, "
      "cost %.3f -> recall %.1f%%, precision %.1f%%\n",
      best.threshold, best.intra_cluster_cost, best.recall * 100,
      best.precision * 100);
  std::printf("Paper: best matching at cost 0.25-0.5, threshold "
              "0.25-0.35 -> recall ~95%%, precision ~85%%.\n");
  return 0;
}
