// Table 3: LexEQUAL with the phonetic index (paper §5.3) — a B-Tree
// over the grouped phoneme string identifier. Faster than q-grams but
// introduces false dismissals (paper: 4-5%), which this bench
// measures against the naive plan.

#include <cstdio>
#include <set>

#include "bench/bench_common.h"

using namespace lexequal;
using namespace lexequal::bench;
using engine::LexEqualPlan;
using engine::LexEqualQueryOptions;
using engine::QueryStats;
using engine::Tuple;

int main() {
  Result<dataset::Lexicon> lexicon = dataset::Lexicon::BuildTrilingual();
  if (!lexicon.ok()) return 1;
  std::vector<dataset::LexiconEntry> gen =
      dataset::GenerateConcatenatedDataset(*lexicon,
                                           GeneratedDatasetSize());
  std::printf("Table 3: Phonetic Index Performance\n");
  Result<std::unique_ptr<engine::Engine>> db_or =
      BuildGeneratedDb("/tmp/lexequal_table3.db", *lexicon, gen);
  if (!db_or.ok()) return 1;
  std::unique_ptr<engine::Engine> db = std::move(db_or).value();
  engine::Session session = db->CreateSession();

  {
    Timer t;
    Status st = db->CreateIndex({.kind = engine::IndexSpec::Kind::kPhonetic,
                      .table = "names",
                      .column = "name_phon"});
    if (!st.ok()) {
      std::printf("index: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("built grouped-phoneme-string-id B-Tree in %.1f s\n",
                t.Seconds());
  }

  const int kProbes = 10;
  std::vector<const dataset::LexiconEntry*> probes;
  for (int i = 0; i < kProbes; ++i) {
    probes.push_back(&gen[(gen.size() / kProbes) * i]);
  }

  LexEqualQueryOptions phon;
  phon.match.threshold = 0.25;
  phon.match.intra_cluster_cost = 0.25;
  phon.hints.plan = LexEqualPlan::kPhoneticIndex;
  LexEqualQueryOptions naive = phon;
  naive.hints.plan = LexEqualPlan::kNaiveUdf;

  // --- Scan. ---
  double phon_scan_s = 0;
  uint64_t hits = 0;
  {
    Timer t;
    for (const auto* p : probes) {
      engine::QueryRequest req = engine::QueryRequest::
          ThresholdSelectPhonemes("names", "name", p->phonemes);
      req.options = phon;
      auto result = session.Execute(req);
      if (!result.ok()) {
        std::printf("scan: %s\n", result.status().ToString().c_str());
        return 1;
      }
      hits += result->rows.size();
    }
    phon_scan_s = t.Seconds() / kProbes;
  }

  // --- Join on the same 0.2% outer subset as Tables 1-2. ---
  const uint64_t subset =
      std::max<uint64_t>(20, static_cast<uint64_t>(gen.size() * 0.002));
  double phon_join_s = 0;
  uint64_t join_pairs = 0;
  {
    Timer t;
    engine::QueryRequest req =
        engine::QueryRequest::Join("names", "name", "names", "name");
    req.options = phon;
    req.outer_limit = subset;
    auto result = session.Execute(req);
    if (!result.ok()) {
      std::printf("join: %s\n", result.status().ToString().c_str());
      return 1;
    }
    join_pairs = result->pairs.size();
    phon_join_s = t.Seconds();
  }

  // --- False dismissals (quality price, §5.3). Two flavours:
  //  * true-match dismissals: tag-equivalent rows the naive plan
  //    finds but the index misses — comparable to the paper's 4-5%;
  //  * weighted-match dismissals: ALL naive matches missed, which
  //    additionally counts near-name matches whose phonemes differ
  //    across clusters ("strings within the classical definition of
  //    edit-distance, but with substitutions across groups, will not
  //    be reported").
  const int kQualityProbes = 60;
  uint64_t naive_true = 0;
  uint64_t kept_true = 0;
  uint64_t naive_all = 0;
  uint64_t kept_all = 0;
  for (int i = 0; i < kQualityProbes; ++i) {
    const auto* p = &gen[(gen.size() / kQualityProbes) * i];
    engine::QueryRequest naive_req = engine::QueryRequest::
        ThresholdSelectPhonemes("names", "name", p->phonemes);
    naive_req.options = naive;
    engine::QueryRequest phon_req = naive_req;
    phon_req.options = phon;
    auto full = session.Execute(naive_req);
    auto fast = session.Execute(phon_req);
    if (!full.ok() || !fast.ok()) return 1;
    std::set<std::string> fast_set;
    for (const Tuple& row : fast->rows) {
      fast_set.insert(row[0].AsString().text());
    }
    for (const Tuple& row : full->rows) {
      const bool kept = fast_set.count(row[0].AsString().text()) > 0;
      ++naive_all;
      kept_all += kept ? 1 : 0;
      if (row[2].AsInt64() == p->tag) {  // ground-truth equivalent
        ++naive_true;
        kept_true += kept ? 1 : 0;
      }
    }
  }
  auto rate = [](uint64_t kept, uint64_t total) {
    return total == 0 ? 0.0
                      : 1.0 - static_cast<double>(kept) /
                                  static_cast<double>(total);
  };

  PrintTableHeader(
      "Table 3 (paper: 0.71 s scan / 15.2 s join, 4-5% false "
      "dismissals):");
  PrintRow("Scan", "LexEQUAL UDF + phonetic index", phon_scan_s);
  char buf[96];
  std::snprintf(buf, sizeof(buf),
                "UDF + phonetic index (%llu-row outer)",
                static_cast<unsigned long long>(subset));
  PrintRow("Join", buf, phon_join_s);

  std::printf("\ntrue-match (tag) false dismissals:      %.1f%% "
              "(paper: 4-5%%)\n",
              rate(kept_true, naive_true) * 100);
  std::printf("all weighted-match false dismissals:     %.1f%% "
              "(cross-cluster near-names, by design)\n",
              rate(kept_all, naive_all) * 100);
  std::printf("hits %llu, join pairs %llu\n",
              static_cast<unsigned long long>(hits),
              static_cast<unsigned long long>(join_pairs));
  std::remove("/tmp/lexequal_table3.db");
  return 0;
}
