// Micro-benchmarks (google-benchmark) for the engineering-level
// hot paths: G2P conversion, edit distance variants, q-gram
// generation, phonetic keys, and B-Tree operations. Not a paper
// table; used for ablation and regression tracking.

#include <benchmark/benchmark.h>

#include <filesystem>

#include "dataset/lexicon.h"
#include "g2p/g2p.h"
#include "index/btree.h"
#include "match/edit_distance.h"
#include "match/qgram.h"
#include "phonetic/phonetic_key.h"
#include "phonetic/soundex.h"

namespace {

using namespace lexequal;

const dataset::Lexicon& Lex() {
  static const dataset::Lexicon& lex =
      *new dataset::Lexicon(dataset::Lexicon::BuildTrilingual().value());
  return lex;
}

void BM_EnglishG2P(benchmark::State& state) {
  const g2p::G2PRegistry& g2p = g2p::G2PRegistry::Default();
  size_t i = 0;
  const auto& entries = Lex().entries();
  for (auto _ : state) {
    const auto& e = entries[(i += 3) % entries.size()];
    if (e.language != text::Language::kEnglish) continue;
    benchmark::DoNotOptimize(g2p.Transform(e.text, e.language));
  }
}
BENCHMARK(BM_EnglishG2P);

void BM_IndicG2P(benchmark::State& state) {
  const g2p::G2PRegistry& g2p = g2p::G2PRegistry::Default();
  size_t i = 1;  // Hindi entries sit at offset 1 of each triple
  const auto& entries = Lex().entries();
  for (auto _ : state) {
    const auto& e = entries[(i += 3) % entries.size()];
    benchmark::DoNotOptimize(g2p.Transform(e.text, e.language));
  }
}
BENCHMARK(BM_IndicG2P);

void BM_EditDistanceFull(benchmark::State& state) {
  match::ClusteredCost cost(phonetic::ClusterTable::Default(), 0.25);
  const auto& entries = Lex().entries();
  size_t i = 0;
  for (auto _ : state) {
    const auto& a = entries[i % entries.size()].phonemes;
    const auto& b = entries[(i + 7) % entries.size()].phonemes;
    ++i;
    benchmark::DoNotOptimize(match::EditDistance(a, b, cost));
  }
}
BENCHMARK(BM_EditDistanceFull);

void BM_EditDistanceBounded(benchmark::State& state) {
  // The threshold-aware variant used by the matcher: early exit makes
  // the common non-match case cheap.
  match::ClusteredCost cost(phonetic::ClusterTable::Default(), 0.25);
  const auto& entries = Lex().entries();
  size_t i = 0;
  for (auto _ : state) {
    const auto& a = entries[i % entries.size()].phonemes;
    const auto& b = entries[(i + 7) % entries.size()].phonemes;
    ++i;
    benchmark::DoNotOptimize(
        match::BoundedEditDistance(a, b, cost, 1.5));
  }
}
BENCHMARK(BM_EditDistanceBounded);

void BM_PositionalQGrams(benchmark::State& state) {
  const auto& entries = Lex().entries();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        match::PositionalQGrams(entries[i % entries.size()].phonemes, 2));
    ++i;
  }
}
BENCHMARK(BM_PositionalQGrams);

void BM_GroupedPhonemeKey(benchmark::State& state) {
  const auto& entries = Lex().entries();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(phonetic::GroupedPhonemeStringId(
        entries[i % entries.size()].phonemes,
        phonetic::ClusterTable::Default()));
    ++i;
  }
}
BENCHMARK(BM_GroupedPhonemeKey);

void BM_Soundex(benchmark::State& state) {
  const auto& entries = Lex().entries();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        phonetic::Soundex(entries[i % entries.size()].text));
    i += 3;  // stay on Latin entries
  }
}
BENCHMARK(BM_Soundex);

void BM_BTreeInsert(benchmark::State& state) {
  const std::string path = "/tmp/lexequal_micro_btree.db";
  std::filesystem::remove(path);
  auto disk = storage::DiskManager::Open(path).value();
  storage::BufferPool pool(disk.get(), 1024);
  index::BTree tree = index::BTree::Create(&pool).value();
  uint64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tree.Insert(key * 2654435761u % 100000,
                    storage::RID{static_cast<uint32_t>(key), 0}));
    ++key;
  }
  state.SetItemsProcessed(static_cast<int64_t>(key));
  std::filesystem::remove(path);
}
BENCHMARK(BM_BTreeInsert);

void BM_BTreeScanEqual(benchmark::State& state) {
  const std::string path = "/tmp/lexequal_micro_btree2.db";
  std::filesystem::remove(path);
  auto disk = storage::DiskManager::Open(path).value();
  storage::BufferPool pool(disk.get(), 1024);
  index::BTree tree = index::BTree::Create(&pool).value();
  for (uint64_t i = 0; i < 100000; ++i) {
    (void)tree.Insert(i % 9973, storage::RID{static_cast<uint32_t>(i), 0});
  }
  uint64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.ScanEqual(key++ % 9973));
  }
  std::filesystem::remove(path);
}
BENCHMARK(BM_BTreeScanEqual);

}  // namespace

BENCHMARK_MAIN();
