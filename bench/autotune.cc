// Automatic parameter selection (paper future work): grid-search the
// (threshold, intra-cluster cost) space on a training sample and
// validate the chosen setting on the held-out remainder.

#include <cstdio>

#include "bench/bench_common.h"
#include "dataset/tuner.h"

using namespace lexequal;
using namespace lexequal::bench;

int main() {
  Result<dataset::Lexicon> lex_or = dataset::Lexicon::BuildTrilingual();
  if (!lex_or.ok()) return 1;
  const dataset::Lexicon& full = lex_or.value();

  // Train on the first 250 groups; validate on the full lexicon.
  const dataset::Lexicon training = full.Sample(250);
  std::printf("Auto-tuning on %zu training entries (%d groups)\n",
              training.entries().size(), training.group_count());

  const struct {
    dataset::TuneObjective objective;
    const char* name;
  } objectives[] = {
      {dataset::TuneObjective::kF1, "F1"},
      {dataset::TuneObjective::kRecallFirst, "recall-first"},
      {dataset::TuneObjective::kPrecisionFirst, "precision-first"},
  };

  for (const auto& [objective, name] : objectives) {
    Timer t;
    dataset::TuneResult best =
        dataset::TuneParameters(training, objective);
    dataset::QualityResult validation =
        dataset::EvaluateMatchQuality(full, best.options);
    std::printf(
        "\nobjective %-15s (%.1f s, %zu grid points)\n"
        "  chosen: threshold %.2f, intra-cluster cost %.3f\n"
        "  training:   recall %.3f  precision %.3f\n"
        "  validation: recall %.3f  precision %.3f\n",
        name, t.Seconds(), best.grid.size(), best.options.threshold,
        best.options.intra_cluster_cost, best.quality.recall,
        best.quality.precision, validation.recall, validation.precision);
  }
  std::printf("\nPaper reference point: threshold 0.25-0.35, cost "
              "0.25-0.5 -> recall ~95%%, precision ~85%%.\n");
  return 0;
}
