// Baseline: classic Soundex — the only phonetic matching databases
// offered when the paper was written (§2.2) — against LexEQUAL on the
// same tagged lexicon.
//
// Soundex is Latin-alphabet-only, so it cannot say anything about a
// Devanagari or Tamil string: every cross-script pair is unmatchable.
// The bench quantifies exactly that gap, plus Soundex's quality on
// the Latin-only subset where it does apply.

#include <cstdio>

#include "bench/bench_common.h"
#include "dataset/metrics.h"
#include "phonetic/soundex.h"

using namespace lexequal;

int main() {
  Result<dataset::Lexicon> lex_or = dataset::Lexicon::BuildTrilingual();
  if (!lex_or.ok()) return 1;
  const dataset::Lexicon& lexicon = lex_or.value();
  const auto& entries = lexicon.entries();

  // Soundex over every pair: Latin-script pairs compare by code,
  // anything else cannot match.
  uint64_t ideal = 0;
  for (int n : lexicon.group_sizes()) {
    ideal += static_cast<uint64_t>(n) * (n - 1) / 2;
  }
  uint64_t m1 = 0;
  uint64_t m2 = 0;
  for (size_t i = 0; i < entries.size(); ++i) {
    const bool latin_i =
        entries[i].language == text::Language::kEnglish;
    for (size_t j = i + 1; j < entries.size(); ++j) {
      if (!latin_i || entries[j].language != text::Language::kEnglish) {
        continue;  // Soundex undefined across scripts
      }
      if (phonetic::SoundexEqual(entries[i].text, entries[j].text)) {
        ++m2;
        if (entries[i].tag == entries[j].tag) ++m1;
      }
    }
  }
  const double soundex_recall =
      static_cast<double>(m1) / static_cast<double>(ideal);
  const double soundex_precision =
      m2 == 0 ? 1.0 : static_cast<double>(m1) / static_cast<double>(m2);

  dataset::QualityResult lexequal = dataset::EvaluateMatchQuality(
      lexicon, {.threshold = 0.2, .intra_cluster_cost = 0.25});

  std::printf("Baseline comparison on the tagged trilingual lexicon "
              "(%zu entries, %llu true pairs):\n\n",
              entries.size(), static_cast<unsigned long long>(ideal));
  std::printf("| matcher                    | recall | precision | "
              "cross-script? |\n");
  std::printf("|----------------------------|--------|-----------|-"
              "--------------|\n");
  std::printf("| Soundex (SQL built-in)     | %5.3f  |   %5.3f   | "
              "no            |\n",
              soundex_recall, soundex_precision);
  std::printf("| LexEQUAL (t=0.2, c=0.25)   | %5.3f  |   %5.3f   | "
              "yes           |\n\n",
              lexequal.recall, lexequal.precision);
  std::printf(
      "Soundex can only ever reach the fraction of true pairs that are\n"
      "Latin-Latin (spelling variants like Catherine/Katherine); all\n"
      "cross-script pairs — the vast majority — are out of its reach.\n"
      "This is the gap the LexEQUAL operator exists to close.\n");
  return 0;
}
