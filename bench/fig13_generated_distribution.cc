// Figure 13: frequency distribution of the synthetically generated
// performance dataset (within-language concatenation; paper §5).

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "text/utf8.h"

using namespace lexequal;

int main() {
  Result<dataset::Lexicon> lexicon = dataset::Lexicon::BuildTrilingual();
  if (!lexicon.ok()) {
    std::printf("lexicon: %s\n", lexicon.status().ToString().c_str());
    return 1;
  }
  const size_t limit = bench::GeneratedDatasetSize();
  std::vector<dataset::LexiconEntry> gen =
      dataset::GenerateConcatenatedDataset(*lexicon, limit);

  constexpr int kMaxLen = 40;
  std::vector<int> text_hist(kMaxLen + 1, 0);
  std::vector<int> phon_hist(kMaxLen + 1, 0);
  double text_sum = 0;
  double phon_sum = 0;
  for (const dataset::LexiconEntry& e : gen) {
    int tl = static_cast<int>(text::CodePointCount(e.text));
    int pl = static_cast<int>(e.phonemes.size());
    text_sum += tl;
    phon_sum += pl;
    text_hist[std::min(tl, kMaxLen)]++;
    phon_hist[std::min(pl, kMaxLen)]++;
  }

  std::printf("Figure 13: Distribution of the Generated Data Set "
              "(performance experiments)\n");
  std::printf("generated rows: %zu (paper: ~200,000; set "
              "LEXEQUAL_DATASET_SIZE=0 for the full concatenation "
              "set)\n",
              gen.size());
  std::printf("average lexicographic length: %.2f (paper: 14.71)\n",
              text_sum / gen.size());
  std::printf("average phonemic length:      %.2f (paper: 14.31)\n\n",
              phon_sum / gen.size());

  std::printf("| length | lexicographic | phonemic |\n");
  std::printf("|--------|---------------|----------|\n");
  for (int len = 1; len <= kMaxLen; ++len) {
    if (text_hist[len] == 0 && phon_hist[len] == 0) continue;
    std::printf("| %6d | %13d | %8d |\n", len, text_hist[len],
                phon_hist[len]);
  }
  return 0;
}
