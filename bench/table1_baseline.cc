// Table 1: relative performance of exact matching (native = operator)
// vs. the naive LexEQUAL UDF, for selection scans and equi-joins.
//
// The paper ran the UDF join on a 0.2% subset of the table ("the full
// table join using UDF took about 3 days"); this bench does the same
// and prints both the measured subset time and the scaled full-join
// estimate.

#include <cstdio>

#include "bench/bench_common.h"

using namespace lexequal;
using namespace lexequal::bench;
using engine::LexEqualPlan;
using engine::LexEqualQueryOptions;
using engine::QueryStats;
using engine::Tuple;
using engine::Value;

int main() {
  Result<dataset::Lexicon> lexicon = dataset::Lexicon::BuildTrilingual();
  if (!lexicon.ok()) return 1;
  std::vector<dataset::LexiconEntry> gen =
      dataset::GenerateConcatenatedDataset(*lexicon,
                                           GeneratedDatasetSize());
  std::printf("Table 1: Relative Performance of Approximate Matching\n");
  Result<std::unique_ptr<engine::Engine>> db_or =
      BuildGeneratedDb("/tmp/lexequal_table1.db", *lexicon, gen);
  if (!db_or.ok()) {
    std::printf("build: %s\n", db_or.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<engine::Engine> db = std::move(db_or).value();
  engine::Session session = db->CreateSession();

  // Probe queries: a deterministic sample of stored names.
  const int kProbes = 10;
  std::vector<const dataset::LexiconEntry*> probes;
  for (int i = 0; i < kProbes; ++i) {
    probes.push_back(&gen[(gen.size() / kProbes) * i]);
  }

  LexEqualQueryOptions naive;
  naive.match.threshold = 0.25;
  naive.match.intra_cluster_cost = 0.25;
  naive.hints.plan = LexEqualPlan::kNaiveUdf;

  // --- Scan, exact (= operator). ---
  double exact_scan_s = 0;
  uint64_t exact_hits = 0;
  {
    Timer t;
    for (const auto* p : probes) {
      auto result = session.Execute(engine::QueryRequest::ExactSelect(
          "names", "name", Value::String(p->text, p->language)));
      if (!result.ok()) return 1;
      exact_hits += result->rows.size();
    }
    exact_scan_s = t.Seconds() / kProbes;
  }

  // --- Scan, approximate (LexEQUAL UDF, full scan). ---
  double udf_scan_s = 0;
  uint64_t udf_hits = 0;
  {
    Timer t;
    for (const auto* p : probes) {
      engine::QueryRequest req = engine::QueryRequest::
          ThresholdSelectPhonemes("names", "name", p->phonemes);
      req.options = naive;
      auto result = session.Execute(req);
      if (!result.ok()) {
        std::printf("scan: %s\n", result.status().ToString().c_str());
        return 1;
      }
      udf_hits += result->rows.size();
    }
    udf_scan_s = t.Seconds() / kProbes;
  }

  // --- Join, exact. ---
  double exact_join_s = 0;
  {
    Timer t;
    auto result = session.Execute(
        engine::QueryRequest::ExactJoin("names", "name", "names", "name"));
    if (!result.ok()) return 1;
    exact_join_s = t.Seconds();
  }

  // --- Join, approximate (UDF on a 0.2% outer subset). ---
  const uint64_t subset =
      std::max<uint64_t>(20, static_cast<uint64_t>(gen.size() * 0.002));
  double udf_join_s = 0;
  uint64_t join_results = 0;
  {
    Timer t;
    engine::QueryRequest req =
        engine::QueryRequest::Join("names", "name", "names", "name");
    req.options = naive;
    req.outer_limit = subset;
    auto result = session.Execute(req);
    if (!result.ok()) {
      std::printf("join: %s\n", result.status().ToString().c_str());
      return 1;
    }
    join_results = result->pairs.size();
    udf_join_s = t.Seconds();
  }
  const double scaled_join =
      udf_join_s * static_cast<double>(gen.size()) /
      static_cast<double>(subset);

  PrintTableHeader("Table 1 (paper: 0.59 s / 1418 s / 0.20 s / 4004 s "
                   "on Oracle 9i + PL/SQL):");
  PrintRow("Scan", "Exact (= operator)", exact_scan_s);
  PrintRow("Scan", "Approximate (LexEQUAL UDF)", udf_scan_s);
  PrintRow("Join", "Exact (= operator)", exact_join_s);
  char buf[96];
  std::snprintf(buf, sizeof(buf),
                "Approximate (UDF, %llu-row outer subset)",
                static_cast<unsigned long long>(subset));
  PrintRow("Join", buf, udf_join_s);

  std::printf("\nUDF scan is %.0fx slower than the native = scan "
              "(paper: ~2400x on PL/SQL).\n",
              udf_scan_s / exact_scan_s);
  std::printf("Estimated full UDF join: %.0f s (paper extrapolated "
              "'about 3 days').\n",
              scaled_join);
  std::printf("hits: exact %llu, lexequal %llu, join pairs %llu\n",
              static_cast<unsigned long long>(exact_hits),
              static_cast<unsigned long long>(udf_hits),
              static_cast<unsigned long long>(join_results));
  std::remove("/tmp/lexequal_table1.db");
  return 0;
}
