// Figure 11: recall and precision vs. user match threshold, one curve
// per intra-cluster substitution cost.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "dataset/metrics.h"

using namespace lexequal;

int main() {
  Result<dataset::Lexicon> lexicon = dataset::Lexicon::BuildTrilingual();
  if (!lexicon.ok()) {
    std::printf("lexicon: %s\n", lexicon.status().ToString().c_str());
    return 1;
  }

  const std::vector<double> costs = {0.0, 0.25, 0.5, 0.75, 1.0};
  const std::vector<double> thresholds = {0.0,  0.05, 0.1,  0.15, 0.2,
                                          0.25, 0.3,  0.35, 0.4,  0.45,
                                          0.5,  0.6,  0.8,  1.0};

  std::printf("Figure 11: Recall and Precision vs. user match "
              "threshold\n");
  std::printf("(all-pairs phonemic matching over the tagged trilingual "
              "lexicon, %zu entries)\n\n",
              lexicon->entries().size());

  bench::Timer total;
  // Recall table.
  std::printf("RECALL\n| thresh |");
  for (double c : costs) std::printf("  cost %.2f |", c);
  std::printf("\n|--------|");
  for (size_t i = 0; i < costs.size(); ++i) std::printf("-----------|");
  std::printf("\n");
  std::vector<std::vector<dataset::QualityResult>> grid(costs.size());
  for (size_t ci = 0; ci < costs.size(); ++ci) {
    for (double t : thresholds) {
      grid[ci].push_back(dataset::EvaluateMatchQuality(
          *lexicon, {.threshold = t, .intra_cluster_cost = costs[ci]}));
    }
  }
  for (size_t ti = 0; ti < thresholds.size(); ++ti) {
    std::printf("|  %4.2f  |", thresholds[ti]);
    for (size_t ci = 0; ci < costs.size(); ++ci) {
      std::printf("   %6.3f  |", grid[ci][ti].recall);
    }
    std::printf("\n");
  }

  std::printf("\nPRECISION\n| thresh |");
  for (double c : costs) std::printf("  cost %.2f |", c);
  std::printf("\n|--------|");
  for (size_t i = 0; i < costs.size(); ++i) std::printf("-----------|");
  std::printf("\n");
  for (size_t ti = 0; ti < thresholds.size(); ++ti) {
    std::printf("|  %4.2f  |", thresholds[ti]);
    for (size_t ci = 0; ci < costs.size(); ++ci) {
      std::printf("   %6.3f  |", grid[ci][ti].precision);
    }
    std::printf("\n");
  }

  // Per-language-pair recall at the operating point: which script
  // pair loses the most matches (Tamil's lossy stops, typically).
  std::printf("\nPer-language-pair recall at (t=0.25, c=0.25):\n");
  for (const dataset::PairwiseQuality& p :
       dataset::EvaluatePairwiseRecall(
           *lexicon, {.threshold = 0.25, .intra_cluster_cost = 0.25})) {
    std::printf("  %-8s ~ %-8s  recall %.3f  (%llu of %llu)\n",
                std::string(text::LanguageName(p.a)).c_str(),
                std::string(text::LanguageName(p.b)).c_str(), p.recall,
                static_cast<unsigned long long>(p.correct),
                static_cast<unsigned long long>(p.ideal));
  }

  std::printf(
      "\nPaper shape checks:\n"
      "  recall rises with threshold and reaches ~1 by 0.5:  %s\n"
      "  recall improves as cost drops (Soundex assumption):  %s\n"
      "  precision falls with threshold; collapse is fastest at "
      "cost 0: %s\n",
      grid[1].back().recall > 0.99 ? "yes" : "NO",
      grid[0][4].recall >= grid[4][4].recall ? "yes" : "NO",
      grid[0][2].precision < grid[4][2].precision + 0.3 ? "yes" : "NO");
  std::printf("total evaluation time: %.1f s\n", total.Seconds());
  return 0;
}
