// Multi-session read-throughput scaling: N client threads, each with
// its own Session over ONE shared Engine, hammer threshold selects
// against a warm 200k-row workload. This is the bench the tentpole
// Engine/Session split exists for — before it, every client was
// serialized through one Database object; after it, readers share the
// engine latch and scale with cores.
//
// Sweep: 1/2/4/8 sessions. Each thread runs the same probe rotation
// through Session::Execute with the q-gram filter plan pinned (one
// thread per session; kParallelScan would nest a worker pool inside
// every client and muddy the scaling story). The phoneme cache and
// buffer pool are warmed by a full pre-pass, so the sweep measures
// steady-state query throughput, not first-touch I/O.
//
// Acceptance (full run, >= 4 hardware threads): warm read throughput
// at 4 sessions > 1.8x the 1-session baseline. On fewer cores the
// ratio is recorded in the JSON but not enforced — a single-core
// container cannot exhibit parallel speedup (the printed
// hardware_concurrency documents why) and the sweep instead checks
// that concurrent sessions agree with the serial hit counts.
//
// Usage:
//   ./bench/session_concurrency               full run, BENCH_session.json
//   ./bench/session_concurrency --smoke       tiny dataset + short sweep
//   ./bench/session_concurrency --json <path> JSON output path

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"

using namespace lexequal;
using namespace lexequal::bench;
using engine::LexEqualPlan;
using engine::LexEqualQueryOptions;

namespace {

struct SweepPoint {
  int sessions = 0;
  double wall_s = 0;
  uint64_t queries = 0;
  uint64_t hits = 0;
  double p50_ms = 0;
  double p99_ms = 0;

  double Qps() const { return wall_s > 0 ? queries / wall_s : 0.0; }
};

double Percentile(std::vector<double>& sorted_ms, double p) {
  if (sorted_ms.empty()) return 0.0;
  const size_t idx = static_cast<size_t>(p * (sorted_ms.size() - 1));
  return sorted_ms[idx];
}

// One client thread: a private Session, `queries` threshold selects
// rotating through the probe set from a thread-specific offset.
// Returns false into `failed` on any engine error.
void ClientThread(engine::Engine* engine, int id, int queries,
                  const std::vector<const dataset::LexiconEntry*>& probes,
                  const LexEqualQueryOptions& options,
                  std::vector<double>* latencies_ms,
                  std::atomic<uint64_t>* hits,
                  std::atomic<bool>* failed) {
  engine::Session session = engine->CreateSession();
  session.set_default_options(options);
  latencies_ms->reserve(queries);
  for (int i = 0; i < queries; ++i) {
    const dataset::LexiconEntry* p =
        probes[(id * 7 + i) % probes.size()];
    Timer t;
    auto result = session.Execute(engine::QueryRequest::
        ThresholdSelectPhonemes("names", "name", p->phonemes));
    latencies_ms->push_back(t.Millis());
    if (!result.ok()) {
      std::printf("session %d: %s\n", id,
                  result.status().ToString().c_str());
      failed->store(true);
      return;
    }
    hits->fetch_add(result->rows.size(), std::memory_order_relaxed);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_session.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  Result<dataset::Lexicon> lexicon = dataset::Lexicon::BuildTrilingual();
  if (!lexicon.ok()) return 1;
  // queries_per_session is kept a multiple of the probe count so
  // every thread runs whole rotations and the hit-count parity gate
  // below stays exact at every sweep point.
  const size_t rows = smoke ? 2000 : GeneratedDatasetSize(200000);
  const int queries_per_session = smoke ? 4 : 20;
  const int kProbes = smoke ? 4 : 10;
  std::vector<dataset::LexiconEntry> gen =
      dataset::GenerateConcatenatedDataset(*lexicon, rows);
  std::printf("session_concurrency: %zu rows, %d queries/session%s, "
              "hardware_concurrency=%u\n",
              gen.size(), queries_per_session, smoke ? " (smoke)" : "",
              std::thread::hardware_concurrency());

  Result<std::unique_ptr<engine::Engine>> db_or = BuildGeneratedDb(
      "/tmp/lexequal_session_concurrency.db", *lexicon, gen);
  if (!db_or.ok()) {
    std::printf("build: %s\n", db_or.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<engine::Engine> db = std::move(db_or).value();
  if (!db->CreateIndex({.kind = engine::IndexSpec::Kind::kQGram,
                        .table = "names",
                        .column = "name_phon",
                        .q = 2}).ok()) return 1;
  if (!db->AnalyzeAll().ok()) return 1;

  // Probe with stored entries so every query has guaranteed matches
  // to verify — the kernel work per query is what the sessions
  // contend over, and zero-hit probes would measure only the filter.
  std::vector<const dataset::LexiconEntry*> probes;
  for (int i = 0; i < kProbes; ++i) {
    probes.push_back(&gen[(gen.size() / kProbes) * i]);
  }

  LexEqualQueryOptions options;
  options.match.threshold = 0.25;
  options.match.intra_cluster_cost = 0.25;
  options.hints.plan = LexEqualPlan::kQGramFilter;

  // Warm pass: faults every postings page and fills the phoneme cache,
  // and fixes the per-probe reference hit counts for the parity check.
  uint64_t serial_hits = 0;
  {
    engine::Session warm = db->CreateSession();
    warm.set_default_options(options);
    for (const dataset::LexiconEntry* p : probes) {
      auto result = warm.Execute(engine::QueryRequest::
          ThresholdSelectPhonemes("names", "name", p->phonemes));
      if (!result.ok()) {
        std::printf("warm: %s\n", result.status().ToString().c_str());
        return 1;
      }
      serial_hits += result->rows.size();
    }
  }

  std::printf("\n| %-9s | %10s | %9s | %8s | %8s | %8s |\n", "sessions",
              "wall", "qps", "speedup", "p50", "p99");
  std::printf("|-----------|------------|-----------|----------|"
              "----------|----------|\n");

  std::vector<SweepPoint> sweep;
  for (int sessions : {1, 2, 4, 8}) {
    SweepPoint point;
    point.sessions = sessions;
    point.queries =
        static_cast<uint64_t>(sessions) * queries_per_session;
    std::vector<std::vector<double>> latencies(sessions);
    std::atomic<uint64_t> hits{0};
    std::atomic<bool> failed{false};
    std::vector<std::thread> threads;
    Timer wall;
    for (int id = 0; id < sessions; ++id) {
      threads.emplace_back(ClientThread, db.get(), id,
                           queries_per_session, std::cref(probes),
                           std::cref(options), &latencies[id], &hits,
                           &failed);
    }
    for (std::thread& t : threads) t.join();
    point.wall_s = wall.Seconds();
    if (failed.load()) return 1;
    point.hits = hits.load();

    std::vector<double> all_ms;
    for (const auto& per_thread : latencies) {
      all_ms.insert(all_ms.end(), per_thread.begin(), per_thread.end());
    }
    std::sort(all_ms.begin(), all_ms.end());
    point.p50_ms = Percentile(all_ms, 0.50);
    point.p99_ms = Percentile(all_ms, 0.99);
    sweep.push_back(point);

    const double speedup =
        sweep.front().Qps() > 0 ? point.Qps() / sweep.front().Qps() : 0;
    std::printf("| %9d | %8.3f s | %9.1f | %7.2fx | %6.2f ms | "
                "%6.2f ms |\n",
                sessions, point.wall_s, point.Qps(), speedup,
                point.p50_ms, point.p99_ms);
  }

  // Parity: every sweep point must agree with the serial reference —
  // concurrent sessions may not change what a query returns. Each
  // thread rotates through the whole probe set from its own offset,
  // so expected hits scale with queries / kProbes full rotations.
  bool parity_ok = true;
  for (const SweepPoint& point : sweep) {
    const uint64_t expected =
        serial_hits * (point.queries / probes.size());
    if (point.queries % probes.size() == 0 && point.hits != expected) {
      std::printf("MISMATCH: %d sessions returned %llu hits, serial "
                  "reference implies %llu\n",
                  point.sessions,
                  static_cast<unsigned long long>(point.hits),
                  static_cast<unsigned long long>(expected));
      parity_ok = false;
    }
  }
  if (!parity_ok) return 1;

  const SweepPoint* four = nullptr;
  for (const SweepPoint& point : sweep) {
    if (point.sessions == 4) four = &point;
  }
  const double scaling_1_to_4 =
      (four != nullptr && sweep.front().Qps() > 0)
          ? four->Qps() / sweep.front().Qps()
          : 0.0;
  const unsigned hw = std::thread::hardware_concurrency();
  const bool enforce = !smoke && hw >= 4;
  std::printf("\nread throughput 1 -> 4 sessions: %.2fx (target > 1.8x"
              " on >= 4 hardware threads; this machine has %u)\n",
              scaling_1_to_4, hw);

  FILE* json = std::fopen(json_path.c_str(), "w");
  if (json == nullptr) {
    std::printf("cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(json,
               "{\"dataset_rows\": %zu, \"queries_per_session\": %d, "
               "\"hardware_concurrency\": %u, "
               "\"scaling_1_to_4\": %.3f, \"target_enforced\": %s, "
               "\"sweep\": [",
               gen.size(), queries_per_session, hw, scaling_1_to_4,
               enforce ? "true" : "false");
  bool first = true;
  for (const SweepPoint& point : sweep) {
    std::fprintf(json,
                 "%s{\"sessions\": %d, \"wall_s\": %.4f, "
                 "\"qps\": %.2f, \"p50_ms\": %.3f, \"p99_ms\": %.3f, "
                 "\"hits\": %llu}",
                 first ? "" : ", ", point.sessions, point.wall_s,
                 point.Qps(), point.p50_ms, point.p99_ms,
                 static_cast<unsigned long long>(point.hits));
    first = false;
  }
  std::fprintf(json, "]}\n");
  std::fclose(json);
  std::printf("wrote %s\n", json_path.c_str());

  db.reset();
  std::remove("/tmp/lexequal_session_concurrency.db");

  if (enforce && scaling_1_to_4 <= 1.8) {
    std::printf("FAIL: 1 -> 4 session scaling %.2fx <= 1.8x\n",
                scaling_1_to_4);
    return 1;
  }
  return 0;
}
