// Top-K retrieval bench: ranked `ORDER BY lexsim(...) LIMIT k`
// through the inverted index's skip-block WAND scan against the
// brute-force kernel ranking.
//
// Workload: a multiscript name directory — the paper's motivating
// scenario (telephone-directory lookup, Sec. 1). Rows are single
// names sampled with replacement from the trilingual lexicon, so
// popular names repeat across scripts exactly as directory entries
// do, and each probe is a name that genuinely occurs in the table.
// This is the shape that rewards an early-termination scan: the
// top-k answers sit in the rarest gram lists, so the certification
// bound fires after merging only a few of them.
//
// Two gates:
//   parity   — the invidx ranking must equal the brute-force ranking
//              bit-for-bit (rows, scores, tie order), in every mode.
//   pruning  — on full runs, top-K at k <= 10 must examine < 20% of
//              the postings a full merge of the probe's gram lists
//              touches (the whole point of the skip blocks + score
//              upper bounds). The full-merge baseline is measured,
//              not modeled: the threshold plan's merge over the same
//              probe decodes every posting in those lists.
//
// Usage:
//   ./bench/topk_retrieval               full run, writes BENCH_topk.json
//   ./bench/topk_retrieval --smoke       tiny dataset + parity only (ctest)
//   ./bench/topk_retrieval --json <path> JSON output path

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/random.h"
#include "dataset/lexicon.h"
#include "engine/session.h"

using namespace lexequal;
using namespace lexequal::bench;
using engine::Engine;
using engine::LexEqualPlan;
using engine::LexEqualQueryOptions;
using engine::QueryRequest;
using engine::QueryStats;
using engine::Session;
using engine::TopKRow;

namespace {

constexpr size_t kProbes = 10;
constexpr size_t kKValues[] = {1, 5, 10};
constexpr double kMaxPostingsFraction = 0.20;

struct KResult {
  size_t k = 0;
  uint64_t topk_postings = 0;       // examined by the WAND scan
  uint64_t merge_postings = 0;      // examined by the full merge
  uint64_t postings_skipped = 0;
  uint64_t early_terminated = 0;
  uint64_t fallbacks = 0;
  double invidx_ms = 0;
  double brute_ms = 0;

  double Fraction() const {
    return merge_postings > 0 ? static_cast<double>(topk_postings) /
                                    static_cast<double>(merge_postings)
                              : 0.0;
  }
  double Speedup() const {
    return invidx_ms > 0 ? brute_ms / invidx_ms : 0.0;
  }
};

bool SameRanking(const std::vector<TopKRow>& a,
                 const std::vector<TopKRow>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].score != b[i].score) return false;
    if (a[i].row[0].AsString().text() != b[i].row[0].AsString().text()) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_topk.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }
  const size_t rows = smoke ? 2000 : GeneratedDatasetSize(200000);

  Result<dataset::Lexicon> lexicon = dataset::Lexicon::BuildTrilingual();
  if (!lexicon.ok()) {
    std::printf("lexicon: %s\n", lexicon.status().ToString().c_str());
    return 1;
  }
  // Directory rows: lexicon names sampled with replacement (seeded,
  // so the run is reproducible).
  const std::vector<dataset::LexiconEntry>& base = lexicon->entries();
  Random rng(0x70504b6cULL);
  std::vector<dataset::LexiconEntry> gen;
  gen.reserve(rows);
  for (size_t i = 0; i < rows; ++i) {
    gen.push_back(base[rng.Uniform(base.size())]);
  }

  const std::string db_path = "/tmp/lexequal_topk_bench.db";
  Result<std::unique_ptr<Engine>> db_or =
      BuildGeneratedDb(db_path, *lexicon, gen);
  if (!db_or.ok()) {
    std::printf("db: %s\n", db_or.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<Engine> db = std::move(db_or).value();
  {
    Timer t;
    if (!db->CreateIndex({.kind = engine::IndexSpec::Kind::kInverted,
                          .table = "names",
                          .column = "name_phon",
                          .q = 2}).ok()) {
      return 1;
    }
    std::printf("built inverted index in %.1f s\n", t.Seconds());
  }
  if (!db->Analyze("names").ok()) return 1;
  Session session = db->CreateSession();

  std::vector<const dataset::LexiconEntry*> probes;
  for (size_t i = 0; i < kProbes; ++i) {
    probes.push_back(&gen[(gen.size() / kProbes) * i]);
  }
  std::printf("topk_retrieval: %zu rows x %zu probes\n", gen.size(),
              probes.size());

  LexEqualQueryOptions invidx_opt;  // kAuto picks the inverted index
  LexEqualQueryOptions brute_opt;
  brute_opt.hints.plan = LexEqualPlan::kNaiveUdf;
  LexEqualQueryOptions merge_opt;  // threshold plan = full list merge
  merge_opt.hints.plan = LexEqualPlan::kInvertedIndex;

  bool parity_ok = true;
  std::vector<KResult> results;
  for (size_t k : kKValues) {
    KResult r;
    r.k = k;
    for (const dataset::LexiconEntry* p : probes) {
      QueryRequest topk_req = QueryRequest::TopKPhonemes(
          "names", "name", p->phonemes, k);
      topk_req.options = invidx_opt;
      Timer ti;
      Result<engine::QueryResult> ranked = session.Execute(topk_req);
      r.invidx_ms += ti.Millis();
      if (!ranked.ok()) {
        std::printf("topk: %s\n", ranked.status().ToString().c_str());
        return 1;
      }
      const QueryStats topk_stats = ranked->stats;
      QueryRequest brute_req = topk_req;
      brute_req.options = brute_opt;
      Timer tb;
      Result<engine::QueryResult> brute = session.Execute(brute_req);
      r.brute_ms += tb.Millis();
      if (!brute.ok()) {
        std::printf("brute: %s\n", brute.status().ToString().c_str());
        return 1;
      }
      if (!SameRanking(ranked->ranked, brute->ranked)) {
        std::printf("PARITY FAILURE: k=%zu probe '%s'\n", k,
                    p->text.c_str());
        parity_ok = false;
      }
      r.topk_postings += topk_stats.invidx_postings;
      r.postings_skipped += topk_stats.invidx_postings_skipped;
      r.early_terminated += topk_stats.invidx_early_terminated;
      r.fallbacks += topk_stats.invidx_fallbacks;

      // Full-merge baseline: the threshold plan decodes every posting
      // of the probe's gram lists.
      QueryRequest merge_req = QueryRequest::ThresholdSelectPhonemes(
          "names", "name", p->phonemes);
      merge_req.options = merge_opt;
      Result<engine::QueryResult> merged = session.Execute(merge_req);
      if (!merged.ok()) {
        std::printf("merge: %s\n", merged.status().ToString().c_str());
        return 1;
      }
      r.merge_postings += merged->stats.invidx_postings;
    }
    results.push_back(r);
  }

  std::printf("| %3s | %12s | %12s | %9s | %9s | %8s |\n", "k",
              "topk posts", "merge posts", "fraction", "invidx ms",
              "speedup");
  for (const KResult& r : results) {
    std::printf("| %3zu | %12llu | %12llu | %8.1f%% | %9.1f | %7.2fx |\n",
                r.k, static_cast<unsigned long long>(r.topk_postings),
                static_cast<unsigned long long>(r.merge_postings),
                r.Fraction() * 100.0, r.invidx_ms, r.Speedup());
  }

  std::FILE* json = std::fopen(json_path.c_str(), "w");
  if (json == nullptr) {
    std::printf("cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(json,
               "{\n  \"bench\": \"topk_retrieval\",\n"
               "  \"rows\": %zu,\n  \"probes\": %zu,\n"
               "  \"smoke\": %s,\n"
               "  \"max_postings_fraction\": %.2f,\n  \"ks\": [\n",
               gen.size(), probes.size(), smoke ? "true" : "false",
               kMaxPostingsFraction);
  for (size_t i = 0; i < results.size(); ++i) {
    const KResult& r = results[i];
    std::fprintf(
        json,
        "    {\"k\": %zu, \"topk_postings\": %llu, "
        "\"merge_postings\": %llu, \"postings_fraction\": %.4f, "
        "\"postings_skipped\": %llu, \"early_terminated\": %llu, "
        "\"fallbacks\": %llu, \"invidx_ms\": %.1f, \"brute_ms\": %.1f, "
        "\"speedup\": %.2f}%s\n",
        r.k, static_cast<unsigned long long>(r.topk_postings),
        static_cast<unsigned long long>(r.merge_postings),
        r.Fraction(),
        static_cast<unsigned long long>(r.postings_skipped),
        static_cast<unsigned long long>(r.early_terminated),
        static_cast<unsigned long long>(r.fallbacks), r.invidx_ms,
        r.brute_ms, r.Speedup(), i + 1 < results.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n  \"parity_ok\": %s\n}\n",
               parity_ok ? "true" : "false");
  std::fclose(json);
  std::printf("wrote %s\n", json_path.c_str());
  std::remove(db_path.c_str());

  // Parity is a correctness gate in every mode; the pruning target is
  // only meaningful at scale (smoke tables mostly fall back).
  if (!parity_ok) return 1;
  if (!smoke) {
    for (const KResult& r : results) {
      if (r.Fraction() >= kMaxPostingsFraction) {
        std::printf("TARGET MISSED: k=%zu examined %.1f%% of postings "
                    "(target < %.0f%%)\n",
                    r.k, r.Fraction() * 100.0,
                    kMaxPostingsFraction * 100.0);
        return 1;
      }
    }
  }
  return 0;
}
