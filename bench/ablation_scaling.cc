// Ablation: how each access path's selection latency scales with
// table size. The naive UDF scan must grow linearly, the q-gram plan
// with posting-list length, and the phonetic index stays near-flat —
// the scaling story implicit in the paper's Tables 1-3.

#include <cstdio>

#include "bench/bench_common.h"

using namespace lexequal;
using namespace lexequal::bench;
using engine::LexEqualPlan;
using engine::LexEqualQueryOptions;

int main() {
  Result<dataset::Lexicon> lexicon = dataset::Lexicon::BuildTrilingual();
  if (!lexicon.ok()) return 1;

  const size_t sizes[] = {10000, 50000, 200000};
  const int kProbes = 10;

  std::printf("Scaling of LexEQUAL selection latency (ms/query):\n\n");
  std::printf("| rows    | naive-udf | qgram-filter | phonetic-index "
              "|\n");
  std::printf("|---------|-----------|--------------|----------------"
              "|\n");

  for (size_t size : sizes) {
    std::vector<dataset::LexiconEntry> gen =
        dataset::GenerateConcatenatedDataset(*lexicon, size);
    Result<std::unique_ptr<engine::Engine>> db_or =
        BuildGeneratedDb("/tmp/lexequal_scaling.db", *lexicon, gen);
    if (!db_or.ok()) return 1;
    std::unique_ptr<engine::Engine> db = std::move(db_or).value();
    if (!db->CreateIndex({.kind = engine::IndexSpec::Kind::kQGram,
                      .table = "names",
                      .column = "name_phon",
                      .q = 2}).ok()) return 1;
    if (!db->CreateIndex({.kind = engine::IndexSpec::Kind::kPhonetic,
                      .table = "names",
                      .column = "name_phon"}).ok()) return 1;

    engine::Session session = db->CreateSession();
    double ms[3] = {0, 0, 0};
    int plan_i = 0;
    for (LexEqualPlan plan :
         {LexEqualPlan::kNaiveUdf, LexEqualPlan::kQGramFilter,
          LexEqualPlan::kPhoneticIndex}) {
      LexEqualQueryOptions options;
      options.match.threshold = 0.25;
      options.match.intra_cluster_cost = 0.25;
      options.hints.plan = plan;
      Timer t;
      for (int i = 0; i < kProbes; ++i) {
        const auto* p = &gen[(gen.size() / kProbes) * i];
        engine::QueryRequest req = engine::QueryRequest::
            ThresholdSelectPhonemes("names", "name", p->phonemes);
        req.options = options;
        auto result = session.Execute(req);
        if (!result.ok()) {
          std::printf("%s: %s\n",
                      std::string(LexEqualPlanName(plan)).c_str(),
                      result.status().ToString().c_str());
          return 1;
        }
      }
      ms[plan_i++] = t.Millis() / kProbes;
    }
    std::printf("| %7zu | %7.2f   | %9.2f    | %11.4f    |\n",
                gen.size(), ms[0], ms[1], ms[2]);
    db.reset();
    std::remove("/tmp/lexequal_scaling.db");
  }
  std::printf(
      "\nExpected shape: naive grows linearly with rows; q-gram grows\n"
      "with posting-list length (sub-linear in practice); the\n"
      "phonetic index is effectively flat (B-Tree height).\n");
  return 0;
}
