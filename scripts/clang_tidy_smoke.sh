#!/usr/bin/env bash
# clang-tidy smoke: runs the repo profile (.clang-tidy — bugprone-*,
# concurrency-*, performance-*) over a pinned subset of files chosen
# to cover every lock owner plus the match kernel, so the check stays
# fast enough for ctest (the full tree is run_static_analysis.sh's
# job). Exits 77 — ctest's SKIP_RETURN_CODE — when clang-tidy is not
# installed, so gcc-only machines skip rather than fail.
#
# Usage: scripts/clang_tidy_smoke.sh [build-dir]
# The build dir must hold a compile_commands.json
# (CMAKE_EXPORT_COMPILE_COMMANDS=ON, on by default in the tree).
set -u

root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$root"
build="${1:-build}"

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "clang_tidy_smoke: clang-tidy not on PATH; skipping" >&2
  exit 77
fi
if [ ! -f "$build/compile_commands.json" ]; then
  echo "clang_tidy_smoke: no $build/compile_commands.json; configure with CMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
  exit 77
fi

# One file per annotated lock owner, plus the kernel hot path: the
# places where a concurrency-* or performance-* finding costs most.
files=(
  src/common/mutex.h
  src/obs/metrics.cc
  src/obs/stmt_stats.cc
  src/obs/slow_query_log.cc
  src/storage/buffer_pool.cc
  src/match/phoneme_cache.cc
  src/match/match_kernel.cc
  src/engine/session.cc
)

exec clang-tidy -p "$build" --quiet "${files[@]}"
