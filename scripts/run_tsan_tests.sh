#!/usr/bin/env bash
# Builds the ThreadSanitizer preset and runs the concurrency-labeled
# tests (`ctest -L parallel`): the ParallelMatcher pool, the parallel
# SQL scan, the shared phoneme cache, the plan picker's parallel arm,
# and the multi-session stress test (concurrent Sessions racing reads
# against DDL/insert/analyze on one shared Engine — the latch contract
# from src/engine/engine.h exercised end to end). Run from the repo
# root:
#
#   scripts/run_tsan_tests.sh [extra ctest args...]
#
# The tsan tree lives in build-tsan/ (see CMakePresets.json), separate
# from the regular build/ so the two configurations never collide.
set -eu

root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$root"

cmake --preset tsan
cmake --build --preset tsan -j "$(nproc)"

# Halt-on-error keeps the first data race on top of the output instead
# of burying it under later, derived failures.
TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
  ctest --test-dir build-tsan -L parallel --output-on-failure "$@"
