#!/usr/bin/env bash
# The full sanitizer matrix, one preset per instrumented build tree:
#
#   asan  — AddressSanitizer over the whole suite (heap/stack
#           lifetime, leaks on exit), build-asan/
#   ubsan — UndefinedBehaviorSanitizer over the whole suite with
#           recovery disabled, so the first overflow/shift/bounds
#           report is a hard failure, build-ubsan/
#   tsan  — ThreadSanitizer over the concurrency-labeled tests
#           (`ctest -L parallel`); single-threaded code has nothing
#           for it to see and triples the runtime, build-tsan/
#
# Run from the repo root:
#
#   scripts/run_sanitizer_matrix.sh              # all three
#   scripts/run_sanitizer_matrix.sh asan ubsan   # a subset
#
# Each arm is an independent build tree, so an interrupted run
# resumes incrementally.
set -eu

root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$root"

arms=("$@")
if [ ${#arms[@]} -eq 0 ]; then
  arms=(asan ubsan tsan)
fi

for arm in "${arms[@]}"; do
  case "$arm" in
    asan|ubsan|tsan) ;;
    *) echo "run_sanitizer_matrix: unknown arm '$arm' (want asan, ubsan, tsan)" >&2
       exit 2 ;;
  esac
done

fail=0
for arm in "${arms[@]}"; do
  echo "=== sanitizer matrix: $arm ==="
  cmake --preset "$arm"
  cmake --build --preset "$arm" -j "$(nproc)"
  case "$arm" in
    tsan)
      # Halt-on-error keeps the first data race on top of the output
      # instead of burying it under later, derived failures.
      TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
        ctest --test-dir build-tsan -L parallel --output-on-failure \
        || fail=1
      ;;
    asan)
      ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1}" \
        ctest --test-dir build-asan --output-on-failure \
        || fail=1
      ;;
    ubsan)
      UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1}" \
        ctest --test-dir build-ubsan --output-on-failure \
        || fail=1
      ;;
  esac
done

if [ "$fail" -ne 0 ]; then
  echo "=== sanitizer matrix: FAILED ==="
  exit 1
fi
echo "=== sanitizer matrix: clean (${arms[*]}) ==="
