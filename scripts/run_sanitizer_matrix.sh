#!/usr/bin/env bash
# The full sanitizer matrix, one preset per instrumented build tree:
#
#   asan          — AddressSanitizer over the whole suite (heap/stack
#                   lifetime, leaks on exit), build-asan/
#   ubsan         — UndefinedBehaviorSanitizer over the whole suite
#                   with recovery disabled, so the first
#                   overflow/shift/bounds report is a hard failure,
#                   build-ubsan/
#   tsan          — ThreadSanitizer over the concurrency-labeled tests
#                   (`ctest -L parallel`); single-threaded code has
#                   nothing for it to see and triples the runtime,
#                   build-tsan/
#   thread-safety — Clang Thread Safety Analysis as a compile error:
#                   the static complement to tsan (tsan sees the
#                   interleavings that ran; the analysis sees every
#                   annotated lock path). Included automatically when
#                   clang++ is on PATH, SKIPped otherwise — its build
#                   tree compiling cleanly IS the result, so no tests
#                   run. build-thread-safety/
#
# After their normal ctest pass, the asan/ubsan/tsan arms re-run the
# SIMD-sensitive tests with LEXEQUAL_FORCE_SCALAR_SIMD=1. The lane DP
# in src/match/simd_dp.cc reads that env var at backend resolution, so
# one build tree covers both codepaths: the host's vector backend in
# the first pass and the portable scalar-emulation lanes (the code the
# sanitizers can actually see into, and the only lane backend on hosts
# without AVX2/NEON) in the second.
#
# Run from the repo root:
#
#   scripts/run_sanitizer_matrix.sh                  # every arm
#   scripts/run_sanitizer_matrix.sh asan ubsan       # a subset
#   scripts/run_sanitizer_matrix.sh --keep-going     # don't fail fast
#
# The default is fail-fast: the first failing arm stops the matrix
# (later arms are reported as SKIP), because a broken build usually
# breaks every arm and serial re-runs of a known failure waste the
# slowest machines' time. --keep-going restores run-everything. Either
# way the run ends with a per-arm PASS/FAIL/SKIP table and exits
# non-zero if any arm failed.
#
# Each arm is an independent build tree, so an interrupted run
# resumes incrementally.
set -u

root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$root"

keep_going=0
arms=()
for arg in "$@"; do
  case "$arg" in
    --keep-going) keep_going=1 ;;
    asan|ubsan|tsan|thread-safety) arms+=("$arg") ;;
    *) echo "run_sanitizer_matrix: unknown arm '$arg' (want asan, ubsan, tsan, thread-safety, --keep-going)" >&2
       exit 2 ;;
  esac
done
if [ ${#arms[@]} -eq 0 ]; then
  arms=(asan ubsan tsan)
  # The analysis arm rides along whenever the toolchain is present;
  # on gcc-only machines the matrix stays the classic three.
  if command -v clang++ >/dev/null 2>&1; then
    arms+=(thread-safety)
  fi
fi

declare -A result
failed=0

# Second pass over the lane-kernel coverage with the vector backend
# forced off, so the scalar-emulation lanes (and the kernel dispatch
# around them) run under the arm's sanitizer too. Same build tree —
# the env var is read at runtime.
run_scalar_simd_pass() {
  local tree="$1"
  echo "--- $tree: re-running lane-kernel tests with LEXEQUAL_FORCE_SCALAR_SIMD=1 ---"
  LEXEQUAL_FORCE_SCALAR_SIMD=1 \
    ctest --test-dir "$tree" --output-on-failure \
          -R 'MatchKernelSimd|kernel_simd_smoke'
}

run_arm() {
  local arm="$1"
  cmake --preset "$arm" || return 1
  cmake --build --preset "$arm" -j "$(nproc)" || return 1
  case "$arm" in
    tsan)
      # Halt-on-error keeps the first data race on top of the output
      # instead of burying it under later, derived failures.
      TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
        ctest --test-dir build-tsan -L parallel --output-on-failure \
        || return 1
      # The parallel matcher drives the lane kernel from worker
      # threads; force the scalar lanes so tsan watches that code, not
      # the opaque vector ISA path.
      TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
      LEXEQUAL_FORCE_SCALAR_SIMD=1 \
        ctest --test-dir build-tsan -L parallel --output-on-failure \
              -R 'parallel_matcher'
      ;;
    asan)
      ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1}" \
        ctest --test-dir build-asan --output-on-failure || return 1
      ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1}" \
        run_scalar_simd_pass build-asan
      ;;
    ubsan)
      UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1}" \
        ctest --test-dir build-ubsan --output-on-failure || return 1
      UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1}" \
        run_scalar_simd_pass build-ubsan
      ;;
    thread-safety)
      # Compiling cleanly under -Werror=thread-safety-analysis is the
      # whole verdict; the binaries are byte-for-byte normal ones.
      :
      ;;
  esac
}

for arm in "${arms[@]}"; do
  if [ "$failed" -ne 0 ] && [ "$keep_going" -eq 0 ]; then
    result[$arm]=SKIP
    continue
  fi
  if [ "$arm" = thread-safety ] && ! command -v clang++ >/dev/null 2>&1; then
    echo "=== sanitizer matrix: $arm (SKIP: clang++ not on PATH) ==="
    result[$arm]=SKIP
    continue
  fi
  echo "=== sanitizer matrix: $arm ==="
  if run_arm "$arm"; then
    result[$arm]=PASS
  else
    result[$arm]=FAIL
    failed=1
  fi
done

echo
echo "=== sanitizer matrix summary ==="
printf '%-15s %s\n' "arm" "result"
printf '%-15s %s\n' "---" "------"
for arm in "${arms[@]}"; do
  printf '%-15s %s\n' "$arm" "${result[$arm]}"
done

if [ "$failed" -ne 0 ]; then
  echo "=== sanitizer matrix: FAILED ==="
  exit 1
fi
echo "=== sanitizer matrix: clean (${arms[*]}) ==="
