#!/usr/bin/env bash
# The whole static-analysis surface in one pass, three independent
# arms with a PASS/FAIL/SKIP verdict each:
#
#   thread-safety — clang build with -Werror=thread-safety-analysis
#                   over the annotated mutexes (the compile-time lock
#                   discipline; includes the negative-compile harness
#                   that proves violations are rejected). SKIP when
#                   clang++ is not installed.
#   lexlint       — every rule of the project linter (layering,
#                   bufpool, kernel, latch, status, metrics, doclinks,
#                   guards) over src/, built from the default tree.
#   clang-tidy    — the root .clang-tidy profile (bugprone-*,
#                   concurrency-*, performance-*) over the pinned lock
#                   -owner subset (scripts/clang_tidy_smoke.sh). SKIP
#                   when clang-tidy is not installed.
#
# Usage, from the repo root:
#
#   scripts/run_static_analysis.sh
#
# Exits non-zero if any arm FAILs; SKIPs (missing tools) do not fail
# the run, so the pass degrades gracefully on gcc-only machines while
# running everything where clang is available.
set -u

root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$root"

declare -A result
failed=0

note() { echo; echo "=== static analysis: $* ==="; }

# --- arm 1: clang thread-safety build --------------------------------
note "thread-safety build"
if command -v clang++ >/dev/null 2>&1; then
  if cmake --preset thread-safety &&
     cmake --build --preset thread-safety -j "$(nproc)"; then
    result[thread-safety]=PASS
  else
    result[thread-safety]=FAIL
    failed=1
  fi
else
  echo "clang++ not on PATH; skipping the analysis build"
  result[thread-safety]=SKIP
fi

# --- arm 2: lexlint, all rules ---------------------------------------
note "lexlint (all rules)"
lexlint=""
for candidate in build/tools/lexlint build-thread-safety/tools/lexlint; do
  if [ -x "$candidate" ]; then
    lexlint="$candidate"
    break
  fi
done
if [ -z "$lexlint" ]; then
  echo "no built lexlint found; building the default tree's tools"
  if cmake --preset default >/dev/null &&
     cmake --build --preset default -j "$(nproc)" --target lexlint; then
    lexlint=build/tools/lexlint
  fi
fi
if [ -n "$lexlint" ] && [ -x "$lexlint" ]; then
  if "$lexlint" --root="$root" "$root/src"; then
    result[lexlint]=PASS
  else
    result[lexlint]=FAIL
    failed=1
  fi
else
  echo "could not build lexlint"
  result[lexlint]=FAIL
  failed=1
fi

# --- arm 3: clang-tidy over the pinned subset ------------------------
note "clang-tidy smoke"
scripts/clang_tidy_smoke.sh build
tidy_rc=$?
if [ "$tidy_rc" -eq 0 ]; then
  result[clang-tidy]=PASS
elif [ "$tidy_rc" -eq 77 ]; then
  result[clang-tidy]=SKIP
else
  result[clang-tidy]=FAIL
  failed=1
fi

# --- summary ---------------------------------------------------------
echo
echo "=== static analysis summary ==="
printf '%-15s %s\n' "arm" "result"
printf '%-15s %s\n' "---" "------"
for arm in thread-safety lexlint clang-tidy; do
  printf '%-15s %s\n' "$arm" "${result[$arm]}"
done

if [ "$failed" -ne 0 ]; then
  echo "=== static analysis: FAILED ==="
  exit 1
fi
echo "=== static analysis: clean ==="
