#!/usr/bin/env bash
# Shim kept for muscle memory: the doc-link check moved into the
# project linter (tools/lexlint, rule `doclinks`), which ctest runs
# as `doc_links_check`. This wrapper finds the built binary and
# forwards to it:
#
#   scripts/check_doc_links.sh [repo-root]
#
# Set LEXLINT to point at a binary outside the default build tree.
set -eu

root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
lexlint="${LEXLINT:-$root/build/tools/lexlint}"

if [ ! -x "$lexlint" ]; then
  echo "check_doc_links: lexlint not built at $lexlint" >&2
  echo "  (build it with: cmake --build build --target lexlint)" >&2
  exit 2
fi

exec "$lexlint" --rule=doclinks --root="$root" "$root/src"
