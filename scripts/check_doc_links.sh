#!/usr/bin/env bash
# Checks that every relative markdown link and backticked file path in
# the top-level docs points at a file that exists in the repo. Run as:
#
#   scripts/check_doc_links.sh [repo-root]
#
# Wired into ctest as `doc_links_check`, so a doc that names a moved
# or deleted file fails the suite.
set -u

root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
docs=(README.md ARCHITECTURE.md EXPERIMENTS.md DESIGN.md ROADMAP.md)

fail=0

check_path() {
  local doc="$1" target="$2"
  # Strip anchors and surrounding whitespace.
  target="${target%%#*}"
  [ -z "$target" ] && return 0
  # External and absolute references are out of scope.
  case "$target" in
    http://*|https://*|mailto:*|/*) return 0 ;;
  esac
  # Accept the path itself, or — for references to built binaries
  # like `bench/parallel_scaling` — the source file behind them.
  if [ ! -e "$root/$target" ] &&
     [ ! -e "$root/$target.cc" ] &&
     [ ! -e "$root/$target.cpp" ]; then
    echo "BROKEN: $doc -> $target"
    fail=1
  fi
}

for doc in "${docs[@]}"; do
  [ -f "$root/$doc" ] || continue

  # Markdown links: [text](target)
  while IFS= read -r target; do
    check_path "$doc" "$target"
  done < <(grep -o '\](\([^)]*\))' "$root/$doc" 2>/dev/null |
           sed 's/^](//; s/)$//')

  # Backticked repo paths: `src/...`, `tests/...`, `bench/...`,
  # `scripts/...`, `examples/...` (directories or files).
  while IFS= read -r target; do
    check_path "$doc" "$target"
  done < <(grep -o '`\(src\|tests\|bench\|scripts\|examples\)/[A-Za-z0-9_./-]*`' \
           "$root/$doc" 2>/dev/null | tr -d '\`')
done

if [ "$fail" -ne 0 ]; then
  echo "doc link check FAILED"
  exit 1
fi
echo "doc link check OK"
