#!/usr/bin/env bash
# Shim kept for muscle memory: the metric-name lint moved into the
# project linter (tools/lexlint, rule `metrics`), which ctest runs as
# `metrics_name_lint` (source mode) and inside `obs_overhead_smoke`
# (export mode). This wrapper finds the built binary and forwards:
#
#   scripts/check_metrics_names.sh [repo-root]       # source mode
#   scripts/check_metrics_names.sh --export <file>   # export mode
#
# Set LEXLINT to point at a binary outside the default build tree.
set -eu

here="$(cd "$(dirname "$0")/.." && pwd)"

if [ "${1:-}" = "--export" ]; then
  [ $# -ge 2 ] || { echo "usage: $0 --export <file>" >&2; exit 2; }
  lexlint="${LEXLINT:-$here/build/tools/lexlint}"
  if [ ! -x "$lexlint" ]; then
    echo "check_metrics_names: lexlint not built at $lexlint" >&2
    exit 2
  fi
  exec "$lexlint" --rule=metrics --export="$2"
fi

root="${1:-$here}"
lexlint="${LEXLINT:-$root/build/tools/lexlint}"
if [ ! -x "$lexlint" ]; then
  echo "check_metrics_names: lexlint not built at $lexlint" >&2
  echo "  (build it with: cmake --build build --target lexlint)" >&2
  exit 2
fi

exec "$lexlint" --rule=metrics --root="$root" "$root/src"
