#!/usr/bin/env bash
# Lints the metric naming contract: every name registered against the
# MetricsRegistry must be lexequal_<subsystem>_<name> — lower snake
# case, at least two segments after the prefix. Two modes:
#
#   scripts/check_metrics_names.sh [repo-root]
#       Source mode: greps every GetCounter/GetGauge/GetHistogram call
#       in src/ for its string-literal name and validates it. Computed
#       names (none today) would be flagged as unlintable.
#
#   scripts/check_metrics_names.sh --export <file>
#       Export mode: validates the metric names in a Prometheus text
#       dump (e.g. `bench/obs_overhead --export metrics.txt`), so the
#       contract holds for whatever actually registered at runtime.
#
# Wired into ctest as `metrics_name_lint` (source mode).
set -u

name_re='^lexequal_[a-z0-9]+(_[a-z0-9]+)+$'
fail=0

check_name() {
  local origin="$1" name="$2"
  if ! [[ "$name" =~ $name_re ]]; then
    echo "BAD METRIC NAME: $origin -> '$name'" \
         "(want lexequal_<subsystem>_<name> snake_case)"
    fail=1
  fi
}

if [ "${1:-}" = "--export" ]; then
  file="${2:?usage: check_metrics_names.sh --export <file>}"
  [ -f "$file" ] || { echo "no such export: $file"; exit 1; }
  found=0
  while IFS= read -r name; do
    found=1
    check_name "$file" "$name"
  done < <(grep '^# TYPE ' "$file" | awk '{print $3}')
  if [ "$found" -eq 0 ]; then
    echo "export contains no # TYPE lines: $file"
    exit 1
  fi
else
  root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
  found=0
  # Registration sites: Get{Counter,Gauge,Histogram}("name"...). The
  # name literal is the first string after the call — sometimes on the
  # next line, so awk joins one continuation line before extracting.
  # src/obs/ itself (registry implementation + doc examples) is out of
  # scope; everything else under src/ is linted.
  files=$(grep -rl 'GetCounter\|GetGauge\|GetHistogram' "$root/src" \
          --include='*.cc' --include='*.h' | grep -v '/obs/')
  while IFS=$'\t' read -r origin name; do
    if [ "$name" = "UNLINTABLE" ]; then
      # No string literal near the call: a computed name the lint
      # cannot check — flag it for a human.
      echo "UNLINTABLE REGISTRATION: $origin"
      fail=1
      continue
    fi
    found=1
    check_name "$origin" "$name"
  done < <(awk '
    /^[ \t]*(\/\/|\*)/ { next }  # comment lines are not registrations
    /Get(Counter|Gauge|Histogram)\(/ {
      pos = match($0, /Get(Counter|Gauge|Histogram)\(/)
      rest = substr($0, pos)
      lineno = FNR
      if (rest !~ /"/) { getline nxt; rest = rest nxt }
      if (match(rest, /"[^"]*"/)) {
        print FILENAME ":" lineno "\t" \
              substr(rest, RSTART + 1, RLENGTH - 2)
      } else {
        print FILENAME ":" lineno "\tUNLINTABLE"
      }
    }' $files)
  if [ "$found" -eq 0 ]; then
    echo "no metric registrations found under $root/src"
    exit 1
  fi
fi

if [ "$fail" -ne 0 ]; then
  echo "metric name lint FAILED"
  exit 1
fi
echo "metric name lint OK"
