# Negative-compile harness for the thread-safety arm: proves at
# configure time that -Werror=thread-safety-analysis actually rejects
# the two violation kinds the annotations exist to catch —
#
#   * writing a GUARDED_BY member without holding its mutex, and
#   * calling a REQUIRES(mu) function without holding mu —
#
# plus a clean control fixture that must compile, so a fixture broken
# for an unrelated reason (missing header, bad flag) cannot pass as a
# "successful" rejection. Without this, a typo that silences the
# analysis (say, a no-op macro leaking into the clang build) would
# leave the whole arm green while verifying nothing.
#
# Included only when LEXEQUAL_THREAD_SAFETY is ON (clang-only).

set(_ncfix "${CMAKE_CURRENT_LIST_DIR}/negative_compile")

function(_lexequal_try_compile out_var src)
  try_compile(${out_var}
    "${CMAKE_BINARY_DIR}/negative_compile"
    SOURCES "${src}"
    COMPILE_DEFINITIONS "-I${PROJECT_SOURCE_DIR}/src"
    CXX_STANDARD 20
    CXX_STANDARD_REQUIRED ON
    OUTPUT_VARIABLE _nc_log)
  set(${out_var} "${${out_var}}" PARENT_SCOPE)
  set(_nc_log "${_nc_log}" PARENT_SCOPE)
endfunction()

# try_compile does not inherit add_compile_options, so the analysis
# flags must ride in explicitly for these sub-compiles.
set(CMAKE_REQUIRED_FLAGS_SAVE "${CMAKE_CXX_FLAGS}")
set(CMAKE_CXX_FLAGS
    "${CMAKE_CXX_FLAGS} -Wthread-safety -Werror=thread-safety-analysis")

_lexequal_try_compile(_nc_clean "${_ncfix}/clean.cc")
if(NOT _nc_clean)
  message(FATAL_ERROR
      "negative-compile control fixture failed to build; the harness "
      "cannot distinguish analysis rejections from broken fixtures:\n"
      "${_nc_log}")
endif()

_lexequal_try_compile(_nc_guarded "${_ncfix}/guarded_member_without_lock.cc")
if(_nc_guarded)
  message(FATAL_ERROR
      "thread-safety analysis accepted a write to a GUARDED_BY member "
      "without the lock; the analysis arm is not rejecting violations "
      "(check that the annotation macros expand under this compiler)")
endif()

_lexequal_try_compile(_nc_requires "${_ncfix}/requires_without_lock.cc")
if(_nc_requires)
  message(FATAL_ERROR
      "thread-safety analysis accepted a call to a REQUIRES(mu) "
      "function without the lock; the analysis arm is not rejecting "
      "violations")
endif()

set(CMAKE_CXX_FLAGS "${CMAKE_REQUIRED_FLAGS_SAVE}")
message(STATUS
    "Thread-safety negative-compile harness: both violation fixtures "
    "rejected, control fixture clean")
