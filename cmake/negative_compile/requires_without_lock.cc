// Violation fixture: calls a REQUIRES(mu_) function without holding
// the mutex — the *Locked-funnel mistake the engine annotations
// exist to catch. MUST FAIL to compile under
// -Werror=thread-safety-analysis; if it compiles, the configure step
// aborts (cmake/NegativeCompile.cmake).

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

class Account {
 public:
  void AuditLocked() REQUIRES(mu_) { ++audits_; }

  // The violation: the REQUIRES(mu_) funnel is entered latch-free.
  void Audit() { AuditLocked(); }

 private:
  lexequal::common::Mutex mu_;
  int audits_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.Audit();
  return 0;
}
