// Control fixture for the negative-compile harness: the same shape as
// the two violation fixtures, but lock-correct. Must COMPILE under
// -Werror=thread-safety-analysis — if it doesn't, the fixtures are
// broken (bad include path, bad flags) and the harness aborts rather
// than misreading the breakage as a successful rejection.

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

class Account {
 public:
  void Deposit(int amount) EXCLUDES(mu_) {
    lexequal::common::MutexLock lock(&mu_);
    balance_ += amount;
  }

  void AuditLocked() REQUIRES(mu_) { ++audits_; }

  void Audit() EXCLUDES(mu_) {
    lexequal::common::MutexLock lock(&mu_);
    AuditLocked();
  }

 private:
  lexequal::common::Mutex mu_;
  int balance_ GUARDED_BY(mu_) = 0;
  int audits_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.Deposit(1);
  account.Audit();
  return 0;
}
