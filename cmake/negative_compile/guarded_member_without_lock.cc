// Violation fixture: writes a GUARDED_BY member without holding its
// mutex. MUST FAIL to compile under -Werror=thread-safety-analysis;
// if it compiles, the analysis arm is not checking guarded state and
// the configure step aborts (cmake/NegativeCompile.cmake).

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

class Account {
 public:
  // The violation: balance_ is guarded by mu_, but no lock is taken.
  void Deposit(int amount) { balance_ += amount; }

 private:
  lexequal::common::Mutex mu_;
  int balance_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.Deposit(1);
  return 0;
}
