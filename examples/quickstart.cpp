// Quickstart: the LexEQUAL operator on plain strings.
//
// Shows the full pipeline of the paper's Fig. 8 on its running
// example: transform multiscript names to phoneme strings, then match
// approximately in phoneme space.

#include <cstdio>

#include "g2p/g2p.h"
#include "match/lexequal.h"
#include "text/utf8.h"

using namespace lexequal;

int main() {
  // "Nehru" in four scripts (paper Figures 1 and 2).
  const text::TaggedString names[] = {
      {"Nehru", text::Language::kEnglish},
      {text::EncodeUtf8({0x0928, 0x0947, 0x0939, 0x0930, 0x0941}),
       text::Language::kHindi},  // नेहरु
      {text::EncodeUtf8({0x0BA8, 0x0BC7, 0x0BB0, 0x0BC1}),
       text::Language::kTamil},  // நேரு
      {text::EncodeUtf8({0x039D, 0x03B5, 0x03C1, 0x03BF, 0x03C5}),
       text::Language::kGreek},  // Νερου
      {"Nero", text::Language::kEnglish},  // the borderline case
  };

  // Step 1: the transform() of Fig. 8 — text to IPA phoneme strings.
  const g2p::G2PRegistry& g2p = g2p::G2PRegistry::Default();
  std::printf("Phonemic representations (paper Fig. 9 style):\n");
  for (const auto& name : names) {
    Result<phonetic::PhonemeString> phon = g2p.Transform(name);
    std::printf("  %-12s %-8s -> %s\n", name.text().c_str(),
                std::string(text::LanguageName(name.language())).c_str(),
                phon.ok() ? phon.value().ToIpa().c_str()
                          : phon.status().ToString().c_str());
  }

  // Step 2: LexEQUAL with the paper's recommended knee parameters.
  match::LexEqualMatcher matcher(
      {.threshold = 0.3, .intra_cluster_cost = 0.25});
  std::printf("\nLexEQUAL('Nehru', x, threshold=0.3):\n");
  for (const auto& name : names) {
    match::MatchOutcome outcome = matcher.Match(names[0], name);
    const char* verdict = outcome == match::MatchOutcome::kTrue ? "TRUE"
                          : outcome == match::MatchOutcome::kFalse
                              ? "FALSE"
                              : "NORESOURCE";
    std::printf("  %-12s -> %s\n", name.text().c_str(), verdict);
  }

  // Step 3: the threshold knob — Nero becomes a false positive when
  // the user loosens the match (paper §1).
  match::LexEqualMatcher loose(
      {.threshold = 0.6, .intra_cluster_cost = 0.25});
  std::printf("\nAt threshold 0.6, 'Nero' %s 'Nehru' (false positive)\n",
              loose.Match(names[0], names[4]) == match::MatchOutcome::kTrue
                  ? "matches"
                  : "does not match");
  return 0;
}
