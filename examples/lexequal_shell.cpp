// Interactive SQL shell over a LexEQUAL database.
//
// Starts with the trilingual name lexicon loaded into `names(name,
// name_phon, domain)` with both index access paths built, then reads
// queries from stdin. Also accepts a SQL file / one-shot queries as
// argv for scripted use:
//
//   ./lexequal_shell "select name from names where name LexEQUAL
//                     'Krishna' Threshold 0.25 USING phonetic"
//
// The shell models the multi-client server it fronts: one shared
// Engine, any number of named Sessions. \session <name> switches (or
// creates) a session; \stats and \trace are per-session state, so two
// sessions never see each other's last query.
//
// Meta commands: \help, \tables, \schema <table>, \session [<name>],
// \stats, \plans, \metrics [json], \trace on|off, \statements
// [json|reset], \slowquery <us>|off, \slowlog [<n>|json], \health
// [json], \quit.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>

#include "dataset/lexicon.h"
#include "engine/session.h"
#include "sql/planner.h"

using namespace lexequal;
using engine::Column;
using engine::Engine;
using engine::IndexSpec;
using engine::Schema;
using engine::Session;
using engine::TableInfo;
using engine::Tuple;
using engine::Value;
using engine::ValueType;

namespace {

// The named sessions of this shell process. Every session shares the
// one Engine; options, \stats, and \trace state stay per-session.
struct SessionBook {
  std::map<std::string, Session> sessions;
  std::string current = "main";

  Session* Current() { return &sessions.at(current); }
};

void RunQuery(Session* session, const std::string& sql) {
  const auto start = std::chrono::steady_clock::now();
  Result<sql::QueryResult> result = sql::ExecuteQuery(session, sql);
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().ToString().c_str());
    return;
  }
  std::printf("%s(%zu rows, %.2f ms, %llu candidate rows verified)\n",
              result->ToTable().c_str(), result->rows.size(), ms,
              static_cast<unsigned long long>(result->stats.udf_calls));
  // EXPLAIN ANALYZE: the per-stage timing table under the plan table.
  if (!result->trace_rows.empty()) {
    std::printf("stages:\n%s", result->TraceTable().c_str());
  }
  // Matcher breakdown: populated by LexEQUAL predicates (the cache
  // counters by every text probe, the rest by `USING parallel`).
  const lexequal::match::MatchStats& m = result->stats.match;
  if (m.tuples_scanned > 0 || m.cache_hits + m.cache_misses > 0) {
    std::printf("match: %s\n", m.ToString().c_str());
  }
  // \trace on: print the span tree of the query that just ran.
  if (result->trace != nullptr && result->trace_rows.empty()) {
    std::printf("trace:\n%s", result->trace->ToString().c_str());
  }
}

// Every plan the engine knows, straight from the descriptor table —
// a new LexEqualPlan value shows up here without touching the shell.
void PrintPlans() {
  std::printf("plans (USING <hint>):\n");
  for (const engine::LexEqualPlanDesc& desc : engine::kLexEqualPlans) {
    std::printf("  %-9s %-15s %s\n", std::string(desc.hint).c_str(),
                std::string(desc.name).c_str(),
                std::string(desc.summary).c_str());
  }
}

// The grammar accepted by sql::ParseStatement, clause order included.
void PrintHelp() {
  std::printf(
      "query grammar:\n"
      "  select <cols> from <table>\n"
      "  where  <col> LexEQUAL '<literal>'      -- or LexEQUAL <col>\n"
      "         [Threshold <e>] [Cost <c>] [inlanguages { L1, ... | * }]\n"
      "  [order by <col> [asc|desc]] [USING <plan>] [limit <n>]\n"
      "ranked retrieval (top-K, served by the inverted index):\n"
      "  select <cols> from <table>\n"
      "  order by lexsim(<col>, '<query>') [desc] [USING <plan>] limit <k>\n"
      "optimizer statements:\n"
      "  analyze [<table>]           -- collect + persist table stats\n"
      "  explain <select>            -- cost-based plan choice, no run\n"
      "  explain analyze <select>    -- run it; estimated vs actual\n"
      "  create index phonetic|qgram|invidx on <table> (<column>) [Q <n>]\n");
  PrintPlans();
  std::printf(
      "  without USING, auto picks by cost (ANALYZE first for stats).\n"
      "  parallel returns the same rows as naive and prints a match:\n"
      "  line — scanned/filtered/dp counters plus phoneme-cache\n"
      "  hits/misses (repeat a probe to see the cache warm up).\n"
      "sessions (one shared engine, per-client state):\n"
      "  \\session         -- list sessions; * marks the current one\n"
      "  \\session <name>  -- switch to <name>, creating it if new;\n"
      "                      \\stats and \\trace are per-session\n"
      "observability:\n"
      "  \\metrics [json]  -- process-wide counters/histograms\n"
      "                      (Prometheus text, or one JSON object)\n"
      "  \\trace on|off    -- per-query span tree with wall times and\n"
      "                      buffer-pool / phoneme-cache deltas\n"
      "  \\statements [json|reset] -- per-statement aggregates, hottest\n"
      "                      first (SQL: SHOW STATEMENTS [ORDER BY\n"
      "                      calls|p99|total_time] [LIMIT n] / RESET)\n"
      "  \\slowquery <us>|off -- arm this session's slow-query capture\n"
      "  \\slowlog [<n>|json] -- captured slow queries, newest first,\n"
      "                      each with its full span tree\n"
      "  \\health [json]   -- engine health snapshot (buffer pool,\n"
      "                      phoneme cache, catalog, sessions)\n"
      "meta commands: \\help, \\tables, \\schema <table>, \\session "
      "[<name>], \\stats, \\plans, \\metrics [json], \\trace on|off, "
      "\\statements, \\slowquery <us>, \\slowlog, \\health, \\quit\n");
}

// Plan + estimated-vs-actual line for the most recent query of this
// session (the compatibility window onto QueryResult.stats).
void PrintLastStats(Session* session) {
  const engine::QueryStats& s = session->LastQueryStats();
  std::printf(
      "plan: %s (%s)\n",
      std::string(engine::LexEqualPlanName(s.plan)).c_str(),
      s.plan_was_auto
          ? (s.plan_used_stats ? "auto, statistics" : "auto, heuristic")
          : "hinted");
  if (s.plan_used_stats) {
    std::printf("estimated: cost %.1f, %.1f candidate rows\n", s.est_cost,
                s.est_candidates);
  }
  std::printf("actual: %llu scanned, %llu candidates, %llu udf calls, "
              "%llu results\n",
              static_cast<unsigned long long>(s.rows_scanned),
              static_cast<unsigned long long>(s.candidates),
              static_cast<unsigned long long>(s.udf_calls),
              static_cast<unsigned long long>(s.results));
  if (s.match.dp_evaluations > 0) {
    std::printf("kernel: %s (%llu bit-parallel, %llu banded, "
                "%llu general; %llu dp cells)\n",
                s.match.DominantKernel(),
                static_cast<unsigned long long>(s.match.kernel_bitparallel),
                static_cast<unsigned long long>(s.match.kernel_banded),
                static_cast<unsigned long long>(s.match.kernel_general),
                static_cast<unsigned long long>(s.match.dp_cells));
  }
}

// \slowlog [<n>|json]: the engine-wide slow-query ring, newest first.
void PrintSlowLog(Engine* engine, const std::string& arg) {
  obs::SlowQueryLog* log = engine->slow_query_log();
  if (arg == "json") {
    std::printf("%s\n", log->ExportJson().c_str());
    return;
  }
  size_t n = 0;  // 0 = everything retained
  if (!arg.empty()) n = std::strtoul(arg.c_str(), nullptr, 10);
  const std::vector<obs::SlowQueryEntry> entries = log->Latest(n);
  if (entries.empty()) {
    std::printf("slow-query log is empty (capture %s; arm per session "
                "with \\slowquery <us>)\n",
                log->captured() > 0 ? "drained" : "unarmed or nothing slow");
    return;
  }
  for (const obs::SlowQueryEntry& e : entries) {
    std::printf("#%llu session=%llu %llu us (threshold %llu us) "
                "plan=%s rows=%llu candidates=%llu\n  %s\n",
                static_cast<unsigned long long>(e.seq),
                static_cast<unsigned long long>(e.session_id),
                static_cast<unsigned long long>(e.wall_us),
                static_cast<unsigned long long>(e.threshold_us),
                e.plan.c_str(),
                static_cast<unsigned long long>(e.rows),
                static_cast<unsigned long long>(e.candidates),
                e.statement.c_str());
    if (e.trace != nullptr) {
      std::printf("%s", e.trace->ToString().c_str());
    }
  }
}

void RunSessionMeta(SessionBook* book, Engine* engine,
                    const std::string& line) {
  if (line == "\\session") {
    for (const auto& [name, session] : book->sessions) {
      std::printf("%c %-12s trace=%s threshold=%.2f\n",
                  name == book->current ? '*' : ' ', name.c_str(),
                  session.tracing() ? "on" : "off",
                  session.default_options().match.threshold);
    }
    return;
  }
  const std::string name = line.substr(std::string("\\session ").size());
  if (name.empty() || name.find(' ') != std::string::npos) {
    std::printf("usage: \\session [<name>]\n");
    return;
  }
  const bool created =
      book->sessions.try_emplace(name, engine->CreateSession()).second;
  book->current = name;
  std::printf("%s session '%s'\n", created ? "created" : "switched to",
              name.c_str());
}

void RunMeta(SessionBook* book, const std::string& line) {
  Session* session = book->Current();
  Engine* engine = session->engine();
  if (line == "\\help" || line == "\\h") {
    PrintHelp();
    return;
  }
  if (line == "\\tables") {
    for (const std::string& name : engine->catalog()->TableNames()) {
      std::printf("%s\n", name.c_str());
    }
    return;
  }
  if (line.rfind("\\schema ", 0) == 0) {
    Result<TableInfo*> info = engine->GetTable(line.substr(8));
    if (!info.ok()) {
      std::printf("error: %s\n", info.status().ToString().c_str());
      return;
    }
    for (const Column& col : info.value()->schema.columns()) {
      std::printf("  %-16s %s%s\n", col.name.c_str(),
                  std::string(ValueTypeName(col.type)).c_str(),
                  col.phonemic_source.has_value() ? "  (derived phonemic)"
                                                  : "");
    }
    std::printf("  indexes: %s%s\n",
                info.value()->phonetic_index ? "phonetic " : "",
                info.value()->qgram_index ? "qgram" : "");
    std::printf("  stats: %s\n",
                info.value()->stats.analyzed
                    ? (std::to_string(info.value()->stats.row_count) +
                       " rows analyzed")
                          .c_str()
                    : "unanalyzed (run `analyze`)");
    return;
  }
  if (line == "\\session" || line.rfind("\\session ", 0) == 0) {
    RunSessionMeta(book, engine, line);
    return;
  }
  if (line == "\\stats") {
    PrintLastStats(session);
    return;
  }
  if (line == "\\plans") {
    PrintPlans();
    return;
  }
  if (line == "\\metrics") {
    std::printf("%s", Engine::DumpMetrics().c_str());
    return;
  }
  if (line == "\\metrics json") {
    std::printf("%s\n", Engine::DumpMetricsJson().c_str());
    return;
  }
  if (line == "\\trace on") {
    session->set_tracing(true);
    std::printf("tracing on: queries print their span tree\n");
    return;
  }
  if (line == "\\trace off") {
    session->set_tracing(false);
    std::printf("tracing off\n");
    return;
  }
  if (line == "\\statements") {
    RunQuery(session, "show statements");
    return;
  }
  if (line == "\\statements json") {
    std::printf("%s\n", engine->stmt_stats()->ExportJson().c_str());
    return;
  }
  if (line == "\\statements reset") {
    engine->stmt_stats()->Reset();
    std::printf("statement statistics reset\n");
    return;
  }
  if (line.rfind("\\slowquery ", 0) == 0) {
    const std::string arg = line.substr(std::string("\\slowquery ").size());
    if (arg == "off" || arg == "0") {
      session->set_slow_query_us(0);
      std::printf("slow-query capture off for this session\n");
    } else {
      const uint64_t us = std::strtoull(arg.c_str(), nullptr, 10);
      if (us == 0) {
        std::printf("usage: \\slowquery <microseconds>|off\n");
        return;
      }
      session->set_slow_query_us(us);
      std::printf("capturing queries over %llu us (session '%s'; "
                  "\\slowlog to inspect)\n",
                  static_cast<unsigned long long>(us),
                  book->current.c_str());
    }
    return;
  }
  if (line == "\\slowlog" || line.rfind("\\slowlog ", 0) == 0) {
    PrintSlowLog(engine, line == "\\slowlog"
                             ? std::string()
                             : line.substr(std::string("\\slowlog ").size()));
    return;
  }
  if (line == "\\health") {
    std::printf("%s", engine->Health().ToString().c_str());
    return;
  }
  if (line == "\\health json") {
    std::printf("%s\n", engine->Health().ToJson().c_str());
    return;
  }
  std::printf("unknown meta command; try \\help, \\tables, "
              "\\schema <t>, \\session [<name>], \\stats, \\plans, "
              "\\metrics [json], \\trace on|off, \\statements, "
              "\\slowquery <us>, \\slowlog, \\health, \\quit\n");
}

}  // namespace

int main(int argc, char** argv) {
  Result<dataset::Lexicon> lexicon = dataset::Lexicon::BuildTrilingual();
  if (!lexicon.ok()) return 1;

  std::remove("/tmp/lexequal_shell.db");
  Result<std::unique_ptr<Engine>> engine_or =
      Engine::Open("/tmp/lexequal_shell.db", 2048);
  if (!engine_or.ok()) return 1;
  std::unique_ptr<Engine> engine = std::move(engine_or).value();

  Schema schema({
      {"name", ValueType::kString, std::nullopt},
      {"name_phon", ValueType::kString, 0},
      {"domain", ValueType::kString, std::nullopt},
  });
  if (!engine->CreateTable("names", schema).ok()) return 1;
  for (const dataset::LexiconEntry& e : lexicon->entries()) {
    Tuple values{
        Value::String(e.text, e.language),
        Value::String(std::string(dataset::NameDomainName(e.domain)))};
    if (!engine->Insert("names", values).ok()) return 1;
  }
  if (!engine->CreateIndex({.kind = IndexSpec::Kind::kQGram,
                            .table = "names",
                            .column = "name_phon",
                            .q = 2}).ok()) return 1;
  if (!engine->CreateIndex({.kind = IndexSpec::Kind::kPhonetic,
                            .table = "names",
                            .column = "name_phon"}).ok()) return 1;
  // Stats up front, so hint-free queries get the cost-based picker.
  if (!engine->AnalyzeAll().ok()) return 1;

  SessionBook book;
  book.sessions.try_emplace("main", engine->CreateSession());

  if (argc > 1) {
    for (int i = 1; i < argc; ++i) RunQuery(book.Current(), argv[i]);
    book.sessions.clear();
    engine.reset();
    std::remove("/tmp/lexequal_shell.db");
    return 0;
  }

  std::printf(
      "LexEQUAL shell — %zu names loaded into `names` (analyzed, both "
      "indexes built).\n"
      "try: select name from names where name LexEQUAL 'Krishna' "
      "Threshold 0.25\n"
      "then: explain analyze select name from names where name "
      "LexEQUAL 'Krishna'\n"
      "\\help shows the grammar and plan hints; \\session <name> opens "
      "another client.\n",
      lexicon->entries().size());
  std::string line;
  while (true) {
    std::printf("lexequal(%s)> ", book.current.c_str());
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (line.empty()) continue;
    if (line == "\\quit" || line == "\\q") break;
    if (line[0] == '\\') {
      RunMeta(&book, line);
      continue;
    }
    RunQuery(book.Current(), line);
  }
  book.sessions.clear();
  engine.reset();
  std::remove("/tmp/lexequal_shell.db");
  return 0;
}
