// Interactive SQL shell over a LexEQUAL database.
//
// Starts with the trilingual name lexicon loaded into `names(name,
// name_phon, domain)` with both index access paths built, then reads
// queries from stdin. Also accepts a SQL file / one-shot queries as
// argv for scripted use:
//
//   ./lexequal_shell "select name from names where name LexEQUAL
//                     'Krishna' Threshold 0.25 USING phonetic"
//
// Meta commands: \help, \tables, \schema <table>, \quit.

#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>

#include "dataset/lexicon.h"
#include "engine/database.h"
#include "sql/planner.h"

using namespace lexequal;
using engine::Database;
using engine::Schema;
using engine::Tuple;
using engine::Value;
using engine::ValueType;

namespace {

void RunQuery(Database* db, const std::string& sql) {
  const auto start = std::chrono::steady_clock::now();
  Result<sql::QueryResult> result = sql::ExecuteQuery(db, sql);
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().ToString().c_str());
    return;
  }
  std::printf("%s(%zu rows, %.2f ms, %llu candidate rows verified)\n",
              result->ToTable().c_str(), result->rows.size(), ms,
              static_cast<unsigned long long>(result->stats.udf_calls));
  // Matcher breakdown: populated by LexEQUAL predicates (the cache
  // counters by every text probe, the rest by `USING parallel`).
  const lexequal::match::MatchStats& m = result->stats.match;
  if (m.tuples_scanned > 0 || m.cache_hits + m.cache_misses > 0) {
    std::printf("match: %s\n", m.ToString().c_str());
  }
}

// The grammar accepted by sql::Parse, clause order included.
void PrintHelp() {
  std::printf(
      "query grammar:\n"
      "  select <cols> from <table>\n"
      "  where  <col> LexEQUAL '<literal>'      -- or LexEQUAL <col>\n"
      "         [Threshold <e>] [Cost <c>] [inlanguages { L1, ... | * }]\n"
      "  [order by <col> [asc|desc]] [USING <plan>] [limit <n>]\n"
      "plans (USING): naive | qgram | phonetic | parallel\n"
      "  parallel returns the same rows as naive and prints a match:\n"
      "  line — scanned/filtered/dp counters plus phoneme-cache\n"
      "  hits/misses (repeat a probe to see the cache warm up).\n"
      "meta commands: \\help, \\tables, \\schema <table>, \\quit\n");
}

void RunMeta(Database* db, const std::string& line) {
  if (line == "\\help" || line == "\\h") {
    PrintHelp();
    return;
  }
  if (line == "\\tables") {
    for (const std::string& name : db->catalog()->TableNames()) {
      std::printf("%s\n", name.c_str());
    }
    return;
  }
  if (line.rfind("\\schema ", 0) == 0) {
    Result<engine::TableInfo*> info =
        db->GetTable(line.substr(8));
    if (!info.ok()) {
      std::printf("error: %s\n", info.status().ToString().c_str());
      return;
    }
    for (const engine::Column& col : info.value()->schema.columns()) {
      std::printf("  %-16s %s%s\n", col.name.c_str(),
                  std::string(ValueTypeName(col.type)).c_str(),
                  col.phonemic_source.has_value() ? "  (derived phonemic)"
                                                  : "");
    }
    std::printf("  indexes: %s%s\n",
                info.value()->phonetic_index ? "phonetic " : "",
                info.value()->qgram_index ? "qgram" : "");
    return;
  }
  std::printf("unknown meta command; try \\help, \\tables, "
              "\\schema <t>, \\quit\n");
}

}  // namespace

int main(int argc, char** argv) {
  Result<dataset::Lexicon> lexicon = dataset::Lexicon::BuildTrilingual();
  if (!lexicon.ok()) return 1;

  std::remove("/tmp/lexequal_shell.db");
  Result<std::unique_ptr<Database>> db_or =
      Database::Open("/tmp/lexequal_shell.db", 2048);
  if (!db_or.ok()) return 1;
  std::unique_ptr<Database> db = std::move(db_or).value();

  Schema schema({
      {"name", ValueType::kString, std::nullopt},
      {"name_phon", ValueType::kString, 0},
      {"domain", ValueType::kString, std::nullopt},
  });
  if (!db->CreateTable("names", schema).ok()) return 1;
  for (const dataset::LexiconEntry& e : lexicon->entries()) {
    Tuple values{
        Value::String(e.text, e.language),
        Value::String(std::string(dataset::NameDomainName(e.domain)))};
    if (!db->Insert("names", values).ok()) return 1;
  }
  if (!db->CreateQGramIndex("names", "name_phon", 2).ok()) return 1;
  if (!db->CreatePhoneticIndex("names", "name_phon").ok()) return 1;

  if (argc > 1) {
    for (int i = 1; i < argc; ++i) RunQuery(db.get(), argv[i]);
    db.reset();
    std::remove("/tmp/lexequal_shell.db");
    return 0;
  }

  std::printf(
      "LexEQUAL shell — %zu names loaded into `names`.\n"
      "try: select name from names where name LexEQUAL 'Krishna' "
      "Threshold 0.25 USING parallel\n"
      "\\help shows the grammar and plan hints.\n",
      lexicon->entries().size());
  std::string line;
  while (true) {
    std::printf("lexequal> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (line.empty()) continue;
    if (line == "\\quit" || line == "\\q") break;
    if (line[0] == '\\') {
      RunMeta(db.get(), line);
      continue;
    }
    RunQuery(db.get(), line);
  }
  db.reset();
  std::remove("/tmp/lexequal_shell.db");
  return 0;
}
