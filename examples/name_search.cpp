// Multiscript name search: the web-search-engine scenario of §5.3.
//
// Loads the full trilingual lexicon (~2,100 names across Latin,
// Devanagari, and Tamil scripts) into a table, builds the phonetic
// index, and answers point queries with each physical plan, printing
// times and candidate counts. Pass a name to search for (default:
// a small demo set).

#include <chrono>
#include <cstdio>

#include "dataset/lexicon.h"
#include "engine/session.h"

using namespace lexequal;
using engine::Engine;
using engine::LexEqualPlan;
using engine::LexEqualQueryOptions;
using engine::QueryRequest;
using engine::Schema;
using engine::Session;
using engine::Tuple;
using engine::Value;
using engine::ValueType;

namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

void Search(Session* session, const std::string& query_text) {
  text::TaggedString query =
      text::TaggedString::WithDetectedLanguage(query_text);
  std::printf("\nquery '%s' (%s):\n", query_text.c_str(),
              std::string(text::LanguageName(query.language())).c_str());
  for (LexEqualPlan plan :
       {LexEqualPlan::kNaiveUdf, LexEqualPlan::kQGramFilter,
        LexEqualPlan::kPhoneticIndex}) {
    LexEqualQueryOptions options;
    options.match.threshold = 0.25;
    options.match.intra_cluster_cost = 0.25;
    options.hints.plan = plan;
    QueryRequest req = QueryRequest::ThresholdSelect("names", "name", query);
    req.options = options;
    auto start = std::chrono::steady_clock::now();
    Result<engine::QueryResult> result = session->Execute(req);
    const double ms = MillisSince(start);
    if (!result.ok()) {
      std::printf("  %-15s error: %s\n",
                  std::string(LexEqualPlanName(plan)).c_str(),
                  result.status().ToString().c_str());
      continue;
    }
    const std::vector<Tuple>& rows = result->rows;
    std::printf("  %-15s %6.2f ms  %4zu hits  (%llu candidates)  [",
                std::string(LexEqualPlanName(plan)).c_str(), ms,
                rows.size(),
                static_cast<unsigned long long>(result->stats.udf_calls));
    for (size_t i = 0; i < rows.size() && i < 6; ++i) {
      std::printf("%s%s", i > 0 ? ", " : "",
                  rows[i][0].AsString().text().c_str());
    }
    std::printf("%s]\n", rows.size() > 6 ? ", ..." : "");
  }
}

}  // namespace

int main(int argc, char** argv) {
  Result<dataset::Lexicon> lexicon = dataset::Lexicon::BuildTrilingual();
  if (!lexicon.ok()) {
    std::printf("lexicon: %s\n", lexicon.status().ToString().c_str());
    return 1;
  }

  std::remove("/tmp/lexequal_name_search.db");
  Result<std::unique_ptr<Engine>> db_or =
      Engine::Open("/tmp/lexequal_name_search.db", 2048);
  if (!db_or.ok()) return 1;
  std::unique_ptr<Engine> db = std::move(db_or).value();

  Schema schema({
      {"name", ValueType::kString, std::nullopt},
      {"name_phon", ValueType::kString, 0},
      {"domain", ValueType::kString, std::nullopt},
  });
  if (!db->CreateTable("names", schema).ok()) return 1;
  for (const dataset::LexiconEntry& e : lexicon->entries()) {
    Tuple values{
        Value::String(e.text, e.language),
        Value::String(std::string(dataset::NameDomainName(e.domain)),
                      text::Language::kEnglish)};
    if (!db->Insert("names", values).ok()) return 1;
  }
  if (!db->CreateIndex({.kind = engine::IndexSpec::Kind::kQGram,
                      .table = "names",
                      .column = "name_phon",
                      .q = 2}).ok()) return 1;
  if (!db->CreateIndex({.kind = engine::IndexSpec::Kind::kPhonetic,
                      .table = "names",
                      .column = "name_phon"}).ok()) return 1;
  std::printf("loaded %zu names in 3 scripts; indexes built\n",
              lexicon->entries().size());

  Session session = db->CreateSession();
  if (argc > 1) {
    for (int i = 1; i < argc; ++i) Search(&session, argv[i]);
  } else {
    for (const char* q :
         {"Nehru", "Krishna", "Catherine", "Hydrogen", "Bangalore"}) {
      Search(&session, q);
    }
  }
  db.reset();
  std::remove("/tmp/lexequal_name_search.db");
  return 0;
}
