// Phoneme inspector: shows exactly what the LexEQUAL pipeline does to
// a name — the transform, the articulatory analysis, cluster ids, the
// grouped phonetic key, the romanization, and the renderings in every
// supported script. Handy when tuning cost tables or debugging a
// surprising match.
//
//   ./phoneme_inspector Nehru नेहरु "Al-Qaeda"

#include <cstdio>

#include "g2p/g2p.h"
#include "g2p/render_indic.h"
#include "g2p/render_latin.h"
#include "phonetic/phonetic_key.h"

using namespace lexequal;

namespace {

void Inspect(const std::string& input) {
  const g2p::G2PRegistry& g2p = g2p::G2PRegistry::Default();
  text::TaggedString tagged =
      text::TaggedString::WithDetectedLanguage(input);
  std::printf("\n%s  (script %s, language %s)\n", input.c_str(),
              std::string(text::ScriptName(tagged.script())).c_str(),
              std::string(text::LanguageName(tagged.language())).c_str());

  Result<phonetic::PhonemeString> phon = g2p.Transform(tagged);
  if (!phon.ok()) {
    std::printf("  transform: %s\n", phon.status().ToString().c_str());
    return;
  }
  std::printf("  IPA: %s\n", phon->ToIpa().c_str());
  const phonetic::ClusterTable& clusters =
      phonetic::ClusterTable::Default();
  for (phonetic::Phoneme p : phon->phonemes()) {
    std::printf("    %-6s cluster %-2d  %s\n",
                std::string(phonetic::PhonemeIpa(p)).c_str(),
                clusters.cluster_of(p),
                phonetic::DescribePhoneme(p).c_str());
  }
  std::printf("  grouped key: 0x%llx  (%s)\n",
              static_cast<unsigned long long>(
                  phonetic::GroupedPhonemeStringId(*phon, clusters)),
              phonetic::GroupedPhonemeStringIdDebug(*phon, clusters)
                  .c_str());
  std::printf("  romanized:  %s\n", g2p::RenderLatin(*phon).c_str());

  Result<std::string> deva = g2p::RenderDevanagari(*phon);
  Result<std::string> tamil = g2p::RenderTamil(*phon);
  Result<std::string> greek = g2p::RenderGreek(*phon);
  std::printf("  devanagari: %s\n",
              deva.ok() ? deva->c_str() : deva.status().ToString().c_str());
  std::printf("  tamil:      %s\n",
              tamil.ok() ? tamil->c_str()
                         : tamil.status().ToString().c_str());
  std::printf("  greek:      %s\n",
              greek.ok() ? greek->c_str()
                         : greek.status().ToString().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) {
    for (int i = 1; i < argc; ++i) Inspect(argv[i]);
    return 0;
  }
  for (const char* name : {"Nehru", "Jawaharlal", "Catherine",
                           "Al-Qaeda", "Hydrogen"}) {
    Inspect(name);
  }
  return 0;
}
