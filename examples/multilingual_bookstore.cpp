// Books.com: the paper's motivating scenario (Figures 1-5) end to end
// on the embedded database, through the SQL layer.

#include <cstdio>

#include "engine/session.h"
#include "sql/planner.h"
#include "text/utf8.h"

using namespace lexequal;
using engine::Engine;
using engine::Schema;
using engine::Session;
using engine::Tuple;
using engine::Value;
using engine::ValueType;
using text::Language;

namespace {

void Run(Session* session, const char* title, const std::string& sql) {
  std::printf("\n-- %s\n%s\n", title, sql.c_str());
  Result<sql::QueryResult> result = sql::ExecuteQuery(session, sql);
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().ToString().c_str());
    return;
  }
  std::printf("%s(%zu rows)\n", result->ToTable().c_str(),
              result->rows.size());
}

}  // namespace

int main() {
  Result<std::unique_ptr<Engine>> db_or =
      Engine::Open("/tmp/lexequal_bookstore.db", 1024);
  if (!db_or.ok()) {
    std::printf("open failed: %s\n", db_or.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<Engine> db = std::move(db_or).value();

  // The catalog of Figure 1. author_phon is the materialized phonemic
  // column the architecture of Fig. 7 derives with TTP converters.
  Schema schema({
      {"author", ValueType::kString, std::nullopt},
      {"author_phon", ValueType::kString, 0},
      {"title", ValueType::kString, std::nullopt},
      {"price", ValueType::kString, std::nullopt},
      {"language", ValueType::kString, std::nullopt},
  });
  if (!db->CreateTable("books", schema).ok()) return 1;

  struct Row {
    std::string author;
    Language lang;
    const char* title;
    const char* price;
  };
  const Row rows[] = {
      {"Descartes", Language::kFrench, "Les Meditations Metaphysiques",
       "EUR 49.00"},
      {text::EncodeUtf8({0x0BA8, 0x0BC7, 0x0BB0, 0x0BC1}),
       Language::kTamil, "Asiya Jothi", "INR 250"},
      {text::EncodeUtf8({0x03A3, 0x03B1, 0x03C1, 0x03C1, 0x03B7}),
       Language::kGreek, "Paichnidia sto Piano", "EUR 15.50"},
      {"Nero", Language::kEnglish, "The Coronation of the Virgin",
       "USD 99.00"},
      {"Nehru", Language::kEnglish, "Discovery of India", "USD 9.95"},
      {"\xE5\xAF\xBA\xE4\xBA\x95\xE6\xAD\xA3\xE5\x8D\x9A",
       Language::kJapanese, "Aki no Kaze", "JPY 7500"},
      {text::EncodeUtf8({0x0928, 0x0947, 0x0939, 0x0930, 0x0941}),
       Language::kHindi, "Bharat Ek Khoj", "INR 175"},
  };
  for (const Row& r : rows) {
    Tuple values{
        Value::String(r.author, r.lang),
        Value::String(r.title, Language::kEnglish),
        Value::String(r.price, Language::kEnglish),
        Value::String(std::string(text::LanguageName(r.lang)),
                      Language::kEnglish),
    };
    Result<storage::RID> rid = db->Insert("books", values);
    if (!rid.ok()) {
      std::printf("insert failed: %s\n", rid.status().ToString().c_str());
      return 1;
    }
  }
  // Access paths for the optimized plans.
  (void)db->CreateIndex({.kind = engine::IndexSpec::Kind::kQGram,
                      .table = "books",
                      .column = "author_phon",
                      .q = 2});
  (void)db->CreateIndex({.kind = engine::IndexSpec::Kind::kPhonetic,
                      .table = "books",
                      .column = "author_phon"});

  Session session = db->CreateSession();
  Run(&session, "SQL:1999 exact match finds only one script (Fig. 2)",
      "select author, title, price from books where author = 'Nehru'");

  Run(&session, "LexEQUAL selection across scripts (Fig. 3 -> Fig. 4)",
      "select author, title, price from books "
      "where author LexEQUAL 'Nehru' Threshold 0.3 Cost 0.25 "
      "inlanguages { English, Hindi, Tamil, Greek } USING naive");

  Run(&session, "Same query through the q-gram plan",
      "select author, title from books "
      "where author LexEQUAL 'Nehru' Threshold 0.3 Cost 0.25 "
      "USING qgram");

  Run(&session, "Same query through the phonetic index",
      "select author, title from books "
      "where author LexEQUAL 'Nehru' Threshold 0.3 Cost 0.25 "
      "USING phonetic");

  Run(&session,
      "LexEQUAL equi-join: authors published in multiple languages "
      "(Fig. 5)",
      "select B1.author, B1.language, B2.author, B2.language "
      "from books B1, books B2 "
      "where B1.author LexEQUAL B2.author Threshold 0.3 Cost 0.25 "
      "and B1.language <> B2.language USING naive");

  std::remove("/tmp/lexequal_bookstore.db");
  return 0;
}
