// e-Governance record deduplication.
//
// The paper motivates LexEQUAL joins with "a real-life e-Governance
// application that requires a join based on the phonetic equivalence
// of multiscript data" (its reference [12]): citizen registries where
// the same person is enrolled once in English and once in a regional
// script. This example builds such a registry from the trilingual
// lexicon (with synthetic registration numbers), runs the Fig. 5 join
// under the naive and q-gram plans, and reports how many planted
// duplicates each audit catches — the recall/latency tradeoff of the
// paper's Tables 1-3 in an application setting.

#include <chrono>
#include <cstdio>
#include <map>
#include <set>

#include "common/random.h"
#include "dataset/lexicon.h"
#include "engine/session.h"

using namespace lexequal;
using engine::Engine;
using engine::LexEqualPlan;
using engine::LexEqualQueryOptions;
using engine::QueryRequest;
using engine::Schema;
using engine::Session;
using engine::Tuple;
using engine::Value;
using engine::ValueType;

int main() {
  Result<dataset::Lexicon> lexicon = dataset::Lexicon::BuildTrilingual();
  if (!lexicon.ok()) return 1;

  std::remove("/tmp/lexequal_dedup.db");
  Result<std::unique_ptr<Engine>> db_or =
      Engine::Open("/tmp/lexequal_dedup.db", 2048);
  if (!db_or.ok()) return 1;
  std::unique_ptr<Engine> db = std::move(db_or).value();

  Schema schema({
      {"reg_no", ValueType::kInt64, std::nullopt},
      {"name", ValueType::kString, std::nullopt},
      {"name_phon", ValueType::kString, 1},  // derived from `name`
  });
  if (!db->CreateTable("citizens", schema).ok()) return 1;

  // Everyone enrolls in English; every 7th person enrolls again in an
  // Indic script under a different registration number.
  Random rng(2026);
  int64_t reg_no = 100000;
  int enrolled = 0;
  std::set<std::pair<int64_t, int64_t>> planted;
  const auto& entries = lexicon->entries();
  for (size_t i = 0; i + 2 < entries.size(); i += 3) {
    auto enroll = [&](const dataset::LexiconEntry& e) {
      Tuple values{Value::Int64(reg_no),
                   Value::String(e.text, e.language)};
      bool ok = db->Insert("citizens", values).ok();
      ++reg_no;
      return ok;
    };
    const int64_t english_reg = reg_no;
    if (!enroll(entries[i])) return 1;
    ++enrolled;
    if ((i / 3) % 7 == 0) {
      const dataset::LexiconEntry& dup =
          rng.Bernoulli(0.5) ? entries[i + 1] : entries[i + 2];
      const int64_t dup_reg = reg_no;
      if (!enroll(dup)) return 1;
      ++enrolled;
      planted.insert({english_reg, dup_reg});
    }
  }
  if (!db->CreateIndex({.kind = engine::IndexSpec::Kind::kQGram,
                      .table = "citizens",
                      .column = "name_phon",
                      .q = 2}).ok()) return 1;
  std::printf("registry: %d enrollments, %zu planted cross-script "
              "duplicates\n\n",
              enrolled, planted.size());

  Session session = db->CreateSession();
  LexEqualQueryOptions options;
  options.match.threshold = 0.25;
  options.match.intra_cluster_cost = 0.25;

  std::printf("| plan         | audit recall | pairs |     time |\n");
  std::printf("|--------------|--------------|-------|----------|\n");
  std::vector<std::pair<Tuple, Tuple>> naive_pairs;
  for (LexEqualPlan plan :
       {LexEqualPlan::kNaiveUdf, LexEqualPlan::kQGramFilter}) {
    options.hints.plan = plan;
    QueryRequest req =
        QueryRequest::Join("citizens", "name", "citizens", "name");
    req.options = options;
    const auto start = std::chrono::steady_clock::now();
    Result<engine::QueryResult> result = session.Execute(req);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    if (!result.ok()) {
      std::printf("join: %s\n", result.status().ToString().c_str());
      return 1;
    }
    std::vector<std::pair<Tuple, Tuple>> pairs =
        std::move(result->pairs);
    std::set<std::pair<int64_t, int64_t>> caught;
    for (const auto& [a, b] : pairs) {
      int64_t lo = std::min(a[0].AsInt64(), b[0].AsInt64());
      int64_t hi = std::max(a[0].AsInt64(), b[0].AsInt64());
      if (planted.count({lo, hi}) > 0) caught.insert({lo, hi});
    }
    std::printf("| %-12s | %4zu of %-4zu | %5zu | %5.0f ms |\n",
                std::string(LexEqualPlanName(plan)).c_str(),
                caught.size(), planted.size(), pairs.size(), ms);
    if (plan == LexEqualPlan::kNaiveUdf) {
      naive_pairs = std::move(pairs);
    }
  }

  // Cluster the exhaustive result into duplicate groups for review.
  std::map<int64_t, std::set<int64_t>> clusters;
  for (const auto& [a, b] : naive_pairs) {
    int64_t ra = a[0].AsInt64();
    int64_t rb = b[0].AsInt64();
    clusters[std::min(ra, rb)].insert(ra);
    clusters[std::min(ra, rb)].insert(rb);
  }
  std::printf("\n%zu candidate duplicate clusters for manual review, "
              "e.g.:\n",
              clusters.size());
  int shown = 0;
  for (const auto& [rep, members] : clusters) {
    if (shown >= 6) break;
    std::printf("  cluster:");
    for (int64_t r : members) std::printf(" #%lld", (long long)r);
    for (const auto& [a, b] : naive_pairs) {
      if (std::min(a[0].AsInt64(), b[0].AsInt64()) != rep) continue;
      std::printf("  (%s ~ %s)", a[1].AsString().text().c_str(),
                  b[1].AsString().text().c_str());
      break;
    }
    std::printf("\n");
    ++shown;
  }
  db.reset();
  std::remove("/tmp/lexequal_dedup.db");
  return 0;
}
