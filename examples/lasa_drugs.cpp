// Look-Alike Sound-Alike (LASA) drug names.
//
// The paper's related work (§2.3) cites pharmaceutical systems whose
// goal is to find confusable drug names — a monoscript cousin of
// multiscript matching. This example runs the LexEQUAL matcher as a
// self-join over a drug-name list and reports the confusable pairs,
// sorted by phonetic distance.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "match/edit_distance.h"
#include "match/lexequal.h"

using namespace lexequal;

int main() {
  // Classic LASA pairs from the pharmacovigilance literature, mixed
  // with dissimilar names as controls.
  const char* drugs[] = {
      "Celebrex",    "Celexa",     "Cerebyx",    "Zyprexa",
      "Zyrtec",      "Zantac",     "Xanax",      "Zestril",
      "Zetia",       "Lamictal",   "Lamisil",    "Prilosec",
      "Prozac",      "Paxil",      "Plavix",     "Klonopin",
      "Clonidine",   "Hydroxyzine", "Hydralazine", "Metformin",
      "Metronidazole", "Amlodipine", "Amiodarone", "Losartan",
      "Lovastatin",  "Atorvastatin",
  };

  const g2p::G2PRegistry& g2p = g2p::G2PRegistry::Default();
  // LASA screening wants high recall: the domain tunes the threshold
  // up (the paper's point that matching "needs to be tuned ... for
  // specific application domains").
  match::LexEqualMatcher matcher(
      {.threshold = 0.45, .intra_cluster_cost = 0.25});

  struct Pair {
    std::string a, b, a_ipa, b_ipa;
    double distance;
  };
  std::vector<Pair> confusable;

  std::vector<phonetic::PhonemeString> phons;
  for (const char* name : drugs) {
    Result<phonetic::PhonemeString> p =
        g2p.Transform(name, text::Language::kEnglish);
    if (!p.ok()) {
      std::printf("%s: %s\n", name, p.status().ToString().c_str());
      return 1;
    }
    phons.push_back(std::move(p).value());
  }

  const size_t n = std::size(drugs);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (!matcher.MatchPhonemes(phons[i], phons[j])) continue;
      confusable.push_back(
          {drugs[i], drugs[j], phons[i].ToIpa(), phons[j].ToIpa(),
           match::EditDistance(phons[i], phons[j],
                               matcher.cost_model())});
    }
  }
  std::sort(confusable.begin(), confusable.end(),
            [](const Pair& x, const Pair& y) {
              return x.distance < y.distance;
            });

  std::printf("Confusable (LASA) drug-name pairs at threshold 0.45:\n");
  for (const Pair& p : confusable) {
    std::printf("  %-12s ~ %-12s  dist %.2f   [%s ~ %s]\n", p.a.c_str(),
                p.b.c_str(), p.distance, p.a_ipa.c_str(),
                p.b_ipa.c_str());
  }
  std::printf("%zu of %zu pairs flagged\n", confusable.size(),
              n * (n - 1) / 2);
  return 0;
}
