#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "common/random.h"
#include "storage/buffer_pool.h"
#include "storage/heap_file.h"

namespace lexequal::storage {
namespace {

class StorageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("lexequal_storage_test_" +
             std::to_string(reinterpret_cast<uintptr_t>(this)) + ".db");
    std::filesystem::remove(path_);
  }
  void TearDown() override { std::filesystem::remove(path_); }
  std::filesystem::path path_;
};

TEST_F(StorageTest, DiskManagerAllocateReadWrite) {
  auto disk = DiskManager::Open(path_.string());
  ASSERT_TRUE(disk.ok()) << disk.status();
  EXPECT_EQ((*disk)->page_count(), 0u);

  Result<PageId> p0 = (*disk)->AllocatePage();
  ASSERT_TRUE(p0.ok());
  EXPECT_EQ(p0.value(), 0u);

  char buf[kPageSize];
  std::memset(buf, 0xAB, kPageSize);
  ASSERT_TRUE((*disk)->WritePage(0, buf).ok());

  char readback[kPageSize];
  ASSERT_TRUE((*disk)->ReadPage(0, readback).ok());
  EXPECT_EQ(std::memcmp(buf, readback, kPageSize), 0);

  EXPECT_TRUE((*disk)->ReadPage(5, readback).IsOutOfRange());
}

TEST_F(StorageTest, DiskManagerPersistsAcrossReopen) {
  {
    auto disk = DiskManager::Open(path_.string());
    ASSERT_TRUE(disk.ok());
    ASSERT_TRUE((*disk)->AllocatePage().ok());
    char buf[kPageSize];
    std::memset(buf, 0x5A, kPageSize);
    ASSERT_TRUE((*disk)->WritePage(0, buf).ok());
    ASSERT_TRUE((*disk)->Sync().ok());
  }
  auto disk = DiskManager::Open(path_.string());
  ASSERT_TRUE(disk.ok());
  EXPECT_EQ((*disk)->page_count(), 1u);
  char readback[kPageSize];
  ASSERT_TRUE((*disk)->ReadPage(0, readback).ok());
  EXPECT_EQ(readback[100], 0x5A);
}

TEST_F(StorageTest, BufferPoolPinningPreventsEviction) {
  auto disk = DiskManager::Open(path_.string());
  ASSERT_TRUE(disk.ok());
  BufferPool pool(disk->get(), 3);

  Page* pages[3];
  for (int i = 0; i < 3; ++i) {
    Result<Page*> p = pool.NewPage();
    ASSERT_TRUE(p.ok());
    pages[i] = p.value();
  }
  // All frames pinned: the next allocation must fail.
  EXPECT_TRUE(pool.NewPage().status().IsResourceExhausted());
  // Unpin one and retry.
  ASSERT_TRUE(pool.UnpinPage(pages[0]->page_id(), false).ok());
  EXPECT_TRUE(pool.NewPage().ok());
}

TEST_F(StorageTest, BufferPoolEvictsLruAndRereads) {
  auto disk = DiskManager::Open(path_.string());
  ASSERT_TRUE(disk.ok());
  BufferPool pool(disk->get(), 2);

  // Create 3 pages, write a marker in each, unpin.
  PageId ids[3];
  for (int i = 0; i < 3; ++i) {
    Result<Page*> p = pool.NewPage();
    ASSERT_TRUE(p.ok());
    ids[i] = (*p)->page_id();
    (*p)->data()[0] = static_cast<char>('A' + i);
    ASSERT_TRUE(pool.UnpinPage(ids[i], true).ok());
  }
  EXPECT_GT(pool.stats().evictions, 0u);
  // Every page still readable with its marker.
  for (int i = 0; i < 3; ++i) {
    Result<Page*> p = pool.FetchPage(ids[i]);
    ASSERT_TRUE(p.ok());
    EXPECT_EQ((*p)->data()[0], static_cast<char>('A' + i));
    ASSERT_TRUE(pool.UnpinPage(ids[i], false).ok());
  }
}

TEST_F(StorageTest, BufferPoolHitTracking) {
  auto disk = DiskManager::Open(path_.string());
  ASSERT_TRUE(disk.ok());
  BufferPool pool(disk->get(), 4);
  Result<Page*> p = pool.NewPage();
  ASSERT_TRUE(p.ok());
  PageId id = (*p)->page_id();
  ASSERT_TRUE(pool.UnpinPage(id, true).ok());
  const uint64_t hits_before = pool.stats().hits;
  ASSERT_TRUE(pool.FetchPage(id).ok());
  ASSERT_TRUE(pool.UnpinPage(id, false).ok());
  EXPECT_EQ(pool.stats().hits, hits_before + 1);
}

TEST_F(StorageTest, SlottedPageInsertGetDelete) {
  Page raw;
  SlottedPage sp(&raw);
  sp.Init();
  EXPECT_EQ(sp.slot_count(), 0);

  Result<uint16_t> s0 = sp.Insert("hello");
  Result<uint16_t> s1 = sp.Insert("world!");
  ASSERT_TRUE(s0.ok());
  ASSERT_TRUE(s1.ok());
  EXPECT_EQ(sp.Get(s0.value()).value(), "hello");
  EXPECT_EQ(sp.Get(s1.value()).value(), "world!");

  ASSERT_TRUE(sp.Delete(s0.value()).ok());
  EXPECT_TRUE(sp.Get(s0.value()).status().IsNotFound());
  EXPECT_EQ(sp.Get(s1.value()).value(), "world!");  // s1 unaffected
  EXPECT_TRUE(sp.Delete(s0.value()).IsNotFound());
}

TEST_F(StorageTest, SlottedPageRejectsOverflow) {
  Page raw;
  SlottedPage sp(&raw);
  sp.Init();
  std::string big(kPageSize, 'x');
  EXPECT_TRUE(sp.Insert(big).status().IsResourceExhausted());
  EXPECT_TRUE(sp.Insert("").status().IsInvalidArgument());
  // Fill until full: all inserts either succeed or report exhaustion.
  int inserted = 0;
  while (true) {
    Result<uint16_t> s = sp.Insert("0123456789");
    if (!s.ok()) {
      EXPECT_TRUE(s.status().IsResourceExhausted());
      break;
    }
    ++inserted;
  }
  EXPECT_GT(inserted, 200);  // (4096-8) / (10+4) ≈ 290
}

TEST_F(StorageTest, HeapFileInsertGetAcrossPages) {
  auto disk = DiskManager::Open(path_.string());
  ASSERT_TRUE(disk.ok());
  BufferPool pool(disk->get(), 8);
  Result<HeapFile> heap = HeapFile::Create(&pool);
  ASSERT_TRUE(heap.ok());

  // Insert enough records to span several pages.
  std::vector<RID> rids;
  for (int i = 0; i < 2000; ++i) {
    std::string rec = "record-" + std::to_string(i);
    Result<RID> rid = heap->Insert(rec);
    ASSERT_TRUE(rid.ok()) << rid.status();
    rids.push_back(rid.value());
  }
  EXPECT_EQ(heap->record_count(), 2000u);
  // Spot-check retrieval.
  EXPECT_EQ(heap->Get(rids[0]).value(), "record-0");
  EXPECT_EQ(heap->Get(rids[1234]).value(), "record-1234");
  EXPECT_EQ(heap->Get(rids[1999]).value(), "record-1999");
}

TEST_F(StorageTest, HeapFileIterationSeesAllLiveRecords) {
  auto disk = DiskManager::Open(path_.string());
  ASSERT_TRUE(disk.ok());
  BufferPool pool(disk->get(), 8);
  Result<HeapFile> heap = HeapFile::Create(&pool);
  ASSERT_TRUE(heap.ok());

  std::vector<RID> rids;
  for (int i = 0; i < 500; ++i) {
    Result<RID> rid = heap->Insert("r" + std::to_string(i));
    ASSERT_TRUE(rid.ok());
    rids.push_back(rid.value());
  }
  // Delete every third record.
  for (size_t i = 0; i < rids.size(); i += 3) {
    ASSERT_TRUE(heap->Delete(rids[i]).ok());
  }
  size_t seen = 0;
  for (auto it = heap->Begin(); !it.AtEnd();) {
    ++seen;
    ASSERT_TRUE(it.Next().ok());
  }
  EXPECT_EQ(seen, 500u - (500 + 2) / 3);
}

TEST_F(StorageTest, HeapFileReopenFindsRecords) {
  PageId first_page;
  {
    auto disk = DiskManager::Open(path_.string());
    ASSERT_TRUE(disk.ok());
    BufferPool pool(disk->get(), 8);
    Result<HeapFile> heap = HeapFile::Create(&pool);
    ASSERT_TRUE(heap.ok());
    first_page = heap->first_page();
    for (int i = 0; i < 300; ++i) {
      ASSERT_TRUE(heap->Insert("persist-" + std::to_string(i)).ok());
    }
    ASSERT_TRUE(pool.FlushAll().ok());
  }
  auto disk = DiskManager::Open(path_.string());
  ASSERT_TRUE(disk.ok());
  BufferPool pool(disk->get(), 8);
  Result<HeapFile> heap = HeapFile::Open(&pool, first_page);
  ASSERT_TRUE(heap.ok());
  EXPECT_EQ(heap->record_count(), 300u);
  // Inserts continue at the tail.
  ASSERT_TRUE(heap->Insert("tail").ok());
  EXPECT_EQ(heap->record_count(), 301u);
}

TEST_F(StorageTest, HeapFileEmptyIteration) {
  auto disk = DiskManager::Open(path_.string());
  ASSERT_TRUE(disk.ok());
  BufferPool pool(disk->get(), 4);
  Result<HeapFile> heap = HeapFile::Create(&pool);
  ASSERT_TRUE(heap.ok());
  auto it = heap->Begin();
  EXPECT_TRUE(it.AtEnd());
}

}  // namespace
}  // namespace lexequal::storage
