#include "index/btree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <map>

#include "common/random.h"

namespace lexequal::index {
namespace {

using storage::BufferPool;
using storage::DiskManager;
using storage::RID;

class BTreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("lexequal_btree_test_" +
             std::to_string(reinterpret_cast<uintptr_t>(this)) + ".db");
    std::filesystem::remove(path_);
    auto disk = DiskManager::Open(path_.string());
    ASSERT_TRUE(disk.ok());
    disk_ = std::move(disk).value();
    pool_ = std::make_unique<BufferPool>(disk_.get(), 64);
  }
  void TearDown() override {
    pool_.reset();
    disk_.reset();
    std::filesystem::remove(path_);
  }
  std::filesystem::path path_;
  std::unique_ptr<DiskManager> disk_;
  std::unique_ptr<BufferPool> pool_;
};

RID MakeRid(uint32_t i) { return RID{i, static_cast<uint16_t>(i % 7)}; }

TEST_F(BTreeTest, EmptyTree) {
  Result<BTree> tree = BTree::Create(pool_.get());
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->EntryCount().value(), 0u);
  EXPECT_EQ(tree->Height().value(), 1);
  EXPECT_TRUE(tree->ScanEqual(42).value().empty());
}

TEST_F(BTreeTest, InsertAndPointLookup) {
  Result<BTree> tree = BTree::Create(pool_.get());
  ASSERT_TRUE(tree.ok());
  ASSERT_TRUE(tree->Insert(10, MakeRid(1)).ok());
  ASSERT_TRUE(tree->Insert(20, MakeRid(2)).ok());
  ASSERT_TRUE(tree->Insert(15, MakeRid(3)).ok());

  Result<std::vector<RID>> hit = tree->ScanEqual(15);
  ASSERT_TRUE(hit.ok());
  ASSERT_EQ(hit->size(), 1u);
  EXPECT_EQ((*hit)[0], MakeRid(3));
  EXPECT_TRUE(tree->ScanEqual(17).value().empty());
}

TEST_F(BTreeTest, DuplicateKeysAllReturned) {
  Result<BTree> tree = BTree::Create(pool_.get());
  ASSERT_TRUE(tree.ok());
  for (uint32_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(tree->Insert(7, MakeRid(i)).ok());
  }
  ASSERT_TRUE(tree->Insert(8, MakeRid(100)).ok());
  Result<std::vector<RID>> hits = tree->ScanEqual(7);
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 50u);
  EXPECT_TRUE(std::is_sorted(hits->begin(), hits->end()));
}

TEST_F(BTreeTest, LargeInsertTriggersSplitsAndStaysSorted) {
  Result<BTree> tree = BTree::Create(pool_.get());
  ASSERT_TRUE(tree.ok());
  Random rng(42);
  std::multimap<uint64_t, RID> reference;
  for (uint32_t i = 0; i < 20000; ++i) {
    uint64_t key = rng.Uniform(5000);
    RID rid = MakeRid(i);
    ASSERT_TRUE(tree->Insert(key, rid).ok());
    reference.emplace(key, rid);
  }
  EXPECT_EQ(tree->EntryCount().value(), 20000u);
  EXPECT_GT(tree->Height().value(), 1);

  // Every key's postings match the reference.
  for (uint64_t key : {0ull, 17ull, 4999ull, 2500ull}) {
    auto [lo, hi] = reference.equal_range(key);
    std::vector<RID> expected;
    for (auto it = lo; it != hi; ++it) expected.push_back(it->second);
    std::sort(expected.begin(), expected.end());
    Result<std::vector<RID>> got = tree->ScanEqual(key);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, expected) << "key " << key;
  }

  // Full range scan returns everything in key order.
  auto all = tree->ScanRange(0, UINT64_MAX);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 20000u);
  EXPECT_TRUE(std::is_sorted(
      all->begin(), all->end(),
      [](const auto& a, const auto& b) { return a.first < b.first; }));
}

TEST_F(BTreeTest, RangeScanBoundsInclusive) {
  Result<BTree> tree = BTree::Create(pool_.get());
  ASSERT_TRUE(tree.ok());
  for (uint32_t k = 0; k < 100; ++k) {
    ASSERT_TRUE(tree->Insert(k, MakeRid(k)).ok());
  }
  auto r = tree->ScanRange(10, 20);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 11u);
  EXPECT_EQ(r->front().first, 10u);
  EXPECT_EQ(r->back().first, 20u);
}

TEST_F(BTreeTest, DeleteRemovesExactEntry) {
  Result<BTree> tree = BTree::Create(pool_.get());
  ASSERT_TRUE(tree.ok());
  ASSERT_TRUE(tree->Insert(5, MakeRid(1)).ok());
  ASSERT_TRUE(tree->Insert(5, MakeRid(2)).ok());
  ASSERT_TRUE(tree->Delete(5, MakeRid(1)).ok());
  Result<std::vector<RID>> hits = tree->ScanEqual(5);
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits->size(), 1u);
  EXPECT_EQ((*hits)[0], MakeRid(2));
  EXPECT_TRUE(tree->Delete(5, MakeRid(1)).IsNotFound());
  EXPECT_TRUE(tree->Delete(99, MakeRid(0)).IsNotFound());
}

TEST_F(BTreeTest, PersistsAcrossReopen) {
  storage::PageId root;
  {
    Result<BTree> tree = BTree::Create(pool_.get());
    ASSERT_TRUE(tree.ok());
    for (uint32_t i = 0; i < 5000; ++i) {
      ASSERT_TRUE(tree->Insert(i * 3, MakeRid(i)).ok());
    }
    root = tree->root_page_id();
    ASSERT_TRUE(pool_->FlushAll().ok());
  }
  // Fresh pool over the same file.
  BufferPool pool2(disk_.get(), 16);
  BTree tree = BTree::Open(&pool2, root);
  EXPECT_EQ(tree.EntryCount().value(), 5000u);
  Result<std::vector<RID>> hit = tree.ScanEqual(300);
  ASSERT_TRUE(hit.ok());
  ASSERT_EQ(hit->size(), 1u);
  EXPECT_EQ((*hit)[0], MakeRid(100));
}

TEST_F(BTreeTest, SequentialAndReverseInsertOrders) {
  for (bool reverse : {false, true}) {
    auto disk = DiskManager::Open(path_.string() +
                                  (reverse ? ".rev" : ".fwd"));
    ASSERT_TRUE(disk.ok());
    BufferPool pool(disk->get(), 32);
    Result<BTree> tree = BTree::Create(&pool);
    ASSERT_TRUE(tree.ok());
    for (uint32_t i = 0; i < 3000; ++i) {
      uint64_t key = reverse ? 3000 - i : i;
      ASSERT_TRUE(tree->Insert(key, MakeRid(i)).ok());
    }
    EXPECT_EQ(tree->EntryCount().value(), 3000u);
    auto all = tree->ScanRange(0, UINT64_MAX);
    ASSERT_TRUE(all.ok());
    EXPECT_TRUE(std::is_sorted(
        all->begin(), all->end(),
        [](const auto& a, const auto& b) { return a.first < b.first; }));
    std::filesystem::remove(path_.string() + (reverse ? ".rev" : ".fwd"));
  }
}

TEST_F(BTreeTest, WorksWithTinyBufferPool) {
  // The tree must function when the pool is much smaller than the
  // tree (true on-disk behaviour, as in the paper's experiments).
  BufferPool tiny(disk_.get(), 8);
  Result<BTree> tree = BTree::Create(&tiny);
  ASSERT_TRUE(tree.ok());
  for (uint32_t i = 0; i < 10000; ++i) {
    ASSERT_TRUE(tree->Insert(i % 997, MakeRid(i)).ok()) << i;
  }
  EXPECT_EQ(tree->EntryCount().value(), 10000u);
  EXPECT_GT(tiny.stats().evictions, 0u);
  EXPECT_EQ(tree->ScanEqual(0).value().size(), 11u);  // 0,997,...,9970
}

}  // namespace
}  // namespace lexequal::index
