#include "text/utf8.h"

#include <gtest/gtest.h>

namespace lexequal::text {
namespace {

TEST(Utf8Test, AsciiRoundTrip) {
  std::string s = "Nehru";
  std::vector<CodePoint> cps = DecodeUtf8(s);
  ASSERT_EQ(cps.size(), 5u);
  EXPECT_EQ(cps[0], 'N');
  EXPECT_EQ(EncodeUtf8(cps), s);
}

TEST(Utf8Test, TwoByteRoundTrip) {
  // é U+00E9
  std::string s = "\xC3\xA9";
  std::vector<CodePoint> cps = DecodeUtf8(s);
  ASSERT_EQ(cps.size(), 1u);
  EXPECT_EQ(cps[0], 0xE9u);
  EXPECT_EQ(EncodeUtf8(0xE9), s);
}

TEST(Utf8Test, ThreeByteRoundTrip) {
  // Devanagari NA U+0928
  std::vector<CodePoint> cps = {0x0928};
  std::string s = EncodeUtf8(cps);
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(DecodeUtf8(s), cps);
}

TEST(Utf8Test, FourByteRoundTrip) {
  std::vector<CodePoint> cps = {0x1F600};
  std::string s = EncodeUtf8(cps);
  EXPECT_EQ(s.size(), 4u);
  EXPECT_EQ(DecodeUtf8(s), cps);
}

TEST(Utf8Test, MixedStringCodePointCount) {
  // "नेहरु" = 5 code points, 15 bytes.
  std::string s = EncodeUtf8({0x0928, 0x0947, 0x0939, 0x0930, 0x0941});
  EXPECT_EQ(s.size(), 15u);
  EXPECT_EQ(CodePointCount(s), 5u);
}

TEST(Utf8Test, RejectsOverlongEncoding) {
  // Overlong encoding of '/' (0x2F) as two bytes.
  std::string overlong = "\xC0\xAF";
  EXPECT_FALSE(IsValidUtf8(overlong));
  EXPECT_FALSE(DecodeUtf8Strict(overlong).ok());
}

TEST(Utf8Test, RejectsSurrogates) {
  // CESU-8 style encoded surrogate U+D800: ED A0 80.
  std::string surrogate = "\xED\xA0\x80";
  EXPECT_FALSE(IsValidUtf8(surrogate));
}

TEST(Utf8Test, RejectsTruncatedSequence) {
  std::string truncated = "\xE0\xA4";  // missing third byte
  EXPECT_FALSE(IsValidUtf8(truncated));
  // Lenient decoding substitutes replacement characters.
  std::vector<CodePoint> cps = DecodeUtf8(truncated);
  ASSERT_FALSE(cps.empty());
  EXPECT_EQ(cps[0], kReplacementChar);
}

TEST(Utf8Test, RejectsBareContinuation) {
  std::string bare = "a\x80z";
  EXPECT_FALSE(IsValidUtf8(bare));
  std::vector<CodePoint> cps = DecodeUtf8(bare);
  ASSERT_EQ(cps.size(), 3u);
  EXPECT_EQ(cps[1], kReplacementChar);
}

TEST(Utf8Test, RejectsOutOfRange) {
  // 0xF5 starts values above U+10FFFF.
  std::string big = "\xF5\x80\x80\x80";
  EXPECT_FALSE(IsValidUtf8(big));
}

TEST(Utf8Test, EncodeClampsInvalidScalars) {
  EXPECT_EQ(EncodeUtf8(0xD800u), EncodeUtf8(kReplacementChar));
  EXPECT_EQ(EncodeUtf8(0x110000u), EncodeUtf8(kReplacementChar));
}

TEST(Utf8Test, StrictDecodeReportsOffset) {
  Result<std::vector<CodePoint>> r = DecodeUtf8Strict("ab\x80");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("offset 2"), std::string::npos);
}

TEST(Utf8Test, ValidStringsAcrossPlanes) {
  EXPECT_TRUE(IsValidUtf8(""));
  EXPECT_TRUE(IsValidUtf8("ascii only"));
  EXPECT_TRUE(IsValidUtf8(EncodeUtf8({0x7F, 0x80, 0x7FF, 0x800, 0xFFFF,
                                      0x10000, 0x10FFFF})));
}

}  // namespace
}  // namespace lexequal::text
