// QueryTrace unit coverage: span nesting from begin/end order,
// watched-counter deltas, defensive unwinding, rows accounting, the
// null-trace no-op contract of ScopedSpan, and ToString rendering.

#include <gtest/gtest.h>

#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace lexequal::obs {
namespace {

class ObsTraceTest : public ::testing::Test {
 protected:
  void SetUp() override { previous_ = SetEnabled(true); }
  void TearDown() override { SetEnabled(previous_); }

  bool previous_ = true;
  MetricsRegistry registry_;
};

TEST_F(ObsTraceTest, ScopedSpansNestByScope) {
  QueryTrace trace;
  {
    ScopedSpan root(&trace, "query");
    {
      ScopedSpan scan(&trace, "scan");
      scan.AddRows(10);
    }
    { ScopedSpan verify(&trace, "verify"); }
  }
  ASSERT_EQ(trace.spans().size(), 3u);

  const QueryTrace::Span& root = trace.spans()[0];
  EXPECT_EQ(root.name, "query");
  EXPECT_EQ(root.parent, QueryTrace::kNoParent);
  EXPECT_EQ(root.depth, 0u);
  EXPECT_FALSE(root.open);

  const QueryTrace::Span& scan = trace.spans()[1];
  EXPECT_EQ(scan.name, "scan");
  EXPECT_EQ(scan.parent, 0u);
  EXPECT_EQ(scan.depth, 1u);
  EXPECT_EQ(scan.rows, 10u);

  const QueryTrace::Span& verify = trace.spans()[2];
  EXPECT_EQ(verify.parent, 0u);  // sibling of scan, child of root
  EXPECT_EQ(verify.depth, 1u);
}

TEST_F(ObsTraceTest, WatchedCountersRecordPerSpanDeltas) {
#ifdef LEXEQUAL_NO_OBS
  GTEST_SKIP() << "counter mutations compiled out under LEXEQUAL_NO_OBS";
#endif
  Counter* hits = registry_.GetCounter("lexequal_test_trace_hits");
  hits->Inc(100);  // pre-trace activity must not leak into deltas

  QueryTrace trace;
  trace.Watch("hits", hits);
  ASSERT_EQ(trace.watched_labels(),
            (std::vector<std::string>{"hits"}));
  {
    ScopedSpan root(&trace, "query");
    hits->Inc(2);
    {
      ScopedSpan inner(&trace, "scan");
      hits->Inc(5);
    }
  }
  // Inner span saw only its own 5; the root saw both its 2 and the
  // nested 5 (deltas are inclusive of children, like wall time).
  EXPECT_EQ(trace.spans()[1].deltas[0], 5u);
  EXPECT_EQ(trace.spans()[0].deltas[0], 7u);
}

TEST_F(ObsTraceTest, EndingAnOuterSpanClosesInnerSpans) {
  QueryTrace trace;
  const size_t root = trace.BeginSpan("query");
  trace.BeginSpan("scan");  // never explicitly ended
  trace.EndSpan(root);
  EXPECT_FALSE(trace.spans()[0].open);
  EXPECT_FALSE(trace.spans()[1].open);

  // Ending again is a no-op, as is ending a bogus id.
  trace.EndSpan(root);
  trace.EndSpan(12345);
  EXPECT_EQ(trace.spans().size(), 2u);
}

TEST_F(ObsTraceTest, NullTraceMakesScopedSpanANoOp) {
  ScopedSpan span(nullptr, "anything");
  span.AddRows(5);
  span.End();  // must not crash
  SUCCEED();
}

TEST_F(ObsTraceTest, ScopedSpanEndIsIdempotent) {
  QueryTrace trace;
  {
    ScopedSpan span(&trace, "query");
    span.End();
    span.AddRows(3);  // after End: dropped, not credited elsewhere
    span.End();
  }  // destructor End is the third call
  ASSERT_EQ(trace.spans().size(), 1u);
  EXPECT_FALSE(trace.spans()[0].open);
  EXPECT_EQ(trace.spans()[0].rows, 0u);
}

TEST_F(ObsTraceTest, ToStringIndentsByDepthAndShowsDeltas) {
#ifdef LEXEQUAL_NO_OBS
  GTEST_SKIP() << "counter mutations compiled out under LEXEQUAL_NO_OBS";
#endif
  Counter* reads = registry_.GetCounter("lexequal_test_trace_reads");
  QueryTrace trace;
  trace.Watch("reads", reads);
  {
    ScopedSpan root(&trace, "query");
    {
      ScopedSpan scan(&trace, "scan");
      scan.AddRows(4);
      reads->Inc(3);
    }
  }
  const std::string text = trace.ToString();
  EXPECT_NE(text.find("query"), std::string::npos);
  EXPECT_NE(text.find("\n  scan"), std::string::npos);  // indented child
  EXPECT_NE(text.find("rows=4"), std::string::npos);
  EXPECT_NE(text.find("reads=3"), std::string::npos);
  EXPECT_NE(text.find(" us"), std::string::npos);
}

TEST_F(ObsTraceTest, ClearDropsSpansButKeepsWatches) {
  QueryTrace trace;
  trace.Watch("hits", registry_.GetCounter("lexequal_test_trace_keep"));
  { ScopedSpan span(&trace, "query"); }
  ASSERT_EQ(trace.spans().size(), 1u);

  trace.Clear();
  EXPECT_TRUE(trace.spans().empty());
  EXPECT_EQ(trace.watched_labels().size(), 1u);

  // Reusable after Clear: new spans start a fresh tree.
  { ScopedSpan span(&trace, "again"); }
  ASSERT_EQ(trace.spans().size(), 1u);
  EXPECT_EQ(trace.spans()[0].name, "again");
  EXPECT_EQ(trace.spans()[0].depth, 0u);
}

}  // namespace
}  // namespace lexequal::obs
