// MetricsRegistry unit coverage: the naming contract, the runtime
// kill switch, histogram edge cases (empty quantiles, overflow
// clamping, concurrent exact sums), registration idempotence, and
// both export formats.
//
// Histogram-concurrency tests carry the `parallel` ctest label via
// the binary's registration so the tsan run exercises the lock-free
// recording path.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace lexequal::obs {
namespace {

// Restores the runtime switch after each test so the binary's other
// tests never observe a disabled registry.
class ObsMetricsTest : public ::testing::Test {
 protected:
  void SetUp() override { previous_ = SetEnabled(true); }
  void TearDown() override { SetEnabled(previous_); }

  bool previous_ = true;
  MetricsRegistry registry_;  // fresh per test; no cross-test names
};

TEST_F(ObsMetricsTest, ValidNameEnforcesPrefixAndSnakeCase) {
  EXPECT_TRUE(MetricsRegistry::ValidName("lexequal_bufpool_hits"));
  EXPECT_TRUE(MetricsRegistry::ValidName("lexequal_g2p_transforms"));
  EXPECT_TRUE(
      MetricsRegistry::ValidName("lexequal_parallel_chunk_wall_us"));

  EXPECT_FALSE(MetricsRegistry::ValidName(""));
  EXPECT_FALSE(MetricsRegistry::ValidName("bufpool_hits"));
  EXPECT_FALSE(MetricsRegistry::ValidName("lexequal_hits"));  // 1 segment
  EXPECT_FALSE(MetricsRegistry::ValidName("lexequal_BufPool_hits"));
  EXPECT_FALSE(MetricsRegistry::ValidName("lexequal_bufpool_"));
  EXPECT_FALSE(MetricsRegistry::ValidName("lexequal__hits"));
  EXPECT_FALSE(MetricsRegistry::ValidName("lexequal_bufpool-hits"));
  EXPECT_FALSE(MetricsRegistry::ValidName("lexequal_bufpool_hits "));
}

TEST_F(ObsMetricsTest, RegistrationReturnsSamePointerPerName) {
  Counter* a = registry_.GetCounter("lexequal_test_counter", "help");
  Counter* b = registry_.GetCounter("lexequal_test_counter");
  EXPECT_EQ(a, b);

  Gauge* g1 = registry_.GetGauge("lexequal_test_gauge");
  Gauge* g2 = registry_.GetGauge("lexequal_test_gauge");
  EXPECT_EQ(g1, g2);

  Histogram* h1 = registry_.GetHistogram("lexequal_test_hist_us");
  Histogram* h2 = registry_.GetHistogram("lexequal_test_hist_us");
  EXPECT_EQ(h1, h2);

  EXPECT_EQ(registry_.Names(),
            (std::vector<std::string>{"lexequal_test_counter",
                                      "lexequal_test_gauge",
                                      "lexequal_test_hist_us"}));
}

TEST_F(ObsMetricsTest, SetEnabledGatesMutationsAndRestores) {
#ifdef LEXEQUAL_NO_OBS
  GTEST_SKIP() << "mutations compiled out under LEXEQUAL_NO_OBS";
#endif
  Counter* c = registry_.GetCounter("lexequal_test_gated");
  Gauge* g = registry_.GetGauge("lexequal_test_gated_gauge");
  Histogram* h = registry_.GetHistogram("lexequal_test_gated_us");

  ASSERT_TRUE(SetEnabled(false));  // previous value was true (SetUp)
  EXPECT_FALSE(Enabled());
  c->Inc();
  g->Add(5);
  h->Record(10);
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(g->value(), 0);
  EXPECT_EQ(h->count(), 0u);

  EXPECT_FALSE(SetEnabled(true));  // returns the value it replaces
  c->Inc(3);
  g->Set(-2);
  h->Record(10);
  EXPECT_EQ(c->value(), 3u);
  EXPECT_EQ(g->value(), -2);
  EXPECT_EQ(h->count(), 1u);
}

TEST_F(ObsMetricsTest, EmptyHistogramReportsZeroQuantiles) {
  Histogram* h = registry_.GetHistogram("lexequal_test_empty_us");
  EXPECT_EQ(h->count(), 0u);
  EXPECT_EQ(h->sum(), 0u);
  EXPECT_EQ(h->overflow(), 0u);
  EXPECT_EQ(h->Quantile(0.0), 0.0);
  EXPECT_EQ(h->p50(), 0.0);
  EXPECT_EQ(h->p99(), 0.0);
}

TEST_F(ObsMetricsTest, HistogramOverflowBucketClampsQuantiles) {
#ifdef LEXEQUAL_NO_OBS
  GTEST_SKIP() << "Record compiled out under LEXEQUAL_NO_OBS";
#endif
  Histogram* h = registry_.GetHistogram("lexequal_test_overflow_us");
  const uint64_t max_bound = Histogram::BucketBounds().back();

  h->Record(max_bound + 1);
  h->Record(max_bound * 10);
  EXPECT_EQ(h->count(), 2u);
  EXPECT_EQ(h->overflow(), 2u);
  EXPECT_EQ(h->sum(), (max_bound + 1) + max_bound * 10);
  // All mass is past the last finite bound: quantiles clamp to it
  // instead of inventing a value the buckets cannot resolve.
  EXPECT_EQ(h->p50(), static_cast<double>(max_bound));
  EXPECT_EQ(h->p99(), static_cast<double>(max_bound));

  // A value exactly on the bound is finite, not overflow.
  h->Record(max_bound);
  EXPECT_EQ(h->overflow(), 2u);
  EXPECT_EQ(h->count(), 3u);
}

TEST_F(ObsMetricsTest, HistogramBucketsArePositiveAndAscending) {
  const auto& bounds = Histogram::BucketBounds();
  ASSERT_EQ(bounds.size(), Histogram::kBucketCount);
  EXPECT_GE(bounds.front(), 1u);
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]) << "bucket " << i;
  }
}

TEST_F(ObsMetricsTest, HistogramQuantileInterpolatesWithinBucket) {
#ifdef LEXEQUAL_NO_OBS
  GTEST_SKIP() << "Record compiled out under LEXEQUAL_NO_OBS";
#endif
  Histogram* h = registry_.GetHistogram("lexequal_test_interp_us");
  for (int i = 0; i < 100; ++i) h->Record(7);  // all in one bucket
  const double p50 = h->p50();
  // The observation bucket for 7 µs is (5, 10]; interpolation stays
  // inside it.
  EXPECT_GT(p50, 5.0);
  EXPECT_LE(p50, 10.0);
  EXPECT_GE(h->p99(), p50);
}

TEST_F(ObsMetricsTest, ConcurrentRecordsKeepExactCountAndSum) {
#ifdef LEXEQUAL_NO_OBS
  GTEST_SKIP() << "Record compiled out under LEXEQUAL_NO_OBS";
#endif
  Histogram* h = registry_.GetHistogram("lexequal_test_race_us");
  Counter* c = registry_.GetCounter("lexequal_test_race_count");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        h->Record(7);
        c->Inc();
      }
    });
  }
  for (std::thread& w : workers) w.join();

  const uint64_t total =
      static_cast<uint64_t>(kThreads) * kPerThread;
  EXPECT_EQ(c->value(), total);
  EXPECT_EQ(h->count(), total);
  EXPECT_EQ(h->sum(), total * 7);
  EXPECT_EQ(h->overflow(), 0u);
}

TEST_F(ObsMetricsTest, ExportPrometheusContainsAllSeries) {
#ifdef LEXEQUAL_NO_OBS
  GTEST_SKIP() << "exports show zeros under LEXEQUAL_NO_OBS";
#endif
  registry_.GetCounter("lexequal_test_export", "counts things")->Inc(42);
  registry_.GetGauge("lexequal_test_export_gauge")->Set(-3);
  Histogram* h = registry_.GetHistogram("lexequal_test_export_us");
  h->Record(7);

  const std::string text = registry_.ExportPrometheus();
  EXPECT_NE(text.find("# TYPE lexequal_test_export counter"),
            std::string::npos);
  EXPECT_NE(text.find("# HELP lexequal_test_export counts things"),
            std::string::npos);
  EXPECT_NE(text.find("lexequal_test_export 42"), std::string::npos);
  EXPECT_NE(text.find("# TYPE lexequal_test_export_gauge gauge"),
            std::string::npos);
  EXPECT_NE(text.find("lexequal_test_export_gauge -3"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE lexequal_test_export_us histogram"),
            std::string::npos);
  EXPECT_NE(text.find("lexequal_test_export_us_count 1"),
            std::string::npos);
  EXPECT_NE(text.find("lexequal_test_export_us_sum 7"),
            std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\""), std::string::npos);
}

TEST_F(ObsMetricsTest, ExportJsonGroupsByKind) {
#ifdef LEXEQUAL_NO_OBS
  GTEST_SKIP() << "exports show zeros under LEXEQUAL_NO_OBS";
#endif
  registry_.GetCounter("lexequal_test_json")->Inc(5);
  registry_.GetGauge("lexequal_test_json_gauge")->Set(9);
  registry_.GetHistogram("lexequal_test_json_us")->Record(100);

  const std::string json = registry_.ExportJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"lexequal_test_json\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"lexequal_test_json_gauge\": 9"),
            std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"lexequal_test_json_us\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
}

TEST_F(ObsMetricsTest, ResetAllZeroesEveryMetric) {
#ifdef LEXEQUAL_NO_OBS
  GTEST_SKIP() << "mutations compiled out under LEXEQUAL_NO_OBS";
#endif
  Counter* c = registry_.GetCounter("lexequal_test_reset");
  Gauge* g = registry_.GetGauge("lexequal_test_reset_gauge");
  Histogram* h = registry_.GetHistogram("lexequal_test_reset_us");
  c->Inc(10);
  g->Set(10);
  h->Record(10);

  registry_.ResetAll();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(g->value(), 0);
  EXPECT_EQ(h->count(), 0u);
  EXPECT_EQ(h->sum(), 0u);
  EXPECT_EQ(h->p50(), 0.0);
}

TEST_F(ObsMetricsTest, DefaultRegistryIsProcessWideSingleton) {
  EXPECT_EQ(&MetricsRegistry::Default(), &MetricsRegistry::Default());
}

}  // namespace
}  // namespace lexequal::obs
